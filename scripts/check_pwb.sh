#!/bin/sh
# Gate the persistence-primitive rates (DESIGN.md §15): re-run the
# baseline benchmark at the committed scale and fail if any row's pwb/op
# or pfence/op regressed beyond tolerance against
# results/BENCH_baseline.json, or
# if the shared-barrier group-commit rows stop beating per-Tx on fences
# at 8+ concurrent committers. Throughput is deliberately not gated — it
# is host-dependent; the primitive rates are deterministic modulo epoch
# batching (multi-threaded rows get double tolerance for that).
#
# Usage: scripts/check_pwb.sh [baseline JSON] [tolerance]
set -eu

baseline=${1:-results/BENCH_baseline.json}
tol=${2:-0.15}

if [ ! -f "$baseline" ]; then
    echo "check_pwb: baseline $baseline not found" >&2
    exit 1
fi

go run ./cmd/baseline -check "$baseline" -tol "$tol"
