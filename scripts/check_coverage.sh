#!/bin/sh
# Enforce the committed coverage floor (results/coverage_floor.txt) against
# a coverage profile produced by `go test -coverprofile`. The floor is a
# ratchet: raise it when coverage genuinely improves, never lower it to
# make a PR pass.
#
# Usage: scripts/check_coverage.sh [profile]   (default: coverage.out)
set -eu

profile=${1:-coverage.out}
floor_file=$(dirname "$0")/../results/coverage_floor.txt

if [ ! -f "$profile" ]; then
    echo "check_coverage: profile $profile not found" >&2
    exit 2
fi

floor=$(tr -d ' \n' <"$floor_file")
total=$(go tool cover -func="$profile" | awk '/^total:/ { sub(/%/, "", $3); print $3 }')

if [ -z "$total" ]; then
    echo "check_coverage: no total line in $profile" >&2
    exit 2
fi

echo "coverage: ${total}% of statements (floor ${floor}%)"
if awk -v t="$total" -v f="$floor" 'BEGIN { exit !(t+0 < f+0) }'; then
    echo "check_coverage: coverage ${total}% fell below the ${floor}% floor" >&2
    exit 1
fi
