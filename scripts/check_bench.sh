#!/bin/sh
# Gate the full benchmark columns (DESIGN.md §15, §17): re-run the
# baseline at the committed scale and fail if any row's pwb/op or
# pfence/op regressed beyond tolerance against BENCH_baseline.json —
# and, beyond what check_pwb.sh gates, also compare throughput (Kops/s)
# for rows whose committed counterpart ran on a host with the same CPU
# count (num_cpu is recorded per row, so cross-host runs skip the
# throughput half instead of failing spuriously). The in-run sharding
# head-to-head (4 pools vs 1 at 8 clients) is enforced on either path.
#
# Usage: scripts/check_bench.sh [baseline JSON] [tolerance]
set -eu

baseline=${1:-BENCH_baseline.json}
tol=${2:-0.15}

if [ ! -f "$baseline" ]; then
    echo "check_bench: baseline $baseline not found" >&2
    exit 1
fi

go run ./cmd/baseline -check "$baseline" -check-kops -tol "$tol"
