#!/bin/sh
# Gate the full benchmark columns (DESIGN.md §14, §15, §17): re-run the
# baseline at the committed scale and fail if any row's pwb/op,
# pfence/op or allocs/op regressed beyond tolerance against
# results/BENCH_baseline.json — and, beyond what check_pwb.sh gates,
# also compare throughput (Kops/s) for rows whose committed counterpart
# ran on a host with the same CPU count (num_cpu is recorded per row, so
# cross-host runs skip the throughput half instead of failing
# spuriously). The in-run sharding head-to-head (4 pools vs 1 at 8
# clients) is enforced on either path. Then the recovery gate: a small
# CI-sized recoverbench run whose deterministic work counters
# (live_objects, rebuild_entries, replayed_tx) must match the committed
# results/BENCH_recovery_ci.json exactly, with recovery wall-clock gated
# loosely on same-width hosts.
#
# Usage: scripts/check_bench.sh [baseline JSON] [tolerance]
set -eu

baseline=${1:-results/BENCH_baseline.json}
tol=${2:-0.15}
recovery_ci=results/BENCH_recovery_ci.json

if [ ! -f "$baseline" ]; then
    echo "check_bench: baseline $baseline not found" >&2
    exit 1
fi

# The per-row comparison in `baseline -check` skips rows absent from the
# committed file, so a baseline that silently lost its group/async rows
# would stop gating pfence/op on the fence-combining modes (DESIGN.md
# §13, §19) without any failure. Assert their presence up front: the
# group and async rows are exactly where delta folding and fence
# combining pay off, so they must stay under the regression gate.
for mode in group async; do
    n=$(grep -c "\"commit\": *\"$mode\"" "$baseline" || true)
    if [ "${n:-0}" -eq 0 ]; then
        echo "check_bench: baseline $baseline has no commit=$mode rows;" \
             "pfence/op on the combining modes would go ungated" >&2
        exit 1
    fi
done

go run ./cmd/baseline -check "$baseline" -check-kops -check-allocs -tol "$tol"

if [ -f "$recovery_ci" ]; then
    # Parameters must mirror the ones that generated the committed file
    # (see the `bench-recovery-ci` Make target): the counter comparison
    # is exact, so entries/structure/pools are part of the contract.
    go run ./cmd/recoverbench -entries 20000 -pool-mb 96 -workers 1,2 \
        -repeat 2 -check "$recovery_ci"
else
    echo "check_bench: note: $recovery_ci not committed; skipping recovery gate" >&2
fi
