#!/bin/sh
# Gate the allocation-free read paths (DESIGN.md §14): the zero-copy grid
# read and the map GetRef/cached-Get fast paths must stay at 0 allocs/op,
# and every other grid read regime must stay within a small ceiling. Runs
# the read benchmarks once and parses the -benchmem column, so a stray
# allocation in the hot loop fails CI instead of silently costing GC.
#
# Usage: scripts/check_allocs.sh [bench output file]
# Without an argument the benchmarks are run here (short benchtime: the
# allocs/op column is exact per iteration, not a statistical estimate).
set -eu

out=${1:-}
if [ -z "$out" ]; then
    out=$(mktemp)
    trap 'rm -f "$out"' EXIT
    go test -run '^$' -bench 'MapGet|GridRead' -benchtime 100x -benchmem \
        ./internal/bench/ | tee "$out"
fi

# ceiling <pattern> <max allocs/op>: every matching benchmark row must
# report at most max.
fail=0
ceiling() {
    pattern=$1
    max=$2
    rows=$(grep -E "^Benchmark.*${pattern}" "$out" || true)
    if [ -z "$rows" ]; then
        echo "check_allocs: no benchmark rows match ${pattern}" >&2
        fail=1
        return
    fi
    echo "$rows" | while read -r name _ _ _ _ _ allocs _; do
        if [ "$allocs" -gt "$max" ]; then
            echo "check_allocs: $name reports $allocs allocs/op (ceiling $max)" >&2
            exit 1
        fi
    done || fail=1
}

# ceiling_opt <pattern> <max allocs/op>: like ceiling, but a pattern with
# no matching rows only warns. Use for variants newer than the committed
# bench output a caller may replay this script against (old files predate
# the variant; a fresh in-script run always has the rows).
ceiling_opt() {
    if ! grep -qE "^Benchmark.*$1" "$out"; then
        echo "check_allocs: note: no rows match $1 (old bench output?); skipping" >&2
        return
    fi
    ceiling "$1" "$2"
}

# The tentpole invariants: the seqlock zero-copy read, the lock-free
# EBR-pinned read, the proxy-cached map Gets and the GetRef raw path are
# allocation-free.
ceiling 'GridRead/zerocopy' 0
ceiling_opt 'GridRead/lockfree' 0
ceiling 'MapGet/(hash|tree|skip)/(cached|eager)' 0
ceiling 'MapGet/(hash|tree|skip)/getref' 0
# The fallback and cache regimes copy by design but must stay bounded:
# the chained-value fallback pays a few allocations per field (ReadBlob
# copy + blob assembly), never superlinear garbage.
ceiling 'GridRead/copyfallback' 48
ceiling 'GridRead/cachehit' 4
ceiling 'GridRead/cachemiss' 40

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "check_allocs: all read-path allocation ceilings hold"
