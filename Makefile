GO ?= go

# Packages with lock-free fast paths and shared mutable state; always get
# a race-detector pass in addition to the plain suite. core and pdt joined
# when recovery went parallel (work-stealing traversal, segment sweep,
# concurrent mirror rebuild).
RACE_PKGS = ./internal/store/... ./internal/fa/... ./internal/heap/... ./internal/obs/... ./internal/core/... ./internal/pdt/...

.PHONY: check vet build test race bench bench-recovery microbench

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Record the performance baseline: short YCSB-A/B and TPC-B passes with
# throughput and pwb/pfence-per-op columns. Perf PRs re-run this and diff
# BENCH_baseline.json against the committed copy.
bench:
	$(GO) run ./cmd/baseline -out BENCH_baseline.json

# Recovery-time scaling: load a large heap, crash it, re-open the image
# once per worker count. workers=1 is the paper's serial §4.1.3 procedure;
# speedups are relative to it (and bounded by the host's core count).
bench-recovery:
	$(GO) run ./cmd/recoverbench -out results/BENCH_recovery.json

microbench:
	$(GO) test -bench=. -benchmem .
