GO ?= go

# Packages with lock-free fast paths and shared mutable state; always get
# a race-detector pass in addition to the plain suite.
RACE_PKGS = ./internal/store/... ./internal/fa/... ./internal/heap/... ./internal/obs/...

.PHONY: check vet build test race bench

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -bench=. -benchmem .
