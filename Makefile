GO ?= go

# Packages with lock-free fast paths and shared mutable state; always get
# a race-detector pass in addition to the plain suite.
RACE_PKGS = ./internal/store/... ./internal/fa/... ./internal/heap/... ./internal/obs/...

.PHONY: check vet build test race bench microbench

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Record the performance baseline: short YCSB-A/B and TPC-B passes with
# throughput and pwb/pfence-per-op columns. Perf PRs re-run this and diff
# BENCH_baseline.json against the committed copy.
bench:
	$(GO) run ./cmd/baseline -out BENCH_baseline.json

microbench:
	$(GO) test -bench=. -benchmem .
