GO ?= go

# Pinned so local and CI runs agree; bump deliberately, not via @latest.
STATICCHECK_VERSION ?= 2024.1.1

# Packages with lock-free fast paths and shared mutable state; always get
# a race-detector pass in addition to the plain suite. core and pdt joined
# when recovery went parallel (work-stealing traversal, segment sweep,
# concurrent mirror rebuild).
RACE_PKGS = ./internal/store/... ./internal/fa/... ./internal/heap/... ./internal/obs/... ./internal/core/... ./internal/pdt/... ./internal/shard/... ./internal/wire/...

.PHONY: check vet build test race bench bench-read bench-pwb bench-check \
	bench-recovery bench-recovery-ci bench-lockfree bench-shard microbench \
	lint fmt-check staticcheck crashmc-smoke coverage binaries scenarios \
	scenario-smoke

check: vet build test race

# Full static gate as CI runs it. staticcheck downloads the pinned tool on
# first use, so this target needs network access once per version.
lint: fmt-check vet staticcheck

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Record the performance baseline: short YCSB-A/B and TPC-B passes with
# throughput and pwb/pfence-per-op columns. Perf PRs re-run this and diff
# results/BENCH_baseline.json against the committed copy.
bench:
	$(GO) run ./cmd/baseline -out results/BENCH_baseline.json

# Read-path allocation gate (DESIGN.md §14): runs the MapGet/GridRead
# benchmarks with -benchmem and fails if the zero-copy and proxy-cached
# fast paths report any allocs/op, or the fallback regimes exceed their
# ceilings. CI runs this on every push.
bench-read:
	./scripts/check_allocs.sh

# Flush-rate gate (DESIGN.md §15): re-runs the baseline passes and fails
# if pwb/op or pfence/op regressed beyond tolerance vs the committed
# BENCH_baseline.json, or if group commit stops combining fences at 8+
# committers. CI runs this on every push.
bench-pwb:
	./scripts/check_pwb.sh

# Full benchmark gate (DESIGN.md §15, §17): everything bench-pwb checks,
# plus Kops/s for rows whose committed counterpart ran on a host with the
# same CPU count, plus the in-run sharding head-to-head. CI runs this on
# every push.
bench-check:
	./scripts/check_bench.sh

# Recovery-time scaling: load a large heap, crash it, re-open the image
# once per worker count. workers=1 is the paper's serial §4.1.3 procedure;
# speedups are relative to it (and bounded by the host's core count).
bench-recovery:
	$(GO) run ./cmd/recoverbench -out results/BENCH_recovery.json

# Regenerate the committed CI-sized recovery reference. check_bench.sh
# replays recoverbench with -check against this file: the deterministic
# work counters must reproduce exactly, so the parameters here and in the
# script must stay in lockstep.
bench-recovery-ci:
	$(GO) run ./cmd/recoverbench -entries 20000 -pool-mb 96 -workers 1,2 \
		-repeat 2 -out results/BENCH_recovery_ci.json

# Pool-count sweep (DESIGN.md §17): YCSB-A over the sharded heap at
# 1/4/8 pools. The gate requires the 4+-pool rows to beat single-pool on
# a multicore host, and bounds the routing tax at 20% otherwise.
bench-shard:
	$(GO) run ./cmd/shardbench -out results/BENCH_shard.json

# Lock-free J-PDT smoke (DESIGN.md §16): the EBR-pinned grid read must
# stay allocation-free next to the seqlock path, the lock-free suites must
# hold under the race detector, and the pdtlockfree crash workload must
# survive CI-depth exploration with the serial-vs-parallel recovery
# cross-check. CI runs this on every push (crashmc-smoke re-covers the
# workload at the same depth via -workload all).
bench-lockfree:
	$(GO) test -run '^$$' -bench 'GridRead/(zerocopy|lockfree)' -benchtime 100x -benchmem ./internal/bench/
	$(GO) test -race -run 'TestLF|TestMapHotCache|TestMirrorSkipAscend' ./internal/pdt/
	$(GO) run ./cmd/crashmc -workload pdtlockfree -points 200 -samples 4 -seed 1

microbench:
	$(GO) test -bench=. -benchmem .

# Bounded crash-consistency exploration (the CI gate). The nightly CI job
# runs the unbounded version: -points 0 -samples 8.
crashmc-smoke:
	$(GO) run ./cmd/crashmc -workload all -points 200 -samples 4 -seed 1

# Coverage over the library packages, gated on results/coverage_floor.txt.
coverage:
	$(GO) test -coverprofile=coverage.out ./internal/...
	./scripts/check_coverage.sh coverage.out

# The networked-grid binaries (DESIGN.md §18): the TCP server, the
# load generator and the scenario runner.
binaries:
	mkdir -p bin
	$(GO) build -o bin/gridserver ./cmd/gridserver
	$(GO) build -o bin/loadgen ./cmd/loadgen
	$(GO) build -o bin/scenario ./cmd/scenario

# The full end-to-end scenario fleet: baseline, high-load, hot-key,
# degraded-latency, crash-recover and leaderboard (zipfian increments
# with delta folding vs whole-value updates, §19), each against a real
# gridserver process over TCP, emitting
# results/scenarios/scenario-<name>.json.
# The crash scenario SIGKILLs the server mid-load, restarts it, and
# fails if any acknowledged write is missing after recovery.
scenarios: binaries
	./bin/scenario -all -out results/scenarios

# The CI-sized smoke: a 15-second baseline plus crash-recover pair.
# Nightly CI runs the full fleet; this keeps every push honest about the
# server lifecycle (serve, drain, crash, recover) without the full cost.
scenario-smoke: binaries
	./bin/scenario -run baseline -duration 15s -out results/ci
	./bin/scenario -run crash-recover -duration 15s -out results/ci
