package jnvm

import (
	"fmt"
	"path/filepath"
	"testing"
)

// The facade tests exercise the public surface end to end: open, persist,
// close, reopen from the backing file, run failure-atomic blocks.

func TestOpenInMemory(t *testing.T) {
	db, err := Open(Options{Size: 1 << 22})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.Root() == nil {
		t.Fatal("no root map")
	}
}

func TestFileBackedLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heap.pmem")
	db, err := Open(Options{Path: path, Size: 1 << 22})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewString(db, "persisted across processes")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Root().Put("msg", s); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{Path: path, Size: 1 << 22})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	po, err := db2.Root().Get("msg")
	if err != nil {
		t.Fatal(err)
	}
	if po.(*PString).Value() != "persisted across processes" {
		t.Fatal("content lost across reopen")
	}
}

func TestFacadeMapAndFA(t *testing.T) {
	db, err := Open(Options{Size: 1 << 22})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	m, err := NewMap(db, MirrorTree)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Root().Put("m", m); err != nil {
		t.Fatal(err)
	}
	err = db.RunFA(func(tx *Tx) error {
		v, err := NewBytesTx(tx, []byte("in-a-block"))
		if err != nil {
			return err
		}
		return m.PutTx(tx, "k", v)
	})
	if err != nil {
		t.Fatal(err)
	}
	po, err := m.Get("k")
	if err != nil || po == nil {
		t.Fatalf("get: %v %v", po, err)
	}
	if string(po.(*PBytes).Value()) != "in-a-block" {
		t.Fatal("FA put lost")
	}
	// Aborted block leaves no trace.
	boom := fmt.Errorf("boom")
	if err := db.RunFA(func(tx *Tx) error {
		v, _ := NewBytesTx(tx, []byte("doomed"))
		m.PutTx(tx, "doomed", v)
		return boom
	}); err != boom {
		t.Fatalf("err = %v", err)
	}
	if m.Contains("doomed") {
		t.Fatal("aborted put visible")
	}
}

func TestFacadeCustomClass(t *testing.T) {
	cls := &Class{
		Name:    "example.point",
		Factory: func(o *Object) PObject { return o },
	}
	db, err := Open(Options{Size: 1 << 22, Classes: []*Class{cls}})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	po, err := db.Alloc(cls, 16)
	if err != nil {
		t.Fatal(err)
	}
	o := po.Core()
	o.WriteInt64(0, 3)
	o.WriteInt64(8, 4)
	o.PWB()
	if err := db.Root().Put("pt", po); err != nil {
		t.Fatal(err)
	}
	got, err := db.Root().Get("pt")
	if err != nil {
		t.Fatal(err)
	}
	if got.Core().ReadInt64(0) != 3 || got.Core().ReadInt64(8) != 4 {
		t.Fatal("fields lost")
	}
}

func TestFacadeArraysAndSets(t *testing.T) {
	db, err := Open(Options{Size: 1 << 22})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	la, err := NewLongArray(db, 10)
	if err != nil {
		t.Fatal(err)
	}
	la.Set(3, 42)
	if la.Get(3) != 42 {
		t.Fatal("long array")
	}
	ea, err := NewExtArray(db)
	if err != nil {
		t.Fatal(err)
	}
	ea.Validate()
	s, _ := NewString(db, "x")
	if err := ea.Append(s); err != nil {
		t.Fatal(err)
	}
	if ea.Len() != 1 {
		t.Fatal("ext array")
	}
	set, err := NewSet(db, MirrorHash)
	if err != nil {
		t.Fatal(err)
	}
	set.Add("member")
	if !set.Contains("member") {
		t.Fatal("set")
	}
}

func TestFacadeCrashRecovery(t *testing.T) {
	// End-to-end through the public API: tracked pool, committed FA work,
	// strict crash, reopen via OpenPool, verify.
	pool := nvmPoolForTest(t)
	db, err := OpenPool(pool, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMap(db, MirrorHash)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Root().Put("m", m); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		err := db.RunFA(func(tx *Tx) error {
			v, err := NewBytesTx(tx, []byte(fmt.Sprintf("v%d", i)))
			if err != nil {
				return err
			}
			return m.PutTx(tx, fmt.Sprintf("k%d", i), v)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	img := crashStrict(pool)
	db2, err := OpenPool(img, Options{})
	if err != nil {
		t.Fatal(err)
	}
	po, err := db2.Root().Get("m")
	if err != nil {
		t.Fatal(err)
	}
	m2 := po.(*Map)
	if m2.Len() != 10 {
		t.Fatalf("recovered %d bindings, want 10", m2.Len())
	}
	for i := 0; i < 10; i++ {
		vpo, err := m2.Get(fmt.Sprintf("k%d", i))
		if err != nil || vpo == nil {
			t.Fatalf("k%d lost: %v", i, err)
		}
		if string(vpo.(*PBytes).Value()) != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%d corrupt", i)
		}
	}
}

func nvmPoolForTest(t *testing.T) *Pool {
	t.Helper()
	return NewTrackedPool(1 << 22)
}

func crashStrict(p *Pool) *Pool { return CrashImageStrict(p) }
