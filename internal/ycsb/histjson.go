package ycsb

import (
	"encoding/json"
	"strconv"
)

// histJSON is the wire form of a Histogram: the scalar moments plus a
// sparse bucket map ("bucket index" -> count). Sparse because a run
// touches a few dozen of the 512 log buckets; sending all of them makes
// multi-process result files needlessly large.
type histJSON struct {
	Count   uint64            `json:"count"`
	Sum     uint64            `json:"sum"`
	Max     uint64            `json:"max"`
	Min     uint64            `json:"min"`
	Buckets map[string]uint64 `json:"buckets,omitempty"`
}

// MarshalJSON encodes the histogram in a form that survives a round trip
// through separate processes — the load generator writes per-process
// histograms, the scenario runner unmarshals and Merges them, and the
// merged percentiles equal a single-process run's.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	j := histJSON{Count: h.count, Sum: h.sum, Max: h.max, Min: h.min}
	for i, c := range h.buckets {
		if c != 0 {
			if j.Buckets == nil {
				j.Buckets = make(map[string]uint64)
			}
			j.Buckets[strconv.Itoa(i)] = c
		}
	}
	return json.Marshal(j)
}

// UnmarshalJSON decodes the MarshalJSON form.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var j histJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*h = Histogram{count: j.Count, sum: j.Sum, max: j.Max, min: j.Min}
	for k, c := range j.Buckets {
		i, err := strconv.Atoi(k)
		if err != nil || i < 0 || i >= len(h.buckets) {
			continue
		}
		h.buckets[i] = c
	}
	return nil
}
