// Package ycsb reimplements the Yahoo! Cloud Serving Benchmark core
// (Cooper et al., SoCC'10) as used by the paper's evaluation (§5.2):
// workloads A, B, C, D and F, the zipfian / scrambled-zipfian / latest /
// uniform request distributions, the default record shape (3M records of
// 10 fields x 100 B, scaled down by default here), a multi-threaded driver
// and latency histograms. Workload E (scans) is skipped exactly as the
// paper skips it.
package ycsb

import (
	"hash/fnv"
	"math"
	"math/rand"
	"sync/atomic"
)

// KeyChooser picks record indices according to a request distribution.
// Implementations are safe for concurrent use given per-goroutine rngs.
type KeyChooser interface {
	Next(rng *rand.Rand) int
}

// Uniform picks uniformly over a (possibly growing) key space.
type Uniform struct{ n *atomic.Int64 }

// NewUniform creates a uniform chooser over the counter's current value.
func NewUniform(n *atomic.Int64) *Uniform { return &Uniform{n: n} }

// Next implements KeyChooser.
func (u *Uniform) Next(rng *rand.Rand) int { return rng.Intn(int(u.n.Load())) }

// Zipfian is the Gray et al. zipfian generator used by YCSB, with the
// standard constant 0.99. It favors low indices.
type Zipfian struct {
	n            int
	theta        float64
	alpha        float64
	zetan, zeta2 float64
	eta          float64
}

// ZipfianConstant is YCSB's default skew.
const ZipfianConstant = 0.99

// NewZipfian builds a zipfian chooser over [0, n).
func NewZipfian(n int) *Zipfian {
	z := &Zipfian{n: n, theta: ZipfianConstant}
	z.zetan = zeta(n, z.theta)
	z.zeta2 = zeta(2, z.theta)
	z.alpha = 1.0 / (1.0 - z.theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-z.theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func zeta(n int, theta float64) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next implements KeyChooser.
func (z *Zipfian) Next(rng *rand.Rand) int {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// ScrambledZipfian spreads the zipfian popularity over the whole key space
// by hashing, YCSB's default for workloads A-C and F.
type ScrambledZipfian struct {
	z *Zipfian
	n int
}

// NewScrambledZipfian builds the scrambled chooser over [0, n).
func NewScrambledZipfian(n int) *ScrambledZipfian {
	return &ScrambledZipfian{z: NewZipfian(n), n: n}
}

// Next implements KeyChooser.
func (s *ScrambledZipfian) Next(rng *rand.Rand) int {
	v := s.z.Next(rng)
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	h.Write(buf[:])
	return int(h.Sum64() % uint64(s.n))
}

// Latest skews towards recently inserted records (workload D): index =
// last - zipf, recomputed against the live insert counter.
type Latest struct {
	z     *Zipfian
	count *atomic.Int64
}

// NewLatest builds the chooser over the counter (the number of inserted
// records, which grows during the run).
func NewLatest(count *atomic.Int64) *Latest {
	return &Latest{z: NewZipfian(int(count.Load())), count: count}
}

// Next implements KeyChooser.
func (l *Latest) Next(rng *rand.Rand) int {
	n := int(l.count.Load())
	off := l.z.Next(rng)
	if off >= n {
		off = off % n
	}
	return n - 1 - off
}
