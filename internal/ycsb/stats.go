package ycsb

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/obs"
)

// Histogram is a log-bucketed latency histogram (HDR-style growth factor
// ~1.08), cheap enough for the hot path and precise enough for the tail
// percentiles Figure 1(right) plots.
type Histogram struct {
	buckets [512]uint64
	count   uint64
	sum     uint64
	max     uint64
	min     uint64
}

const histGrowth = 1.08

var histLogG = math.Log(histGrowth)

func bucketOf(ns uint64) int {
	if ns < 1 {
		ns = 1
	}
	i := int(math.Log(float64(ns)) / histLogG)
	if i >= 512 {
		i = 511
	}
	return i
}

func bucketLow(i int) uint64 { return uint64(math.Pow(histGrowth, float64(i))) }

// Record adds one latency observation.
func (h *Histogram) Record(d time.Duration) {
	ns := uint64(d.Nanoseconds())
	h.buckets[bucketOf(ns)]++
	h.count++
	h.sum += ns
	if ns > h.max {
		h.max = ns
	}
	if h.min == 0 || ns < h.min {
		h.min = ns
	}
}

// Merge folds other into h (per-thread histograms merge at the end of a
// run).
func (h *Histogram) Merge(other *Histogram) {
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	h.count += other.count
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
	if h.min == 0 || (other.min != 0 && other.min < h.min) {
		h.min = other.min
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the average latency.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / h.count)
}

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// Percentile returns the latency at quantile p in [0,1].
func (h *Histogram) Percentile(p float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	target := uint64(p * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen > target {
			return time.Duration(bucketLow(i))
		}
	}
	return time.Duration(h.max)
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v p99.99=%v max=%v",
		h.count, h.Mean(), h.Percentile(0.50), h.Percentile(0.99),
		h.Percentile(0.9999), h.Max())
}

// Result is the outcome of one YCSB run.
type Result struct {
	Workload   string
	Backend    string
	Duration   time.Duration
	Operations uint64
	Errors     uint64
	PerOp      map[OpType]*Histogram
	// Stack, when the harness supplies it, is the cross-layer metrics
	// delta for the run interval (grid latency, nvm/heap/fa counters and
	// the derived pwb/pfence-per-op columns).
	Stack *obs.StackSnapshot
}

// Throughput returns operations per second.
func (r *Result) Throughput() float64 {
	if r.Duration == 0 {
		return 0
	}
	return float64(r.Operations) / r.Duration.Seconds()
}

// Hist returns the merged histogram across all op types.
func (r *Result) Hist() *Histogram {
	out := &Histogram{}
	for _, h := range r.PerOp {
		out.Merge(h)
	}
	return out
}

// OpTypes returns the op types present, sorted for stable printing.
func (r *Result) OpTypes() []OpType {
	var out []OpType
	for t := range r.PerOp {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
