package ycsb

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/store"
)

func TestWorkloadPresets(t *testing.T) {
	cases := map[string]struct{ read, update, insert, rmw float64 }{
		"A": {0.5, 0.5, 0, 0},
		"B": {0.95, 0.05, 0, 0},
		"C": {1, 0, 0, 0},
		"D": {0.95, 0, 0.05, 0},
		"F": {0.5, 0, 0, 0.5},
	}
	for name, want := range cases {
		c, err := Workload(name)
		if err != nil {
			t.Fatal(err)
		}
		if c.ReadProp != want.read || c.UpdateProp != want.update ||
			c.InsertProp != want.insert || c.RMWProp != want.rmw {
			t.Fatalf("workload %s: %+v", name, c)
		}
	}
	// E is supported here as an extension (the paper skips it).
	e, err := Workload("E")
	if err != nil {
		t.Fatal(err)
	}
	if e.ScanProp != 0.95 || e.InsertProp != 0.05 {
		t.Fatalf("workload E mix: %+v", e)
	}
	if _, err := Workload("Z"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestZipfianBounds(t *testing.T) {
	for _, n := range []int{2, 10, 1000, 100000} {
		z := NewZipfian(n)
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 20000; i++ {
			v := z.Next(rng)
			if v < 0 || v >= n {
				t.Fatalf("n=%d: out of range %d", n, v)
			}
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	const n = 10000
	z := NewZipfian(n)
	rng := rand.New(rand.NewSource(2))
	counts := make([]int, n)
	for i := 0; i < 200000; i++ {
		counts[z.Next(rng)]++
	}
	top := counts[0]
	if top < 10000 {
		t.Fatalf("hottest key drew only %d/200000", top)
	}
	tail := 0
	for _, c := range counts[n/2:] {
		tail += c
	}
	if tail > 40000 {
		t.Fatalf("cold half drew %d/200000 — not skewed", tail)
	}
}

func TestScrambledZipfianSpreadsHotKeys(t *testing.T) {
	const n = 10000
	s := NewScrambledZipfian(n)
	rng := rand.New(rand.NewSource(3))
	counts := make(map[int]int)
	for i := 0; i < 100000; i++ {
		v := s.Next(rng)
		if v < 0 || v >= n {
			t.Fatalf("out of range %d", v)
		}
		counts[v]++
	}
	// Still skewed (few keys dominate)...
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	if maxC < 5000 {
		t.Fatalf("hottest key drew only %d", maxC)
	}
	// ...but the hot keys are spread away from index 0.
	if counts[0] == maxC && counts[1] != 0 && counts[0] > 2*counts[1] {
		t.Log("scramble left index 0 hottest; acceptable but unusual")
	}
}

func TestLatestPrefersRecent(t *testing.T) {
	var count atomic.Int64
	count.Store(1000)
	l := NewLatest(&count)
	rng := rand.New(rand.NewSource(4))
	recent := 0
	for i := 0; i < 10000; i++ {
		v := l.Next(rng)
		if v < 0 || v >= 1000 {
			t.Fatalf("out of range %d", v)
		}
		if v >= 900 {
			recent++
		}
	}
	if recent < 5000 {
		t.Fatalf("only %d/10000 hits in the newest 10%%", recent)
	}
	// Growing the space keeps it in range and recency-biased.
	count.Store(2000)
	for i := 0; i < 1000; i++ {
		v := l.Next(rng)
		if v < 0 || v >= 2000 {
			t.Fatalf("post-growth out of range %d", v)
		}
	}
}

func TestUniformCoversSpace(t *testing.T) {
	var count atomic.Int64
	count.Store(100)
	u := NewUniform(&count)
	rng := rand.New(rand.NewSource(5))
	seen := map[int]bool{}
	for i := 0; i < 5000; i++ {
		seen[u.Next(rng)] = true
	}
	if len(seen) < 95 {
		t.Fatalf("uniform covered only %d/100 keys", len(seen))
	}
}

func TestHistogramPercentiles(t *testing.T) {
	h := &Histogram{}
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count %d", h.Count())
	}
	p50 := h.Percentile(0.5)
	if p50 < 400*time.Microsecond || p50 > 650*time.Microsecond {
		t.Fatalf("p50 = %v", p50)
	}
	p99 := h.Percentile(0.99)
	if p99 < 900*time.Microsecond || p99 > 1100*time.Microsecond {
		t.Fatalf("p99 = %v", p99)
	}
	if h.Max() != time.Millisecond {
		t.Fatalf("max = %v", h.Max())
	}
	mean := h.Mean()
	if mean < 450*time.Microsecond || mean > 550*time.Microsecond {
		t.Fatalf("mean = %v", mean)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := &Histogram{}, &Histogram{}
	for i := 0; i < 100; i++ {
		a.Record(time.Microsecond)
		b.Record(time.Millisecond)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged count %d", a.Count())
	}
	if a.Percentile(0.25) > 10*time.Microsecond {
		t.Fatal("low half lost in merge")
	}
	if a.Percentile(0.9) < 500*time.Microsecond {
		t.Fatal("high half lost in merge")
	}
}

func TestQuickHistogramPercentileMonotonic(t *testing.T) {
	f := func(durs []uint32) bool {
		h := &Histogram{}
		for _, d := range durs {
			h.Record(time.Duration(d%10_000_000) + 1)
		}
		last := time.Duration(0)
		for _, p := range []float64{0.1, 0.5, 0.9, 0.99, 0.9999} {
			v := h.Percentile(p)
			if v < last {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestValueDeterminism(t *testing.T) {
	a := make([]byte, 100)
	b := make([]byte, 100)
	buildValue(a, 7, 3, 1)
	buildValue(b, 7, 3, 1)
	if string(a) != string(b) {
		t.Fatal("value generation not deterministic")
	}
	buildValue(b, 7, 3, 2)
	if string(a) == string(b) {
		t.Fatal("versions produce identical values")
	}
}

func TestLoadAndRunAgainstGrid(t *testing.T) {
	g := store.NewGrid(store.NewVolatileBackend(), store.Options{})
	cfg := MustWorkload("A")
	cfg.RecordCount = 500
	cfg.Operations = 2000
	cfg.Threads = 4
	cfg = cfg.Defaults()
	if err := Load(g, cfg); err != nil {
		t.Fatal(err)
	}
	if g.Count() != 500 {
		t.Fatalf("loaded %d records", g.Count())
	}
	res, err := Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d op errors", res.Errors)
	}
	if res.Operations != 2000 {
		t.Fatalf("ran %d ops", res.Operations)
	}
	if res.Throughput() <= 0 {
		t.Fatal("no throughput")
	}
	if res.PerOp[OpRead].Count() == 0 || res.PerOp[OpUpdate].Count() == 0 {
		t.Fatal("op mix missing reads or updates")
	}
	// Roughly 50/50.
	r, u := float64(res.PerOp[OpRead].Count()), float64(res.PerOp[OpUpdate].Count())
	if r/(r+u) < 0.4 || r/(r+u) > 0.6 {
		t.Fatalf("op mix off: %v reads vs %v updates", r, u)
	}
}

func TestWorkloadDInsertsGrow(t *testing.T) {
	g := store.NewGrid(store.NewVolatileBackend(), store.Options{})
	cfg := MustWorkload("D")
	cfg.RecordCount = 300
	cfg.Operations = 2000
	cfg.Threads = 2
	cfg = cfg.Defaults()
	if err := Load(g, cfg); err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors", res.Errors)
	}
	if g.Count() <= 300 {
		t.Fatal("workload D inserted nothing")
	}
}

func TestWorkloadFRMW(t *testing.T) {
	g := store.NewGrid(store.NewVolatileBackend(), store.Options{})
	cfg := MustWorkload("F")
	cfg.RecordCount = 200
	cfg.Operations = 1000
	cfg = cfg.Defaults()
	if err := Load(g, cfg); err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 || res.PerOp[OpRMW].Count() == 0 {
		t.Fatalf("rmw missing: errs=%d", res.Errors)
	}
}

func TestWorkloadEScans(t *testing.T) {
	g := store.NewGrid(store.NewVolatileBackend(), store.Options{})
	cfg := MustWorkload("E")
	cfg.RecordCount = 300
	cfg.Operations = 400
	cfg.MaxScanLen = 20
	cfg = cfg.Defaults()
	if err := Load(g, cfg); err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors", res.Errors)
	}
	if res.PerOp[OpScan] == nil || res.PerOp[OpScan].Count() == 0 {
		t.Fatal("no scans executed")
	}
	// A DB without scan support is rejected up front.
	type noScan struct{ DB }
	if _, err := Run(noScan{g}, cfg); err == nil {
		t.Fatal("scan workload accepted without ScanDB")
	}
}

func TestRunRejectsBadProportions(t *testing.T) {
	cfg := Config{Name: "bad", ReadProp: 0.2}
	if _, err := Run(store.NewGrid(store.NewVolatileBackend(), store.Options{}), cfg); err == nil {
		t.Fatal("bad proportions accepted")
	}
	cfg = MustWorkload("A")
	cfg.Distribution = "nope"
	if _, err := Run(store.NewGrid(store.NewVolatileBackend(), store.Options{}), cfg); err == nil {
		t.Fatal("bad distribution accepted")
	}
}
