package ycsb

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"repro/internal/store"
)

// DB is the key-value interface the driver exercises; *store.Grid
// implements it directly.
type DB interface {
	Read(key string, consume func(name string, value []byte)) error
	Update(key string, fields []store.Field) error
	Insert(key string, rec *store.Record) error
	ReadModifyWrite(key string, mutate func(rec *store.Record) []store.Field) error
}

// ScanDB is the optional capability workload E needs (ordered backends).
type ScanDB interface {
	Scan(start string, limit int, consume func(key, field string, value []byte)) error
}

// Load executes the YCSB load phase: RecordCount inserts spread over the
// configured threads.
func Load(db DB, cfg Config) error {
	cfg = cfg.Defaults()
	var next atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	for t := 0; t < cfg.Threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.RecordCount {
					return
				}
				if err := db.Insert(Key(i), cfg.BuildRecord(i)); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok {
		return err
	}
	return nil
}

// Run executes the YCSB run phase and returns merged statistics.
func Run(db DB, cfg Config) (*Result, error) {
	cfg = cfg.Defaults()
	if p := cfg.ReadProp + cfg.UpdateProp + cfg.InsertProp + cfg.RMWProp + cfg.ScanProp; p < 0.999 || p > 1.001 {
		return nil, fmt.Errorf("ycsb: op proportions sum to %v", p)
	}
	if cfg.ScanProp > 0 {
		if _, ok := db.(ScanDB); !ok {
			return nil, fmt.Errorf("ycsb: workload has scans but the DB does not implement ScanDB")
		}
	}

	inserted := &atomic.Int64{}
	inserted.Store(int64(cfg.RecordCount))
	chooser, err := newChooser(cfg, inserted)
	if err != nil {
		return nil, err
	}

	type threadStats struct {
		perOp map[OpType]*Histogram
		errs  uint64
	}
	stats := make([]threadStats, cfg.Threads)
	opsPerThread := cfg.Operations / cfg.Threads

	start := time.Now()
	var wg sync.WaitGroup
	for t := 0; t < cfg.Threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(t)*7919))
			st := threadStats{perOp: map[OpType]*Histogram{}}
			hist := func(op OpType) *Histogram {
				h := st.perOp[op]
				if h == nil {
					h = &Histogram{}
					st.perOp[op] = h
				}
				return h
			}
			// Per-thread scratch so the hot loop allocates nothing: keys
			// render into a reused buffer (every retention point in the
			// store clones transient keys), updates reuse one field slot
			// and value buffer (every backend copies on update), and the
			// rmw closure is built once, not per operation.
			keyBuf := make([]byte, 0, 16)
			key := func(i int) string {
				keyBuf = appendKey(keyBuf, i)
				return unsafe.String(&keyBuf[0], len(keyBuf))
			}
			var updSlot [1]store.Field
			updVal := make([]byte, cfg.FieldLen)
			var rmwFields []store.Field
			rmwMutate := func(*store.Record) []store.Field { return rmwFields }
			noopConsume := func(string, []byte) {}
			for i := 0; i < opsPerThread; i++ {
				op := chooseOp(cfg, rng)
				t0 := time.Now()
				var err error
				switch op {
				case OpRead:
					err = db.Read(key(chooser.Next(rng)), noopConsume)
				case OpUpdate:
					rec := chooser.Next(rng)
					fields := cfg.updateFieldsInto(rng, rec, i+1, updSlot[:], updVal)
					err = db.Update(key(rec), fields)
				case OpInsert:
					idx := int(inserted.Add(1)) - 1
					err = db.Insert(Key(idx), cfg.BuildRecord(idx))
				case OpRMW:
					rec := chooser.Next(rng)
					rmwFields = cfg.updateFieldsInto(rng, rec, i+1, updSlot[:], updVal)
					err = db.ReadModifyWrite(key(rec), rmwMutate)
				case OpScan:
					start := Key(chooser.Next(rng))
					n := 1 + rng.Intn(cfg.MaxScanLen)
					err = db.(ScanDB).Scan(start, n, func(string, string, []byte) {})
				}
				hist(op).Record(time.Since(t0))
				if err != nil {
					st.errs++
				}
			}
			stats[t] = st
		}(t)
	}
	wg.Wait()

	res := &Result{
		Workload: cfg.Name,
		Duration: time.Since(start),
		PerOp:    map[OpType]*Histogram{},
	}
	for _, st := range stats {
		res.Errors += st.errs
		for op, h := range st.perOp {
			if res.PerOp[op] == nil {
				res.PerOp[op] = &Histogram{}
			}
			res.PerOp[op].Merge(h)
			res.Operations += h.Count()
		}
	}
	return res, nil
}

func newChooser(cfg Config, inserted *atomic.Int64) (KeyChooser, error) {
	switch cfg.Distribution {
	case "zipfian":
		return NewScrambledZipfian(cfg.RecordCount), nil
	case "latest":
		return NewLatest(inserted), nil
	case "uniform":
		return NewUniform(inserted), nil
	default:
		return nil, fmt.Errorf("ycsb: unknown distribution %q", cfg.Distribution)
	}
}

func chooseOp(cfg Config, rng *rand.Rand) OpType {
	p := rng.Float64()
	switch {
	case p < cfg.ReadProp:
		return OpRead
	case p < cfg.ReadProp+cfg.UpdateProp:
		return OpUpdate
	case p < cfg.ReadProp+cfg.UpdateProp+cfg.InsertProp:
		return OpInsert
	case p < cfg.ReadProp+cfg.UpdateProp+cfg.InsertProp+cfg.RMWProp:
		return OpRMW
	default:
		return OpScan
	}
}
