package ycsb

import (
	"encoding/json"
	"math/rand"
	"testing"
	"time"
)

// A histogram serialized to JSON, parsed back and merged into an empty
// one must report the same percentiles as the original — this is exactly
// the loadgen multi-process path (each process marshals its per-op
// histograms; the scenario runner unmarshals and merges them).
func TestHistogramJSONRoundTripMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var orig Histogram
	for i := 0; i < 10000; i++ {
		// Long-tailed latencies from ~1us to ~100ms.
		us := 1 + rng.ExpFloat64()*800
		orig.Record(time.Duration(us) * time.Microsecond)
	}

	data, err := json.Marshal(&orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Histogram
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	var merged Histogram
	merged.Merge(&back)

	if merged.Count() != orig.Count() {
		t.Fatalf("count %d != %d", merged.Count(), orig.Count())
	}
	if merged.Max() != orig.Max() {
		t.Fatalf("max %v != %v", merged.Max(), orig.Max())
	}
	if merged.Mean() != orig.Mean() {
		t.Fatalf("mean %v != %v", merged.Mean(), orig.Mean())
	}
	for _, p := range []float64{50, 95, 99, 99.9} {
		if got, want := merged.Percentile(p), orig.Percentile(p); got != want {
			t.Fatalf("p%v: %v != %v", p, got, want)
		}
	}
}

// Two halves of a stream, serialized separately and merged, must equal
// the histogram of the whole stream (bucket counts are exact, so this is
// equality, not approximation).
func TestHistogramJSONMergeTwoProcesses(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	samples := make([]time.Duration, 5000)
	for i := range samples {
		samples[i] = time.Duration(1+rng.Intn(50_000)) * time.Microsecond
	}

	var whole, a, b Histogram
	for i, s := range samples {
		whole.Record(s)
		if i%2 == 0 {
			a.Record(s)
		} else {
			b.Record(s)
		}
	}

	// Round-trip both halves through JSON, as two loadgen processes would.
	var halves [2]Histogram
	for i, h := range []*Histogram{&a, &b} {
		data, err := json.Marshal(h)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(data, &halves[i]); err != nil {
			t.Fatal(err)
		}
	}
	var merged Histogram
	merged.Merge(&halves[0])
	merged.Merge(&halves[1])

	if merged.Count() != whole.Count() {
		t.Fatalf("count %d != %d", merged.Count(), whole.Count())
	}
	for _, p := range []float64{50, 90, 95, 99} {
		if got, want := merged.Percentile(p), whole.Percentile(p); got != want {
			t.Fatalf("p%v: merged %v != whole %v", p, got, want)
		}
	}
}

// Unknown bucket keys (a newer writer with more buckets) are skipped, not
// fatal, and garbage input errors cleanly.
func TestHistogramJSONLenient(t *testing.T) {
	var h Histogram
	if err := json.Unmarshal([]byte(`{"count":1,"sum":10,"max":10,"min":10,"buckets":{"9999":1,"bad":1,"3":1}}`), &h); err != nil {
		t.Fatalf("out-of-range bucket keys should be skipped: %v", err)
	}
	if err := json.Unmarshal([]byte(`[1,2,3]`), &h); err == nil {
		t.Fatal("array input should not unmarshal into a histogram")
	}
}
