package ycsb

import (
	"fmt"
	"math/rand"

	"repro/internal/store"
)

// OpType enumerates the YCSB operations (§5.2: read, scan, insert, update
// and rmw; scans are only used by workload E, which is skipped).
type OpType int

// Operation kinds.
const (
	OpRead OpType = iota
	OpUpdate
	OpInsert
	OpRMW
	OpScan
)

// String names the op type.
func (t OpType) String() string {
	switch t {
	case OpRead:
		return "read"
	case OpUpdate:
		return "update"
	case OpInsert:
		return "insert"
	case OpRMW:
		return "rmw"
	case OpScan:
		return "scan"
	}
	return fmt.Sprintf("op(%d)", int(t))
}

// Config describes one workload instance. The zero proportions must sum
// to 1 across Read/Update/Insert/RMW.
type Config struct {
	Name        string
	RecordCount int
	FieldCount  int
	FieldLen    int
	Operations  int
	Threads     int

	ReadProp   float64
	UpdateProp float64
	InsertProp float64
	RMWProp    float64
	ScanProp   float64

	// MaxScanLen bounds workload E's scan lengths (default 100, as YCSB).
	MaxScanLen int

	// Distribution is "zipfian", "latest" or "uniform".
	Distribution string
	// WriteAllFields makes updates rewrite the full record; YCSB's
	// default (false) updates one random field.
	WriteAllFields bool

	Seed int64

	// fieldNames caches the rendered field names so the hot loop never
	// formats them (filled by Defaults).
	fieldNames []string
}

// Defaults fills unset knobs with the paper's defaults, scaled: the paper
// runs 3M records / 100M ops on an 80-core Optane box; the library default
// is 30k records so the full suite runs on a laptop. Benchmarks override.
func (c Config) Defaults() Config {
	if c.RecordCount == 0 {
		c.RecordCount = 30_000
	}
	if c.FieldCount == 0 {
		c.FieldCount = 10
	}
	if c.FieldLen == 0 {
		c.FieldLen = 100
	}
	if c.Operations == 0 {
		c.Operations = 3 * c.RecordCount
	}
	if c.Threads == 0 {
		c.Threads = 1 // the paper's default sequential client
	}
	if c.Distribution == "" {
		c.Distribution = "zipfian"
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.MaxScanLen == 0 {
		c.MaxScanLen = 100
	}
	if len(c.fieldNames) != c.FieldCount {
		c.fieldNames = make([]string, c.FieldCount)
		for i := range c.fieldNames {
			c.fieldNames[i] = FieldName(i)
		}
	}
	return c
}

// fieldName returns the cached rendering of field index i.
func (c Config) fieldName(i int) string {
	if i < len(c.fieldNames) {
		return c.fieldNames[i]
	}
	return FieldName(i)
}

// Workload returns the named standard workload (A, B, C, D or F).
func Workload(name string) (Config, error) {
	c := Config{Name: name}
	switch name {
	case "A": // update heavy
		c.ReadProp, c.UpdateProp = 0.5, 0.5
	case "B": // read mostly
		c.ReadProp, c.UpdateProp = 0.95, 0.05
	case "C": // read only
		c.ReadProp = 1.0
	case "D": // read latest
		c.ReadProp, c.InsertProp = 0.95, 0.05
		c.Distribution = "latest"
	case "E": // short scans — an extension: the paper skips E because
		// Infinispan lacks a direct scan API; ordered J-PDT mirrors
		// support it (store.Scanner).
		c.ScanProp, c.InsertProp = 0.95, 0.05
	case "F": // read-modify-write
		c.ReadProp, c.RMWProp = 0.5, 0.5
	default:
		return c, fmt.Errorf("ycsb: unknown workload %q", name)
	}
	return c, nil
}

// MustWorkload is Workload for known-good names.
func MustWorkload(name string) Config {
	c, err := Workload(name)
	if err != nil {
		panic(err)
	}
	return c
}

// Key renders record index i as a YCSB key.
func Key(i int) string { return fmt.Sprintf("user%012d", i) }

// appendKey renders Key(i) into dst without allocating (given capacity):
// the hot loop reuses one buffer per thread and hands the store a
// transient string view over it, which every retention point in the store
// clones.
func appendKey(dst []byte, i int) []byte {
	dst = append(dst[:0], "user"...)
	var digits [12]byte
	for p := len(digits) - 1; p >= 0; p-- {
		digits[p] = byte('0' + i%10)
		i /= 10
	}
	return append(dst, digits[:]...)
}

// FieldName renders field index i.
func FieldName(i int) string { return fmt.Sprintf("field%d", i) }

// buildValue deterministically fills a field value (xorshift keyed by
// record, field and version).
func buildValue(dst []byte, record, field, version int) {
	x := uint64(record)*2654435761 ^ uint64(field)<<32 ^ uint64(version)<<48 ^ 0x9e3779b97f4a7c15
	for i := range dst {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		dst[i] = byte('a' + (x % 26))
	}
}

// BuildRecord produces the full record for index i.
func (c Config) BuildRecord(i int) *store.Record {
	rec := &store.Record{Fields: make([]store.Field, c.FieldCount)}
	for f := 0; f < c.FieldCount; f++ {
		v := make([]byte, c.FieldLen)
		buildValue(v, i, f, 0)
		rec.Fields[f] = store.Field{Name: c.fieldName(f), Value: v}
	}
	return rec
}

// updateFields produces the field set an update writes.
func (c Config) updateFields(rng *rand.Rand, record, version int) []store.Field {
	if c.WriteAllFields {
		out := make([]store.Field, c.FieldCount)
		for f := 0; f < c.FieldCount; f++ {
			v := make([]byte, c.FieldLen)
			buildValue(v, record, f, version)
			out[f] = store.Field{Name: c.fieldName(f), Value: v}
		}
		return out
	}
	f := rng.Intn(c.FieldCount)
	v := make([]byte, c.FieldLen)
	buildValue(v, record, f, version)
	return []store.Field{{Name: c.fieldName(f), Value: v}}
}

// updateFieldsInto is updateFields for the single-field default, reusing
// the caller's scratch: every backend copies values on update (into NVMM,
// a marshal buffer, or a fresh slice), so the buffer is safe to recycle
// across operations.
func (c Config) updateFieldsInto(rng *rand.Rand, record, version int, dst []store.Field, val []byte) []store.Field {
	if c.WriteAllFields {
		return c.updateFields(rng, record, version)
	}
	f := rng.Intn(c.FieldCount)
	buildValue(val, record, f, version)
	dst[0] = store.Field{Name: c.fieldName(f), Value: val}
	return dst[:1]
}
