// Package gcsim reproduces the integrated design the paper argues against
// (§2.2): a managed heap whose garbage collector must traverse the whole
// persistent dataset. It implements a stop-the-world tri-color mark-sweep
// collector (the go-pmem collector of Figure 2 is a tri-color concurrent
// mark without compaction; stop-the-world preserves the measured quantity —
// CPU time proportional to live objects — without the concurrency noise),
// triggered every Threshold allocated bytes, exactly like the paper forcing
// a collection every 10 GB of allocation.
//
// On top of it, RedisLike is the go-redis-pmem stand-in: a feature-poor
// key-value store whose records live as managed objects, so that growing
// the persistent dataset grows every GC pass (Figure 2), and whose cache
// experiment (Figure 1) shows GC time and tail latency growing with the
// cache ratio.
package gcsim

import (
	"sync"
	"time"
)

// Object is a managed heap object: a reference array plus an opaque
// payload. The collector traverses Refs; Payload only contributes size.
type Object struct {
	Refs    []*Object
	Payload []byte

	marked bool
	born   uint64  // allocation epoch (see Heap.epoch)
	next   *Object // intrusive all-objects list, for the sweep
}

// Stats accumulates collector work.
type Stats struct {
	Collections   int
	GCTime        time.Duration // total stop-the-world time
	MarkedObjects uint64        // objects visited across all marks
	SweptObjects  uint64        // objects reclaimed across all sweeps
	LiveObjects   int
	LiveBytes     uint64
}

// Heap is the managed heap. All methods are safe for concurrent use; a
// collection stops the world (every allocating goroutine waits).
type Heap struct {
	mu        sync.Mutex
	roots     []*Object
	all       *Object
	allocated uint64 // bytes since the last collection
	threshold uint64
	epoch     uint64 // bumped by every collection
	stats     Stats
}

// New creates a heap that collects every threshold allocated bytes.
func New(threshold uint64) *Heap {
	if threshold == 0 {
		threshold = 64 << 20
	}
	return &Heap{threshold: threshold}
}

// Alloc creates a managed object with room for nrefs references and a
// payload of size bytes. Crossing the allocation threshold triggers a
// stop-the-world collection, whose latency the caller pays — that is the
// tail-latency effect of Figure 1(right).
func (h *Heap) Alloc(nrefs, size int) *Object {
	o := &Object{Payload: make([]byte, size)}
	if nrefs > 0 {
		o.Refs = make([]*Object, nrefs)
	}
	h.mu.Lock()
	o.born = h.epoch
	o.next = h.all
	h.all = o
	h.stats.LiveObjects++
	h.stats.LiveBytes += uint64(objSize(o))
	h.allocated += uint64(objSize(o))
	if h.allocated >= h.threshold {
		h.collectLocked()
	}
	h.mu.Unlock()
	return o
}

func objSize(o *Object) int { return len(o.Payload) + 8*len(o.Refs) + 48 }

// AddRoot registers a GC root.
func (h *Heap) AddRoot(o *Object) {
	h.mu.Lock()
	h.roots = append(h.roots, o)
	h.mu.Unlock()
}

// Collect forces a stop-the-world collection.
func (h *Heap) Collect() {
	h.mu.Lock()
	h.collectLocked()
	h.mu.Unlock()
}

// collectLocked is the tri-color mark-sweep: roots are gray, marking
// blackens the transitive closure, the sweep unlinks white objects.
func (h *Heap) collectLocked() {
	start := time.Now()
	// Mark.
	gray := make([]*Object, 0, 1024)
	for _, r := range h.roots {
		if r != nil && !r.marked {
			r.marked = true
			gray = append(gray, r)
		}
	}
	var visited uint64
	for len(gray) > 0 {
		o := gray[len(gray)-1]
		gray = gray[:len(gray)-1]
		visited++
		for _, ref := range o.Refs {
			if ref != nil && !ref.marked {
				ref.marked = true
				gray = append(gray, ref)
			}
		}
	}
	// Sweep: rebuild the all-list with only marked objects, clearing
	// marks for the next cycle. No compaction, as in go-pmem. Objects
	// born in the current epoch survive unconditionally (allocate-black):
	// an allocation can trigger this collection before its caller has
	// linked the object into the graph, and collecting it then would
	// corrupt the heap.
	var live *Object
	liveCount := 0
	var liveBytes uint64
	var swept uint64
	for o := h.all; o != nil; {
		next := o.next
		if o.marked || o.born == h.epoch {
			o.marked = false
			o.next = live
			live = o
			liveCount++
			liveBytes += uint64(objSize(o))
		} else {
			swept++
			o.next = nil // help the host GC
		}
		o = next
	}
	h.all = live
	h.allocated = 0
	h.epoch++
	h.stats.Collections++
	h.stats.GCTime += time.Since(start)
	h.stats.MarkedObjects += visited
	h.stats.SweptObjects += swept
	h.stats.LiveObjects = liveCount
	h.stats.LiveBytes = liveBytes
}

// Stats returns a snapshot of collector statistics.
func (h *Heap) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats
}
