package gcsim

import (
	"fmt"
	"testing"
)

func TestCollectReclaimsGarbage(t *testing.T) {
	h := New(1 << 30) // manual collections only
	root := h.Alloc(10, 0)
	h.AddRoot(root)
	kept := h.Alloc(0, 100)
	root.Refs[0] = kept
	for i := 0; i < 50; i++ {
		h.Alloc(0, 100) // garbage
	}
	// Two passes: the first keeps same-epoch allocations (allocate-black),
	// the second reclaims the garbage.
	h.Collect()
	h.Collect()
	st := h.Stats()
	if st.LiveObjects != 2 {
		t.Fatalf("live = %d, want 2", st.LiveObjects)
	}
	if st.SweptObjects != 50 {
		t.Fatalf("swept = %d", st.SweptObjects)
	}
	if st.Collections != 2 {
		t.Fatalf("collections = %d", st.Collections)
	}
}

func TestCollectFollowsDeepGraphs(t *testing.T) {
	h := New(1 << 30)
	root := h.Alloc(1, 0)
	h.AddRoot(root)
	cur := root
	for i := 0; i < 1000; i++ {
		n := h.Alloc(1, 8)
		cur.Refs[0] = n
		cur = n
	}
	h.Collect()
	h.Collect()
	if st := h.Stats(); st.LiveObjects != 1001 {
		t.Fatalf("live = %d", st.LiveObjects)
	}
}

func TestThresholdTriggersCollection(t *testing.T) {
	h := New(10_000)
	for i := 0; i < 100; i++ {
		h.Alloc(0, 200)
	}
	if st := h.Stats(); st.Collections == 0 {
		t.Fatal("allocation threshold never triggered a collection")
	}
}

func TestGCCostGrowsWithLiveSet(t *testing.T) {
	// The Figure 2 mechanism in miniature: same op count, bigger live
	// dataset, more objects visited per collection.
	visitsFor := func(records int) uint64 {
		h := New(1 << 30)
		r := NewRedisLike(h, 1024)
		for i := 0; i < records; i++ {
			r.Set(fmt.Sprintf("k%d", i), make([]byte, 64))
		}
		h.Collect()
		before := h.Stats().MarkedObjects
		h.Collect()
		return h.Stats().MarkedObjects - before
	}
	small := visitsFor(1000)
	large := visitsFor(10000)
	if large < 8*small {
		t.Fatalf("mark work did not scale with the live set: %d vs %d", small, large)
	}
}

func TestRedisLikeOps(t *testing.T) {
	h := New(1 << 30)
	r := NewRedisLike(h, 64)
	r.Set("a", []byte("1"))
	r.Set("b", []byte("2"))
	if v, ok := r.Get("a"); !ok || string(v) != "1" {
		t.Fatalf("Get(a) = %q %v", v, ok)
	}
	if _, ok := r.Get("zz"); ok {
		t.Fatal("phantom key")
	}
	r.Set("a", []byte("11"))
	if v, _ := r.Get("a"); string(v) != "11" {
		t.Fatal("update lost")
	}
	if !r.RMW("a", func(v []byte) []byte { return append(v, '!') }) {
		t.Fatal("rmw failed")
	}
	if v, _ := r.Get("a"); string(v) != "11!" {
		t.Fatalf("rmw result %q", v)
	}
	if r.RMW("zz", func(v []byte) []byte { return v }) {
		t.Fatal("rmw on missing key")
	}
	if !r.Del("b") || r.Del("b") {
		t.Fatal("del semantics")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
	// Deleted and overwritten values become garbage. Two passes settle
	// the allocate-black epoch; further collections are idempotent.
	h.Collect()
	h.Collect()
	before := h.Stats().LiveObjects
	h.Collect()
	if h.Stats().LiveObjects != before {
		t.Fatal("idempotent collection changed liveness")
	}
}

func TestRedisLikeSurvivesCollection(t *testing.T) {
	h := New(1 << 30)
	r := NewRedisLike(h, 32)
	for i := 0; i < 500; i++ {
		r.Set(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i)))
	}
	h.Collect()
	for i := 0; i < 500; i++ {
		if v, ok := r.Get(fmt.Sprintf("k%d", i)); !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%d lost after GC: %q %v", i, v, ok)
		}
	}
}

func TestManagedCacheEvictsAtCapacity(t *testing.T) {
	h := New(1 << 30)
	c := NewManagedCache(h, 3)
	for i := 0; i < 5; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	if _, ok := c.Get("k0"); ok {
		t.Fatal("oldest entry not evicted")
	}
	if v, ok := c.Get("k4"); !ok || v[0] != 4 {
		t.Fatal("latest entry missing")
	}
	// The live managed objects track the cache size (two passes: the
	// first keeps same-epoch allocations).
	h.Collect()
	h.Collect()
	if live := h.Stats().LiveObjects; live != 4 { // root + 3 entries
		t.Fatalf("live = %d", live)
	}
}

func TestManagedCacheZeroCapacity(t *testing.T) {
	h := New(1 << 30)
	c := NewManagedCache(h, 0)
	c.Put("k", []byte("v"))
	if _, ok := c.Get("k"); ok {
		t.Fatal("zero-capacity cache cached")
	}
}

func TestManagedCacheUpdateInPlace(t *testing.T) {
	h := New(1 << 30)
	c := NewManagedCache(h, 2)
	c.Put("k", []byte("a"))
	c.Put("k", []byte("b"))
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	if v, _ := c.Get("k"); string(v) != "b" {
		t.Fatal("update lost")
	}
	h.Collect()
	h.Collect()
	if live := h.Stats().LiveObjects; live != 2 { // root + 1 entry
		t.Fatalf("stale cache entry still live: %d", live)
	}
}
