package gcsim

import (
	"sync"
)

// RedisLike is the go-redis-pmem stand-in of Figure 2: a feature-poor
// key-value store whose entries are managed objects. The durable graph is
// root -> bucket table -> entry chains -> key/value objects, so every
// collection pass visits the entire dataset; a volatile index provides the
// O(1) operations the benchmark driver needs without hiding that cost.
type RedisLike struct {
	h     *Heap
	table *Object // Refs = bucket heads

	mu    sync.Mutex
	index map[string]*Object // key -> entry object
}

// Entry object layout: Refs[0] = next in bucket, Refs[1] = value object;
// Payload = key bytes. Value objects are pure payload.

// NewRedisLike creates the store with the given bucket count.
func NewRedisLike(h *Heap, buckets int) *RedisLike {
	t := h.Alloc(buckets, 0)
	h.AddRoot(t)
	return &RedisLike{h: h, table: t, index: make(map[string]*Object)}
}

func bucketOf(key string, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return int(h % uint32(n))
}

// Set binds key to a fresh value object holding val.
func (r *RedisLike) Set(key string, val []byte) {
	v := r.h.Alloc(0, len(val))
	copy(v.Payload, val)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.index[key]; ok {
		e.Refs[1] = v // old value becomes garbage for the next GC
		return
	}
	e := r.h.Alloc(2, len(key))
	copy(e.Payload, key)
	b := bucketOf(key, len(r.table.Refs))
	e.Refs[0] = r.table.Refs[b]
	e.Refs[1] = v
	r.table.Refs[b] = e
	r.index[key] = e
}

// Get copies the value bound to key.
func (r *RedisLike) Get(key string) ([]byte, bool) {
	r.mu.Lock()
	e, ok := r.index[key]
	r.mu.Unlock()
	if !ok {
		return nil, false
	}
	v := e.Refs[1]
	out := make([]byte, len(v.Payload))
	copy(out, v.Payload)
	return out, true
}

// RMW reads the value, applies mutate, and stores the result as a fresh
// value object (go-redis-pmem style: updates allocate).
func (r *RedisLike) RMW(key string, mutate func(v []byte) []byte) bool {
	r.mu.Lock()
	e, ok := r.index[key]
	r.mu.Unlock()
	if !ok {
		return false
	}
	old := e.Refs[1].Payload
	buf := make([]byte, len(old))
	copy(buf, old)
	out := mutate(buf)
	v := r.h.Alloc(0, len(out))
	copy(v.Payload, out)
	r.mu.Lock()
	e.Refs[1] = v
	r.mu.Unlock()
	return true
}

// Del unbinds key.
func (r *RedisLike) Del(key string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.index[key]
	if !ok {
		return false
	}
	b := bucketOf(key, len(r.table.Refs))
	if r.table.Refs[b] == e {
		r.table.Refs[b] = e.Refs[0]
	} else {
		for c := r.table.Refs[b]; c != nil; c = c.Refs[0] {
			if c.Refs[0] == e {
				c.Refs[0] = e.Refs[0]
				break
			}
		}
	}
	delete(r.index, key)
	return true
}

// Len returns the number of keys.
func (r *RedisLike) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.index)
}

// ManagedCache is the Figure 1 substrate: the volatile Infinispan cache
// held in a managed heap. Entries (key + record payload) are managed
// objects reachable from a cache root; the bigger the cache ratio, the
// more live objects every collection traverses.
type ManagedCache struct {
	h    *Heap
	root *Object

	mu      sync.Mutex
	slot    map[string]int // key -> slot index in root.Refs
	order   []string       // FIFO eviction ring (slot i holds order[i])
	nextEv  int
	maxSize int
}

// NewManagedCache creates a cache bounded to capacity entries (0 disables
// caching).
func NewManagedCache(h *Heap, capacity int) *ManagedCache {
	var root *Object
	if capacity > 0 {
		root = h.Alloc(capacity, 0)
		h.AddRoot(root)
	}
	return &ManagedCache{h: h, root: root, slot: make(map[string]int), maxSize: capacity}
}

// Get returns the cached payload.
func (c *ManagedCache) Get(key string) ([]byte, bool) {
	if c.maxSize == 0 {
		return nil, false
	}
	c.mu.Lock()
	i, ok := c.slot[key]
	var payload []byte
	if ok {
		payload = c.root.Refs[i].Payload
	}
	c.mu.Unlock()
	return payload, ok
}

// Put caches a payload, evicting FIFO when full. The replaced entry
// becomes garbage for the next collection, as in a managed runtime.
func (c *ManagedCache) Put(key string, payload []byte) {
	if c.maxSize == 0 {
		return
	}
	e := c.h.Alloc(0, len(payload))
	copy(e.Payload, payload)
	c.mu.Lock()
	defer c.mu.Unlock()
	if i, ok := c.slot[key]; ok {
		c.root.Refs[i] = e
		return
	}
	if len(c.order) < c.maxSize {
		i := len(c.order)
		c.root.Refs[i] = e
		c.order = append(c.order, key)
		c.slot[key] = i
		return
	}
	victim := c.order[c.nextEv]
	delete(c.slot, victim)
	c.root.Refs[c.nextEv] = e
	c.order[c.nextEv] = key
	c.slot[key] = c.nextEv
	c.nextEv = (c.nextEv + 1) % c.maxSize
}

// Len returns the number of cached entries.
func (c *ManagedCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.slot)
}
