package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/heap"
)

// recoverHeap runs the recovery procedure of §4.1.3: traverse the live
// object graph from the root map, nullify references to invalid objects,
// call per-object Recover hooks, then sweep everything unreachable back to
// the allocator and close with a single fence.
//
// With skipGraph (J-PFA-nogc, Figure 11) the traversal is replaced by a
// linear header scan: valid masters and valid pooled slots are considered
// live. This is cheaper but only sound if the application never crashes
// with invalid-but-reachable objects (e.g. every allocation and insertion
// happens inside one failure-atomic block).
//
// Both phases run on RecoverOptions.Parallelism workers. The mark set is
// concurrent (first-marker-wins), so each object is claimed by exactly one
// worker: Recover hooks run once and nullification writes never race — a
// worker only writes into objects it owns. All nullifications are still
// persisted by the sweep's single closing fence, exactly as in the serial
// procedure.
func (h *Heap) recoverHeap(skipGraph bool) error {
	if h.RecoveryStats.Formatted {
		return nil // a fresh heap has nothing to recover
	}
	workers := h.RecoverParallelism()
	m := h.mem.NewMarkSet()
	var live, nullified atomic.Uint64
	start := time.Now()
	if skipGraph {
		h.scanHeaders(m, workers, &live)
	} else {
		h.RecoveryStats.GraphTraversed = true
		rootRef := h.mem.RootRef()
		if rootRef != 0 && h.mem.Valid(rootRef) {
			m.MarkObject(rootRef)
			var err error
			if workers > 1 {
				err = h.traverseParallel(m, rootRef, workers, &live, &nullified)
			} else {
				err = h.traverse(m, rootRef, &live, &nullified)
			}
			if err != nil {
				return err
			}
		}
	}
	h.recObs.MarkNs.Add(uint64(time.Since(start)))
	h.recObs.MarkedBlocks.Add(m.Marked())
	h.recObs.LiveObjects.Add(live.Load())
	h.recObs.NullifiedRefs.Add(nullified.Load())

	start = time.Now()
	sw := h.mem.SweepParallel(m, workers) // zeroes dead headers, rebuilds free state, fences
	h.recObs.SweepNs.Add(uint64(time.Since(start)))
	h.recObs.SweptBlocks.Add(sw.DeadBlocks)
	h.recObs.ScrubbedHeaders.Add(sw.ScrubbedHeaders)

	h.RecoveryStats.LiveObjects = live.Load()
	h.RecoveryStats.NullifiedRefs = nullified.Load()
	h.RecoveryStats.LiveBlocks = m.Marked()
	return nil
}

// visitObject processes one live object the traversal has claimed: run the
// per-object repair hook (§3.2.1), nullify references to invalid targets
// (§2.4 — the closing fence of the sweep persists all nullifications at
// once), and emit every newly marked child.
func (h *Heap) visitObject(m *heap.MarkSet, ref Ref, nullified *atomic.Uint64, emit func(Ref)) error {
	id := h.mem.ClassOf(ref)
	c, ok := h.byID[id]
	if !ok {
		name, _ := h.mem.ClassName(id)
		return fmt.Errorf("core: recovery found instance of unregistered class id %d (%q) at %#x", id, name, ref)
	}
	obj := h.wrap(ref)
	po := c.Factory(obj)
	if rec, ok := po.(Recoverer); ok {
		rec.Recover()
	}
	if c.Refs == nil {
		return nil
	}
	for _, off := range c.Refs(obj) {
		target := obj.ReadRef(off)
		if target == 0 {
			continue
		}
		if !h.mem.Valid(target) {
			// A partially deleted (or never validated) object:
			// nullify the reference.
			obj.WriteRef(off, 0)
			obj.PWBField(off, 8)
			nullified.Add(1)
			continue
		}
		if m.MarkObject(target) {
			emit(target)
		}
	}
	return nil
}

// traverse is the serial depth-first traversal — the paper's procedure,
// kept as the oracle for the parallel variant.
func (h *Heap) traverse(m *heap.MarkSet, rootRef Ref, live, nullified *atomic.Uint64) error {
	work := []Ref{rootRef}
	for len(work) > 0 {
		ref := work[len(work)-1]
		work = work[:len(work)-1]
		live.Add(1)
		err := h.visitObject(m, ref, nullified, func(t Ref) { work = append(work, t) })
		if err != nil {
			return err
		}
	}
	return nil
}

// travQueue is one traversal worker's deque. The owner pushes and pops at
// the tail; idle workers steal half from the head, where the oldest (and
// typically widest) subtrees sit, so one hot queue spreads across the
// fleet in O(log n) steals.
type travQueue struct {
	mu    sync.Mutex
	items []Ref
	_pad  [40]byte // keep queues on distinct cache lines
}

func (q *travQueue) push(r Ref) {
	q.mu.Lock()
	q.items = append(q.items, r)
	q.mu.Unlock()
}

func (q *travQueue) pushAll(rs []Ref) {
	q.mu.Lock()
	q.items = append(q.items, rs...)
	q.mu.Unlock()
}

func (q *travQueue) pop() (Ref, bool) {
	q.mu.Lock()
	n := len(q.items)
	if n == 0 {
		q.mu.Unlock()
		return 0, false
	}
	r := q.items[n-1]
	q.items = q.items[:n-1]
	q.mu.Unlock()
	return r, true
}

func (q *travQueue) stealHalf(buf *[]Ref) bool {
	q.mu.Lock()
	n := len(q.items)
	if n == 0 {
		q.mu.Unlock()
		return false
	}
	take := (n + 1) / 2
	*buf = append((*buf)[:0], q.items[:take]...)
	q.items = append(q.items[:0], q.items[take:]...)
	q.mu.Unlock()
	return true
}

// traverseParallel is the bounded work-stealing variant of traverse: a
// fixed fleet of workers, one deque each, and an atomic count of in-flight
// objects for termination (an item is in flight from the moment its
// MarkObject wins until its visit completes, so pending==0 with all queues
// empty means the graph is exhausted). Stealing moves items between queues
// without touching the count.
func (h *Heap) traverseParallel(m *heap.MarkSet, rootRef Ref, workers int, live, nullified *atomic.Uint64) error {
	queues := make([]*travQueue, workers)
	for i := range queues {
		queues[i] = &travQueue{}
	}
	var pending atomic.Int64
	pending.Store(1)
	queues[0].push(rootRef)

	var stop atomic.Bool
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		stop.Store(true)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			q := queues[self]
			var stolen []Ref
			for {
				if stop.Load() {
					return
				}
				ref, ok := q.pop()
				for v := 1; !ok && v < workers; v++ {
					if queues[(self+v)%workers].stealHalf(&stolen) {
						q.pushAll(stolen)
						ref, ok = q.pop()
					}
				}
				if !ok {
					if pending.Load() == 0 {
						return
					}
					runtime.Gosched()
					continue
				}
				live.Add(1)
				err := h.visitObject(m, ref, nullified, func(t Ref) {
					pending.Add(1)
					q.push(t)
				})
				pending.Add(-1)
				if err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return firstErr
}

// scanHeaders rebuilds the mark set from block headers alone (J-PFA-nogc):
// valid masters and valid pooled slots are live by definition. It scans
// the whole arena — the persistent bump mirror is advisory (unfenced) and
// cannot be trusted after a crash, and untouched blocks read as zero
// headers by construction. Header dispositions are independent, so the
// arena is carved into one contiguous range per worker.
func (h *Heap) scanHeaders(m *heap.MarkSet, workers int, live *atomic.Uint64) {
	total := h.mem.NBlocks()
	scan := func(lo, hi uint64) {
		for idx := lo; idx < hi; idx++ {
			r := h.mem.BlockRef(idx)
			id, valid, sc := heap.UnpackHeader(h.mem.Header(r))
			switch {
			case id == heap.PoolChunkClass && valid:
				if int(sc) >= len(heap.SlotSizes) {
					continue // corrupt chunk: swept
				}
				size := uint64(heap.SlotSizes[sc])
				for s := uint64(0); s+size <= heap.Payload; s += size {
					slot := r + heap.HeaderSize + s
					if h.mem.Valid(slot) {
						m.MarkObject(slot)
						live.Add(1)
					}
				}
			case id != 0 && id != heap.PoolChunkClass && valid:
				m.MarkObject(r)
				live.Add(1)
			}
		}
	}
	if workers <= 1 || total < uint64(workers)*2 {
		scan(0, total)
		return
	}
	chunk := (total + uint64(workers) - 1) / uint64(workers)
	var wg sync.WaitGroup
	for lo := uint64(0); lo < total; lo += chunk {
		hi := lo + chunk
		if hi > total {
			hi = total
		}
		wg.Add(1)
		go func(lo, hi uint64) {
			defer wg.Done()
			scan(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
