package core

import (
	"fmt"

	"repro/internal/heap"
)

// recoverHeap runs the recovery procedure of §4.1.3: traverse the live
// object graph from the root map, nullify references to invalid objects,
// call per-object Recover hooks, then sweep everything unreachable back to
// the allocator and close with a single fence.
//
// With skipGraph (J-PFA-nogc, Figure 11) the traversal is replaced by a
// linear header scan: valid masters and valid pooled slots are considered
// live. This is cheaper but only sound if the application never crashes
// with invalid-but-reachable objects (e.g. every allocation and insertion
// happens inside one failure-atomic block).
func (h *Heap) recoverHeap(skipGraph bool) error {
	if h.RecoveryStats.Formatted {
		return nil // a fresh heap has nothing to recover
	}
	if skipGraph {
		return h.recoverByScan()
	}
	h.RecoveryStats.GraphTraversed = true
	m := h.mem.NewMarkSet()
	rootRef := h.mem.RootRef()
	if rootRef != 0 && h.mem.Valid(rootRef) {
		if err := h.traverse(m, rootRef); err != nil {
			return err
		}
	}
	h.mem.Sweep(m) // zeroes dead headers, rebuilds free state, fences
	h.RecoveryStats.LiveBlocks = m.Marked()
	return nil
}

func (h *Heap) traverse(m *heap.MarkSet, rootRef Ref) error {
	work := []Ref{rootRef}
	m.MarkObject(rootRef)
	for len(work) > 0 {
		ref := work[len(work)-1]
		work = work[:len(work)-1]
		h.RecoveryStats.LiveObjects++

		id := h.mem.ClassOf(ref)
		c, ok := h.byID[id]
		if !ok {
			name, _ := h.mem.ClassName(id)
			return fmt.Errorf("core: recovery found instance of unregistered class id %d (%q) at %#x", id, name, ref)
		}
		obj := h.wrap(ref)
		// Per-object repair hook (§3.2.1), invoked on the typed proxy.
		po := c.Factory(obj)
		if rec, ok := po.(Recoverer); ok {
			rec.Recover()
		}
		if c.Refs == nil {
			continue
		}
		for _, off := range c.Refs(obj) {
			target := obj.ReadRef(off)
			if target == 0 {
				continue
			}
			if !h.mem.Valid(target) {
				// A partially deleted (or never validated) object:
				// nullify the reference (§2.4). The closing fence of
				// Sweep persists all nullifications at once.
				obj.WriteRef(off, 0)
				obj.PWBField(off, 8)
				h.RecoveryStats.NullifiedRefs++
				continue
			}
			if m.MarkObject(target) {
				work = append(work, target)
			}
		}
	}
	return nil
}

// recoverByScan rebuilds allocator state from block headers alone. It
// scans the whole arena: the persistent bump mirror is advisory (unfenced)
// and cannot be trusted after a crash, and untouched blocks read as zero
// headers by construction.
func (h *Heap) recoverByScan() error {
	m := h.mem.NewMarkSet()
	bump := h.mem.NBlocks()
	for idx := uint64(0); idx < bump; idx++ {
		r := h.mem.BlockRef(idx)
		id, valid, sc := heap.UnpackHeader(h.mem.Header(r))
		switch {
		case id == heap.PoolChunkClass && valid:
			if int(sc) >= len(heap.SlotSizes) {
				continue // corrupt chunk: swept
			}
			size := uint64(heap.SlotSizes[sc])
			for s := uint64(0); s+size <= heap.Payload; s += size {
				slot := r + heap.HeaderSize + s
				if h.mem.Valid(slot) {
					m.MarkObject(slot)
					h.RecoveryStats.LiveObjects++
				}
			}
		case id != 0 && id != heap.PoolChunkClass && valid:
			m.MarkObject(r)
			h.RecoveryStats.LiveObjects++
		}
	}
	h.mem.Sweep(m)
	h.RecoveryStats.LiveBlocks = m.Marked()
	return nil
}
