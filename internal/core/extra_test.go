package core

import (
	"fmt"
	"testing"

	"repro/internal/heap"
	"repro/internal/nvm"
)

// Additional coverage: object-reference helpers, root-map corners, and
// flush-range behavior.

func TestReadWriteObjectHelpers(t *testing.T) {
	h, _, cls := openTestHeap(t, 1<<20, false)
	parent := newSimple(t, h, cls, 1)
	child := newSimple(t, h, cls, 2)

	parent.Core().WriteObject(simpleRef, child)
	po, err := parent.Core().ReadObject(simpleRef)
	if err != nil {
		t.Fatal(err)
	}
	if po.(*simple).X() != 2 {
		t.Fatal("ReadObject returned the wrong target")
	}
	if !po.(*simple).resurrected {
		t.Fatal("ReadObject skipped the resurrect constructor")
	}
	parent.Core().WriteObject(simpleRef, nil)
	po, err = parent.Core().ReadObject(simpleRef)
	if err != nil || po != nil {
		t.Fatalf("nil write: %v %v", po, err)
	}
}

func TestPWBFieldSpansBlocks(t *testing.T) {
	pool := nvm.New(1<<20, nvm.Options{Tracked: true})
	cls := &Class{Name: "test.span", Factory: func(o *Object) PObject { return o }}
	h, err := Open(pool, Config{HeapOptions: heap.Options{LogSlots: 2, LogSlotSize: 4096}, Classes: []*Class{cls}})
	if err != nil {
		t.Fatal(err)
	}
	po, err := h.Alloc(cls, 3*heap.Payload)
	if err != nil {
		t.Fatal(err)
	}
	o := po.Core()
	blob := make([]byte, 2*heap.Payload)
	for i := range blob {
		blob[i] = byte(i)
	}
	o.WriteBytes(100, blob)
	o.PWBField(100, uint64(len(blob))) // must cover all spanned blocks
	o.Validate()
	h.PSync()
	if err := h.Root().Put("span", po); err != nil {
		t.Fatal(err)
	}

	img := pool.CrashImage(nvm.CrashStrict, nil)
	h2, err := Open(img, Config{Classes: []*Class{{Name: "test.span", Factory: func(o *Object) PObject { return o }}}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := h2.Root().Get("span")
	if err != nil || got == nil {
		t.Fatalf("span object lost: %v", err)
	}
	back := got.Core().ReadBytes(100, uint64(len(blob)))
	for i := range blob {
		if back[i] != blob[i] {
			t.Fatalf("byte %d: %#x want %#x — PWBField missed a block", i, back[i], blob[i])
		}
	}
}

func TestRootWPutOverwriteKeepsOldObjectAlive(t *testing.T) {
	h, _, cls := openTestHeap(t, 1<<20, false)
	a := newSimple(t, h, cls, 1)
	b := newSimple(t, h, cls, 2)
	if err := h.Root().Put("x", a); err != nil {
		t.Fatal(err)
	}
	if err := h.Root().WPut("x", b); err != nil {
		t.Fatal(err)
	}
	// WPut rebinds but does not free: the old object is the caller's to
	// delete (explicit deletion, §2.5).
	if !h.Mem().Valid(a.Core().Ref()) {
		t.Fatal("WPut freed the previous binding's object")
	}
	if h.Root().GetRef("x") != b.Core().Ref() {
		t.Fatal("rebind did not take")
	}
	if err := h.Root().WPut("y", nil); err == nil {
		t.Fatal("nil WPut accepted")
	}
}

func TestRootNamesAndForEach(t *testing.T) {
	h, _, cls := openTestHeap(t, 1<<21, false)
	for i := 0; i < 5; i++ {
		if err := h.Root().Put(fmt.Sprintf("n%d", i), newSimple(t, h, cls, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	names := h.Root().Names()
	if len(names) != 5 || names[0] != "n0" || names[4] != "n4" {
		t.Fatalf("Names = %v", names)
	}
	seen := map[string]Ref{}
	h.Root().ForEach(func(name string, ref Ref) { seen[name] = ref })
	if len(seen) != 5 {
		t.Fatalf("ForEach visited %d", len(seen))
	}
	for name, ref := range seen {
		if ref == 0 || !h.Mem().Valid(ref) {
			t.Fatalf("%s -> invalid ref", name)
		}
	}
}

func TestInspectMatchesResurrect(t *testing.T) {
	h, _, cls := openTestHeap(t, 1<<20, false)
	s := newSimple(t, h, cls, 77)
	o := h.Inspect(s.Core().Ref())
	if o.ReadInt64(simpleX) != 77 {
		t.Fatal("Inspect read wrong data")
	}
	if o.ClassID() != cls.ID() {
		t.Fatalf("ClassID = %d want %d", o.ClassID(), cls.ID())
	}
	if o.Size() == 0 {
		t.Fatal("Inspect lost the size")
	}
}

func TestResurrectionsCounter(t *testing.T) {
	h, _, cls := openTestHeap(t, 1<<20, false)
	s := newSimple(t, h, cls, 1)
	if err := h.Root().Put("s", s); err != nil {
		t.Fatal(err)
	}
	before := h.Resurrections()
	for i := 0; i < 5; i++ {
		if _, err := h.Root().Get("s"); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.Resurrections() - before; got != 5 {
		t.Fatalf("resurrections = %d, want 5", got)
	}
}

func TestRecoveryStatsPopulated(t *testing.T) {
	pool := nvm.New(1<<20, nvm.Options{})
	cls := simpleClass()
	h, err := Open(pool, testCfg(cls))
	if err != nil {
		t.Fatal(err)
	}
	s := newSimple(t, h, cls, 1)
	if err := h.Root().Put("s", s); err != nil {
		t.Fatal(err)
	}
	h2, err := Open(pool, testCfg(simpleClass()))
	if err != nil {
		t.Fatal(err)
	}
	st := h2.RecoveryStats
	if st.Formatted {
		t.Fatal("reopen claimed a format")
	}
	if !st.GraphTraversed || st.LiveObjects == 0 || st.LiveBlocks == 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
}

func TestAllocZeroSizeObject(t *testing.T) {
	h, _, _ := openTestHeap(t, 1<<20, false)
	cls := &Class{Name: "test.empty", Factory: func(o *Object) PObject { return o }}
	if err := h.register(cls); err != nil {
		t.Fatal(err)
	}
	po, err := h.Alloc(cls, 0)
	if err != nil {
		t.Fatal(err)
	}
	if po.Core().Size() == 0 {
		t.Fatal("zero-size alloc should still own a block's payload")
	}
}

func TestClassRegistrationConflict(t *testing.T) {
	pool := nvm.New(1<<20, nvm.Options{})
	a := &Class{Name: "dup", Factory: func(o *Object) PObject { return o }}
	b := &Class{Name: "dup", Factory: func(o *Object) PObject { return o }}
	if _, err := Open(pool, Config{
		HeapOptions: heap.Options{LogSlots: 2, LogSlotSize: 4096},
		Classes:     []*Class{a, b},
	}); err == nil {
		t.Fatal("two distinct classes with one name accepted")
	}
}

func TestMustClassPanics(t *testing.T) {
	h, _, _ := openTestHeap(t, 1<<20, false)
	defer func() {
		if recover() == nil {
			t.Fatal("MustClass of unknown name should panic")
		}
	}()
	h.MustClass("nope")
}

func TestFsckCleanHeap(t *testing.T) {
	h, _, cls := openTestHeap(t, 1<<21, false)
	parent := newSimple(t, h, cls, 1)
	child := newSimple(t, h, cls, 2)
	parent.Core().AtomicUpdateRef(simpleRef, child)
	if err := h.Root().Put("parent", parent); err != nil {
		t.Fatal(err)
	}
	if n := h.Fsck(func(msg string) { t.Logf("fsck: %s", msg) }); n != 0 {
		t.Fatalf("clean heap reported %d issues", n)
	}
}

func TestFsckDetectsCorruption(t *testing.T) {
	h, _, cls := openTestHeap(t, 1<<21, false)
	s := newSimple(t, h, cls, 1)
	if err := h.Root().Put("s", s); err != nil {
		t.Fatal(err)
	}
	// Corrupt: point the object's ref field at an invalid (never
	// validated) object while keeping it reachable.
	orphanPO, _ := h.Alloc(cls, simpleLen)
	s.SetNext(orphanPO.Core().Ref())
	var msgs []string
	if n := h.Fsck(func(m string) { msgs = append(msgs, m) }); n == 0 {
		t.Fatal("reachable->invalid reference not reported")
	}

	// Corrupt a block header with a bogus class id.
	victim := orphanPO.Core().Ref()
	h.Mem().WriteHeader(victim, heap.PackHeader(0x7000, true, 0))
	if n := h.Fsck(nil); n == 0 {
		t.Fatal("unregistered class id not reported")
	}
}

func TestFsckDetectsCycle(t *testing.T) {
	h, _, cls := openTestHeap(t, 1<<21, false)
	// Build a 2-block object and loop its chain back on itself.
	big := &Class{Name: "test.big2", Factory: func(o *Object) PObject { return o }}
	if err := h.register(big); err != nil {
		t.Fatal(err)
	}
	po, err := h.Alloc(big, 2*heap.Payload)
	if err != nil {
		t.Fatal(err)
	}
	blocks := po.Core().BlockRefs()
	master := blocks[0]
	slave := blocks[1]
	id, valid, _ := heap.UnpackHeader(h.Mem().Header(slave))
	// slave.next -> master: cycle.
	h.Mem().WriteHeader(slave, heap.PackHeader(id, valid, h.Mem().BlockIndex(master)+1))
	if n := h.Fsck(nil); n == 0 {
		t.Fatal("cyclic chain not reported")
	}
	_ = cls
}
