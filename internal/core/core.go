// Package core implements the primary contribution of the J-NVM paper: the
// decoupling principle between a persistent data structure, which lives
// off-heap in NVMM, and a volatile proxy, which is an ordinary Go value
// that intermediates every access to it (§2.1, §3).
//
// A persistent object is live when it is both reachable from the root map
// and valid (§3.2.3). There is no runtime garbage collector for persistent
// objects; a recovery-time GC (§4.1.3) runs when a heap is reopened:
// committed failure-atomic logs are replayed first, then the object graph
// is traversed from the root map, references to invalid objects are
// nullified, per-object Recover hooks run, and everything unreachable is
// swept back to the free queue.
package core

import (
	"fmt"

	"repro/internal/heap"
	"repro/internal/nvm"
)

// Ref is a persistent reference (pool offset of a master block or pooled
// slot); 0 is the persistent null.
type Ref = heap.Ref

// PObject is the interface of every persistent proxy, the analogue of the
// paper's PObject marker. Durability is attached to the *type*, never the
// instance: the class-centric model of §2.3.
type PObject interface {
	// Core returns the proxy core holding the association between this
	// proxy and its persistent data structure.
	Core() *Object
}

// Resurrector is implemented by proxies that derive transient state from
// the persistent state when a proxy is created for an existing data
// structure (§3.1, the resurrect constructor).
type Resurrector interface {
	OnResurrect()
}

// Recoverer is implemented by proxies that must repair their persistent
// state after a crash when they do not use failure-atomic blocks (§3.2.1).
// Recover is called for each live object during the recovery traversal.
type Recoverer interface {
	Recover()
}

// Class describes a persistent type to the runtime. It plays the role of
// the metadata the paper's code generator embeds in rewritten classes.
type Class struct {
	// Name is the stable persistent identity, e.g. "pdt.PString".
	Name string
	// Factory wraps a proxy core into the typed proxy. Called during
	// resurrection; must not touch NVMM beyond reads.
	Factory func(o *Object) PObject
	// Refs reports the data offsets of the persistent reference fields of
	// an instance, for the recovery traversal. May inspect the object
	// (e.g. read a length field). Nil means the class holds no refs.
	Refs func(o *Object) []uint64

	id uint16 // persistent id, assigned at registration
}

// ID returns the persistent class id (valid after registration).
func (c *Class) ID() uint16 { return c.id }

// Object is the proxy core: the volatile half of a persistent object. It
// caches the block-offset array of the data structure so that locating the
// block of a field is a single division (§4.1).
type Object struct {
	h      *Heap
	ref    Ref
	blocks []Ref // nil for pooled slots
	size   uint64
	inline [1]Ref // backing for blocks when the object is single-block
}

// Heap returns the owning heap.
func (o *Object) Heap() *Heap { return o.h }

// Ref returns the persistent reference of the object. Zero after Free.
func (o *Object) Ref() Ref { return o.ref }

// Size returns the capacity of the data area in bytes. For block objects
// this is the rounded-up block capacity; variable-length classes keep
// their logical length in a field.
func (o *Object) Size() uint64 { return o.size }

// Valid reports the persistent valid bit.
func (o *Object) Valid() bool { return o.h.mem.Valid(o.ref) }

// Core implements PObject so bare cores can be stored where a proxy is
// expected (used by infrastructure types).
func (o *Object) Core() *Object { return o }

func (o *Object) live() {
	if o.ref == 0 {
		panic("core: access through a freed proxy")
	}
}

// locate maps a data offset to a pool offset, reporting whether n bytes
// are contiguous there.
func (o *Object) locate(off, n uint64) (uint64, bool) {
	o.live()
	if off+n > o.size {
		panic(fmt.Sprintf("core: field access [%d,+%d) beyond object size %d", off, n, o.size))
	}
	if o.blocks == nil { // pooled slot: contiguous payload after mini-header
		return o.ref + 8 + off, true
	}
	b := off / heap.Payload
	within := off % heap.Payload
	return o.blocks[b] + heap.HeaderSize + within, within+n <= heap.Payload
}

// ReadUint64 loads the 8-byte field at data offset off.
func (o *Object) ReadUint64(off uint64) uint64 {
	if p, ok := o.locate(off, 8); ok {
		return o.h.pool.ReadUint64(p)
	}
	var buf [8]byte
	o.readSpan(off, buf[:])
	return uint64(buf[0]) | uint64(buf[1])<<8 | uint64(buf[2])<<16 | uint64(buf[3])<<24 |
		uint64(buf[4])<<32 | uint64(buf[5])<<40 | uint64(buf[6])<<48 | uint64(buf[7])<<56
}

// WriteUint64 stores the 8-byte field at data offset off.
func (o *Object) WriteUint64(off, v uint64) {
	if p, ok := o.locate(off, 8); ok {
		o.h.pool.WriteUint64(p, v)
		return
	}
	var buf [8]byte
	for i := range buf {
		buf[i] = byte(v >> (8 * i))
	}
	o.writeSpan(off, buf[:])
}

// ReadInt64 loads a signed 8-byte field.
func (o *Object) ReadInt64(off uint64) int64 { return int64(o.ReadUint64(off)) }

// WriteInt64 stores a signed 8-byte field.
func (o *Object) WriteInt64(off uint64, v int64) { o.WriteUint64(off, uint64(v)) }

// ReadUint32 loads a 4-byte field.
func (o *Object) ReadUint32(off uint64) uint32 {
	if p, ok := o.locate(off, 4); ok {
		return o.h.pool.ReadUint32(p)
	}
	var buf [4]byte
	o.readSpan(off, buf[:])
	return uint32(buf[0]) | uint32(buf[1])<<8 | uint32(buf[2])<<16 | uint32(buf[3])<<24
}

// WriteUint32 stores a 4-byte field.
func (o *Object) WriteUint32(off uint64, v uint32) {
	if p, ok := o.locate(off, 4); ok {
		o.h.pool.WriteUint32(p, v)
		return
	}
	var buf [4]byte
	for i := range buf {
		buf[i] = byte(v >> (8 * i))
	}
	o.writeSpan(off, buf[:])
}

// ReadUint16 loads a 2-byte field.
func (o *Object) ReadUint16(off uint64) uint16 {
	if p, ok := o.locate(off, 2); ok {
		return o.h.pool.ReadUint16(p)
	}
	var buf [2]byte
	o.readSpan(off, buf[:])
	return uint16(buf[0]) | uint16(buf[1])<<8
}

// WriteUint16 stores a 2-byte field.
func (o *Object) WriteUint16(off uint64, v uint16) {
	if p, ok := o.locate(off, 2); ok {
		o.h.pool.WriteUint16(p, v)
		return
	}
	o.writeSpan(off, []byte{byte(v), byte(v >> 8)})
}

// ReadUint8 loads a 1-byte field.
func (o *Object) ReadUint8(off uint64) byte {
	p, _ := o.locate(off, 1)
	return o.h.pool.ReadUint8(p)
}

// WriteUint8 stores a 1-byte field.
func (o *Object) WriteUint8(off uint64, v byte) {
	p, _ := o.locate(off, 1)
	o.h.pool.WriteUint8(p, v)
}

func (o *Object) readSpan(off uint64, dst []byte) {
	for len(dst) > 0 {
		p, _ := o.locate(off, 1)
		within := uint64(heap.Payload)
		if o.blocks != nil {
			within = heap.Payload - off%heap.Payload
		}
		n := uint64(len(dst))
		if n > within {
			n = within
		}
		o.h.pool.ReadInto(p, dst[:n])
		dst = dst[n:]
		off += n
	}
}

func (o *Object) writeSpan(off uint64, src []byte) {
	for len(src) > 0 {
		p, _ := o.locate(off, 1)
		within := uint64(heap.Payload)
		if o.blocks != nil {
			within = heap.Payload - off%heap.Payload
		}
		n := uint64(len(src))
		if n > within {
			n = within
		}
		o.h.pool.WriteBytes(p, src[:n])
		src = src[n:]
		off += n
	}
}

// ReadInto copies len(dst) bytes of the data area starting at off into
// dst without allocating.
func (o *Object) ReadInto(off uint64, dst []byte) {
	if off+uint64(len(dst)) > o.size {
		panic(fmt.Sprintf("core: byte read [%d,+%d) beyond object size %d", off, len(dst), o.size))
	}
	o.readSpan(off, dst)
}

// ReadBytes copies n bytes of the data area starting at off.
func (o *Object) ReadBytes(off, n uint64) []byte {
	if off+n > o.size {
		panic(fmt.Sprintf("core: byte read [%d,+%d) beyond object size %d", off, n, o.size))
	}
	out := make([]byte, n)
	o.readSpan(off, out)
	return out
}

// WriteBytes stores src into the data area at off.
func (o *Object) WriteBytes(off uint64, src []byte) {
	if off+uint64(len(src)) > o.size {
		panic(fmt.Sprintf("core: byte write [%d,+%d) beyond object size %d", off, len(src), o.size))
	}
	o.writeSpan(off, src)
}

// ReadRef loads a persistent reference field.
func (o *Object) ReadRef(off uint64) Ref { return o.ReadUint64(off) }

// WriteRef stores a persistent reference field. Only refs to persistent
// objects can exist in NVMM, so cross-heap references (§2.3) are ruled out
// by construction: there is no way to name a volatile Go value here.
func (o *Object) WriteRef(off uint64, r Ref) { o.WriteUint64(off, r) }

// ReadRefAtomic loads a reference field with atomic (acquire) semantics
// when the backing word is 8-aligned in the pool, falling back to a plain
// load otherwise. The lock-free read path uses it to observe refs a
// concurrent writer publishes with WriteRefAtomic; misaligned words (only
// the 124-byte slot class produces them) are served by the locked path on
// both sides, so the plain fallback never races an atomic store.
func (o *Object) ReadRefAtomic(off uint64) Ref {
	if p, ok := o.locate(off, 8); ok && p%8 == 0 {
		return o.h.pool.ReadUint64Atomic(p)
	}
	return o.ReadUint64(off)
}

// WriteRefAtomic stores a reference field with atomic (release) semantics
// under the same alignment rule as ReadRefAtomic.
func (o *Object) WriteRefAtomic(off uint64, r Ref) {
	if p, ok := o.locate(off, 8); ok && p%8 == 0 {
		o.h.pool.WriteUint64Atomic(p, r)
		return
	}
	o.WriteUint64(off, r)
}

// ReadObject dereferences the reference field at off, resurrecting a proxy
// for the target (§3.1). Returns nil for a null reference.
func (o *Object) ReadObject(off uint64) (PObject, error) {
	r := o.ReadRef(off)
	if r == 0 {
		return nil, nil
	}
	return o.h.Resurrect(r)
}

// WriteObject stores a reference to the persistent object behind po (nil
// stores the null reference).
func (o *Object) WriteObject(off uint64, po PObject) {
	if po == nil {
		o.WriteRef(off, 0)
		return
	}
	o.WriteRef(off, po.Core().Ref())
}

// ---- Cache-line management (§3.2.2) ----

// PWB flushes all cache lines of the object: header(s) and data, the
// generated pwb() of Figure 4.
func (o *Object) PWB() {
	o.live()
	if o.blocks == nil {
		o.h.pool.PWBRange(o.ref, 8+o.size)
		return
	}
	for _, b := range o.blocks {
		o.h.pool.PWBRange(b, heap.BlockSize)
	}
}

// PWBField flushes the cache lines backing the n-byte field at off, the
// generated pwbX() of Figure 4.
func (o *Object) PWBField(off, n uint64) {
	if n == 0 {
		return
	}
	for n > 0 {
		p, _ := o.locate(off, 1)
		within := uint64(heap.Payload)
		if o.blocks != nil {
			within = heap.Payload - off%heap.Payload
		}
		step := n
		if step > within {
			step = within
		}
		o.h.pool.PWBRange(p, step)
		off += step
		n -= step
	}
}

// PFence orders preceding flushes and stores (exposed on the object for
// parity with the paper's PObject interface).
func (o *Object) PFence() { o.h.pool.PFence() }

// PSync behaves as PFence and drains the write-pending queue.
func (o *Object) PSync() { o.h.pool.PSync() }

// Validate sets the object's valid bit and flushes its header, without
// fencing: §3.2.3 lets callers publish many objects under one fence.
func (o *Object) Validate() {
	o.live()
	o.h.mem.SetValid(o.ref, true)
}

// ValidateDeferred sets the valid bit without flushing the header line.
// Born-valid constructors (DESIGN.md §16) use it right before a single
// whole-extent PWB, saving the separate header write-back that
// construct-then-Validate pays.
func (o *Object) ValidateDeferred() {
	o.live()
	o.h.mem.SetValidDeferred(o.ref, true)
}

// Invalidate clears the valid bit (flushed, unfenced).
func (o *Object) Invalidate() {
	o.live()
	o.h.mem.SetValid(o.ref, false)
}

// AtomicUpdateRef atomically updates the reference field at off to point
// to n (§4.1.6, Figure 6): the new object is validated and fenced before
// becoming reachable, so the recovery pass can never nullify the
// reference. A nil n clears the field. The ref store itself is atomic
// (WriteRefAtomic) so lock-free readers observe either the old or the
// new reference, never a torn word.
func (o *Object) AtomicUpdateRef(off uint64, n PObject) {
	if n == nil {
		o.WriteRefAtomic(off, 0)
		o.PWBField(off, 8)
		return
	}
	n.Core().Validate()
	o.h.pool.PFence()
	o.WriteRefAtomic(off, n.Core().Ref())
	o.PWBField(off, 8)
}

// AtomicReplaceRef is the second generated helper of §4.1.6: it updates
// the reference like AtomicUpdateRef and atomically frees the previously
// referenced object. The free needs no extra fence (§4.1.5).
func (o *Object) AtomicReplaceRef(off uint64, n PObject) {
	old := o.ReadRef(off)
	o.AtomicUpdateRef(off, n)
	if old != 0 && (n == nil || old != n.Core().Ref()) {
		o.h.pool.PFence() // order the unlink before the invalidation
		o.h.mem.FreeObject(old)
	}
}

// CompareAndSwapRef atomically swaps the reference field at off from old
// to new, reporting whether the swap happened. It is the publication
// primitive of the lock-free durable types (DESIGN.md §16): concurrent
// writers race on the same word and losers retry instead of blocking.
// The field must be contiguous and 8-aligned in the pool — true for every
// word of a block-backed object (payloads start 8-aligned and words never
// straddle blocks when the layout keeps them 8-aligned) — and the caller
// flushes and fences per its own protocol.
func (o *Object) CompareAndSwapRef(off uint64, old, new Ref) bool {
	p, ok := o.locate(off, 8)
	if !ok || p%8 != 0 {
		panic("core: CompareAndSwapRef on a non-contiguous or misaligned field")
	}
	return o.h.pool.CompareAndSwapUint64(p, old, new)
}

// ClassID returns the persistent class id from the object's header.
func (o *Object) ClassID() uint16 {
	o.live()
	return o.h.mem.ClassOf(o.ref)
}

// BlockRefs exposes the cached block list (read-only; nil for slots).
func (o *Object) BlockRefs() []Ref { return o.blocks }

// ---- helpers shared with fa ----

// Mem returns the block heap (used by the failure-atomic machinery).
func (h *Heap) Mem() *heap.Heap { return h.mem }

// Pool returns the NVMM pool.
func (h *Heap) Pool() *nvm.Pool { return h.pool }
