package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/heap"
)

// RootMap is the persistent map of named roots that every region contains
// (JNVM.root in Figure 3). Persistent objects are live by reachability
// from these roots (§2.4).
//
// The persistent layout follows the general J-PDT recipe of §4.3.2: the
// durable state is a persistent extensible array of entry references, and
// a volatile mirror map provides the lookup logic. Adding or removing a
// binding mutates a single reference slot in NVMM, so the structure is
// crash-consistent without failure-atomic blocks.
type RootMap struct {
	obj *Object
	arr *Object

	mu     sync.RWMutex
	mirror map[string]rootSlot
	free   []uint64 // free slot indices in the entries array
}

type rootSlot struct {
	idx   uint64
	entry Ref
}

const (
	rootClassName  = "core.__root"
	rootArrClass   = "core.__rootarr"
	rootEntryClass = "core.__rootent"

	rootInitialSlots = 64

	// entry layout
	entValue  = 0
	entKeyLen = 8
	entKey    = 12
)

func builtinClasses() []*Class {
	return []*Class{
		{
			Name:    rootClassName,
			Factory: func(o *Object) PObject { return o },
			Refs:    func(o *Object) []uint64 { return []uint64{0} },
		},
		{
			Name:    rootArrClass,
			Factory: func(o *Object) PObject { return o },
			Refs: func(o *Object) []uint64 {
				offs := make([]uint64, o.Size()/8)
				for i := range offs {
					offs[i] = uint64(i) * 8
				}
				return offs
			},
		},
		{
			Name:    rootEntryClass,
			Factory: func(o *Object) PObject { return o },
			Refs:    func(o *Object) []uint64 { return []uint64{entValue} },
		},
	}
}

// openRoot resurrects (or creates) the root map after recovery.
func (h *Heap) openRoot() error {
	ref := h.mem.RootRef()
	if ref != 0 && !h.mem.Valid(ref) {
		// A crash interrupted root creation; start over.
		ref = 0
	}
	if ref == 0 {
		return h.createRoot()
	}
	obj := h.wrap(ref)
	arrRef := obj.ReadRef(0)
	if arrRef == 0 || !h.mem.Valid(arrRef) {
		return fmt.Errorf("core: root map at %#x has no valid entry array", ref)
	}
	rm := &RootMap{obj: obj, arr: h.wrap(arrRef), mirror: make(map[string]rootSlot)}
	h.root = rm
	return rm.rebuild(h)
}

func (h *Heap) createRoot() error {
	arrPO, err := h.Alloc(h.byName[rootArrClass], rootInitialSlots*8)
	if err != nil {
		return err
	}
	rootPO, err := h.Alloc(h.byName[rootClassName], 8)
	if err != nil {
		return err
	}
	arr, root := arrPO.Core(), rootPO.Core()
	root.WriteRef(0, arr.Ref())
	root.PWB()
	arr.PWB()
	arr.Validate()
	root.Validate()
	h.pool.PFence()
	h.mem.SetRootRef(root.Ref())
	rm := &RootMap{obj: root, arr: arr, mirror: make(map[string]rootSlot)}
	for i := uint64(0); i < rootInitialSlots; i++ {
		rm.free = append(rm.free, i)
	}
	h.root = rm
	return nil
}

// rebuild reconstructs the volatile mirror from the persistent array,
// dropping entries whose value reference was nullified by recovery.
func (rm *RootMap) rebuild(h *Heap) error {
	slots := rm.arr.Size() / 8
	cleaned := false
	for i := uint64(0); i < slots; i++ {
		eref := rm.arr.ReadRef(i * 8)
		if eref == 0 {
			rm.free = append(rm.free, i)
			continue
		}
		ent := h.wrap(eref)
		if ent.ReadRef(entValue) == 0 {
			// Recovery nullified the value: retire the whole binding.
			rm.arr.WriteRef(i*8, 0)
			rm.arr.PWBField(i*8, 8)
			h.mem.FreeObject(eref)
			rm.free = append(rm.free, i)
			h.RecoveryStats.ReclaimedRoots++
			cleaned = true
			continue
		}
		klen := uint64(ent.ReadUint32(entKeyLen))
		key := string(ent.ReadBytes(entKey, klen))
		rm.mirror[key] = rootSlot{idx: i, entry: eref}
	}
	if cleaned {
		h.pool.PFence()
	}
	return nil
}

// Len returns the number of named roots.
func (rm *RootMap) Len() int {
	rm.mu.RLock()
	defer rm.mu.RUnlock()
	return len(rm.mirror)
}

// Exists reports whether a root with this name is bound.
func (rm *RootMap) Exists(name string) bool {
	rm.mu.RLock()
	defer rm.mu.RUnlock()
	_, ok := rm.mirror[name]
	return ok
}

// Names returns the bound root names, sorted.
func (rm *RootMap) Names() []string {
	rm.mu.RLock()
	defer rm.mu.RUnlock()
	out := make([]string, 0, len(rm.mirror))
	for k := range rm.mirror {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// GetRef returns the persistent reference bound to name (0 if unbound).
func (rm *RootMap) GetRef(name string) Ref {
	rm.mu.RLock()
	s, ok := rm.mirror[name]
	rm.mu.RUnlock()
	if !ok {
		return 0
	}
	h := rm.obj.h
	return h.wrap(s.entry).ReadRef(entValue)
}

// Get resurrects the object bound to name (nil if unbound).
func (rm *RootMap) Get(name string) (PObject, error) {
	ref := rm.GetRef(name)
	if ref == 0 {
		return nil, nil
	}
	return rm.obj.h.Resurrect(ref)
}

// WPut is the weak put of Figure 5: it binds name to the object without
// executing any fence, so a caller following the low-level discipline can
// publish several roots under a single pfence followed by validations.
// The binding survives a crash only once the value object is valid and a
// fence has executed.
func (rm *RootMap) WPut(name string, po PObject) error {
	if po == nil {
		return fmt.Errorf("core: cannot bind nil to root %q", name)
	}
	h := rm.obj.h
	rm.mu.Lock()
	defer rm.mu.Unlock()
	if s, ok := rm.mirror[name]; ok {
		ent := h.wrap(s.entry)
		ent.WriteRef(entValue, po.Core().Ref())
		ent.PWBField(entValue, 8)
		return nil
	}
	entPO, err := h.Alloc(h.byName[rootEntryClass], entKey+uint64(len(name)))
	if err != nil {
		return err
	}
	ent := entPO.Core()
	ent.WriteRef(entValue, po.Core().Ref())
	ent.WriteUint32(entKeyLen, uint32(len(name)))
	ent.WriteBytes(entKey, []byte(name))
	ent.PWB()
	ent.Validate()
	idx, err := rm.takeSlotLocked()
	if err != nil {
		return err
	}
	rm.arr.WriteRef(idx*8, ent.Ref())
	rm.arr.PWBField(idx*8, 8)
	rm.mirror[name] = rootSlot{idx: idx, entry: ent.Ref()}
	return nil
}

// Put durably binds name to the object: the value is validated and a sync
// closes the publication. This is the strong flavor used by Figure 3's
// JNVM.root.put.
func (rm *RootMap) Put(name string, po PObject) error {
	if err := rm.WPut(name, po); err != nil {
		return err
	}
	po.Core().Validate()
	rm.obj.h.pool.PSync()
	return nil
}

// Remove unbinds name, frees the entry object (not the value) and returns
// the value's reference (0 if name was unbound).
func (rm *RootMap) Remove(name string) Ref {
	h := rm.obj.h
	rm.mu.Lock()
	defer rm.mu.Unlock()
	s, ok := rm.mirror[name]
	if !ok {
		return 0
	}
	val := h.wrap(s.entry).ReadRef(entValue)
	rm.arr.WriteRef(s.idx*8, 0)
	rm.arr.PWBField(s.idx*8, 8)
	h.pool.PFence() // unlink before the entry invalidation below
	h.mem.FreeObject(s.entry)
	delete(rm.mirror, name)
	rm.free = append(rm.free, s.idx)
	return val
}

// takeSlotLocked reserves a free slot index, growing the persistent array
// if necessary (callers hold rm.mu).
func (rm *RootMap) takeSlotLocked() (uint64, error) {
	if n := len(rm.free); n > 0 {
		idx := rm.free[n-1]
		rm.free = rm.free[:n-1]
		return idx, nil
	}
	h := rm.obj.h
	oldSlots := rm.arr.Size() / 8
	newPO, err := h.Alloc(h.byName[rootArrClass], rm.arr.Size()*2)
	if err != nil {
		return 0, err
	}
	newArr := newPO.Core()
	for i := uint64(0); i < oldSlots; i++ {
		newArr.WriteRef(i*8, rm.arr.ReadRef(i*8))
	}
	newArr.PWB()
	// Atomic swing of the entries array (§4.1.6).
	rm.obj.AtomicReplaceRef(0, newArr)
	old := rm.arr
	rm.arr = newArr
	_ = old // the old array was freed by AtomicReplaceRef
	for i := oldSlots + 1; i < newArr.Size()/8; i++ {
		rm.free = append(rm.free, i)
	}
	return oldSlots, nil
}

// ForEach calls fn for every binding, in unspecified order, with the bound
// reference. Intended for diagnostics and tests.
func (rm *RootMap) ForEach(fn func(name string, ref Ref)) {
	rm.mu.RLock()
	defer rm.mu.RUnlock()
	h := rm.obj.h
	for name, s := range rm.mirror {
		fn(name, h.wrap(s.entry).ReadRef(entValue))
	}
}

// slotsCap is exposed for white-box tests.
func (rm *RootMap) slotsCap() uint64 { return rm.arr.Size() / 8 }

var _ = heap.Payload // keep the import for layout comments
