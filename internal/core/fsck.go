package core

import "fmt"

// Fsck verifies the object graph on top of the block-level checks of
// heap.Fsck: starting from the root map, every reachable reference must
// point at a valid, in-bounds object of a registered class. Read-only;
// returns the total issue count (graph + block level).
func (h *Heap) Fsck(report func(msg string)) int {
	issues := h.mem.Fsck(report)
	complain := func(format string, args ...any) {
		issues++
		if report != nil {
			report(fmt.Sprintf(format, args...))
		}
	}

	rootRef := h.mem.RootRef()
	if rootRef == 0 {
		return issues
	}
	if !h.mem.Valid(rootRef) {
		complain("root map at %#x is invalid", rootRef)
		return issues
	}
	seen := map[Ref]bool{rootRef: true}
	work := []Ref{rootRef}
	for len(work) > 0 {
		ref := work[len(work)-1]
		work = work[:len(work)-1]
		id := h.mem.ClassOf(ref)
		c, ok := h.byID[id]
		if !ok {
			complain("reachable object %#x has unregistered class id %d", ref, id)
			continue
		}
		obj := h.wrap(ref)
		if c.Refs == nil {
			continue
		}
		for _, off := range c.Refs(obj) {
			target := obj.ReadRef(off)
			if target == 0 {
				continue
			}
			if target >= h.pool.Size() {
				complain("object %#x (+%d): reference %#x beyond the pool", ref, off, target)
				continue
			}
			if !h.mem.Valid(target) {
				complain("object %#x (+%d): reachable reference to invalid object %#x", ref, off, target)
				continue
			}
			if !seen[target] {
				seen[target] = true
				work = append(work, target)
			}
		}
	}
	return issues
}
