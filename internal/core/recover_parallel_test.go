package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/nvm"
)

// node is a fan-out test class: eight reference slots plus a payload
// word, so randomized graphs get shared subgraphs, diamonds and cycles.
type node struct{ *Object }

const (
	nodeRefs = 8
	nodeVal  = nodeRefs * 8
	nodeLen  = nodeVal + 8
)

func nodeClass() *Class {
	refs := make([]uint64, nodeRefs)
	for i := range refs {
		refs[i] = uint64(i * 8)
	}
	return &Class{
		Name:    "test.node",
		Factory: func(o *Object) PObject { return &node{Object: o} },
		Refs:    func(o *Object) []uint64 { return refs },
	}
}

// leaf is a pooled small immutable class (no refs), so the graphs also
// exercise chunk marking, slot masks and slot-list rebuilds.
func leafClass() *Class {
	return &Class{
		Name:    "test.leaf",
		Factory: func(o *Object) PObject { return &node{Object: o} },
	}
}

// buildRandomGraph fills the heap with a randomized object graph: block
// nodes with up to eight outgoing refs (sharing earlier nodes and pooled
// leaves), pooled leaves of random size classes, invalid-but-referenced
// objects (to exercise nullification), published roots, and freed
// garbage. Returns nothing: the interesting output is the pool image.
func buildRandomGraph(t *testing.T, rng *rand.Rand, h *Heap, ncls, lcls *Class) {
	t.Helper()
	var leaves []Ref
	var invalid []Ref // allocated, never validated
	for i := 0; i < 60; i++ {
		payload := uint64(8 + rng.Intn(72))
		po, err := h.AllocSmall(lcls, payload)
		if err != nil {
			t.Fatal(err)
		}
		o := po.Core()
		o.PWB()
		if rng.Intn(10) == 0 {
			invalid = append(invalid, o.Ref())
		} else {
			o.Validate()
			leaves = append(leaves, o.Ref())
		}
	}
	var nodes []*node
	var nodeRefsPublished []Ref
	for i := 0; i < 150; i++ {
		po, err := h.Alloc(ncls, nodeLen)
		if err != nil {
			t.Fatal(err)
		}
		n := po.(*node)
		n.WriteInt64(nodeVal, int64(i))
		for slot := 0; slot < nodeRefs; slot++ {
			switch rng.Intn(5) {
			case 0: // share an earlier node
				if len(nodes) > 0 {
					n.WriteRef(uint64(slot*8), nodes[rng.Intn(len(nodes))].Ref())
				}
			case 1, 2: // share a pooled leaf
				if len(leaves) > 0 {
					n.WriteRef(uint64(slot*8), leaves[rng.Intn(len(leaves))])
				}
			case 3: // dangling ref to an invalid object -> nullified
				if len(invalid) > 0 {
					n.WriteRef(uint64(slot*8), invalid[rng.Intn(len(invalid))])
				}
			}
		}
		n.PWB()
		if rng.Intn(8) == 0 {
			invalid = append(invalid, n.Ref())
			continue // never validated: dead at recovery even if referenced
		}
		n.Validate()
		nodes = append(nodes, n)
		nodeRefsPublished = append(nodeRefsPublished, n.Ref())
	}
	// Publish about a third of the valid nodes; the rest are garbage
	// unless another published node reaches them.
	published := 0
	for i, n := range nodes {
		if rng.Intn(3) == 0 {
			if err := h.Root().Put(fmt.Sprintf("n%d", i), n); err != nil {
				t.Fatal(err)
			}
			published++
		}
	}
	if published == 0 {
		if err := h.Root().Put("n0", nodes[0]); err != nil {
			t.Fatal(err)
		}
	}
	// Free a few valid unpublished objects outright: their blocks carry
	// stale-but-invalid headers the sweep must scrub.
	for i := 0; i < 10 && i < len(nodeRefsPublished); i++ {
		if rng.Intn(4) == 0 {
			h.Mem().FreeObject(nodeRefsPublished[i])
		}
	}
	h.PSync()
}

type allocatorState struct {
	bump  uint64
	image []byte
	free  []uint64
	slots [][]Ref
	stats RecoveryStats
}

func captureState(t *testing.T, parallelism int, snapshot []byte) allocatorState {
	t.Helper()
	pool := nvm.New(len(snapshot), nvm.Options{})
	pool.WriteBytes(0, snapshot)
	cfg := testCfg(nodeClass(), leafClass())
	cfg.Recover.Parallelism = parallelism
	h, err := Open(pool, cfg)
	if err != nil {
		t.Fatalf("parallelism %d: %v", parallelism, err)
	}
	assertHeapConsistent(t, h)
	bump, _, _ := h.Mem().Stats()
	free := h.Mem().FreeIndices()
	sort.Slice(free, func(i, j int) bool { return free[i] < free[j] })
	slots := h.Mem().PoolFreeSlots()
	for _, s := range slots {
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}
	return allocatorState{
		bump:  bump,
		image: append([]byte(nil), pool.View(0, pool.Size())...),
		free:  free,
		slots: slots,
		stats: h.RecoveryStats,
	}
}

// TestParallelRecoveryEquivalence is the oracle check of the parallel
// pipeline: over randomized object graphs (shared subgraphs, pooled
// chunks, dangling refs, garbage), recovery with Parallelism=1 (the
// paper's serial procedure) and Parallelism=8 must produce bit-identical
// persistent state and identical allocator state — bump pointer, free
// queue as a set, pool slot lists as sets — plus identical recovery
// statistics.
func TestParallelRecoveryEquivalence(t *testing.T) {
	// 16 MiB so the arena is large enough for the segment-parallel sweep
	// (not just the parallel traversal) to engage.
	const poolSize = 1 << 24
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			pool := nvm.New(poolSize, nvm.Options{})
			ncls, lcls := nodeClass(), leafClass()
			h, err := Open(pool, testCfg(ncls, lcls))
			if err != nil {
				t.Fatal(err)
			}
			buildRandomGraph(t, rng, h, ncls, lcls)
			snapshot := append([]byte(nil), pool.View(0, pool.Size())...)

			serial := captureState(t, 1, snapshot)
			parallel := captureState(t, 8, snapshot)

			if serial.bump != parallel.bump {
				t.Fatalf("bump mismatch: serial %d, parallel %d", serial.bump, parallel.bump)
			}
			if !bytes.Equal(serial.image, parallel.image) {
				t.Fatal("post-recovery pool images differ")
			}
			if len(serial.free) != len(parallel.free) {
				t.Fatalf("free queue size: serial %d, parallel %d", len(serial.free), len(parallel.free))
			}
			for i := range serial.free {
				if serial.free[i] != parallel.free[i] {
					t.Fatalf("free queue contents differ at %d: %d vs %d", i, serial.free[i], parallel.free[i])
				}
			}
			for sc := range serial.slots {
				if len(serial.slots[sc]) != len(parallel.slots[sc]) {
					t.Fatalf("slot list %d size: serial %d, parallel %d",
						sc, len(serial.slots[sc]), len(parallel.slots[sc]))
				}
				for i := range serial.slots[sc] {
					if serial.slots[sc][i] != parallel.slots[sc][i] {
						t.Fatalf("slot list %d differs at %d", sc, i)
					}
				}
			}
			if serial.stats != parallel.stats {
				t.Fatalf("recovery stats differ:\nserial:   %+v\nparallel: %+v", serial.stats, parallel.stats)
			}
		})
	}
}

// capturePlane passively captures crash states at a fixed stride of
// ordering points while a workload runs — the explorer's observation
// hook, minus the plug-pull: capture is instantaneous and leaves the run
// undisturbed, so one build yields many mid-flight persistence states.
type capturePlane struct {
	pool   *nvm.Pool
	stride int
	count  int
	max    int
	states []*nvm.CrashState
}

func (c *capturePlane) OrderingPoint(nvm.FaultEvent) {
	c.count++
	if len(c.states) < c.max && c.count%c.stride == 0 {
		c.states = append(c.states, c.pool.CaptureCrashState())
	}
}

// crashOutcome is one recovery attempt over a crash image: accepted
// heaps carry their full allocator state, rejected ones the error text.
type crashOutcome struct {
	ok    bool
	err   string
	state allocatorState
}

func recoverCrashImage(img *nvm.Pool, parallelism int) (out crashOutcome) {
	defer func() {
		if r := recover(); r != nil {
			out = crashOutcome{err: fmt.Sprintf("panic: %v", r)}
		}
	}()
	cfg := testCfg(nodeClass(), leafClass())
	cfg.Recover.Parallelism = parallelism
	h, err := Open(img, cfg)
	if err != nil {
		return crashOutcome{err: err.Error()}
	}
	bump, _, _ := h.Mem().Stats()
	free := h.Mem().FreeIndices()
	sort.Slice(free, func(i, j int) bool { return free[i] < free[j] })
	slots := h.Mem().PoolFreeSlots()
	for _, s := range slots {
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}
	return crashOutcome{ok: true, state: allocatorState{
		bump:  bump,
		image: append([]byte(nil), img.View(0, img.Size())...),
		free:  free,
		slots: slots,
	}}
}

// TestCrashImageRecoveryEquivalence is the crash-image extension of the
// equivalence oracle: over mid-flight persistence states captured while
// a randomized graph is built (the explorer's fault-plane mechanism) and
// adversarial images sampled from each (dropped lines, stale snapshots,
// sub-line tears), the serial §4.1.3 procedure and the parallel pipeline
// must accept/reject exactly the same images — and on acceptance produce
// bit-identical pool images and identical allocator state.
func TestCrashImageRecoveryEquivalence(t *testing.T) {
	const poolSize = 1 << 21
	for seed := int64(0); seed < 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			pool := nvm.New(poolSize, nvm.Options{Tracked: true})
			ncls, lcls := nodeClass(), leafClass()
			h, err := Open(pool, testCfg(ncls, lcls))
			if err != nil {
				t.Fatal(err)
			}
			cp := &capturePlane{pool: pool, stride: 701, max: 8}
			pool.SetFaultPlane(cp)
			buildRandomGraph(t, rng, h, ncls, lcls)
			pool.SetFaultPlane(nil)
			if len(cp.states) == 0 {
				t.Fatalf("no crash states captured over %d ordering points", cp.count)
			}
			for si, cs := range cp.states {
				for sub := int64(0); sub < 4; sub++ {
					spec := cs.SampleSpec(rand.New(rand.NewSource(seed*1000+int64(si)*10+sub)), sub%2 == 1)
					serial := recoverCrashImage(cs.Image(spec), 1)
					parallel := recoverCrashImage(cs.Image(spec), 8)
					if serial.ok != parallel.ok {
						t.Fatalf("state %d spec %d: serial ok=%v (%s), parallel ok=%v (%s)",
							si, sub, serial.ok, serial.err, parallel.ok, parallel.err)
					}
					if !serial.ok {
						continue
					}
					if serial.state.bump != parallel.state.bump {
						t.Fatalf("state %d spec %d: bump %d vs %d", si, sub, serial.state.bump, parallel.state.bump)
					}
					if !bytes.Equal(serial.state.image, parallel.state.image) {
						t.Fatalf("state %d spec %d: recovered images differ", si, sub)
					}
					if len(serial.state.free) != len(parallel.state.free) {
						t.Fatalf("state %d spec %d: free queue size %d vs %d",
							si, sub, len(serial.state.free), len(parallel.state.free))
					}
					for i := range serial.state.free {
						if serial.state.free[i] != parallel.state.free[i] {
							t.Fatalf("state %d spec %d: free queue differs at %d", si, sub, i)
						}
					}
					for sc := range serial.state.slots {
						if len(serial.state.slots[sc]) != len(parallel.state.slots[sc]) {
							t.Fatalf("state %d spec %d: slot list %d size differs", si, sub, sc)
						}
						for i := range serial.state.slots[sc] {
							if serial.state.slots[sc][i] != parallel.state.slots[sc][i] {
								t.Fatalf("state %d spec %d: slot list %d differs at %d", si, sub, sc, i)
							}
						}
					}
				}
			}
		})
	}
}

// TestParallelRecoveryEquivalenceScan is the same oracle check for the
// header-scan recovery mode (J-PFA-nogc, Figure 11).
func TestParallelRecoveryEquivalenceScan(t *testing.T) {
	const poolSize = 1 << 24
	rng := rand.New(rand.NewSource(42))
	pool := nvm.New(poolSize, nvm.Options{})
	ncls, lcls := nodeClass(), leafClass()
	h, err := Open(pool, testCfg(ncls, lcls))
	if err != nil {
		t.Fatal(err)
	}
	buildRandomGraph(t, rng, h, ncls, lcls)
	snapshot := append([]byte(nil), pool.View(0, pool.Size())...)

	capture := func(parallelism int) allocatorState {
		p := nvm.New(len(snapshot), nvm.Options{})
		p.WriteBytes(0, snapshot)
		cfg := testCfg(nodeClass(), leafClass())
		cfg.SkipGraphGC = true
		cfg.Recover.Parallelism = parallelism
		h, err := Open(p, cfg)
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		bump, _, _ := h.Mem().Stats()
		free := h.Mem().FreeIndices()
		sort.Slice(free, func(i, j int) bool { return free[i] < free[j] })
		return allocatorState{
			bump:  bump,
			image: append([]byte(nil), p.View(0, p.Size())...),
			free:  free,
			stats: h.RecoveryStats,
		}
	}
	serial := capture(1)
	parallel := capture(8)
	if serial.bump != parallel.bump {
		t.Fatalf("bump mismatch: serial %d, parallel %d", serial.bump, parallel.bump)
	}
	if !bytes.Equal(serial.image, parallel.image) {
		t.Fatal("post-recovery pool images differ")
	}
	for i := range serial.free {
		if serial.free[i] != parallel.free[i] {
			t.Fatalf("free queue contents differ at %d", i)
		}
	}
	if serial.stats != parallel.stats {
		t.Fatalf("recovery stats differ:\nserial:   %+v\nparallel: %+v", serial.stats, parallel.stats)
	}
}
