package core

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/heap"
	"repro/internal/nvm"
	"repro/internal/obs"
)

// LogHandler is implemented by the failure-atomic machinery (package fa).
// RecoverLogs runs before the recovery traversal: committed redo logs are
// replayed, uncommitted ones discarded (§4.2). The handler receives the
// resolved RecoverOptions so log replay scales with the same worker fleet
// as the rest of the pipeline.
type LogHandler interface {
	RecoverLogs(h *Heap, opts RecoverOptions) error
}

// RecoverOptions tunes the recovery pipeline that runs inside Open.
type RecoverOptions struct {
	// Parallelism is the worker count shared by every recovery phase:
	// redo-log replay, the reachability traversal, the sweep and the
	// J-PDT mirror rebuilds. 0 means GOMAXPROCS. 1 selects the paper's
	// serial §4.1.3 procedure, kept byte-for-byte as the oracle the
	// equivalence tests compare the parallel pipeline against.
	Parallelism int
}

// Workers resolves the effective worker count.
func (o RecoverOptions) Workers() int {
	if o.Parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Parallelism
}

// Config parameterizes Open.
type Config struct {
	// HeapOptions is used when the pool needs formatting.
	HeapOptions heap.Options
	// Classes to register before recovery. Every class whose instances
	// may be found in the heap must be listed (like the explicit class
	// list fed to the paper's code generator). The built-in root-map
	// classes are always registered.
	Classes []*Class
	// LogHandler recovers failure-atomic logs before the traversal.
	LogHandler LogHandler
	// SkipGraphGC skips the reachability traversal at recovery and only
	// rebuilds allocator state by scanning block headers: the
	// J-PFA-nogc mode of Figure 11. Safe only if the application can
	// never crash with invalid-but-reachable objects.
	SkipGraphGC bool
	// Recover tunes the recovery pipeline (worker parallelism).
	Recover RecoverOptions
}

// Heap is the object-level view over a block heap: the entry point of the
// framework (the JNVM class of Figure 3).
type Heap struct {
	mem     *heap.Heap
	pool    *nvm.Pool
	byID    map[uint16]*Class
	byName  map[string]*Class
	root    *RootMap
	resurrs atomic.Uint64

	recoverPar int               // resolved recovery worker count (>= 1)
	recObs     obs.RecoveryStats // phase timings and counters

	// RecoveryStats of the last Open.
	RecoveryStats RecoveryStats
}

// RecoverParallelism returns the resolved recovery worker count this heap
// was opened with (>= 1). J-PDT mirror rebuilds consult it so OnResurrect
// scales with the same knob as the rest of the pipeline.
func (h *Heap) RecoverParallelism() int {
	if h.recoverPar < 1 {
		return 1
	}
	return h.recoverPar
}

// RecoveryObs returns the live recovery-phase counters.
func (h *Heap) RecoveryObs() *obs.RecoveryStats { return &h.recObs }

// RecoveryStats summarizes what the recovery procedure did.
type RecoveryStats struct {
	Formatted      bool // the pool was freshly formatted
	LiveObjects    uint64
	LiveBlocks     uint64
	NullifiedRefs  uint64
	ReclaimedRoots int // root entries dropped because their value died
	GraphTraversed bool
}

// Merge folds another pool's recovery stats into s. Shard-parallel
// recovery (DESIGN.md §17) recovers each pool concurrently and merges the
// per-pool stats in pool-index order; Formatted/GraphTraversed are ANDed
// so the merged value only claims what held for every pool.
func (s *RecoveryStats) Merge(o RecoveryStats) {
	s.Formatted = s.Formatted && o.Formatted
	s.LiveObjects += o.LiveObjects
	s.LiveBlocks += o.LiveBlocks
	s.NullifiedRefs += o.NullifiedRefs
	s.ReclaimedRoots += o.ReclaimedRoots
	s.GraphTraversed = s.GraphTraversed && o.GraphTraversed
}

// Open attaches to a pool, formatting it if it does not contain a heap,
// registers the classes, recovers failure-atomic logs, and runs the
// recovery procedure of §4.1.3.
func Open(pool *nvm.Pool, cfg Config) (*Heap, error) {
	mem, err := heap.Open(pool)
	formatted := false
	if err != nil {
		mem, err = heap.Format(pool, cfg.HeapOptions)
		if err != nil {
			return nil, err
		}
		formatted = true
	}
	h := &Heap{
		mem:    mem,
		pool:   pool,
		byID:   make(map[uint16]*Class),
		byName: make(map[string]*Class),
	}
	h.RecoveryStats.Formatted = formatted
	for _, c := range builtinClasses() {
		if err := h.register(c); err != nil {
			return nil, err
		}
	}
	for _, c := range cfg.Classes {
		if err := h.register(c); err != nil {
			return nil, err
		}
	}
	rec := RecoverOptions{Parallelism: cfg.Recover.Workers()}
	h.recoverPar = rec.Parallelism
	h.recObs.Workers.Store(uint64(rec.Parallelism))
	if cfg.LogHandler != nil {
		start := time.Now()
		if err := cfg.LogHandler.RecoverLogs(h, rec); err != nil {
			return nil, fmt.Errorf("core: log recovery: %w", err)
		}
		h.recObs.ReplayNs.Add(uint64(time.Since(start)))
	}
	if err := h.recoverHeap(cfg.SkipGraphGC); err != nil {
		return nil, err
	}
	if err := h.openRoot(); err != nil {
		return nil, err
	}
	return h, nil
}

func (h *Heap) register(c *Class) error {
	if existing, ok := h.byName[c.Name]; ok {
		if existing != c {
			return fmt.Errorf("core: class %q registered twice", c.Name)
		}
		return nil
	}
	id, err := h.mem.RegisterClass(c.Name)
	if err != nil {
		return err
	}
	c.id = id
	h.byID[id] = c
	h.byName[c.Name] = c
	return nil
}

// Class resolves a registered class by name.
func (h *Heap) Class(name string) (*Class, bool) {
	c, ok := h.byName[name]
	return c, ok
}

// MustClass resolves a registered class by name, panicking if it was not
// passed to Open — a configuration bug, not a runtime condition.
func (h *Heap) MustClass(name string) *Class {
	c, ok := h.byName[name]
	if !ok {
		panic(fmt.Sprintf("core: class %q not registered with this heap", name))
	}
	return c
}

// Root returns the heap's persistent root map (JNVM.root in Figure 3).
func (h *Heap) Root() *RootMap { return h.root }

// Resurrections reports how many proxies were materialized from refs, a
// cost the cached/eager J-PDT variants exist to avoid (§4.3.2).
func (h *Heap) Resurrections() uint64 { return h.resurrs.Load() }

// wrap builds the proxy core for an existing data structure. Single-block
// objects (the common case: pairs, small records) avoid the block-list
// allocation entirely.
func (h *Heap) wrap(ref Ref) *Object {
	o := &Object{h: h, ref: ref}
	if h.mem.IsBlockRef(ref) {
		if _, _, next := heap.UnpackHeader(h.mem.Header(ref)); next == 0 {
			o.inline[0] = ref
			o.blocks = o.inline[:1]
			o.size = heap.Payload
		} else {
			o.blocks = h.mem.Blocks(ref)
			o.size = uint64(len(o.blocks)) * heap.Payload
		}
	} else {
		o.size = h.mem.SlotPayloadLen(ref)
	}
	return o
}

// Alloc allocates the persistent data structure of a new object of the
// class: size payload bytes, zeroed, in the invalid state. The proxy is
// returned through the class factory, matching the generated constructor
// of Figure 4 (the caller then sets fields, flushes, validates).
func (h *Heap) Alloc(c *Class, size uint64) (PObject, error) {
	if c.id == 0 {
		return nil, fmt.Errorf("core: class %q not registered with this heap", c.Name)
	}
	ref, blocks, err := h.mem.AllocObject(c.id, size)
	if err != nil {
		return nil, err
	}
	o := &Object{h: h, ref: ref, blocks: blocks, size: uint64(len(blocks)) * heap.Payload}
	return c.Factory(o), nil
}

// AllocSmall allocates a pooled slot for a small immutable object (§4.4).
func (h *Heap) AllocSmall(c *Class, payload uint64) (PObject, error) {
	if c.id == 0 {
		return nil, fmt.Errorf("core: class %q not registered with this heap", c.Name)
	}
	ref, err := h.mem.AllocSmall(c.id, payload)
	if err != nil {
		return nil, err
	}
	o := &Object{h: h, ref: ref, size: payload}
	return c.Factory(o), nil
}

// Inspect returns an untyped proxy core for the object at ref, without
// dispatching through the class factory. It is meant for infrastructure
// code (J-PDT internals) that already knows the layout; application code
// should use Resurrect.
func (h *Heap) Inspect(ref Ref) *Object { return h.wrap(ref) }

// Resurrect materializes a proxy for the persistent object at ref: it
// reads the class id from the header, finds the registered class, and
// invokes the resurrect constructor (§3.1).
func (h *Heap) Resurrect(ref Ref) (PObject, error) {
	if ref == 0 {
		return nil, nil
	}
	id := h.mem.ClassOf(ref)
	c, ok := h.byID[id]
	if !ok {
		name, _ := h.mem.ClassName(id)
		return nil, fmt.Errorf("core: no registered class for id %d (%q) at ref %#x", id, name, ref)
	}
	h.resurrs.Add(1)
	po := c.Factory(h.wrap(ref))
	if r, ok := po.(Resurrector); ok {
		r.OnResurrect()
	}
	return po, nil
}

// Free atomically deletes a persistent object (§4.1.5): the master block
// is invalidated (flushed, unfenced) and the blocks return to the volatile
// free queue. The proxy becomes unusable, as in the paper where accessing
// a freed proxy throws.
func (h *Heap) Free(po PObject) {
	if po == nil {
		return
	}
	o := po.Core()
	if o.ref == 0 {
		return
	}
	h.mem.FreeObject(o.ref)
	o.ref = 0
	o.blocks = nil
	o.size = 0
}

// PFence exposes the fence at heap level for low-level batching patterns
// (Figure 5).
func (h *Heap) PFence() { h.pool.PFence() }

// PSync exposes psync at heap level.
func (h *Heap) PSync() { h.pool.PSync() }
