package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/heap"
	"repro/internal/nvm"
)

// simple is the test persistent class, the analogue of Figure 3's Simple:
// x at offset 0, a reference at offset 8, and a transient field.
type simple struct {
	*Object
	resurrected bool // transient
}

const (
	simpleX   = 0
	simpleRef = 8
	simpleLen = 16
)

func (s *simple) OnResurrect() { s.resurrected = true }

func (s *simple) X() int64      { return s.ReadInt64(simpleX) }
func (s *simple) SetX(v int64)  { s.WriteInt64(simpleX, v) }
func (s *simple) Next() Ref     { return s.ReadRef(simpleRef) }
func (s *simple) SetNext(r Ref) { s.WriteRef(simpleRef, r) }

func simpleClass() *Class {
	return &Class{
		Name:    "test.simple",
		Factory: func(o *Object) PObject { return &simple{Object: o} },
		Refs:    func(o *Object) []uint64 { return []uint64{simpleRef} },
	}
}

func testCfg(classes ...*Class) Config {
	return Config{
		HeapOptions: heap.Options{LogSlots: 2, LogSlotSize: 4096},
		Classes:     classes,
	}
}

func openTestHeap(t testing.TB, size int, tracked bool) (*Heap, *nvm.Pool, *Class) {
	t.Helper()
	pool := nvm.New(size, nvm.Options{Tracked: tracked})
	cls := simpleClass()
	h, err := Open(pool, testCfg(cls))
	if err != nil {
		t.Fatal(err)
	}
	return h, pool, cls
}

// newSimple allocates, initializes, flushes and validates a simple object
// — the generated-constructor discipline of Figure 4 minus the fence.
func newSimple(t testing.TB, h *Heap, cls *Class, x int64) *simple {
	t.Helper()
	po, err := h.Alloc(cls, simpleLen)
	if err != nil {
		t.Fatal(err)
	}
	s := po.(*simple)
	s.SetX(x)
	s.PWB()
	s.Validate()
	return s
}

func TestOpenFormatsFreshPool(t *testing.T) {
	h, _, _ := openTestHeap(t, 1<<20, false)
	if !h.RecoveryStats.Formatted {
		t.Fatal("fresh pool not formatted")
	}
	if h.Root() == nil {
		t.Fatal("no root map")
	}
	if h.Root().Len() != 0 {
		t.Fatal("fresh root map not empty")
	}
}

func TestPutGetAcrossReopen(t *testing.T) {
	pool := nvm.New(1<<20, nvm.Options{})
	cls := simpleClass()
	h, err := Open(pool, testCfg(cls))
	if err != nil {
		t.Fatal(err)
	}
	s := newSimple(t, h, cls, 42)
	if err := h.Root().Put("simple", s); err != nil {
		t.Fatal(err)
	}

	cls2 := simpleClass()
	h2, err := Open(pool, testCfg(cls2))
	if err != nil {
		t.Fatal(err)
	}
	if h2.RecoveryStats.Formatted {
		t.Fatal("reopen reformatted the pool")
	}
	po, err := h2.Root().Get("simple")
	if err != nil {
		t.Fatal(err)
	}
	got := po.(*simple)
	if got.X() != 42 {
		t.Fatalf("x = %d, want 42", got.X())
	}
	if !got.resurrected {
		t.Fatal("OnResurrect was not called")
	}
}

func TestFieldAccessorsAndSpanning(t *testing.T) {
	h, _, _ := openTestHeap(t, 1<<20, false)
	big := &Class{Name: "test.big", Factory: func(o *Object) PObject { return o }}
	if err := h.register(big); err != nil {
		t.Fatal(err)
	}
	po, err := h.Alloc(big, 3*heap.Payload)
	if err != nil {
		t.Fatal(err)
	}
	o := po.Core()
	// Primitive at every block boundary region.
	offsets := []uint64{0, heap.Payload - 8, heap.Payload, 2*heap.Payload - 16, 2 * heap.Payload}
	for i, off := range offsets {
		o.WriteUint64(off, uint64(i)*0x0101010101010101+7)
	}
	for i, off := range offsets {
		if got := o.ReadUint64(off); got != uint64(i)*0x0101010101010101+7 {
			t.Fatalf("u64 at %d: got %#x", off, got)
		}
	}
	// Unaligned spanning write/read.
	o.WriteUint64(heap.Payload-3, 0xdeadbeefcafebabe)
	if got := o.ReadUint64(heap.Payload - 3); got != 0xdeadbeefcafebabe {
		t.Fatalf("spanning u64: got %#x", got)
	}
	o.WriteUint32(heap.Payload-2, 0xfeedface)
	if got := o.ReadUint32(heap.Payload - 2); got != 0xfeedface {
		t.Fatalf("spanning u32: got %#x", got)
	}
	// Bulk bytes spanning several blocks.
	blob := make([]byte, 2*heap.Payload+17)
	for i := range blob {
		blob[i] = byte(i * 31)
	}
	o.WriteBytes(5, blob[:len(blob)-6])
	got := o.ReadBytes(5, uint64(len(blob)-6))
	for i := range got {
		if got[i] != blob[i] {
			t.Fatalf("blob[%d] = %#x, want %#x", i, got[i], blob[i])
		}
	}
	// Signed round trip.
	o.WriteInt64(16, -12345)
	if o.ReadInt64(16) != -12345 {
		t.Fatal("int64 sign lost")
	}
	o.WriteUint8(3, 0xab)
	if o.ReadUint8(3) != 0xab {
		t.Fatal("u8 round trip")
	}
}

func TestAccessBeyondSizePanics(t *testing.T) {
	h, _, cls := openTestHeap(t, 1<<20, false)
	s := newSimple(t, h, cls, 1)
	size := s.Core().Size()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.ReadUint64(size - 4)
}

func TestFreeInvalidatesProxy(t *testing.T) {
	h, _, cls := openTestHeap(t, 1<<20, false)
	s := newSimple(t, h, cls, 1)
	h.Free(s)
	if s.Core().Ref() != 0 {
		t.Fatal("freed proxy keeps its ref")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("access through freed proxy must panic")
		}
	}()
	s.X()
}

func TestDoubleFreeIsNoop(t *testing.T) {
	h, _, cls := openTestHeap(t, 1<<20, false)
	s := newSimple(t, h, cls, 1)
	h.Free(s)
	h.Free(s) // second free: harmless
	h.Free(nil)
}

func TestResurrectUnregisteredClassFails(t *testing.T) {
	pool := nvm.New(1<<20, nvm.Options{})
	cls := simpleClass()
	h, err := Open(pool, testCfg(cls))
	if err != nil {
		t.Fatal(err)
	}
	s := newSimple(t, h, cls, 9)
	h.PSync()
	ref := s.Core().Ref()

	// Reopen without registering the class: recovery cannot traverse it
	// once reachable, and resurrection must fail when unreachable.
	if err := h.Root().Put("s", s); err != nil {
		t.Fatal(err)
	}
	_, err = Open(pool, testCfg())
	if err == nil {
		t.Fatal("recovery should reject reachable instances of unregistered classes")
	}
	_ = ref
}

func TestRecoveryDeletesUnreachable(t *testing.T) {
	pool := nvm.New(1<<20, nvm.Options{})
	cls := simpleClass()
	h, err := Open(pool, testCfg(cls))
	if err != nil {
		t.Fatal(err)
	}
	kept := newSimple(t, h, cls, 1)
	if err := h.Root().Put("kept", kept); err != nil {
		t.Fatal(err)
	}
	// Leaked: validated and fenced but never reachable.
	leaked := newSimple(t, h, cls, 2)
	h.PSync()
	leakedRef := leaked.Core().Ref()

	cls2 := simpleClass()
	h2, err := Open(pool, testCfg(cls2))
	if err != nil {
		t.Fatal(err)
	}
	if h2.Mem().Valid(leakedRef) {
		t.Fatal("unreachable object survived recovery")
	}
	if !h2.Root().Exists("kept") {
		t.Fatal("reachable object lost")
	}
	assertHeapConsistent(t, h2)
}

func TestRecoveryNullifiesRefsToInvalid(t *testing.T) {
	pool := nvm.New(1<<20, nvm.Options{})
	cls := simpleClass()
	h, err := Open(pool, testCfg(cls))
	if err != nil {
		t.Fatal(err)
	}
	parent := newSimple(t, h, cls, 1)
	// Child is made reachable but never validated: the "partially deleted
	// or never published" case of §2.4.
	childPO, err := h.Alloc(cls, simpleLen)
	if err != nil {
		t.Fatal(err)
	}
	child := childPO.(*simple)
	child.SetX(99)
	child.PWB() // flushed but not validated
	parent.SetNext(child.Core().Ref())
	parent.PWBField(simpleRef, 8)
	if err := h.Root().Put("parent", parent); err != nil {
		t.Fatal(err)
	}

	cls2 := simpleClass()
	h2, err := Open(pool, testCfg(cls2))
	if err != nil {
		t.Fatal(err)
	}
	po, err := h2.Root().Get("parent")
	if err != nil {
		t.Fatal(err)
	}
	if got := po.(*simple).Next(); got != 0 {
		t.Fatalf("ref to invalid object not nullified: %#x", got)
	}
	if h2.RecoveryStats.NullifiedRefs != 1 {
		t.Fatalf("NullifiedRefs = %d", h2.RecoveryStats.NullifiedRefs)
	}
	assertHeapConsistent(t, h2)
}

func TestAtomicUpdateRefPublishesValidated(t *testing.T) {
	h, _, cls := openTestHeap(t, 1<<20, false)
	parent := newSimple(t, h, cls, 1)
	childPO, _ := h.Alloc(cls, simpleLen)
	child := childPO.(*simple)
	child.SetX(5)
	child.PWB()
	parent.Core().AtomicUpdateRef(simpleRef, child)
	if !child.Valid() {
		t.Fatal("AtomicUpdateRef did not validate the new object")
	}
	if parent.Next() != child.Core().Ref() {
		t.Fatal("ref not written")
	}
	parent.Core().AtomicUpdateRef(simpleRef, nil)
	if parent.Next() != 0 {
		t.Fatal("nil update did not clear")
	}
}

func TestAtomicReplaceRefFreesOld(t *testing.T) {
	h, _, cls := openTestHeap(t, 1<<20, false)
	parent := newSimple(t, h, cls, 1)
	a := newSimple(t, h, cls, 10)
	parent.Core().AtomicUpdateRef(simpleRef, a)
	aRef := a.Core().Ref()
	b := newSimple(t, h, cls, 20)
	parent.Core().AtomicReplaceRef(simpleRef, b)
	if parent.Next() != b.Core().Ref() {
		t.Fatal("replace did not swing the ref")
	}
	if h.Mem().Valid(aRef) {
		t.Fatal("old object not freed")
	}
}

func TestRootMapGrowsAndRemoves(t *testing.T) {
	pool := nvm.New(1<<22, nvm.Options{})
	cls := simpleClass()
	h, err := Open(pool, testCfg(cls))
	if err != nil {
		t.Fatal(err)
	}
	const n = 300 // forces several growths past the 64-slot initial array
	for i := 0; i < n; i++ {
		s := newSimple(t, h, cls, int64(i))
		if err := h.Root().Put(fmt.Sprintf("obj-%03d", i), s); err != nil {
			t.Fatal(err)
		}
	}
	if h.Root().Len() != n {
		t.Fatalf("Len = %d", h.Root().Len())
	}
	if h.Root().slotsCap() < n {
		t.Fatal("root array did not grow")
	}
	// Remove a third.
	for i := 0; i < n; i += 3 {
		name := fmt.Sprintf("obj-%03d", i)
		ref := h.Root().Remove(name)
		if ref == 0 {
			t.Fatalf("remove %s returned 0", name)
		}
		h.Mem().FreeObject(ref)
		h.PSync()
	}
	if h.Root().Remove("missing") != 0 {
		t.Fatal("removing a missing name should return 0")
	}

	cls2 := simpleClass()
	h2, err := Open(pool, testCfg(cls2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("obj-%03d", i)
		want := i%3 != 0
		if h2.Root().Exists(name) != want {
			t.Fatalf("after reopen, Exists(%s) = %v, want %v", name, !want, want)
		}
		if want {
			po, err := h2.Root().Get(name)
			if err != nil {
				t.Fatal(err)
			}
			if po.(*simple).X() != int64(i) {
				t.Fatalf("%s holds x=%d", name, po.(*simple).X())
			}
		}
	}
	if got := len(h2.Root().Names()); got != n-(n+2)/3 {
		t.Fatalf("Names() = %d entries", got)
	}
	assertHeapConsistent(t, h2)
}

func TestLowLevelBatchPublish(t *testing.T) {
	// The Figure 5 scenario on a tracked pool: two objects (each with a
	// sub-object) published with a single fence. Crash before the fence
	// drops everything; crash after keeps everything.
	pool := nvm.New(1<<20, nvm.Options{Tracked: true})
	cls := simpleClass()
	h, err := Open(pool, testCfg(cls))
	if err != nil {
		t.Fatal(err)
	}
	build := func(name string, x int64) *simple {
		po, _ := h.Alloc(cls, simpleLen)
		s := po.(*simple)
		s.SetX(x)
		subPO, _ := h.Alloc(cls, simpleLen)
		sub := subPO.(*simple)
		sub.SetX(x * 10)
		sub.PWB()
		sub.Validate() // no fence
		s.SetNext(sub.Core().Ref())
		s.PWB()
		if err := h.Root().WPut(name, s); err != nil {
			t.Fatal(err)
		}
		return s
	}
	a := build("a", 1)
	b := build("b", 2)

	// Crash before the fence: nothing was published.
	img := pool.CrashImage(nvm.CrashStrict, rand.New(rand.NewSource(1)))
	h2, err := Open(img, testCfg(simpleClass()))
	if err != nil {
		t.Fatal(err)
	}
	if h2.Root().Exists("a") || h2.Root().Exists("b") {
		t.Fatal("unfenced roots survived the crash")
	}
	assertHeapConsistent(t, h2)

	// The single fence + validations of Figure 5.
	h.PFence()
	a.Validate()
	b.Validate()
	h.PSync() // make the validations durable

	img = pool.CrashImage(nvm.CrashStrict, rand.New(rand.NewSource(2)))
	h3, err := Open(img, testCfg(simpleClass()))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b"} {
		po, err := h3.Root().Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if po == nil {
			t.Fatalf("root %s lost after fenced publish", name)
		}
		s := po.(*simple)
		subPO, err := s.ReadObject(simpleRef)
		if err != nil {
			t.Fatal(err)
		}
		if subPO == nil {
			t.Fatalf("sub-object of %s lost", name)
		}
		if subPO.(*simple).X() != s.X()*10 {
			t.Fatalf("sub-object of %s corrupt", name)
		}
	}
	assertHeapConsistent(t, h3)
}

func TestSkipGraphGCRecovery(t *testing.T) {
	pool := nvm.New(1<<20, nvm.Options{Tracked: true})
	cls := simpleClass()
	h, err := Open(pool, testCfg(cls))
	if err != nil {
		t.Fatal(err)
	}
	s := newSimple(t, h, cls, 7)
	if err := h.Root().Put("s", s); err != nil {
		t.Fatal(err)
	}
	img := pool.CrashImage(nvm.CrashStrict, rand.New(rand.NewSource(3)))
	cfg := testCfg(simpleClass())
	cfg.SkipGraphGC = true
	h2, err := Open(img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h2.RecoveryStats.GraphTraversed {
		t.Fatal("scan recovery traversed the graph")
	}
	po, err := h2.Root().Get("s")
	if err != nil || po == nil {
		t.Fatalf("scan recovery lost the root: %v %v", po, err)
	}
	if po.(*simple).X() != 7 {
		t.Fatal("data corrupt after scan recovery")
	}
}

func TestRecoverHookRuns(t *testing.T) {
	pool := nvm.New(1<<20, nvm.Options{})
	recovered := 0
	cls := &Class{
		Name: "test.hooked",
		Factory: func(o *Object) PObject {
			return &hooked{Object: o, onRecover: func() { recovered++ }}
		},
	}
	h, err := Open(pool, testCfg(cls))
	if err != nil {
		t.Fatal(err)
	}
	po, _ := h.Alloc(cls, 8)
	po.Core().PWB()
	po.Core().Validate()
	if err := h.Root().Put("x", po); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(pool, Config{Classes: []*Class{cls}}); err != nil {
		t.Fatal(err)
	}
	if recovered != 1 {
		t.Fatalf("Recover hook ran %d times, want 1", recovered)
	}
}

type hooked struct {
	*Object
	onRecover func()
}

func (h *hooked) Recover() { h.onRecover() }

// assertHeapConsistent checks the no-lost-blocks invariant: every arena
// block below the bump pointer is either in the free queue or part of a
// live (valid) object chain / pool chunk.
func assertHeapConsistent(t *testing.T, h *Heap) {
	t.Helper()
	mem := h.Mem()
	bumped, free, _ := mem.Stats()
	liveBlocks := uint64(0)
	seen := map[uint64]bool{}
	for idx := uint64(0); idx < bumped; idx++ {
		r := mem.BlockRef(idx)
		if seen[idx] {
			continue
		}
		id, valid, _ := heap.UnpackHeader(mem.Header(r))
		if id == heap.PoolChunkClass && valid {
			liveBlocks++
			seen[idx] = true
			continue
		}
		if id != 0 && valid {
			for _, b := range mem.Blocks(r) {
				bi := mem.BlockIndex(b)
				if seen[bi] {
					t.Fatalf("block %d owned twice", bi)
				}
				seen[bi] = true
				liveBlocks++
			}
		}
	}
	if bumped != free+liveBlocks {
		t.Fatalf("block accounting: bumped=%d free=%d live=%d", bumped, free, liveBlocks)
	}
}

// Property-style crash test: a random workload of allocations, links,
// publishes and frees is crashed at a random point under a random policy;
// after recovery every reachable object is valid and block accounting
// holds.
func TestCrashRecoveryRandomWorkload(t *testing.T) {
	runCrashRecoveryRandomWorkload(t, 1)
}

// The same workload recovered by the parallel pipeline; run under -race
// in CI to hammer the concurrent mark set, traversal and sweep.
func TestCrashRecoveryRandomWorkloadParallel(t *testing.T) {
	runCrashRecoveryRandomWorkload(t, 4)
}

func runCrashRecoveryRandomWorkload(t *testing.T, parallelism int) {
	for seed := int64(0); seed < 30; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			pool := nvm.New(1<<20, nvm.Options{Tracked: true})
			cls := simpleClass()
			h, err := Open(pool, testCfg(cls))
			if err != nil {
				t.Fatal(err)
			}
			var published []string
			steps := 20 + rng.Intn(40)
			for i := 0; i < steps; i++ {
				switch rng.Intn(4) {
				case 0, 1: // durable publish
					s := newSimple(t, h, cls, int64(i))
					name := fmt.Sprintf("n%d", i)
					if err := h.Root().Put(name, s); err != nil {
						t.Fatal(err)
					}
					published = append(published, name)
				case 2: // weak publish, maybe never fenced
					s := newSimple(t, h, cls, int64(i))
					if err := h.Root().WPut(fmt.Sprintf("w%d", i), s); err != nil {
						t.Fatal(err)
					}
				case 3: // remove + free
					if len(published) > 0 {
						name := published[0]
						published = published[1:]
						if ref := h.Root().Remove(name); ref != 0 {
							h.Mem().FreeObject(ref)
						}
						h.PSync()
					}
				}
			}
			policy := []nvm.CrashPolicy{nvm.CrashStrict, nvm.CrashAll, nvm.CrashRandom}[rng.Intn(3)]
			img := pool.CrashImage(policy, rng)
			cfg := testCfg(simpleClass())
			cfg.Recover.Parallelism = parallelism
			h2, err := Open(img, cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Every durably published (and not removed) binding must be intact.
			for _, name := range published {
				po, err := h2.Root().Get(name)
				if err != nil {
					t.Fatal(err)
				}
				if po == nil {
					t.Fatalf("durable root %s lost (policy %v)", name, policy)
				}
			}
			// Every reachable object must be valid.
			h2.Root().ForEach(func(name string, ref Ref) {
				if ref != 0 && !h2.Mem().Valid(ref) {
					t.Fatalf("reachable object %s invalid after recovery", name)
				}
			})
			assertHeapConsistent(t, h2)
		})
	}
}
