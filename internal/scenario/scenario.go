// Package scenario runs the end-to-end scenario fleet of DESIGN.md §18:
// a real gridserver process driven by real loadgen processes over TCP,
// each scenario emitting one schema-versioned JSON report into results/.
// The five scenarios cover the regimes a networked persistent store must
// survive: steady state (baseline), saturation (high-load), skew
// (hot-key), a slow medium (degraded-latency), and a SIGKILL with
// recovery and resumed traffic (crash-and-recover).
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/results"
	"repro/internal/wire"
	"repro/internal/ycsb"
)

// Names lists the scenarios in canonical order.
var Names = []string{"baseline", "high-load", "hot-key", "degraded-latency", "crash-recover", "leaderboard"}

// Options configures a scenario run.
type Options struct {
	ServerBin  string        // gridserver binary
	LoadgenBin string        // loadgen binary
	Addr       string        // server listen address
	OutDir     string        // where reports and per-process JSONs land
	ScratchDir string        // data dirs and intermediate files
	Duration   time.Duration // measured load length
	Records    int           // preloaded key-space size
	Log        io.Writer     // progress lines; nil for quiet
}

func (o *Options) defaults() {
	if o.Addr == "" {
		o.Addr = "127.0.0.1:7421"
	}
	if o.Duration == 0 {
		o.Duration = 15 * time.Second
	}
	if o.Records == 0 {
		o.Records = 5_000
	}
	if o.Log == nil {
		o.Log = io.Discard
	}
	if o.ScratchDir == "" {
		o.ScratchDir = os.TempDir()
	}
}

// OpLatency is one op type's latency summary in microseconds.
type OpLatency struct {
	Count  uint64  `json:"count"`
	MeanUs float64 `json:"mean_us"`
	P50Us  float64 `json:"p50_us"`
	P95Us  float64 `json:"p95_us"`
	P99Us  float64 `json:"p99_us"`
	MaxUs  float64 `json:"max_us"`
}

// CrashReport is the crash-recover scenario's extra evidence: how many
// writes the clients saw acknowledged, whether every one survived the
// SIGKILL, how long the restart took to readiness, and that the
// recovered server kept serving.
type CrashReport struct {
	AckedTotal       uint64  `json:"acked_total"`
	Checked          uint64  `json:"checked"`
	Missing          uint64  `json:"missing"`
	RestartToReadyMS float64 `json:"restart_to_ready_ms"`
	RecoveredRecords int     `json:"recovered_records"`
	ResumedOps       uint64  `json:"resumed_ops"`
	ResumedOpsPerSec float64 `json:"resumed_ops_per_sec"`
}

// Report is one scenario's result document.
type Report struct {
	results.Header
	Scenario  string            `json:"scenario"`
	Params    map[string]string `json:"params"`
	DurationS float64           `json:"duration_s"`

	Ops           uint64  `json:"ops"`
	Errors        uint64  `json:"errors"`
	NotFound      uint64  `json:"not_found"`
	ThroughputOps float64 `json:"throughput_ops"`

	Latency OpLatency            `json:"latency"` // all ops merged
	PerOp   map[string]OpLatency `json:"per_op"`

	// Persistence-primitive rates over the measured interval, from the
	// server's cross-layer counters: the end-to-end Table-3 columns.
	PWBPerOp    float64 `json:"pwb_per_op"`
	PFencePerOp float64 `json:"pfence_per_op"`
	// BatchMean is the mean pipeline-window size — the requests each
	// durability fence amortized over (DESIGN.md §18).
	BatchMean   float64 `json:"batch_mean"`
	WriteFences uint64  `json:"write_fences"`

	Crash       *CrashReport       `json:"crash,omitempty"`
	Leaderboard *LeaderboardReport `json:"leaderboard,omitempty"`
}

// LeaderboardReport is the delta-coalescing scenario's evidence: the same
// zipfian counter workload measured twice on one server — once as plain
// 8-byte field updates (no-fold), once as OpAddDelta increments riding
// the ledger — plus a uniform rate-limiter phase. The headline number is
// PWBReduction, the no-fold/fold ratio of pwb/op.
type LeaderboardReport struct {
	NoFoldOps       uint64  `json:"nofold_ops"`
	NoFoldPWBPerOp  float64 `json:"nofold_pwb_per_op"`
	NoFoldPFPerOp   float64 `json:"nofold_pfence_per_op"`
	FoldOps         uint64  `json:"fold_ops"`
	FoldPWBPerOp    float64 `json:"fold_pwb_per_op"`
	FoldPFPerOp     float64 `json:"fold_pfence_per_op"`
	PWBReduction    float64 `json:"pwb_reduction"`
	PFenceReduction float64 `json:"pfence_reduction"`

	// Ledger counters over the fold + rate-limiter phases.
	DeltaOps     uint64  `json:"delta_ops"`
	DeltasFolded uint64  `json:"deltas_folded"`
	DeltaEntries uint64  `json:"delta_entries"`
	FlushesSaved uint64  `json:"delta_flushes_saved"`
	FoldRatio    float64 `json:"fold_ratio"` // delta_ops per materialized entry

	RateLimitOps    uint64 `json:"ratelimit_ops"`
	RateLimitErrors uint64 `json:"ratelimit_errors"`
}

// Run executes one named scenario and writes its report to
// OutDir/scenario-<name>.json.
func Run(name string, o Options) (*Report, error) {
	o.defaults()
	var (
		rep *Report
		err error
	)
	switch name {
	case "baseline":
		rep, err = runLoad(o, name, nil, []lgSpec{{conns: 4, pipeline: 16, dist: "zipfian"}})
	case "high-load":
		rep, err = runLoad(o, name, nil, []lgSpec{
			{conns: 8, pipeline: 32, dist: "zipfian"},
			{conns: 8, pipeline: 32, dist: "zipfian"},
		})
	case "hot-key":
		rep, err = runLoad(o, name, nil, []lgSpec{
			{conns: 8, pipeline: 16, dist: "hot", readPct: 50, updatePct: 30, rmwPct: 20},
		})
	case "degraded-latency":
		rep, err = runLoad(o, name, []string{"-inject-delay", "200us"},
			[]lgSpec{{conns: 4, pipeline: 16, dist: "zipfian"}})
	case "crash-recover":
		rep, err = runCrash(o)
	case "leaderboard":
		rep, err = runLeaderboard(o)
	default:
		return nil, fmt.Errorf("scenario: unknown scenario %q (have %v)", name, Names)
	}
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", name, err)
	}
	if o.OutDir != "" {
		path := filepath.Join(o.OutDir, "scenario-"+name+".json")
		if err := results.WriteJSON(path, rep); err != nil {
			return nil, err
		}
		fmt.Fprintf(o.Log, "scenario %s: report -> %s\n", name, path)
	}
	return rep, nil
}

// lgSpec shapes one loadgen process.
type lgSpec struct {
	conns, pipeline                       int
	dist                                  string
	readPct, updatePct, insertPct, rmwPct int
	rate                                  float64
}

func (s lgSpec) args(o Options, proc int, out string) []string {
	read, update := s.readPct, s.updatePct
	if read == 0 && update == 0 && s.insertPct == 0 && s.rmwPct == 0 {
		read, update = 50, 50
	}
	a := []string{
		"-addr", o.Addr,
		"-conns", strconv.Itoa(s.conns),
		"-pipeline", strconv.Itoa(s.pipeline),
		"-duration", o.Duration.String(),
		"-dist", s.dist,
		"-records", strconv.Itoa(o.Records),
		"-read-pct", strconv.Itoa(read),
		"-update-pct", strconv.Itoa(update),
		"-insert-pct", strconv.Itoa(s.insertPct),
		"-rmw-pct", strconv.Itoa(s.rmwPct),
		"-proc", strconv.Itoa(proc),
		"-out", out,
	}
	if s.rate > 0 {
		a = append(a, "-rate", fmt.Sprintf("%g", s.rate))
	}
	return a
}

// runLoad is the shared shape of the four non-crash scenarios: start a
// server (with extra flags), preload the key space, run the loadgen
// fleet, diff the server's stats around the measured interval, merge.
func runLoad(o Options, name string, serverArgs []string, specs []lgSpec) (*Report, error) {
	srv, err := startServer(o, serverArgs...)
	if err != nil {
		return nil, err
	}
	defer srv.ensureDead()

	if err := runCmd(o, o.LoadgenBin,
		"-addr", o.Addr, "-conns", "4", "-pipeline", "32",
		"-records", strconv.Itoa(o.Records), "-preload", "-duration", "0s",
		"-read-pct", "100", "-update-pct", "0"); err != nil {
		return nil, fmt.Errorf("preload: %w", err)
	}

	before, err := fetchStats(o.Addr)
	if err != nil {
		return nil, err
	}

	outs := make([]string, len(specs))
	procs := make([]*exec.Cmd, len(specs))
	for i, s := range specs {
		outs[i] = filepath.Join(o.ScratchDir, fmt.Sprintf("%s-proc%d.json", name, i))
		cmd := exec.Command(o.LoadgenBin, s.args(o, i, outs[i])...)
		cmd.Stdout, cmd.Stderr = o.Log, o.Log
		if err := cmd.Start(); err != nil {
			return nil, err
		}
		procs[i] = cmd
	}
	var lgErr error
	for _, cmd := range procs {
		if err := cmd.Wait(); err != nil && lgErr == nil {
			lgErr = err
		}
	}
	if lgErr != nil {
		return nil, fmt.Errorf("loadgen: %w", lgErr)
	}

	after, err := fetchStats(o.Addr)
	if err != nil {
		return nil, err
	}
	if err := srv.stop(); err != nil {
		return nil, err
	}

	rep := newReport(name, o)
	rep.Params["server_args"] = fmt.Sprint(serverArgs)
	rep.Params["loadgens"] = strconv.Itoa(len(specs))
	rep.Params["conns"] = strconv.Itoa(totalConns(specs))
	rep.Params["dist"] = specs[0].dist
	if err := rep.merge(outs); err != nil {
		return nil, err
	}
	rep.addStats(before, after)
	return rep, nil
}

// runCrash is the crash-and-recover scenario: deterministic insert
// streams, SIGKILL mid-load, restart on the same pools, verify every
// acknowledged key, then resume traffic on the recovered server.
func runCrash(o Options) (*Report, error) {
	dataDir, err := os.MkdirTemp(o.ScratchDir, "crash-data-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dataDir)

	// Pool sizing is a recovery-time tradeoff: the restart sweeps every
	// block header, so the pool must hold the whole bounded insert stream
	// (2 conns x maxOps plus resumed traffic) without being so large the
	// sweep dominates the scenario.
	const serverRecords, maxOpsPerConn = 40_000, 50_000
	srv, err := startServer(o, "-data", dataDir, "-records", strconv.Itoa(serverRecords))
	if err != nil {
		return nil, err
	}
	defer srv.ensureDead()

	acksPath := filepath.Join(o.ScratchDir, "crash-acks.json")
	lg := exec.Command(o.LoadgenBin,
		"-addr", o.Addr, "-conns", "2", "-pipeline", "16",
		"-duration", o.Duration.String(),
		"-max-ops", strconv.Itoa(maxOpsPerConn),
		"-insert-seq", "-key-prefix", "c", "-out", acksPath)
	lg.Stdout, lg.Stderr = o.Log, o.Log
	if err := lg.Start(); err != nil {
		return nil, err
	}

	// SIGKILL the server mid-load: no drain, no flush, no goodbye — the
	// strongest failure the durability contract must survive. The trigger
	// is observed traffic (a few thousand requests executed), so the kill
	// lands while pipeline windows are in flight on any host speed; the
	// half-duration timer is the fallback.
	killDeadline := time.Now().Add(o.Duration / 2)
	for {
		if v, err := fetchStats(o.Addr); err == nil && v.Server.Requests >= 5_000 {
			break
		}
		if time.Now().After(killDeadline) {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	fmt.Fprintf(o.Log, "scenario crash-recover: SIGKILL server pid %d\n", srv.cmd.Process.Pid)
	if err := srv.kill(); err != nil {
		return nil, err
	}
	// The loadgen's connections break; its acked counts are final.
	lg.Wait()

	var acks lgResult
	if err := readJSON(acksPath, &acks); err != nil {
		return nil, fmt.Errorf("acks: %w", err)
	}
	var ackedTotal uint64
	for _, n := range acks.Acked {
		ackedTotal += n
	}
	if ackedTotal == 0 {
		return nil, fmt.Errorf("no inserts were acknowledged before the kill")
	}

	// Restart on the same pools; readiness includes the mirror rebuild.
	restartStart := time.Now()
	srv2, err := startServer(o, "-data", dataDir, "-records", strconv.Itoa(serverRecords))
	if err != nil {
		return nil, fmt.Errorf("restart: %w", err)
	}
	defer srv2.ensureDead()
	readyMS := float64(time.Since(restartStart).Microseconds()) / 1e3

	verifyPath := filepath.Join(o.ScratchDir, "crash-verify.json")
	verifyErr := runCmd(o, o.LoadgenBin, "-addr", o.Addr, "-verify", acksPath, "-pipeline", "64", "-out", verifyPath)
	var ver struct {
		Checked uint64 `json:"checked"`
		Missing uint64 `json:"missing"`
	}
	if err := readJSON(verifyPath, &ver); err != nil {
		return nil, fmt.Errorf("verify: %w (loadgen: %v)", err, verifyErr)
	}

	// Resumed traffic: fresh insert streams prove the recovered heap
	// still accepts and persists writes.
	resumedPath := filepath.Join(o.ScratchDir, "crash-resumed.json")
	resumedDur := o.Duration / 3
	if resumedDur < 2*time.Second {
		resumedDur = 2 * time.Second
	}
	if err := runCmd(o, o.LoadgenBin,
		"-addr", o.Addr, "-conns", "2", "-pipeline", "16",
		"-duration", resumedDur.String(), "-max-ops", "20000",
		"-insert-seq", "-key-prefix", "r", "-out", resumedPath); err != nil {
		return nil, fmt.Errorf("resumed load: %w", err)
	}
	var resumed lgResult
	if err := readJSON(resumedPath, &resumed); err != nil {
		return nil, err
	}
	if err := srv2.stop(); err != nil {
		return nil, err
	}

	rep := newReport("crash-recover", o)
	rep.Params["conns"] = "2"
	rep.Params["kill_after"] = (o.Duration / 2).String()
	if err := rep.merge([]string{acksPath}); err != nil {
		return nil, err
	}
	rep.Crash = &CrashReport{
		AckedTotal:       ackedTotal,
		Checked:          ver.Checked,
		Missing:          ver.Missing,
		RestartToReadyMS: readyMS,
		RecoveredRecords: srv2.recovered,
		ResumedOps:       resumed.Ops,
	}
	if resumed.DurationS > 0 {
		rep.Crash.ResumedOpsPerSec = float64(resumed.Ops) / resumed.DurationS
	}
	if ver.Missing > 0 {
		return rep, fmt.Errorf("%d acknowledged writes lost after SIGKILL", ver.Missing)
	}
	if verifyErr != nil {
		return rep, fmt.Errorf("verify: %w", verifyErr)
	}
	if resumed.Errors > 0 {
		return rep, fmt.Errorf("resumed traffic saw %d errors", resumed.Errors)
	}
	return rep, nil
}

// runLeaderboard is the delta-coalescing scenario: records are
// single-field 8-byte counters, traffic is zipfian (theta~0.99) so a
// handful of leaderboard heads soak up most increments, and top-score
// reads ride the same skewed chooser. Three measured phases against one
// async-commit server, each bracketed by its own stats snapshot:
//
//  1. nofold — the increments arrive as plain 8-byte field updates; every
//     op rewrites its value through the redo log.
//  2. fold — the same mix as OpAddDelta increments; write-hot keys fold
//     in the ledger to one materialized entry per key per epoch.
//  3. ratelimit — uniform AddDelta bursts (every client bumping its own
//     token bucket), the low-skew sanity check that folding never
//     corrupts and the fallback path stays correct.
//
// The report's headline is pwb/op (nofold) / pwb/op (fold).
func runLeaderboard(o Options) (*Report, error) {
	srv, err := startServer(o, "-commit", "async", "-fields", "1", "-fieldlen", "8")
	if err != nil {
		return nil, err
	}
	defer srv.ensureDead()

	// Preload the whole key space as one-field 8-byte records: every
	// field is a foldable counter, and the no-fold updates rewrite
	// exactly the bytes the deltas increment — a like-for-like pwb/op
	// comparison.
	if err := runCmd(o, o.LoadgenBin,
		"-addr", o.Addr, "-conns", "4", "-pipeline", "32",
		"-records", strconv.Itoa(o.Records), "-preload", "-duration", "0s",
		"-fields", "1", "-fieldlen", "8",
		"-read-pct", "100", "-update-pct", "0"); err != nil {
		return nil, fmt.Errorf("preload: %w", err)
	}

	phaseDur := o.Duration / 2
	if phaseDur < 3*time.Second {
		phaseDur = 3 * time.Second
	}
	rateDur := o.Duration / 3
	if rateDur < 2*time.Second {
		rateDur = 2 * time.Second
	}

	type phase struct {
		lr    lgResult
		stack obs.StackSnapshot
	}
	runPhase := func(name string, dur time.Duration, extra ...string) (*phase, string, error) {
		before, err := fetchStats(o.Addr)
		if err != nil {
			return nil, "", err
		}
		out := filepath.Join(o.ScratchDir, "leaderboard-"+name+".json")
		args := append([]string{
			"-addr", o.Addr, "-conns", "8", "-pipeline", "32",
			"-duration", dur.String(),
			"-records", strconv.Itoa(o.Records),
			"-fields", "1", "-fieldlen", "8",
			"-out", out,
		}, extra...)
		if err := runCmd(o, o.LoadgenBin, args...); err != nil {
			return nil, "", fmt.Errorf("phase %s: %w", name, err)
		}
		after, err := fetchStats(o.Addr)
		if err != nil {
			return nil, "", err
		}
		p := &phase{}
		if err := readJSON(out, &p.lr); err != nil {
			return nil, "", err
		}
		if after.Stack != nil && before.Stack != nil {
			p.stack = after.Stack.Sub(*before.Stack)
		}
		fmt.Fprintf(o.Log, "scenario leaderboard: phase %s: %d ops, %d errors\n", name, p.lr.Ops, p.lr.Errors)
		return p, out, nil
	}

	nofold, nofoldOut, err := runPhase("nofold", phaseDur,
		"-dist", "zipfian", "-read-pct", "30", "-update-pct", "70")
	if err != nil {
		return nil, err
	}
	fold, foldOut, err := runPhase("fold", phaseDur,
		"-dist", "zipfian", "-read-pct", "30", "-update-pct", "0", "-delta-pct", "70")
	if err != nil {
		return nil, err
	}
	rate, rateOut, err := runPhase("ratelimit", rateDur,
		"-dist", "uniform", "-read-pct", "10", "-update-pct", "0", "-delta-pct", "90")
	if err != nil {
		return nil, err
	}
	if err := srv.stop(); err != nil {
		return nil, err
	}

	perOp := func(p *phase, f func(*obs.NVMSnapshot) uint64) float64 {
		if p.stack.NVM == nil || p.lr.Ops == 0 {
			return 0
		}
		return float64(f(p.stack.NVM)) / float64(p.lr.Ops)
	}
	pwbs := func(n *obs.NVMSnapshot) uint64 { return n.PWBs }
	fences := func(n *obs.NVMSnapshot) uint64 { return n.Fences() }

	lb := &LeaderboardReport{
		NoFoldOps:       nofold.lr.Ops,
		NoFoldPWBPerOp:  perOp(nofold, pwbs),
		NoFoldPFPerOp:   perOp(nofold, fences),
		FoldOps:         fold.lr.Ops,
		FoldPWBPerOp:    perOp(fold, pwbs),
		FoldPFPerOp:     perOp(fold, fences),
		RateLimitOps:    rate.lr.Ops,
		RateLimitErrors: rate.lr.Errors,
	}
	if lb.FoldPWBPerOp > 0 {
		lb.PWBReduction = lb.NoFoldPWBPerOp / lb.FoldPWBPerOp
	}
	if lb.FoldPFPerOp > 0 {
		lb.PFenceReduction = lb.NoFoldPFPerOp / lb.FoldPFPerOp
	}
	for _, p := range []*phase{fold, rate} {
		if p.stack.FA == nil {
			continue
		}
		lb.DeltaOps += p.stack.FA.DeltaOps
		lb.DeltasFolded += p.stack.FA.DeltasFolded
		lb.DeltaEntries += p.stack.FA.DeltaEntries
		lb.FlushesSaved += p.stack.FA.DeltaFlushesSaved
	}
	if lb.DeltaEntries > 0 {
		lb.FoldRatio = float64(lb.DeltaOps) / float64(lb.DeltaEntries)
	}
	fmt.Fprintf(o.Log,
		"scenario leaderboard: pwb/op %.2f (nofold) vs %.2f (fold) = %.1fx reduction, fold ratio %.1fx\n",
		lb.NoFoldPWBPerOp, lb.FoldPWBPerOp, lb.PWBReduction, lb.FoldRatio)

	rep := newReport("leaderboard", o)
	rep.Params["commit"] = "async"
	rep.Params["dist"] = "zipfian"
	rep.Params["phases"] = "nofold,fold,ratelimit"
	rep.Params["conns"] = "8"
	if err := rep.merge([]string{nofoldOut, foldOut, rateOut}); err != nil {
		return nil, err
	}
	// Whole-run pwb/op (all phases) for the fleet table; the phase split
	// lives in the Leaderboard block.
	rep.PWBPerOp = (lb.NoFoldPWBPerOp*float64(lb.NoFoldOps) +
		lb.FoldPWBPerOp*float64(lb.FoldOps)) / float64(max64(lb.NoFoldOps+lb.FoldOps, 1))
	rep.PFencePerOp = (lb.NoFoldPFPerOp*float64(lb.NoFoldOps) +
		lb.FoldPFPerOp*float64(lb.FoldOps)) / float64(max64(lb.NoFoldOps+lb.FoldOps, 1))
	rep.Leaderboard = lb
	if rate.lr.Errors > 0 {
		return rep, fmt.Errorf("rate-limiter phase saw %d errors", rate.lr.Errors)
	}
	return rep, nil
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// ---- server process management ----

type proc struct {
	cmd       *exec.Cmd
	recovered int // records reported recovered at startup, if any
}

// startServer launches the gridserver and waits for it to answer a ping
// — which on a recovered heap includes the mirror rebuild.
func startServer(o Options, extra ...string) (*proc, error) {
	args := append([]string{"-addr", o.Addr, "-records", strconv.Itoa(o.Records * 2), "-drain-timeout", "10s"}, extra...)
	cmd := exec.Command(o.ServerBin, args...)
	pr, pw, err := os.Pipe()
	if err != nil {
		return nil, err
	}
	cmd.Stdout, cmd.Stderr = pw, pw
	if err := cmd.Start(); err != nil {
		pr.Close()
		pw.Close()
		return nil, err
	}
	pw.Close()
	p := &proc{cmd: cmd}
	lineCh := make(chan string, 16)
	go func() {
		defer pr.Close()
		buf := make([]byte, 4096)
		line := ""
		for {
			n, err := pr.Read(buf)
			if n > 0 {
				fmt.Fprint(o.Log, string(buf[:n]))
				line += string(buf[:n])
				for {
					i := strings.IndexByte(line, '\n')
					if i < 0 {
						break
					}
					select {
					case lineCh <- line[:i]:
					default:
					}
					line = line[i+1:]
				}
			}
			if err != nil {
				close(lineCh)
				return
			}
		}
	}()

	// Recovery sweeps every pool block before the listener comes up, so
	// readiness on a big recovered pool takes real time on slow hosts.
	deadline := time.Now().Add(60 * time.Second)
	for {
		cl, err := wire.DialTimeout(o.Addr, time.Second)
		if err == nil {
			err = cl.Ping()
			cl.Close()
			if err == nil {
				break
			}
		}
		if time.Now().After(deadline) {
			p.ensureDead()
			return nil, fmt.Errorf("server not ready on %s after 60s", o.Addr)
		}
		time.Sleep(50 * time.Millisecond)
	}
	// Harvest the recovery line if the server printed one before ready.
	for {
		select {
		case l, ok := <-lineCh:
			if !ok {
				return p, nil
			}
			var n int
			var d string
			if _, err := fmt.Sscanf(l, "gridserver: recovered %d records in %s", &n, &d); err == nil {
				p.recovered = n
			}
			continue
		default:
		}
		break
	}
	return p, nil
}

func totalConns(specs []lgSpec) int {
	n := 0
	for _, s := range specs {
		n += s.conns
	}
	return n
}

// stop drains the server with SIGTERM and waits.
func (p *proc) stop() error {
	if p.cmd.Process == nil {
		return nil
	}
	p.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(20 * time.Second):
		p.cmd.Process.Kill()
		<-done
		return fmt.Errorf("server did not drain within 20s")
	}
}

// kill SIGKILLs the server — the crash scenario's hammer.
func (p *proc) kill() error {
	if err := p.cmd.Process.Kill(); err != nil {
		return err
	}
	p.cmd.Wait()
	return nil
}

// ensureDead is the cleanup backstop for error paths.
func (p *proc) ensureDead() {
	if p.cmd.ProcessState == nil && p.cmd.Process != nil {
		p.cmd.Process.Kill()
		p.cmd.Wait()
	}
}

// ---- loadgen results and server stats ----

// lgResult mirrors the loadgen output document (the JSON tags are the
// cross-process contract).
type lgResult struct {
	Ops       uint64                     `json:"ops"`
	Errors    uint64                     `json:"errors"`
	NotFound  uint64                     `json:"not_found"`
	DurationS float64                    `json:"duration_s"`
	Acked     []uint64                   `json:"acked"`
	PerOp     map[string]*ycsb.Histogram `json:"per_op"`
}

// statsView mirrors the slices of the server's OpStats payload the
// runner consumes.
type statsView struct {
	Server obs.ServerSnapshot `json:"server"`
	Stack  *obs.StackSnapshot `json:"stack"`
}

func fetchStats(addr string) (*statsView, error) {
	cl, err := wire.DialTimeout(addr, 2*time.Second)
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	blob, err := cl.Stats()
	if err != nil {
		return nil, err
	}
	var v statsView
	if err := json.Unmarshal(blob, &v); err != nil {
		return nil, err
	}
	return &v, nil
}

func newReport(name string, o Options) *Report {
	return &Report{
		Header:   results.NewHeader(),
		Scenario: name,
		Params: map[string]string{
			"duration": o.Duration.String(),
			"records":  strconv.Itoa(o.Records),
		},
		PerOp: make(map[string]OpLatency),
	}
}

// merge folds per-process loadgen JSONs into the report; multi-process
// histograms add up because ycsb.Histogram round-trips losslessly.
func (r *Report) merge(paths []string) error {
	all := &ycsb.Histogram{}
	perOp := make(map[string]*ycsb.Histogram)
	var maxDur float64
	for _, path := range paths {
		var lr lgResult
		if err := readJSON(path, &lr); err != nil {
			return err
		}
		r.Ops += lr.Ops
		r.Errors += lr.Errors
		r.NotFound += lr.NotFound
		if lr.DurationS > maxDur {
			maxDur = lr.DurationS
		}
		for op, h := range lr.PerOp {
			if perOp[op] == nil {
				perOp[op] = &ycsb.Histogram{}
			}
			perOp[op].Merge(h)
			all.Merge(h)
		}
	}
	r.DurationS = maxDur
	if maxDur > 0 {
		r.ThroughputOps = float64(r.Ops) / maxDur
	}
	r.Latency = summarize(all)
	for op, h := range perOp {
		r.PerOp[op] = summarize(h)
	}
	return nil
}

// addStats derives the persistence and batching columns from the
// server's before/after counter snapshots.
func (r *Report) addStats(before, after *statsView) {
	sd := after.Server.Sub(before.Server)
	r.WriteFences = sd.WriteFences
	if sd.Batches > 0 {
		r.BatchMean = float64(sd.BatchSize.Sum) / float64(sd.Batches)
	}
	if after.Stack != nil && r.Ops > 0 {
		var d obs.StackSnapshot
		if before.Stack != nil {
			d = after.Stack.Sub(*before.Stack)
		} else {
			d = *after.Stack
		}
		if d.NVM != nil {
			r.PWBPerOp = float64(d.NVM.PWBs) / float64(r.Ops)
			r.PFencePerOp = float64(d.NVM.Fences()) / float64(r.Ops)
		}
	}
}

func summarize(h *ycsb.Histogram) OpLatency {
	return OpLatency{
		Count:  h.Count(),
		MeanUs: us(h.Mean()),
		P50Us:  us(h.Percentile(0.50)),
		P95Us:  us(h.Percentile(0.95)),
		P99Us:  us(h.Percentile(0.99)),
		MaxUs:  us(h.Max()),
	}
}

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

func runCmd(o Options, bin string, args ...string) error {
	cmd := exec.Command(bin, args...)
	cmd.Stdout, cmd.Stderr = o.Log, o.Log
	return cmd.Run()
}

func readJSON(path string, v any) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(buf, v)
}
