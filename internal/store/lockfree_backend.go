package store

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/obs"
	"repro/internal/pdt"
)

// LockFreeBackend is the optional capability behind the grid's lock-free
// mode: a backend whose insert/read/update/delete are internally
// linearizable and crash-consistent without external mutual exclusion.
// When the record cache is off, the grid detects it and skips its stripe
// locks and seqlock generations for those four operations (RMW keeps the
// stripe lock: its read-then-write window is a grid-level contract).
type LockFreeBackend interface {
	// EnableLockFree switches the backend's heap to epoch-based
	// reclamation and wires the lock-free op counters. Called once by the
	// grid, before traffic.
	EnableLockFree(rs *obs.ReadStats)
}

// JPDTLFBackend is the lock-free J-PDT backend (DESIGN.md §16): records
// live in a pdt.LFMap, every structural write persists only its
// destination cell (one pwb + one fence), and reads run under an EBR pin
// with no locks anywhere — the grid drops its stripe locks and seqlock
// generations entirely for this backend (see LockFreeBackend).
type JPDTLFBackend struct {
	h *core.Heap
	m *pdt.LFMap
}

// NewJPDTLFBackend creates (or reopens) the backend's lock-free map
// under the given root name.
func NewJPDTLFBackend(h *core.Heap, rootName string) (*JPDTLFBackend, error) {
	if h.Root().Exists(rootName) {
		po, err := h.Root().Get(rootName)
		if err != nil {
			return nil, err
		}
		m, ok := po.(*pdt.LFMap)
		if !ok {
			return nil, fmt.Errorf("store: root %q is not a pdt.LFMap", rootName)
		}
		return &JPDTLFBackend{h: h, m: m}, nil
	}
	m, err := pdt.NewLFMap(h, 0)
	if err != nil {
		return nil, err
	}
	if err := h.Root().Put(rootName, m); err != nil {
		return nil, err
	}
	return &JPDTLFBackend{h: h, m: m}, nil
}

// Name implements Backend.
func (b *JPDTLFBackend) Name() string { return "J-PDT-LF" }

// Count implements Backend.
func (b *JPDTLFBackend) Count() int { return b.m.Len() }

// Keys implements KeyLister (sorted: LFMap iteration is bucket-order).
func (b *JPDTLFBackend) Keys() []string {
	var ks []string
	b.m.ForEach(func(key string, _ core.Ref) bool {
		ks = append(ks, key)
		return true
	})
	sort.Strings(ks)
	return ks
}

// Close implements Backend.
func (b *JPDTLFBackend) Close() error { return nil }

// Map exposes the underlying lock-free map (crash workloads inspect it).
func (b *JPDTLFBackend) Map() *pdt.LFMap { return b.m }

// EnableLockFree implements LockFreeBackend.
func (b *JPDTLFBackend) EnableLockFree(rs *obs.ReadStats) {
	b.h.Mem().EnableEBR()
	b.m.SetReadObs(rs)
}

// Insert implements Backend: the record and all field objects are born
// valid and flushed; the map insert's single fence is the only ordering
// point and its cell pwb the only structural flush.
func (b *JPDTLFBackend) Insert(key string, rec *Record) error {
	r, err := newPRecordValid(b.h, rec)
	if err != nil {
		return err
	}
	return b.m.PutRef(key, r.Ref())
}

// readRecordPinned streams the record's fields to consume while the
// caller's EBR pin is held. Field reference words are loaded atomically
// (concurrent updaters CAS them); blob views come straight out of NVMM,
// with a copy only for chained blobs (never the YCSB shapes).
func readRecordPinned(h *core.Heap, ref core.Ref, consume func(name string, value []byte)) {
	mem := h.Mem()
	pool := h.Pool()
	var n int
	var word func(off uint64) core.Ref
	if mem.IsBlockRef(ref) {
		if _, _, next := heap.UnpackHeader(mem.Header(ref)); next == 0 {
			data := ref + heap.HeaderSize
			n = int(pool.ReadUint32(data + recCount))
			if recFields+uint64(n)*16 <= heap.Payload {
				word = func(off uint64) core.Ref { return pool.ReadUint64Atomic(data + off) }
			}
		}
	}
	if word == nil { // chained record: go through the proxy's locator
		o := h.Inspect(ref)
		n = int(o.ReadUint32(recCount))
		word = o.ReadRefAtomic
	}
	for i := 0; i < n; i++ {
		nref := word(fieldNameOff(i))
		vref := word(fieldValOff(i))
		if nref == 0 || vref == 0 {
			continue // nullified by recovery or claimed by a racing delete
		}
		nb, ok := pdt.BlobView(h, nref)
		if !ok {
			nb = pdt.ReadBlobView(h, nref)
		}
		vb, ok := pdt.BlobView(h, vref)
		if !ok {
			vb = pdt.ReadBlobView(h, vref)
		}
		consume(viewString(nb), vb)
	}
}

// Read implements Backend: lock-free, zero-copy, under one EBR pin.
func (b *JPDTLFBackend) Read(key string, consume func(name string, value []byte)) (bool, error) {
	found := b.m.WithValue(key, func(vref core.Ref) {
		readRecordPinned(b.h, vref, consume)
	})
	return found, nil
}

// fieldIndexPinned is fieldIndex with atomic reference loads, safe against
// concurrent field CASes (names are immutable once published, but the
// words next to them move).
func fieldIndexPinned(h *core.Heap, word func(off uint64) core.Ref, n int, name string) int {
	for i := 0; i < n; i++ {
		nref := word(fieldNameOff(i))
		if nref == 0 {
			continue
		}
		if pdt.BlobEquals(h, nref, name) {
			return i
		}
	}
	return -1
}

// Update implements Backend: per-field CAS displacement. Each new value
// is born valid and flushed; one fence orders all of them, then every
// field word is swung with a CAS whose loser retries and whose displaced
// reference is freed by the swapper (the ownership rule of DESIGN.md
// §16). A field word found at zero means a racing delete claimed the
// record: the update linearizes after it and reports not-found.
// Single-block records (the YCSB shapes) are updated through raw pool
// offsets — no proxy wrap, no per-op heap allocation beyond the new
// values themselves.
func (b *JPDTLFBackend) Update(key string, fields []Field) (bool, error) {
	h := b.h
	mem := h.Mem()
	pool := h.Pool()
	var uerr error
	vanished := false
	found := b.m.WithValue(key, func(ref core.Ref) {
		var n int
		var load func(off uint64) core.Ref
		var cas func(off uint64, old, new core.Ref) bool
		var pwb func(off uint64)
		if mem.IsBlockRef(ref) {
			if _, _, next := heap.UnpackHeader(mem.Header(ref)); next == 0 {
				data := ref + heap.HeaderSize
				n = int(pool.ReadUint32(data + recCount))
				if recFields+uint64(n)*16 <= heap.Payload {
					load = func(off uint64) core.Ref { return pool.ReadUint64Atomic(data + off) }
					cas = func(off uint64, old, new core.Ref) bool {
						return pool.CompareAndSwapUint64(data+off, uint64(old), uint64(new))
					}
					pwb = func(off uint64) { pool.PWBRange(data+off, 8) }
				}
			}
		}
		if load == nil { // chained record: go through the proxy's locator
			o := h.Inspect(ref)
			n = int(o.ReadUint32(recCount))
			load = o.ReadRefAtomic
			cas = o.CompareAndSwapRef
			pwb = func(off uint64) { o.PWBField(off, 8) }
		}
		var newsArr [8]*pdt.PBytes
		var idxsArr [8]int
		news, idxs := newsArr[:0], idxsArr[:0]
		if len(fields) > len(newsArr) {
			news = make([]*pdt.PBytes, 0, len(fields))
			idxs = make([]int, 0, len(fields))
		}
		for _, f := range fields {
			i := fieldIndexPinned(h, load, n, f.Name)
			if i < 0 {
				uerr = fmt.Errorf("store: record %q has no field %q", key, f.Name)
				return
			}
			vb, err := pdt.NewBytesValid(h, f.Value)
			if err != nil {
				uerr = err
				return
			}
			news = append(news, vb)
			idxs = append(idxs, i)
		}
		pool.PFence() // one fence orders every new value's flush
		for fi := range news {
			off := fieldValOff(idxs[fi])
			for {
				old := load(off)
				if old == 0 {
					// A deleter claimed this record; hand the orphaned
					// new value back and surface the delete.
					mem.FreeObject(news[fi].Ref())
					vanished = true
					return
				}
				if cas(off, old, news[fi].Ref()) {
					pwb(off) // persist-at-destination: one line
					mem.FreeObject(old)
					break
				}
			}
		}
	})
	if uerr != nil {
		return false, uerr
	}
	return found && !vanished, nil
}

// Delete implements Backend: the record is unlinked by the lock-free
// remove (one pwb on the cell), then each field is claimed with a CAS to
// zero before its referent is freed — racing updaters that lose the claim
// see the zero and withdraw, so nothing is freed twice.
func (b *JPDTLFBackend) Delete(key string) (bool, error) {
	po, err := b.m.Remove(key)
	if err != nil || po == nil {
		return false, err
	}
	h := b.h
	r := &pRecord{Object: po.Core()}
	n := r.fieldCount()
	for i := 0; i < n; i++ {
		if nref := r.ReadRefAtomic(fieldNameOff(i)); nref != 0 {
			h.Mem().FreeObject(nref)
		}
		off := fieldValOff(i)
		for {
			vref := r.ReadRefAtomic(off)
			if vref == 0 {
				break
			}
			if r.CompareAndSwapRef(off, vref, 0) {
				h.Mem().FreeObject(vref)
				break
			}
		}
	}
	h.Free(r)
	return true, nil
}
