package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// captureRead performs a grid read and keeps the exact slices handed to the
// consumer (what a caching client would retain).
func captureRead(t *testing.T, g *Grid, key string) *Record {
	t.Helper()
	rec := &Record{}
	err := g.Read(key, func(name string, val []byte) {
		rec.Fields = append(rec.Fields, Field{Name: name, Value: val})
	})
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

// TestGridCachedReadSurvivesBlockReuse is the regression test for the
// stale-cache aliasing bug: Grid.Read used to cache the exact value slices
// the J-PDT backend streams, but pRecord.read hands out zero-copy views
// into NVMM. Updating or deleting the record frees the viewed value
// objects, the allocator recycles them for the next insert, and the bytes
// under the cached record silently change.
func TestGridCachedReadSurvivesBlockReuse(t *testing.T) {
	h, _, _ := openStoreHeap(t, 1<<23, false)
	b, err := NewJPDTBackend(h, "kv")
	if err != nil {
		t.Fatal(err)
	}
	// Populate behind the grid so the first grid read takes the
	// cache-miss fill path rather than Insert's clone.
	if err := b.Insert("victim", testRecord(5, "victim")); err != nil {
		t.Fatal(err)
	}
	g := NewGrid(b, Options{CacheEntries: 16})

	// First read fills the cache; second read is a cache hit, serving the
	// cached record — capture exactly what it hands out.
	captureRead(t, g, "victim")
	got := captureRead(t, g, "victim")
	hits, _ := g.CacheStats()
	if hits == 0 {
		t.Fatal("second read was not a cache hit; test setup broken")
	}
	want := testRecord(5, "victim")

	// Mutate via the grid: an update frees the old field value object...
	if err := g.Update("victim", []Field{{Name: "field1", Value: []byte("patched")}}); err != nil {
		t.Fatal(err)
	}
	// ...and delete + reinsert churn recycles every freed block and pooled
	// slot with different bytes.
	if err := g.Delete("victim"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := g.Insert(fmt.Sprintf("churn%d", i), testRecord(5, fmt.Sprintf("CHURN%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	// The previously served read result must be unchanged.
	for i, f := range want.Fields {
		if got.Fields[i].Name != f.Name {
			t.Fatalf("field %d name changed: %q", i, got.Fields[i].Name)
		}
		if !bytes.Equal(got.Fields[i].Value, f.Value) {
			t.Fatalf("cached read result mutated by block reuse: field %d = %q, want %q",
				i, got.Fields[i].Value, f.Value)
		}
	}
}

// TestGridCacheCoherentAfterPartialUpdate: a backend update that fails
// half-way (unknown second field) has already swung the first field and
// freed its old value object. The grid must not keep serving the cached
// record as if nothing happened.
func TestGridCacheCoherentAfterPartialUpdate(t *testing.T) {
	h, _, _ := openStoreHeap(t, 1<<23, false)
	b, err := NewJPDTBackend(h, "kv")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Insert("k", testRecord(3, "k")); err != nil {
		t.Fatal(err)
	}
	g := NewGrid(b, Options{CacheEntries: 16})
	captureRead(t, g, "k") // warm cache

	err = g.Update("k", []Field{
		{Name: "field0", Value: []byte("half-applied")},
		{Name: "no-such-field", Value: []byte("x")},
	})
	if err == nil {
		t.Fatal("update with unknown field should error")
	}
	// Churn so any dangling cached views get recycled.
	for i := 0; i < 8; i++ {
		if err := g.Insert(fmt.Sprintf("churn%d", i), testRecord(3, fmt.Sprintf("C%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// The grid must now agree with the backend.
	truth, ok := readAll(t, b, "k")
	if !ok {
		t.Fatal("backend lost the record")
	}
	got := captureRead(t, g, "k")
	for _, f := range truth.Fields {
		v, ok := got.Get(f.Name)
		if !ok || !bytes.Equal(v, f.Value) {
			t.Fatalf("grid read diverged from backend after failed update: %s = %q, want %q",
				f.Name, v, f.Value)
		}
	}
}

// TestGridCachedConcurrentReadersWriters hammers a cached J-PDT grid with
// concurrent readers and writers. Designed for -race: on the aliasing bug,
// readers consuming cached views race the pool writes that recycle freed
// value objects.
func TestGridCachedConcurrentReadersWriters(t *testing.T) {
	h, _, _ := openStoreHeap(t, 1<<24, false)
	b, err := NewJPDTBackend(h, "kv")
	if err != nil {
		t.Fatal(err)
	}
	g := NewGrid(b, Options{CacheEntries: 32})
	const keys = 16
	for i := 0; i < keys; i++ {
		if err := g.Insert(fmt.Sprintf("key%d", i), testRecord(4, "init")); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) { // writers: update and delete+reinsert churn
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("key%d", rng.Intn(keys))
				if rng.Intn(4) == 0 {
					if err := g.Delete(key); err != nil && err != ErrNotFound {
						errCh <- err
						return
					}
					if err := g.Insert(key, testRecord(4, fmt.Sprintf("w%d-%d", w, i))); err != nil {
						errCh <- err
						return
					}
					continue
				}
				err := g.Update(key, []Field{{Name: "field1", Value: []byte(fmt.Sprintf("w%d-%d", w, i))}})
				if err != nil && err != ErrNotFound {
					errCh <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) { // readers: touch every byte served
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			sink := 0
			for i := 0; i < 400; i++ {
				key := fmt.Sprintf("key%d", rng.Intn(keys))
				err := g.Read(key, func(_ string, val []byte) {
					for _, c := range val {
						sink += int(c)
					}
				})
				if err != nil && err != ErrNotFound {
					errCh <- err
					return
				}
			}
			_ = sink
		}(r)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestGridShardedCacheServesAllStripes fills more keys than there are
// cache stripes and re-reads each: with per-stripe capacity rounded up
// from CacheEntries, every second read must be a hit regardless of which
// stripe the key hashed to, and the patch path (Update/RMW via
// cachePatch) must keep every shard coherent.
func TestGridShardedCacheServesAllStripes(t *testing.T) {
	h, _, _ := openStoreHeap(t, 1<<24, false)
	b, err := NewJPDTBackend(h, "kv")
	if err != nil {
		t.Fatal(err)
	}
	const keys = 4 * gridStripes // several keys per stripe on average
	g := NewGrid(b, Options{CacheEntries: 16 * gridStripes})
	for i := 0; i < keys; i++ {
		if err := g.Insert(fmt.Sprintf("key%04d", i), testRecord(3, fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Insert cloned every record into its shard; all reads must hit.
	for i := 0; i < keys; i++ {
		captureRead(t, g, fmt.Sprintf("key%04d", i))
	}
	hits, misses := g.CacheStats()
	if misses != 0 || hits != keys {
		t.Fatalf("sharded cache: %d hits, %d misses; want %d hits, 0 misses", hits, misses, keys)
	}
	// Patch a field on every key and verify the cached copy follows.
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key%04d", i)
		want := []byte(fmt.Sprintf("patched%d", i))
		if err := g.Update(key, []Field{{Name: "field1", Value: want}}); err != nil {
			t.Fatal(err)
		}
		rec := captureRead(t, g, key)
		got, ok := rec.Get("field1")
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("%s: cached field1 = %q, want %q", key, got, want)
		}
	}
}
