package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/fa"
	"repro/internal/heap"
	"repro/internal/nvm"
	"repro/internal/pdt"
)

func openStoreHeap(t testing.TB, size int, tracked bool) (*core.Heap, *fa.Manager, *nvm.Pool) {
	t.Helper()
	pool := nvm.New(size, nvm.Options{Tracked: tracked})
	return reopenStoreHeap(t, pool)
}

func reopenStoreHeap(t testing.TB, pool *nvm.Pool) (*core.Heap, *fa.Manager, *nvm.Pool) {
	t.Helper()
	mgr := fa.NewManager()
	classes := append(pdt.Classes(), Classes()...)
	h, err := core.Open(pool, core.Config{
		HeapOptions: heap.Options{LogSlots: 8, LogSlotSize: 1 << 14},
		Classes:     classes,
		LogHandler:  mgr,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h, mgr, pool
}

func testRecord(n int, tag string) *Record {
	rec := &Record{}
	for i := 0; i < n; i++ {
		rec.Fields = append(rec.Fields, Field{
			Name:  fmt.Sprintf("field%d", i),
			Value: []byte(fmt.Sprintf("%s-value-%d", tag, i)),
		})
	}
	return rec
}

func readAll(t *testing.T, b Backend, key string) (*Record, bool) {
	t.Helper()
	rec := &Record{}
	ok, err := b.Read(key, func(name string, val []byte) {
		rec.Fields = append(rec.Fields, Field{Name: name, Value: val})
	})
	if err != nil {
		t.Fatal(err)
	}
	return rec, ok
}

func TestMarshalRoundTrip(t *testing.T) {
	rec := testRecord(10, "x")
	rec.Fields = append(rec.Fields, Field{Name: "", Value: nil}) // edge: empty
	got, err := Unmarshal(Marshal(rec))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Fields) != len(rec.Fields) {
		t.Fatalf("field count %d", len(got.Fields))
	}
	for i := range rec.Fields {
		if got.Fields[i].Name != rec.Fields[i].Name || !bytes.Equal(got.Fields[i].Value, rec.Fields[i].Value) {
			t.Fatalf("field %d mismatch", i)
		}
	}
}

func TestUnmarshalRejectsTruncation(t *testing.T) {
	buf := Marshal(testRecord(3, "x"))
	for _, cut := range []int{0, 3, 5, len(buf) / 2, len(buf) - 1} {
		if _, err := Unmarshal(buf[:cut]); err == nil {
			t.Fatalf("accepted truncation at %d", cut)
		}
	}
}

func TestQuickMarshalRoundTrip(t *testing.T) {
	f := func(names []string, vals [][]byte) bool {
		rec := &Record{}
		for i := range names {
			var v []byte
			if i < len(vals) {
				v = vals[i]
			}
			rec.Fields = append(rec.Fields, Field{Name: names[i], Value: v})
		}
		got, err := Unmarshal(Marshal(rec))
		if err != nil || len(got.Fields) != len(rec.Fields) {
			return false
		}
		for i := range rec.Fields {
			if got.Fields[i].Name != rec.Fields[i].Name || !bytes.Equal(got.Fields[i].Value, rec.Fields[i].Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// backendConformance exercises the full Backend contract.
func backendConformance(t *testing.T, b Backend) {
	t.Helper()
	if _, ok := readAll(t, b, "missing"); ok {
		t.Fatal("read of missing key succeeded")
	}
	if ok, _ := b.Update("missing", []Field{{Name: "field0", Value: []byte("x")}}); ok {
		t.Fatal("update of missing key succeeded")
	}
	if ok, _ := b.Delete("missing"); ok {
		t.Fatal("delete of missing key succeeded")
	}

	if err := b.Insert("k1", testRecord(10, "k1")); err != nil {
		t.Fatal(err)
	}
	if err := b.Insert("k2", testRecord(10, "k2")); err != nil {
		t.Fatal(err)
	}
	if b.Count() != 2 {
		t.Fatalf("Count = %d", b.Count())
	}
	rec, ok := readAll(t, b, "k1")
	if !ok || len(rec.Fields) != 10 {
		t.Fatalf("read k1: %v fields=%d", ok, len(rec.Fields))
	}
	if v, _ := rec.Get("field3"); string(v) != "k1-value-3" {
		t.Fatalf("field3 = %q", v)
	}

	// Subset update leaves other fields alone.
	if ok, err := b.Update("k1", []Field{{Name: "field3", Value: []byte("patched")}}); !ok || err != nil {
		t.Fatalf("update: %v %v", ok, err)
	}
	rec, _ = readAll(t, b, "k1")
	if v, _ := rec.Get("field3"); string(v) != "patched" {
		t.Fatalf("patched field3 = %q", v)
	}
	if v, _ := rec.Get("field4"); string(v) != "k1-value-4" {
		t.Fatalf("untouched field4 = %q", v)
	}
	// k2 unaffected.
	rec2, _ := readAll(t, b, "k2")
	if v, _ := rec2.Get("field3"); string(v) != "k2-value-3" {
		t.Fatalf("k2 field3 = %q", v)
	}

	if ok, err := b.Delete("k1"); !ok || err != nil {
		t.Fatalf("delete: %v %v", ok, err)
	}
	if _, ok := readAll(t, b, "k1"); ok {
		t.Fatal("deleted key still readable")
	}
	if b.Count() != 1 {
		t.Fatalf("Count after delete = %d", b.Count())
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBackendConformance(t *testing.T) {
	t.Run("volatile", func(t *testing.T) { backendConformance(t, NewVolatileBackend()) })
	t.Run("tmpfs", func(t *testing.T) { backendConformance(t, NewTmpFSBackend()) })
	t.Run("fs", func(t *testing.T) {
		b, err := NewFSBackend(t.TempDir(), false)
		if err != nil {
			t.Fatal(err)
		}
		backendConformance(t, b)
	})
	t.Run("fs-fsync", func(t *testing.T) {
		b, err := NewFSBackend(t.TempDir(), true)
		if err != nil {
			t.Fatal(err)
		}
		backendConformance(t, b)
	})
	t.Run("jpdt", func(t *testing.T) {
		h, _, _ := openStoreHeap(t, 1<<23, false)
		b, err := NewJPDTBackend(h, "kv")
		if err != nil {
			t.Fatal(err)
		}
		backendConformance(t, b)
	})
	t.Run("jpfa", func(t *testing.T) {
		h, mgr, _ := openStoreHeap(t, 1<<23, false)
		b, err := NewJPFABackend(h, mgr, "kv")
		if err != nil {
			t.Fatal(err)
		}
		backendConformance(t, b)
	})
	t.Run("pcj", func(t *testing.T) {
		h, _, _ := openStoreHeap(t, 1<<23, false)
		b, err := NewPCJBackend(h, "kv")
		if err != nil {
			t.Fatal(err)
		}
		b.CrossingNs = 1 // keep the test fast
		backendConformance(t, b)
	})
}

func TestNullFSSemantics(t *testing.T) {
	b := NewNullFSBackend()
	if _, ok := readAll(t, b, "k"); ok {
		t.Fatal("empty nullfs served a read")
	}
	if err := b.Insert("k", testRecord(10, "k")); err != nil {
		t.Fatal(err)
	}
	// Reads pay the unmarshal and produce a right-shaped record.
	rec, ok := readAll(t, b, "k")
	if !ok || len(rec.Fields) != 10 {
		t.Fatalf("nullfs read: %v %d fields", ok, len(rec.Fields))
	}
	if ok, err := b.Update("k", []Field{{Name: "field0", Value: []byte("x")}}); !ok || err != nil {
		t.Fatal("nullfs update")
	}
	if ok, _ := b.Delete("k"); !ok {
		t.Fatal("nullfs delete")
	}
	if b.Count() != 0 {
		t.Fatal("count after delete")
	}
}

func TestJPDTPersistsAcrossReopen(t *testing.T) {
	h, _, pool := openStoreHeap(t, 1<<23, false)
	b, err := NewJPDTBackend(h, "kv")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := b.Insert(fmt.Sprintf("key%02d", i), testRecord(5, fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	b.Update("key07", []Field{{Name: "field2", Value: []byte("updated")}})
	b.Delete("key09")
	h.PSync()

	h2, _, _ := reopenStoreHeap(t, pool)
	b2, err := NewJPDTBackend(h2, "kv")
	if err != nil {
		t.Fatal(err)
	}
	if b2.Count() != 29 {
		t.Fatalf("Count after reopen = %d", b2.Count())
	}
	rec, ok := readAll(t, b2, "key07")
	if !ok {
		t.Fatal("key07 lost")
	}
	if v, _ := rec.Get("field2"); string(v) != "updated" {
		t.Fatalf("update lost: %q", v)
	}
	if _, ok := readAll(t, b2, "key09"); ok {
		t.Fatal("deleted key survived reopen")
	}
}

func TestJPDTDeleteReclaimsStorage(t *testing.T) {
	h, _, _ := openStoreHeap(t, 1<<23, false)
	b, _ := NewJPDTBackend(h, "kv")
	if err := b.Insert("k", testRecord(10, "k")); err != nil {
		t.Fatal(err)
	}
	bumpedBefore, freeBefore, _ := h.Mem().Stats()
	for i := 0; i < 20; i++ {
		if err := b.Insert("tmp", testRecord(10, "tmp")); err != nil {
			t.Fatal(err)
		}
		if ok, err := b.Delete("tmp"); !ok || err != nil {
			t.Fatal("delete failed")
		}
	}
	bumpedAfter, freeAfter, _ := h.Mem().Stats()
	// Insert/delete churn must recycle blocks, not leak them: net block
	// consumption stays small (slot-pool chunks may pin a few).
	if bumpedAfter-bumpedBefore > 40+(freeAfter-freeBefore) {
		t.Fatalf("churn leaked blocks: bump +%d free +%d",
			bumpedAfter-bumpedBefore, freeAfter-freeBefore)
	}
}

func TestJPFACrashAtomicUpdate(t *testing.T) {
	h, mgr, pool := openStoreHeap(t, 1<<23, true)
	b, err := NewJPFABackend(h, mgr, "kv")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Insert("k", testRecord(3, "orig")); err != nil {
		t.Fatal(err)
	}
	h.PSync()

	// Crash right after an update returns: the committed log guarantees
	// the update survives even a strict crash.
	if ok, err := b.Update("k", []Field{{Name: "field1", Value: []byte("committed")}}); !ok || err != nil {
		t.Fatal(err)
	}
	img := pool.CrashImage(nvm.CrashStrict, rand.New(rand.NewSource(1)))
	h2, mgr2, _ := reopenStoreHeap(t, img)
	b2, err := NewJPFABackend(h2, mgr2, "kv")
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := readAll(t, b2, "k")
	if !ok {
		t.Fatal("record lost")
	}
	if v, _ := rec.Get("field1"); string(v) != "committed" {
		t.Fatalf("committed update lost: %q", v)
	}
	if v, _ := rec.Get("field2"); string(v) != "orig-value-2" {
		t.Fatalf("other field corrupt: %q", v)
	}
}

func TestGridCacheServesReads(t *testing.T) {
	b := NewTmpFSBackend()
	g := NewGrid(b, Options{CacheEntries: 10})
	if err := g.Insert("k", testRecord(3, "k")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := g.Read("k", func(string, []byte) {}); err != nil {
			t.Fatal(err)
		}
	}
	hits, _ := g.CacheStats()
	if hits < 5 {
		t.Fatalf("cache hits = %d", hits)
	}
}

func TestGridWriteThroughKeepsCacheCoherent(t *testing.T) {
	b := NewTmpFSBackend()
	g := NewGrid(b, Options{CacheEntries: 10})
	g.Insert("k", testRecord(3, "k"))
	g.Read("k", func(string, []byte) {}) // warm cache
	if err := g.Update("k", []Field{{Name: "field1", Value: []byte("new")}}); err != nil {
		t.Fatal(err)
	}
	var got []byte
	g.Read("k", func(name string, val []byte) {
		if name == "field1" {
			got = val
		}
	})
	if string(got) != "new" {
		t.Fatalf("cached read after update = %q", got)
	}
	// Backend has it too (write-through).
	rec, _ := readAll(t, b, "k")
	if v, _ := rec.Get("field1"); string(v) != "new" {
		t.Fatal("backend missed write-through update")
	}
}

func TestGridReadModifyWrite(t *testing.T) {
	g := NewGrid(NewVolatileBackend(), Options{})
	g.Insert("k", testRecord(2, "k"))
	err := g.ReadModifyWrite("k", func(rec *Record) []Field {
		v, _ := rec.Get("field0")
		return []Field{{Name: "field0", Value: append(v, '!')}}
	})
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	g.Read("k", func(name string, val []byte) {
		if name == "field0" {
			got = val
		}
	})
	if string(got) != "k-value-0!" {
		t.Fatalf("rmw result %q", got)
	}
}

func TestGridNotFound(t *testing.T) {
	g := NewGrid(NewVolatileBackend(), Options{CacheEntries: 4})
	if err := g.Read("nope", func(string, []byte) {}); err != ErrNotFound {
		t.Fatalf("Read err = %v", err)
	}
	if err := g.Update("nope", nil); err != ErrNotFound {
		t.Fatalf("Update err = %v", err)
	}
	if err := g.Delete("nope"); err != ErrNotFound {
		t.Fatalf("Delete err = %v", err)
	}
	if err := g.ReadModifyWrite("nope", func(*Record) []Field { return nil }); err != ErrNotFound {
		t.Fatalf("RMW err = %v", err)
	}
}

func TestGridConcurrentMixedOps(t *testing.T) {
	h, _, _ := openStoreHeap(t, 1<<24, false)
	b, err := NewJPDTBackend(h, "kv")
	if err != nil {
		t.Fatal(err)
	}
	g := NewGrid(b, Options{})
	for i := 0; i < 64; i++ {
		if err := g.Insert(fmt.Sprintf("key%d", i), testRecord(4, "init")); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 300; i++ {
				key := fmt.Sprintf("key%d", rng.Intn(64))
				switch rng.Intn(3) {
				case 0:
					if err := g.Read(key, func(string, []byte) {}); err != nil {
						errCh <- fmt.Errorf("read %s: %w", key, err)
						return
					}
				case 1:
					err := g.Update(key, []Field{{Name: "field1", Value: []byte(fmt.Sprintf("w%d-%d", w, i))}})
					if err != nil {
						errCh <- fmt.Errorf("update %s: %w", key, err)
						return
					}
				case 2:
					err := g.ReadModifyWrite(key, func(rec *Record) []Field {
						v, _ := rec.Get("field2")
						return []Field{{Name: "field2", Value: append(append([]byte{}, v...), 'x')}}
					})
					if err != nil {
						errCh <- fmt.Errorf("rmw %s: %w", key, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if g.Count() != 64 {
		t.Fatalf("Count = %d", g.Count())
	}
}

func TestScanJPDTOrderedBackend(t *testing.T) {
	h, _, _ := openStoreHeap(t, 1<<23, false)
	b, err := NewJPDTBackendKind(h, "kv", pdt.MirrorTree)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := b.Insert(fmt.Sprintf("key%02d", i), testRecord(3, fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	g := NewGrid(b, Options{})
	var keys []string
	seen := map[string]int{}
	err = g.Scan("key10", 5, func(key, field string, val []byte) {
		if len(keys) == 0 || keys[len(keys)-1] != key {
			keys = append(keys, key)
		}
		seen[key]++
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 5 || keys[0] != "key10" || keys[4] != "key14" {
		t.Fatalf("scan keys: %v", keys)
	}
	for k, n := range seen {
		if n != 3 {
			t.Fatalf("%s streamed %d fields", k, n)
		}
	}
}

func TestScanHashBackendRejected(t *testing.T) {
	h, _, _ := openStoreHeap(t, 1<<23, false)
	b, err := NewJPDTBackend(h, "kv") // hash mirror
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Insert("k", testRecord(2, "k")); err != nil {
		t.Fatal(err)
	}
	if err := b.Scan("", 5, func(string, string, []byte) {}); err == nil {
		t.Fatal("hash-mirror scan should error")
	}
	// TmpFS has no Scan at all: the grid reports ErrNoScan.
	g := NewGrid(NewTmpFSBackend(), Options{})
	if err := g.Scan("", 5, func(string, string, []byte) {}); err != ErrNoScan {
		t.Fatalf("err = %v", err)
	}
}

func TestScanVolatileBaseline(t *testing.T) {
	b := NewVolatileBackend()
	for i := 0; i < 10; i++ {
		b.Insert(fmt.Sprintf("k%02d", i), testRecord(2, "x"))
	}
	var first, count = "", 0
	err := b.Scan("k03", 4, func(key, _ string, _ []byte) {
		if first == "" {
			first = key
		}
		count++
	})
	if err != nil {
		t.Fatal(err)
	}
	if first != "k03" || count != 4*2 {
		t.Fatalf("scan: first=%s fields=%d", first, count)
	}
}
