package store

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/container"
	"repro/internal/obs"
)

// Backend is a persistence plug for the grid, at field granularity so the
// J-NVM backends never marshal whole records (the decisive property the
// evaluation measures).
type Backend interface {
	Name() string
	// Insert stores a new record.
	Insert(key string, rec *Record) error
	// Read streams every field of the record to consume. The name and
	// value arguments are only valid for the duration of the call (the
	// J-NVM backends stream views straight out of NVMM); consumers that
	// retain a field must copy both.
	Read(key string, consume func(name string, value []byte)) (bool, error)
	// Update overwrites a subset of fields of an existing record.
	Update(key string, fields []Field) (bool, error)
	// Delete removes the record.
	Delete(key string) (bool, error)
	// Count returns the number of stored records.
	Count() int
	Close() error
}

// KeyLister is an optional backend capability: enumerate every stored key
// in a deterministic (sorted) order. The shard migrator uses it to walk a
// pool's records when the epoch table grows; all four J-NVM backends
// implement it.
type KeyLister interface {
	Keys() []string
}

// Grid is the embedded data grid standing in for Infinispan: per-key lock
// striping for concurrency control (§5.3.2: "accesses to the persistent
// state are protected by the locks of Infinispan") and an optional
// volatile record cache in front of the backend (the cache-ratio knob of
// §2.2.1/§5.3.1), maintained write-through as Infinispan does for
// durability.
type Grid struct {
	backend Backend

	// vr is non-nil when the backend supports zero-copy view reads and
	// caching is off: Read then tries a seqlock-validated unlocked fast
	// path before falling back to the stripe lock (DESIGN.md §14).
	vr ViewReader

	// lockFree is set when the backend is internally linearizable
	// (LockFreeBackend): insert/read/update/delete skip the stripe locks
	// and seqlock generations entirely; only ReadModifyWrite keeps the
	// stripe lock, for its read-then-write atomicity contract.
	lockFree bool

	stripes [gridStripes]sync.Mutex

	// structMu serializes structural map operations (insert, delete) for
	// backends that are not internally linearizable: those touch shared
	// slot blocks the per-key stripe locks do not cover. Only the batch
	// entry point (ApplyBatch, used by the wire server) takes it — the
	// embedded harnesses run structural phases single-threaded instead.
	structMu sync.Mutex

	// gens are the per-stripe seqlock generations (only maintained when
	// vr is set): writers make them odd on entry and even on exit, and an
	// unlocked reader is valid only if its stripe generation is even and
	// unchanged across the read.
	gens [gridStripes]genSlot

	// cache is the volatile record cache, sharded per stripe so cached
	// reads on different keys never serialize on one mutex; nil when
	// caching is disabled. The stripe index of a key's cache shard is the
	// same FNV index as its lock stripe.
	cache []cacheShard

	stats obs.GridStats
}

// genSlot pads each stripe generation to its own cache line so reader
// validation loads never false-share with neighboring stripes' writers.
type genSlot struct {
	v atomic.Uint64
	_ [56]byte
}

const gridStripes = 128

// cacheShard is one stripe's slice of the record cache: a private mutex
// plus a private LRU. Capacity is bounded per shard, so the total bound
// is ceil(CacheEntries/gridStripes)*gridStripes — never below the
// requested size, at most a stripe-rounding above it.
type cacheShard struct {
	mu  sync.Mutex
	lru *container.LRU[*Record]
}

// Options configures a Grid.
type Options struct {
	// CacheEntries bounds the volatile record cache; 0 disables caching
	// (the right setting for the J-NVM backends, §5.3.1). The bound is
	// spread over the lock stripes and rounded up to a multiple of the
	// stripe count.
	CacheEntries int
}

// NewGrid wraps a backend.
func NewGrid(b Backend, opts Options) *Grid {
	g := &Grid{backend: b}
	if opts.CacheEntries > 0 {
		per := (opts.CacheEntries + gridStripes - 1) / gridStripes
		g.cache = make([]cacheShard, gridStripes)
		for i := range g.cache {
			g.cache[i].lru = container.NewLRU[*Record](per, nil)
		}
	} else if lfb, ok := b.(LockFreeBackend); ok {
		// Lock-free backend + no cache: every op goes straight through;
		// the backend's own CAS/EBR protocol is the concurrency control.
		lfb.EnableLockFree(&g.stats.ReadPath)
		g.lockFree = true
	} else if vr, ok := b.(ViewReader); ok {
		// Cache off + capable backend: adopt the zero-copy read fast
		// path. (With a record cache the cache itself is the fast path,
		// and cached reads already avoid the backend entirely.)
		vr.EnableViewReads(&g.stats.ReadPath)
		g.vr = vr
	}
	return g
}

// Backend returns the underlying persistence plug.
func (g *Grid) Backend() Backend { return g.backend }

// CacheStats reports cache hits and misses since creation.
func (g *Grid) CacheStats() (hits, misses uint64) {
	return g.stats.CacheHits.Load(), g.stats.CacheMisses.Load()
}

// Obs returns the grid's live per-operation histograms and cache counters.
func (g *Grid) Obs() *obs.GridStats { return &g.stats }

// ObsSnapshot captures the current grid metrics.
func (g *Grid) ObsSnapshot() obs.GridSnapshot { return g.stats.Snapshot() }

// fnv32 is an inlined FNV-1a: hash.Hash32 would cost two heap allocations
// (digest + []byte(key)) per operation. The one hash selects both the
// key's lock stripe and its cache shard.
func fnv32(key string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return h
}

// stripe maps a hashed key to its lock.
func (g *Grid) stripe(h uint32) *sync.Mutex {
	return &g.stripes[h%gridStripes]
}

// lockWrite takes the key's stripe lock as a writer and, when the
// zero-copy read path is active, makes the stripe's seqlock generation
// odd so unlocked readers back off.
func (g *Grid) lockWrite(h uint32) *sync.Mutex {
	mu := g.stripe(h)
	mu.Lock()
	if g.vr != nil {
		g.gens[h%gridStripes].v.Add(1)
	}
	return mu
}

// unlockWrite makes the generation even again (readers that overlapped
// the write see a changed generation and retry) and releases the stripe.
func (g *Grid) unlockWrite(h uint32, mu *sync.Mutex) {
	if g.vr != nil {
		g.gens[h%gridStripes].v.Add(1)
	}
	mu.Unlock()
}

func (g *Grid) cacheGet(h uint32, key string) (*Record, bool) {
	if g.cache == nil {
		return nil, false
	}
	s := &g.cache[h%gridStripes]
	s.mu.Lock()
	rec, ok := s.lru.Get(key)
	s.mu.Unlock()
	if ok {
		g.stats.CacheHits.Inc()
	} else {
		g.stats.CacheMisses.Inc()
	}
	return rec, ok
}

func (g *Grid) cachePut(h uint32, key string, rec *Record) {
	if g.cache == nil {
		return
	}
	s := &g.cache[h%gridStripes]
	s.mu.Lock()
	// Clone: the key may be a transient buffer the caller reuses (the
	// benchmark drivers do), and the LRU retains it.
	s.lru.Put(strings.Clone(key), rec)
	s.mu.Unlock()
}

func (g *Grid) cacheDrop(h uint32, key string) {
	if g.cache == nil {
		return
	}
	s := &g.cache[h%gridStripes]
	s.mu.Lock()
	s.lru.Remove(key)
	s.mu.Unlock()
}

// cachePatch applies a successful backend field update to the cached
// record, if present. Both Update and ReadModifyWrite go through here —
// the two used to hand-roll this block and drifted once already — so the
// write-through patch semantics (deep-copied values over the cached
// record) live in exactly one place.
func (g *Grid) cachePatch(h uint32, key string, fields []Field) {
	if g.cache == nil {
		return
	}
	s := &g.cache[h%gridStripes]
	s.mu.Lock()
	if rec, ok := s.lru.Get(key); ok {
		for _, f := range fields {
			rec.Set(f.Name, append([]byte(nil), f.Value...))
		}
	}
	s.mu.Unlock()
}

// ErrNotFound is returned for operations on absent keys.
var ErrNotFound = fmt.Errorf("store: key not found")

// Insert stores a new record (write-through: backend first, then cache).
func (g *Grid) Insert(key string, rec *Record) error {
	start := time.Now()
	defer func() { g.stats.Insert.Observe(time.Since(start)) }()
	if g.lockFree {
		return g.backend.Insert(key, rec)
	}
	h := fnv32(key)
	mu := g.lockWrite(h)
	defer g.unlockWrite(h, mu)
	if err := g.backend.Insert(key, rec); err != nil {
		return err
	}
	if g.cache != nil {
		// Clone: the caller keeps rec and may mutate it after Insert
		// returns; Clone also copies field values into fresh slices.
		g.cachePut(h, key, rec.Clone())
	}
	return nil
}

// Read streams the record's fields to consume, from the cache when
// possible. With a capable backend and no cache it first tries the
// unlocked zero-copy path: field views straight out of NVMM, validated
// against the stripe's seqlock generation so the consumer never sees a
// snapshot a writer overlapped. A generation race retries once; a second
// race or an unsupported record shape falls back to the stripe lock.
func (g *Grid) Read(key string, consume func(name string, value []byte)) error {
	start := time.Now()
	defer func() { g.stats.Read.Observe(time.Since(start)) }()
	if g.lockFree {
		found, err := g.backend.Read(key, consume)
		if err != nil {
			return err
		}
		if !found {
			return ErrNotFound
		}
		return nil
	}
	h := fnv32(key)
	if g.vr != nil {
		gen := &g.gens[h%gridStripes].v
		for try := 0; try < 2; try++ {
			g1 := gen.Load()
			if g1&1 != 0 {
				break // writer mid-flight on this stripe
			}
			found, valid, ok := g.vr.ReadView(key, h, gen, g1, consume)
			if !ok {
				break
			}
			if !valid {
				g.stats.ReadPath.SeqlockRetries.Inc()
				continue
			}
			g.stats.ReadPath.ZeroCopyHits.Inc()
			if !found {
				return ErrNotFound
			}
			return nil
		}
		g.stats.ReadPath.CopyFallbacks.Inc()
	}
	mu := g.stripe(h)
	mu.Lock()
	defer mu.Unlock()
	if rec, ok := g.cacheGet(h, key); ok {
		for _, f := range rec.Fields {
			consume(f.Name, f.Value)
		}
		return nil
	}
	var filled *Record
	if g.cache != nil {
		filled = &Record{}
	}
	ok, err := g.backend.Read(key, func(name string, value []byte) {
		consume(name, value)
		if filled != nil {
			// Deep-copy before caching. J-NVM backends stream zero-copy
			// views into NVMM (pRecord.read) — for the value bytes and
			// the name string alike — and caching a view aliases memory
			// that a later Update/Delete frees and the allocator
			// recycles, silently corrupting the cached record. The
			// copies are confined to the caching path, so non-caching
			// grids keep the zero-copy read.
			filled.Fields = append(filled.Fields,
				Field{Name: strings.Clone(name), Value: append([]byte(nil), value...)})
		}
	})
	if err != nil {
		return err
	}
	if !ok {
		return ErrNotFound
	}
	if filled != nil {
		g.cachePut(h, key, filled)
	}
	return nil
}

// Update overwrites fields write-through (backend in the critical path,
// which is why larger caches do not help updates in Figure 9a).
func (g *Grid) Update(key string, fields []Field) error {
	start := time.Now()
	defer func() { g.stats.Update.Observe(time.Since(start)) }()
	if g.lockFree {
		ok, err := g.backend.Update(key, fields)
		if err != nil {
			return err
		}
		if !ok {
			return ErrNotFound
		}
		return nil
	}
	h := fnv32(key)
	mu := g.lockWrite(h)
	defer g.unlockWrite(h, mu)
	ok, err := g.backend.Update(key, fields)
	if err != nil {
		// The backend may have applied part of the update; drop the
		// cached record rather than serve a stale mix.
		g.cacheDrop(h, key)
		return err
	}
	if !ok {
		return ErrNotFound
	}
	g.cachePatch(h, key, fields)
	return nil
}

// ReadModifyWrite runs YCSB's rmw: read all fields, then write back the
// fields produced by mutate, under the key's lock.
func (g *Grid) ReadModifyWrite(key string, mutate func(rec *Record) []Field) error {
	start := time.Now()
	defer func() { g.stats.RMW.Observe(time.Since(start)) }()
	h := fnv32(key)
	mu := g.lockWrite(h)
	defer g.unlockWrite(h, mu)
	var rec *Record
	if cached, ok := g.cacheGet(h, key); ok {
		rec = cached.Clone()
	} else {
		rec = &Record{}
		ok, err := g.backend.Read(key, func(name string, value []byte) {
			// Deep-copy: rec outlives the backend call (mutate sees it and
			// a clone goes into the cache), so it must not alias NVMM views
			// — neither the value bytes nor the name string.
			rec.Fields = append(rec.Fields,
				Field{Name: strings.Clone(name), Value: append([]byte(nil), value...)})
		})
		if err != nil {
			return err
		}
		if !ok {
			return ErrNotFound
		}
		if g.cache != nil {
			g.cachePut(h, key, rec.Clone())
		}
	}
	fields := mutate(rec)
	if len(fields) == 0 {
		return nil
	}
	ok, err := g.backend.Update(key, fields)
	if err != nil {
		g.cacheDrop(h, key)
		return err
	}
	if !ok {
		return ErrNotFound
	}
	g.cachePatch(h, key, fields)
	return nil
}

// Delete removes the record everywhere.
func (g *Grid) Delete(key string) error {
	start := time.Now()
	defer func() { g.stats.Delete.Observe(time.Since(start)) }()
	if g.lockFree {
		ok, err := g.backend.Delete(key)
		if err != nil {
			return err
		}
		if !ok {
			return ErrNotFound
		}
		return nil
	}
	h := fnv32(key)
	mu := g.lockWrite(h)
	defer g.unlockWrite(h, mu)
	ok, err := g.backend.Delete(key)
	if err != nil {
		return err
	}
	g.cacheDrop(h, key)
	if !ok {
		return ErrNotFound
	}
	return nil
}

// Count returns the number of stored records.
func (g *Grid) Count() int { return g.backend.Count() }

// Close releases backend resources.
func (g *Grid) Close() error { return g.backend.Close() }
