package store

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"

	"repro/internal/fa"
	"repro/internal/nvm"
)

func counterRecord(v int64) *Record {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	return &Record{Fields: []Field{
		{Name: "score", Value: append([]byte(nil), buf[:]...)},
		{Name: "tag", Value: []byte("leaderboard-entry")},
	}}
}

func readCounter(t *testing.T, g *Grid, key, field string) int64 {
	t.Helper()
	var got []byte
	if err := g.Read(key, func(name string, value []byte) {
		if name == field {
			got = append([]byte(nil), value...)
		}
	}); err != nil {
		t.Fatalf("read %s: %v", key, err)
	}
	if len(got) != 8 {
		t.Fatalf("field %s: %d bytes, want 8", field, len(got))
	}
	return int64(binary.LittleEndian.Uint64(got))
}

// TestGridAddDeltaAsyncFolds is the end-to-end tentpole check: zipfian
// increments through Grid.AddDelta fold in the ledger, a read observes
// every acknowledged increment, and the epoch cost is one materialized
// entry per hot key, not one per op.
func TestGridAddDeltaAsyncFolds(t *testing.T) {
	h, mgr, _ := openStoreHeap(t, 1<<23, false)
	b, err := NewJPFABackend(h, mgr, "kv")
	if err != nil {
		t.Fatal(err)
	}
	g := NewGrid(b, Options{})
	if err := g.Insert("hot", counterRecord(100)); err != nil {
		t.Fatal(err)
	}
	if err := mgr.SetGroupCommit(fa.GroupOptions{Mode: fa.CommitAsync, ManualDrain: true}); err != nil {
		t.Fatal(err)
	}
	// First delta upgrades the pooled value to a block-resident counter.
	if err := g.AddDelta("hot", "score", 1); err != nil {
		t.Fatal(err)
	}
	snapBefore := mgr.ObsSnapshot()
	const n = 40
	for i := 0; i < n; i++ {
		if err := g.AddDelta("hot", "score", 2); err != nil {
			t.Fatal(err)
		}
	}
	// Read before any explicit drain: must see all acknowledged deltas.
	if v := readCounter(t, g, "hot", "score"); v != 100+1+2*n {
		t.Fatalf("score = %d, want %d", v, 100+1+2*n)
	}
	snap := mgr.ObsSnapshot().Sub(snapBefore)
	if snap.DeltaOps != n {
		t.Fatalf("delta ops = %d, want %d", snap.DeltaOps, n)
	}
	if snap.DeltaEntries != 1 {
		t.Fatalf("materialized entries = %d, want 1 (folded)", snap.DeltaEntries)
	}
	// The other field is untouched.
	var tag []byte
	if err := g.Read("hot", func(name string, value []byte) {
		if name == "tag" {
			tag = append([]byte(nil), value...)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if string(tag) != "leaderboard-entry" {
		t.Fatalf("tag = %q, corrupted by folds", tag)
	}
	mgr.DrainDurable()
}

// TestGridAddDeltaPerTxFallback: outside async mode the same API works
// through the transactional slow path.
func TestGridAddDeltaPerTxFallback(t *testing.T) {
	h, mgr, _ := openStoreHeap(t, 1<<23, false)
	b, err := NewJPFABackend(h, mgr, "kv")
	if err != nil {
		t.Fatal(err)
	}
	g := NewGrid(b, Options{})
	if err := g.Insert("k", counterRecord(-5)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := g.AddDelta("k", "score", 4); err != nil {
			t.Fatal(err)
		}
	}
	if v := readCounter(t, g, "k", "score"); v != 7 {
		t.Fatalf("score = %d, want 7", v)
	}
	if err := g.AddDelta("missing", "score", 1); err != ErrNotFound {
		t.Fatalf("missing key err = %v, want ErrNotFound", err)
	}
	if err := g.AddDelta("k", "nosuch", 1); err == nil {
		t.Fatal("missing field accepted")
	}
	if err := g.AddDelta("k", "tag", 1); err == nil {
		t.Fatal("non-counter field accepted")
	}
}

// TestGridAddDeltaGenericBackend: a backend without the DeltaAdder
// capability gets the read-modify-write fallback (here J-PDT), including
// the cache-patch path.
func TestGridAddDeltaGenericBackend(t *testing.T) {
	h, _, _ := openStoreHeap(t, 1<<23, false)
	b, err := NewJPDTBackend(h, "kv")
	if err != nil {
		t.Fatal(err)
	}
	g := NewGrid(b, Options{CacheEntries: 64})
	if err := g.Insert("k", counterRecord(10)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := g.AddDelta("k", "score", -2); err != nil {
			t.Fatal(err)
		}
	}
	if v := readCounter(t, g, "k", "score"); v != 0 {
		t.Fatalf("score = %d, want 0", v)
	}
}

// TestGridAddDeltaConcurrent races folds, updates and reads on a small
// hot set under async mode; the final counters must be exact sums. Run
// under -race in CI.
func TestGridAddDeltaConcurrent(t *testing.T) {
	h, mgr, _ := openStoreHeap(t, 1<<23, false)
	b, err := NewJPFABackend(h, mgr, "kv")
	if err != nil {
		t.Fatal(err)
	}
	g := NewGrid(b, Options{})
	const nkeys = 4
	for i := 0; i < nkeys; i++ {
		if err := g.Insert(fmt.Sprintf("k%d", i), counterRecord(0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := mgr.SetGroupCommit(fa.GroupOptions{Mode: fa.CommitAsync, BatchTarget: 4}); err != nil {
		t.Fatal(err)
	}
	const workers = 4
	const perWorker = 150
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := fmt.Sprintf("k%d", (w+i)%nkeys)
				if i%10 == 9 {
					// Interleave reads: must never see a torn counter.
					var got []byte
					if err := g.Read(key, func(name string, value []byte) {
						if name == "score" {
							got = append([]byte(nil), value...)
						}
					}); err != nil {
						t.Error(err)
						return
					}
					if len(got) != 8 {
						t.Errorf("torn counter: %d bytes", len(got))
						return
					}
				} else if err := g.AddDelta(key, "score", 1); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	mgr.DrainDurable()
	var total int64
	for i := 0; i < nkeys; i++ {
		total += readCounter(t, g, fmt.Sprintf("k%d", i), "score")
	}
	want := int64(workers * (perWorker - perWorker/10))
	if total != want {
		t.Fatalf("sum = %d, want %d", total, want)
	}
}

// TestGridAddDeltaCrashRecovers: acknowledged-and-drained deltas survive
// a crash; the recovered counter equals the folded sum.
func TestGridAddDeltaCrashRecovers(t *testing.T) {
	h, mgr, pool := openStoreHeap(t, 1<<23, true)
	b, err := NewJPFABackend(h, mgr, "kv")
	if err != nil {
		t.Fatal(err)
	}
	g := NewGrid(b, Options{})
	if err := g.Insert("k", counterRecord(1000)); err != nil {
		t.Fatal(err)
	}
	if err := mgr.SetGroupCommit(fa.GroupOptions{Mode: fa.CommitAsync, ManualDrain: true}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if err := g.AddDelta("k", "score", 10); err != nil {
			t.Fatal(err)
		}
	}
	mgr.DrainDurable()
	img := pool.CrashImage(nvm.CrashAll, nil)
	h2, mgr2, _ := reopenStoreHeap(t, img)
	b2, err := NewJPFABackend(h2, mgr2, "kv")
	if err != nil {
		t.Fatal(err)
	}
	g2 := NewGrid(b2, Options{})
	if v := readCounter(t, g2, "k", "score"); v != 1250 {
		t.Fatalf("recovered score = %d, want 1250", v)
	}
}
