package store

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// versionRecord builds a record whose every field value encodes version v
// redundantly: 32 bytes, all equal to the version's low byte. A torn read
// — bytes from two versions in one value, or fields from two versions in
// one record — is detectable (the single sequential writer never has two
// in-flight versions 256 apart).
func versionRecord(fields, v int) *Record {
	rec := &Record{}
	for i := 0; i < fields; i++ {
		rec.Fields = append(rec.Fields, Field{Name: fmt.Sprintf("field%d", i), Value: versionValue(v)})
	}
	return rec
}

func versionValue(v int) []byte {
	val := make([]byte, 32)
	for j := range val {
		val[j] = byte(v)
	}
	return val
}

// decodeVersion checks one value for internal consistency and returns its
// version byte.
func decodeVersion(t *testing.T, key string, val []byte) byte {
	if len(val) != 32 {
		t.Errorf("%s: value length %d", key, len(val))
		return 0
	}
	tag := val[0]
	for j, b := range val {
		if b != tag {
			t.Errorf("%s: torn value: byte %d is %d, head is %d", key, j, b, tag)
			return tag
		}
	}
	return tag
}

// TestGridZeroCopyReadNeverTorn is the seqlock regression test
// (DESIGN.md §14): with the zero-copy read path active (J-PDT backend, no
// record cache), concurrent readers must observe every record as a whole
// — all fields from one version, every value internally consistent —
// while writers update all fields, delete/re-insert records (forcing
// block reuse through the allocator), and churn unrelated keys.
func TestGridZeroCopyReadNeverTorn(t *testing.T) {
	h, _, _ := openStoreHeap(t, 1<<26, false)
	b, err := NewJPDTBackend(h, "kv")
	if err != nil {
		t.Fatal(err)
	}
	g := NewGrid(b, Options{})
	if g.vr == nil {
		t.Fatal("zero-copy read path not adopted")
	}
	const (
		fields  = 5
		keys    = 8
		rounds  = 400
		readers = 4
	)
	for i := 0; i < keys; i++ {
		if err := g.Insert(fmt.Sprintf("key%d", i), versionRecord(fields, 0)); err != nil {
			t.Fatal(err)
		}
	}
	var stop atomic.Bool
	var wg sync.WaitGroup

	// Updater: bumps every field of every key in one Update per round, so
	// any mixed-version read is a real atomicity violation.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for v := 1; v <= rounds; v++ {
			for i := 0; i < keys; i++ {
				rec := versionRecord(fields, v)
				if err := g.Update(fmt.Sprintf("key%d", i), rec.Fields); err != nil {
					t.Errorf("update v%d: %v", v, err)
					return
				}
			}
		}
	}()

	// Churner: deletes and re-inserts an unrelated key so freed value
	// blocks flow back through the allocator and get recycled while
	// readers hold views.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			key := fmt.Sprintf("churn%d", i%4)
			if err := g.Insert(key, versionRecord(fields, i)); err != nil {
				t.Errorf("churn insert: %v", err)
				return
			}
			if err := g.Delete(key); err != nil {
				t.Errorf("churn delete: %v", err)
				return
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			// Minimum iteration count: the writer may finish before the
			// readers are scheduled, and the fast path must still be
			// exercised.
			for it := 0; it < 2000 || !stop.Load(); it++ {
				key := fmt.Sprintf("key%d", rng.Intn(keys))
				var versions []byte
				err := g.Read(key, func(name string, val []byte) {
					versions = append(versions, decodeVersion(t, key, val))
				})
				if err != nil {
					t.Errorf("read %s: %v", key, err)
					return
				}
				if len(versions) != fields {
					t.Errorf("%s: %d fields streamed", key, len(versions))
					return
				}
				for _, v := range versions[1:] {
					if v != versions[0] {
						t.Errorf("%s: mixed-version record: %v", key, versions)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()

	snap := g.ObsSnapshot()
	t.Logf("zero-copy=%d fallbacks=%d retries=%d", snap.ZeroCopyHits, snap.CopyFallbacks, snap.SeqlockRetries)
	if snap.ZeroCopyHits == 0 {
		t.Error("zero-copy fast path never taken under contention")
	}
}

// TestGridZeroCopyDeleteRace drives readers against delete/re-insert of
// the same key: a read must cleanly return the record or ErrNotFound,
// never an error or a partial record.
func TestGridZeroCopyDeleteRace(t *testing.T) {
	h, _, _ := openStoreHeap(t, 1<<26, false)
	b, err := NewJPDTBackend(h, "kv")
	if err != nil {
		t.Fatal(err)
	}
	g := NewGrid(b, Options{})
	const fields = 4
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for v := 0; v < 500; v++ {
			if err := g.Insert("flick", versionRecord(fields, v)); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
			if err := g.Delete("flick"); err != nil {
				t.Errorf("delete: %v", err)
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				n := 0
				err := g.Read("flick", func(name string, val []byte) {
					decodeVersion(t, "flick", val)
					n++
				})
				switch err {
				case nil:
					if n != fields {
						t.Errorf("partial record: %d fields", n)
						return
					}
				case ErrNotFound:
				default:
					t.Errorf("read: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestReadViewMatchesLockedRead cross-checks the two read paths on the
// same records, including shapes the view reader must refuse (chained
// values) and a record with many fields.
func TestReadViewMatchesLockedRead(t *testing.T) {
	h, _, _ := openStoreHeap(t, 1<<26, false)
	b, err := NewJPDTBackend(h, "kv")
	if err != nil {
		t.Fatal(err)
	}
	g := NewGrid(b, Options{})
	shapes := map[string]*Record{
		"small":   testRecord(3, "s"),                                     // pooled values
		"block":   {Fields: []Field{{Name: "f", Value: versionValue(7)}}}, // single value
		"chained": {Fields: []Field{{Name: "big", Value: make([]byte, 600)}}},
		"empty":   {Fields: []Field{{Name: "z", Value: nil}}},
	}
	for key, rec := range shapes {
		if err := g.Insert(key, rec); err != nil {
			t.Fatalf("insert %s: %v", key, err)
		}
	}
	for key, want := range shapes {
		got := &Record{}
		err := g.Read(key, func(name string, val []byte) {
			got.Fields = append(got.Fields, Field{
				Name:  string(append([]byte(nil), name...)),
				Value: append([]byte(nil), val...),
			})
		})
		if err != nil {
			t.Fatalf("read %s: %v", key, err)
		}
		if len(got.Fields) != len(want.Fields) {
			t.Fatalf("%s: %d fields, want %d", key, len(got.Fields), len(want.Fields))
		}
		for i := range want.Fields {
			if got.Fields[i].Name != want.Fields[i].Name {
				t.Fatalf("%s field %d name %q", key, i, got.Fields[i].Name)
			}
			if string(got.Fields[i].Value) != string(want.Fields[i].Value) {
				t.Fatalf("%s field %d value mismatch", key, i)
			}
		}
	}
	snap := g.ObsSnapshot()
	if snap.ZeroCopyHits == 0 || snap.CopyFallbacks == 0 {
		t.Fatalf("expected both paths exercised: zc=%d fb=%d", snap.ZeroCopyHits, snap.CopyFallbacks)
	}
}
