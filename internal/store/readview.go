package store

import (
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/obs"
	"repro/internal/pdt"
)

// ViewReader is the optional backend capability behind the grid's
// zero-copy read fast path (DESIGN.md §14). A capable backend serves a
// read without taking the grid's stripe lock: it pins an epoch-based-
// reclamation reader slot (so no object it dereferences is recycled
// mid-read), collects every field as a view straight into NVMM, and only
// delivers the views to the consumer after the grid's seqlock generation
// check proves no writer overlapped the collection. Only J-PDT implements
// it — J-PFA reads share its map, but the paper's comparison keeps each
// backend's read path its own.
type ViewReader interface {
	// EnableViewReads prepares the backend for unlocked readers: it
	// switches the heap to deferred (epoch-based) reclamation and wires
	// the read-path counters. The grid calls it once, before traffic.
	EnableViewReads(rs *obs.ReadStats)

	// ReadView reads the record under an EBR pin, with hint spreading
	// readers across pin slots. gen/g1 are the caller's seqlock stripe
	// and its pre-read generation: the backend re-checks the generation
	// after collecting the field views and before invoking consume, so
	// the consumer only ever observes a write-free snapshot.
	//
	// valid=false reports a generation change (caller retries);
	// ok=false reports a record shape the unlocked reader cannot handle
	// (caller falls back to the locked path). Field names and values
	// passed to consume are views into NVMM, valid only during the call.
	ReadView(key string, hint uint32, gen *atomic.Uint64, g1 uint64,
		consume func(name string, value []byte)) (found, valid, ok bool)
}

// fieldView is one collected field: name and value bytes in NVMM.
type fieldView struct{ name, value []byte }

// viewScratchPool recycles the per-read field-view buffers so the hot
// read loop stays allocation-free.
var viewScratchPool = sync.Pool{
	New: func() any {
		s := make([]fieldView, 0, 16)
		return &s
	},
}

// appendRecordViews collects the record's fields as NVMM views into out.
// It mirrors pRecord.read but is race-tolerant: the caller holds an EBR
// pin (memory stability) rather than the stripe lock (quiescence), so
// every reference word is loaded atomically and anything the unlocked
// reader cannot prove safe — a chained record or blob, a misaligned
// field table — returns ok=false for the locked path to handle.
func appendRecordViews(h *core.Heap, ref core.Ref, out []fieldView) ([]fieldView, bool) {
	mem := h.Mem()
	pool := h.Pool()
	if !mem.IsBlockRef(ref) {
		return out, false // records are block objects; anything else is foreign
	}
	data := ref + heap.HeaderSize
	if data%8 != 0 {
		return out, false // field words would not be atomically loadable
	}
	if _, valid, next := heap.UnpackHeader(mem.Header(ref)); !valid || next != 0 {
		return out, false
	}
	n := int(pool.ReadUint32(data + recCount))
	if recFields+uint64(n)*16 > heap.Payload {
		return out, false // count claims more fields than one block holds
	}
	for i := 0; i < n; i++ {
		nref := pool.ReadUint64Atomic(data + fieldNameOff(i))
		vref := pool.ReadUint64Atomic(data + fieldValOff(i))
		if nref == 0 || vref == 0 {
			continue // recovery-nullified field; the rest stays readable
		}
		nb, nok := pdt.BlobView(h, nref)
		vb, vok := pdt.BlobView(h, vref)
		if !nok || !vok {
			return out, false
		}
		out = append(out, fieldView{name: nb, value: vb})
	}
	return out, true
}

// viewString reinterprets a collected name view as a string without
// copying. The string aliases NVMM and is valid only while the EBR pin
// holds, i.e. for the duration of the consume call.
func viewString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// EnableViewReads implements ViewReader.
func (b *JPDTBackend) EnableViewReads(rs *obs.ReadStats) {
	b.h.Mem().EnableEBR()
	b.m.SetReadObs(rs)
}

// ReadView implements ViewReader.
func (b *JPDTBackend) ReadView(key string, hint uint32, gen *atomic.Uint64, g1 uint64,
	consume func(name string, value []byte)) (found, valid, ok bool) {
	mem := b.h.Mem()
	slot := mem.PinReader(hint)
	ref := b.m.GetRef(key)
	if ref == 0 {
		// Absent — still validate: a concurrent insert may have landed
		// between the caller's generation load and the map lookup.
		mem.UnpinReader(slot)
		return false, gen.Load() == g1, true
	}
	sp := viewScratchPool.Get().(*[]fieldView)
	fields, rok := appendRecordViews(b.h, ref, (*sp)[:0])
	*sp = fields[:0]
	if !rok {
		mem.UnpinReader(slot)
		viewScratchPool.Put(sp)
		return true, true, false
	}
	if gen.Load() != g1 {
		mem.UnpinReader(slot)
		viewScratchPool.Put(sp)
		return true, false, true
	}
	// The snapshot is write-free and, under the pin, every view is
	// immutable: deliver.
	for i := range fields {
		consume(viewString(fields[i].name), fields[i].value)
	}
	mem.UnpinReader(slot)
	viewScratchPool.Put(sp)
	return true, true, true
}
