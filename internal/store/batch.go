package store

import "strings"

// BatchOpKind enumerates the grid operations a batch can carry.
type BatchOpKind uint8

// Batch operation kinds.
const (
	BatchInsert BatchOpKind = iota
	BatchRead
	BatchUpdate
	BatchDelete
	BatchRMW
	BatchAddDelta
)

// BatchOp is one operation of a batch. Fields carries the payload of
// Insert/Update/RMW (RMW overwrites exactly the given fields under the
// key's lock, the YCSB read-modify-write shape); Field/Delta carry the
// AddDelta counter increment.
type BatchOp struct {
	Kind   BatchOpKind
	Key    string
	Fields []Field
	Field  string
	Delta  int64
}

// BatchResult is the outcome of one batch operation. Read results are
// deep copies: unlike the streaming Read, a batch result outlives the
// backend call (the wire server encodes it after the whole batch ran),
// so it must not alias NVMM views.
type BatchResult struct {
	Err    error
	Fields []Field
}

// ApplyBatch executes ops in order, one result per op, and is the
// network server's entry point (DESIGN.md §18): a pipeline window
// arrives as one batch, and under the async commit pipeline the caller
// fences the whole window once instead of per op.
//
// Concurrency: per-key reads, updates and RMWs ride the grid's stripe
// locks exactly like the direct methods. Inserts and deletes additionally
// serialize on a grid-wide mutex when the backend is not internally
// linearizable — structural map operations touch shared slot blocks that
// the stripe locks do not cover, which is why the embedded benchmarks
// load single-threaded; a server fed by concurrent connections cannot.
func (g *Grid) ApplyBatch(ops []BatchOp, res []BatchResult) {
	for i := range ops {
		op := &ops[i]
		r := &res[i]
		r.Err, r.Fields = nil, nil
		switch op.Kind {
		case BatchInsert:
			rec := &Record{Fields: op.Fields}
			if g.lockFree {
				r.Err = g.Insert(op.Key, rec)
				break
			}
			g.structMu.Lock()
			r.Err = g.Insert(op.Key, rec)
			g.structMu.Unlock()
		case BatchRead:
			r.Err = g.Read(op.Key, func(name string, value []byte) {
				r.Fields = append(r.Fields,
					Field{Name: strings.Clone(name), Value: append([]byte(nil), value...)})
			})
		case BatchUpdate:
			r.Err = g.Update(op.Key, op.Fields)
		case BatchDelete:
			if g.lockFree {
				r.Err = g.Delete(op.Key)
				break
			}
			g.structMu.Lock()
			r.Err = g.Delete(op.Key)
			g.structMu.Unlock()
		case BatchRMW:
			fields := op.Fields
			r.Err = g.ReadModifyWrite(op.Key, func(*Record) []Field { return fields })
		case BatchAddDelta:
			r.Err = g.AddDelta(op.Key, op.Field, op.Delta)
		default:
			r.Err = ErrNotFound
		}
	}
}
