package store

import (
	"repro/internal/core"
	"repro/internal/fa"
	"repro/internal/pdt"
)

// ClassRecord is the persistent record class of the J-NVM backends: a
// table of (name, value) object references, so that a single field update
// is one new immutable value plus one atomic reference swing (§4.1.6) —
// never a whole-record rewrite, and never any marshalling.
//
// Layout: nfields (4) | pad (4) | per field: nameRef (8) | valRef (8).
const ClassRecord = "store.record"

type pRecord struct{ *core.Object }

const (
	recCount  = 0
	recFields = 8
)

func fieldNameOff(i int) uint64 { return recFields + uint64(i)*16 }
func fieldValOff(i int) uint64  { return recFields + uint64(i)*16 + 8 }

// Classes returns the store's persistent class descriptors; register them
// together with pdt.Classes().
func Classes() []*core.Class {
	return []*core.Class{
		{
			Name:    ClassRecord,
			Factory: func(o *core.Object) core.PObject { return &pRecord{Object: o} },
			Refs: func(o *core.Object) []uint64 {
				n := int(o.ReadUint32(recCount))
				offs := make([]uint64, 0, 2*n)
				for i := 0; i < n; i++ {
					offs = append(offs, fieldNameOff(i), fieldValOff(i))
				}
				return offs
			},
		},
	}
}

func (r *pRecord) fieldCount() int { return int(r.ReadUint32(recCount)) }

// fieldIndex locates a field by name, comparing names in place in NVMM
// without allocating (hot path of every field update).
func (r *pRecord) fieldIndex(h *core.Heap, name string) int {
	n := r.fieldCount()
	for i := 0; i < n; i++ {
		nref := r.ReadRef(fieldNameOff(i))
		if nref == 0 {
			continue
		}
		if pdt.BlobEquals(h, nref, name) {
			return i
		}
	}
	return -1
}

// newPRecord builds an invalid record object with all field objects
// allocated and flushed, ready for validation + publication.
func newPRecord(h *core.Heap, rec *Record) (*pRecord, []core.PObject, error) {
	po, err := h.Alloc(mustClass(h, ClassRecord), recFields+uint64(len(rec.Fields))*16)
	if err != nil {
		return nil, nil, err
	}
	r := po.(*pRecord)
	r.WriteUint32(recCount, uint32(len(rec.Fields)))
	children := make([]core.PObject, 0, 2*len(rec.Fields))
	for i, f := range rec.Fields {
		ns, err := pdt.NewString(h, f.Name)
		if err != nil {
			return nil, nil, err
		}
		vb, err := pdt.NewBytes(h, f.Value)
		if err != nil {
			return nil, nil, err
		}
		r.WriteRef(fieldNameOff(i), ns.Ref())
		r.WriteRef(fieldValOff(i), vb.Ref())
		children = append(children, ns, vb)
	}
	r.PWB()
	return r, children, nil
}

// newPRecordValid builds a born-valid record: the record and every field
// object are written, validity-marked unfenced and flushed, ready to ride
// a single downstream ordering point (the lock-free map insert's fence,
// DESIGN.md §16). No per-object Validate/fence pairs.
func newPRecordValid(h *core.Heap, rec *Record) (*pRecord, error) {
	po, err := h.Alloc(mustClass(h, ClassRecord), recFields+uint64(len(rec.Fields))*16)
	if err != nil {
		return nil, err
	}
	r := po.(*pRecord)
	r.WriteUint32(recCount, uint32(len(rec.Fields)))
	for i, f := range rec.Fields {
		ns, err := pdt.NewStringValid(h, f.Name)
		if err != nil {
			return nil, err
		}
		vb, err := pdt.NewBytesValid(h, f.Value)
		if err != nil {
			return nil, err
		}
		r.WriteRef(fieldNameOff(i), ns.Ref())
		r.WriteRef(fieldValOff(i), vb.Ref())
	}
	r.ValidateDeferred()
	r.PWB()
	return r, nil
}

// newPRecordTx is the failure-atomic flavor: everything is allocated in
// the block and validated only at commit.
func newPRecordTx(tx *fa.Tx, rec *Record) (*pRecord, error) {
	h := tx.Heap()
	po, err := tx.Alloc(mustClass(h, ClassRecord), recFields+uint64(len(rec.Fields))*16)
	if err != nil {
		return nil, err
	}
	r := po.(*pRecord)
	r.WriteUint32(recCount, uint32(len(rec.Fields)))
	for i, f := range rec.Fields {
		ns, err := pdt.NewStringTx(tx, f.Name)
		if err != nil {
			return nil, err
		}
		vb, err := pdt.NewBytesTx(tx, f.Value)
		if err != nil {
			return nil, err
		}
		r.WriteRef(fieldNameOff(i), ns.Ref())
		r.WriteRef(fieldValOff(i), vb.Ref())
	}
	return r, nil
}

// read streams every field to consume without any marshalling step (the
// decisive J-NVM advantage of Figure 8). Names and values are zero-copy
// views into NVMM, valid only during the consume call: the grid invokes
// this under the key's stripe lock, so the object cannot be freed
// concurrently, and consumers that retain a field must copy it.
func (r *pRecord) read(h *core.Heap, consume func(name string, value []byte)) {
	n := r.fieldCount()
	for i := 0; i < n; i++ {
		nref := r.ReadRef(fieldNameOff(i))
		vref := r.ReadRef(fieldValOff(i))
		if nref == 0 || vref == 0 {
			// The recovery GC nullified a field torn by a crash that
			// raced the record's publication; the rest of the record is
			// intact and stays readable.
			continue
		}
		consume(viewString(pdt.ReadBlobView(h, nref)), pdt.ReadBlobView(h, vref))
	}
}

// freeChildren frees every name and value object of the record (the record
// itself and the map bookkeeping are freed by the caller). No fence: the
// caller unlinked the record under a fence already (§4.1.5).
func (r *pRecord) freeChildren(h *core.Heap) {
	n := r.fieldCount()
	for i := 0; i < n; i++ {
		h.Mem().FreeObject(r.ReadRef(fieldNameOff(i)))
		h.Mem().FreeObject(r.ReadRef(fieldValOff(i)))
	}
}

func mustClass(h *core.Heap, name string) *core.Class {
	c, ok := h.Class(name)
	if !ok {
		panic("store: class " + name + " not registered; pass store.Classes() to core.Open")
	}
	return c
}
