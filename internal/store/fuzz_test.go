package store

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal hardens the record codec against hostile input: no input
// may panic, and every accepted input must round-trip.
func FuzzUnmarshal(f *testing.F) {
	f.Add([]byte{})
	f.Add(Marshal(testRecordFuzz(0)))
	f.Add(Marshal(testRecordFuzz(3)))
	f.Add(Marshal(testRecordFuzz(10)))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // huge field count
	f.Add([]byte{1, 0, 0, 0, 0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := Unmarshal(data)
		if err != nil {
			return
		}
		again, err := Unmarshal(Marshal(rec))
		if err != nil {
			t.Fatalf("re-unmarshal of accepted input failed: %v", err)
		}
		if len(again.Fields) != len(rec.Fields) {
			t.Fatalf("round trip changed field count: %d vs %d", len(again.Fields), len(rec.Fields))
		}
		for i := range rec.Fields {
			if again.Fields[i].Name != rec.Fields[i].Name ||
				!bytes.Equal(again.Fields[i].Value, rec.Fields[i].Value) {
				t.Fatalf("round trip changed field %d", i)
			}
		}
	})
}

func testRecordFuzz(n int) *Record {
	rec := &Record{}
	for i := 0; i < n; i++ {
		rec.Fields = append(rec.Fields, Field{Name: "f", Value: []byte{byte(i)}})
	}
	return rec
}
