package store

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/fa"
	"repro/internal/nvm"
	"repro/internal/pdt"
)

// JPDTBackend is the paper's fastest backend (Figure 7): records are
// persistent objects in a J-PDT map, manipulated through the low-level
// interface only — one fence per insert, one atomic reference swing per
// field update, zero marshalling.
type JPDTBackend struct {
	h *core.Heap
	m *pdt.Map
}

// NewJPDTBackend creates (or reopens) the backend's persistent map under
// the given root name.
func NewJPDTBackend(h *core.Heap, rootName string) (*JPDTBackend, error) {
	m, err := openOrCreateMap(h, rootName)
	if err != nil {
		return nil, err
	}
	return &JPDTBackend{h: h, m: m}, nil
}

func openOrCreateMap(h *core.Heap, rootName string) (*pdt.Map, error) {
	if h.Root().Exists(rootName) {
		po, err := h.Root().Get(rootName)
		if err != nil {
			return nil, err
		}
		m, ok := po.(*pdt.Map)
		if !ok {
			return nil, fmt.Errorf("store: root %q is not a pdt.Map", rootName)
		}
		return m, nil
	}
	m, err := pdt.NewMap(h, pdt.MirrorHash)
	if err != nil {
		return nil, err
	}
	if err := h.Root().Put(rootName, m); err != nil {
		return nil, err
	}
	return m, nil
}

// Name implements Backend.
func (b *JPDTBackend) Name() string { return "J-PDT" }

// Count implements Backend.
func (b *JPDTBackend) Count() int { return b.m.Len() }

// Keys implements KeyLister (sorted for deterministic migration order).
func (b *JPDTBackend) Keys() []string {
	ks := b.m.Keys()
	sort.Strings(ks)
	return ks
}

// Close implements Backend.
func (b *JPDTBackend) Close() error { return nil }

// SetProxyCache switches the underlying map's proxy-cache variant
// (base / cached / eager, §4.3.2) — the only caching J-PDT uses (§5.3.1:
// "with J-PDT, only proxies are kept in the cache").
func (b *JPDTBackend) SetProxyCache(mode pdt.CacheMode) error {
	return b.m.SetCacheMode(mode)
}

// Insert implements Backend: all field objects and the record publish
// under the map's single insert fence.
func (b *JPDTBackend) Insert(key string, rec *Record) error {
	r, children, err := newPRecord(b.h, rec)
	if err != nil {
		return err
	}
	for _, c := range children {
		c.Core().Validate()
	}
	return b.m.Put(key, r) // validates r, fences once, writes the slot
}

// Read implements Backend.
func (b *JPDTBackend) Read(key string, consume func(string, []byte)) (bool, error) {
	po, err := b.m.Get(key)
	if err != nil || po == nil {
		return false, err
	}
	po.(*pRecord).read(b.h, consume)
	return true, nil
}

// Update implements Backend: each updated field becomes a fresh immutable
// value object swung in with AtomicReplaceRef (§4.1.6), which also frees
// the previous value.
func (b *JPDTBackend) Update(key string, fields []Field) (bool, error) {
	po, err := b.m.Get(key)
	if err != nil || po == nil {
		return false, err
	}
	r := po.(*pRecord)
	for _, f := range fields {
		i := r.fieldIndex(b.h, f.Name)
		if i < 0 {
			return false, fmt.Errorf("store: record %q has no field %q", key, f.Name)
		}
		vb, err := pdt.NewBytes(b.h, f.Value)
		if err != nil {
			return false, err
		}
		r.AtomicReplaceRef(fieldValOff(i), vb)
	}
	return true, nil
}

// Delete implements Backend: the record is unlinked (one fence inside
// Remove), then the whole object graph is freed without further fences.
func (b *JPDTBackend) Delete(key string) (bool, error) {
	po, err := b.m.Remove(key)
	if err != nil || po == nil {
		return false, err
	}
	r := po.(*pRecord)
	r.freeChildren(b.h)
	b.h.Free(r)
	return true, nil
}

// JPFABackend runs every mutation inside a failure-atomic block (J-PFA).
// Same data layout as J-PDT; the difference is the redo-log protocol cost
// that Figure 7 measures (J-PDT up to 65% faster).
type JPFABackend struct {
	h   *core.Heap
	mgr *fa.Manager
	m   *pdt.Map
	// One failure-atomic block at a time per key is guaranteed by the
	// grid's lock striping; map-level FA blocks still serialize briefly
	// on slot acquisition inside the manager.
	mu sync.Mutex
}

// NewJPFABackend creates (or reopens) the backend state.
func NewJPFABackend(h *core.Heap, mgr *fa.Manager, rootName string) (*JPFABackend, error) {
	m, err := openOrCreateMap(h, rootName)
	if err != nil {
		return nil, err
	}
	return &JPFABackend{h: h, mgr: mgr, m: m}, nil
}

// Name implements Backend.
func (b *JPFABackend) Name() string { return "J-PFA" }

// Count implements Backend.
func (b *JPFABackend) Count() int { return b.m.Len() }

// Keys implements KeyLister (sorted for deterministic migration order).
func (b *JPFABackend) Keys() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	ks := b.m.Keys()
	sort.Strings(ks)
	return ks
}

// Close implements Backend.
func (b *JPFABackend) Close() error { return nil }

// Insert implements Backend.
func (b *JPFABackend) Insert(key string, rec *Record) error {
	return b.mgr.Run(func(tx *fa.Tx) error {
		r, err := newPRecordTx(tx, rec)
		if err != nil {
			return err
		}
		return b.m.PutTx(tx, key, r)
	})
}

// get resolves key through the map. In async commit mode an acknowledged
// insert may still sit in the epoch queue — its map write and mirror
// update only land at drain — so a miss drains once and retries before
// reporting not-found. That keeps read-your-acknowledged-writes for
// existence; a pending *update* of a present key stays visible as the
// pre-epoch value, the documented bounded staleness (DESIGN.md §15).
func (b *JPFABackend) get(key string) (core.PObject, error) {
	po, err := b.m.Get(key)
	if err != nil || po != nil {
		return po, err
	}
	if b.mgr.CommitMode() == fa.CommitAsync {
		b.mgr.DrainDurable()
		return b.m.Get(key)
	}
	return nil, nil
}

// Read implements Backend (reads need no block, as in the paper). Value
// blocks with a pending ledger delta are settled first, so a read after
// an acknowledged AddDelta always observes the folded word.
func (b *JPFABackend) Read(key string, consume func(string, []byte)) (bool, error) {
	po, err := b.get(key)
	if err != nil || po == nil {
		return false, err
	}
	r := po.(*pRecord)
	b.settleDeltas(r)
	r.read(b.h, consume)
	return true, nil
}

// Update implements Backend.
func (b *JPFABackend) Update(key string, fields []Field) (bool, error) {
	po, err := b.get(key)
	if err != nil || po == nil {
		return false, err
	}
	r := po.(*pRecord)
	err = b.mgr.Run(func(tx *fa.Tx) error {
		for _, f := range fields {
			i := r.fieldIndex(b.h, f.Name)
			if i < 0 {
				return fmt.Errorf("store: record %q has no field %q", key, f.Name)
			}
			vb, err := pdt.NewBytesTx(tx, f.Value)
			if err != nil {
				return err
			}
			oldRef, err := tx.ReadRef(r.Object, fieldValOff(i))
			if err != nil {
				return err
			}
			if err := tx.WriteRef(r.Object, fieldValOff(i), vb.Ref()); err != nil {
				return err
			}
			old, err := b.h.Resurrect(oldRef)
			if err != nil {
				return err
			}
			if err := tx.Free(old); err != nil {
				return err
			}
		}
		return nil
	})
	return err == nil, err
}

// Delete implements Backend.
func (b *JPFABackend) Delete(key string) (bool, error) {
	found := false
	err := b.mgr.Run(func(tx *fa.Tx) error {
		ref := b.m.GetRef(key)
		if ref == 0 && b.mgr.CommitMode() == fa.CommitAsync {
			// A queued insert of this key has not reached the mirror yet;
			// settle the epoch before concluding it does not exist.
			b.mgr.DrainDurable()
			ref = b.m.GetRef(key)
		}
		if ref == 0 {
			return nil
		}
		found = true
		po, err := b.h.Resurrect(ref)
		if err != nil {
			return err
		}
		r := po.(*pRecord)
		n := r.fieldCount()
		for i := 0; i < n; i++ {
			for _, off := range []uint64{fieldNameOff(i), fieldValOff(i)} {
				// Read the child refs through the redo view: a raw read
				// could observe a value ref a queued update epoch is about
				// to replace and free, and freeing it here again would
				// corrupt the heap. The tx read drains queued applies
				// touching the block first (fa.locate's waitClear).
				cref, err := tx.ReadRef(r.Object, off)
				if err != nil {
					return err
				}
				child, err := b.h.Resurrect(cref)
				if err != nil {
					return err
				}
				if err := tx.Free(child); err != nil {
					return err
				}
			}
		}
		_, err = b.m.DeleteTx(tx, key)
		return err
	})
	return found, err
}

// PCJBackend models Persistent Collections for Java: the same persistent
// layout accessed through a JNI gate. §5.2 attributes PCJ's slowness to
// "the Java native interface that requires heavy synchronization to call
// a native method": every NVMM access batch takes a global handshake plus
// a fixed native-call overhead, and values cross the boundary through a
// serialization step.
type PCJBackend struct {
	inner *JPDTBackend
	mu    sync.Mutex // the JVM-wide synchronization JNI entails
	// CrossingNs is the modeled cost of one JNI crossing.
	CrossingNs int
}

// DefaultJNICrossingNs is calibrated so that PCJ lands 13.8–22.7x behind
// J-PDT on YCSB (Figure 7) at the default record shape; it covers the JNI
// transition, the VM handshake and PMDK's per-accessor transactional
// bookkeeping.
const DefaultJNICrossingNs = 3200

// NewPCJBackend creates (or reopens) the backend state.
func NewPCJBackend(h *core.Heap, rootName string) (*PCJBackend, error) {
	inner, err := NewJPDTBackend(h, rootName)
	if err != nil {
		return nil, err
	}
	return &PCJBackend{inner: inner, CrossingNs: DefaultJNICrossingNs}, nil
}

// Name implements Backend.
func (b *PCJBackend) Name() string { return "PCJ" }

// Count implements Backend.
func (b *PCJBackend) Count() int { return b.inner.Count() }

// Keys implements KeyLister.
func (b *PCJBackend) Keys() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.inner.Keys()
}

// Close implements Backend.
func (b *PCJBackend) Close() error { return nil }

// cross models one JNI native call: acquire the VM handshake, pay the
// transition cost, release.
func (b *PCJBackend) cross(n int) {
	for i := 0; i < n; i++ {
		b.mu.Lock()
		nvm.SpinWait(b.CrossingNs)
		b.mu.Unlock()
	}
}

// Insert implements Backend: one crossing per field object created, plus
// a serialization pass for the value transfer.
func (b *PCJBackend) Insert(key string, rec *Record) error {
	b.cross(2*len(rec.Fields) + 1)
	buf := Marshal(rec)
	r2, err := Unmarshal(buf)
	if err != nil {
		return err
	}
	return b.inner.Insert(key, r2)
}

// Read implements Backend: one crossing per field read back across JNI.
func (b *PCJBackend) Read(key string, consume func(string, []byte)) (bool, error) {
	collected := &Record{}
	ok, err := b.inner.Read(key, func(name string, val []byte) {
		collected.Set(name, val)
	})
	if !ok || err != nil {
		return ok, err
	}
	// Each field name and value is a separate persistent object crossing
	// the JNI boundary.
	b.cross(2 * len(collected.Fields))
	rt, err := Unmarshal(Marshal(collected)) // boundary copy
	if err != nil {
		return false, err
	}
	for _, f := range rt.Fields {
		consume(f.Name, f.Value)
	}
	return true, nil
}

// Update implements Backend: PCJ updates run inside a PMDK transaction —
// begin/commit plus read-old/write-new crossings per field.
func (b *PCJBackend) Update(key string, fields []Field) (bool, error) {
	b.cross(4*len(fields) + 2)
	return b.inner.Update(key, fields)
}

// Delete implements Backend.
func (b *PCJBackend) Delete(key string) (bool, error) {
	b.cross(2)
	return b.inner.Delete(key)
}
