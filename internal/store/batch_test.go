package store

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// memBackend is a minimal map-backed Backend for batch tests.
type memBackend struct {
	mu sync.Mutex
	m  map[string][]Field
}

func newMemBackend() *memBackend { return &memBackend{m: make(map[string][]Field)} }

func (b *memBackend) Name() string { return "mem" }
func (b *memBackend) Insert(key string, rec *Record) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.m[key]; ok {
		return fmt.Errorf("mem: duplicate key %q", key)
	}
	fs := make([]Field, len(rec.Fields))
	for i, f := range rec.Fields {
		fs[i] = Field{Name: f.Name, Value: append([]byte(nil), f.Value...)}
	}
	b.m[key] = fs
	return nil
}
func (b *memBackend) Read(key string, consume func(string, []byte)) (bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	fs, ok := b.m[key]
	if !ok {
		return false, nil
	}
	for _, f := range fs {
		consume(f.Name, f.Value)
	}
	return true, nil
}
func (b *memBackend) Update(key string, fields []Field) (bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	fs, ok := b.m[key]
	if !ok {
		return false, nil
	}
	for _, nf := range fields {
		for i := range fs {
			if fs[i].Name == nf.Name {
				fs[i].Value = append([]byte(nil), nf.Value...)
			}
		}
	}
	return true, nil
}
func (b *memBackend) Delete(key string) (bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.m[key]
	delete(b.m, key)
	return ok, nil
}
func (b *memBackend) Count() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.m)
}
func (b *memBackend) Close() error { return nil }

func TestApplyBatchOrderAndResults(t *testing.T) {
	g := NewGrid(newMemBackend(), Options{})
	ops := []BatchOp{
		{Kind: BatchInsert, Key: "a", Fields: []Field{{Name: "f", Value: []byte("1")}}},
		{Kind: BatchRead, Key: "a"},
		{Kind: BatchUpdate, Key: "a", Fields: []Field{{Name: "f", Value: []byte("2")}}},
		{Kind: BatchRead, Key: "a"},
		{Kind: BatchRMW, Key: "a", Fields: []Field{{Name: "f", Value: []byte("3")}}},
		{Kind: BatchDelete, Key: "a"},
		{Kind: BatchRead, Key: "a"},
		{Kind: BatchUpdate, Key: "missing", Fields: []Field{{Name: "f", Value: []byte("x")}}},
	}
	res := make([]BatchResult, len(ops))
	g.ApplyBatch(ops, res)

	for i, wantErr := range []bool{false, false, false, false, false, false, true, true} {
		if (res[i].Err != nil) != wantErr {
			t.Fatalf("op %d: err = %v, want error %v", i, res[i].Err, wantErr)
		}
	}
	if got := string(res[1].Fields[0].Value); got != "1" {
		t.Fatalf("read after insert saw %q, want 1", got)
	}
	if got := string(res[3].Fields[0].Value); got != "2" {
		t.Fatalf("read after update saw %q, want 2", got)
	}
	if !errors.Is(res[6].Err, ErrNotFound) {
		t.Fatalf("read after delete: %v, want ErrNotFound", res[6].Err)
	}
	if !errors.Is(res[7].Err, ErrNotFound) {
		t.Fatalf("update of missing key: %v, want ErrNotFound", res[7].Err)
	}
}

// Batch read results must be deep copies: mutating the backend after the
// batch returns must not change them.
func TestApplyBatchReadCopies(t *testing.T) {
	g := NewGrid(newMemBackend(), Options{})
	ins := []BatchOp{{Kind: BatchInsert, Key: "k", Fields: []Field{{Name: "f", Value: []byte("before")}}}}
	res := make([]BatchResult, 1)
	g.ApplyBatch(ins, res)

	rd := []BatchOp{{Kind: BatchRead, Key: "k"}}
	g.ApplyBatch(rd, res)
	got := res[0].Fields

	upd := []BatchOp{{Kind: BatchUpdate, Key: "k", Fields: []Field{{Name: "f", Value: []byte("after!")}}}}
	var res2 [1]BatchResult
	g.ApplyBatch(upd, res2[:])

	if string(got[0].Value) != "before" {
		t.Fatalf("batch read result aliased backend storage: %q", got[0].Value)
	}
}

// Concurrent batches with disjoint keys: inserts and deletes serialize on
// structMu, reads and updates run under stripe locks. Run under -race.
func TestApplyBatchConcurrent(t *testing.T) {
	g := NewGrid(newMemBackend(), Options{})
	const workers = 8
	const rounds = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				key := fmt.Sprintf("w%d-%d", w, r)
				ops := []BatchOp{
					{Kind: BatchInsert, Key: key, Fields: []Field{{Name: "f", Value: []byte(key)}}},
					{Kind: BatchRead, Key: key},
					{Kind: BatchUpdate, Key: key, Fields: []Field{{Name: "f", Value: []byte("v2")}}},
					{Kind: BatchDelete, Key: key},
				}
				res := make([]BatchResult, len(ops))
				g.ApplyBatch(ops, res)
				for i, r := range res {
					if r.Err != nil {
						t.Errorf("worker %d op %d: %v", w, i, r.Err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if n := g.Count(); n != 0 {
		t.Fatalf("%d records left after delete-all", n)
	}
}
