package store

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/fa"
	"repro/internal/heap"
	"repro/internal/pdt"
)

// counterLen is the stored payload length of a foldable counter field:
// one 8-byte little-endian signed word.
const counterLen = 8

// DeltaAdder is an optional backend capability: fold a signed delta into
// an 8-byte little-endian counter field without rewriting the value
// object per op. A capable backend may defer durability to the async
// epoch pipeline (fa's delta ledger, DESIGN.md §19); the grid treats a
// successful call like an update whose new value it does not know — the
// cached record is dropped, not patched.
type DeltaAdder interface {
	AddDelta(key, field string, delta int64) (bool, error)
}

// AddDelta adds delta to the named 8-byte counter field under the key's
// stripe lock. With a capable backend in async commit mode the op folds
// into the delta ledger — one redo-log write and one line flush per hot
// key per drained epoch, however many increments landed on it. Other
// backends (and the synchronous modes) fall back to a read-modify-write
// of the single field.
func (g *Grid) AddDelta(key, field string, delta int64) error {
	start := time.Now()
	defer func() { g.stats.RMW.Observe(time.Since(start)) }()
	h := fnv32(key)
	mu := g.lockWrite(h)
	defer g.unlockWrite(h, mu)
	if da, ok := g.backend.(DeltaAdder); ok {
		found, err := da.AddDelta(key, field, delta)
		// The fold mutates the value in place behind the grid's back;
		// never serve a cached pre-fold record.
		g.cacheDrop(h, key)
		if err != nil {
			return err
		}
		if !found {
			return ErrNotFound
		}
		return nil
	}
	var cur []byte
	found, err := g.backend.Read(key, func(name string, value []byte) {
		if name == field {
			cur = append([]byte(nil), value...)
		}
	})
	if err != nil {
		return err
	}
	if !found {
		return ErrNotFound
	}
	if cur == nil {
		return fmt.Errorf("store: record %q has no field %q", key, field)
	}
	if len(cur) != counterLen {
		return fmt.Errorf("store: field %q of %q is %d bytes, not an 8-byte counter", field, key, len(cur))
	}
	binary.LittleEndian.PutUint64(cur, uint64(int64(binary.LittleEndian.Uint64(cur))+delta))
	fields := []Field{{Name: field, Value: cur}}
	ok, err := g.backend.Update(key, fields)
	if err != nil {
		g.cacheDrop(h, key)
		return err
	}
	if !ok {
		return ErrNotFound
	}
	g.cachePatch(h, key, fields)
	return nil
}

// counterBlock reports whether the value object at vref is a foldable
// counter: a mutable single-block blob whose stored length is exactly
// counterLen. Pooled slots are immutable and chained blobs span lines,
// so both take the upgrade path instead.
func counterBlock(h *core.Heap, vref core.Ref) (core.Ref, bool) {
	mem := h.Mem()
	if vref == 0 || !mem.IsBlockRef(vref) {
		return 0, false
	}
	if _, _, next := heap.UnpackHeader(mem.Header(vref)); next != 0 {
		return 0, false
	}
	if h.Pool().ReadUint32(vref+heap.HeaderSize) != counterLen {
		return 0, false
	}
	return vref, true
}

// AddDelta implements DeltaAdder. In async commit mode the hot path
// hands the delta to the manager's ledger keyed by the value block: the
// counter word lives at block-local offset HeaderSize+4 (behind the
// blob's length prefix). The first delta on a key upgrades its pooled
// immutable value into a block-resident one via the transactional slow
// path, which also folds that first delta.
func (b *JPFABackend) AddDelta(key, field string, delta int64) (bool, error) {
	if b.mgr.CommitMode() != fa.CommitAsync {
		return b.addDeltaTx(key, field, delta)
	}
	po, err := b.get(key)
	if err != nil || po == nil {
		return false, err
	}
	r := po.(*pRecord)
	i := r.fieldIndex(b.h, field)
	if i < 0 {
		return false, fmt.Errorf("store: record %q has no field %q", key, field)
	}
	// A queued update epoch may be about to swing this value ref; settle
	// the record block before trusting the raw read. The grid's stripe
	// lock excludes same-key writers from here on.
	off := fieldValOff(i)
	b.mgr.Settle(r.BlockRefs()[off/heap.Payload])
	vref := r.ReadRef(off)
	blk, ok := counterBlock(b.h, vref)
	if !ok {
		return b.addDeltaTx(key, field, delta)
	}
	if _, err := b.mgr.AddDelta(blk, heap.HeaderSize+4, delta); err != nil {
		if err == fa.ErrDeltaUnsupported { // mode switched under us
			return b.addDeltaTx(key, field, delta)
		}
		return false, err
	}
	return true, nil
}

// addDeltaTx is the transactional slow path: read-modify-write of the
// counter inside a failure-atomic block. A block-resident counter is
// updated in place through the redo log; any other shape (the pooled
// value a plain Insert created, or a wrong-sized blob) is upgraded to a
// block-resident counter carrying the summed value.
func (b *JPFABackend) addDeltaTx(key, field string, delta int64) (bool, error) {
	po, err := b.get(key)
	if err != nil || po == nil {
		return false, err
	}
	r := po.(*pRecord)
	i := r.fieldIndex(b.h, field)
	if i < 0 {
		return false, fmt.Errorf("store: record %q has no field %q", key, field)
	}
	err = b.mgr.Run(func(tx *fa.Tx) error {
		vref, err := tx.ReadRef(r.Object, fieldValOff(i))
		if err != nil {
			return err
		}
		if blk, ok := counterBlock(b.h, vref); ok {
			vo, err := b.h.Resurrect(blk)
			if err != nil {
				return err
			}
			cur, err := tx.ReadInt64(vo.Core(), 4)
			if err != nil {
				return err
			}
			return tx.WriteInt64(vo.Core(), 4, cur+delta)
		}
		old := pdt.ReadBlob(b.h, vref)
		if len(old) != counterLen {
			return fmt.Errorf("store: field %q of %q is %d bytes, not an 8-byte counter", field, key, len(old))
		}
		var buf [counterLen]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(binary.LittleEndian.Uint64(old))+delta))
		vb, err := pdt.NewBytesBlockTx(tx, buf[:])
		if err != nil {
			return err
		}
		if err := tx.WriteRef(r.Object, fieldValOff(i), vb.Ref()); err != nil {
			return err
		}
		oldPo, err := b.h.Resurrect(vref)
		if err != nil {
			return err
		}
		return tx.Free(oldPo)
	})
	return err == nil, err
}

// settleDeltas drains any pending ledger delta on the record's value
// blocks so a raw read observes every acknowledged increment
// (reads-see-acknowledged-writes). The no-deltas common case is one
// atomic load per field.
func (b *JPFABackend) settleDeltas(r *pRecord) {
	n := r.fieldCount()
	for i := 0; i < n; i++ {
		if vref := r.ReadRef(fieldValOff(i)); vref != 0 && b.mgr.DeltaPending(vref) {
			b.mgr.Settle(vref)
		}
	}
}
