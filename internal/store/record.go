// Package store implements the data-grid substrate of the evaluation: an
// embedded key-value cache in the role of Infinispan (§5.1), with a
// volatile LRU cache in front of pluggable persistence backends — J-PDT,
// J-PFA, PCJ, and the file-system family (FS, TmpFS, NullFS, Volatile).
package store

import (
	"encoding/binary"
	"fmt"
)

// Field is one named field of a record (YCSB's field0..field9).
type Field struct {
	Name  string
	Value []byte
}

// Record is the volatile representation of a stored value: an ordered
// field list, which is what the YCSB client reads and writes.
type Record struct {
	Fields []Field
}

// Get returns the value of the named field.
func (r *Record) Get(name string) ([]byte, bool) {
	for i := range r.Fields {
		if r.Fields[i].Name == name {
			return r.Fields[i].Value, true
		}
	}
	return nil, false
}

// Set replaces (or appends) the named field.
func (r *Record) Set(name string, val []byte) {
	for i := range r.Fields {
		if r.Fields[i].Name == name {
			r.Fields[i].Value = val
			return
		}
	}
	r.Fields = append(r.Fields, Field{Name: name, Value: val})
}

// Clone deep-copies the record (cache entries must not alias caller data).
func (r *Record) Clone() *Record {
	out := &Record{Fields: make([]Field, len(r.Fields))}
	for i, f := range r.Fields {
		v := make([]byte, len(f.Value))
		copy(v, f.Value)
		out.Fields[i] = Field{Name: f.Name, Value: v}
	}
	return out
}

// Size returns the payload bytes across all fields.
func (r *Record) Size() int {
	n := 0
	for _, f := range r.Fields {
		n += len(f.Value)
	}
	return n
}

// Marshal serializes a record. This is the conversion cost that dominates
// the file-system backends in Figures 7 and 8 ("the main cost comes from
// data marshalling and not from the file system itself").
//
// Wire format: u32 nfields | per field: u32 nameLen, name, u32 valLen, val.
func Marshal(r *Record) []byte {
	size := 4
	for _, f := range r.Fields {
		size += 8 + len(f.Name) + len(f.Value)
	}
	buf := make([]byte, size)
	binary.LittleEndian.PutUint32(buf, uint32(len(r.Fields)))
	off := 4
	for _, f := range r.Fields {
		binary.LittleEndian.PutUint32(buf[off:], uint32(len(f.Name)))
		off += 4
		off += copy(buf[off:], f.Name)
		binary.LittleEndian.PutUint32(buf[off:], uint32(len(f.Value)))
		off += 4
		off += copy(buf[off:], f.Value)
	}
	return buf
}

// Unmarshal deserializes a record.
func Unmarshal(buf []byte) (*Record, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("store: truncated record header")
	}
	n := binary.LittleEndian.Uint32(buf)
	// Every field needs at least 8 bytes of header, so a count larger
	// than the buffer can hold is corrupt — and must be rejected before
	// the allocation below, or a hostile 4-byte input could demand
	// gigabytes (found by FuzzUnmarshal).
	if uint64(n) > uint64(len(buf)-4)/8 {
		return nil, fmt.Errorf("store: field count %d exceeds buffer capacity", n)
	}
	// All offset arithmetic in 64 bits: 32-bit sums of attacker-controlled
	// lengths wrap around and defeat the bounds checks (found by
	// FuzzUnmarshal).
	off := uint64(4)
	size := uint64(len(buf))
	rec := &Record{Fields: make([]Field, 0, n)}
	for i := uint32(0); i < n; i++ {
		if size-off < 4 {
			return nil, fmt.Errorf("store: truncated field %d name length", i)
		}
		nl := uint64(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		if size-off < nl {
			return nil, fmt.Errorf("store: truncated field %d name", i)
		}
		name := string(buf[off : off+nl])
		off += nl
		if size-off < 4 {
			return nil, fmt.Errorf("store: truncated field %d value length", i)
		}
		vl := uint64(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		if size-off < vl {
			return nil, fmt.Errorf("store: truncated field %d value", i)
		}
		val := make([]byte, vl)
		copy(val, buf[off:off+vl])
		off += vl
		rec.Fields = append(rec.Fields, Field{Name: name, Value: val})
	}
	return rec, nil
}
