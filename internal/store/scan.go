package store

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/pdt"
)

// Scan support — an extension beyond the paper. §5.2 skips YCSB-E because
// Infinispan only exposes scans through JPQL; a J-PDT map with an ordered
// mirror (red-black tree or skip list) supports range scans directly, at
// mirror speed, with the records themselves still read straight out of
// NVMM.

// Scanner is the optional backend capability for ordered range scans.
type Scanner interface {
	// Scan visits up to limit records with key >= start in key order,
	// streaming each record's fields.
	Scan(start string, limit int, consume func(key, field string, value []byte)) error
}

// ErrNoScan is returned by Grid.Scan when the backend has no order.
var ErrNoScan = fmt.Errorf("store: backend does not support scans")

// Scan implements ordered range scans over backends that support them.
// Scans bypass the record cache (they are not per-key operations).
func (g *Grid) Scan(start string, limit int, consume func(key, field string, value []byte)) error {
	s, ok := g.backend.(Scanner)
	if !ok {
		return ErrNoScan
	}
	t0 := time.Now()
	defer func() { g.stats.Scan.Observe(time.Since(t0)) }()
	return s.Scan(start, limit, consume)
}

// NewJPDTBackendKind creates a J-PDT backend whose persistent map uses the
// chosen mirror; MirrorTree or MirrorSkip enable Scan.
func NewJPDTBackendKind(h *core.Heap, rootName string, kind pdt.MirrorKind) (*JPDTBackend, error) {
	if h.Root().Exists(rootName) {
		return NewJPDTBackend(h, rootName)
	}
	m, err := pdt.NewMap(h, kind)
	if err != nil {
		return nil, err
	}
	if err := h.Root().Put(rootName, m); err != nil {
		return nil, err
	}
	return NewJPDTBackend(h, rootName)
}

// Scan implements Scanner for the J-PDT backend (ordered mirrors only).
func (b *JPDTBackend) Scan(start string, limit int, consume func(key, field string, value []byte)) error {
	n := 0
	return b.m.Ascend(start, func(key string, po core.PObject) bool {
		po.(*pRecord).read(b.h, func(name string, val []byte) {
			consume(key, name, val)
		})
		n++
		return n < limit
	})
}

// Scan implements Scanner for the volatile backend (sorted on demand — the
// reference baseline for the extension benchmark).
func (b *VolatileBackend) Scan(start string, limit int, consume func(key, field string, value []byte)) error {
	b.mu.RLock()
	keys := make([]string, 0, len(b.data))
	for k := range b.data {
		if k >= start {
			keys = append(keys, k)
		}
	}
	b.mu.RUnlock()
	sort.Strings(keys)
	if len(keys) > limit {
		keys = keys[:limit]
	}
	for _, k := range keys {
		b.mu.RLock()
		rec := b.data[k]
		b.mu.RUnlock()
		if rec == nil {
			continue
		}
		for _, f := range rec.Fields {
			consume(k, f.Name, f.Value)
		}
	}
	return nil
}
