package store

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/nvm"
)

func newLFGrid(t testing.TB, size int) (*Grid, *JPDTLFBackend, *nvm.Pool) {
	t.Helper()
	h, _, pool := openStoreHeap(t, size, false)
	b, err := NewJPDTLFBackend(h, "lf")
	if err != nil {
		t.Fatal(err)
	}
	g := NewGrid(b, Options{}) // no cache: the grid adopts the lock-free paths
	return g, b, pool
}

// TestJPDTLFGridOps drives the four lock-free grid operations end to end
// and checks the grid actually took the lock-free paths (no stripe locks,
// no seqlock generations).
func TestJPDTLFGridOps(t *testing.T) {
	g, _, _ := newLFGrid(t, 1<<22)
	for i := 0; i < 32; i++ {
		key := fmt.Sprintf("k%02d", i)
		if err := g.Insert(key, testRecord(3, key)); err != nil {
			t.Fatalf("insert %s: %v", key, err)
		}
	}
	rec := &Record{}
	if err := g.Read("k07", func(name string, val []byte) {
		rec.Fields = append(rec.Fields, Field{Name: name, Value: append([]byte(nil), val...)})
	}); err != nil {
		t.Fatal(err)
	}
	if len(rec.Fields) != 3 || string(rec.Fields[1].Value) != "k07-value-1" {
		t.Fatalf("read back %+v", rec.Fields)
	}
	if err := g.Update("k07", []Field{{Name: "field1", Value: []byte("swapped")}}); err != nil {
		t.Fatal(err)
	}
	var got []byte
	if err := g.Read("k07", func(name string, val []byte) {
		if name == "field1" {
			got = append([]byte(nil), val...)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if string(got) != "swapped" {
		t.Fatalf("field1 = %q after update", got)
	}
	if err := g.Update("k07", []Field{{Name: "nosuch", Value: []byte("x")}}); err == nil {
		t.Fatal("update of missing field did not error")
	}
	if err := g.Delete("k07"); err != nil {
		t.Fatal(err)
	}
	if err := g.Read("k07", func(string, []byte) {}); err != ErrNotFound {
		t.Fatalf("read after delete: %v", err)
	}
	if err := g.Delete("k07"); err != ErrNotFound {
		t.Fatalf("double delete: %v", err)
	}
	if err := g.Update("k07", []Field{{Name: "field1", Value: []byte("x")}}); err != ErrNotFound {
		t.Fatalf("update after delete: %v", err)
	}
	snap := g.ObsSnapshot()
	if snap.LockFreeReads == 0 || snap.LockFreeWrites == 0 {
		t.Fatalf("lock-free paths not taken: reads=%d writes=%d", snap.LockFreeReads, snap.LockFreeWrites)
	}
	if snap.ZeroCopyHits != 0 || snap.SeqlockRetries != 0 {
		t.Fatalf("seqlock path leaked into lock-free grid: %+v", snap)
	}
}

// TestJPDTLFConcurrentUpdateDelete races updaters against deleters and
// re-inserters on a shared key set: the CAS-displacement ownership rule
// must keep every read coherent (a field is either a complete written
// value or the record is gone) with no double frees — the heap's
// validity fsck runs implicitly via the final full read pass.
func TestJPDTLFConcurrentUpdateDelete(t *testing.T) {
	g, b, _ := newLFGrid(t, 1<<23)
	const nkeys = 8
	const rounds = 120
	for i := 0; i < nkeys; i++ {
		if err := g.Insert(fmt.Sprintf("c%d", i), testRecord(2, "seed")); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errc := make(chan error, 4)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				key := fmt.Sprintf("c%d", (w*3+r)%nkeys)
				val := []byte(fmt.Sprintf("u%d-%04d", w, r))
				if _, err := b.Update(key, []Field{{Name: "field0", Value: val}}); err != nil {
					errc <- fmt.Errorf("update %s: %w", key, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			key := fmt.Sprintf("c%d", r%nkeys)
			if _, err := b.Delete(key); err != nil {
				errc <- fmt.Errorf("delete %s: %w", key, err)
				return
			}
			if err := g.Insert(key, testRecord(2, "re")); err != nil {
				errc <- fmt.Errorf("reinsert %s: %w", key, err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds*2; r++ {
			key := fmt.Sprintf("c%d", r%nkeys)
			err := g.Read(key, func(name string, val []byte) {
				if len(val) == 0 {
					errc <- fmt.Errorf("empty field %s of %s", name, key)
				}
			})
			if err != nil && err != ErrNotFound {
				errc <- fmt.Errorf("read %s: %w", key, err)
				return
			}
		}
	}()
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	for i := 0; i < nkeys; i++ {
		rec, ok := readAll(t, b, fmt.Sprintf("c%d", i))
		if !ok {
			t.Fatalf("key c%d lost", i)
		}
		if len(rec.Fields) != 2 {
			t.Fatalf("key c%d has %d fields", i, len(rec.Fields))
		}
	}
}

// TestJPDTLFGridRecovery crashes a lock-free grid (snapshot after PSync)
// and reopens the image through a fresh grid: every committed record must
// come back byte-for-byte through the lock-free read path, and the
// recovered backend must accept the full op mix.
func TestJPDTLFGridRecovery(t *testing.T) {
	g, b, pool := newLFGrid(t, 1<<22)
	want := map[string][]byte{}
	for i := 0; i < 24; i++ {
		key := fmt.Sprintf("r%02d", i)
		if err := g.Insert(key, testRecord(2, key)); err != nil {
			t.Fatal(err)
		}
		want[key] = []byte(key + "-value-1")
	}
	for i := 0; i < 24; i += 3 {
		key := fmt.Sprintf("r%02d", i)
		val := []byte(fmt.Sprintf("updated-%d", i))
		if _, err := b.Update(key, []Field{{Name: "field1", Value: val}}); err != nil {
			t.Fatal(err)
		}
		want[key] = val
	}
	for i := 1; i < 24; i += 6 {
		key := fmt.Sprintf("r%02d", i)
		if _, err := b.Delete(key); err != nil {
			t.Fatal(err)
		}
		delete(want, key)
	}
	b.h.PSync()
	snapshot := pool.ReadBytes(0, pool.Size())

	img := nvm.New(len(snapshot), nvm.Options{})
	img.WriteBytes(0, snapshot)
	h2, _, _ := reopenStoreHeap(t, img)
	b2, err := NewJPDTLFBackend(h2, "lf")
	if err != nil {
		t.Fatal(err)
	}
	g2 := NewGrid(b2, Options{})
	if got := b2.Count(); got != len(want) {
		t.Fatalf("recovered %d records, want %d", got, len(want))
	}
	for key, val := range want {
		var got []byte
		found := false
		if err := g2.Read(key, func(name string, v []byte) {
			if name == "field1" {
				got = append([]byte(nil), v...)
				found = true
			}
		}); err != nil {
			t.Fatalf("read %s: %v", key, err)
		}
		if !found || !bytes.Equal(got, val) {
			t.Fatalf("key %s: field1 = %q, want %q", key, got, val)
		}
	}
	if err := g2.Read("r01", func(string, []byte) {}); err != ErrNotFound {
		t.Fatalf("deleted key r01 resurrected: %v", err)
	}
	if err := g2.Insert("probe", testRecord(2, "probe")); err != nil {
		t.Fatal(err)
	}
	if _, err := b2.Update("probe", []Field{{Name: "field0", Value: []byte("ok")}}); err != nil {
		t.Fatal(err)
	}
	if _, err := b2.Delete("probe"); err != nil {
		t.Fatal(err)
	}
}
