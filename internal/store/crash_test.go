package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/nvm"
)

// Crash-injection property tests: run a randomized workload over a J-NVM
// backend on a tracked pool, crash at a random point under a random
// policy, reopen, and compare against an oracle of the durably-synced
// prefix.

type oracleState struct {
	// fenced is the last state known durable (a PSync happened after it).
	fenced map[string]*Record
}

func cloneOracle(m map[string]*Record) map[string]*Record {
	out := make(map[string]*Record, len(m))
	for k, v := range m {
		out[k] = v.Clone()
	}
	return out
}

func TestCrashWorkloadJPDT(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			h, _, pool := openStoreHeap(t, 1<<23, true)
			b, err := NewJPDTBackend(h, "kv")
			if err != nil {
				t.Fatal(err)
			}
			live := map[string]*Record{}
			oracle := oracleState{fenced: map[string]*Record{}}
			steps := 15 + rng.Intn(25)
			for i := 0; i < steps; i++ {
				key := fmt.Sprintf("key%d", rng.Intn(10))
				switch rng.Intn(4) {
				case 0: // insert
					if _, ok := live[key]; !ok {
						rec := testRecord(3, fmt.Sprintf("s%d-i%d", seed, i))
						if err := b.Insert(key, rec); err != nil {
							t.Fatal(err)
						}
						live[key] = rec.Clone()
					}
				case 1: // update
					if rec, ok := live[key]; ok {
						f := Field{Name: "field1", Value: []byte(fmt.Sprintf("u%d", i))}
						if _, err := b.Update(key, []Field{f}); err != nil {
							t.Fatal(err)
						}
						rec.Set(f.Name, f.Value)
					}
				case 2: // delete
					if _, ok := live[key]; ok {
						if _, err := b.Delete(key); err != nil {
							t.Fatal(err)
						}
						delete(live, key)
					}
				case 3: // durable point
					h.PSync()
					oracle.fenced = cloneOracle(live)
				}
			}
			policy := []nvm.CrashPolicy{nvm.CrashStrict, nvm.CrashAll, nvm.CrashRandom}[rng.Intn(3)]
			img := pool.CrashImage(policy, rng)
			h2, _, _ := reopenStoreHeap(t, img)
			b2, err := NewJPDTBackend(h2, "kv")
			if err != nil {
				t.Fatalf("seed %d (%v): reopen: %v", seed, policy, err)
			}
			// 1. Every record that survives must be readable without
			//    corruption: at most the schema's 3 fields, every
			//    surviving field named (a torn field may have been
			//    dropped by recovery under CrashRandom, never mangled).
			for i := 0; i < 10; i++ {
				key := fmt.Sprintf("key%d", i)
				rec, ok := readAll(t, b2, key)
				if !ok {
					continue
				}
				if len(rec.Fields) > 3 {
					t.Fatalf("seed %d: %s has %d fields", seed, key, len(rec.Fields))
				}
				for _, f := range rec.Fields {
					if len(f.Name) == 0 {
						t.Fatalf("seed %d: %s has a nameless field", seed, key)
					}
				}
				if policy != nvm.CrashRandom && len(rec.Fields) != 3 {
					t.Fatalf("seed %d: %s lost fields under %v", seed, key, policy)
				}
			}
			// 2. Under CrashAll (nothing lost), the final state matches
			//    the live oracle exactly.
			if policy == nvm.CrashAll {
				if b2.Count() != len(live) {
					t.Fatalf("seed %d: count %d vs oracle %d", seed, b2.Count(), len(live))
				}
				for key, want := range live {
					got, ok := readAll(t, b2, key)
					if !ok {
						t.Fatalf("seed %d: %s lost under CrashAll", seed, key)
					}
					for _, f := range want.Fields {
						gv, _ := got.Get(f.Name)
						if !bytes.Equal(gv, f.Value) {
							t.Fatalf("seed %d: %s.%s = %q want %q", seed, key, f.Name, gv, f.Value)
						}
					}
				}
			}
			// 3. The backend must remain fully writable after recovery.
			if err := b2.Insert("post-crash", testRecord(3, "post")); err != nil {
				t.Fatalf("seed %d: post-crash insert: %v", seed, err)
			}
			if rec, ok := readAll(t, b2, "post-crash"); !ok || len(rec.Fields) != 3 {
				t.Fatalf("seed %d: post-crash readback failed", seed)
			}
		})
	}
}

func TestCrashWorkloadJPFA(t *testing.T) {
	// The J-PFA variant: every mutation is failure-atomic, so *every*
	// completed operation (not just fenced ones) must survive any crash —
	// the stronger guarantee the redo log buys.
	for seed := int64(100); seed < 110; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			h, mgr, pool := openStoreHeap(t, 1<<23, true)
			b, err := NewJPFABackend(h, mgr, "kv")
			if err != nil {
				t.Fatal(err)
			}
			live := map[string]*Record{}
			steps := 10 + rng.Intn(20)
			for i := 0; i < steps; i++ {
				key := fmt.Sprintf("key%d", rng.Intn(8))
				switch rng.Intn(3) {
				case 0:
					if _, ok := live[key]; !ok {
						rec := testRecord(3, fmt.Sprintf("s%d-i%d", seed, i))
						if err := b.Insert(key, rec); err != nil {
							t.Fatal(err)
						}
						live[key] = rec.Clone()
					}
				case 1:
					if rec, ok := live[key]; ok {
						f := Field{Name: "field2", Value: []byte(fmt.Sprintf("u%d", i))}
						if _, err := b.Update(key, []Field{f}); err != nil {
							t.Fatal(err)
						}
						rec.Set(f.Name, f.Value)
					}
				case 2:
					if _, ok := live[key]; ok {
						if _, err := b.Delete(key); err != nil {
							t.Fatal(err)
						}
						delete(live, key)
					}
				}
			}
			img := pool.CrashImage(nvm.CrashStrict, rng)
			h2, mgr2, _ := reopenStoreHeap(t, img)
			b2, err := NewJPFABackend(h2, mgr2, "kv")
			if err != nil {
				t.Fatal(err)
			}
			if b2.Count() != len(live) {
				t.Fatalf("seed %d: count %d vs oracle %d", seed, b2.Count(), len(live))
			}
			for key, want := range live {
				got, ok := readAll(t, b2, key)
				if !ok {
					t.Fatalf("seed %d: committed record %s lost", seed, key)
				}
				for _, f := range want.Fields {
					gv, _ := got.Get(f.Name)
					if !bytes.Equal(gv, f.Value) {
						t.Fatalf("seed %d: %s.%s = %q want %q", seed, key, f.Name, gv, f.Value)
					}
				}
			}
		})
	}
}
