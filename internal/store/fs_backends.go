package store

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"
)

// VolatileBackend stores records in DRAM without persistence or
// marshalling — the paper's "Volatile" reference configuration ("behaves
// as NullFS, except that the marshalling/unmarshalling phase is avoided").
type VolatileBackend struct {
	mu   sync.RWMutex
	data map[string]*Record
}

// NewVolatileBackend creates an empty volatile backend.
func NewVolatileBackend() *VolatileBackend {
	return &VolatileBackend{data: make(map[string]*Record)}
}

// Name implements Backend.
func (b *VolatileBackend) Name() string { return "Volatile" }

// Count implements Backend.
func (b *VolatileBackend) Count() int { b.mu.RLock(); defer b.mu.RUnlock(); return len(b.data) }

// Close implements Backend.
func (b *VolatileBackend) Close() error { return nil }

// Insert implements Backend.
func (b *VolatileBackend) Insert(key string, rec *Record) error {
	b.mu.Lock()
	b.data[key] = rec.Clone()
	b.mu.Unlock()
	return nil
}

// Read implements Backend.
func (b *VolatileBackend) Read(key string, consume func(string, []byte)) (bool, error) {
	b.mu.RLock()
	rec, ok := b.data[key]
	b.mu.RUnlock()
	if !ok {
		return false, nil
	}
	for _, f := range rec.Fields {
		consume(f.Name, f.Value)
	}
	return true, nil
}

// Update implements Backend.
func (b *VolatileBackend) Update(key string, fields []Field) (bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	rec, ok := b.data[key]
	if !ok {
		return false, nil
	}
	for _, f := range fields {
		rec.Set(f.Name, append([]byte(nil), f.Value...))
	}
	return true, nil
}

// Delete implements Backend.
func (b *VolatileBackend) Delete(key string) (bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.data[key]; !ok {
		return false, nil
	}
	delete(b.data, key)
	return true, nil
}

// TmpFSBackend keeps marshalled records in an in-memory "file system":
// every operation pays the full marshal/unmarshal conversion but no device
// I/O, isolating the serialization cost exactly as Figure 8's TmpFS bar.
type TmpFSBackend struct {
	mu    sync.RWMutex
	files map[string][]byte
}

// NewTmpFSBackend creates an empty tmpfs backend.
func NewTmpFSBackend() *TmpFSBackend { return &TmpFSBackend{files: make(map[string][]byte)} }

// Name implements Backend.
func (b *TmpFSBackend) Name() string { return "TmpFS" }

// Count implements Backend.
func (b *TmpFSBackend) Count() int { b.mu.RLock(); defer b.mu.RUnlock(); return len(b.files) }

// Close implements Backend.
func (b *TmpFSBackend) Close() error { return nil }

// Insert implements Backend.
func (b *TmpFSBackend) Insert(key string, rec *Record) error {
	buf := Marshal(rec)
	b.mu.Lock()
	b.files[key] = buf
	b.mu.Unlock()
	return nil
}

// Read implements Backend.
func (b *TmpFSBackend) Read(key string, consume func(string, []byte)) (bool, error) {
	b.mu.RLock()
	buf, ok := b.files[key]
	b.mu.RUnlock()
	if !ok {
		return false, nil
	}
	rec, err := Unmarshal(buf)
	if err != nil {
		return false, err
	}
	for _, f := range rec.Fields {
		consume(f.Name, f.Value)
	}
	return true, nil
}

// Update implements Backend: read file, unmarshal, merge, marshal, write
// file — the write-through file-store path of Infinispan.
func (b *TmpFSBackend) Update(key string, fields []Field) (bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	buf, ok := b.files[key]
	if !ok {
		return false, nil
	}
	rec, err := Unmarshal(buf)
	if err != nil {
		return false, err
	}
	for _, f := range fields {
		rec.Set(f.Name, f.Value)
	}
	b.files[key] = Marshal(rec)
	return true, nil
}

// Delete implements Backend.
func (b *TmpFSBackend) Delete(key string) (bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.files[key]; !ok {
		return false, nil
	}
	delete(b.files, key)
	return true, nil
}

// NullFSBackend treats reads and writes as no-ops, like the nullfsvfs
// module the paper cites: data is marshalled and dropped, reads fabricate
// a record of the last-written shape and pay the unmarshal. It isolates
// pure conversion cost with zero storage.
type NullFSBackend struct {
	mu       sync.RWMutex
	template []byte
	count    int
	keys     map[string]bool
}

// NewNullFSBackend creates an empty nullfs backend.
func NewNullFSBackend() *NullFSBackend { return &NullFSBackend{keys: make(map[string]bool)} }

// Name implements Backend.
func (b *NullFSBackend) Name() string { return "NullFS" }

// Count implements Backend.
func (b *NullFSBackend) Count() int { b.mu.RLock(); defer b.mu.RUnlock(); return b.count }

// Close implements Backend.
func (b *NullFSBackend) Close() error { return nil }

// Insert implements Backend.
func (b *NullFSBackend) Insert(key string, rec *Record) error {
	buf := Marshal(rec) // cost paid, bytes dropped
	b.mu.Lock()
	b.template = buf
	if !b.keys[key] {
		b.keys[key] = true
		b.count++
	}
	b.mu.Unlock()
	return nil
}

// Read implements Backend.
func (b *NullFSBackend) Read(key string, consume func(string, []byte)) (bool, error) {
	b.mu.RLock()
	buf := b.template
	known := b.keys[key]
	b.mu.RUnlock()
	if !known || buf == nil {
		return false, nil
	}
	rec, err := Unmarshal(buf)
	if err != nil {
		return false, err
	}
	for _, f := range rec.Fields {
		consume(f.Name, f.Value)
	}
	return true, nil
}

// Update implements Backend.
func (b *NullFSBackend) Update(key string, fields []Field) (bool, error) {
	b.mu.RLock()
	buf := b.template
	known := b.keys[key]
	b.mu.RUnlock()
	if !known || buf == nil {
		return false, nil
	}
	rec, err := Unmarshal(buf)
	if err != nil {
		return false, err
	}
	for _, f := range fields {
		rec.Set(f.Name, f.Value)
	}
	_ = Marshal(rec) // cost paid, bytes dropped
	return true, nil
}

// Delete implements Backend.
func (b *NullFSBackend) Delete(key string) (bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.keys[key] {
		return false, nil
	}
	delete(b.keys, key)
	b.count--
	return true, nil
}

// FSBackend persists marshalled records as one file per key under a
// sharded directory tree — the paper's default Infinispan configuration
// (ext4 over NVMM in DAX mode; here, whatever filesystem hosts dir).
type FSBackend struct {
	dir   string
	fsync bool
	mu    sync.RWMutex
	known map[string]bool // avoids stat storms on misses
}

// NewFSBackend creates the directory tree rooted at dir. With fsync, every
// write is forced to the device (off by default: the page cache plays the
// ADR role DAX ext4 gives the paper).
func NewFSBackend(dir string, fsync bool) (*FSBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	b := &FSBackend{dir: dir, fsync: fsync, known: make(map[string]bool)}
	// Rebuild the key set on reopen.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, shard := range entries {
		if !shard.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(dir, shard.Name()))
		if err != nil {
			return nil, err
		}
		for _, f := range files {
			b.known[f.Name()] = true
		}
	}
	return b, nil
}

// Name implements Backend.
func (b *FSBackend) Name() string { return "FS" }

// Count implements Backend.
func (b *FSBackend) Count() int { b.mu.RLock(); defer b.mu.RUnlock(); return len(b.known) }

// Close implements Backend.
func (b *FSBackend) Close() error { return nil }

func (b *FSBackend) path(key string) string {
	h := fnv.New32a()
	h.Write([]byte(key))
	return filepath.Join(b.dir, fmt.Sprintf("%02x", h.Sum32()&0xff), key)
}

// Insert implements Backend.
func (b *FSBackend) Insert(key string, rec *Record) error {
	p := b.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	if err := b.writeFile(p, Marshal(rec)); err != nil {
		return err
	}
	b.mu.Lock()
	b.known[key] = true
	b.mu.Unlock()
	return nil
}

func (b *FSBackend) writeFile(p string, buf []byte) error {
	f, err := os.OpenFile(p, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if b.fsync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// Read implements Backend.
func (b *FSBackend) Read(key string, consume func(string, []byte)) (bool, error) {
	b.mu.RLock()
	known := b.known[key]
	b.mu.RUnlock()
	if !known {
		return false, nil
	}
	buf, err := os.ReadFile(b.path(key))
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, err
	}
	rec, err := Unmarshal(buf)
	if err != nil {
		return false, err
	}
	for _, f := range rec.Fields {
		consume(f.Name, f.Value)
	}
	return true, nil
}

// Update implements Backend.
func (b *FSBackend) Update(key string, fields []Field) (bool, error) {
	b.mu.RLock()
	known := b.known[key]
	b.mu.RUnlock()
	if !known {
		return false, nil
	}
	p := b.path(key)
	buf, err := os.ReadFile(p)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, err
	}
	rec, err := Unmarshal(buf)
	if err != nil {
		return false, err
	}
	for _, f := range fields {
		rec.Set(f.Name, f.Value)
	}
	return true, b.writeFile(p, Marshal(rec))
}

// Delete implements Backend.
func (b *FSBackend) Delete(key string) (bool, error) {
	b.mu.Lock()
	known := b.known[key]
	delete(b.known, key)
	b.mu.Unlock()
	if !known {
		return false, nil
	}
	err := os.Remove(b.path(key))
	if os.IsNotExist(err) {
		return true, nil
	}
	return true, err
}
