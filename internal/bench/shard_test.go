package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ycsb"
)

// TestShardEnv runs YCSB-A over a sharded environment for each shardable
// backend: the routing grid backend must behave exactly like the classic
// single-pool stack from the workload's point of view.
func TestShardEnv(t *testing.T) {
	for _, bk := range []BackendKind{JPDT, JPDTLF, JPFA, PCJ} {
		t.Run(string(bk), func(t *testing.T) {
			env, err := NewEnv(GridConfig{Backend: bk, Records: 200, FieldCount: 10, FieldLen: 100, FenceNs: 1, Pools: 3})
			if err != nil {
				t.Fatal(err)
			}
			defer env.Close()
			if env.Set == nil || env.Set.Pools() != 3 {
				t.Fatal("expected a 3-pool sharded env")
			}
			cfg := ycsb.MustWorkload("A")
			cfg.RecordCount, cfg.Operations = 200, 600
			cfg = cfg.Defaults()
			if err := ycsb.Load(env.Grid, cfg); err != nil {
				t.Fatal(err)
			}
			res, err := ycsb.Run(env.Grid, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Errors != 0 {
				t.Fatalf("%d errors", res.Errors)
			}
		})
	}
	if _, err := NewEnv(GridConfig{Backend: FS, Records: 100, FieldCount: 10, FieldLen: 100, Pools: 2}); err == nil {
		t.Fatal("FS backend accepted a pool count")
	}
}

// TestShardSnapshotSums is the satellite check that the per-pool obs
// breakdown is complete: summing every pool's NVM/heap/FA counters must
// reproduce the global layer gauges the snapshot reports (which is also
// what keeps check_pwb.sh honest on sharded runs).
func TestShardSnapshotSums(t *testing.T) {
	env, err := NewEnv(GridConfig{Backend: JPFA, Records: 300, FieldCount: 10, FieldLen: 100, FenceNs: 1, Pools: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	cfg := ycsb.MustWorkload("A")
	cfg.RecordCount, cfg.Operations = 300, 900
	cfg = cfg.Defaults()
	if err := ycsb.Load(env.Grid, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := ycsb.Run(env.Grid, cfg); err != nil {
		t.Fatal(err)
	}
	s := env.Snapshot()
	if s.Shard == nil || len(s.Shard.PerPool) != 4 {
		t.Fatalf("missing per-pool breakdown: %+v", s.Shard)
	}
	var pwb, fences, objAllocs, objFrees, bump, commits uint64
	active := 0
	for _, p := range s.Shard.PerPool {
		pwb += p.NVM.PWBs
		fences += p.NVM.PFences
		objAllocs += p.Heap.ObjAllocs
		objFrees += p.Heap.ObjFrees
		bump += p.Heap.Bump
		commits += p.FA.Committed
		if p.Heap.ObjAllocs > 0 {
			active++
		}
	}
	if s.NVM.PWBs != pwb || s.NVM.PFences != fences {
		t.Errorf("NVM sums: global pwb=%d pfence=%d, per-pool %d/%d", s.NVM.PWBs, s.NVM.PFences, pwb, fences)
	}
	if s.Heap.ObjAllocs != objAllocs || s.Heap.ObjFrees != objFrees || s.Heap.Bump != bump {
		t.Errorf("heap sums: global allocs=%d frees=%d bump=%d, per-pool %d/%d/%d",
			s.Heap.ObjAllocs, s.Heap.ObjFrees, s.Heap.Bump, objAllocs, objFrees, bump)
	}
	if s.FA.Committed != commits {
		t.Errorf("fa sums: global commits=%d, per-pool %d", s.FA.Committed, commits)
	}
	// Jump hashing must actually spread the dataset: every pool allocated.
	if active != 4 {
		t.Errorf("only %d/4 pools saw allocations", active)
	}
	// The report printer must include the per-pool section.
	var buf bytes.Buffer
	s.Report(&buf)
	if !strings.Contains(buf.String(), "pool") {
		t.Fatalf("report missing shard section:\n%s", buf.String())
	}
}

// TestShardSweepRuns exercises the sweep experiment end to end at tiny
// scale: one single-pool row (classic stack) and one sharded row, with
// non-empty occupancy and a printable table.
func TestShardSweepRuns(t *testing.T) {
	sc := Scale{Records: 300, Operations: 600, Threads: 2}
	rows, err := ShardSweep(sc, JPFA, "A", []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Pools != 1 || len(rows[0].OccupancyPct) != 1 {
		t.Fatalf("single-pool row malformed: %+v", rows[0])
	}
	if rows[1].Pools != 2 || len(rows[1].OccupancyPct) != 2 {
		t.Fatalf("sharded row malformed: %+v", rows[1])
	}
	for _, r := range rows {
		if r.Errors != 0 {
			t.Fatalf("%d-pool run had %d errors", r.Pools, r.Errors)
		}
		if r.KopsSec <= 0 {
			t.Fatalf("%d-pool run had no throughput", r.Pools)
		}
		if r.PWBPerOp <= 0 {
			t.Fatalf("%d-pool run recorded no persistence work", r.Pools)
		}
	}
	var buf bytes.Buffer
	PrintShard(&buf, rows)
	if !strings.Contains(buf.String(), "pools") {
		t.Fatal("print broken")
	}
}
