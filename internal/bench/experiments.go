package bench

import (
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/fa"
	"repro/internal/gcsim"
	"repro/internal/heap"
	"repro/internal/nvm"
	"repro/internal/obs"
	"repro/internal/pdt"
	"repro/internal/store"
	"repro/internal/tpcb"
	"repro/internal/ycsb"
)

// Scale is the global dataset scale of the harness. The paper runs 3M
// records and 100M operations on an 80-core Optane testbed; the default
// scale targets a laptop while preserving every shape. Pass -scale to the
// cmd tools to grow it.
type Scale struct {
	Records    int
	Operations int
	Threads    int
	// Commit is the J-NVM commit protocol ("", "per-tx", "group",
	// "async"); see GridConfig.Commit.
	Commit string
}

// DefaultScale runs the full suite in minutes on commodity hardware.
func DefaultScale() Scale { return Scale{Records: 20_000, Operations: 60_000, Threads: 1} }

// ---- Figure 7: YCSB throughput across backends ----

// Fig7Row is one (workload, backend) measurement. PWBPerOp/PFencePerOp are
// the Table-3-style persistence-primitive rates for the run interval,
// sourced from the shared obs layer (zero for backends that bypass NVMM).
type Fig7Row struct {
	Workload    string
	Backend     BackendKind
	KopsSec     float64
	MeanRead    time.Duration
	Errors      uint64
	PWBPerOp    float64
	PFencePerOp float64
	// Stack is the full per-run metrics snapshot (run interval only),
	// embedded in JSON result files.
	Stack *obs.StackSnapshot `json:",omitempty"`
}

// Fig7 runs workloads A,B,C,D,F over the four persistent backends of
// Figure 7.
func Fig7(sc Scale, backends []BackendKind) ([]Fig7Row, error) {
	if backends == nil {
		backends = []BackendKind{JPDT, JPFA, FS, PCJ}
	}
	var rows []Fig7Row
	for _, w := range []string{"A", "B", "C", "D", "F"} {
		for _, bk := range backends {
			cfg := ycsb.MustWorkload(w)
			cfg.RecordCount = sc.Records
			cfg.Operations = sc.Operations
			cfg.Threads = sc.Threads
			cfg = cfg.Defaults()
			env, err := NewEnv(GridConfig{
				Backend: bk, Records: cfg.RecordCount * 2,
				FieldCount: cfg.FieldCount, FieldLen: cfg.FieldLen,
				CacheEntries: fsCache(bk, cfg.RecordCount),
				Commit:       sc.Commit,
			})
			if err != nil {
				return nil, err
			}
			if err := ycsb.Load(env.Grid, cfg); err != nil {
				env.Close()
				return nil, fmt.Errorf("load %s/%s: %w", w, bk, err)
			}
			before := env.Snapshot()
			res, err := ycsb.Run(env.Grid, cfg)
			if env.Mgr != nil {
				// Async mode: charge the run's own epochs to the run
				// interval before diffing snapshots.
				env.Mgr.DrainDurable()
			}
			stack := env.Snapshot().Sub(*before)
			env.Close()
			if err != nil {
				return nil, fmt.Errorf("run %s/%s: %w", w, bk, err)
			}
			res.Stack = &stack
			row := Fig7Row{Workload: w, Backend: bk, KopsSec: res.Throughput() / 1000, Errors: res.Errors,
				PWBPerOp: stack.PWBPerOp, PFencePerOp: stack.PFencePerOp, Stack: &stack}
			if h := res.PerOp[ycsb.OpRead]; h != nil {
				row.MeanRead = h.Mean()
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// fsCache gives the paper's 10% record cache to the file-system family and
// nothing to the J-NVM backends (§5.1, §5.3.1).
func fsCache(bk BackendKind, records int) int {
	switch bk {
	case FS, TmpFS, NullFS, Volatile:
		return records / 10
	default:
		return 0
	}
}

// ---- Figure 8: the price of marshalling (record-size sweep) ----

// Fig8Row is one (record size, backend) completion time.
type Fig8Row struct {
	RecordKB   int
	Backend    BackendKind
	Completion time.Duration
}

// Fig8 runs YCSB-A with growing records over the no-persistence backends,
// isolating marshalling cost.
func Fig8(sc Scale, sizesKB []int) ([]Fig8Row, error) {
	if sizesKB == nil {
		sizesKB = []int{1, 2, 4, 6, 8, 10}
	}
	var rows []Fig8Row
	for _, kb := range sizesKB {
		for _, bk := range []BackendKind{Volatile, NullFS, TmpFS, FS} {
			cfg := ycsb.MustWorkload("A")
			// Constant dataset bytes: fewer records as they grow.
			cfg.RecordCount = max(sc.Records/kb, 200)
			cfg.Operations = max(sc.Operations/kb, 500)
			cfg.Threads = sc.Threads
			cfg.FieldLen = kb * 100 // 10 fields x (kb*100) = kb KB records
			cfg = cfg.Defaults()
			env, err := NewEnv(GridConfig{
				Backend: bk, Records: cfg.RecordCount,
				FieldCount: cfg.FieldCount, FieldLen: cfg.FieldLen,
				CacheEntries: cfg.RecordCount / 10,
			})
			if err != nil {
				return nil, err
			}
			if err := ycsb.Load(env.Grid, cfg); err != nil {
				env.Close()
				return nil, err
			}
			res, err := ycsb.Run(env.Grid, cfg)
			env.Close()
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig8Row{RecordKB: kb, Backend: bk, Completion: res.Duration})
		}
	}
	return rows, nil
}

// ---- Figure 9: sensitivity analyses ----

// Fig9Row is one sensitivity point: mean read and update latency for J-PDT
// and FS at one knob setting.
type Fig9Row struct {
	Knob    string
	Value   int
	Backend BackendKind
	Read    time.Duration
	Update  time.Duration
}

func runFig9Point(knob string, value int, bk BackendKind, cfg ycsb.Config, cacheEntries int, proxy bool) (Fig9Row, error) {
	gc := GridConfig{
		Backend: bk, Records: cfg.RecordCount * 2,
		FieldCount: cfg.FieldCount, FieldLen: cfg.FieldLen,
	}
	if bk == JPDT {
		if proxy && cacheEntries > 0 {
			gc.ProxyCache = 1 // pdt.CacheOnDemand
		}
	} else {
		gc.CacheEntries = cacheEntries
	}
	env, err := NewEnv(gc)
	if err != nil {
		return Fig9Row{}, err
	}
	defer env.Close()
	if err := ycsb.Load(env.Grid, cfg); err != nil {
		return Fig9Row{}, err
	}
	res, err := ycsb.Run(env.Grid, cfg)
	if err != nil {
		return Fig9Row{}, err
	}
	row := Fig9Row{Knob: knob, Value: value, Backend: bk}
	if h := res.PerOp[ycsb.OpRead]; h != nil {
		row.Read = h.Mean()
	}
	if h := res.PerOp[ycsb.OpUpdate]; h != nil {
		row.Update = h.Mean()
	}
	return row, nil
}

// Fig9a sweeps the cache ratio (Figure 9a).
func Fig9a(sc Scale, ratios []int) ([]Fig9Row, error) {
	if ratios == nil {
		ratios = []int{0, 20, 40, 60, 80, 100}
	}
	var rows []Fig9Row
	for _, r := range ratios {
		cfg := ycsb.MustWorkload("A")
		cfg.RecordCount, cfg.Operations, cfg.Threads = sc.Records, sc.Operations, sc.Threads
		cfg = cfg.Defaults()
		for _, bk := range []BackendKind{JPDT, FS} {
			row, err := runFig9Point("cache%", r, bk, cfg, sc.Records*r/100, true)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Fig9b sweeps the record count (Figure 9b).
func Fig9b(sc Scale, counts []int) ([]Fig9Row, error) {
	if counts == nil {
		counts = []int{sc.Records / 8, sc.Records / 4, sc.Records / 2, sc.Records}
	}
	var rows []Fig9Row
	for _, n := range counts {
		cfg := ycsb.MustWorkload("A")
		cfg.RecordCount, cfg.Operations, cfg.Threads = n, sc.Operations, sc.Threads
		cfg = cfg.Defaults()
		for _, bk := range []BackendKind{JPDT, FS} {
			row, err := runFig9Point("records", n, bk, cfg, n/10, false)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Fig9c sweeps the field count at constant dataset size (Figure 9c).
func Fig9c(sc Scale, fieldCounts []int) ([]Fig9Row, error) {
	if fieldCounts == nil {
		fieldCounts = []int{10, 50, 100, 500}
	}
	const datasetBytes = 1 << 24
	var rows []Fig9Row
	for _, fc := range fieldCounts {
		cfg := ycsb.MustWorkload("A")
		cfg.FieldCount = fc
		cfg.FieldLen = 100
		cfg.RecordCount = max(datasetBytes/(fc*100), 50)
		cfg.Operations = max(sc.Operations/fc*10, 200)
		cfg.Threads = sc.Threads
		cfg = cfg.Defaults()
		for _, bk := range []BackendKind{JPDT, FS} {
			row, err := runFig9Point("fields", fc, bk, cfg, cfg.RecordCount/10, false)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Fig9d sweeps the record size at constant dataset size (Figure 9d).
func Fig9d(sc Scale, sizesKB []int) ([]Fig9Row, error) {
	if sizesKB == nil {
		sizesKB = []int{1, 10, 100, 1000}
	}
	const datasetBytes = 1 << 25
	var rows []Fig9Row
	for _, kb := range sizesKB {
		cfg := ycsb.MustWorkload("A")
		cfg.FieldCount = 10
		cfg.FieldLen = kb * 100
		cfg.RecordCount = max(datasetBytes/(kb*1024), 20)
		cfg.Operations = max(sc.Operations/kb, 100)
		cfg.Threads = sc.Threads
		cfg = cfg.Defaults()
		for _, bk := range []BackendKind{JPDT, FS} {
			row, err := runFig9Point("recordKB", kb, bk, cfg, cfg.RecordCount/10, false)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// ---- Figure 10: thread scaling ----

// Fig10Row is one (workload, backend, threads) throughput point.
type Fig10Row struct {
	Workload string
	Backend  BackendKind
	Threads  int
	KopsSec  float64
}

// Fig10 sweeps the thread count for YCSB-A and YCSB-C over J-PDT, FS and
// Volatile.
func Fig10(sc Scale, threads []int) ([]Fig10Row, error) {
	if threads == nil {
		threads = []int{1, 2, 4, 8}
	}
	var rows []Fig10Row
	for _, w := range []string{"A", "C"} {
		for _, bk := range []BackendKind{JPDT, FS, Volatile} {
			for _, th := range threads {
				cfg := ycsb.MustWorkload(w)
				cfg.RecordCount = sc.Records
				cfg.Operations = sc.Operations * th // keep per-thread work constant
				cfg.Threads = th
				cfg = cfg.Defaults()
				env, err := NewEnv(GridConfig{
					Backend: bk, Records: cfg.RecordCount * 2,
					FieldCount: cfg.FieldCount, FieldLen: cfg.FieldLen,
					CacheEntries: fsCache(bk, cfg.RecordCount),
				})
				if err != nil {
					return nil, err
				}
				if err := ycsb.Load(env.Grid, cfg); err != nil {
					env.Close()
					return nil, err
				}
				res, err := ycsb.Run(env.Grid, cfg)
				env.Close()
				if err != nil {
					return nil, err
				}
				rows = append(rows, Fig10Row{Workload: w, Backend: bk, Threads: th, KopsSec: res.Throughput() / 1000})
			}
		}
	}
	return rows, nil
}

// ---- Figure 11: recovery timeline ----

// Fig11Config parameterizes the recovery experiment.
type Fig11Config struct {
	Accounts   int
	Clients    int
	RunFor     time.Duration
	CrashAfter time.Duration
	Bucket     time.Duration
	// Commit is the J-PFA commit protocol ("", "per-tx", "group",
	// "async"). Async makes the crash meaningful: transfers acknowledged
	// past the watermark survive, queued ones are rolled back.
	Commit string
}

// Fig11 runs the TPC-B crash/recovery experiment over the four systems of
// Figure 11 and returns their timelines.
func Fig11(cfg Fig11Config) ([]*tpcb.Timeline, error) {
	if cfg.Accounts == 0 {
		cfg.Accounts = 20_000
	}
	if cfg.Clients == 0 {
		cfg.Clients = 4
	}
	if cfg.RunFor == 0 {
		cfg.RunFor = 3 * time.Second
	}
	if cfg.CrashAfter == 0 {
		cfg.CrashAfter = cfg.RunFor / 2
	}
	if cfg.Bucket == 0 {
		cfg.Bucket = 100 * time.Millisecond
	}
	poolBytes := cfg.Accounts*512 + (32 << 20)
	commitMode, err := ParseCommitMode(cfg.Commit)
	if err != nil {
		return nil, err
	}
	// openJNVM opens (or re-opens) a bank on pool and applies the
	// configured commit protocol; recovery itself always runs before the
	// mode takes effect, so the restart path is mode-independent.
	openJNVM := func(pool *nvm.Pool, accounts int, nogc bool) (tpcb.Bank, error) {
		b, err := tpcb.OpenJNVMBank(pool, accounts, nogc)
		if err != nil {
			return nil, err
		}
		if err := b.Manager().SetGroupCommit(fa.GroupOptions{Mode: commitMode}); err != nil {
			return nil, err
		}
		return b, nil
	}

	var systems []tpcb.System
	// Volatile: restart from a blank state.
	systems = append(systems, tpcb.System{
		Name:    "Volatile",
		Start:   func() (tpcb.Bank, error) { return tpcb.NewVolatileBank(cfg.Accounts), nil },
		Restart: func() (tpcb.Bank, error) { return tpcb.NewVolatileBank(cfg.Accounts), nil },
	})
	// J-PFA: full recovery GC at restart.
	{
		pool := nvm.New(poolBytes, nvm.Options{FenceLatency: DefaultFenceNs})
		obs.Default.Publish("tpcb_jpfa_nvm", func() any { return pool.Obs().Snapshot() })
		systems = append(systems, tpcb.System{
			Name:    "J-PFA",
			Start:   func() (tpcb.Bank, error) { return openJNVM(pool, cfg.Accounts, false) },
			Restart: func() (tpcb.Bank, error) { return openJNVM(pool, cfg.Accounts, false) },
		})
	}
	// J-PFA-nogc: header-scan recovery.
	{
		pool := nvm.New(poolBytes, nvm.Options{FenceLatency: DefaultFenceNs})
		obs.Default.Publish("tpcb_jpfa_nogc_nvm", func() any { return pool.Obs().Snapshot() })
		systems = append(systems, tpcb.System{
			Name:    "J-PFA-nogc",
			Start:   func() (tpcb.Bank, error) { return openJNVM(pool, cfg.Accounts, true) },
			Restart: func() (tpcb.Bank, error) { return openJNVM(pool, cfg.Accounts, true) },
		})
	}
	// FS: files survive; the restart eagerly rewarms the 10% cache.
	{
		dir, err := os.MkdirTemp("", "jnvm-tpcb-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		systems = append(systems, tpcb.System{
			Name:  "FS",
			Start: func() (tpcb.Bank, error) { return tpcb.OpenFSBank(dir, cfg.Accounts, 0.1) },
			Restart: func() (tpcb.Bank, error) {
				b, err := tpcb.OpenFSBank(dir, cfg.Accounts, 0.1)
				if err != nil {
					return nil, err
				}
				if err := b.WarmCache(cfg.Accounts / 10); err != nil {
					return nil, err
				}
				return b, nil
			},
		})
	}

	var out []*tpcb.Timeline
	for _, sys := range systems {
		tl, err := tpcb.Run(sys, tpcb.RunOptions{
			Accounts:   cfg.Accounts,
			Clients:    cfg.Clients,
			RunFor:     cfg.RunFor,
			CrashAfter: cfg.CrashAfter,
			Bucket:     cfg.Bucket,
		})
		if err != nil {
			return nil, fmt.Errorf("fig11 %s: %w", sys.Name, err)
		}
		out = append(out, tl)
	}
	return out, nil
}

// ---- Figures 1 and 2: the GC counter-examples ----

// Fig2Row is one dataset-size point of the go-pmem experiment.
type Fig2Row struct {
	DatasetMB   int
	Completion  time.Duration
	GCCPUTime   time.Duration
	ComputeTime time.Duration
	GCShare     float64
	Collections int
	LiveObjects int
}

// Fig2 grows the persistent dataset of the RedisLike store while running a
// fixed YCSB-F-like op count, reproducing the go-pmem GC blow-up.
func Fig2(datasetsMB []int, ops int, gcEveryMB int) ([]Fig2Row, error) {
	if datasetsMB == nil {
		datasetsMB = []int{16, 32, 64, 128, 256}
	}
	if ops == 0 {
		ops = 150_000
	}
	if gcEveryMB == 0 {
		gcEveryMB = 8 // the paper forces a collection every 10 GB; scaled
	}
	const valSize = 1024
	var rows []Fig2Row
	for _, mb := range datasetsMB {
		records := mb << 20 / valSize
		h := gcsim.New(uint64(gcEveryMB) << 20)
		r := gcsim.NewRedisLike(h, max(records/4, 64))
		for i := 0; i < records; i++ {
			r.Set(fmt.Sprintf("user%09d", i), make([]byte, valSize))
		}
		// Warm up (JIT-ish effects, page faults, zipf tables), then settle
		// the load-phase garbage before measuring.
		z := newZipfKeys(records)
		buf := make([]byte, valSize)
		for i := 0; i < ops/10; i++ {
			key := z.next(i)
			if i%2 == 0 {
				r.Get(key)
			} else {
				r.RMW(key, func(v []byte) []byte { copy(buf, v); return buf })
			}
		}
		h.Collect()
		base := h.Stats()
		start := time.Now()
		for i := 0; i < ops; i++ {
			key := z.next(i)
			if i%2 == 0 {
				r.Get(key)
			} else {
				r.RMW(key, func(v []byte) []byte { copy(buf, v); return buf })
			}
		}
		completion := time.Since(start)
		st := h.Stats()
		gcTime := st.GCTime - base.GCTime
		rows = append(rows, Fig2Row{
			DatasetMB:   mb,
			Completion:  completion,
			GCCPUTime:   gcTime,
			ComputeTime: completion - gcTime,
			GCShare:     float64(gcTime) / float64(completion),
			Collections: st.Collections - base.Collections,
			LiveObjects: st.LiveObjects,
		})
	}
	return rows, nil
}

// Fig1Row is one cache-ratio point of the G1 experiment.
type Fig1Row struct {
	CacheRatio  int // percent
	Completion  time.Duration
	GCCPUTime   time.Duration
	ComputeTime time.Duration
	GCShare     float64
	P9999       time.Duration
	P50         time.Duration
}

// Fig1 runs YCSB-F over a TmpFS-backed grid whose volatile cache lives in
// a managed (collected) heap, at cache ratios 1/10/100%: more cache means
// more live managed objects, more GC time, and a worse tail.
func Fig1(records, ops int, ratios []int, gcEveryMB int) ([]Fig1Row, error) {
	if ratios == nil {
		ratios = []int{1, 10, 100}
	}
	if records == 0 {
		// Large enough that marking a 100% cache dominates compute, the
		// crossover Figure 1 demonstrates.
		records = 300_000
	}
	if ops == 0 {
		ops = 150_000
	}
	if gcEveryMB == 0 {
		gcEveryMB = 2
	}
	const valSize = 1024
	var rows []Fig1Row
	for _, ratio := range ratios {
		mh := gcsim.New(uint64(gcEveryMB) << 20)
		capacity := records * ratio / 100
		cache := gcsim.NewManagedCache(mh, capacity)
		backing := make(map[string][]byte, records)
		for i := 0; i < records; i++ {
			backing[fmt.Sprintf("user%09d", i)] = make([]byte, valSize)
		}
		// Warm the cache to capacity, as Infinispan's steady state: the
		// live managed set is what every collection must traverse.
		for i := 0; i < capacity; i++ {
			k := fmt.Sprintf("user%09d", i)
			cache.Put(k, backing[k])
		}
		mh.Collect()
		base := mh.Stats()
		z := newZipfKeys(records)
		hist := &ycsb.Histogram{}
		start := time.Now()
		for i := 0; i < ops; i++ {
			key := z.next(i)
			t0 := time.Now()
			if i%2 == 0 { // read
				if _, ok := cache.Get(key); !ok {
					v := backing[key]
					// The FS unmarshal cost on a miss.
					c := make([]byte, len(v))
					copy(c, v)
					cache.Put(key, c)
				}
			} else { // read-modify-write (write-through)
				v, ok := cache.Get(key)
				if !ok {
					v = backing[key]
				}
				c := make([]byte, len(v))
				copy(c, v)
				backing[key] = c
				cache.Put(key, c)
			}
			hist.Record(time.Since(t0))
		}
		completion := time.Since(start)
		st := mh.Stats()
		gcTime := st.GCTime - base.GCTime
		rows = append(rows, Fig1Row{
			CacheRatio:  ratio,
			Completion:  completion,
			GCCPUTime:   gcTime,
			ComputeTime: completion - gcTime,
			GCShare:     float64(gcTime) / float64(completion),
			P9999:       hist.Percentile(0.9999),
			P50:         hist.Percentile(0.50),
		})
	}
	return rows, nil
}

// zipfKeys pre-renders keys for the gcsim experiments (deterministic, no
// allocation in the hot loop).
type zipfKeys struct {
	keys []string
	idx  []int
}

func newZipfKeys(n int) *zipfKeys {
	z := ycsb.NewScrambledZipfian(n)
	rng := newRand()
	zk := &zipfKeys{}
	const pre = 1 << 14
	zk.keys = make([]string, n)
	zk.idx = make([]int, pre)
	for i := range zk.idx {
		zk.idx[i] = z.Next(rng)
	}
	for i := range zk.keys {
		zk.keys[i] = fmt.Sprintf("user%09d", i)
	}
	return zk
}

func (z *zipfKeys) next(i int) string { return z.keys[z.idx[i%len(z.idx)]] }

// ---- Extension: YCSB-E (scans) ----

// ExtERow is one point of the scan extension experiment.
type ExtERow struct {
	Backend  string
	KopsSec  float64
	ScanMean time.Duration
}

// ExtE runs YCSB workload E (95% short scans, 5% inserts) over an ordered
// J-PDT backend and the volatile baseline. The paper skips E because
// Infinispan only scans through JPQL (§5.2); the ordered mirrors of §4.3.2
// make it directly supportable — this experiment is an extension beyond
// the paper.
func ExtE(sc Scale, maxScanLen int) ([]ExtERow, error) {
	if maxScanLen == 0 {
		maxScanLen = 100
	}
	var rows []ExtERow
	for _, bk := range []BackendKind{JPDT, Volatile} {
		cfg := ycsb.MustWorkload("E")
		cfg.RecordCount = sc.Records
		cfg.Operations = sc.Operations / 10 // scans touch ~50 records each
		cfg.Threads = sc.Threads
		cfg.MaxScanLen = maxScanLen
		cfg = cfg.Defaults()

		var env *Env
		if bk == JPDT {
			pool := nvm.New(EstimatePoolBytes(cfg.RecordCount*2, cfg.FieldCount, cfg.FieldLen),
				nvm.Options{FenceLatency: DefaultFenceNs})
			mgr := fa.NewManager()
			h, err := core.Open(pool, core.Config{
				HeapOptions: heap.Options{LogSlots: 16, LogSlotSize: 1 << 15},
				Classes:     append(pdt.Classes(), store.Classes()...),
				LogHandler:  mgr,
			})
			if err != nil {
				return nil, err
			}
			b, err := store.NewJPDTBackendKind(h, "kv", pdt.MirrorTree)
			if err != nil {
				return nil, err
			}
			env = &Env{Grid: store.NewGrid(b, store.Options{}), Heap: h, Pool: pool}
		} else {
			env = &Env{Grid: store.NewGrid(store.NewVolatileBackend(), store.Options{})}
		}
		if err := ycsb.Load(env.Grid, cfg); err != nil {
			env.Close()
			return nil, err
		}
		res, err := ycsb.Run(env.Grid, cfg)
		env.Close()
		if err != nil {
			return nil, err
		}
		if res.Errors != 0 {
			return nil, fmt.Errorf("ExtE %s: %d op errors", bk, res.Errors)
		}
		row := ExtERow{Backend: string(bk), KopsSec: res.Throughput() / 1000}
		if h := res.PerOp[ycsb.OpScan]; h != nil {
			row.ScanMean = h.Mean()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintExtE renders the scan-extension table.
func PrintExtE(w io.Writer, rows []ExtERow) {
	fmt.Fprintf(w, "Extension — YCSB-E short scans (not in the paper; ordered J-PDT mirror)\n")
	fmt.Fprintf(w, "%-12s%12s%16s\n", "backend", "Kops/s", "scan mean")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s%12.1f%16s\n", r.Backend, r.KopsSec, round(r.ScanMean))
	}
}
