package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/fa"
	"repro/internal/heap"
	"repro/internal/nvm"
	"repro/internal/pdt"
	"repro/internal/ycsb"
)

// Fig12Row is one bar of Figure 12: YCSB-A run directly on a data type.
type Fig12Row struct {
	Structure  string // "HashMap", "TreeMap", "SkipListMap", "Blackhole"
	Impl       string // "Volatile" or "J-PDT"
	Completion time.Duration
	ReadMean   time.Duration
	UpdateMean time.Duration
}

// kvType abstracts a string->bytes map for the Figure 12 comparison.
type kvType interface {
	get(key string) []byte
	put(key string, val []byte)
}

type volHash struct{ m map[string][]byte }

func (v *volHash) get(k string) []byte    { return v.m[k] }
func (v *volHash) put(k string, b []byte) { v.m[k] = b }

type volTree struct{ t *container.RBTree[[]byte] }

func (v *volTree) get(k string) []byte    { b, _ := v.t.Get(k); return b }
func (v *volTree) put(k string, b []byte) { v.t.Put(k, b) }

type volSkip struct{ s *container.SkipList[[]byte] }

func (v *volSkip) get(k string) []byte    { b, _ := v.s.Get(k); return b }
func (v *volSkip) put(k string, b []byte) { v.s.Put(k, b) }

type blackhole struct{ sink int }

func (b *blackhole) get(k string) []byte    { b.sink += len(k); return nil }
func (b *blackhole) put(k string, v []byte) { b.sink += len(v) }

type pdtKV struct {
	h *core.Heap
	m *pdt.Map
}

func (p *pdtKV) get(k string) []byte {
	po, err := p.m.Get(k)
	if err != nil || po == nil {
		return nil
	}
	return po.(*pdt.PBytes).Value()
}

func (p *pdtKV) put(k string, v []byte) {
	b, err := pdt.NewBytes(p.h, v)
	if err != nil {
		panic(err)
	}
	if err := p.m.Put(k, b); err != nil {
		panic(err)
	}
}

// Fig12 runs YCSB-A (50% read, 50% update, zipfian) directly on the three
// map structures, persistent (J-PDT) versus volatile, plus the Blackhole
// injection baseline. The paper's finding to reproduce: J-PDT lands
// 45-50% slower than its volatile counterpart.
func Fig12(records, ops, valLen int) ([]Fig12Row, error) {
	if records == 0 {
		records = 20_000
	}
	if ops == 0 {
		ops = 80_000
	}
	if valLen == 0 {
		valLen = 100
	}
	keys := make([]string, records)
	for i := range keys {
		keys[i] = fmt.Sprintf("user%09d", i)
	}
	val := make([]byte, valLen)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	z := ycsb.NewScrambledZipfian(records)
	rng := newRand()
	idx := make([]int, 1<<15)
	reads := make([]bool, len(idx))
	for i := range idx {
		idx[i] = z.Next(rng)
		reads[i] = rng.Intn(2) == 0
	}

	newPDT := func(kind pdt.MirrorKind) (kvType, error) {
		pool := nvm.New(EstimatePoolBytes(records, 1, valLen)+records*512,
			nvm.Options{FenceLatency: DefaultFenceNs})
		h, err := core.Open(pool, core.Config{
			HeapOptions: heap.Options{LogSlots: 4, LogSlotSize: 1 << 14},
			Classes:     pdt.Classes(),
			LogHandler:  fa.NewManager(),
		})
		if err != nil {
			return nil, err
		}
		m, err := pdt.NewMap(h, kind)
		if err != nil {
			return nil, err
		}
		if err := h.Root().Put("kv", m); err != nil {
			return nil, err
		}
		return &pdtKV{h: h, m: m}, nil
	}

	type variant struct {
		structure string
		impl      string
		build     func() (kvType, error)
	}
	variants := []variant{
		{"Blackhole", "-", func() (kvType, error) { return &blackhole{}, nil }},
		{"HashMap", "Volatile", func() (kvType, error) { return &volHash{m: make(map[string][]byte)}, nil }},
		{"HashMap", "J-PDT", func() (kvType, error) { return newPDT(pdt.MirrorHash) }},
		{"TreeMap", "Volatile", func() (kvType, error) { return &volTree{t: container.NewRBTree[[]byte]()}, nil }},
		{"TreeMap", "J-PDT", func() (kvType, error) { return newPDT(pdt.MirrorTree) }},
		{"SkipListMap", "Volatile", func() (kvType, error) { return &volSkip{s: container.NewSkipList[[]byte](7)}, nil }},
		{"SkipListMap", "J-PDT", func() (kvType, error) { return newPDT(pdt.MirrorSkip) }},
	}

	var rows []Fig12Row
	for _, v := range variants {
		kv, err := v.build()
		if err != nil {
			return nil, err
		}
		if v.structure != "Blackhole" {
			for _, k := range keys {
				kv.put(k, val)
			}
		}
		var readHist, updHist ycsb.Histogram
		start := time.Now()
		for i := 0; i < ops; i++ {
			j := i % len(idx)
			key := keys[idx[j]]
			t0 := time.Now()
			if reads[j] {
				kv.get(key)
				readHist.Record(time.Since(t0))
			} else {
				kv.put(key, val)
				updHist.Record(time.Since(t0))
			}
		}
		rows = append(rows, Fig12Row{
			Structure:  v.structure,
			Impl:       v.impl,
			Completion: time.Since(start),
			ReadMean:   readHist.Mean(),
			UpdateMean: updHist.Mean(),
		})
	}
	return rows, nil
}

// PrintFig12 renders the Figure 12 comparison.
func PrintFig12(w io.Writer, rows []Fig12Row) {
	fmt.Fprintf(w, "Figure 12 — persistent vs volatile data types (YCSB-A)\n")
	fmt.Fprintf(w, "%-14s%-10s%14s%14s%14s\n", "structure", "impl", "completion", "read", "update")
	byStruct := map[string]map[string]time.Duration{}
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s%-10s%14s%14s%14s\n", r.Structure, r.Impl,
			round(r.Completion), round(r.ReadMean), round(r.UpdateMean))
		if byStruct[r.Structure] == nil {
			byStruct[r.Structure] = map[string]time.Duration{}
		}
		byStruct[r.Structure][r.Impl] = r.Completion
	}
	for _, s := range []string{"HashMap", "TreeMap", "SkipListMap"} {
		m := byStruct[s]
		if m["Volatile"] > 0 && m["J-PDT"] > 0 {
			slow := float64(m["J-PDT"])/float64(m["Volatile"]) - 1
			fmt.Fprintf(w, "# %s: J-PDT %.0f%% slower than volatile (paper: 45-50%%)\n", s, slow*100)
		}
	}
}
