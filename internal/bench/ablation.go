package bench

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fa"
	"repro/internal/heap"
	"repro/internal/nvm"
	"repro/internal/pdt"
)

// Ablations isolate the design choices DESIGN.md calls out: the deferred
// validation of §3.2.3, the small-object pools of §4.4, the per-thread
// redo-log slots of §4.2, and the sensitivity of J-PDT to the NVMM fence
// cost.

// AblationRow is one (variant, metric) measurement.
type AblationRow struct {
	Experiment string
	Variant    string
	NsPerOp    float64
	Aux        float64 // experiment-specific (blocks used, Kops/s, ...)
	AuxName    string
}

func ablationHeap(fenceNs int, bytes int) (*core.Heap, *fa.Manager, error) {
	pool := nvm.New(bytes, nvm.Options{FenceLatency: fenceNs})
	mgr := fa.NewManager()
	h, err := core.Open(pool, core.Config{
		HeapOptions: heap.Options{LogSlots: 64, LogSlotSize: 1 << 14},
		Classes:     pdt.Classes(),
		LogHandler:  mgr,
	})
	return h, mgr, err
}

// AblationValidation compares publishing n fresh objects with one fence
// per object against the deferred-validation discipline of §3.2.3 (batch
// of validations under a single fence).
func AblationValidation(n int, fenceNs int) ([]AblationRow, error) {
	if n == 0 {
		n = 20_000
	}
	if fenceNs == 0 {
		fenceNs = DefaultFenceNs
	}
	run := func(batch int) (time.Duration, error) {
		h, _, err := ablationHeap(fenceNs, n*320+(16<<20))
		if err != nil {
			return 0, err
		}
		arr, err := pdt.NewRefArray(h, n)
		if err != nil {
			return 0, err
		}
		arr.Validate()
		h.PSync()
		cls := h.MustClass(pdt.ClassBytes)
		start := time.Now()
		for i := 0; i < n; i += batch {
			for j := i; j < i+batch && j < n; j++ {
				po, err := h.Alloc(cls, 64)
				if err != nil {
					return 0, err
				}
				po.Core().WriteUint32(0, 60)
				po.Core().PWB()
				po.Core().Validate() // flushed, unfenced
				arr.Core().WriteRef(uint64(j)*8, po.Core().Ref())
			}
			arr.PWB()
			h.PFence() // one fence publishes the whole batch (Figure 5)
		}
		return time.Since(start), nil
	}
	var rows []AblationRow
	for _, batch := range []int{1, 8, 64, 512} {
		d, err := run(batch)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Experiment: "validation-batching",
			Variant:    fmt.Sprintf("batch=%d", batch),
			NsPerOp:    float64(d.Nanoseconds()) / float64(n),
			Aux:        float64(n) / d.Seconds() / 1000,
			AuxName:    "Kpub/s",
		})
	}
	return rows, nil
}

// AblationSmallPool compares pool-allocated small immutable objects (§4.4)
// against one-block-per-object allocation, in both time and space.
func AblationSmallPool(n int, payload int) ([]AblationRow, error) {
	if n == 0 {
		n = 50_000
	}
	if payload == 0 {
		payload = 100 // a YCSB field value
	}
	var rows []AblationRow
	for _, pooled := range []bool{true, false} {
		h, _, err := ablationHeap(0, n*heap.BlockSize*2+(16<<20))
		if err != nil {
			return nil, err
		}
		cls := h.MustClass(pdt.ClassBytes)
		before, _, _ := h.Mem().Stats()
		start := time.Now()
		for i := 0; i < n; i++ {
			var po core.PObject
			var err error
			if pooled {
				po, err = h.AllocSmall(cls, uint64(payload)+4)
			} else {
				po, err = h.Alloc(cls, uint64(payload)+4)
			}
			if err != nil {
				return nil, err
			}
			po.Core().WriteUint32(0, uint32(payload))
			po.Core().Validate()
		}
		d := time.Since(start)
		after, _, _ := h.Mem().Stats()
		variant := "whole-block"
		if pooled {
			variant = "pooled"
		}
		rows = append(rows, AblationRow{
			Experiment: "small-object-pools",
			Variant:    variant,
			NsPerOp:    float64(d.Nanoseconds()) / float64(n),
			Aux:        float64(after-before) * heap.BlockSize / float64(n),
			AuxName:    "bytes/obj",
		})
	}
	return rows, nil
}

// AblationLogSlots measures concurrent failure-atomic throughput as the
// number of log slots (the paper's per-thread logs) varies.
func AblationLogSlots(opsPerWorker, workers int) ([]AblationRow, error) {
	if opsPerWorker == 0 {
		opsPerWorker = 2_000
	}
	if workers == 0 {
		workers = 8
	}
	var rows []AblationRow
	for _, slots := range []int{1, 2, 8, 64} {
		pool := nvm.New(64<<20, nvm.Options{FenceLatency: DefaultFenceNs})
		mgr := fa.NewManager()
		h, err := core.Open(pool, core.Config{
			HeapOptions: heap.Options{LogSlots: slots, LogSlotSize: 1 << 14},
			Classes:     pdt.Classes(),
			LogHandler:  mgr,
		})
		if err != nil {
			return nil, err
		}
		// One counter object per worker: no data conflicts, only log-slot
		// contention.
		counters := make([]*core.Object, workers)
		cls := h.MustClass(pdt.ClassLongArr)
		for w := range counters {
			po, err := h.Alloc(cls, 16)
			if err != nil {
				return nil, err
			}
			po.Core().PWB()
			po.Core().Validate()
			counters[w] = po.Core()
		}
		h.PSync()
		start := time.Now()
		var wg sync.WaitGroup
		errCh := make(chan error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				o := counters[w]
				for i := 0; i < opsPerWorker; i++ {
					err := func() error {
						tx, err := mgr.Begin()
						for err != nil { // wait until a slot frees up
							runtime.Gosched()
							tx, err = mgr.Begin()
						}
						v, err := tx.ReadUint64(o, 8)
						if err != nil {
							tx.Abort()
							return err
						}
						if err := tx.WriteUint64(o, 8, v+1); err != nil {
							tx.Abort()
							return err
						}
						return tx.Commit()
					}()
					if err != nil {
						errCh <- err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			return nil, err
		}
		d := time.Since(start)
		total := opsPerWorker * workers
		rows = append(rows, AblationRow{
			Experiment: "log-slots",
			Variant:    fmt.Sprintf("slots=%d", slots),
			NsPerOp:    float64(d.Nanoseconds()) / float64(total),
			Aux:        float64(total) / d.Seconds() / 1000,
			AuxName:    "Kops/s",
		})
	}
	return rows, nil
}

// AblationFenceCost sweeps the modeled NVMM fence latency and reports the
// J-PDT map update cost — how the headline results would move on faster
// or slower persistent memory generations.
func AblationFenceCost(n int) ([]AblationRow, error) {
	if n == 0 {
		n = 20_000
	}
	var rows []AblationRow
	for _, fenceNs := range []int{0, 60, 120, 500, 2000} {
		h, _, err := ablationHeap(fenceNs, n*640+(32<<20))
		if err != nil {
			return nil, err
		}
		m, err := pdt.NewMap(h, pdt.MirrorHash)
		if err != nil {
			return nil, err
		}
		if err := h.Root().Put("m", m); err != nil {
			return nil, err
		}
		val := make([]byte, 100)
		keys := make([]string, 256)
		for i := range keys {
			keys[i] = fmt.Sprintf("k%03d", i)
		}
		for _, k := range keys {
			b, err := pdt.NewBytes(h, val)
			if err != nil {
				return nil, err
			}
			if err := m.Put(k, b); err != nil {
				return nil, err
			}
		}
		start := time.Now()
		for i := 0; i < n; i++ {
			b, err := pdt.NewBytes(h, val)
			if err != nil {
				return nil, err
			}
			if err := m.Put(keys[i%len(keys)], b); err != nil {
				return nil, err
			}
		}
		d := time.Since(start)
		rows = append(rows, AblationRow{
			Experiment: "fence-cost",
			Variant:    fmt.Sprintf("fence=%dns", fenceNs),
			NsPerOp:    float64(d.Nanoseconds()) / float64(n),
			Aux:        float64(n) / d.Seconds() / 1000,
			AuxName:    "Kupd/s",
		})
	}
	return rows, nil
}

// PrintAblation renders ablation rows.
func PrintAblation(w io.Writer, rows []AblationRow) {
	last := ""
	for _, r := range rows {
		if r.Experiment != last {
			fmt.Fprintf(w, "Ablation — %s\n", r.Experiment)
			last = r.Experiment
		}
		fmt.Fprintf(w, "  %-16s%12.0f ns/op%12.1f %s\n", r.Variant, r.NsPerOp, r.Aux, r.AuxName)
	}
}
