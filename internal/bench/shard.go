package bench

import (
	"fmt"
	"io"

	"repro/internal/obs"
	"repro/internal/ycsb"
)

// ---- DESIGN.md §17: multi-pool heap scaling sweep ----

// ShardRow is one (workload, backend, pool count) throughput point of the
// heap-sharding experiment. Pools == 1 runs the classic single-pool stack
// (not a one-pool Set), so the first row of a sweep is directly comparable
// with the committed BENCH_baseline.json numbers.
type ShardRow struct {
	Workload    string      `json:"workload"`
	Backend     BackendKind `json:"backend"`
	Pools       int         `json:"pools"`
	Threads     int         `json:"threads"`
	KopsSec     float64     `json:"kops_sec"`
	Errors      uint64      `json:"errors"`
	PWBPerOp    float64     `json:"pwb_per_op"`
	PFencePerOp float64     `json:"pfence_per_op"`
	// OccupancyPct is the per-pool allocator occupancy after the run,
	// in pool order; a single-pool run reports one entry. Balanced
	// entries are the sweep's evidence that jump hashing spreads the
	// dataset evenly (§17.2).
	OccupancyPct []float64 `json:"occupancy_pct"`
	// FallbackInserts counts inserts diverted off a full home pool;
	// non-zero means the per-pool headroom was undersized for the skew.
	FallbackInserts uint64 `json:"fallback_inserts"`
	// Stack is the full run-interval metrics snapshot, embedded in JSON
	// result files.
	Stack *obs.StackSnapshot `json:"stack,omitempty"`
}

// ShardSweep runs one YCSB workload over the same backend at each pool
// count. Per-thread work is held constant at sc.Operations so the sweep
// isolates the contention axis: with the J-NVM backends every pool owns
// its allocator, redo-log manager, and backend mutex, so more pools means
// fewer threads colliding on each.
func ShardSweep(sc Scale, bk BackendKind, workload string, poolCounts []int) ([]ShardRow, error) {
	if poolCounts == nil {
		poolCounts = []int{1, 4, 8}
	}
	var rows []ShardRow
	for _, np := range poolCounts {
		if np < 1 {
			return nil, fmt.Errorf("bench: pool count %d", np)
		}
		cfg := ycsb.MustWorkload(workload)
		cfg.RecordCount = sc.Records
		cfg.Operations = sc.Operations * sc.Threads // constant per-thread work
		cfg.Threads = sc.Threads
		cfg = cfg.Defaults()
		env, err := NewEnv(GridConfig{
			Backend: bk, Records: cfg.RecordCount * 2,
			FieldCount: cfg.FieldCount, FieldLen: cfg.FieldLen,
			Commit: sc.Commit,
			Pools:  np,
		})
		if err != nil {
			return nil, err
		}
		// Load single-threaded regardless of the run's client count:
		// concurrent inserts contend on shared map-slot blocks (the run
		// phase's read/update mix is what the stripe locks cover).
		loadCfg := cfg
		loadCfg.Threads = 1
		if err := ycsb.Load(env.Grid, loadCfg); err != nil {
			env.Close()
			return nil, fmt.Errorf("load %s/%s/%dp: %w", workload, bk, np, err)
		}
		before := env.Snapshot()
		res, err := ycsb.Run(env.Grid, cfg)
		env.DrainDurable()
		after := env.Snapshot()
		stack := after.Sub(*before)
		env.Close()
		if err != nil {
			return nil, fmt.Errorf("run %s/%s/%dp: %w", workload, bk, np, err)
		}
		row := ShardRow{
			Workload: workload, Backend: bk, Pools: np, Threads: cfg.Threads,
			KopsSec: res.Throughput() / 1000, Errors: res.Errors,
			PWBPerOp: stack.PWBPerOp, PFencePerOp: stack.PFencePerOp,
			Stack: &stack,
		}
		// Occupancy is a gauge, so it comes from the end-of-run snapshot,
		// not the interval diff.
		if after.Shard != nil {
			row.FallbackInserts = after.Shard.FallbackInserts
			for _, p := range after.Shard.PerPool {
				row.OccupancyPct = append(row.OccupancyPct, p.OccupancyPct)
			}
		} else if h := after.Heap; h != nil && h.TotalBlocks > 0 {
			row.OccupancyPct = []float64{100 * float64(h.Bump-h.FreeBlocks) / float64(h.TotalBlocks)}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintShard renders the pool-count sweep.
func PrintShard(w io.Writer, rows []ShardRow) {
	fmt.Fprintf(w, "Heap sharding — YCSB throughput vs pool count (DESIGN.md §17)\n")
	fmt.Fprintf(w, "%-10s%-10s%7s%9s%12s%10s%10s  %s\n",
		"workload", "backend", "pools", "threads", "Kops/s", "pwb/op", "pfence/op", "occupancy%")
	for _, r := range rows {
		occ := ""
		for i, o := range r.OccupancyPct {
			if i > 0 {
				occ += " "
			}
			occ += fmt.Sprintf("%.1f", o)
		}
		fmt.Fprintf(w, "%-10s%-10s%7d%9d%12.1f%10.2f%10.2f  [%s]\n",
			r.Workload, r.Backend, r.Pools, r.Threads, r.KopsSec, r.PWBPerOp, r.PFencePerOp, occ)
		if r.FallbackInserts > 0 {
			fmt.Fprintf(w, "%-10s  (%d fallback inserts — home pools ran full)\n", "", r.FallbackInserts)
		}
	}
}
