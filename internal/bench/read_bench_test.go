package bench

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/nvm"
	"repro/internal/pdt"
	"repro/internal/store"
	"repro/internal/ycsb"
)

// Read-path allocation benchmarks (DESIGN.md §14): run with
// `make bench-read` (or `go test ./internal/bench -bench 'MapGet|GridRead'
// -benchmem`). scripts/check_allocs.sh gates the allocation-free variants
// in CI.

const mapBenchEntries = 4096

// benchKeys pre-renders the key set so key formatting never pollutes the
// measured allocation counts.
func benchKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = ycsb.Key(i)
	}
	return keys
}

func newBenchHeap(tb testing.TB) *core.Heap {
	tb.Helper()
	pool := nvm.New(256<<20, nvm.Options{})
	h, err := core.Open(pool, core.Config{
		HeapOptions: heap.Options{LogSlots: 8, LogSlotSize: 1 << 12},
		Classes:     append(pdt.Classes(), store.Classes()...),
	})
	if err != nil {
		tb.Fatal(err)
	}
	return h
}

func buildBenchMap(tb testing.TB, h *core.Heap, kind pdt.MirrorKind) *pdt.Map {
	tb.Helper()
	m, err := pdt.NewMap(h, kind)
	if err != nil {
		tb.Fatal(err)
	}
	if err := h.Root().Put(fmt.Sprintf("bench.map.%d", kind), m); err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < mapBenchEntries; i++ {
		v, err := pdt.NewString(h, fmt.Sprintf("value-%d", i))
		if err != nil {
			tb.Fatal(err)
		}
		if err := m.Put(ycsb.Key(i), v); err != nil {
			tb.Fatal(err)
		}
	}
	return m
}

// BenchmarkMapGet covers the J-PDT map read path across every mirror kind
// and proxy-cache variant, plus the allocation-free GetRef fast path the
// grid's zero-copy reader uses. CacheNone Get resurrects a proxy per call
// and therefore allocates by design; the cached variants and GetRef must
// not.
func BenchmarkMapGet(b *testing.B) {
	kinds := []struct {
		name string
		kind pdt.MirrorKind
	}{
		{"hash", pdt.MirrorHash},
		{"tree", pdt.MirrorTree},
		{"skip", pdt.MirrorSkip},
	}
	for _, k := range kinds {
		h := newBenchHeap(b)
		m := buildBenchMap(b, h, k.kind)
		modes := []struct {
			name  string
			setup func() error
		}{
			{"base", func() error { return m.SetCacheMode(pdt.CacheNone) }},
			{"cached", func() error { return m.SetCacheMode(pdt.CacheOnDemand) }},
			{"eager", func() error { return m.SetCacheMode(pdt.CacheEager) }},
		}
		keys := benchKeys(mapBenchEntries)
		for _, mode := range modes {
			b.Run(k.name+"/"+mode.name, func(b *testing.B) {
				if err := mode.setup(); err != nil {
					b.Fatal(err)
				}
				// Warm pass: fills the on-demand proxy cache so the
				// measured loop reports its steady state.
				for _, key := range keys {
					if _, err := m.Get(key); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					po, err := m.Get(keys[i%mapBenchEntries])
					if err != nil || po == nil {
						b.Fatal("miss")
					}
				}
			})
		}
		b.Run(k.name+"/getref", func(b *testing.B) {
			if err := m.SetCacheMode(pdt.CacheNone); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if m.GetRef(keys[i%mapBenchEntries]) == 0 {
					b.Fatal("miss")
				}
			}
		})
	}
}

const gridBenchRecords = 2048

func newBenchGrid(b *testing.B, backend BackendKind, cacheEntries, fieldLen int) *Env {
	b.Helper()
	env, err := NewEnv(GridConfig{
		Backend: backend, Records: gridBenchRecords * 2,
		FieldCount: 10, FieldLen: fieldLen,
		CacheEntries: cacheEntries,
		FenceNs:      0, // default
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg := ycsb.Config{RecordCount: gridBenchRecords, FieldCount: 10, FieldLen: fieldLen}.Defaults()
	if err := ycsb.Load(env.Grid, cfg); err != nil {
		b.Fatal(err)
	}
	return env
}

func benchGridRead(b *testing.B, g *store.Grid, span int) {
	b.Helper()
	keys := benchKeys(span)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.Read(keys[i%span], func(string, []byte) {}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGridRead covers the five grid read regimes: the seqlock
// zero-copy fast path (no cache, must be allocation-free), the lock-free
// EBR-pinned read of the J-PDT-LF backend (also allocation-free, no
// stripe locks or seqlock generations at all), the locked copy fallback
// (chained values defeat the view reader), and record-cache hits and
// misses.
func BenchmarkGridRead(b *testing.B) {
	b.Run("zerocopy", func(b *testing.B) {
		env := newBenchGrid(b, JPDT, 0, 100)
		defer env.Close()
		benchGridRead(b, env.Grid, gridBenchRecords)
		if hits := env.Grid.ObsSnapshot().ZeroCopyHits; hits == 0 {
			b.Fatal("zero-copy path never taken")
		}
	})
	b.Run("lockfree", func(b *testing.B) {
		env := newBenchGrid(b, JPDTLF, 0, 100)
		defer env.Close()
		benchGridRead(b, env.Grid, gridBenchRecords)
		if lfr := env.Grid.ObsSnapshot().LockFreeReads; lfr == 0 {
			b.Fatal("lock-free read path never taken")
		}
	})
	b.Run("copyfallback", func(b *testing.B) {
		// 400-byte values span blocks, which the unlocked view reader
		// refuses; every read falls back to the stripe lock.
		env := newBenchGrid(b, JPDT, 0, 400)
		defer env.Close()
		benchGridRead(b, env.Grid, gridBenchRecords)
		if fb := env.Grid.ObsSnapshot().CopyFallbacks; fb == 0 {
			b.Fatal("copy fallback never taken")
		}
	})
	b.Run("cachehit", func(b *testing.B) {
		env := newBenchGrid(b, JPDT, gridBenchRecords*2, 100)
		defer env.Close()
		// One warmup pass so every benchmark read hits the cache.
		for i := 0; i < gridBenchRecords; i++ {
			if err := env.Grid.Read(ycsb.Key(i), func(string, []byte) {}); err != nil {
				b.Fatal(err)
			}
		}
		benchGridRead(b, env.Grid, gridBenchRecords)
	})
	b.Run("cachemiss", func(b *testing.B) {
		// A cache far smaller than the keyspace keeps the hit rate near
		// zero while still exercising the fill path.
		env := newBenchGrid(b, JPDT, 128, 100)
		defer env.Close()
		benchGridRead(b, env.Grid, gridBenchRecords)
	})
}
