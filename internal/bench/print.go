package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/tpcb"
)

// PrintFig7 renders the Figure 7 table (Kops/s per workload x backend).
func PrintFig7(w io.Writer, rows []Fig7Row) {
	backends := orderedBackends(len(rows))
	fmt.Fprintf(w, "Figure 7 — YCSB throughput (Kops/s)\n")
	fmt.Fprintf(w, "%-10s", "workload")
	for _, b := range backends {
		fmt.Fprintf(w, "%12s", b)
	}
	fmt.Fprintln(w)
	byWL := map[string]map[BackendKind]float64{}
	var wls []string
	for _, r := range rows {
		if byWL[r.Workload] == nil {
			byWL[r.Workload] = map[BackendKind]float64{}
			wls = append(wls, r.Workload)
		}
		byWL[r.Workload][r.Backend] = r.KopsSec
	}
	for _, wl := range wls {
		fmt.Fprintf(w, "%-10s", wl)
		for _, b := range backends {
			fmt.Fprintf(w, "%12.1f", byWL[wl][b])
		}
		fmt.Fprintln(w)
	}
	if jp, fs := byWL["A"][JPDT], byWL["A"][FS]; fs > 0 {
		fmt.Fprintf(w, "# YCSB-A: J-PDT/FS speedup = %.1fx", jp/fs)
		if pcj := byWL["A"][PCJ]; pcj > 0 {
			fmt.Fprintf(w, ", J-PDT/PCJ = %.1fx", jp/pcj)
		}
		if jf := byWL["A"][JPFA]; jf > 0 {
			fmt.Fprintf(w, ", J-PDT/J-PFA = %.2fx", jp/jf)
		}
		fmt.Fprintln(w)
	}
	// Persistence-primitive rates per operation, from the shared obs layer
	// (the accounting Table 3 does per data-structure op). NVMM-backed
	// backends only; the FS family never issues pwb/pfence.
	printed := false
	for _, r := range rows {
		if r.PWBPerOp == 0 && r.PFencePerOp == 0 {
			continue
		}
		if !printed {
			fmt.Fprintf(w, "# persistence per op: %-10s%-10s%10s%10s%14s%12s\n",
				"workload", "backend", "pwb/op", "pfence/op", "coalesced/op", "warm-tx%")
			printed = true
		}
		// Commit-pipeline columns: lines the FA flush set coalesced away
		// and the share of Begins served by a warm cached transaction.
		var coalescedPerOp, warmPct float64
		if r.Stack != nil && r.Stack.FA != nil {
			if r.Stack.Ops > 0 {
				coalescedPerOp = float64(r.Stack.FA.SavedLines) / float64(r.Stack.Ops)
			}
			if r.Stack.FA.Begun > 0 {
				warmPct = 100 * float64(r.Stack.FA.TxReuse) / float64(r.Stack.FA.Begun)
			}
		}
		fmt.Fprintf(w, "#                     %-10s%-10s%10.2f%10.2f%14.2f%12.1f\n",
			r.Workload, r.Backend, r.PWBPerOp, r.PFencePerOp, coalescedPerOp, warmPct)
	}
	// Cross-layer drill-down for the headline cell (YCSB-A on J-PDT),
	// straight from the shared obs reporter.
	for _, r := range rows {
		if r.Workload == "A" && r.Backend == JPDT && r.Stack != nil {
			fmt.Fprintf(w, "# YCSB-A / %s cross-layer detail:\n", JPDT)
			r.Stack.Report(w)
			break
		}
	}
}

func orderedBackends(int) []BackendKind {
	return []BackendKind{JPDT, JPFA, FS, PCJ}
}

// PrintFig8 renders the Figure 8 series (completion time vs record size).
func PrintFig8(w io.Writer, rows []Fig8Row) {
	fmt.Fprintf(w, "Figure 8 — marshalling cost: YCSB-A completion time\n")
	fmt.Fprintf(w, "%-10s%12s%12s%12s%12s\n", "recordKB", Volatile, NullFS, TmpFS, FS)
	bySize := map[int]map[BackendKind]time.Duration{}
	var sizes []int
	for _, r := range rows {
		if bySize[r.RecordKB] == nil {
			bySize[r.RecordKB] = map[BackendKind]time.Duration{}
			sizes = append(sizes, r.RecordKB)
		}
		bySize[r.RecordKB][r.Backend] = r.Completion
	}
	for _, s := range sizes {
		m := bySize[s]
		fmt.Fprintf(w, "%-10d%12s%12s%12s%12s\n", s,
			round(m[Volatile]), round(m[NullFS]), round(m[TmpFS]), round(m[FS]))
	}
}

// PrintFig9 renders one Figure 9 sensitivity series.
func PrintFig9(w io.Writer, title string, rows []Fig9Row) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-10s%-8s%16s%16s%16s%16s\n", "knob", "value",
		"read(J-PDT)", "update(J-PDT)", "read(FS)", "update(FS)")
	type pair struct{ jp, fs Fig9Row }
	byVal := map[int]*pair{}
	var vals []int
	for _, r := range rows {
		p := byVal[r.Value]
		if p == nil {
			p = &pair{}
			byVal[r.Value] = p
			vals = append(vals, r.Value)
		}
		if r.Backend == JPDT {
			p.jp = r
		} else {
			p.fs = r
		}
	}
	for _, v := range vals {
		p := byVal[v]
		fmt.Fprintf(w, "%-10s%-8d%16s%16s%16s%16s\n", p.jp.Knob, v,
			round(p.jp.Read), round(p.jp.Update), round(p.fs.Read), round(p.fs.Update))
	}
}

// PrintFig10 renders the thread-scaling table.
func PrintFig10(w io.Writer, rows []Fig10Row) {
	fmt.Fprintf(w, "Figure 10 — multi-threaded throughput (Kops/s)\n")
	fmt.Fprintf(w, "%-10s%-9s%12s%12s%12s\n", "workload", "threads", JPDT, FS, Volatile)
	type key struct {
		wl string
		th int
	}
	cells := map[key]map[BackendKind]float64{}
	var keys []key
	for _, r := range rows {
		k := key{r.Workload, r.Threads}
		if cells[k] == nil {
			cells[k] = map[BackendKind]float64{}
			keys = append(keys, k)
		}
		cells[k][r.Backend] = r.KopsSec
	}
	for _, k := range keys {
		m := cells[k]
		fmt.Fprintf(w, "%-10s%-9d%12.1f%12.1f%12.1f\n", k.wl, k.th, m[JPDT], m[FS], m[Volatile])
	}
}

// PrintFig11 renders the recovery timelines.
func PrintFig11(w io.Writer, tls []*tpcb.Timeline) {
	fmt.Fprintf(w, "Figure 11 — TPC-B recovery\n")
	fmt.Fprintf(w, "%-12s%16s%18s%18s\n", "system", "restart delay", "Kops/s before", "Kops/s after")
	for _, tl := range tls {
		fmt.Fprintf(w, "%-12s%16s%18.1f%18.1f\n", tl.System,
			round(tl.RestartDelay), tl.NominalBefore()/1000, tl.NominalAfter()/1000)
	}
	for _, tl := range tls {
		fmt.Fprintf(w, "\n# timeline %s (ops per bucket):\n", tl.System)
		var b strings.Builder
		for i, p := range tl.Points {
			if i%8 == 0 && i > 0 {
				b.WriteString("\n")
			}
			fmt.Fprintf(&b, "%6.2fs:%-7d", p.T.Seconds(), p.Ops)
		}
		fmt.Fprintln(w, b.String())
	}
}

// PrintFig1 renders the G1 cache-ratio table.
func PrintFig1(w io.Writer, rows []Fig1Row) {
	fmt.Fprintf(w, "Figure 1 — managed-cache ratio vs GC cost and tail latency (YCSB-F)\n")
	fmt.Fprintf(w, "%-8s%14s%14s%14s%10s%12s%12s\n",
		"cache%", "completion", "gc", "compute", "gc%", "p50", "p99.99")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8d%14s%14s%14s%9.1f%%%12s%12s\n", r.CacheRatio,
			round(r.Completion), round(r.GCCPUTime), round(r.ComputeTime),
			r.GCShare*100, round(r.P50), round(r.P9999))
	}
}

// PrintFig2 renders the go-pmem dataset sweep.
func PrintFig2(w io.Writer, rows []Fig2Row) {
	fmt.Fprintf(w, "Figure 2 — go-pmem-style GC vs persistent dataset size (YCSB-F)\n")
	fmt.Fprintf(w, "%-10s%14s%14s%14s%10s%8s%12s\n",
		"dataset", "completion", "gc", "compute", "gc%", "GCs", "live objs")
	for _, r := range rows {
		fmt.Fprintf(w, "%-9dM%14s%14s%14s%9.1f%%%8d%12d\n", r.DatasetMB,
			round(r.Completion), round(r.GCCPUTime), round(r.ComputeTime),
			r.GCShare*100, r.Collections, r.LiveObjects)
	}
	if len(rows) >= 2 {
		first, last := rows[0], rows[len(rows)-1]
		fmt.Fprintf(w, "# completion blow-up %.1fx (paper: 3.4x); final GC share %.0f%% (paper: 67%%)\n",
			float64(last.Completion)/float64(first.Completion), last.GCShare*100)
	}
}

// PrintTable3 renders the block-bandwidth table with the flush/fence rates
// each cell measured through the shared obs layer.
func PrintTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintf(w, "Table 3 — 256B block access (GB/s)\n")
	fmt.Fprintf(w, "%-10s%14s%14s%14s%14s\n", "", "seq read", "seq write", "rand read", "rand write")
	cell := map[string]map[string]Table3Row{"J-NVM": {}, "native": {}}
	for _, r := range rows {
		key := "rand"
		if r.Sequential {
			key = "seq"
		}
		if r.Write {
			key += " write"
		} else {
			key += " read"
		}
		cell[r.Path][key] = r
	}
	for _, p := range []string{"J-NVM", "native"} {
		m := cell[p]
		fmt.Fprintf(w, "%-10s%14.2f%14.2f%14.2f%14.2f\n", p,
			m["seq read"].GBps, m["seq write"].GBps, m["rand read"].GBps, m["rand write"].GBps)
	}
	for _, p := range []string{"J-NVM", "native"} {
		sw, rw := cell[p]["seq write"], cell[p]["rand write"]
		fmt.Fprintf(w, "# %-8s writes: %.2f pwb + %.2f pfence per block (seq), %.2f + %.2f (rand)\n",
			p, sw.PWBPerOp, sw.PFencePerOp, rw.PWBPerOp, rw.PFencePerOp)
	}
}

func round(d time.Duration) time.Duration { return d.Round(10 * time.Nanosecond) }
