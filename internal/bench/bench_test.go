package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/fa"
	"repro/internal/ycsb"
)

// tiny is a scale that makes every experiment run in well under a second.
func tiny() Scale { return Scale{Records: 400, Operations: 1200, Threads: 1} }

func TestEnvBackends(t *testing.T) {
	for _, bk := range []BackendKind{JPDT, JPFA, PCJ, FS, TmpFS, NullFS, Volatile} {
		t.Run(string(bk), func(t *testing.T) {
			env, err := NewEnv(GridConfig{Backend: bk, Records: 100, FieldCount: 10, FieldLen: 100, FenceNs: 1})
			if err != nil {
				t.Fatal(err)
			}
			defer env.Close()
			cfg := ycsb.MustWorkload("A")
			cfg.RecordCount, cfg.Operations = 100, 300
			cfg = cfg.Defaults()
			if err := ycsb.Load(env.Grid, cfg); err != nil {
				t.Fatal(err)
			}
			res, err := ycsb.Run(env.Grid, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Errors != 0 {
				t.Fatalf("%d errors", res.Errors)
			}
		})
	}
}

func TestFig7ShapeAndPrint(t *testing.T) {
	rows, err := Fig7(tiny(), []BackendKind{JPDT, JPFA, FS, PCJ})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5*4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Shape assertions from the paper: J-PDT beats FS and PCJ on every
	// workload; J-PDT >= J-PFA.
	byKey := map[string]float64{}
	for _, r := range rows {
		if r.Errors != 0 {
			t.Fatalf("%s/%s had %d errors", r.Workload, r.Backend, r.Errors)
		}
		byKey[r.Workload+string(r.Backend)] = r.KopsSec
	}
	for _, w := range []string{"A", "B", "C", "F"} {
		if byKey[w+string(JPDT)] <= byKey[w+string(FS)] {
			t.Errorf("workload %s: J-PDT (%f) not faster than FS (%f)",
				w, byKey[w+string(JPDT)], byKey[w+string(FS)])
		}
		if byKey[w+string(JPDT)] <= byKey[w+string(PCJ)] {
			t.Errorf("workload %s: J-PDT not faster than PCJ", w)
		}
	}
	var buf bytes.Buffer
	PrintFig7(&buf, rows)
	if !strings.Contains(buf.String(), "speedup") {
		t.Fatalf("print output:\n%s", buf.String())
	}
}

func TestFig8Shape(t *testing.T) {
	rows, err := Fig8(tiny(), []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Figure 8's robust shape: FS (real files + marshalling) is slower
	// than Volatile at every size. The in-memory marshalling backends
	// are only separable at real scale, so they are logged, not asserted,
	// at this test's tiny scale.
	byKey := map[string]time.Duration{}
	for _, r := range rows {
		byKey[string(r.Backend)+string(rune('0'+r.RecordKB))] = r.Completion
	}
	for _, kb := range []int{1, 4} {
		v := byKey[string(Volatile)+string(rune('0'+kb))]
		if fs := byKey[string(FS)+string(rune('0'+kb))]; fs < v {
			t.Errorf("%dKB: FS (%v) beat Volatile (%v)", kb, fs, v)
		}
		for _, bk := range []BackendKind{NullFS, TmpFS} {
			if d := byKey[string(bk)+string(rune('0'+kb))]; d < v {
				t.Logf("%dKB: %s (%v) under Volatile (%v) at tiny scale (noise)", kb, bk, d, v)
			}
		}
	}
	var buf bytes.Buffer
	PrintFig8(&buf, rows)
	if !strings.Contains(buf.String(), "recordKB") {
		t.Fatal("print output broken")
	}
}

func TestFig9Sweeps(t *testing.T) {
	sc := tiny()
	t.Run("a", func(t *testing.T) {
		rows, err := Fig9a(sc, []int{0, 100})
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 4 {
			t.Fatalf("rows = %d", len(rows))
		}
		var buf bytes.Buffer
		PrintFig9(&buf, "Figure 9a", rows)
	})
	t.Run("b", func(t *testing.T) {
		rows, err := Fig9b(sc, []int{100, 200})
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 4 {
			t.Fatalf("rows = %d", len(rows))
		}
	})
	t.Run("c", func(t *testing.T) {
		rows, err := Fig9c(sc, []int{10, 40})
		if err != nil {
			t.Fatal(err)
		}
		// FS read latency must degrade with more fields (marshalling
		// whole records); J-PDT only mildly.
		var fsSmall, fsBig time.Duration
		for _, r := range rows {
			if r.Backend == FS && r.Value == 10 {
				fsSmall = r.Read
			}
			if r.Backend == FS && r.Value == 40 {
				fsBig = r.Read
			}
		}
		if fsBig < fsSmall {
			t.Logf("FS read did not degrade with field count (small=%v big=%v) — noisy box?", fsSmall, fsBig)
		}
	})
	t.Run("d", func(t *testing.T) {
		rows, err := Fig9d(sc, []int{1, 10})
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 4 {
			t.Fatalf("rows = %d", len(rows))
		}
	})
}

func TestFig10Runs(t *testing.T) {
	rows, err := Fig10(tiny(), []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*3*2 {
		t.Fatalf("rows = %d", len(rows))
	}
	var buf bytes.Buffer
	PrintFig10(&buf, rows)
}

func TestFig11Runs(t *testing.T) {
	tls, err := Fig11(Fig11Config{
		Accounts:   800,
		Clients:    2,
		RunFor:     500 * time.Millisecond,
		CrashAfter: 250 * time.Millisecond,
		Bucket:     50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tls) != 4 {
		t.Fatalf("systems = %d", len(tls))
	}
	for _, tl := range tls {
		if tl.NominalBefore() <= 0 {
			t.Fatalf("%s: no pre-crash throughput", tl.System)
		}
	}
	var buf bytes.Buffer
	PrintFig11(&buf, tls)
	if !strings.Contains(buf.String(), "J-PFA-nogc") {
		t.Fatal("missing system in print")
	}
}

func TestFig1Fig2Run(t *testing.T) {
	rows1, err := Fig1(4000, 8000, []int{1, 100}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows1) != 2 {
		t.Fatalf("fig1 rows = %d", len(rows1))
	}
	// More cache => more GC time (the Figure 1 mechanism).
	if rows1[1].GCCPUTime < rows1[0].GCCPUTime {
		t.Errorf("GC time did not grow with cache ratio: %v -> %v",
			rows1[0].GCCPUTime, rows1[1].GCCPUTime)
	}
	var buf bytes.Buffer
	PrintFig1(&buf, rows1)

	rows2, err := Fig2([]int{2, 8}, 6000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows2) != 2 {
		t.Fatalf("fig2 rows = %d", len(rows2))
	}
	if rows2[1].GCCPUTime <= rows2[0].GCCPUTime {
		t.Errorf("GC time did not grow with dataset: %v -> %v",
			rows2[0].GCCPUTime, rows2[1].GCCPUTime)
	}
	if rows2[1].LiveObjects <= rows2[0].LiveObjects {
		t.Error("live set did not grow")
	}
	PrintFig2(&buf, rows2)
}

func TestTable3Runs(t *testing.T) {
	rows, err := Table3(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.GBps <= 0 {
			t.Fatalf("%+v: no bandwidth", r)
		}
	}
	var buf bytes.Buffer
	PrintTable3(&buf, rows)
	if !strings.Contains(buf.String(), "native") {
		t.Fatal("print broken")
	}
}

func TestEstimatePoolBytes(t *testing.T) {
	small := EstimatePoolBytes(1000, 10, 100)
	big := EstimatePoolBytes(10000, 10, 100)
	if big <= small {
		t.Fatal("estimate not monotonic in records")
	}
	if EstimatePoolBytes(1000, 10, 10_000) <= small {
		t.Fatal("estimate not monotonic in field size")
	}
}

func TestFig12Runs(t *testing.T) {
	rows, err := Fig12(500, 3000, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	byKey := map[string]time.Duration{}
	for _, r := range rows {
		byKey[r.Structure+r.Impl] = r.Completion
	}
	// The persistent variants must cost more than volatile but stay in
	// the same order of magnitude. The bound is loose (60x) because the
	// race detector inflates the instrumented persistent path far more
	// than the volatile map baseline.
	for _, s := range []string{"HashMap", "TreeMap", "SkipListMap"} {
		vol, per := byKey[s+"Volatile"], byKey[s+"J-PDT"]
		if per < vol {
			t.Errorf("%s: persistent (%v) beat volatile (%v)?", s, per, vol)
		}
		if per > 60*vol {
			t.Errorf("%s: persistent %v vs volatile %v — more than 60x apart", s, per, vol)
		}
	}
	var buf bytes.Buffer
	PrintFig12(&buf, rows)
	if !strings.Contains(buf.String(), "SkipListMap") {
		t.Fatal("print broken")
	}
}

func TestAblations(t *testing.T) {
	rowsV, err := AblationValidation(2000, 120)
	if err != nil {
		t.Fatal(err)
	}
	// Batched validation must beat fence-per-object.
	if rowsV[len(rowsV)-1].NsPerOp >= rowsV[0].NsPerOp {
		t.Errorf("batching did not pay: batch=1 %.0fns vs batch=512 %.0fns",
			rowsV[0].NsPerOp, rowsV[len(rowsV)-1].NsPerOp)
	}
	rowsP, err := AblationSmallPool(5000, 100)
	if err != nil {
		t.Fatal(err)
	}
	var pooled, whole float64
	for _, r := range rowsP {
		if r.Variant == "pooled" {
			pooled = r.Aux
		} else {
			whole = r.Aux
		}
	}
	if pooled >= whole {
		t.Errorf("pooling did not save space: %.0f vs %.0f bytes/obj", pooled, whole)
	}
	rowsL, err := AblationLogSlots(300, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rowsL) != 4 {
		t.Fatalf("log-slot rows = %d", len(rowsL))
	}
	rowsF, err := AblationFenceCost(2000)
	if err != nil {
		t.Fatal(err)
	}
	// Update cost must grow with the fence latency.
	if rowsF[len(rowsF)-1].NsPerOp <= rowsF[0].NsPerOp {
		t.Errorf("fence cost had no effect: %v vs %v", rowsF[0].NsPerOp, rowsF[len(rowsF)-1].NsPerOp)
	}
	var buf bytes.Buffer
	PrintAblation(&buf, append(append(append(rowsV, rowsP...), rowsL...), rowsF...))
	if !strings.Contains(buf.String(), "fence-cost") {
		t.Fatal("print broken")
	}
}

func TestExtEScanExtension(t *testing.T) {
	rows, err := ExtE(tiny(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.KopsSec <= 0 || r.ScanMean <= 0 {
			t.Fatalf("%s: empty measurement %+v", r.Backend, r)
		}
	}
	var buf bytes.Buffer
	PrintExtE(&buf, rows)
	if !strings.Contains(buf.String(), "YCSB-E") {
		t.Fatal("print broken")
	}
}

func TestEnvCommitModes(t *testing.T) {
	for _, tc := range []struct {
		commit string
		want   fa.CommitMode
	}{
		{"", fa.CommitPerTx},
		{"per-tx", fa.CommitPerTx},
		{"group", fa.CommitGroup},
		{"async", fa.CommitAsync},
	} {
		t.Run("commit="+tc.commit, func(t *testing.T) {
			env, err := NewEnv(GridConfig{Backend: JPFA, Records: 100, FieldCount: 10, FieldLen: 100, FenceNs: 1, Commit: tc.commit})
			if err != nil {
				t.Fatal(err)
			}
			defer env.Close()
			if got := env.Mgr.CommitMode(); got != tc.want {
				t.Fatalf("CommitMode = %v, want %v", got, tc.want)
			}
			cfg := ycsb.MustWorkload("A")
			cfg.RecordCount, cfg.Operations = 100, 300
			cfg = cfg.Defaults()
			if err := ycsb.Load(env.Grid, cfg); err != nil {
				t.Fatal(err)
			}
			res, err := ycsb.Run(env.Grid, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Errors != 0 {
				t.Fatalf("%d errors", res.Errors)
			}
			// Close's drain (async) plus recovery-free teardown must leave
			// no acknowledged commit behind the watermark.
			if w := env.Mgr.DrainDurable(); env.Mgr.CommitMode() == fa.CommitAsync && w != env.Mgr.IssuedTickets() {
				t.Fatalf("watermark %d != issued %d", w, env.Mgr.IssuedTickets())
			}
		})
	}
	if _, err := NewEnv(GridConfig{Backend: JPFA, Records: 100, FieldCount: 10, FieldLen: 100, Commit: "bogus"}); err == nil {
		t.Fatal("bogus commit mode accepted")
	}
}
