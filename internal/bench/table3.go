package bench

import (
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/nvm"
)

func newRand() *rand.Rand { return rand.New(rand.NewSource(99)) }

// Table3Row is one cell of Table 3: GB/s for a (path, pattern, direction)
// combination over 256 B blocks, plus the persistence-primitive rates for
// that cell measured by the shared obs layer (pwb and pfence issued per
// block access — the paper's flush/fence accounting).
type Table3Row struct {
	Path        string // "J-NVM" (framework accessors) or "native" (raw copy)
	Sequential  bool
	Write       bool
	GBps        float64
	PWBPerOp    float64
	PFencePerOp float64
}

// Table3 measures 256 B block access throughput through the framework
// accessor path (proxy + bounds checks + block-chain arithmetic, the
// paper's "J-NVM" row) versus a raw memory loop (the paper's "C" row).
// Writes flush the block and fence, as §5.3.5 describes; reads are plain
// loads. The shape to reproduce: the framework is close to native except
// on random reads, where the per-access indirection bites hardest.
func Table3(totalMB int) ([]Table3Row, error) {
	if totalMB == 0 {
		totalMB = 64
	}
	const blockSize = 256
	poolBytes := totalMB << 20
	pool := nvm.New(poolBytes+(8<<20), nvm.Options{})
	cls := &core.Class{Name: "bench.blob", Factory: func(o *core.Object) core.PObject { return o }}
	h, err := core.Open(pool, core.Config{
		HeapOptions: heap.Options{LogSlots: 2, LogSlotSize: 4096},
		Classes:     []*core.Class{cls},
	})
	if err != nil {
		return nil, err
	}
	po, err := h.Alloc(cls, uint64(poolBytes/2))
	if err != nil {
		return nil, err
	}
	obj := po.Core()
	nBlocks := obj.Size() / blockSize

	native := make([]byte, nBlocks*blockSize)
	buf := make([]byte, blockSize)

	seq := make([]uint64, nBlocks)
	for i := range seq {
		seq[i] = uint64(i)
	}
	rnd := make([]uint64, nBlocks)
	copy(rnd, seq)
	newRand().Shuffle(len(rnd), func(i, j int) { rnd[i], rnd[j] = rnd[j], rnd[i] })

	// measure times one access pattern and reads the pwb/pfence counts for
	// the interval from the pool's obs counters, normalized per block
	// access — the cell's primitive rate columns.
	measure := func(row Table3Row, idx []uint64, fn func(off uint64)) Table3Row {
		const passes = 2
		before := pool.Obs().Snapshot()
		start := time.Now()
		for p := 0; p < passes; p++ {
			for _, b := range idx {
				fn(b * blockSize)
			}
		}
		elapsed := time.Since(start)
		d := pool.Obs().Snapshot().Sub(before)
		ops := float64(passes) * float64(len(idx))
		row.GBps = ops * blockSize / elapsed.Seconds() / 1e9
		row.PWBPerOp = float64(d.PWBs) / ops
		row.PFencePerOp = float64(d.Fences()) / ops
		return row
	}

	jnvmRead := func(off uint64) { obj.ReadInto(off, buf) }
	jnvmWrite := func(off uint64) {
		obj.WriteBytes(off, buf)
		obj.PWBField(off, blockSize)
		obj.PFence()
	}
	nativeRead := func(off uint64) { copy(buf, native[off:off+blockSize]) }
	nativeWrite := func(off uint64) {
		copy(native[off:off+blockSize], buf)
		pool.PWBRange(0, blockSize) // same flush protocol cost
		pool.PFence()
	}

	return []Table3Row{
		measure(Table3Row{Path: "J-NVM", Sequential: true, Write: false}, seq, jnvmRead),
		measure(Table3Row{Path: "native", Sequential: true, Write: false}, seq, nativeRead),
		measure(Table3Row{Path: "J-NVM", Sequential: true, Write: true}, seq, jnvmWrite),
		measure(Table3Row{Path: "native", Sequential: true, Write: true}, seq, nativeWrite),
		measure(Table3Row{Path: "J-NVM", Sequential: false, Write: false}, rnd, jnvmRead),
		measure(Table3Row{Path: "native", Sequential: false, Write: false}, rnd, nativeRead),
		measure(Table3Row{Path: "J-NVM", Sequential: false, Write: true}, rnd, jnvmWrite),
		measure(Table3Row{Path: "native", Sequential: false, Write: true}, rnd, nativeWrite),
	}, nil
}
