// Package bench wires the substrates together into the paper's
// experiments: one function per figure/table of §5, shared by the cmd/
// tools and by the root testing.B benchmarks. Each function returns
// structured rows so callers can print the same tables and series the
// paper reports.
package bench

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/fa"
	"repro/internal/heap"
	"repro/internal/nvm"
	"repro/internal/obs"
	"repro/internal/pdt"
	"repro/internal/shard"
	"repro/internal/store"
)

// BackendKind names a persistence backend of §5.1.
type BackendKind string

// The evaluated backends.
const (
	JPDT     BackendKind = "J-PDT"
	JPDTLF   BackendKind = "J-PDT-LF"
	JPFA     BackendKind = "J-PFA"
	FS       BackendKind = "FS"
	PCJ      BackendKind = "PCJ"
	TmpFS    BackendKind = "TmpFS"
	NullFS   BackendKind = "NullFS"
	Volatile BackendKind = "Volatile"
)

// GridConfig sizes one grid instance.
type GridConfig struct {
	Backend    BackendKind
	Records    int
	FieldCount int
	FieldLen   int
	// CacheEntries bounds the grid's volatile record cache (FS family).
	// J-NVM backends ignore it unless ProxyCache is set (§5.3.1: J-PDT
	// only caches proxies).
	CacheEntries int
	// ProxyCache enables the J-PDT map proxy cache.
	ProxyCache pdt.CacheMode
	// FenceNs is the simulated NVMM fence latency (default 120 ns).
	FenceNs int
	// Dir hosts FS backend files (a temp dir when empty).
	Dir string
	// Commit selects the commit protocol of the J-NVM backends: "" or
	// "per-tx" (every commit fences alone, §4.2), "group" (concurrent
	// commits share barriers, still synchronous), or "async" (epoch
	// pipeline; Commit returns a ticket, durability trails at the
	// watermark). Non-J-NVM backends ignore it.
	Commit string
	// Pools shards the J-NVM backends across this many NVMM pools
	// (DESIGN.md §17): per-pool allocators, logs, and backends behind
	// one routing grid backend. 0 or 1 keeps the classic single-pool
	// stack; non-J-NVM backends ignore it.
	Pools int
	// DataDir, when set, backs the J-NVM pools with files
	// (DataDir/pool-<i>.nvm via nvm.OpenFile) instead of anonymous
	// memory, so the heap survives process death: a restarted process
	// pointed at the same directory recovers the records — the wire
	// server's crash-and-recover substrate. Non-J-NVM backends ignore
	// it.
	DataDir string
}

// CommitModeName folds the -group-commit/-durability flag pair of the cmd
// tools into a GridConfig.Commit value. Async implies grouping (the epoch
// pipeline is what amortizes the fences); sync without -group-commit is
// the per-Tx default.
func CommitModeName(groupCommit bool, durability string) (string, error) {
	switch durability {
	case "", "sync":
		if groupCommit {
			return "group", nil
		}
		return "", nil
	case "async":
		return "async", nil
	}
	return "", fmt.Errorf("bench: unknown durability %q (want sync or async)", durability)
}

// ParseCommitMode maps the -group-commit/-durability flag vocabulary to a
// commit mode.
func ParseCommitMode(s string) (fa.CommitMode, error) {
	switch s {
	case "", "per-tx":
		return fa.CommitPerTx, nil
	case "group", "sync":
		return fa.CommitGroup, nil
	case "async":
		return fa.CommitAsync, nil
	}
	return 0, fmt.Errorf("bench: unknown commit mode %q (want per-tx, group or async)", s)
}

// DefaultFenceNs approximates the sfence+ADR cost the paper pays on
// Optane.
const DefaultFenceNs = 120

// EstimatePoolBytes sizes an NVMM pool for a YCSB dataset with churn
// headroom.
func EstimatePoolBytes(records, fieldCount, fieldLen int) int {
	valBlocks := heap.BlocksFor(uint64(fieldLen + 4))
	perRecord := fieldCount*valBlocks*heap.BlockSize + // values
		fieldCount*48 + // pooled names
		heap.BlocksFor(uint64(8+16*fieldCount))*heap.BlockSize + // record object
		heap.BlockSize + // pair
		64 + // pooled key
		32 // map slots
	total := records*perRecord*2 + (32 << 20)
	return total
}

// Env is one ready-to-run grid with its lifecycle.
type Env struct {
	Grid    *store.Grid
	Heap    *core.Heap  // nil for non-J-NVM backends and sharded envs
	Pool    *nvm.Pool   // nil for non-J-NVM backends and sharded envs
	Mgr     *fa.Manager // nil for non-J-NVM backends and sharded envs
	Set     *shard.Set  // non-nil when GridConfig.Pools > 1
	cleanup func()
}

// DrainDurable forces every queued async commit out to NVMM — all pools
// of a sharded env, the single manager otherwise.
func (e *Env) DrainDurable() {
	if e.Set != nil {
		e.Set.DrainDurable()
	}
	if e.Mgr != nil {
		e.Mgr.DrainDurable()
	}
}

// AwaitDurable blocks until everything committed so far is durable,
// without forcing an early epoch drain the way DrainDurable does: each
// manager waits for its watermark to cover the tickets already issued,
// so concurrent callers' windows combine into shared epochs. No-op in
// the synchronous commit modes. This is the wire server's per-window
// durability wait (DESIGN.md §18).
func (e *Env) AwaitDurable() {
	if e.Set != nil {
		for i := 0; i < e.Set.Pools(); i++ {
			m := e.Set.Manager(i)
			m.AwaitDurable(m.IssuedTickets())
		}
	}
	if e.Mgr != nil {
		e.Mgr.AwaitDurable(e.Mgr.IssuedTickets())
	}
}

// Close releases resources. Queued async commits are drained first so no
// acknowledged ticket is abandoned short of durability.
func (e *Env) Close() {
	e.DrainDurable()
	if e.cleanup != nil {
		e.cleanup()
	}
}

// Snapshot assembles one coherent metrics view across every layer the
// environment owns (grid always; nvm/heap/fa for the J-NVM backends).
// Experiments diff two snapshots to report interval metrics.
func (e *Env) Snapshot() *obs.StackSnapshot {
	s := &obs.StackSnapshot{}
	if e.Grid != nil {
		g := e.Grid.ObsSnapshot()
		s.Grid = &g
	}
	if e.Pool != nil {
		n := e.Pool.Obs().Snapshot()
		s.NVM = &n
	}
	if e.Heap != nil {
		hs := e.Heap.Mem().ObsSnapshot()
		s.Heap = &hs
	}
	if e.Mgr != nil {
		f := e.Mgr.ObsSnapshot()
		s.FA = &f
	}
	if e.Set != nil {
		sh := e.Set.Snapshot()
		s.Shard = &sh
		// The global layer gauges are the element-wise sums of the
		// per-pool breakdown, so existing tooling (check_pwb.sh, the
		// report printer) reads a sharded stack unchanged.
		var nv obs.NVMSnapshot
		var hp obs.HeapSnapshot
		var fs obs.FASnapshot
		for _, p := range sh.PerPool {
			nv = nv.Add(p.NVM)
			hp = hp.Add(p.Heap)
			fs = fs.Add(p.FA)
		}
		s.NVM, s.Heap, s.FA = &nv, &hp, &fs
	}
	s.Finalize()
	return s
}

// publish exposes the environment on the default metrics registry (the
// -metrics-addr listener); replace semantics keep the live env visible as
// experiments cycle through environments.
func (e *Env) publish() *Env {
	obs.Default.Publish("bench_env", func() any { return e.Snapshot() })
	return e
}

// NewEnv builds a grid over the requested backend, with a freshly
// formatted heap for the J-NVM backends.
func NewEnv(cfg GridConfig) (*Env, error) {
	if cfg.FenceNs == 0 {
		cfg.FenceNs = DefaultFenceNs
	}
	if cfg.Pools > 1 {
		switch cfg.Backend {
		case JPDT, JPDTLF, JPFA, PCJ:
		default:
			return nil, fmt.Errorf("bench: backend %q cannot be sharded across %d pools", cfg.Backend, cfg.Pools)
		}
	}
	switch cfg.Backend {
	case Volatile:
		return (&Env{Grid: store.NewGrid(store.NewVolatileBackend(), store.Options{CacheEntries: cfg.CacheEntries})}).publish(), nil
	case TmpFS:
		return (&Env{Grid: store.NewGrid(store.NewTmpFSBackend(), store.Options{CacheEntries: cfg.CacheEntries})}).publish(), nil
	case NullFS:
		return (&Env{Grid: store.NewGrid(store.NewNullFSBackend(), store.Options{CacheEntries: cfg.CacheEntries})}).publish(), nil
	case FS:
		dir := cfg.Dir
		var cleanup func()
		if dir == "" {
			var err error
			dir, err = os.MkdirTemp("", "jnvm-fs-*")
			if err != nil {
				return nil, err
			}
			cleanup = func() { os.RemoveAll(dir) }
		}
		b, err := store.NewFSBackend(dir, false)
		if err != nil {
			return nil, err
		}
		return (&Env{Grid: store.NewGrid(b, store.Options{CacheEntries: cfg.CacheEntries}), cleanup: cleanup}).publish(), nil
	case JPDT, JPDTLF, JPFA, PCJ:
		if cfg.Pools > 1 {
			return newShardEnv(cfg)
		}
		pool, err := newPool(cfg, 0, EstimatePoolBytes(cfg.Records, cfg.FieldCount, cfg.FieldLen))
		if err != nil {
			return nil, err
		}
		mgr := fa.NewManager()
		classes := append(pdt.Classes(), store.Classes()...)
		h, err := core.Open(pool, core.Config{
			HeapOptions: heap.Options{LogSlots: 64, LogSlotSize: 1 << 15},
			Classes:     classes,
			LogHandler:  mgr,
		})
		if err != nil {
			return nil, err
		}
		var backend store.Backend
		switch cfg.Backend {
		case JPDT:
			b, err := store.NewJPDTBackend(h, "kv")
			if err != nil {
				return nil, err
			}
			if cfg.ProxyCache != pdt.CacheNone {
				if err := b.SetProxyCache(cfg.ProxyCache); err != nil {
					return nil, err
				}
			}
			backend = b
		case JPDTLF:
			b, err := store.NewJPDTLFBackend(h, "kv")
			if err != nil {
				return nil, err
			}
			backend = b
		case JPFA:
			b, err := store.NewJPFABackend(h, mgr, "kv")
			if err != nil {
				return nil, err
			}
			backend = b
		case PCJ:
			b, err := store.NewPCJBackend(h, "kv")
			if err != nil {
				return nil, err
			}
			backend = b
		}
		if cfg.Commit != "" {
			mode, err := ParseCommitMode(cfg.Commit)
			if err != nil {
				return nil, err
			}
			if err := mgr.SetGroupCommit(fa.GroupOptions{Mode: mode}); err != nil {
				return nil, err
			}
		}
		// The paper disables record caching for the J-NVM backends
		// (§5.3.1: "caching brings almost no performance benefits").
		env := &Env{Grid: store.NewGrid(backend, store.Options{}), Heap: h, Pool: pool, Mgr: mgr}
		if cfg.DataDir != "" {
			env.cleanup = func() { pool.Close() }
		}
		return env.publish(), nil
	}
	return nil, fmt.Errorf("bench: unknown backend %q", cfg.Backend)
}

// newPool builds pool i of an environment: anonymous memory by default,
// a file-backed (DAX-style) pool under cfg.DataDir when set.
func newPool(cfg GridConfig, i, size int) (*nvm.Pool, error) {
	opts := nvm.Options{FenceLatency: cfg.FenceNs}
	if cfg.DataDir == "" {
		return nvm.New(size, opts), nil
	}
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, err
	}
	return nvm.OpenFile(filepath.Join(cfg.DataDir, fmt.Sprintf("pool-%d.nvm", i)), size, opts)
}

// shardBackendCtor maps a backend kind to the per-pool constructor the
// shard set invokes once per pool.
func shardBackendCtor(cfg GridConfig) (func(h *core.Heap, mgr *fa.Manager) (store.Backend, error), error) {
	switch cfg.Backend {
	case JPDT:
		return func(h *core.Heap, mgr *fa.Manager) (store.Backend, error) {
			b, err := store.NewJPDTBackend(h, "kv")
			if err != nil {
				return nil, err
			}
			if cfg.ProxyCache != pdt.CacheNone {
				if err := b.SetProxyCache(cfg.ProxyCache); err != nil {
					return nil, err
				}
			}
			return b, nil
		}, nil
	case JPDTLF:
		return func(h *core.Heap, mgr *fa.Manager) (store.Backend, error) {
			return store.NewJPDTLFBackend(h, "kv")
		}, nil
	case JPFA:
		return func(h *core.Heap, mgr *fa.Manager) (store.Backend, error) {
			return store.NewJPFABackend(h, mgr, "kv")
		}, nil
	case PCJ:
		return func(h *core.Heap, mgr *fa.Manager) (store.Backend, error) {
			return store.NewPCJBackend(h, "kv")
		}, nil
	}
	return nil, fmt.Errorf("bench: backend %q cannot be sharded", cfg.Backend)
}

// newShardEnv builds a multi-pool J-NVM environment: the dataset's pool
// budget split evenly with 50% per-pool headroom (jump hashing balances
// within a few percent, and the headroom keeps skew off the fallback
// path), one backend per pool, and the set's routing backend under the
// grid.
func newShardEnv(cfg GridConfig) (*Env, error) {
	ctor, err := shardBackendCtor(cfg)
	if err != nil {
		return nil, err
	}
	total := EstimatePoolBytes(cfg.Records, cfg.FieldCount, cfg.FieldLen)
	per := total/cfg.Pools + total/(2*cfg.Pools)
	if per < 8<<20 {
		per = 8 << 20
	}
	pools := make([]*nvm.Pool, cfg.Pools)
	for i := range pools {
		p, err := newPool(cfg, i, per)
		if err != nil {
			return nil, err
		}
		pools[i] = p
	}
	s, err := shard.Open(pools, shard.Config{
		HeapOptions: heap.Options{LogSlots: 64, LogSlotSize: 1 << 15},
		Classes:     func() []*core.Class { return append(pdt.Classes(), store.Classes()...) },
		NewBackend:  ctor,
	})
	if err != nil {
		return nil, err
	}
	if cfg.Commit != "" {
		mode, err := ParseCommitMode(cfg.Commit)
		if err != nil {
			return nil, err
		}
		for i := 0; i < s.Pools(); i++ {
			if err := s.Manager(i).SetGroupCommit(fa.GroupOptions{Mode: mode}); err != nil {
				return nil, err
			}
		}
	}
	env := &Env{Grid: store.NewGrid(s.Backend(), store.Options{}), Set: s}
	if cfg.DataDir != "" {
		env.cleanup = func() {
			for _, p := range pools {
				p.Close()
			}
		}
	}
	return env.publish(), nil
}
