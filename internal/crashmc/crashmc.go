// Package crashmc is a deterministic crash-consistency explorer ("model
// checker" in the bounded, systematic-testing sense of the term).
//
// The paper's correctness argument (§3.2, §4.1) is that failure-atomic
// blocks and single-pfence publication survive a power failure at *any*
// instant. crashmc makes that claim executable: it runs a workload once
// over a tracked nvm.Pool with a FaultPlane installed, counting every
// ordering point (each store, PWB-line, PFence and PSync), then replays
// the workload once per explored point k, "pulling the plug" immediately
// before the k-th primitive executes. Each crash yields a CrashState from
// which several adversarial images are minted — the strict image (only
// fenced data), the everything-persisted image, and seeded random
// line-subsets with sub-line tears — and every image is recovered through
// the standard core/heap/fa/pdt path, once with the serial §4.1.3 oracle
// and once with the parallel pipeline, then checked against the
// workload's application-level oracle: fsck clean, failure-atomic blocks
// all-or-nothing, no reachable half-initialized object, store records
// intact, and the recovered heap still writable.
//
// Everything is deterministic in (workload, seed): a failure is
// reproduced by its (point, sample, seed) triple alone, and a greedy
// minimizer shrinks the failing line-subset before reporting.
package crashmc

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/nvm"
)

// Run is one instantiation of a workload: volatile closures sharing an
// application-level oracle that Exec maintains and Check consults.
type Run struct {
	// Setup formats the pool and creates the persistent structures,
	// ending durable (PSync). It runs unobserved: crash exploration
	// targets the steady-state mutations, not first-run formatting.
	Setup func(pool *nvm.Pool) error
	// Exec mutates the structures. Every ordering point it issues is
	// observed, and a crash abandons it mid-flight via panic. It must be
	// deterministic: single-goroutine, no Go-map iteration, all
	// randomness from the run's seeded rng.
	Exec func(pool *nvm.Pool) error
	// Check recovers the crash image with the given recovery parallelism
	// (1 = the paper's serial procedure) and verifies the workload
	// invariants against the oracle. It is called many times per run and
	// must not mutate the oracle. It owns img and may write to it (e.g.
	// probe that the recovered heap accepts new operations).
	Check func(img *nvm.Pool, parallelism int) error

	// Audit, if set, runs after Check passes on tear-free images — every
	// spec line dropped or persisted whole — and verifies pre-replay
	// invariants over the raw crash image, e.g. fa.AuditCommittedSlots
	// through a wrapping LogHandler. It is skipped on images with
	// sub-line tears, where a torn retire write-back can legitimately
	// persist a slot's zeroed count under its stale committed status;
	// on tear-free images that state only arises when a commit mark
	// outran its stage-1 log persist, which is a protocol bug.
	Audit func(imgs []*nvm.Pool) error

	// Multi-pool forms, used when Workload.Pools > 1 (DESIGN.md §17):
	// the plug is pulled on the whole machine at once, so the fault
	// plane spans every pool, ordering points count globally, and a
	// crash yields one image per pool. Setup may still run concurrent
	// goroutines (it is unobserved); Exec must stay deterministic and
	// single-goroutine across all pools.
	SetupN func(pools []*nvm.Pool) error
	ExecN  func(pools []*nvm.Pool) error
	CheckN func(imgs []*nvm.Pool, parallelism int) error
}

func (r *Run) setup(pools []*nvm.Pool) error {
	if r.SetupN != nil {
		return r.SetupN(pools)
	}
	return r.Setup(pools[0])
}

func (r *Run) exec(pools []*nvm.Pool) error {
	if r.ExecN != nil {
		return r.ExecN(pools)
	}
	return r.Exec(pools[0])
}

func (r *Run) check(imgs []*nvm.Pool, parallelism int) error {
	if r.CheckN != nil {
		return r.CheckN(imgs, parallelism)
	}
	return r.Check(imgs[0], parallelism)
}

// Workload names a crash-exploration scenario.
type Workload struct {
	Name      string
	PoolBytes int // per pool
	// Pools is the NVMM pool count (0 or 1 = the classic single pool).
	Pools int
	// New builds a fresh Run; the seed drives the op mix and oracle.
	New func(seed int64) *Run
}

// crashSignal unwinds Exec when the plane fires.
type crashSignal struct{}

// plane is the FaultPlane that counts ordering points and pulls the plug
// at the trigger point. The crash state is captured at the panic site,
// before deferred cleanup (e.g. fa's abort-on-panic) can write to the
// pool; events observed after firing (from exactly that cleanup) are
// ignored.
type plane struct {
	pools   []*nvm.Pool
	trigger int // 1-based ordering point to crash at; 0 = count only
	count   int
	fired   bool
	states  []*nvm.CrashState // one per pool, captured together at the crash
}

func (pl *plane) capture() {
	pl.states = make([]*nvm.CrashState, len(pl.pools))
	for i, p := range pl.pools {
		pl.states[i] = p.CaptureCrashState()
	}
}

func (pl *plane) OrderingPoint(nvm.FaultEvent) {
	if pl.fired {
		return
	}
	pl.count++
	if pl.trigger != 0 && pl.count == pl.trigger {
		pl.fired = true
		pl.capture()
		panic(crashSignal{})
	}
}

// Options tunes an exploration.
type Options struct {
	// Points bounds how many crash points are explored; 0 explores all.
	// When bounded, points are stride-sampled with seeded jitter so the
	// whole run is covered.
	Points int
	// Samples is the number of random line-subset images per point, on
	// top of the two deterministic images (strict, all-pending). Odd
	// sample indices force sub-line tears on every retained line.
	Samples int
	// Seed drives the workload op mix and all subset sampling.
	Seed int64
	// Par is the parallel recovery worker count checked against the
	// serial oracle (default 8).
	Par int
	// Point, when >0, explores only that crash point — the repro path.
	Point int
	// Sample, when Point is set and Sample >= -2, checks only that
	// sample index (-1 strict, -2 all-pending).
	Sample int
	// MaxFailures stops the exploration early (default 3, <0 unlimited).
	MaxFailures int
	// Log, when set, receives progress lines.
	Log func(format string, a ...any)
}

// Failure is one reproducible invariant violation.
type Failure struct {
	Workload string          `json:"workload"`
	Point    int             `json:"point"`  // 1-based crash point; total+1 = after the last op
	Sample   int             `json:"sample"` // -1 strict, -2 all-pending, else subset index
	Seed     int64           `json:"seed"`
	Par      int             `json:"par"`              // recovery parallelism that failed (1 and/or Par)
	Subset   []nvm.CrashLine `json:"subset,omitempty"` // minimized failing line-subset
	// PoolSubsets replaces Subset for multi-pool workloads: the
	// minimized failing line-subset of every pool, in pool order.
	PoolSubsets [][]nvm.CrashLine `json:"pool_subsets,omitempty"`
	Err         string            `json:"err"`
	Diverged    bool              `json:"diverged,omitempty"` // serial and parallel disagreed
}

// Repro renders the one-command reproduction for this failure.
func (f *Failure) Repro() string {
	return fmt.Sprintf("go run ./cmd/crashmc -workload %s -seed %d -point %d -sample %d",
		f.Workload, f.Seed, f.Point, f.Sample)
}

func (f *Failure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FAIL %s point=%d sample=%d seed=%d par=%d", f.Workload, f.Point, f.Sample, f.Seed, f.Par)
	if f.Diverged {
		b.WriteString(" [serial/parallel diverge]")
	}
	fmt.Fprintf(&b, ": %s\n", f.Err)
	renderSubset := func(label string, subset []nvm.CrashLine) {
		fmt.Fprintf(&b, "  minimized subset%s (%d lines):", label, len(subset))
		for _, cl := range subset {
			src := "snapshot"
			if cl.Source == nvm.CrashFromCurrent {
				src = "current"
			}
			fmt.Fprintf(&b, " {line=%#x %s", cl.Line, src)
			if cl.Split != 0 {
				side := "head"
				if cl.Tail {
					side = "tail"
				}
				fmt.Fprintf(&b, " %s<%d>", side, cl.Split)
			}
			b.WriteString("}")
		}
		b.WriteString("\n")
	}
	if len(f.Subset) > 0 {
		renderSubset("", f.Subset)
	}
	for p, sub := range f.PoolSubsets {
		if len(sub) > 0 {
			renderSubset(fmt.Sprintf(" pool %d", p), sub)
		}
	}
	fmt.Fprintf(&b, "  reproduce: %s", f.Repro())
	return b.String()
}

// Report summarizes one workload's exploration.
type Report struct {
	Workload string    `json:"workload"`
	Seed     int64     `json:"seed"`
	Points   int       `json:"points"`   // total ordering points in the workload
	Explored int       `json:"explored"` // crash points actually explored
	Images   int       `json:"images"`   // crash images checked (×2 recovery modes)
	Failures []Failure `json:"failures,omitempty"`
}

// runTo executes a fresh run of w, crashing at ordering point trigger
// (0 = run to completion). Returns the run (with its oracle advanced to
// the crash), the plane (count + captured state), and Exec's error when
// it completed without crashing.
func runTo(w *Workload, seed int64, trigger int) (*Run, *plane, error) {
	np := w.Pools
	if np < 1 {
		np = 1
	}
	pools := make([]*nvm.Pool, np)
	for i := range pools {
		pools[i] = nvm.New(w.PoolBytes, nvm.Options{Tracked: true})
	}
	run := w.New(seed)
	if err := run.setup(pools); err != nil {
		return nil, nil, fmt.Errorf("%s setup: %w", w.Name, err)
	}
	for _, p := range pools {
		p.PSync() // setup ends durable; exploration covers Exec only
	}
	pl := &plane{pools: pools, trigger: trigger}
	for _, p := range pools {
		p.SetFaultPlane(pl)
	}
	var execErr error
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(crashSignal); ok {
					return
				}
				panic(r)
			}
		}()
		execErr = run.exec(pools)
	}()
	for _, p := range pools {
		p.SetFaultPlane(nil)
	}
	if trigger == 0 || !pl.fired {
		if execErr != nil {
			return nil, nil, fmt.Errorf("%s exec: %w", w.Name, execErr)
		}
		// Completed: capture the end-of-run state so the caller can
		// explore the "crash after the last operation" point too.
		pl.capture()
	}
	return run, pl, nil
}

// safeCheck runs Check, converting panics into errors: recovery must
// tolerate any crash image, so a panic is itself an invariant violation.
func safeCheck(run *Run, imgs []*nvm.Pool, parallelism int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("recovery panicked: %v", r)
		}
	}()
	return run.check(imgs, parallelism)
}

func safeAudit(run *Run, imgs []*nvm.Pool) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("audit panicked: %v", r)
		}
	}()
	return run.Audit(imgs)
}

// tearFree reports whether every spec line is dropped or persisted
// whole. Sub-line tears mix word versions inside one cache line — a
// retire's stale committed status over its fresh zeroed count is a legal
// crash state — so Run.Audit is only sound without them.
func tearFree(specs [][]nvm.CrashLine) bool {
	for _, spec := range specs {
		for _, cl := range spec {
			if cl.Split != 0 {
				return false
			}
		}
	}
	return true
}

// subsetSeed mixes (seed, point, sample) into the rng seed for one
// subset draw (splitmix64 finalizer), so any sampled image is
// reconstructible from its triple.
func subsetSeed(seed int64, point, sample int) int64 {
	z := uint64(seed)*0x9e3779b97f4a7c15 + uint64(point)<<20 + uint64(sample) + 1
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// specFor rebuilds the crash-image spec for a sample index at a point,
// for one pool. Pool 0's draw matches the historical single-pool draw,
// so existing (point, sample, seed) repro triples stay valid.
func specFor(state *nvm.CrashState, seed int64, point, sample, pool int) []nvm.CrashLine {
	switch sample {
	case -1: // strict: durable image only
		return nil
	case -2: // all pending lines persist whole
		var spec []nvm.CrashLine
		for _, pl := range state.Pending() {
			spec = append(spec, nvm.CrashLine{Line: pl.Line, Source: nvm.CrashFromCurrent})
		}
		return spec
	default:
		rng := rand.New(rand.NewSource(subsetSeed(seed, point, sample) ^ int64(pool)*-0x61c8864680b583eb))
		return state.SampleSpec(rng, sample%2 == 1)
	}
}

// specsFor draws every pool's spec for one (point, sample).
func specsFor(states []*nvm.CrashState, seed int64, point, sample int) [][]nvm.CrashLine {
	specs := make([][]nvm.CrashLine, len(states))
	for i, st := range states {
		specs[i] = specFor(st, seed, point, sample, i)
	}
	return specs
}

// imagesFor mints one adversarial image per pool. Fresh images are built
// for every check — Check owns and may mutate them.
func imagesFor(states []*nvm.CrashState, specs [][]nvm.CrashLine) []*nvm.Pool {
	imgs := make([]*nvm.Pool, len(states))
	for i, st := range states {
		imgs[i] = st.Image(specs[i])
	}
	return imgs
}

// pickPoints selects which crash points to explore: all of them when the
// budget allows, otherwise a seeded jittered stride over [1, total] so
// every region of the run stays covered and the choice is reproducible.
func pickPoints(total, budget int, seed int64) []int {
	if budget <= 0 || budget >= total {
		pts := make([]int, total)
		for i := range pts {
			pts[i] = i + 1
		}
		return pts
	}
	rng := rand.New(rand.NewSource(subsetSeed(seed, 0, -3)))
	stride := float64(total) / float64(budget)
	pts := make([]int, 0, budget)
	seen := make(map[int]bool, budget)
	for i := 0; i < budget; i++ {
		lo := int(float64(i) * stride)
		hi := int(float64(i+1) * stride)
		if hi <= lo {
			hi = lo + 1
		}
		p := 1 + lo + rng.Intn(hi-lo)
		if p > total {
			p = total
		}
		if !seen[p] {
			seen[p] = true
			pts = append(pts, p)
		}
	}
	sort.Ints(pts)
	return pts
}

// minimizeSpecs greedily drops spec entries — across every pool — while
// the failure persists, then tries to un-tear surviving entries, so
// reports implicate the fewest lines possible.
func minimizeSpecs(run *Run, states []*nvm.CrashState, specs [][]nvm.CrashLine, parallelism int) [][]nvm.CrashLine {
	fails := func(s [][]nvm.CrashLine) bool {
		return safeCheck(run, imagesFor(states, s), parallelism) != nil
	}
	cur := make([][]nvm.CrashLine, len(specs))
	for p := range specs {
		cur[p] = append([]nvm.CrashLine(nil), specs[p]...)
	}
	clone := func() [][]nvm.CrashLine {
		c := make([][]nvm.CrashLine, len(cur))
		for p := range cur {
			c[p] = append([]nvm.CrashLine(nil), cur[p]...)
		}
		return c
	}
	for changed := true; changed; {
		changed = false
		for p := range cur {
			for i := 0; i < len(cur[p]); i++ {
				cand := clone()
				cand[p] = append(append([]nvm.CrashLine(nil), cur[p][:i]...), cur[p][i+1:]...)
				if fails(cand) {
					cur = cand
					changed = true
					i--
				}
			}
		}
	}
	for p := range cur {
		for i := range cur[p] {
			if cur[p][i].Split != 0 {
				cand := clone()
				cand[p][i].Split = 0
				cand[p][i].Tail = false
				if fails(cand) {
					cur = cand
				}
			}
		}
	}
	return cur
}

// Explore runs the full exploration of one workload.
func Explore(w *Workload, opt Options) (*Report, error) {
	if opt.Par <= 0 {
		opt.Par = 8
	}
	if opt.MaxFailures == 0 {
		opt.MaxFailures = 3
	}
	logf := opt.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rep := &Report{Workload: w.Name, Seed: opt.Seed}

	// Pass 1: count ordering points and sanity-check determinism — two
	// identical runs must issue identical ordering-point sequences, or
	// the (point, sample, seed) triples would not reproduce.
	run, pl, err := runTo(w, opt.Seed, 0)
	if err != nil {
		return nil, err
	}
	_, pl2, err := runTo(w, opt.Seed, 0)
	if err != nil {
		return nil, err
	}
	if pl.count != pl2.count {
		return nil, fmt.Errorf("%s: nondeterministic workload: %d vs %d ordering points", w.Name, pl.count, pl2.count)
	}
	rep.Points = pl.count
	logf("%s: %d ordering points", w.Name, rep.Points)

	// The completed run must also satisfy its own oracle in both crash
	// worlds (nothing pending lost, everything pending persisted).
	for _, sample := range []int{-1, -2} {
		imgs := imagesFor(pl.states, specsFor(pl.states, opt.Seed, rep.Points+1, sample))
		if err := safeCheck(run, imgs, 1); err != nil {
			return nil, fmt.Errorf("%s: completed run fails its own oracle (sample %d): %w", w.Name, sample, err)
		}
	}

	points := pickPoints(rep.Points, opt.Points, opt.Seed)
	// The "crash after the last operation" point rides along for free.
	points = append(points, rep.Points+1)
	if opt.Point > 0 {
		points = []int{opt.Point}
	}

	samples := []int{-1, -2}
	for s := 0; s < opt.Samples; s++ {
		samples = append(samples, s)
	}
	if opt.Point > 0 && opt.Sample >= -2 {
		samples = []int{opt.Sample}
	}

	for _, point := range points {
		var states []*nvm.CrashState
		crun := run
		if point > rep.Points {
			states = pl.states // end-of-run state from the count pass
		} else {
			r, cpl, err := runTo(w, opt.Seed, point)
			if err != nil {
				return nil, err
			}
			if !cpl.fired {
				return nil, fmt.Errorf("%s: replay finished before point %d (nondeterministic workload)", w.Name, point)
			}
			states = cpl.states
			crun = r
		}
		rep.Explored++
		for _, sample := range samples {
			specs := specsFor(states, opt.Seed, point, sample)
			rep.Images++
			serialErr := safeCheck(crun, imagesFor(states, specs), 1)
			parErr := safeCheck(crun, imagesFor(states, specs), opt.Par)
			var auditErr error
			if serialErr == nil && parErr == nil && crun.Audit != nil && tearFree(specs) {
				auditErr = safeAudit(crun, imagesFor(states, specs))
			}
			if serialErr == nil && parErr == nil && auditErr == nil {
				continue
			}
			f := Failure{
				Workload: w.Name,
				Point:    point,
				Sample:   sample,
				Seed:     opt.Seed,
				Diverged: (serialErr == nil) != (parErr == nil),
			}
			switch {
			case serialErr != nil:
				f.Par, f.Err = 1, serialErr.Error()
			case parErr != nil:
				f.Par, f.Err = opt.Par, parErr.Error()
			default:
				f.Par, f.Err = 1, "audit: "+auditErr.Error()
			}
			if f.Diverged {
				f.Err = fmt.Sprintf("serial=%v parallel=%v", serialErr, parErr)
			}
			if auditErr == nil {
				// Audit failures skip minimization: the greedy predicate
				// replays Check only, which passes on these images.
				min := minimizeSpecs(crun, states, specs, f.Par)
				if len(min) == 1 {
					f.Subset = min[0]
				} else {
					f.PoolSubsets = min
				}
			}
			rep.Failures = append(rep.Failures, f)
			logf("%s", f.String())
			if opt.MaxFailures > 0 && len(rep.Failures) >= opt.MaxFailures {
				logf("%s: stopping after %d failures", w.Name, len(rep.Failures))
				return rep, nil
			}
		}
		if rep.Explored%50 == 0 {
			logf("%s: explored %d/%d points, %d images, %d failures",
				w.Name, rep.Explored, len(points), rep.Images, len(rep.Failures))
		}
	}
	return rep, nil
}
