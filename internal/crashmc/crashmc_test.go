package crashmc

import (
	"fmt"
	"testing"

	"repro/internal/nvm"
)

// TestExploreWorkloadsSmoke runs a bounded exploration of every standing
// workload; the shipped persistence disciplines must survive every
// sampled crash point.
func TestExploreWorkloadsSmoke(t *testing.T) {
	for _, w := range Workloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			rep, err := Explore(w, Options{Points: 10, Samples: 2, Seed: 42, Par: 4})
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Failures) != 0 {
				for i := range rep.Failures {
					t.Error(rep.Failures[i].String())
				}
				t.Fatalf("%s: %d crash-consistency failures", w.Name, len(rep.Failures))
			}
			if rep.Points == 0 || rep.Explored == 0 || rep.Images == 0 {
				t.Fatalf("empty exploration: %+v", rep)
			}
		})
	}
}

// brokenWorkload deliberately violates its own invariant: two counters on
// different cache lines that must stay equal are updated under separate
// fences, so a crash between the fences observes them diverged. It is the
// standing proof that the explorer has teeth — if this stops failing, the
// fault plane went blind.
func brokenWorkload() *Workload {
	return &Workload{Name: "broken", PoolBytes: 1 << 16, New: func(seed int64) *Run {
		return &Run{
			Setup: func(pool *nvm.Pool) error { return nil },
			Exec: func(pool *nvm.Pool) error {
				for i := uint64(1); i <= 6; i++ {
					pool.WriteUint64(0, i)
					pool.PWB(0)
					pool.PFence()
					// BUG: the twin write rides a separate fence.
					pool.WriteUint64(256, i)
					pool.PWB(256)
					pool.PFence()
				}
				return nil
			},
			Check: func(img *nvm.Pool, parallelism int) error {
				if a, b := img.ReadUint64(0), img.ReadUint64(256); a != b {
					return fmt.Errorf("counters diverged: %d vs %d", a, b)
				}
				return nil
			},
		}
	}}
}

// TestExplorerHasTeeth checks that a seeded ordering bug is (a) found,
// and (b) reproducible from its (point, sample, seed) triple alone.
func TestExplorerHasTeeth(t *testing.T) {
	w := brokenWorkload()
	rep, err := Explore(w, Options{Samples: 2, Seed: 1, Par: 2, MaxFailures: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures) == 0 {
		t.Fatal("explorer missed a deliberately broken workload")
	}
	f := rep.Failures[0]
	if f.Repro() == "" || f.Point == 0 {
		t.Fatalf("failure lacks a repro triple: %+v", f)
	}
	// Replay exactly that (point, sample, seed): it must fail again.
	rerun, err := Explore(w, Options{Seed: f.Seed, Par: 2, Point: f.Point, Sample: f.Sample, MaxFailures: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rerun.Failures) != 1 {
		t.Fatalf("repro triple did not reproduce: %d failures", len(rerun.Failures))
	}
	if got := rerun.Failures[0]; got.Point != f.Point || got.Sample != f.Sample || got.Err != f.Err {
		t.Fatalf("repro mismatch:\noriginal: %+v\nreplay:   %+v", f, got)
	}
}

// TestSubsetSeedStable pins the subset-seed mixing: a change would break
// the reproducibility of every historical failure report.
func TestSubsetSeedStable(t *testing.T) {
	if subsetSeed(1, 10, 2) != subsetSeed(1, 10, 2) {
		t.Fatal("subsetSeed not a pure function")
	}
	seen := map[int64]bool{}
	for p := 0; p < 50; p++ {
		for s := 0; s < 4; s++ {
			seen[subsetSeed(7, p, s)] = true
		}
	}
	if len(seen) != 200 {
		t.Fatalf("subsetSeed collides: %d distinct of 200", len(seen))
	}
}

// TestPickPointsCoverage checks the stride sampler: bounded budgets stay
// within range, deduplicate, and spread across the whole run.
func TestPickPointsCoverage(t *testing.T) {
	pts := pickPoints(1000, 50, 3)
	if len(pts) == 0 || len(pts) > 50 {
		t.Fatalf("got %d points, want (0,50]", len(pts))
	}
	for i, p := range pts {
		if p < 1 || p > 1000 {
			t.Fatalf("point %d out of range", p)
		}
		if i > 0 && pts[i-1] >= p {
			t.Fatalf("points not strictly increasing at %d", i)
		}
	}
	if pts[0] > 100 || pts[len(pts)-1] < 900 {
		t.Fatalf("poor spread: first %d last %d", pts[0], pts[len(pts)-1])
	}
	all := pickPoints(30, 0, 1)
	if len(all) != 30 || all[0] != 1 || all[29] != 30 {
		t.Fatalf("unbounded budget must enumerate all points: %v", all)
	}
}
