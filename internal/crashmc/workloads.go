package crashmc

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/fa"
	"repro/internal/heap"
	"repro/internal/nvm"
	"repro/internal/pdt"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/tpcb"
)

// Workloads returns the registry of crash-exploration scenarios, one per
// persistence discipline in the system: failure-atomic blocks (bank),
// the store's J-PFA backend (grid), the J-PDT backend with the zero-copy
// read path and EBR deferral active (gridread), transactional
// allocation/free (pool), the non-transactional single-fence publication
// of the J-PDT types (pdt), and the lock-free persist-at-destination
// map/set (pdtlockfree).
func Workloads() []*Workload {
	return []*Workload{bankWorkload(), gridWorkload(), gridGroupWorkload(), gridDeltaWorkload(), gridReadWorkload(), poolWorkload(), pdtWorkload(), pdtLockFreeWorkload(), poolMigrateWorkload()}
}

// ByName resolves a workload; "all" is handled by callers.
func ByName(name string) (*Workload, bool) {
	for _, w := range Workloads() {
		if w.Name == name {
			return w, true
		}
	}
	return nil, false
}

func fsckClean(h *core.Heap) error {
	var msgs []string
	n := h.Fsck(func(m string) {
		if len(msgs) < 4 {
			msgs = append(msgs, m)
		}
	})
	if n != 0 {
		return fmt.Errorf("fsck: %d errors: %s", n, strings.Join(msgs, "; "))
	}
	return nil
}

func openCheckHeap(img *nvm.Pool, classes []*core.Class, mgr *fa.Manager, parallelism int) (*core.Heap, error) {
	return core.Open(img, core.Config{
		HeapOptions: heap.Options{LogSlots: 16, LogSlotSize: 1 << 14},
		Classes:     classes,
		LogHandler:  mgr,
		Recover:     core.RecoverOptions{Parallelism: parallelism},
	})
}

// auditLogHandler audits the crash image before delegating replay: a log
// slot durably marked committed with a zero entry count replays as an
// empty transaction, silently dropping a commit — the signature of a
// commit mark that outran its stage-1 persist (the delta-materialization
// regression). Only sound for workloads that never commit empty blocks.
type auditLogHandler struct{ mgr *fa.Manager }

func (a auditLogHandler) RecoverLogs(h *core.Heap, opts core.RecoverOptions) error {
	if err := fa.AuditCommittedSlots(h); err != nil {
		return err
	}
	return a.mgr.RecoverLogs(h, opts)
}

func openAuditHeap(img *nvm.Pool, classes []*core.Class, mgr *fa.Manager, parallelism int) (*core.Heap, error) {
	return core.Open(img, core.Config{
		HeapOptions: heap.Options{LogSlots: 16, LogSlotSize: 1 << 14},
		Classes:     classes,
		LogHandler:  auditLogHandler{mgr},
		Recover:     core.RecoverOptions{Parallelism: parallelism},
	})
}

// ---- bank: J-PFA failure-atomic transfers (§5.3.3) ----

// bankWorkload checks strict all-or-nothing atomicity: after a crash at
// any point, every balance vector must equal the committed oracle with
// the in-flight transfer either fully applied or fully absent, the total
// must be conserved, and the recovered bank must accept new transfers.
func bankWorkload() *Workload {
	const accounts = 8
	const transfers = 12
	type xfer struct {
		from, to int
		amount   int64
	}
	return &Workload{Name: "bank", PoolBytes: 1 << 22, New: func(seed int64) *Run {
		rng := rand.New(rand.NewSource(seed))
		committed := make([]int64, accounts)
		var inflight *xfer
		var bank *tpcb.JNVMBank
		return &Run{
			Setup: func(pool *nvm.Pool) error {
				b, err := tpcb.OpenJNVMBank(pool, accounts, false)
				bank = b
				return err
			},
			Exec: func(pool *nvm.Pool) error {
				for i := 0; i < transfers; i++ {
					from := rng.Intn(accounts)
					to := (from + 1 + rng.Intn(accounts-1)) % accounts
					amt := int64(1 + rng.Intn(100))
					inflight = &xfer{from: from, to: to, amount: amt}
					if err := bank.Transfer(from, to, amt); err != nil {
						return err
					}
					committed[from] -= amt
					committed[to] += amt
					inflight = nil
				}
				return nil
			},
			Check: func(img *nvm.Pool, parallelism int) error {
				b, err := tpcb.OpenJNVMBankRec(img, accounts, false, core.RecoverOptions{Parallelism: parallelism})
				if err != nil {
					return fmt.Errorf("reopen: %w", err)
				}
				if err := fsckClean(b.Heap()); err != nil {
					return err
				}
				readAll := func() ([]int64, int64, error) {
					got := make([]int64, accounts)
					var sum int64
					for i := range got {
						v, err := b.Balance(i)
						if err != nil {
							return nil, 0, fmt.Errorf("balance %d: %w", i, err)
						}
						got[i] = v
						sum += v
					}
					return got, sum, nil
				}
				got, sum, err := readAll()
				if err != nil {
					return err
				}
				if sum != 0 {
					return fmt.Errorf("money not conserved: balance sum %d (balances %v)", sum, got)
				}
				equal := func(want []int64) bool {
					for i := range want {
						if got[i] != want[i] {
							return false
						}
					}
					return true
				}
				ok := equal(committed)
				if !ok && inflight != nil {
					post := append([]int64(nil), committed...)
					post[inflight.from] -= inflight.amount
					post[inflight.to] += inflight.amount
					ok = equal(post)
				}
				if !ok {
					return fmt.Errorf("torn transfer: balances %v match neither committed %v nor committed+inflight %+v",
						got, committed, inflight)
				}
				// Writability probe: the recovered bank must keep working.
				if err := b.Transfer(0, 1, 7); err != nil {
					return fmt.Errorf("post-recovery transfer: %w", err)
				}
				if _, sum, err = readAll(); err != nil {
					return err
				} else if sum != 0 {
					return fmt.Errorf("money not conserved after post-recovery transfer: sum %d", sum)
				}
				return nil
			},
		}
	}}
}

// ---- grid: store-level put/update/delete/RMW over the J-PFA backend ----

// gridOp is the in-flight descriptor: the touched key may be observed in
// its pre- or post-op state, every other key must match the model.
type gridOp struct {
	key       string
	pre, post []byte // nil = absent
}

func gridClasses() []*core.Class {
	return append(pdt.Classes(), store.Classes()...)
}

func gridWorkload() *Workload {
	const nkeys = 10
	const ops = 30
	keys := make([]string, nkeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%02d", i)
	}
	return &Workload{Name: "grid", PoolBytes: 1 << 21, New: func(seed int64) *Run {
		rng := rand.New(rand.NewSource(seed))
		model := make(map[string][]byte) // committed value per key; nil/missing = absent
		var inflight *gridOp
		var g *store.Grid
		mkval := func(i int) []byte {
			n := 8 + rng.Intn(72) // up to two cache lines of payload
			v := make([]byte, n)
			for j := range v {
				v[j] = byte('a' + (i+j)%26)
			}
			return v
		}
		return &Run{
			Setup: func(pool *nvm.Pool) error {
				mgr := fa.NewManager()
				h, err := openCheckHeap(pool, gridClasses(), mgr, 1)
				if err != nil {
					return err
				}
				backend, err := store.NewJPFABackend(h, mgr, "grid.map")
				if err != nil {
					return err
				}
				g = store.NewGrid(backend, store.Options{CacheEntries: 4})
				return nil
			},
			Exec: func(pool *nvm.Pool) error {
				for i := 0; i < ops; i++ {
					key := keys[rng.Intn(nkeys)]
					pre := model[key]
					var post []byte
					var err error
					switch {
					case pre == nil:
						post = mkval(i)
						inflight = &gridOp{key: key, pre: pre, post: post}
						err = g.Insert(key, &store.Record{Fields: []store.Field{{Name: "v", Value: post}}})
					case rng.Intn(3) == 0:
						inflight = &gridOp{key: key, pre: pre, post: nil}
						err = g.Delete(key)
					case rng.Intn(2) == 0:
						post = mkval(i)
						inflight = &gridOp{key: key, pre: pre, post: post}
						err = g.Update(key, []store.Field{{Name: "v", Value: post}})
					default:
						post = mkval(i)
						inflight = &gridOp{key: key, pre: pre, post: post}
						err = g.ReadModifyWrite(key, func(rec *store.Record) []store.Field {
							return []store.Field{{Name: "v", Value: post}}
						})
					}
					if err != nil {
						return fmt.Errorf("op %d on %s: %w", i, key, err)
					}
					if post == nil {
						delete(model, key)
					} else {
						model[key] = post
					}
					inflight = nil
				}
				return nil
			},
			Check: func(img *nvm.Pool, parallelism int) error {
				mgr := fa.NewManager()
				h, err := openCheckHeap(img, gridClasses(), mgr, parallelism)
				if err != nil {
					return fmt.Errorf("reopen: %w", err)
				}
				if err := fsckClean(h); err != nil {
					return err
				}
				backend, err := store.NewJPFABackend(h, mgr, "grid.map")
				if err != nil {
					return fmt.Errorf("reopen backend: %w", err)
				}
				g := store.NewGrid(backend, store.Options{})
				read := func(key string) ([]byte, error) {
					var val []byte
					found := false
					err := g.Read(key, func(name string, v []byte) {
						if name == "v" {
							val = append([]byte(nil), v...)
							found = true
						}
					})
					if err == store.ErrNotFound {
						return nil, nil
					}
					if err != nil {
						return nil, err
					}
					if !found {
						return nil, fmt.Errorf("record %s has no field v", key)
					}
					return val, nil
				}
				for _, key := range keys {
					got, err := read(key)
					if err != nil {
						return fmt.Errorf("read %s: %w", key, err)
					}
					want := model[key]
					if bytes.Equal(got, want) && (got == nil) == (want == nil) {
						continue
					}
					if inflight != nil && inflight.key == key {
						if bytes.Equal(got, inflight.pre) && (got == nil) == (inflight.pre == nil) {
							continue
						}
						if bytes.Equal(got, inflight.post) && (got == nil) == (inflight.post == nil) {
							continue
						}
						return fmt.Errorf("torn op on %s: got %q, want pre %q or post %q",
							key, got, inflight.pre, inflight.post)
					}
					return fmt.Errorf("key %s: got %q, want %q", key, got, want)
				}
				// Writability probe.
				if err := g.Insert("probe", &store.Record{Fields: []store.Field{{Name: "v", Value: []byte("ok")}}}); err != nil {
					return fmt.Errorf("post-recovery insert: %w", err)
				}
				if v, err := read("probe"); err != nil || string(v) != "ok" {
					return fmt.Errorf("post-recovery readback: %q, %v", v, err)
				}
				return nil
			},
		}
	}}
}

// ---- gridgroup: async group commit over the J-PFA backend ----

// gridGroupWorkload crashes the epoch pipeline of DESIGN.md §15: updates
// run in CommitAsync mode with manual drains, so each epoch batches
// several commits behind one fence set. The oracle proves the prefix
// property — a crash recovers every fully-drained epoch (the caller was
// told so by AwaitDurable/DrainDurable returning) and, for the in-flight
// epoch, an all-or-nothing subset per key: each key reads either its last
// durable value or its queued update, never a torn mix and never a value
// from a later epoch while an earlier one is missing (epochs touch every
// key round-robin, so a skipped epoch would surface as a stale durable
// read after a collapse).
func gridGroupWorkload() *Workload {
	const nkeys = 8
	const epochs = 5
	const opsPerEpoch = 3 // < nkeys: round-robin keeps keys distinct per epoch
	keys := make([]string, nkeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("g%02d", i)
	}
	return &Workload{Name: "gridgroup", PoolBytes: 1 << 21, New: func(seed int64) *Run {
		rng := rand.New(rand.NewSource(seed))
		durable := make(map[string][]byte) // value proven durable by a returned drain
		pending := make(map[string][]byte) // queued in the in-flight epoch, nil = none
		var g *store.Grid
		var mgr *fa.Manager
		mkval := func(i int) []byte {
			n := 8 + rng.Intn(16)
			v := make([]byte, n)
			for j := range v {
				v[j] = byte('a' + (i+j)%26)
			}
			return v
		}
		return &Run{
			Setup: func(pool *nvm.Pool) error {
				mgr = fa.NewManager()
				h, err := openCheckHeap(pool, gridClasses(), mgr, 1)
				if err != nil {
					return err
				}
				backend, err := store.NewJPFABackend(h, mgr, "gridgroup.map")
				if err != nil {
					return err
				}
				g = store.NewGrid(backend, store.Options{CacheEntries: 4})
				// Seed every key in the default per-Tx mode, then switch to
				// the async pipeline for the explored phase.
				for i, key := range keys {
					v := mkval(i)
					if err := g.Insert(key, &store.Record{Fields: []store.Field{{Name: "v", Value: v}}}); err != nil {
						return err
					}
					durable[key] = v
				}
				return mgr.SetGroupCommit(fa.GroupOptions{Mode: fa.CommitAsync, ManualDrain: true})
			},
			Exec: func(pool *nvm.Pool) error {
				for e := 0; e < epochs; e++ {
					batch := make([]string, 0, opsPerEpoch)
					for j := 0; j < opsPerEpoch; j++ {
						key := keys[(e*opsPerEpoch+j)%nkeys]
						v := mkval(e*opsPerEpoch + j + 100)
						pending[key] = v
						if err := g.Update(key, []store.Field{{Name: "v", Value: v}}); err != nil {
							return fmt.Errorf("epoch %d update %s: %w", e, key, err)
						}
						batch = append(batch, key)
					}
					// Alternate the two drain APIs; both promise durability
					// of every ticket issued so far when they return.
					if e%2 == 0 {
						mgr.AwaitDurable(mgr.IssuedTickets())
					} else {
						mgr.DrainDurable()
					}
					for _, key := range batch {
						durable[key] = pending[key]
						delete(pending, key)
					}
				}
				return nil
			},
			Check: func(img *nvm.Pool, parallelism int) error {
				mgr2 := fa.NewManager()
				h, err := openCheckHeap(img, gridClasses(), mgr2, parallelism)
				if err != nil {
					return fmt.Errorf("reopen: %w", err)
				}
				if err := fsckClean(h); err != nil {
					return err
				}
				backend, err := store.NewJPFABackend(h, mgr2, "gridgroup.map")
				if err != nil {
					return fmt.Errorf("reopen backend: %w", err)
				}
				g2 := store.NewGrid(backend, store.Options{})
				for _, key := range keys {
					var val []byte
					err := g2.Read(key, func(name string, v []byte) {
						if name == "v" {
							val = append([]byte(nil), v...)
						}
					})
					if err != nil {
						return fmt.Errorf("read %s: %w", key, err)
					}
					if bytes.Equal(val, durable[key]) {
						continue
					}
					if p, ok := pending[key]; ok && bytes.Equal(val, p) {
						continue
					}
					return fmt.Errorf("key %s: recovered %q is neither the durable %q nor the queued %q",
						key, val, durable[key], pending[key])
				}
				// Writability probe: the recovered heap commits per-Tx again.
				if err := g2.Insert("probe", &store.Record{Fields: []store.Field{{Name: "v", Value: []byte("ok")}}}); err != nil {
					return fmt.Errorf("post-recovery insert: %w", err)
				}
				return nil
			},
		}
	}}
}

// ---- griddelta: delta-ledger folding under the async pipeline ----

// gridDeltaWorkload crashes the delta coalescing of DESIGN.md §19:
// counter increments ride the manager's fold ledger (volatile until a
// drain materializes one redo-log entry per hot key) while updates on the
// same keys queue as ordinary async commits, forcing the drain-on-overlap
// interactions. The oracle tracks, per key, the in-flight folded value
// (base+sum: a fold materializes atomically, so a partial sum must never
// surface) plus the set of values any internal drain may have made
// durable; each returned drain collapses the set to exactly the current
// value — a lost or double-applied folded delta fails there. Parallel
// recovery additionally replays the identical image serially and demands
// bit-identical pool bytes: a folded entry is one ordinary redo-log write,
// so both recovery paths must land on the same image.
func gridDeltaWorkload() *Workload {
	const nkeys = 6
	const epochs = 4
	const opsPerEpoch = 6
	keys := make([]string, nkeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("c%02d", i)
	}
	counterBytes := func(v int64) []byte {
		b := make([]byte, 8)
		for i := 0; i < 8; i++ {
			b[i] = byte(uint64(v) >> (8 * i))
		}
		return b
	}
	return &Workload{Name: "griddelta", PoolBytes: 1 << 21, New: func(seed int64) *Run {
		rng := rand.New(rand.NewSource(seed))
		base := make([]int64, nkeys) // value with every drained write applied
		sum := make([]int64, nkeys)  // in-flight folded delta on top of base
		durable := make([]map[int64]bool, nkeys)
		recPending := make([]bool, nkeys) // a queued (non-ledger) tx touched the key
		isCounter := make([]bool, nkeys)  // value is block-resident (ledger-foldable)
		for i := range durable {
			durable[i] = map[int64]bool{}
		}
		// boundary models a drain the pipeline ran internally (overlap
		// or upgrade forced it): everything in flight may now be durable.
		// Misfires are safe — the check always accepts base+sum — but a
		// fired boundary records the states a crash mid-exec may surface.
		boundary := func() {
			for j := range keys {
				base[j] += sum[j]
				sum[j] = 0
				durable[j][base[j]] = true
				recPending[j] = false
			}
		}
		var g *store.Grid
		var mgr *fa.Manager
		return &Run{
			// On tear-free images a committed log slot with a zero entry
			// count means a commit mark outran its stage-1 persist — the
			// signature of a delta materialization whose fold would
			// silently drop at replay (fa.epochStage1's regression).
			Audit: func(imgs []*nvm.Pool) error {
				_, err := openAuditHeap(imgs[0], gridClasses(), fa.NewManager(), 1)
				return err
			},
			Setup: func(pool *nvm.Pool) error {
				mgr = fa.NewManager()
				h, err := openCheckHeap(pool, gridClasses(), mgr, 1)
				if err != nil {
					return err
				}
				backend, err := store.NewJPFABackend(h, mgr, "griddelta.map")
				if err != nil {
					return err
				}
				g = store.NewGrid(backend, store.Options{CacheEntries: 4})
				// Seed per-Tx: insert each counter, then one delta to
				// upgrade the pooled value to a block-resident counter so
				// the async phase folds in the ledger from the first op.
				for i, key := range keys {
					v := int64(100 * (i + 1))
					if err := g.Insert(key, &store.Record{Fields: []store.Field{{Name: "n", Value: counterBytes(v)}}}); err != nil {
						return err
					}
					if err := g.AddDelta(key, "n", 1); err != nil {
						return err
					}
					base[i] = v + 1
					durable[i][base[i]] = true
					isCounter[i] = true
				}
				return mgr.SetGroupCommit(fa.GroupOptions{Mode: fa.CommitAsync, ManualDrain: true})
			},
			Exec: func(pool *nvm.Pool) error {
				for e := 0; e < epochs; e++ {
					for i := 0; i < opsPerEpoch; i++ {
						k := rng.Intn(nkeys)
						if rng.Intn(10) < 7 {
							d := int64(1 + rng.Intn(9))
							if rng.Intn(4) == 0 {
								d = -d
							}
							// A queued tx on this key's blocks forces the
							// pipeline to drain before the fold can ride.
							if recPending[k] {
								boundary()
							}
							if !isCounter[k] {
								// Pooled value: the delta arrives inside an
								// upgrade tx (queued, all-or-nothing).
								recPending[k] = true
								isCounter[k] = true
							}
							if err := g.AddDelta(keys[k], "n", d); err != nil {
								return fmt.Errorf("epoch %d delta %s: %w", e, keys[k], err)
							}
							sum[k] += d
						} else {
							// Plain update: swings the value to a fresh pooled
							// blob; a pending fold or queued tx on the key
							// drains first (tx.Free waits the blocks clear).
							if sum[k] != 0 || recPending[k] {
								boundary()
							}
							x := int64(1000*(e+1) + i)
							if err := g.Update(keys[k], []store.Field{{Name: "n", Value: counterBytes(x)}}); err != nil {
								return fmt.Errorf("epoch %d update %s: %w", e, keys[k], err)
							}
							base[k] = x
							sum[k] = 0
							isCounter[k] = false
							recPending[k] = true
						}
					}
					// Alternate the drain APIs; both promise every issued
					// ticket (folds included) durable on return.
					if e%2 == 0 {
						mgr.AwaitDurable(mgr.IssuedTickets())
					} else {
						mgr.DrainDurable()
					}
					for j := range keys {
						base[j] += sum[j]
						sum[j] = 0
						recPending[j] = false
						durable[j] = map[int64]bool{base[j]: true}
					}
				}
				return nil
			},
			Check: func(img *nvm.Pool, parallelism int) error {
				var snapshot []byte
				if parallelism > 1 {
					// A folded entry is an ordinary redo-log write, so
					// serial and parallel replay of the same image must be
					// bit-identical before either serves reads.
					snapshot = img.ReadBytes(0, img.Size())
				}
				mgr2 := fa.NewManager()
				h, err := openCheckHeap(img, gridClasses(), mgr2, parallelism)
				if err != nil {
					return fmt.Errorf("reopen: %w", err)
				}
				if parallelism > 1 {
					img2 := nvm.New(len(snapshot), nvm.Options{})
					img2.WriteBytes(0, snapshot)
					if _, err := openCheckHeap(img2, gridClasses(), fa.NewManager(), 1); err != nil {
						return fmt.Errorf("serial replay: %w", err)
					}
					if !bytes.Equal(img.ReadBytes(0, img.Size()), img2.ReadBytes(0, img2.Size())) {
						return fmt.Errorf("serial and parallel recovery images differ")
					}
				}
				if err := fsckClean(h); err != nil {
					return err
				}
				backend, err := store.NewJPFABackend(h, mgr2, "griddelta.map")
				if err != nil {
					return fmt.Errorf("reopen backend: %w", err)
				}
				g2 := store.NewGrid(backend, store.Options{})
				read := func(key string) (int64, error) {
					var raw []byte
					err := g2.Read(key, func(name string, v []byte) {
						if name == "n" {
							raw = append([]byte(nil), v...)
						}
					})
					if err != nil {
						return 0, err
					}
					if len(raw) != 8 {
						return 0, fmt.Errorf("counter is %d bytes (torn?)", len(raw))
					}
					var v uint64
					for i := 0; i < 8; i++ {
						v |= uint64(raw[i]) << (8 * i)
					}
					return int64(v), nil
				}
				for j, key := range keys {
					got, err := read(key)
					if err != nil {
						return fmt.Errorf("read %s: %w", key, err)
					}
					if got == base[j]+sum[j] || durable[j][got] {
						continue
					}
					return fmt.Errorf("key %s: recovered %d is neither in-flight %d nor any drained state %v",
						key, got, base[j]+sum[j], int64Keys(durable[j]))
				}
				// Writability probe: the recovered grid folds per-Tx again.
				if err := g2.AddDelta(keys[0], "n", 5); err != nil {
					return fmt.Errorf("post-recovery delta: %w", err)
				}
				before, err := read(keys[0])
				if err != nil {
					return err
				}
				if err := g2.AddDelta(keys[0], "n", -2); err != nil {
					return fmt.Errorf("post-recovery second delta: %w", err)
				}
				if after, err := read(keys[0]); err != nil || after != before-2 {
					return fmt.Errorf("post-recovery fold lost: %d -> %d, %v", before, after, err)
				}
				return nil
			},
		}
	}}
}

// ---- gridread: J-PDT backend, zero-copy reads, EBR deferral ----

// gridReadWorkload crashes the store's fastest path: the J-PDT backend
// behind a cache-less grid, which adopts the seqlock zero-copy reader and
// enables epoch-based reclamation on the heap. Writes follow the
// non-transactional §4.1.6 discipline (validate+fence before the swing,
// fence before the free), so the per-key oracle is a *set* of legal
// states: every value written since the op whose internal fence last made
// the world durable, plus the fenced state. Reads interleave with the
// writes so crash points land while retired-but-unreclaimed blocks exist,
// and every Check recovers the image and re-reads through a fresh
// zero-copy grid.
func gridReadWorkload() *Workload {
	const nkeys = 8
	const ops = 36
	keys := make([]string, nkeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("r%02d", i)
	}
	return &Workload{Name: "gridread", PoolBytes: 1 << 21, New: func(seed int64) *Run {
		rng := rand.New(rand.NewSource(seed))
		model := make(map[string][]byte)         // committed value per key; missing = absent
		poss := make(map[string]map[string]bool) // legal recovered states per key
		for _, k := range keys {
			poss[k] = map[string]bool{absentState: true}
		}
		// collapse records that a global fence just made the committed
		// model durable for every key.
		collapse := func() {
			for _, k := range keys {
				if v, ok := model[k]; ok {
					poss[k] = map[string]bool{string(v): true}
				} else {
					poss[k] = map[string]bool{absentState: true}
				}
			}
		}
		var g *store.Grid
		mkval := func(i int) []byte {
			n := 8 + rng.Intn(72)
			if rng.Intn(4) == 0 {
				n = 280 + rng.Intn(120) // chained blob: defeats the view reader
			}
			v := make([]byte, n)
			for j := range v {
				v[j] = byte('a' + (i+j)%26)
			}
			return v
		}
		read := func(gr *store.Grid, key string) ([]byte, error) {
			var val []byte
			found := false
			err := gr.Read(key, func(name string, v []byte) {
				if name == "v" {
					val = append([]byte(nil), v...)
					found = true
				}
			})
			if err == store.ErrNotFound {
				return nil, nil
			}
			if err != nil {
				return nil, err
			}
			if !found {
				return nil, fmt.Errorf("record %s has no field v", key)
			}
			return val, nil
		}
		return &Run{
			Setup: func(pool *nvm.Pool) error {
				h, err := openCheckHeap(pool, gridClasses(), fa.NewManager(), 1)
				if err != nil {
					return err
				}
				backend, err := store.NewJPDTBackend(h, "gridread.map")
				if err != nil {
					return err
				}
				// No record cache, so the grid adopts the zero-copy read
				// path and turns on EBR.
				g = store.NewGrid(backend, store.Options{})
				return nil
			},
			Exec: func(pool *nvm.Pool) error {
				for i := 0; i < ops; i++ {
					key := keys[rng.Intn(nkeys)]
					switch rng.Intn(6) {
					case 0, 1, 2: // write: insert when absent, update otherwise
						v := mkval(i)
						if model[key] == nil {
							// Map.Put fences mid-op, *before* publication:
							// the binding rides unfenced, and crash points
							// earlier in the op still see the pre-fence
							// world, so nothing collapses here.
							poss[key][string(v)] = true
							if err := g.Insert(key, &store.Record{Fields: []store.Field{{Name: "v", Value: v}}}); err != nil {
								return fmt.Errorf("op %d insert %s: %w", i, key, err)
							}
							model[key] = v
						} else {
							poss[key][string(v)] = true
							if err := g.Update(key, []store.Field{{Name: "v", Value: v}}); err != nil {
								return fmt.Errorf("op %d update %s: %w", i, key, err)
							}
							// AtomicReplaceRef fenced the swing before
							// freeing the old value: everything committed
							// is now durable.
							model[key] = v
							collapse()
						}
					case 3: // delete when present (Remove fences the unlink)
						if model[key] == nil {
							continue
						}
						poss[key][absentState] = true
						if err := g.Delete(key); err != nil {
							return fmt.Errorf("op %d delete %s: %w", i, key, err)
						}
						delete(model, key)
						collapse()
					default: // read through the zero-copy path, checked live
						got, err := read(g, key)
						if err != nil {
							return fmt.Errorf("op %d read %s: %w", i, key, err)
						}
						if !bytes.Equal(got, model[key]) || (got == nil) != (model[key] == nil) {
							return fmt.Errorf("op %d read %s: got %q, model %q", i, key, got, model[key])
						}
					}
				}
				return nil
			},
			Check: func(img *nvm.Pool, parallelism int) error {
				h, err := openCheckHeap(img, gridClasses(), fa.NewManager(), parallelism)
				if err != nil {
					return fmt.Errorf("reopen: %w", err)
				}
				if err := fsckClean(h); err != nil {
					return err
				}
				backend, err := store.NewJPDTBackend(h, "gridread.map")
				if err != nil {
					return fmt.Errorf("reopen backend: %w", err)
				}
				// The recovered grid adopts zero-copy again, so every
				// crash image is re-read through the view path.
				g2 := store.NewGrid(backend, store.Options{})
				for _, key := range keys {
					got, err := read(g2, key)
					if err != nil {
						return fmt.Errorf("read %s: %w", key, err)
					}
					state := absentState
					if got != nil {
						state = string(got)
					}
					if !poss[key][state] {
						return fmt.Errorf("key %s: recovered %q not in %d legal states", key, state, len(poss[key]))
					}
				}
				// Writability probe: the recovered heap must accept the
				// full op mix through the same path.
				if err := g2.Insert("probe", &store.Record{Fields: []store.Field{{Name: "v", Value: []byte("ok")}}}); err != nil {
					return fmt.Errorf("post-recovery insert: %w", err)
				}
				if err := g2.Update("probe", []store.Field{{Name: "v", Value: []byte("ok2")}}); err != nil {
					return fmt.Errorf("post-recovery update: %w", err)
				}
				if v, err := read(g2, "probe"); err != nil || string(v) != "ok2" {
					return fmt.Errorf("post-recovery readback: %q, %v", v, err)
				}
				return nil
			},
		}
	}}
}

// ---- pool: transactional allocation and free through pdt.Map ----

// poolWorkload drives the heap allocator inside failure-atomic blocks:
// PutTx allocates key strings, pairs and values (pooled small strings
// and multi-block byte blobs), DeleteTx frees them, and a crash at any
// point must leave the map exactly at the committed model with at most
// the in-flight op applied — with no leaked or dangling blocks (fsck).
func poolWorkload() *Workload {
	const nkeys = 10
	const ops = 24
	keys := make([]string, nkeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("p%02d", i)
	}
	type poolVal struct {
		isStr bool
		data  []byte
	}
	type poolOp struct {
		key       string
		pre, post *poolVal
	}
	return &Workload{Name: "pool", PoolBytes: 1 << 21, New: func(seed int64) *Run {
		rng := rand.New(rand.NewSource(seed))
		model := make(map[string]*poolVal)
		var inflight *poolOp
		var h *core.Heap
		var mgr *fa.Manager
		var m *pdt.Map
		mkval := func(i int) *poolVal {
			if rng.Intn(2) == 0 {
				n := 4 + rng.Intn(32) // pooled small string
				b := make([]byte, n)
				for j := range b {
					b[j] = byte('A' + (i+j)%26)
				}
				return &poolVal{isStr: true, data: b}
			}
			n := 260 + rng.Intn(400) // spans 2-3 heap blocks
			b := make([]byte, n)
			for j := range b {
				b[j] = byte(i + j)
			}
			return &poolVal{data: b}
		}
		readVal := func(po core.PObject) (*poolVal, error) {
			switch v := po.(type) {
			case *pdt.PString:
				return &poolVal{isStr: true, data: []byte(v.Value())}, nil
			case *pdt.PBytes:
				return &poolVal{data: v.Value()}, nil
			case nil:
				return nil, nil
			default:
				return nil, fmt.Errorf("unexpected value type %T", po)
			}
		}
		sameVal := func(a, b *poolVal) bool {
			if a == nil || b == nil {
				return a == b
			}
			return a.isStr == b.isStr && bytes.Equal(a.data, b.data)
		}
		putTx := func(mp *pdt.Map, mg *fa.Manager, key string, v *poolVal) error {
			return mg.Run(func(tx *fa.Tx) error {
				var po core.PObject
				var err error
				if v.isStr {
					po, err = pdt.NewStringTx(tx, string(v.data))
				} else {
					po, err = pdt.NewBytesTx(tx, v.data)
				}
				if err != nil {
					return err
				}
				return mp.PutTx(tx, key, po)
			})
		}
		return &Run{
			Setup: func(pool *nvm.Pool) error {
				mgr = fa.NewManager()
				var err error
				h, err = openCheckHeap(pool, pdt.Classes(), mgr, 1)
				if err != nil {
					return err
				}
				m, err = pdt.NewMap(h, pdt.MirrorHash)
				if err != nil {
					return err
				}
				return h.Root().Put("pool.map", m)
			},
			Exec: func(pool *nvm.Pool) error {
				for i := 0; i < ops; i++ {
					key := keys[rng.Intn(nkeys)]
					pre := model[key]
					if pre == nil || rng.Intn(3) != 0 {
						post := mkval(i)
						inflight = &poolOp{key: key, pre: pre, post: post}
						if err := putTx(m, mgr, key, post); err != nil {
							return fmt.Errorf("put %s: %w", key, err)
						}
						model[key] = post
					} else {
						inflight = &poolOp{key: key, pre: pre, post: nil}
						if err := mgr.Run(func(tx *fa.Tx) error {
							_, err := m.DeleteTx(tx, key)
							return err
						}); err != nil {
							return fmt.Errorf("delete %s: %w", key, err)
						}
						delete(model, key)
					}
					inflight = nil
				}
				return nil
			},
			Check: func(img *nvm.Pool, parallelism int) error {
				mgr2 := fa.NewManager()
				h2, err := openCheckHeap(img, pdt.Classes(), mgr2, parallelism)
				if err != nil {
					return fmt.Errorf("reopen: %w", err)
				}
				if err := fsckClean(h2); err != nil {
					return err
				}
				po, err := h2.Root().Get("pool.map")
				if err != nil {
					return fmt.Errorf("root map: %w", err)
				}
				m2, ok := po.(*pdt.Map)
				if !ok {
					return fmt.Errorf("root pool.map is %T, not *pdt.Map", po)
				}
				for _, key := range keys {
					vpo, err := m2.Get(key)
					if err != nil {
						return fmt.Errorf("get %s: %w", key, err)
					}
					got, err := readVal(vpo)
					if err != nil {
						return fmt.Errorf("value of %s: %w", key, err)
					}
					if sameVal(got, model[key]) {
						continue
					}
					if inflight != nil && inflight.key == key &&
						(sameVal(got, inflight.pre) || sameVal(got, inflight.post)) {
						continue
					}
					return fmt.Errorf("key %s: recovered value does not match committed model (inflight %v)",
						key, inflight != nil)
				}
				// No phantom bindings beyond the working key set.
				for _, k := range m2.Keys() {
					if !strings.HasPrefix(k, "p") {
						return fmt.Errorf("phantom key %q in recovered map", k)
					}
				}
				// Writability probe: non-tx publication on the recovered heap.
				ps, err := pdt.NewString(h2, "probe")
				if err != nil {
					return fmt.Errorf("post-recovery alloc: %w", err)
				}
				if err := m2.Put("zz-probe", ps); err != nil {
					return fmt.Errorf("post-recovery put: %w", err)
				}
				back, err := m2.Get("zz-probe")
				if err != nil {
					return fmt.Errorf("post-recovery get: %w", err)
				}
				if s, ok := back.(*pdt.PString); !ok || s.Value() != "probe" {
					return fmt.Errorf("post-recovery readback mismatch")
				}
				return nil
			},
		}
	}}
}

// ---- pdt: non-transactional map/set/array publication discipline ----

const absentState = "\x00absent"

// pdtWorkload checks the single-fence publication rules (§3.2.3) without
// failure-atomic blocks. Individual ops are not atomic across a crash,
// so the oracle tracks the *set* of states each key/cell may legally
// hold: every value written since the last full fence plus the fenced
// state, never anything torn, half-initialized, or from another key.
func pdtWorkload() *Workload {
	const nkeys = 8
	const cells = 8
	const ops = 36
	keys := make([]string, nkeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("d%02d", i)
	}
	return &Workload{Name: "pdt", PoolBytes: 1 << 21, New: func(seed int64) *Run {
		rng := rand.New(rand.NewSource(seed))
		// possible[k] is the set of states key k may recover to.
		mapPoss := make(map[string]map[string]bool)
		setPoss := make(map[string]map[string]bool)
		arrPoss := make([]map[int64]bool, cells)
		mapCur := make(map[string]string)
		setCur := make(map[string]bool)
		arrCur := make([]int64, cells)
		for _, k := range keys {
			mapPoss[k] = map[string]bool{absentState: true}
			setPoss[k] = map[string]bool{absentState: true}
		}
		for i := range arrPoss {
			arrPoss[i] = map[int64]bool{0: true}
		}
		var h *core.Heap
		var m *pdt.Map
		var s *pdt.Set
		var arr *pdt.PLongArray
		collapse := func() {
			for _, k := range keys {
				if v, ok := mapCur[k]; ok {
					mapPoss[k] = map[string]bool{v: true}
				} else {
					mapPoss[k] = map[string]bool{absentState: true}
				}
				if setCur[k] {
					setPoss[k] = map[string]bool{"present": true}
				} else {
					setPoss[k] = map[string]bool{absentState: true}
				}
			}
			for i := range arrPoss {
				arrPoss[i] = map[int64]bool{arrCur[i]: true}
			}
		}
		return &Run{
			Setup: func(pool *nvm.Pool) error {
				var err error
				h, err = openCheckHeap(pool, pdt.Classes(), fa.NewManager(), 1)
				if err != nil {
					return err
				}
				if m, err = pdt.NewMap(h, pdt.MirrorHash); err != nil {
					return err
				}
				if err = h.Root().Put("pdt.map", m); err != nil {
					return err
				}
				if s, err = pdt.NewSet(h, pdt.MirrorTree); err != nil {
					return err
				}
				if err = h.Root().Put("pdt.set", s.Map()); err != nil {
					return err
				}
				if arr, err = pdt.NewLongArray(h, cells); err != nil {
					return err
				}
				return h.Root().Put("pdt.arr", arr)
			},
			Exec: func(pool *nvm.Pool) error {
				for i := 0; i < ops; i++ {
					switch rng.Intn(7) {
					case 0, 1: // map put
						k := keys[rng.Intn(nkeys)]
						v := fmt.Sprintf("m%03d", i)
						mapPoss[k][v] = true
						ps, err := pdt.NewString(h, v)
						if err != nil {
							return err
						}
						if err := m.Put(k, ps); err != nil {
							return fmt.Errorf("map put %s: %w", k, err)
						}
						mapCur[k] = v
					case 2: // map delete
						k := keys[rng.Intn(nkeys)]
						mapPoss[k][absentState] = true
						m.Delete(k)
						delete(mapCur, k)
					case 3: // set add
						k := keys[rng.Intn(nkeys)]
						setPoss[k]["present"] = true
						if err := s.Add(k); err != nil {
							return fmt.Errorf("set add %s: %w", k, err)
						}
						setCur[k] = true
					case 4: // set delete
						k := keys[rng.Intn(nkeys)]
						setPoss[k][absentState] = true
						s.Delete(k)
						delete(setCur, k)
					case 5: // array store + per-element flush + fence
						i2 := rng.Intn(cells)
						v := int64(rng.Intn(1 << 30))
						arrPoss[i2][v] = true
						arr.Set(i2, v)
						arr.FlushElem(i2)
						h.PFence()
						arrCur[i2] = v
						// The fence made exactly this cell durable.
						arrPoss[i2] = map[int64]bool{v: true}
					case 6: // checkpoint: everything becomes durable
						h.PSync()
						collapse()
					}
				}
				return nil
			},
			Check: func(img *nvm.Pool, parallelism int) error {
				h2, err := openCheckHeap(img, pdt.Classes(), fa.NewManager(), parallelism)
				if err != nil {
					return fmt.Errorf("reopen: %w", err)
				}
				if err := fsckClean(h2); err != nil {
					return err
				}
				mpo, err := h2.Root().Get("pdt.map")
				if err != nil {
					return fmt.Errorf("root pdt.map: %w", err)
				}
				m2 := mpo.(*pdt.Map)
				spo, err := h2.Root().Get("pdt.set")
				if err != nil {
					return fmt.Errorf("root pdt.set: %w", err)
				}
				s2 := pdt.AsSet(spo.(*pdt.Map))
				apo, err := h2.Root().Get("pdt.arr")
				if err != nil {
					return fmt.Errorf("root pdt.arr: %w", err)
				}
				arr2 := apo.(*pdt.PLongArray)
				for _, k := range keys {
					vpo, err := m2.Get(k)
					if err != nil {
						return fmt.Errorf("map get %s: %w", k, err)
					}
					state := absentState
					if vpo != nil {
						ps, ok := vpo.(*pdt.PString)
						if !ok {
							return fmt.Errorf("map %s: half-initialized value %T", k, vpo)
						}
						state = ps.Value()
					}
					if !mapPoss[k][state] {
						return fmt.Errorf("map %s: recovered %q not in legal states %v", k, state, stateNames(mapPoss[k]))
					}
					sstate := absentState
					if s2.Contains(k) {
						sstate = "present"
					}
					if !setPoss[k][sstate] {
						return fmt.Errorf("set %s: recovered %q not in legal states %v", k, sstate, stateNames(setPoss[k]))
					}
				}
				for _, k := range m2.Keys() {
					if !strings.HasPrefix(k, "d") {
						return fmt.Errorf("phantom map key %q", k)
					}
				}
				for i := 0; i < cells; i++ {
					if v := arr2.Get(i); !arrPoss[i][v] {
						return fmt.Errorf("array[%d]: recovered %d not in legal states %v (word tear?)", i, v, int64Keys(arrPoss[i]))
					}
				}
				// Writability probe.
				ps, err := pdt.NewString(h2, "probe")
				if err != nil {
					return fmt.Errorf("post-recovery alloc: %w", err)
				}
				if err := m2.Put("d-probe", ps); err != nil {
					return fmt.Errorf("post-recovery put: %w", err)
				}
				arr2.Set(0, 42)
				arr2.FlushElem(0)
				h2.PFence()
				if arr2.Get(0) != 42 {
					return fmt.Errorf("post-recovery array write lost")
				}
				return nil
			},
		}
	}}
}

// ---- pdtlockfree: lock-free map/set persist-at-destination writes ----

// pdtLockFreeWorkload crashes the SOFT-style lock-free structures of
// DESIGN.md §16: every structural write persists only its destination
// cell (one pwb + one fence), validity brackets gate recovery, and the
// links are volatile (rebuilt by OnResurrect). Individual ops are not
// atomic across a crash and their durability rides later fences, so the
// oracle is a possible-state set per key: every value bound since the
// last full checkpoint plus the checkpointed state. The key mix includes
// indirect keys (> 36 bytes, spilled to a key blob) so crash points land
// inside the two-object publication. Every Check recovers through the
// standard path and fscks both the heap and the map's own
// bracket-vs-reachability invariant; parallel-recovery Checks replay the
// identical image through the serial §4.1.3 oracle too and demand
// observationally identical maps (the cross-check of the §16
// fixed-index-merge argument — at this scale the parallel path degrades
// to serial below lfRebuildParallelMin, so divergence here would mean
// the dispatch itself is unsound).
func pdtLockFreeWorkload() *Workload {
	const ops = 34
	keys := []string{
		"l00", "l01", "l02", "l03", "l04", "l05",
		// Indirect keys: longer than the 36-byte inline bound.
		"l-indirect-" + strings.Repeat("x", 40),
		"l-indirect-" + strings.Repeat("y", 40),
	}
	return &Workload{Name: "pdtlockfree", PoolBytes: 1 << 21, New: func(seed int64) *Run {
		rng := rand.New(rand.NewSource(seed))
		mapPoss := make(map[string]map[string]bool)
		setPoss := make(map[string]map[string]bool)
		mapCur := make(map[string]string)
		setCur := make(map[string]bool)
		for _, k := range keys {
			mapPoss[k] = map[string]bool{absentState: true}
			setPoss[k] = map[string]bool{absentState: true}
		}
		var h *core.Heap
		var m *pdt.LFMap
		var s *pdt.LFSet
		collapse := func() {
			for _, k := range keys {
				if v, ok := mapCur[k]; ok {
					mapPoss[k] = map[string]bool{v: true}
				} else {
					mapPoss[k] = map[string]bool{absentState: true}
				}
				if setCur[k] {
					setPoss[k] = map[string]bool{"present": true}
				} else {
					setPoss[k] = map[string]bool{absentState: true}
				}
			}
		}
		// checkOne verifies one recovered heap against the oracle and
		// returns the map's observable state for the serial/parallel
		// comparison: sorted "key=value" bindings plus sorted members.
		checkOne := func(img *nvm.Pool, parallelism int) ([]string, []string, error) {
			h2, err := openCheckHeap(img, pdt.Classes(), fa.NewManager(), parallelism)
			if err != nil {
				return nil, nil, fmt.Errorf("reopen: %w", err)
			}
			if err := fsckClean(h2); err != nil {
				return nil, nil, err
			}
			mpo, err := h2.Root().Get("lf.map")
			if err != nil {
				return nil, nil, fmt.Errorf("root lf.map: %w", err)
			}
			m2, ok := mpo.(*pdt.LFMap)
			if !ok {
				return nil, nil, fmt.Errorf("root lf.map is %T, not *pdt.LFMap", mpo)
			}
			spo, err := h2.Root().Get("lf.set")
			if err != nil {
				return nil, nil, fmt.Errorf("root lf.set: %w", err)
			}
			s2, ok := spo.(*pdt.LFSet)
			if !ok {
				return nil, nil, fmt.Errorf("root lf.set is %T, not *pdt.LFSet", spo)
			}
			if err := m2.FsckOrphans(); err != nil {
				return nil, nil, err
			}
			if err := s2.FsckOrphans(); err != nil {
				return nil, nil, err
			}
			for _, k := range keys {
				vpo, err := m2.Get(k)
				if err != nil {
					return nil, nil, fmt.Errorf("map get %s: %w", k, err)
				}
				state := absentState
				if vpo != nil {
					pb, ok := vpo.(*pdt.PBytes)
					if !ok {
						return nil, nil, fmt.Errorf("map %s: half-initialized value %T", k, vpo)
					}
					state = string(pb.Value())
				}
				if !mapPoss[k][state] {
					return nil, nil, fmt.Errorf("map %s: recovered %q not in legal states %v", k, state, stateNames(mapPoss[k]))
				}
				sstate := absentState
				if s2.Contains(k) {
					sstate = "present"
				}
				if !setPoss[k][sstate] {
					return nil, nil, fmt.Errorf("set %s: recovered %q not in legal states %v", k, sstate, stateNames(setPoss[k]))
				}
			}
			binds := make([]string, 0, m2.Len())
			m2.ForEach(func(k string, vref core.Ref) bool {
				if !strings.HasPrefix(k, "l") {
					err = fmt.Errorf("phantom map key %q", k)
					return false
				}
				binds = append(binds, k+"="+string(pdt.ReadBlobView(h2, vref)))
				return true
			})
			if err != nil {
				return nil, nil, err
			}
			sort.Strings(binds)
			members := s2.Members()
			for _, k := range members {
				if !strings.HasPrefix(k, "l") {
					return nil, nil, fmt.Errorf("phantom set member %q", k)
				}
			}
			sort.Strings(members)
			// Writability probe: the recovered structures must accept the
			// full op mix through the same lock-free path.
			pb, err := pdt.NewBytesValid(h2, []byte("ok"))
			if err != nil {
				return nil, nil, fmt.Errorf("post-recovery alloc: %w", err)
			}
			if err := m2.Put("z-probe", pb); err != nil {
				return nil, nil, fmt.Errorf("post-recovery put: %w", err)
			}
			if got, err := m2.Get("z-probe"); err != nil {
				return nil, nil, fmt.Errorf("post-recovery get: %w", err)
			} else if b, ok := got.(*pdt.PBytes); !ok || string(b.Value()) != "ok" {
				return nil, nil, fmt.Errorf("post-recovery readback mismatch")
			}
			if !m2.Delete("z-probe") {
				return nil, nil, fmt.Errorf("post-recovery delete lost the probe")
			}
			if err := s2.Add("z-probe"); err != nil {
				return nil, nil, fmt.Errorf("post-recovery set add: %w", err)
			}
			if !s2.Contains("z-probe") {
				return nil, nil, fmt.Errorf("post-recovery set membership lost")
			}
			return binds, members, nil
		}
		return &Run{
			Setup: func(pool *nvm.Pool) error {
				var err error
				h, err = openCheckHeap(pool, pdt.Classes(), fa.NewManager(), 1)
				if err != nil {
					return err
				}
				if m, err = pdt.NewLFMap(h, 16); err != nil {
					return err
				}
				if err = h.Root().Put("lf.map", m); err != nil {
					return err
				}
				if s, err = pdt.NewLFSet(h, 16); err != nil {
					return err
				}
				return h.Root().Put("lf.set", s)
			},
			Exec: func(pool *nvm.Pool) error {
				for i := 0; i < ops; i++ {
					k := keys[rng.Intn(len(keys))]
					switch rng.Intn(8) {
					case 0, 1, 2: // map put (insert or CAS-update)
						v := fmt.Sprintf("v%03d", i)
						pb, err := pdt.NewBytesValid(h, []byte(v))
						if err != nil {
							return err
						}
						mapPoss[k][v] = true
						if err := m.Put(k, pb); err != nil {
							return fmt.Errorf("op %d put %s: %w", i, k, err)
						}
						mapCur[k] = v
					case 3: // map delete (claim + one pwb + volatile unlink)
						mapPoss[k][absentState] = true
						m.Delete(k)
						delete(mapCur, k)
					case 4: // set add (idempotent marker insert)
						setPoss[k]["present"] = true
						if err := s.Add(k); err != nil {
							return fmt.Errorf("op %d add %s: %w", i, k, err)
						}
						setCur[k] = true
					case 5: // set delete
						setPoss[k][absentState] = true
						s.Delete(k)
						delete(setCur, k)
					case 6: // lock-free read, checked live against the model
						var got string
						found := m.WithValue(k, func(vref core.Ref) {
							got = string(pdt.ReadBlobView(h, vref))
						})
						want, ok := mapCur[k]
						if found != ok || (found && got != want) {
							return fmt.Errorf("op %d read %s: got (%q,%v), model (%q,%v)", i, k, got, found, want, ok)
						}
					case 7: // checkpoint: everything becomes durable
						h.PSync()
						collapse()
					}
				}
				return nil
			},
			Check: func(img *nvm.Pool, parallelism int) error {
				var snapshot []byte
				if parallelism > 1 {
					snapshot = img.ReadBytes(0, img.Size())
				}
				binds, members, err := checkOne(img, parallelism)
				if err != nil {
					return err
				}
				if parallelism > 1 {
					// Serial-vs-parallel cross-check on the identical image.
					img2 := nvm.New(len(snapshot), nvm.Options{})
					img2.WriteBytes(0, snapshot)
					sbinds, smembers, err := checkOne(img2, 1)
					if err != nil {
						return fmt.Errorf("serial replay of parallel image: %w", err)
					}
					if strings.Join(binds, ",") != strings.Join(sbinds, ",") {
						return fmt.Errorf("serial/parallel map divergence: par=%v serial=%v", binds, sbinds)
					}
					if strings.Join(members, ",") != strings.Join(smembers, ",") {
						return fmt.Errorf("serial/parallel set divergence: par=%v serial=%v", members, smembers)
					}
				}
				return nil
			},
		}
	}}
}

func stateNames(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		if k == absentState {
			k = "<absent>"
		}
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func int64Keys(m map[int64]bool) []int64 {
	out := make([]int64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ---- poolmigrate: online pool addition and record migration (§17) ----

func clonePool(p *nvm.Pool) *nvm.Pool {
	c := nvm.New(int(p.Size()), nvm.Options{})
	c.WriteBytes(0, p.ReadBytes(0, p.Size()))
	return c
}

// poolMigrateWorkload crashes the multi-pool heap of DESIGN.md §17 at
// every point of its most delicate windows: sharded operation over two
// pools, the online addition of a third (new-pool format, topology
// transaction, record migration, finalize), and steady state after the
// grow. Recovery does what an operator restart does — reads the epoch
// table from the pool-0 image to learn which pools are durable members,
// then opens the set (replaying any interrupted migration synchronously)
// — and checks: every key readable with its committed or in-flight
// pre/post value, every record sitting in its home pool of the recovered
// routing world, no phantom keys, and the set still writable. With
// parallel recovery the check also proves the §4.1.3 equivalence per
// pool — each member image recovered serially and concurrently must
// match bit for bit before any set-level resume touches it — and the
// fully resumed sets must agree on every observable (epoch, membership,
// per-pool contents).
func poolMigrateWorkload() *Workload {
	const nkeys = 12
	const preOps, postOps = 12, 6
	keys := make([]string, nkeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("m%02d", i)
	}
	shardCfg := func(parallelism int) shard.Config {
		return shard.Config{
			HeapOptions: heap.Options{LogSlots: 16, LogSlotSize: 1 << 14},
			Classes:     gridClasses,
			Parallelism: parallelism,
			NewBackend: func(h *core.Heap, mgr *fa.Manager) (store.Backend, error) {
				return store.NewJPDTBackend(h, "kv")
			},
		}
	}
	return &Workload{Name: "poolmigrate", PoolBytes: 1 << 21, Pools: 3, New: func(seed int64) *Run {
		rng := rand.New(rand.NewSource(seed))
		model := make(map[string][]byte) // committed value per key; missing = absent
		var inflight *gridOp
		var set *shard.Set
		mkval := func(i int) []byte {
			n := 8 + rng.Intn(48)
			v := make([]byte, n)
			for j := range v {
				v[j] = byte('a' + (i+j)%26)
			}
			return v
		}
		// op performs one mutation and then fences every pool: the J-PDT
		// backend's own put/delete durability windows are the pdt and
		// gridread workloads' business — here the exact-model oracle
		// needs op-level durability so the migration windows stay the
		// only source of pre/post ambiguity.
		op := func(pools []*nvm.Pool, i int) error {
			b := set.Backend()
			key := keys[rng.Intn(nkeys)]
			pre := model[key]
			var post []byte
			var err error
			switch {
			case pre == nil:
				post = mkval(i)
				inflight = &gridOp{key: key, pre: pre, post: post}
				err = b.Insert(key, &store.Record{Fields: []store.Field{{Name: "v", Value: post}}})
			case rng.Intn(3) == 0:
				inflight = &gridOp{key: key, pre: pre, post: nil}
				_, err = b.Delete(key)
			default:
				post = mkval(i)
				inflight = &gridOp{key: key, pre: pre, post: post}
				_, err = b.Update(key, []store.Field{{Name: "v", Value: post}})
			}
			if err != nil {
				return fmt.Errorf("op %d on %s: %w", i, key, err)
			}
			for _, p := range pools {
				p.PSync()
			}
			if post == nil {
				delete(model, key)
			} else {
				model[key] = post
			}
			inflight = nil
			return nil
		}
		// members reads the durable pool roster off the pool-0 image (on
		// a scratch clone, so the real open starts from a pristine image).
		members := func(imgs []*nvm.Pool) (int, error) {
			probe, err := openCheckHeap(clonePool(imgs[0]), gridClasses(), fa.NewManager(), 1)
			if err != nil {
				return 0, fmt.Errorf("pool 0 reopen: %w", err)
			}
			_, _, targetN, _, _, err := shard.ReadTopology(probe)
			if err != nil {
				return 0, err
			}
			if targetN < 2 || targetN > len(imgs) {
				return 0, fmt.Errorf("epoch table names %d pools", targetN)
			}
			return targetN, nil
		}
		// checkOne recovers the member images as a set and verifies the
		// oracle, returning the observable state for the serial/parallel
		// comparison.
		checkOne := func(imgs []*nvm.Pool, parallelism int) (string, error) {
			s2, err := shard.Open(imgs, shardCfg(parallelism))
			if err != nil {
				return "", fmt.Errorf("shard reopen (%d pools): %w", len(imgs), err)
			}
			if s2.Migrating() {
				return "", fmt.Errorf("still migrating after open")
			}
			for i := 0; i < s2.Pools(); i++ {
				if err := fsckClean(s2.Heap(i)); err != nil {
					return "", fmt.Errorf("pool %d: %w", i, err)
				}
			}
			b := s2.Backend()
			read := func(key string) ([]byte, bool, error) {
				var val []byte
				has := false
				found, err := b.Read(key, func(name string, v []byte) {
					if name == "v" {
						val = append([]byte(nil), v...)
						has = true
					}
				})
				if err != nil {
					return nil, false, err
				}
				if found && !has {
					return nil, false, fmt.Errorf("record %s has no field v", key)
				}
				return val, found, nil
			}
			for _, key := range keys {
				got, found, err := read(key)
				if err != nil {
					return "", fmt.Errorf("read %s: %w", key, err)
				}
				want, wantFound := model[key]
				ok := found == wantFound && bytes.Equal(got, want)
				if !ok && inflight != nil && inflight.key == key {
					ok = (found == (inflight.pre != nil) && bytes.Equal(got, inflight.pre)) ||
						(found == (inflight.post != nil) && bytes.Equal(got, inflight.post))
				}
				if !ok {
					return "", fmt.Errorf("key %s: got (%q,%v), want %q", key, got, found, want)
				}
			}
			// Placement and phantom sweep: after a clean open every
			// record sits in its home pool of the recovered world.
			obs := []string{fmt.Sprintf("pools=%d epoch=%d", s2.Pools(), s2.Epoch())}
			for i := 0; i < s2.Pools(); i++ {
				for _, key := range s2.PoolBackend(i).(store.KeyLister).Keys() {
					if home := heap.JumpHash(heap.KeyHash(key), s2.Pools()); home != i {
						return "", fmt.Errorf("key %q in pool %d, home %d", key, i, home)
					}
					if _, inModel := model[key]; !inModel && (inflight == nil || inflight.key != key) {
						return "", fmt.Errorf("phantom key %q in pool %d", key, i)
					}
					v, _, err := read(key)
					if err != nil {
						return "", fmt.Errorf("reread %s: %w", key, err)
					}
					obs = append(obs, fmt.Sprintf("%d:%s=%x", i, key, v))
				}
			}
			// Writability probe through the full routing path.
			if err := b.Insert("z-probe", &store.Record{Fields: []store.Field{{Name: "v", Value: []byte("ok")}}}); err != nil {
				return "", fmt.Errorf("post-recovery insert: %w", err)
			}
			if got, found, err := read("z-probe"); err != nil || !found || string(got) != "ok" {
				return "", fmt.Errorf("post-recovery readback: %q %v %v", got, found, err)
			}
			if _, err := b.Delete("z-probe"); err != nil {
				return "", fmt.Errorf("post-recovery delete: %w", err)
			}
			return strings.Join(obs, ";"), nil
		}
		return &Run{
			SetupN: func(pools []*nvm.Pool) error {
				var err error
				set, err = shard.Open(pools[:2], shardCfg(1))
				if err != nil {
					return err
				}
				b := set.Backend()
				for i := 0; i < 6; i++ {
					v := mkval(i)
					if err := b.Insert(keys[i], &store.Record{Fields: []store.Field{{Name: "v", Value: v}}}); err != nil {
						return err
					}
					model[keys[i]] = v
				}
				return nil
			},
			ExecN: func(pools []*nvm.Pool) error {
				for i := 0; i < preOps; i++ {
					if err := op(pools, i); err != nil {
						return err
					}
				}
				m, err := set.AddPool(pools[2], shard.AddOptions{})
				if err != nil {
					return fmt.Errorf("add pool: %w", err)
				}
				if err := m.Wait(); err != nil {
					return fmt.Errorf("migrate: %w", err)
				}
				for i := 0; i < postOps; i++ {
					if err := op(pools, preOps+i); err != nil {
						return err
					}
				}
				return nil
			},
			CheckN: func(imgs []*nvm.Pool, parallelism int) error {
				n, err := members(imgs)
				if err != nil {
					return err
				}
				var clones []*nvm.Pool
				if parallelism > 1 {
					clones = make([]*nvm.Pool, n)
					for i := range clones {
						clones[i] = clonePool(imgs[i])
					}
					// §4.1.3 equivalence, per pool and bit for bit:
					// recover each member image serially and concurrently
					// and compare the raw pool bytes before any set-level
					// migration resume can write.
					for i := 0; i < n; i++ {
						a, c := clonePool(imgs[i]), clonePool(imgs[i])
						if _, err := openCheckHeap(a, gridClasses(), fa.NewManager(), 1); err != nil {
							return fmt.Errorf("pool %d serial recovery: %w", i, err)
						}
						if _, err := openCheckHeap(c, gridClasses(), fa.NewManager(), parallelism); err != nil {
							return fmt.Errorf("pool %d parallel recovery: %w", i, err)
						}
						if !bytes.Equal(a.ReadBytes(0, a.Size()), c.ReadBytes(0, c.Size())) {
							return fmt.Errorf("pool %d: serial and parallel recovery images differ", i)
						}
					}
				}
				obs, err := checkOne(imgs[:n], parallelism)
				if err != nil {
					return err
				}
				if parallelism > 1 {
					sobs, err := checkOne(clones, 1)
					if err != nil {
						return fmt.Errorf("serial replay of parallel image: %w", err)
					}
					if obs != sobs {
						return fmt.Errorf("serial/parallel divergence:\n  par:    %s\n  serial: %s", obs, sobs)
					}
				}
				return nil
			},
		}
	}}
}
