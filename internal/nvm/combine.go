package nvm

import (
	"runtime"
	"sync"
)

// FenceCombiner batches concurrent fence requests into shared barriers,
// the flat-combining idea of Persistent Software Combining applied to the
// two ordering primitives. Concurrent committers that each need a
// pfence/psync park at the combiner; one of them becomes the leader and
// issues a single fence on behalf of the whole cohort.
//
// This is sound on the emulated pool because PFence/PSync drain the whole
// write-pending queue, not a per-thread slice (the ADR model, DESIGN.md
// §15): one fence by any thread covers every PWB issued before that fence
// began, regardless of the issuing goroutine. The combiner only promises
// the caller a fence that *started after* the call entered the barrier,
// so a caller's own preceding PWBs are always covered.
//
// A caller that needs durability (psync) upgrades the next fence: the
// cohort leader issues PSync instead of PFence when any waiter it covers
// asked for one. Ordering-only waiters sharing that barrier get a
// (stronger) psync, which is correct and mirrors real hardware, where
// sfence serves both roles (§3.2.2).
type FenceCombiner struct {
	mu   sync.Mutex
	cond *sync.Cond

	started uint64 // fences begun (leader elected, primitive issuing)
	done    uint64 // fences completed
	fencing bool   // a leader is currently issuing
	// newcomers counts barrier arrivals not yet covered by a started
	// fence — the size of the cohort the next fence will serve. A leader
	// resets it when its fence starts.
	newcomers int
	// wantSync counts waiters of the NEXT fence that need durability;
	// the elected leader consumes it to pick PSync over PFence.
	wantSync int

	// Stats, read by the fa layer's snapshot. barriers-issued is the
	// number of fence requests satisfied by another caller's barrier.
	barriers uint64
	issued   uint64
	syncs    uint64
}

// NewFenceCombiner creates an idle combiner.
func NewFenceCombiner() *FenceCombiner {
	c := &FenceCombiner{}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Fence orders the caller's prior PWBs behind one (possibly shared)
// pfence: it returns once a fence that started after entry has completed.
func (c *FenceCombiner) Fence(p *Pool) { c.barrier(p, false) }

// Sync is Fence with a durability guarantee: the covering barrier is a
// psync.
func (c *FenceCombiner) Sync(p *Pool) { c.barrier(p, true) }

func (c *FenceCombiner) barrier(p *Pool, sync bool) {
	c.mu.Lock()
	c.barriers++
	c.newcomers++
	if sync {
		c.wantSync++
	}
	// An in-flight fence started before our PWBs were necessarily queued,
	// so it cannot cover us: we need a fence numbered after the current
	// one, i.e. the first fence that *starts* from now on.
	target := c.started + 1
	yielded := false
	for c.done < target {
		if c.fencing {
			c.cond.Wait()
			continue
		}
		if !yielded && c.newcomers == 1 {
			// Classic group-commit leader wait, bounded to one scheduler
			// yield: a cohort of one gives concurrent committers a chance
			// to reach the barrier before it pays for a fence, so cohorts
			// form even when commits never overlap a fence in flight
			// (e.g. on a single CPU, where a fence window is never
			// observed by another goroutine).
			yielded = true
			c.mu.Unlock()
			runtime.Gosched()
			c.mu.Lock()
			continue
		}
		// Become the leader of fence `started+1`, covering every waiter
		// registered so far (their wantSync votes included).
		c.fencing = true
		c.started++
		c.newcomers = 0
		doSync := c.wantSync > 0
		c.wantSync = 0
		c.issued++
		if doSync {
			c.syncs++
		}
		c.mu.Unlock()
		if doSync {
			p.PSync()
		} else {
			p.PFence()
		}
		c.mu.Lock()
		c.fencing = false
		c.done++
		c.cond.Broadcast()
	}
	c.mu.Unlock()
}

// Stats returns barrier requests, fences actually issued, and how many of
// those were psyncs. barriers - issued is the number of fences the
// combining saved.
func (c *FenceCombiner) Stats() (barriers, issued, syncs uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.barriers, c.issued, c.syncs
}
