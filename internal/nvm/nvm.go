// Package nvm emulates byte-addressable non-volatile main memory (NVMM).
//
// The paper accesses Intel Optane DC through a 3-instruction Hotspot patch
// (pwb/pfence/psync, after Izraelevitz et al.). This package provides the
// same primitives over a flat pool of bytes addressed by offsets. Offsets
// (not absolute pointers) keep the pool relocatable, as required by §4.4 of
// the paper.
//
// A pool operates in one of two modes:
//
//   - Direct: loads and stores touch the backing array immediately, and the
//     ordering primitives only apply the configured latency model. This is
//     the benchmark mode; its cost per access is a bounds check plus a
//     little-endian encode/decode, which mirrors the near-native Unsafe
//     path of the paper (§4.4, Table 3).
//
//   - Tracked: the pool additionally models the volatile CPU cache
//     hierarchy at 64 B cache-line granularity. A store only reaches the
//     durable image after an explicit PWB of its line followed by a fence.
//     CrashImage materializes "what survives a power failure" under
//     configurable adversarial policies, which is how the crash-consistency
//     tests of heap, core, fa and pdt drive recovery.
//
// Writes are modeled with pwb-time snapshots: PWB captures the current
// content of the line; stores issued after the PWB but before the fence are
// not made durable by that fence. This is the strict (and correct) reading
// of clwb/sfence on x86 and catches missing-second-flush bugs.
package nvm

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/obs"
)

// LineSize is the modeled CPU cache-line size in bytes. PWB operates at
// this granularity. (Optane internally uses 256 B lines; that constant
// matters for the heap block size choice, not for ordering.)
const LineSize = 64

// CrashPolicy selects which non-fenced data survives in a CrashImage.
type CrashPolicy int

const (
	// CrashStrict drops everything that was not explicitly made durable
	// through PWB + fence. The most adversarial deterministic policy.
	CrashStrict CrashPolicy = iota
	// CrashAll retains every store, as if the caches were flushed by luck
	// (e.g. eDRAM drain on a clean shutdown). Recovery must also be
	// correct in this lenient world.
	CrashAll
	// CrashRandom retains a random subset of the dirty and queued lines,
	// modeling arbitrary cache evictions racing the failure. Retained
	// lines may persist their pwb-time snapshot, their newer cache
	// content, or a composition of the two, and may tear at an 8-byte
	// boundary (see CrashState.SampleSpec).
	CrashRandom
	// CrashTorn is CrashRandom with every retained line torn at a random
	// 8-byte boundary — the most adversarial sub-line setting. Aligned
	// 8-byte words stay atomic (as on x86); anything wider can be cut.
	CrashTorn
)

// Options configures a Pool.
type Options struct {
	// Tracked enables the cache-line model and crash images.
	Tracked bool
	// FenceLatency is the simulated cost, in nanoseconds of busy wait,
	// of PFence/PSync. It models the store-fence + write-pending-queue
	// drain cost of real NVMM. Zero disables the latency model.
	FenceLatency int
	// FlushLatency is the simulated cost, in nanoseconds, of each PWB.
	FlushLatency int
}

// Pool is a flat, relocatable region of emulated NVMM.
//
// Pool methods panic on out-of-bounds accesses: an offset outside the pool
// is a corrupted reference, i.e. a program bug, never an environmental
// condition.
type Pool struct {
	data []byte
	opts Options

	// file backing (nil for in-memory pools).
	backing *fileBacking

	mu      sync.Mutex        // guards the tracked-mode state below
	durable []byte            // what survives a crash (tracked mode only)
	dirty   map[uint64]bool   // lines stored to since their last PWB
	queued  map[uint64][]byte // lines PWB'd but not yet fenced: pwb-time snapshot

	// plane, when set, observes every ordering point (store/PWB/fence)
	// before it takes effect; see fault.go.
	plane planeField

	stats obs.NVMStats // lock-free primitive counters (stores/pwb/pfence/psync)
}

// New creates an in-memory pool of the given size.
func New(size int, opts Options) *Pool {
	p := &Pool{data: make([]byte, size), opts: opts}
	if opts.Tracked {
		p.durable = make([]byte, size)
		p.dirty = make(map[uint64]bool)
		p.queued = make(map[uint64][]byte)
	}
	return p
}

// Size returns the pool size in bytes.
func (p *Pool) Size() uint64 { return uint64(len(p.data)) }

// Tracked reports whether the cache-line model is active.
func (p *Pool) Tracked() bool { return p.opts.Tracked }

// Close releases file-backed resources, if any. In-memory pools are
// garbage collected as usual; Close is then a no-op.
func (p *Pool) Close() error {
	if p.backing != nil {
		return p.backing.close()
	}
	return nil
}

func (p *Pool) check(off, n uint64) {
	if off+n > uint64(len(p.data)) || off+n < off {
		panic(fmt.Sprintf("nvm: access [%d,+%d) out of pool bounds %d", off, n, len(p.data)))
	}
}

// ---- Loads ----

// ReadUint64 loads an 8-byte little-endian word.
func (p *Pool) ReadUint64(off uint64) uint64 {
	p.check(off, 8)
	return binary.LittleEndian.Uint64(p.data[off:])
}

// ReadUint32 loads a 4-byte little-endian word.
func (p *Pool) ReadUint32(off uint64) uint32 {
	p.check(off, 4)
	return binary.LittleEndian.Uint32(p.data[off:])
}

// ReadUint16 loads a 2-byte little-endian word.
func (p *Pool) ReadUint16(off uint64) uint16 {
	p.check(off, 2)
	return binary.LittleEndian.Uint16(p.data[off:])
}

// ReadUint8 loads one byte.
func (p *Pool) ReadUint8(off uint64) byte {
	p.check(off, 1)
	return p.data[off]
}

// ReadBytes copies n bytes starting at off into a fresh slice.
func (p *Pool) ReadBytes(off, n uint64) []byte {
	p.check(off, n)
	out := make([]byte, n)
	copy(out, p.data[off:off+n])
	return out
}

// ReadInto copies len(dst) bytes starting at off into dst.
func (p *Pool) ReadInto(off uint64, dst []byte) {
	p.check(off, uint64(len(dst)))
	copy(dst, p.data[off:])
}

// View returns a zero-copy, read-only window into the pool — the direct
// byte-addressable access that distinguishes NVMM from a block device.
// Callers must not write through it and must not hold it across frees of
// the underlying object.
func (p *Pool) View(off, n uint64) []byte {
	p.check(off, n)
	return p.data[off : off+n : off+n]
}

// ---- Stores ----

// WriteUint64 stores an 8-byte little-endian word.
func (p *Pool) WriteUint64(off, v uint64) {
	p.check(off, 8)
	p.observe(FaultStore, off, 8)
	binary.LittleEndian.PutUint64(p.data[off:], v)
	p.noteStore(off, 8)
}

// WriteUint32 stores a 4-byte little-endian word.
func (p *Pool) WriteUint32(off uint64, v uint32) {
	p.check(off, 4)
	p.observe(FaultStore, off, 4)
	binary.LittleEndian.PutUint32(p.data[off:], v)
	p.noteStore(off, 4)
}

// WriteUint16 stores a 2-byte little-endian word.
func (p *Pool) WriteUint16(off uint64, v uint16) {
	p.check(off, 2)
	p.observe(FaultStore, off, 2)
	binary.LittleEndian.PutUint16(p.data[off:], v)
	p.noteStore(off, 2)
}

// WriteUint8 stores one byte.
func (p *Pool) WriteUint8(off uint64, v byte) {
	p.check(off, 1)
	p.observe(FaultStore, off, 1)
	p.data[off] = v
	p.noteStore(off, 1)
}

// WriteBytes stores src at off.
func (p *Pool) WriteBytes(off uint64, src []byte) {
	p.check(off, uint64(len(src)))
	if len(src) == 0 {
		return
	}
	p.observe(FaultStore, off, uint64(len(src)))
	copy(p.data[off:], src)
	p.noteStore(off, uint64(len(src)))
}

// Zero clears n bytes starting at off.
func (p *Pool) Zero(off, n uint64) {
	p.check(off, n)
	if n == 0 {
		return
	}
	p.observe(FaultStore, off, n)
	clear(p.data[off : off+n])
	p.noteStore(off, n)
}

// CopyWithin copies n bytes from src to dst inside the pool, as a store to
// the destination range.
func (p *Pool) CopyWithin(dst, src, n uint64) {
	p.check(src, n)
	p.check(dst, n)
	if n == 0 {
		return
	}
	p.observe(FaultStore, dst, n)
	copy(p.data[dst:dst+n], p.data[src:src+n])
	p.noteStore(dst, n)
}

// ---- Ordering primitives (§3.2.2 of the paper) ----

// PWB adds the cache line containing off to the write-pending queue. Like
// the clwb the paper uses, it is asynchronous: durability happens at the
// next fence, and only for the content the line had when PWB was called.
func (p *Pool) PWB(off uint64) {
	p.check(off, 1)
	line := off &^ (LineSize - 1)
	p.observe(FaultPWB, line, LineSize)
	p.stats.PWBs.Inc()
	if p.opts.Tracked {
		p.queueLine(line)
	}
	if p.opts.FlushLatency > 0 {
		spinWait(p.opts.FlushLatency)
	}
}

// PWBRange issues a PWB for every cache line overlapping [off, off+n).
// Each line is its own ordering point: a crash can land between any two
// of them, leaving a prefix of the range queued.
func (p *Pool) PWBRange(off, n uint64) {
	if n == 0 {
		return
	}
	p.check(off, n)
	first := off &^ (LineSize - 1)
	last := (off + n - 1) &^ (LineSize - 1)
	lines := (last-first)/LineSize + 1
	p.stats.PWBs.Add(lines)
	if p.plane.Load() != nil {
		for l := first; l <= last; l += LineSize {
			p.observe(FaultPWB, l, LineSize)
			if p.opts.Tracked {
				p.queueLine(l)
			}
		}
	} else if p.opts.Tracked {
		for l := first; l <= last; l += LineSize {
			p.queueLine(l)
		}
	}
	if p.opts.FlushLatency > 0 {
		spinWait(p.opts.FlushLatency * int(lines))
	}
}

// PFence orders preceding PWBs and stores before subsequent ones. On the
// x86 mapping used by the paper pfence and psync are both sfence, and —
// thanks to ADR — a fence after clwb makes the queued lines durable. The
// tracked model therefore drains the write-pending queue here.
func (p *Pool) PFence() {
	p.observe(FaultPFence, 0, 0)
	p.stats.PFences.Inc()
	p.fence()
}

// PSync behaves as PFence and additionally guarantees the write-pending
// queue reached NVMM (identical on the modeled hardware; see §4.4).
func (p *Pool) PSync() {
	p.observe(FaultPSync, 0, 0)
	p.stats.PSyncs.Inc()
	p.fence()
}

func (p *Pool) fence() {
	if p.opts.Tracked {
		p.mu.Lock()
		for line, snap := range p.queued {
			copy(p.durable[line:line+LineSize], snap)
			delete(p.queued, line)
		}
		p.mu.Unlock()
	}
	if p.opts.FenceLatency > 0 {
		spinWait(p.opts.FenceLatency)
	}
}

// Stats reports cumulative primitive counts: stores, PWBs, fences (PFence
// and PSync combined, as both are sfence on the modeled hardware).
func (p *Pool) Stats() (stores, flushes, fences uint64) {
	s := p.stats.Snapshot()
	return s.Stores, s.PWBs, s.Fences()
}

// Obs exposes the pool's primitive counters to the observability layer;
// callers snapshot them with Obs().Snapshot().
func (p *Pool) Obs() *obs.NVMStats { return &p.stats }

// ---- Tracked-mode internals ----

func (p *Pool) noteStore(off, n uint64) {
	p.stats.Stores.Inc()
	if !p.opts.Tracked || n == 0 {
		return
	}
	first := off &^ (LineSize - 1)
	last := (off + n - 1) &^ (LineSize - 1)
	p.mu.Lock()
	for l := first; l <= last; l += LineSize {
		p.dirty[l] = true
	}
	p.mu.Unlock()
}

func (p *Pool) queueLine(line uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.dirty[line] {
		// Clean line: flushing it is a no-op, and if it was already
		// queued the earlier snapshot still holds its content.
		if _, ok := p.queued[line]; ok {
			return
		}
		// Flush of a never-dirtied line: content equals durable already.
		return
	}
	delete(p.dirty, line)
	snap := p.queued[line]
	if snap == nil {
		snap = make([]byte, LineSize)
	}
	end := line + LineSize
	if end > uint64(len(p.data)) {
		end = uint64(len(p.data))
	}
	copy(snap, p.data[line:end])
	p.queued[line] = snap
}

// CrashImage returns a new tracked pool holding what would survive a crash
// at this instant under the given policy. The original pool is unchanged
// and may keep running (useful to compare diverging futures). Built on
// CaptureCrashState/PolicyImage, so CrashRandom covers sub-line tears and
// both states of a queued-then-redirtied line (the snapshot awaiting its
// fence and the newer content racing eviction), including compositions of
// the two — the cases the old per-map coin flips could not reach. Panics
// if the pool is not tracked.
func (p *Pool) CrashImage(policy CrashPolicy, rng *rand.Rand) *Pool {
	return p.CaptureCrashState().PolicyImage(policy, rng)
}

// DurableEqualsData reports whether every byte of the pool has been made
// durable (no dirty or queued lines). Only meaningful in tracked mode.
func (p *Pool) DurableEqualsData() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.dirty) == 0 && len(p.queued) == 0
}
