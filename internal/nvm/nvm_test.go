package nvm

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestReadWriteRoundTrip(t *testing.T) {
	p := New(4096, Options{})
	p.WriteUint64(0, 0xdeadbeefcafebabe)
	if got := p.ReadUint64(0); got != 0xdeadbeefcafebabe {
		t.Fatalf("uint64 round trip: got %#x", got)
	}
	p.WriteUint32(8, 0x12345678)
	if got := p.ReadUint32(8); got != 0x12345678 {
		t.Fatalf("uint32 round trip: got %#x", got)
	}
	p.WriteUint16(12, 0xabcd)
	if got := p.ReadUint16(12); got != 0xabcd {
		t.Fatalf("uint16 round trip: got %#x", got)
	}
	p.WriteUint8(14, 0x42)
	if got := p.ReadUint8(14); got != 0x42 {
		t.Fatalf("byte round trip: got %#x", got)
	}
	p.WriteBytes(100, []byte("hello nvmm"))
	if got := string(p.ReadBytes(100, 10)); got != "hello nvmm" {
		t.Fatalf("bytes round trip: got %q", got)
	}
}

func TestLittleEndianLayout(t *testing.T) {
	p := New(64, Options{})
	p.WriteUint64(0, 0x0102030405060708)
	if p.ReadUint8(0) != 0x08 || p.ReadUint8(7) != 0x01 {
		t.Fatalf("layout is not little-endian: % x", p.ReadBytes(0, 8))
	}
}

func TestZeroAndCopyWithin(t *testing.T) {
	p := New(1024, Options{})
	p.WriteBytes(0, bytes.Repeat([]byte{0xff}, 64))
	p.Zero(16, 16)
	for i := uint64(16); i < 32; i++ {
		if p.ReadUint8(i) != 0 {
			t.Fatalf("Zero left byte %d = %#x", i, p.ReadUint8(i))
		}
	}
	p.CopyWithin(128, 0, 64)
	if !bytes.Equal(p.ReadBytes(128, 64), p.ReadBytes(0, 64)) {
		t.Fatal("CopyWithin mismatch")
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	p := New(64, Options{})
	cases := []func(){
		func() { p.ReadUint64(60) },
		func() { p.WriteUint64(64, 1) },
		func() { p.ReadBytes(0, 65) },
		func() { p.WriteBytes(63, []byte{1, 2}) },
		func() { p.PWB(64) },
		func() { p.ReadUint64(^uint64(0) - 3) }, // overflow wrap
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestTrackedStrictCrashDropsUnfenced(t *testing.T) {
	p := New(4096, Options{Tracked: true})
	p.WriteUint64(0, 1)
	img := p.CrashImage(CrashStrict, rand.New(rand.NewSource(1)))
	if img.ReadUint64(0) != 0 {
		t.Fatal("unflushed store survived a strict crash")
	}

	p.PWB(0)
	img = p.CrashImage(CrashStrict, rand.New(rand.NewSource(1)))
	if img.ReadUint64(0) != 0 {
		t.Fatal("flushed-but-unfenced store survived a strict crash")
	}

	p.PFence()
	img = p.CrashImage(CrashStrict, rand.New(rand.NewSource(1)))
	if img.ReadUint64(0) != 1 {
		t.Fatal("flushed+fenced store lost in a strict crash")
	}
}

func TestTrackedPWBSnapshotsLineContent(t *testing.T) {
	p := New(4096, Options{Tracked: true})
	p.WriteUint64(0, 1)
	p.PWB(0)
	// Store after the PWB, before the fence: must NOT be covered.
	p.WriteUint64(0, 2)
	p.PFence()
	img := p.CrashImage(CrashStrict, rand.New(rand.NewSource(1)))
	if got := img.ReadUint64(0); got != 1 {
		t.Fatalf("fence persisted post-PWB store: got %d want 1", got)
	}
	// A second PWB+fence covers it.
	p.PWB(0)
	p.PSync()
	img = p.CrashImage(CrashStrict, rand.New(rand.NewSource(1)))
	if got := img.ReadUint64(0); got != 2 {
		t.Fatalf("second flush round lost: got %d want 2", got)
	}
}

func TestTrackedCrashAllKeepsEverything(t *testing.T) {
	p := New(4096, Options{Tracked: true})
	p.WriteUint64(8, 77)
	img := p.CrashImage(CrashAll, rand.New(rand.NewSource(1)))
	if img.ReadUint64(8) != 77 {
		t.Fatal("CrashAll dropped a store")
	}
}

func TestTrackedCrashRandomSubsets(t *testing.T) {
	// With many independent lines and a random policy, some but (almost
	// surely) not all unfenced lines survive.
	p := New(1<<16, Options{Tracked: true})
	for i := uint64(0); i < 256; i++ {
		p.WriteUint64(i*LineSize, i+1)
	}
	img := p.CrashImage(CrashRandom, rand.New(rand.NewSource(42)))
	kept, lost := 0, 0
	for i := uint64(0); i < 256; i++ {
		if img.ReadUint64(i*LineSize) == i+1 {
			kept++
		} else {
			lost++
		}
	}
	if kept == 0 || lost == 0 {
		t.Fatalf("random crash not a strict subset mix: kept=%d lost=%d", kept, lost)
	}
}

func TestCrashImageIsIndependent(t *testing.T) {
	p := New(4096, Options{Tracked: true})
	p.WriteUint64(0, 5)
	p.PWBRange(0, 8)
	p.PFence()
	img := p.CrashImage(CrashStrict, rand.New(rand.NewSource(1)))
	p.WriteUint64(0, 9)
	p.PWB(0)
	p.PFence()
	if img.ReadUint64(0) != 5 {
		t.Fatal("crash image aliased live pool")
	}
}

func TestPWBRangeCoversSpanningLines(t *testing.T) {
	p := New(4096, Options{Tracked: true})
	// A 16-byte store spanning a line boundary.
	off := uint64(LineSize - 8)
	p.WriteBytes(off, bytes.Repeat([]byte{0xee}, 16))
	p.PWBRange(off, 16)
	p.PFence()
	img := p.CrashImage(CrashStrict, rand.New(rand.NewSource(1)))
	if !bytes.Equal(img.ReadBytes(off, 16), bytes.Repeat([]byte{0xee}, 16)) {
		t.Fatal("PWBRange missed a spanned line")
	}
}

func TestDurableEqualsData(t *testing.T) {
	p := New(4096, Options{Tracked: true})
	if !p.DurableEqualsData() {
		t.Fatal("fresh pool should be fully durable")
	}
	p.WriteUint64(0, 1)
	if p.DurableEqualsData() {
		t.Fatal("dirty pool reported durable")
	}
	p.PWBRange(0, 8)
	if p.DurableEqualsData() {
		t.Fatal("queued pool reported durable")
	}
	p.PSync()
	if !p.DurableEqualsData() {
		t.Fatal("synced pool not durable")
	}
}

func TestStatsCount(t *testing.T) {
	p := New(4096, Options{})
	p.WriteUint64(0, 1)
	p.WriteUint64(8, 2)
	p.PWB(0)
	p.PWBRange(0, 128) // two lines
	p.PFence()
	p.PSync()
	stores, flushes, fences := p.Stats()
	if stores != 2 || flushes != 3 || fences != 2 {
		t.Fatalf("stats = %d stores, %d flushes, %d fences", stores, flushes, fences)
	}
}

// Property: in tracked mode, any sequence of (write, pwb, fence) steps
// yields a strict crash image in which every fenced prefix store is visible
// and no never-flushed store is.
func TestQuickFencedStoresSurvive(t *testing.T) {
	f := func(vals []uint8, seed int64) bool {
		if len(vals) > 64 {
			vals = vals[:64]
		}
		p := New(1<<14, Options{Tracked: true})
		rng := rand.New(rand.NewSource(seed))
		fenced := map[uint64]byte{}
		for i, v := range vals {
			off := uint64(i) * LineSize
			p.WriteUint8(off, v)
			switch rng.Intn(3) {
			case 0: // fully persist
				p.PWB(off)
				p.PFence()
				fenced[off] = v
			case 1: // flush, no fence
				p.PWB(off)
			case 2: // nothing
			}
		}
		img := p.CrashImage(CrashStrict, rng)
		for off, v := range fenced {
			if img.ReadUint8(off) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFileBackedPoolPersists(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pool.img")
	p, err := OpenFile(path, 1<<16, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p.WriteUint64(128, 4242)
	p.PWBRange(128, 8)
	p.PSync()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2, err := OpenFile(path, 1<<16, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := p2.ReadUint64(128); got != 4242 {
		t.Fatalf("file pool lost data across reopen: got %d", got)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func TestFileBackedRejectsTracked(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenFile(filepath.Join(dir, "x"), 4096, Options{Tracked: true}); err == nil {
		t.Fatal("tracked file pool should be rejected")
	}
}

func TestLatencyModelRuns(t *testing.T) {
	// Smoke test: the latency model must not hang or crash.
	p := New(4096, Options{FenceLatency: 50, FlushLatency: 10})
	p.WriteUint64(0, 1)
	p.PWB(0)
	p.PFence()
	p.PSync()
}
