package nvm

import "slices"

// FlushSet accumulates dirty cache lines so that a batch of stores can be
// written back with the minimum number of PWBs. Producers mark byte ranges
// as they store; Flush sorts the marked lines, drops duplicates (a field
// stored five times flushes once) and merges adjacent lines into single
// PWBRange calls. This is the flush-coalescing half of the J-PFA commit
// pipeline: the paper's per-thread redo log (§4.2) implicitly batches
// write-backs the same way by flushing the log once per block.
//
// A FlushSet is not safe for concurrent use; the intended owner is one
// transaction (or one batch), reused across batches via Reset.
type FlushSet struct {
	lines []uint64 // line-aligned offsets, unsorted, possibly duplicated
}

// NewFlushSet returns an empty set with room for a typical write set.
func NewFlushSet() *FlushSet {
	return &FlushSet{lines: make([]uint64, 0, 32)}
}

// Add marks the cache line containing off.
func (f *FlushSet) Add(off uint64) {
	f.lines = append(f.lines, off&^(LineSize-1))
}

// AddRange marks every cache line overlapping [off, off+n).
func (f *FlushSet) AddRange(off, n uint64) {
	if n == 0 {
		return
	}
	first := off &^ (LineSize - 1)
	last := (off + n - 1) &^ (LineSize - 1)
	for l := first; l <= last; l += LineSize {
		f.lines = append(f.lines, l)
	}
}

// Pending returns the number of marked lines, duplicates included.
func (f *FlushSet) Pending() int { return len(f.lines) }

// Reset empties the set, keeping its capacity for reuse.
func (f *FlushSet) Reset() { f.lines = f.lines[:0] }

// Flush writes back every marked line with deduplicated, range-merged
// PWBs, then resets the set. It returns the number of lines actually
// flushed and the number saved by coalescing (duplicate marks); the two
// sum to the naive per-store flush count.
func (f *FlushSet) Flush(p *Pool) (flushed, coalesced uint64) {
	if len(f.lines) == 0 {
		return 0, 0
	}
	slices.Sort(f.lines)
	marked := uint64(len(f.lines))
	start, end := f.lines[0], f.lines[0]+LineSize
	for _, l := range f.lines[1:] {
		switch {
		case l < end: // duplicate of the previous line
		case l == end: // adjacent: extend the run
			end += LineSize
		default: // gap: emit the run, open a new one
			p.PWBRange(start, end-start)
			flushed += (end - start) / LineSize
			start, end = l, l+LineSize
		}
	}
	p.PWBRange(start, end-start)
	flushed += (end - start) / LineSize
	f.lines = f.lines[:0]
	return flushed, marked - flushed
}
