//go:build linux

package nvm

import (
	"fmt"
	"os"
	"syscall"
)

// fileBacking holds the resources of a file-backed (DAX-style) pool.
type fileBacking struct {
	f    *os.File
	mmap []byte
}

func (b *fileBacking) close() error {
	err := syscall.Munmap(b.mmap)
	if cerr := b.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// OpenFile creates or opens a file-backed pool, the moral equivalent of the
// paper's DAX-mapped /mnt/pmem region. The file is created (and extended)
// to size bytes if needed; an existing file larger than size keeps its
// length, and the whole file is mapped.
//
// File-backed pools run in Direct mode: the page cache plus msync-on-Close
// stand in for the ADR domain. Crash-consistency testing uses in-memory
// tracked pools instead, where failures are injectable deterministically.
func OpenFile(path string, size int, opts Options) (*Pool, error) {
	if opts.Tracked {
		return nil, fmt.Errorf("nvm: tracked mode is not supported on file-backed pools")
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("nvm: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("nvm: stat %s: %w", path, err)
	}
	if st.Size() < int64(size) {
		if err := f.Truncate(int64(size)); err != nil {
			f.Close()
			return nil, fmt.Errorf("nvm: grow %s to %d: %w", path, size, err)
		}
	} else {
		size = int(st.Size())
	}
	mm, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("nvm: mmap %s: %w", path, err)
	}
	return &Pool{data: mm, opts: opts, backing: &fileBacking{f: f, mmap: mm}}, nil
}
