package nvm

import (
	"sync/atomic"
	"unsafe"
)

// Atomic word access. The lock-free read path (seqlock-validated zero-copy
// reads, see DESIGN.md §14) loads reference words that a concurrent writer
// may be publishing; those loads and stores must be atomic or the race
// detector (rightly) flags them and a real machine may tear them. Only
// 8-byte, 8-aligned words are supported — the alignment x86 and arm64
// guarantee atomic — which covers every published word class: PRefArray
// slots, pair value refs, and record field refs.
//
// The atomic ops act on the pool's native byte order while the plain
// Read/WriteUint64 use little-endian encoding. The two views must agree
// byte-for-byte (a word stored atomically is later read by recovery with
// ReadUint64), so pools only support little-endian hosts; New panics
// otherwise. All Go targets in CI (amd64, arm64) qualify.

func init() {
	probe := uint16(1)
	if *(*byte)(unsafe.Pointer(&probe)) != 1 {
		panic("nvm: atomic word access requires a little-endian host")
	}
}

func (p *Pool) atomicWord(off uint64) *uint64 {
	p.check(off, 8)
	if off%8 != 0 {
		panic("nvm: atomic access to unaligned offset")
	}
	// The backing array is 8-aligned (Go heap / mmap), so an 8-aligned
	// offset yields an 8-aligned address.
	return (*uint64)(unsafe.Pointer(&p.data[off]))
}

// ReadUint64Atomic loads an 8-byte word with atomic (acquire) semantics.
// The returned value matches what ReadUint64 would decode on this host.
func (p *Pool) ReadUint64Atomic(off uint64) uint64 {
	return atomic.LoadUint64(p.atomicWord(off))
}

// WriteUint64Atomic stores an 8-byte word with atomic (release) semantics.
// It participates in the fault plane and the tracked-mode cache model
// exactly like WriteUint64.
func (p *Pool) WriteUint64Atomic(off, v uint64) {
	w := p.atomicWord(off)
	p.observe(FaultStore, off, 8)
	atomic.StoreUint64(w, v)
	p.noteStore(off, 8)
}

// CopyWithinAtomic copies n bytes from src to dst inside the pool using
// word-at-a-time atomic (release) stores to the destination. The commit
// apply publishes committed lines into blocks that lock-free readers
// observe with ReadUint64Atomic; a plain memcpy would race those acquire
// loads under the Go memory model even though the words are aligned. dst
// and n must be 8-aligned / a multiple of 8 (every apply segment — a
// header-trimmed line or payload — qualifies). src needs no alignment and
// is read plainly: the source block is private to the committing
// transaction.
func (p *Pool) CopyWithinAtomic(dst, src, n uint64) {
	p.check(src, n)
	p.check(dst, n)
	if n == 0 {
		return
	}
	if dst%8 != 0 || n%8 != 0 {
		panic("nvm: atomic copy needs an 8-aligned destination and length")
	}
	p.observe(FaultStore, dst, n)
	for i := uint64(0); i < n; i += 8 {
		var v uint64
		copy((*[8]byte)(unsafe.Pointer(&v))[:], p.data[src+i:src+i+8])
		atomic.StoreUint64((*uint64)(unsafe.Pointer(&p.data[dst+i])), v)
	}
	p.noteStore(dst, n)
}

// CompareAndSwapUint64 atomically swaps the 8-byte word at off from old to
// new, reporting whether the swap happened. It is the publication
// primitive of the lock-free durable types (DESIGN.md §16): the fault
// plane observes the attempt before it takes effect (a crash at that
// point leaves the pre-CAS word), and a successful swap marks the line
// dirty exactly like a store. A failed swap leaves the cache model
// untouched — nothing was written.
func (p *Pool) CompareAndSwapUint64(off, old, new uint64) bool {
	w := p.atomicWord(off)
	p.observe(FaultCAS, off, 8)
	if !atomic.CompareAndSwapUint64(w, old, new) {
		return false
	}
	p.noteStore(off, 8)
	return true
}
