package nvm

import "testing"

func TestFlushSetDedupesAndMerges(t *testing.T) {
	p := New(1<<16, Options{})
	fs := NewFlushSet()

	// Five marks on line 0, plus lines 1 and 2: one run of three lines.
	fs.Add(0)
	fs.Add(8)
	fs.Add(63)
	fs.AddRange(60, 8) // spans lines 0 and 1
	fs.Add(128)
	if fs.Pending() != 6 {
		t.Fatalf("pending = %d, want 6 raw marks", fs.Pending())
	}

	before := p.Obs().Snapshot()
	flushed, coalesced := fs.Flush(p)
	d := p.Obs().Snapshot().Sub(before)

	if flushed != 3 || coalesced != 3 {
		t.Fatalf("Flush = (%d flushed, %d coalesced), want (3, 3)", flushed, coalesced)
	}
	if d.PWBs != 3 {
		t.Fatalf("pool counted %d pwb, want 3 (dedup must collapse repeated lines)", d.PWBs)
	}
	if fs.Pending() != 0 {
		t.Fatal("Flush must reset the set")
	}
}

func TestFlushSetGaps(t *testing.T) {
	p := New(1<<16, Options{})
	fs := NewFlushSet()
	fs.Add(0)
	fs.Add(256) // non-adjacent: separate PWBRange runs
	flushed, coalesced := fs.Flush(p)
	if flushed != 2 || coalesced != 0 {
		t.Fatalf("Flush = (%d, %d), want (2, 0)", flushed, coalesced)
	}
}

func TestFlushSetEmpty(t *testing.T) {
	p := New(1<<16, Options{})
	fs := NewFlushSet()
	if flushed, coalesced := fs.Flush(p); flushed != 0 || coalesced != 0 {
		t.Fatalf("empty Flush = (%d, %d), want (0, 0)", flushed, coalesced)
	}
	fs.AddRange(100, 0) // zero-length range marks nothing
	if fs.Pending() != 0 {
		t.Fatal("AddRange(_, 0) must not mark lines")
	}
	fs.Add(64)
	fs.Reset()
	if fs.Pending() != 0 {
		t.Fatal("Reset must empty the set")
	}
}
