package nvm

import "testing"

func TestFlushSetDedupesAndMerges(t *testing.T) {
	p := New(1<<16, Options{})
	fs := NewFlushSet()

	// Five marks on line 0, plus lines 1 and 2: one run of three lines.
	fs.Add(0)
	fs.Add(8)
	fs.Add(63)
	fs.AddRange(60, 8) // spans lines 0 and 1
	fs.Add(128)
	if fs.Pending() != 6 {
		t.Fatalf("pending = %d, want 6 raw marks", fs.Pending())
	}

	before := p.Obs().Snapshot()
	flushed, coalesced := fs.Flush(p)
	d := p.Obs().Snapshot().Sub(before)

	if flushed != 3 || coalesced != 3 {
		t.Fatalf("Flush = (%d flushed, %d coalesced), want (3, 3)", flushed, coalesced)
	}
	if d.PWBs != 3 {
		t.Fatalf("pool counted %d pwb, want 3 (dedup must collapse repeated lines)", d.PWBs)
	}
	if fs.Pending() != 0 {
		t.Fatal("Flush must reset the set")
	}
}

func TestFlushSetGaps(t *testing.T) {
	p := New(1<<16, Options{})
	fs := NewFlushSet()
	fs.Add(0)
	fs.Add(256) // non-adjacent: separate PWBRange runs
	flushed, coalesced := fs.Flush(p)
	if flushed != 2 || coalesced != 0 {
		t.Fatalf("Flush = (%d, %d), want (2, 0)", flushed, coalesced)
	}
}

// The accounting contract behind obs's pwb/op columns: flushed counts
// unique lines written back, coalesced counts the duplicate marks saved,
// and the two always sum to the raw mark count — so flushed matches the
// pool's PWB delta exactly and neither side double-counts.
func TestFlushSetAccountingInvariant(t *testing.T) {
	cases := []struct {
		name          string
		mark          func(fs *FlushSet)
		flushed, coal uint64
	}{
		{"partial line", func(fs *FlushSet) { fs.AddRange(100, 8) }, 1, 0},
		{"line-crossing range", func(fs *FlushSet) { fs.AddRange(60, 8) }, 2, 0},
		{"overlapping ranges", func(fs *FlushSet) {
			fs.AddRange(0, 128)
			fs.AddRange(64, 64)
		}, 2, 1},
		{"exact line", func(fs *FlushSet) { fs.AddRange(64, 64) }, 1, 0},
		{"repeated field stores", func(fs *FlushSet) {
			for i := 0; i < 5; i++ {
				fs.AddRange(200, 8)
			}
		}, 1, 4},
		{"contained range", func(fs *FlushSet) {
			fs.AddRange(0, 256)
			fs.AddRange(64, 8)
		}, 4, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := New(1<<16, Options{})
			fs := NewFlushSet()
			tc.mark(fs)
			marks := uint64(fs.Pending())
			before := p.Obs().Snapshot()
			flushed, coalesced := fs.Flush(p)
			d := p.Obs().Snapshot().Sub(before)
			if flushed != tc.flushed || coalesced != tc.coal {
				t.Fatalf("Flush = (%d, %d), want (%d, %d)", flushed, coalesced, tc.flushed, tc.coal)
			}
			if flushed+coalesced != marks {
				t.Fatalf("flushed %d + coalesced %d != %d raw marks", flushed, coalesced, marks)
			}
			if d.PWBs != flushed {
				t.Fatalf("pool counted %d pwb, accounting claims %d", d.PWBs, flushed)
			}
		})
	}
}

func TestFlushSetEmpty(t *testing.T) {
	p := New(1<<16, Options{})
	fs := NewFlushSet()
	if flushed, coalesced := fs.Flush(p); flushed != 0 || coalesced != 0 {
		t.Fatalf("empty Flush = (%d, %d), want (0, 0)", flushed, coalesced)
	}
	fs.AddRange(100, 0) // zero-length range marks nothing
	if fs.Pending() != 0 {
		t.Fatal("AddRange(_, 0) must not mark lines")
	}
	fs.Add(64)
	fs.Reset()
	if fs.Pending() != 0 {
		t.Fatal("Reset must empty the set")
	}
}
