package nvm

import (
	"math/rand"
	"sync"
	"testing"
)

// Concurrency tests: the tracked pool's line bookkeeping must survive
// parallel writers on disjoint regions plus fences from every goroutine.

func TestTrackedConcurrentDisjointWriters(t *testing.T) {
	p := New(1<<20, Options{Tracked: true})
	const workers = 8
	const perWorker = 4096 // bytes per worker region, line-aligned
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w * perWorker)
			for i := uint64(0); i < perWorker/8; i++ {
				off := base + i*8
				p.WriteUint64(off, uint64(w)<<32|i)
				p.PWB(off)
				if i%64 == 0 {
					p.PFence()
				}
			}
			p.PSync()
		}(w)
	}
	wg.Wait()
	img := p.CrashImage(CrashStrict, rand.New(rand.NewSource(1)))
	for w := 0; w < workers; w++ {
		base := uint64(w * perWorker)
		for i := uint64(0); i < perWorker/8; i++ {
			want := uint64(w)<<32 | i
			if got := img.ReadUint64(base + i*8); got != want {
				t.Fatalf("worker %d word %d: %#x want %#x", w, i, got, want)
			}
		}
	}
}

func TestDirectConcurrentStats(t *testing.T) {
	p := New(1<<16, Options{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				p.WriteUint64(uint64(w)*8192+uint64(i%512)*8, uint64(i))
				p.PWB(uint64(w) * 8192)
				p.PFence()
			}
		}(w)
	}
	wg.Wait()
	stores, flushes, fences := p.Stats()
	if stores != 8000 || flushes != 8000 || fences != 8000 {
		t.Fatalf("stats %d/%d/%d", stores, flushes, fences)
	}
}

func TestCrashImageWhileWriting(t *testing.T) {
	// Taking crash images concurrently with writers must not corrupt
	// either side (the image is an atomic snapshot of the durable state).
	p := New(1<<18, Options{Tracked: true})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := uint64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			off := (i % 1024) * 64
			p.WriteUint64(off, i)
			p.PWB(off)
			p.PFence()
			i++
		}
	}()
	rng := rand.New(rand.NewSource(7))
	for k := 0; k < 50; k++ {
		img := p.CrashImage(CrashStrict, rng)
		// Spot check: every durable word decodes (no torn bookkeeping).
		_ = img.ReadUint64(0)
		_ = img.ReadBytes(0, 4096)
	}
	close(stop)
	wg.Wait()
}
