package nvm

import (
	"math/rand"
	"sync"
	"testing"
)

func TestCombinerSoloIssuesOneFence(t *testing.T) {
	p := New(1<<16, Options{})
	c := NewFenceCombiner()

	before := p.Obs().Snapshot()
	c.Fence(p)
	d := p.Obs().Snapshot().Sub(before)
	if d.PFences != 1 || d.PSyncs != 0 {
		t.Fatalf("solo Fence issued %d pfence, %d psync; want 1, 0", d.PFences, d.PSyncs)
	}

	before = p.Obs().Snapshot()
	c.Sync(p)
	d = p.Obs().Snapshot().Sub(before)
	if d.PFences != 0 || d.PSyncs != 1 {
		t.Fatalf("solo Sync issued %d pfence, %d psync; want 0, 1", d.PFences, d.PSyncs)
	}

	barriers, issued, syncs := c.Stats()
	if barriers != 2 || issued != 2 || syncs != 1 {
		t.Fatalf("stats = (%d, %d, %d), want (2, 2, 1)", barriers, issued, syncs)
	}
}

func TestCombinerCoversQueuedWrites(t *testing.T) {
	// In tracked mode a fence drains the whole write-pending queue; the
	// combiner's contract is that a caller's own PWBs — queued before it
	// entered the barrier — are persisted by the covering fence.
	p := New(1<<16, Options{Tracked: true})
	c := NewFenceCombiner()
	p.WriteUint64(0, 7)
	p.PWB(0)
	c.Fence(p)
	img := p.CrashImage(CrashStrict, rand.New(rand.NewSource(1)))
	if v := img.ReadUint64(0); v != 7 {
		t.Fatalf("write not durable after combined fence: strict crash reads %d", v)
	}
}

func TestCombinerConcurrentSharesBarriers(t *testing.T) {
	p := New(1<<20, Options{})
	c := NewFenceCombiner()
	const workers = 8
	const rounds = 200

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				off := uint64(w*rounds+i) * 8
				p.WriteUint64(off, uint64(i))
				p.PWB(off)
				if i%10 == 0 {
					c.Sync(p)
				} else {
					c.Fence(p)
				}
			}
		}(w)
	}
	wg.Wait()

	barriers, issued, syncs := c.Stats()
	if barriers != workers*rounds {
		t.Fatalf("barriers = %d, want %d", barriers, workers*rounds)
	}
	if issued > barriers {
		t.Fatalf("issued %d fences for %d barriers", issued, barriers)
	}
	if syncs > issued {
		t.Fatalf("syncs %d > issued %d", syncs, issued)
	}
	// Every sync request must be covered by a psync barrier: with
	// workers*rounds/10 sync requests there is at least one psync.
	if syncs == 0 {
		t.Fatal("no psync issued despite sync requests")
	}
	s := p.Obs().Snapshot()
	if s.PFences+s.PSyncs != issued {
		t.Fatalf("pool saw %d fences, combiner issued %d", s.PFences+s.PSyncs, issued)
	}
}
