package nvm

import (
	"bytes"
	"math/rand"
	"testing"
)

// recordPlane records every ordering point and can panic at a chosen one.
type recordPlane struct {
	events  []FaultEvent
	panicAt int // 1-based ordering point to panic at; 0 = never
}

type planeTrip struct{}

func (r *recordPlane) OrderingPoint(ev FaultEvent) {
	r.events = append(r.events, ev)
	if r.panicAt != 0 && len(r.events) == r.panicAt {
		panic(planeTrip{})
	}
}

// TestFaultPlaneEventSequence checks that the plane sees one event per
// primitive, in program order, with the documented kinds and offsets —
// including one FaultPWB per line of a PWBRange.
func TestFaultPlaneEventSequence(t *testing.T) {
	p := New(4096, Options{Tracked: true})
	fp := &recordPlane{}
	p.SetFaultPlane(fp)
	p.WriteUint64(0, 1)
	p.WriteUint8(100, 2)
	p.PWB(0)
	p.PWBRange(60, 16) // straddles lines 0 and 64
	p.PFence()
	p.PSync()
	p.SetFaultPlane(nil)
	p.WriteUint64(8, 3) // unobserved after removal

	want := []FaultEvent{
		{Kind: FaultStore, Off: 0, Len: 8},
		{Kind: FaultStore, Off: 100, Len: 1},
		{Kind: FaultPWB, Off: 0, Len: LineSize},
		{Kind: FaultPWB, Off: 0, Len: LineSize},
		{Kind: FaultPWB, Off: 64, Len: LineSize},
		{Kind: FaultPFence},
		{Kind: FaultPSync},
	}
	if len(fp.events) != len(want) {
		t.Fatalf("got %d events, want %d: %v", len(fp.events), len(want), fp.events)
	}
	for i, ev := range fp.events {
		if ev != want[i] {
			t.Fatalf("event %d: got %+v, want %+v", i, ev, want[i])
		}
	}
}

// TestFaultPlanePanicPrecedesEffect checks the "crash at point k" reading:
// a plane that panics at an ordering point stops the primitive from taking
// effect, so a crash image from that instant does not contain it.
func TestFaultPlanePanicPrecedesEffect(t *testing.T) {
	p := New(4096, Options{Tracked: true})
	p.WriteUint64(0, 0xAA)
	p.PWB(0)
	p.PSync() // durable baseline

	// Panic at the PFence following a store+PWB: the fence never drains,
	// so strict recovery sees only the baseline.
	fp := &recordPlane{panicAt: 3} // store, pwb, pfence
	p.SetFaultPlane(fp)
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("plane did not trip")
			}
		}()
		p.WriteUint64(0, 0xBB)
		p.PWB(0)
		p.PFence()
	}()
	p.SetFaultPlane(nil)
	img := p.CrashImage(CrashStrict, nil)
	if got := img.ReadUint64(0); got != 0xAA {
		t.Fatalf("strict image after pre-fence crash: got %#x, want 0xAA", got)
	}

	// Same program, panic at the PWB: the line is not even queued, so the
	// store can only survive as a dirty-line eviction, never as a queued
	// snapshot.
	p2 := New(4096, Options{Tracked: true})
	fp2 := &recordPlane{panicAt: 2}
	p2.SetFaultPlane(fp2)
	func() {
		defer func() { recover() }()
		p2.WriteUint64(0, 0xCC)
		p2.PWB(0)
	}()
	p2.SetFaultPlane(nil)
	cs := p2.CaptureCrashState()
	pend := cs.Pending()
	if len(pend) != 1 || pend[0].Queued || !pend[0].Dirty {
		t.Fatalf("pending after pre-PWB crash: %+v, want one dirty unqueued line", pend)
	}
}

// TestCaptureCrashStateImmutable checks that a captured state is immune to
// stores issued after capture — the property that lets crashmc capture at
// a panic site and build images after deferred cleanup wrote to the pool.
func TestCaptureCrashStateImmutable(t *testing.T) {
	p := New(4096, Options{Tracked: true})
	p.WriteUint64(0, 1)
	p.PWB(0)
	cs := p.CaptureCrashState()
	p.WriteUint64(0, 2) // post-capture store must not leak into images
	p.PWB(0)
	p.PSync()
	img := cs.Image([]CrashLine{{Line: 0, Source: CrashFromSnapshot}})
	if got := img.ReadUint64(0); got != 1 {
		t.Fatalf("captured snapshot changed after later stores: got %d, want 1", got)
	}
	img = cs.Image([]CrashLine{{Line: 0, Source: CrashFromCurrent}})
	if got := img.ReadUint64(0); got != 1 {
		t.Fatalf("captured current content changed after later stores: got %d, want 1", got)
	}
}

// TestCrashImageQueuedThenRedirtied is the regression test for the old
// CrashImage: a line that is both queued (snapshot A awaiting its fence)
// and re-dirtied (newer content B) must be able to persist either state —
// and, torn, a word-aligned mix of the two. The old implementation could
// only ever apply one coin per map, so mixes were unreachable.
func TestCrashImageQueuedThenRedirtied(t *testing.T) {
	build := func() *Pool {
		p := New(4096, Options{Tracked: true})
		for w := uint64(0); w < 8; w++ {
			p.WriteUint64(w*8, 0xA0+w) // state A
		}
		p.PWB(0) // queue snapshot A
		for w := uint64(0); w < 8; w++ {
			p.WriteUint64(w*8, 0xB0+w) // redirty with state B
		}
		return p
	}

	classify := func(img *Pool) (sawA, sawB, sawOld bool) {
		for w := uint64(0); w < 8; w++ {
			switch v := img.ReadUint64(w * 8); {
			case v == 0xA0+w:
				sawA = true
			case v == 0xB0+w:
				sawB = true
			case v == 0:
				sawOld = true
			default:
				t.Fatalf("word %d mangled: %#x", w, v)
			}
		}
		return
	}

	// Explicit specs first: each pure state, then a composed tear.
	p := build()
	cs := p.CaptureCrashState()
	if pend := cs.Pending(); len(pend) != 1 || !pend[0].Queued || !pend[0].Dirty {
		t.Fatalf("pending: %+v, want one queued+dirty line", pend)
	}
	if a, b, _ := classify(cs.Image([]CrashLine{{Line: 0, Source: CrashFromSnapshot}})); !a || b {
		t.Fatal("snapshot image does not show pure state A")
	}
	if a, b, _ := classify(cs.Image([]CrashLine{{Line: 0, Source: CrashFromCurrent}})); a || !b {
		t.Fatal("current image does not show pure state B")
	}
	mixed := cs.Image([]CrashLine{
		{Line: 0, Source: CrashFromSnapshot},
		{Line: 0, Source: CrashFromCurrent, Split: 24, Tail: false},
	})
	for w := uint64(0); w < 8; w++ {
		want := 0xA0 + w
		if w < 3 {
			want = 0xB0 + w
		}
		if got := mixed.ReadUint64(w * 8); got != want {
			t.Fatalf("mixed image word %d: got %#x, want %#x", w, got, want)
		}
	}

	// Now the policy itself: over many seeds CrashRandom must reach state
	// A, state B, and at least one A/B mix within the line. CrashTorn must
	// produce tears (partial-line images) without ever mangling a word.
	var hitA, hitB, hitMix, hitTear bool
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		a, b, old := classify(build().CrashImage(CrashRandom, rng))
		switch {
		case a && b:
			hitMix = true
		case a && !old:
			hitA = true
		case b && !old:
			hitB = true
		}
		if (a || b) && old {
			hitTear = true
		}
		trng := rand.New(rand.NewSource(seed))
		classify(build().CrashImage(CrashTorn, trng)) // word-mangling check inside
	}
	if !hitA || !hitB {
		t.Fatalf("CrashRandom never produced both pure states: A=%v B=%v", hitA, hitB)
	}
	if !hitMix {
		t.Fatal("CrashRandom never composed snapshot and redirtied content (old bug)")
	}
	if !hitTear {
		t.Fatal("CrashRandom never tore a line at a sub-line boundary (old bug)")
	}
}

// TestCrashTornWordAtomicity checks the torn-write model across arbitrary
// specs: every aligned 8-byte word of a torn image equals either the old
// or the new content in full — a tear never splits a word, matching x86
// aligned-store atomicity.
func TestCrashTornWordAtomicity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 100; iter++ {
		p := New(1024, Options{Tracked: true})
		oldPat := make([]byte, LineSize)
		newPat := make([]byte, LineSize)
		rng.Read(oldPat)
		rng.Read(newPat)
		p.WriteBytes(64, oldPat)
		p.PWB(64)
		p.PSync()
		p.WriteBytes(64, newPat)
		p.PWB(64)
		img := p.CrashImage(CrashTorn, rng)
		line := img.ReadBytes(64, LineSize)
		for w := 0; w < LineSize/8; w++ {
			word := line[w*8 : w*8+8]
			if !bytes.Equal(word, oldPat[w*8:w*8+8]) && !bytes.Equal(word, newPat[w*8:w*8+8]) {
				t.Fatalf("iter %d: word %d split mid-word", iter, w)
			}
		}
	}
}

// TestSampleSpecDeterministic checks the reproducibility contract: the
// same CrashState and seed yield byte-identical images.
func TestSampleSpecDeterministic(t *testing.T) {
	p := New(8192, Options{Tracked: true})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		off := uint64(rng.Intn(8192-8)) &^ 7
		p.WriteUint64(off, rng.Uint64())
		if rng.Intn(3) == 0 {
			p.PWB(off)
		}
		if rng.Intn(8) == 0 {
			p.PFence()
		}
	}
	cs := p.CaptureCrashState()
	for seed := int64(0); seed < 10; seed++ {
		a := cs.Image(cs.SampleSpec(rand.New(rand.NewSource(seed)), false))
		b := cs.Image(cs.SampleSpec(rand.New(rand.NewSource(seed)), false))
		if !bytes.Equal(a.View(0, a.Size()), b.View(0, b.Size())) {
			t.Fatalf("seed %d: SampleSpec images differ across identical rngs", seed)
		}
	}
}
