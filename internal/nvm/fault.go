package nvm

import (
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
)

// ---- Fault plane (injectable ordering-point observer) ----
//
// The crash-consistency explorer (internal/crashmc) needs to see every
// point at which the persistence order of a workload could be cut short
// by a power failure. Those points are exactly the ordering primitives of
// §3.2.2 plus the stores themselves: a crash can land before any given
// store, before any given PWB, or before any given fence. A FaultPlane
// installed on a tracked pool is invoked once per such point, *before*
// the primitive takes effect, so "crash at point k" means the k-th
// primitive (and everything after it) never executed.

// FaultKind identifies which ordering primitive an event precedes.
type FaultKind int

const (
	// FaultStore precedes a store of Len bytes at Off.
	FaultStore FaultKind = iota
	// FaultPWB precedes the queueing of one cache line; Off is the
	// line-aligned offset and Len is LineSize. A PWBRange over n lines
	// raises n FaultPWB events.
	FaultPWB
	// FaultPFence precedes a PFence (write-pending queue drain).
	FaultPFence
	// FaultPSync precedes a PSync.
	FaultPSync
	// FaultCAS precedes a compare-and-swap attempt on an 8-byte word at
	// Off. The event fires whether or not the swap will succeed — the
	// crash lands before the attempt, so on the image the word holds its
	// pre-CAS durable state. Lock-free durable structures (DESIGN.md §16)
	// publish through these, so every link/unlink is an ordering point.
	FaultCAS
)

func (k FaultKind) String() string {
	switch k {
	case FaultStore:
		return "store"
	case FaultPWB:
		return "pwb"
	case FaultPFence:
		return "pfence"
	case FaultPSync:
		return "psync"
	case FaultCAS:
		return "cas"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// FaultEvent describes one ordering point.
type FaultEvent struct {
	Kind FaultKind
	Off  uint64 // store offset, or line offset for FaultPWB; 0 for fences
	Len  uint64 // store length, or LineSize for FaultPWB; 0 for fences
}

// FaultPlane observes ordering points. OrderingPoint runs on the calling
// goroutine with no pool locks held, so it may call CaptureCrashState and
// may panic to abandon the workload at that instant (the idiom crashmc
// uses to "pull the plug"). If the pool is used from several goroutines
// the plane must be safe for concurrent calls.
type FaultPlane interface {
	OrderingPoint(FaultEvent)
}

// faultHolder wraps the interface value so it can live in an
// atomic.Pointer (interfaces are two words and not atomically storable).
type faultHolder struct{ fp FaultPlane }

// SetFaultPlane installs (or, with nil, removes) the pool's fault plane.
// Safe to call concurrently with pool use; primitives already past their
// observation point complete unobserved.
func (p *Pool) SetFaultPlane(fp FaultPlane) {
	if fp == nil {
		p.plane.Store(nil)
		return
	}
	p.plane.Store(&faultHolder{fp: fp})
}

func (p *Pool) observe(kind FaultKind, off, n uint64) {
	h := p.plane.Load()
	if h == nil {
		return
	}
	h.fp.OrderingPoint(FaultEvent{Kind: kind, Off: off, Len: n})
}

// planeField is embedded in Pool via the plane member; declared here to
// keep all fault-plane code in one file.
type planeField = atomic.Pointer[faultHolder]

// ---- Crash states and adversarial images ----

// CrashSource selects which content of a pending line a CrashLine applies.
type CrashSource int

const (
	// CrashFromSnapshot applies the line's pwb-time snapshot (the content
	// sitting in the write-pending queue). Only valid for queued lines.
	CrashFromSnapshot CrashSource = iota
	// CrashFromCurrent applies the line's cache content at capture time,
	// modeling an eviction racing the failure. Valid for any pending line.
	CrashFromCurrent
)

// PendingLine describes one cache line that had not yet reached durable
// NVMM when the state was captured.
type PendingLine struct {
	Line   uint64 // line-aligned offset
	Queued bool   // holds a pwb-time snapshot awaiting a fence
	Dirty  bool   // stored to since its last PWB
}

// CrashLine is one entry of a crash-image specification: persist (part
// of) a pending line on top of the durable image. Split carves the line
// at an 8-byte boundary — aligned 8-byte stores are atomic on the modeled
// hardware (x86), so tears never land inside an aligned word, but any
// multi-word value can be cut. Split 0 applies the whole line; otherwise
// Split must be a multiple of 8 in (0, LineSize), and Tail selects which
// side of the boundary persists ([0,Split) when false, [Split,LineSize)
// when true). Entries apply in order, so composing {snapshot, whole}
// followed by {current, head} models a line whose old flush survived and
// whose re-dirtied head was then partially evicted.
type CrashLine struct {
	Line   uint64
	Source CrashSource
	Split  uint64
	Tail   bool
}

type pendingData struct {
	snap  []byte // pwb-time snapshot; nil when the line is not queued
	cur   []byte // cache content at capture time
	dirty bool
}

// CrashState is an immutable copy of a tracked pool's persistence state —
// the durable image plus every pending line's snapshot and cache content.
// It is captured once (cheaply, under the pool lock) and can then mint
// any number of crash images while the original pool keeps running or is
// torn down; in particular it is immune to stores issued after capture,
// which is what lets crashmc capture at a panic site and build images
// after unwinding through deferred writes (e.g. fa's Abort-on-panic).
type CrashState struct {
	size    int
	opts    Options
	durable []byte
	lines   map[uint64]pendingData
}

// CaptureCrashState snapshots the pool's persistence state. Panics if the
// pool is not tracked.
func (p *Pool) CaptureCrashState() *CrashState {
	if !p.opts.Tracked {
		panic("nvm: CaptureCrashState requires a tracked pool")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	cs := &CrashState{
		size:    len(p.data),
		opts:    p.opts,
		durable: append([]byte(nil), p.durable...),
		lines:   make(map[uint64]pendingData, len(p.queued)+len(p.dirty)),
	}
	lineCopy := func(line uint64) []byte {
		end := line + LineSize
		if end > uint64(len(p.data)) {
			end = uint64(len(p.data))
		}
		out := make([]byte, LineSize)
		copy(out, p.data[line:end])
		return out
	}
	for line, snap := range p.queued {
		cs.lines[line] = pendingData{
			snap:  append([]byte(nil), snap...),
			cur:   lineCopy(line),
			dirty: p.dirty[line],
		}
	}
	for line := range p.dirty {
		if _, ok := cs.lines[line]; !ok {
			cs.lines[line] = pendingData{cur: lineCopy(line), dirty: true}
		}
	}
	return cs
}

// Pending lists the captured pending lines in ascending line order.
func (cs *CrashState) Pending() []PendingLine {
	out := make([]PendingLine, 0, len(cs.lines))
	for line, pd := range cs.lines {
		out = append(out, PendingLine{Line: line, Queued: pd.snap != nil, Dirty: pd.dirty})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Line < out[j].Line })
	return out
}

// Size returns the size of the captured pool.
func (cs *CrashState) Size() int { return cs.size }

// Image materializes a crash image: the durable snapshot with the given
// spec entries applied in order. The returned pool is tracked (its
// durable image equals its data) and independent of the original. Panics
// on a spec entry naming a non-pending line, a CrashFromSnapshot entry
// for an unqueued line, or an invalid Split.
func (cs *CrashState) Image(spec []CrashLine) *Pool {
	img := New(cs.size, cs.opts)
	copy(img.data, cs.durable)
	for _, cl := range spec {
		pd, ok := cs.lines[cl.Line]
		if !ok {
			panic(fmt.Sprintf("nvm: CrashLine %#x is not a pending line", cl.Line))
		}
		var src []byte
		switch cl.Source {
		case CrashFromSnapshot:
			if pd.snap == nil {
				panic(fmt.Sprintf("nvm: CrashLine %#x requests snapshot of unqueued line", cl.Line))
			}
			src = pd.snap
		case CrashFromCurrent:
			src = pd.cur
		default:
			panic(fmt.Sprintf("nvm: invalid CrashSource %d", cl.Source))
		}
		start, end := uint64(0), uint64(LineSize)
		if cl.Split != 0 {
			if cl.Split%8 != 0 || cl.Split >= LineSize {
				panic(fmt.Sprintf("nvm: invalid Split %d (want multiple of 8 in (0,%d))", cl.Split, LineSize))
			}
			if cl.Tail {
				start = cl.Split
			} else {
				end = cl.Split
			}
		}
		lineEnd := cl.Line + end
		if lineEnd > uint64(cs.size) {
			lineEnd = uint64(cs.size)
		}
		if cl.Line+start >= lineEnd {
			continue
		}
		copy(img.data[cl.Line+start:lineEnd], src[start:end])
	}
	if img.opts.Tracked {
		copy(img.durable, img.data)
	}
	return img
}

// SampleSpec draws a random crash-image specification: each pending line
// is independently dropped, persisted whole, or torn at a random 8-byte
// boundary, from its snapshot or its cache content (both reachable for
// queued-then-redirtied lines, including composed old-flush +
// partial-eviction mixes). alwaysTear forces every retained line to be
// torn, the most adversarial sub-line setting. Deterministic in rng.
func (cs *CrashState) SampleSpec(rng *rand.Rand, alwaysTear bool) []CrashLine {
	var spec []CrashLine
	tearOf := func(cl CrashLine) CrashLine {
		cl.Split = 8 * uint64(1+rng.Intn(LineSize/8-1))
		cl.Tail = rng.Intn(2) == 0
		return cl
	}
	for _, pl := range cs.Pending() {
		if rng.Intn(3) == 0 {
			continue // dropped: this line stays at its durable content
		}
		cl := CrashLine{Line: pl.Line}
		switch {
		case pl.Queued && pl.Dirty:
			// Both states exist; sometimes compose them (flush landed,
			// then part of the newer content was evicted on top).
			if rng.Intn(4) == 0 {
				spec = append(spec, CrashLine{Line: pl.Line, Source: CrashFromSnapshot})
				cl.Source = CrashFromCurrent
				spec = append(spec, tearOf(cl))
				continue
			}
			if rng.Intn(2) == 0 {
				cl.Source = CrashFromSnapshot
			} else {
				cl.Source = CrashFromCurrent
			}
		case pl.Queued:
			cl.Source = CrashFromSnapshot
		default:
			cl.Source = CrashFromCurrent
		}
		if alwaysTear || rng.Intn(4) == 0 {
			cl = tearOf(cl)
		}
		spec = append(spec, cl)
	}
	return spec
}

// PolicyImage materializes a crash image under one of the named policies.
// rng is only consulted by CrashRandom and CrashTorn.
func (cs *CrashState) PolicyImage(policy CrashPolicy, rng *rand.Rand) *Pool {
	switch policy {
	case CrashStrict:
		return cs.Image(nil)
	case CrashAll:
		spec := make([]CrashLine, 0, len(cs.lines))
		for _, pl := range cs.Pending() {
			spec = append(spec, CrashLine{Line: pl.Line, Source: CrashFromCurrent})
		}
		return cs.Image(spec)
	case CrashRandom:
		return cs.Image(cs.SampleSpec(rng, false))
	case CrashTorn:
		return cs.Image(cs.SampleSpec(rng, true))
	}
	panic(fmt.Sprintf("nvm: unknown crash policy %d", policy))
}
