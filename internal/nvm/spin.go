package nvm

import (
	"sync/atomic"
	"time"
)

// spinSink defeats dead-code elimination of the calibration and wait loops.
var spinSink atomic.Uint64

// spinIterPerNs is the calibrated number of spin-loop iterations per
// nanosecond. Calibrated lazily on first use.
var spinIterPerNs atomic.Uint64

func calibrateSpin() uint64 {
	const probe = 1 << 16
	start := time.Now()
	var s uint64
	for i := 0; i < probe; i++ {
		s += uint64(i) ^ (s >> 3)
	}
	spinSink.Add(s)
	elapsed := time.Since(start).Nanoseconds()
	if elapsed < 1 {
		elapsed = 1
	}
	iters := uint64(probe) / uint64(elapsed)
	if iters == 0 {
		iters = 1
	}
	return iters
}

// spinWait busy-waits for approximately ns nanoseconds without yielding the
// processor, modeling the stall a store fence to NVMM inflicts on the
// pipeline (§3.2.3: "calling pfence prevents out-of-order execution").
// Sleeping would be wrong here: the paper's cost is CPU time, not latency
// that the scheduler could overlap.
func spinWait(ns int) {
	iters := spinIterPerNs.Load()
	if iters == 0 {
		iters = calibrateSpin()
		spinIterPerNs.Store(iters)
	}
	n := uint64(ns) * iters
	var s uint64
	for i := uint64(0); i < n; i++ {
		s += i ^ (s >> 3)
	}
	spinSink.Add(s)
}

// SpinWait busy-waits for approximately ns nanoseconds of CPU time. It is
// exported for latency models layered above the pool (e.g. the JNI-gate
// cost of the PCJ backend in the store package).
func SpinWait(ns int) { spinWait(ns) }
