package container

import "math/rand"

// SkipList is an ordered map from string keys to values, the volatile
// counterpart of java.util.concurrent.ConcurrentSkipListMap in Figure 12.
// It is a classic Pugh skip list with p = 1/4; like the other mirrors it
// is externally synchronized (the store's lock striping plays the paper's
// Infinispan role).
type SkipList[V any] struct {
	head  *slNode[V]
	level int
	size  int
	rng   *rand.Rand
}

const slMaxLevel = 24

type slNode[V any] struct {
	key  string
	val  V
	next []*slNode[V]
}

// NewSkipList creates an empty list with a deterministic level source.
func NewSkipList[V any](seed int64) *SkipList[V] {
	return &SkipList[V]{
		head:  &slNode[V]{next: make([]*slNode[V], slMaxLevel)},
		level: 1,
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Len returns the number of keys.
func (s *SkipList[V]) Len() int { return s.size }

func (s *SkipList[V]) randomLevel() int {
	lvl := 1
	for lvl < slMaxLevel && s.rng.Intn(4) == 0 {
		lvl++
	}
	return lvl
}

// findPredecessors fills update with the rightmost node before key at each
// level and returns the candidate node at level 0.
func (s *SkipList[V]) findPredecessors(key string, update []*slNode[V]) *slNode[V] {
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < key {
			x = x.next[i]
		}
		if update != nil {
			update[i] = x
		}
	}
	return x.next[0]
}

// Get returns the value bound to key.
func (s *SkipList[V]) Get(key string) (V, bool) {
	n := s.findPredecessors(key, nil)
	if n != nil && n.key == key {
		return n.val, true
	}
	var zero V
	return zero, false
}

// Put binds key to val, replacing any previous binding.
func (s *SkipList[V]) Put(key string, val V) {
	update := make([]*slNode[V], slMaxLevel)
	for i := s.level; i < slMaxLevel; i++ {
		update[i] = s.head
	}
	n := s.findPredecessors(key, update)
	if n != nil && n.key == key {
		n.val = val
		return
	}
	lvl := s.randomLevel()
	if lvl > s.level {
		s.level = lvl
	}
	node := &slNode[V]{key: key, val: val, next: make([]*slNode[V], lvl)}
	for i := 0; i < lvl; i++ {
		node.next[i] = update[i].next[i]
		update[i].next[i] = node
	}
	s.size++
}

// Delete removes key; it reports whether the key was present.
func (s *SkipList[V]) Delete(key string) bool {
	update := make([]*slNode[V], slMaxLevel)
	n := s.findPredecessors(key, update)
	if n == nil || n.key != key {
		return false
	}
	for i := 0; i < len(n.next); i++ {
		if update[i].next[i] == n {
			update[i].next[i] = n.next[i]
		}
	}
	for s.level > 1 && s.head.next[s.level-1] == nil {
		s.level--
	}
	s.size--
	return true
}

// Min returns the smallest key.
func (s *SkipList[V]) Min() (string, V, bool) {
	if n := s.head.next[0]; n != nil {
		return n.key, n.val, true
	}
	var zero V
	return "", zero, false
}

// Ascend calls fn on every binding with key >= from, in key order, until
// fn returns false.
func (s *SkipList[V]) Ascend(from string, fn func(key string, val V) bool) {
	n := s.findPredecessors(from, nil)
	for n != nil {
		if !fn(n.key, n.val) {
			return
		}
		n = n.next[0]
	}
}
