// Package container provides the volatile data structures that J-PDT uses
// as in-memory mirrors (§4.3.2: "for a persistent binary tree, we use a
// Java TreeMap") and that Figure 12 measures as the volatile baselines:
// a red-black tree, a skip list, and an LRU used by the store cache.
package container

// RBTree is an ordered map from string keys to values, implemented as a
// left-leaning red-black 2-3 tree (Sedgewick), the moral equivalent of
// java.util.TreeMap in the paper's comparison.
type RBTree[V any] struct {
	root *rbNode[V]
	size int
}

type rbNode[V any] struct {
	key         string
	val         V
	left, right *rbNode[V]
	red         bool
}

// NewRBTree creates an empty tree.
func NewRBTree[V any]() *RBTree[V] { return &RBTree[V]{} }

// Len returns the number of keys.
func (t *RBTree[V]) Len() int { return t.size }

// Get returns the value bound to key.
func (t *RBTree[V]) Get(key string) (V, bool) {
	n := t.root
	for n != nil {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			return n.val, true
		}
	}
	var zero V
	return zero, false
}

func isRed[V any](n *rbNode[V]) bool { return n != nil && n.red }

func rotateLeft[V any](h *rbNode[V]) *rbNode[V] {
	x := h.right
	h.right = x.left
	x.left = h
	x.red = h.red
	h.red = true
	return x
}

func rotateRight[V any](h *rbNode[V]) *rbNode[V] {
	x := h.left
	h.left = x.right
	x.right = h
	x.red = h.red
	h.red = true
	return x
}

func flipColors[V any](h *rbNode[V]) {
	h.red = !h.red
	h.left.red = !h.left.red
	h.right.red = !h.right.red
}

func fixUp[V any](h *rbNode[V]) *rbNode[V] {
	if isRed(h.right) && !isRed(h.left) {
		h = rotateLeft(h)
	}
	if isRed(h.left) && isRed(h.left.left) {
		h = rotateRight(h)
	}
	if isRed(h.left) && isRed(h.right) {
		flipColors(h)
	}
	return h
}

// Put binds key to val, replacing any previous binding.
func (t *RBTree[V]) Put(key string, val V) {
	t.root = t.put(t.root, key, val)
	t.root.red = false
}

func (t *RBTree[V]) put(h *rbNode[V], key string, val V) *rbNode[V] {
	if h == nil {
		t.size++
		return &rbNode[V]{key: key, val: val, red: true}
	}
	switch {
	case key < h.key:
		h.left = t.put(h.left, key, val)
	case key > h.key:
		h.right = t.put(h.right, key, val)
	default:
		h.val = val
	}
	return fixUp(h)
}

func moveRedLeft[V any](h *rbNode[V]) *rbNode[V] {
	flipColors(h)
	if isRed(h.right.left) {
		h.right = rotateRight(h.right)
		h = rotateLeft(h)
		flipColors(h)
	}
	return h
}

func moveRedRight[V any](h *rbNode[V]) *rbNode[V] {
	flipColors(h)
	if isRed(h.left.left) {
		h = rotateRight(h)
		flipColors(h)
	}
	return h
}

func minNode[V any](h *rbNode[V]) *rbNode[V] {
	for h.left != nil {
		h = h.left
	}
	return h
}

func deleteMin[V any](h *rbNode[V]) *rbNode[V] {
	if h.left == nil {
		return nil
	}
	if !isRed(h.left) && !isRed(h.left.left) {
		h = moveRedLeft(h)
	}
	h.left = deleteMin(h.left)
	return fixUp(h)
}

// Delete removes key; it reports whether the key was present.
func (t *RBTree[V]) Delete(key string) bool {
	if _, ok := t.Get(key); !ok {
		return false
	}
	t.root = t.delete(t.root, key)
	if t.root != nil {
		t.root.red = false
	}
	t.size--
	return true
}

func (t *RBTree[V]) delete(h *rbNode[V], key string) *rbNode[V] {
	if key < h.key {
		if !isRed(h.left) && !isRed(h.left.left) {
			h = moveRedLeft(h)
		}
		h.left = t.delete(h.left, key)
	} else {
		if isRed(h.left) {
			h = rotateRight(h)
		}
		if key == h.key && h.right == nil {
			return nil
		}
		if !isRed(h.right) && !isRed(h.right.left) {
			h = moveRedRight(h)
		}
		if key == h.key {
			m := minNode(h.right)
			h.key, h.val = m.key, m.val
			h.right = deleteMin(h.right)
		} else {
			h.right = t.delete(h.right, key)
		}
	}
	return fixUp(h)
}

// Min returns the smallest key.
func (t *RBTree[V]) Min() (string, V, bool) {
	if t.root == nil {
		var zero V
		return "", zero, false
	}
	n := minNode(t.root)
	return n.key, n.val, true
}

// Max returns the largest key.
func (t *RBTree[V]) Max() (string, V, bool) {
	if t.root == nil {
		var zero V
		return "", zero, false
	}
	n := t.root
	for n.right != nil {
		n = n.right
	}
	return n.key, n.val, true
}

// Ascend calls fn on every binding with key >= from, in key order, until
// fn returns false.
func (t *RBTree[V]) Ascend(from string, fn func(key string, val V) bool) {
	t.ascend(t.root, from, fn)
}

func (t *RBTree[V]) ascend(n *rbNode[V], from string, fn func(string, V) bool) bool {
	if n == nil {
		return true
	}
	if n.key >= from {
		if !t.ascend(n.left, from, fn) {
			return false
		}
		if !fn(n.key, n.val) {
			return false
		}
	}
	return t.ascend(n.right, from, fn)
}

// checkInvariants verifies the red-black properties; used by tests.
func (t *RBTree[V]) checkInvariants() error {
	if _, err := checkStruct(t.root); err != nil {
		return err
	}
	var prev string
	first, ordered := true, true
	t.Ascend("", func(k string, _ V) bool {
		if !first && k <= prev {
			ordered = false
			return false
		}
		prev, first = k, false
		return true
	})
	if !ordered {
		return rbErr("in-order traversal not strictly increasing")
	}
	return nil
}

type rbErr string

func (e rbErr) Error() string { return string(e) }

func checkStruct[V any](n *rbNode[V]) (int, error) {
	if n == nil {
		return 1, nil
	}
	if isRed(n.right) {
		return 0, rbErr("right-leaning red link")
	}
	if isRed(n) && isRed(n.left) {
		return 0, rbErr("two reds in a row")
	}
	lb, err := checkStruct(n.left)
	if err != nil {
		return 0, err
	}
	rb, err := checkStruct(n.right)
	if err != nil {
		return 0, err
	}
	if lb != rb {
		return 0, rbErr("black-height imbalance")
	}
	if !n.red {
		lb++
	}
	return lb, nil
}
