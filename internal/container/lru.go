package container

// LRU is a fixed-capacity least-recently-used map, the volatile cache that
// the store puts in front of its persistence backends (the Infinispan
// cache whose ratio §5.3.1 sweeps). Zero capacity disables caching.
type LRU[V any] struct {
	cap     int
	items   map[string]*lruNode[V]
	head    *lruNode[V] // most recent
	tail    *lruNode[V] // least recent
	onEvict func(key string, val V)
}

type lruNode[V any] struct {
	key        string
	val        V
	prev, next *lruNode[V]
}

// NewLRU creates a cache holding at most capacity entries. onEvict (may be
// nil) runs when an entry is displaced.
func NewLRU[V any](capacity int, onEvict func(key string, val V)) *LRU[V] {
	return &LRU[V]{cap: capacity, items: make(map[string]*lruNode[V]), onEvict: onEvict}
}

// Len returns the number of cached entries.
func (l *LRU[V]) Len() int { return len(l.items) }

// Cap returns the configured capacity.
func (l *LRU[V]) Cap() int { return l.cap }

func (l *LRU[V]) unlink(n *lruNode[V]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (l *LRU[V]) pushFront(n *lruNode[V]) {
	n.next = l.head
	if l.head != nil {
		l.head.prev = n
	}
	l.head = n
	if l.tail == nil {
		l.tail = n
	}
}

// Get returns the cached value and refreshes its recency.
func (l *LRU[V]) Get(key string) (V, bool) {
	n, ok := l.items[key]
	if !ok {
		var zero V
		return zero, false
	}
	if l.head != n {
		l.unlink(n)
		l.pushFront(n)
	}
	return n.val, true
}

// Put inserts or refreshes a binding, evicting the least recent entry when
// over capacity.
func (l *LRU[V]) Put(key string, val V) {
	if l.cap <= 0 {
		return
	}
	if n, ok := l.items[key]; ok {
		n.val = val
		if l.head != n {
			l.unlink(n)
			l.pushFront(n)
		}
		return
	}
	n := &lruNode[V]{key: key, val: val}
	l.items[key] = n
	l.pushFront(n)
	if len(l.items) > l.cap {
		victim := l.tail
		l.unlink(victim)
		delete(l.items, victim.key)
		if l.onEvict != nil {
			l.onEvict(victim.key, victim.val)
		}
	}
}

// Remove drops a binding; it reports whether the key was cached.
func (l *LRU[V]) Remove(key string) bool {
	n, ok := l.items[key]
	if !ok {
		return false
	}
	l.unlink(n)
	delete(l.items, key)
	return true
}

// Clear empties the cache without running eviction callbacks.
func (l *LRU[V]) Clear() {
	l.items = make(map[string]*lruNode[V])
	l.head, l.tail = nil, nil
}
