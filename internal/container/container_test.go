package container

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// orderedMap is the common interface of the two ordered mirrors, letting
// one oracle test cover both.
type orderedMap[V any] interface {
	Get(string) (V, bool)
	Put(string, V)
	Delete(string) bool
	Len() int
	Min() (string, V, bool)
	Ascend(string, func(string, V) bool)
}

func runOracle(t *testing.T, m orderedMap[int], seed int64, ops int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	oracle := map[string]int{}
	for i := 0; i < ops; i++ {
		key := fmt.Sprintf("k%03d", rng.Intn(200))
		switch rng.Intn(3) {
		case 0, 1:
			m.Put(key, i)
			oracle[key] = i
		case 2:
			want := false
			if _, ok := oracle[key]; ok {
				want = true
			}
			if got := m.Delete(key); got != want {
				t.Fatalf("op %d: Delete(%s) = %v, want %v", i, key, got, want)
			}
			delete(oracle, key)
		}
		if m.Len() != len(oracle) {
			t.Fatalf("op %d: Len = %d, oracle %d", i, m.Len(), len(oracle))
		}
	}
	for k, v := range oracle {
		got, ok := m.Get(k)
		if !ok || got != v {
			t.Fatalf("Get(%s) = %d,%v, want %d", k, got, ok, v)
		}
	}
	if _, ok := m.Get("missing-key"); ok {
		t.Fatal("Get of a missing key succeeded")
	}
	// Ordered iteration must match the sorted oracle keys.
	var want []string
	for k := range oracle {
		want = append(want, k)
	}
	sort.Strings(want)
	var got []string
	m.Ascend("", func(k string, _ int) bool {
		got = append(got, k)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Ascend yielded %d keys, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Ascend[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	if len(want) > 0 {
		k, _, ok := m.Min()
		if !ok || k != want[0] {
			t.Fatalf("Min = %s, want %s", k, want[0])
		}
	}
}

func TestRBTreeOracle(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		tree := NewRBTree[int]()
		runOracle(t, tree, seed, 2000)
		if err := tree.checkInvariants(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestSkipListOracle(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		runOracle(t, NewSkipList[int](seed+100), seed, 2000)
	}
}

func TestRBTreeInvariantsUnderChurn(t *testing.T) {
	tree := NewRBTree[int]()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("%04d", rng.Intn(500))
		if rng.Intn(2) == 0 {
			tree.Put(k, i)
		} else {
			tree.Delete(k)
		}
		if i%97 == 0 {
			if err := tree.checkInvariants(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	if err := tree.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRBTreeMax(t *testing.T) {
	tree := NewRBTree[int]()
	if _, _, ok := tree.Max(); ok {
		t.Fatal("Max on empty tree")
	}
	for _, k := range []string{"m", "a", "z", "q"} {
		tree.Put(k, 1)
	}
	if k, _, _ := tree.Max(); k != "z" {
		t.Fatalf("Max = %s", k)
	}
	if k, _, _ := tree.Min(); k != "a" {
		t.Fatalf("Min = %s", k)
	}
}

func TestAscendFromMidpoint(t *testing.T) {
	builders := map[string]func() orderedMap[int]{
		"rbtree":   func() orderedMap[int] { return NewRBTree[int]() },
		"skiplist": func() orderedMap[int] { return NewSkipList[int](1) },
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			m := build()
			for i := 0; i < 100; i++ {
				m.Put(fmt.Sprintf("%03d", i), i)
			}
			var got []string
			m.Ascend("050", func(k string, _ int) bool {
				got = append(got, k)
				return len(got) < 10
			})
			if len(got) != 10 || got[0] != "050" || got[9] != "059" {
				t.Fatalf("scan from 050: %v", got)
			}
		})
	}
}

func TestQuickOrderedEquivalence(t *testing.T) {
	// Property: the two ordered maps agree with each other on any input.
	f := func(keys []string) bool {
		tree := NewRBTree[int]()
		list := NewSkipList[int](42)
		for i, k := range keys {
			tree.Put(k, i)
			list.Put(k, i)
		}
		if tree.Len() != list.Len() {
			return false
		}
		agree := true
		tree.Ascend("", func(k string, v int) bool {
			lv, ok := list.Get(k)
			if !ok || lv != v {
				agree = false
				return false
			}
			return true
		})
		return agree
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	var evicted []string
	l := NewLRU[int](3, func(k string, _ int) { evicted = append(evicted, k) })
	l.Put("a", 1)
	l.Put("b", 2)
	l.Put("c", 3)
	l.Get("a")    // refresh a
	l.Put("d", 4) // evicts b
	l.Put("e", 5) // evicts c
	if len(evicted) != 2 || evicted[0] != "b" || evicted[1] != "c" {
		t.Fatalf("evicted %v", evicted)
	}
	if _, ok := l.Get("a"); !ok {
		t.Fatal("refreshed entry evicted")
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestLRUUpdateAndRemove(t *testing.T) {
	l := NewLRU[int](2, nil)
	l.Put("x", 1)
	l.Put("x", 2)
	if v, _ := l.Get("x"); v != 2 {
		t.Fatal("update lost")
	}
	if !l.Remove("x") || l.Remove("x") {
		t.Fatal("remove semantics")
	}
	l.Put("y", 1)
	l.Clear()
	if l.Len() != 0 {
		t.Fatal("clear failed")
	}
}

func TestLRUZeroCapacity(t *testing.T) {
	l := NewLRU[int](0, nil)
	l.Put("a", 1)
	if l.Len() != 0 {
		t.Fatal("zero-capacity cache stored an entry")
	}
}

func TestLRUStress(t *testing.T) {
	l := NewLRU[int](64, nil)
	oracle := map[string]int{}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("k%d", rng.Intn(200))
		if rng.Intn(2) == 0 {
			l.Put(k, i)
			oracle[k] = i
		} else if v, ok := l.Get(k); ok {
			if oracle[k] != v {
				t.Fatalf("stale value for %s: %d vs %d", k, v, oracle[k])
			}
		}
		if l.Len() > 64 {
			t.Fatal("capacity exceeded")
		}
	}
}
