// Package results is the shared schema for every benchmark and scenario
// result file the repository emits into results/. Each file embeds one
// Header so downstream tooling (the check_*.sh gates, the scenario
// runner, ad-hoc jq) can rely on a schema version and enough host
// context — CPU count above all — to decide which columns are
// comparable across runs. Throughput is only gated between hosts of the
// same width; the header is where that width is recorded.
package results

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"time"
)

// SchemaVersion is the current results-file schema generation. Version 1
// is the implicit pre-header era (BENCH_baseline.json at the repository
// root, ad-hoc generated_at/num_cpu fields per tool); version 2 moved
// every file under results/ behind this shared header.
const SchemaVersion = 2

// Header is embedded at the top of every emitted results file.
type Header struct {
	SchemaVersion int    `json:"schema_version"`
	GeneratedAt   string `json:"generated_at"`
	GoVersion     string `json:"go_version"`
	Host          string `json:"host"`
	NumCPU        int    `json:"num_cpu"`
	GOMAXPROCS    int    `json:"gomaxprocs"`
}

// NewHeader captures the current host context.
func NewHeader() Header {
	host, _ := os.Hostname()
	return Header{
		SchemaVersion: SchemaVersion,
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		Host:          host,
		NumCPU:        runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
	}
}

// WriteJSON marshals v (indented, trailing newline) and writes it to
// path, creating parent directories as needed.
func WriteJSON(path string, v any) error {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, buf, 0o644)
}
