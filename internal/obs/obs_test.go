package obs

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestBucketRoundTrip(t *testing.T) {
	// bucketLow(bucketIdx(v)) must be <= v with bounded relative error,
	// and bucket indexes must be monotone in v.
	prev := -1
	for _, v := range []uint64{0, 1, 2, 15, 16, 17, 31, 32, 100, 1000, 4095, 4096,
		1 << 20, 1<<20 + 12345, 1 << 40, math.MaxUint64} {
		i := bucketIdx(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketIdx(%d) = %d out of range", v, i)
		}
		if i < prev {
			t.Fatalf("bucketIdx not monotone at %d", v)
		}
		prev = i
		low := bucketLow(i)
		if low > v {
			t.Fatalf("bucketLow(%d) = %d > %d", i, low, v)
		}
		if v >= 16 && float64(v-low)/float64(v) > 1.0/16 {
			t.Fatalf("bucket error too large: v=%d low=%d", v, low)
		}
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.ObserveNs(uint64(i) * 1000) // 1us..1ms uniform
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Min != 1000 || s.Max != 1000000 {
		t.Fatalf("min/max = %d/%d", s.Min, s.Max)
	}
	p50 := float64(s.Percentile(0.50))
	if p50 < 400e3 || p50 > 600e3 {
		t.Fatalf("p50 = %v out of tolerance", p50)
	}
	p99 := float64(s.Percentile(0.99))
	if p99 < 900e3 || p99 > 1000e3 {
		t.Fatalf("p99 = %v out of tolerance", p99)
	}
	if m := s.Mean(); m < 480e3 || m > 520e3 {
		t.Fatalf("mean = %d", m)
	}
}

func TestHistogramDelta(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.ObserveNs(100)
	}
	before := h.Snapshot()
	for i := 0; i < 50; i++ {
		h.ObserveNs(1 << 20)
	}
	d := h.Snapshot().Sub(before)
	if d.Count != 50 {
		t.Fatalf("delta count = %d", d.Count)
	}
	// All 50 interval samples are ~1ms, so the delta p50 must ignore the
	// 100ns samples from before the interval.
	if p := d.Percentile(0.50); p < 1<<19 {
		t.Fatalf("delta p50 = %d, want ~1<<20", p)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				h.ObserveNs(uint64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != 80000 {
		t.Fatalf("count = %d", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Load() != 80000 {
		t.Fatalf("count = %d", c.Load())
	}
}

func TestStackSnapshotDerived(t *testing.T) {
	var nvm NVMStats
	nvm.PWBs.Add(300)
	nvm.PFences.Add(80)
	nvm.PSyncs.Add(20)
	var grid GridStats
	for i := 0; i < 100; i++ {
		grid.Read.Observe(time.Microsecond)
	}
	n := nvm.Snapshot()
	g := grid.Snapshot()
	s := StackSnapshot{NVM: &n, Grid: &g}
	s.Finalize()
	if s.Ops != 100 {
		t.Fatalf("ops = %d", s.Ops)
	}
	if s.PWBPerOp != 3.0 {
		t.Fatalf("pwb/op = %v", s.PWBPerOp)
	}
	if s.PFencePerOp != 1.0 { // pfence + psync combined
		t.Fatalf("pfence/op = %v", s.PFencePerOp)
	}
}

func TestStackSnapshotSub(t *testing.T) {
	var nvm NVMStats
	var grid GridStats
	nvm.PWBs.Add(10)
	grid.Insert.Observe(time.Microsecond)
	n0 := nvm.Snapshot()
	g0 := grid.Snapshot()
	before := StackSnapshot{NVM: &n0, Grid: &g0}

	nvm.PWBs.Add(40)
	for i := 0; i < 20; i++ {
		grid.Read.Observe(time.Microsecond)
	}
	n1 := nvm.Snapshot()
	g1 := grid.Snapshot()
	after := StackSnapshot{NVM: &n1, Grid: &g1}

	d := after.Sub(before)
	if d.NVM.PWBs != 40 {
		t.Fatalf("delta pwbs = %d", d.NVM.PWBs)
	}
	if d.Ops != 20 { // the insert predates the interval
		t.Fatalf("delta ops = %d", d.Ops)
	}
	if d.PWBPerOp != 2.0 {
		t.Fatalf("delta pwb/op = %v", d.PWBPerOp)
	}
}

func TestSnapshotJSON(t *testing.T) {
	var grid GridStats
	grid.Read.Observe(time.Millisecond)
	g := grid.Snapshot()
	s := StackSnapshot{Grid: &g}
	s.Finalize()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	gridJSON := m["grid"].(map[string]any)
	perOp := gridJSON["per_op"].(map[string]any)
	read := perOp["read"].(map[string]any)
	if read["count"].(float64) != 1 {
		t.Fatalf("json round-trip lost count: %s", b)
	}
	if _, ok := read["p99_ns"]; !ok {
		t.Fatalf("json missing p99_ns: %s", b)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Publish("a", func() any { return 1 })
	r.Publish("a", func() any { return 2 }) // replace
	r.Publish("b", func() any { return map[string]int{"x": 3} })
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	var m map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m["a"].(float64) != 2 {
		t.Fatalf("publish did not replace: %v", m)
	}
	r.Unpublish("b")
	if _, ok := r.Snapshot()["b"]; ok {
		t.Fatal("unpublish failed")
	}
}
