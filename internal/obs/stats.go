package obs

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Per-layer stat holders. Each layer of the stack embeds one of these and
// bumps its counters on the hot path; snapshots assemble into a
// StackSnapshot for reporting.

// ---- NVMM primitives (internal/nvm) ----

// NVMStats counts the hardware-level persistence primitives of §3.2.2 —
// the currency in which the paper prices everything (Table 3).
type NVMStats struct {
	Stores  Counter // individual store calls (any width)
	PWBs    Counter // cache-line write-backs (clwb)
	PFences Counter // ordering fences
	PSyncs  Counter // durability fences (sfence on the paper's hardware)
}

// NVMSnapshot is an immutable copy of NVMStats.
type NVMSnapshot struct {
	Stores  uint64 `json:"stores"`
	PWBs    uint64 `json:"pwbs"`
	PFences uint64 `json:"pfences"`
	PSyncs  uint64 `json:"psyncs"`
}

// Snapshot captures the current counter values.
func (s *NVMStats) Snapshot() NVMSnapshot {
	return NVMSnapshot{
		Stores:  s.Stores.Load(),
		PWBs:    s.PWBs.Load(),
		PFences: s.PFences.Load(),
		PSyncs:  s.PSyncs.Load(),
	}
}

// Sub returns the delta since prev.
func (s NVMSnapshot) Sub(prev NVMSnapshot) NVMSnapshot {
	return NVMSnapshot{
		Stores:  s.Stores - prev.Stores,
		PWBs:    s.PWBs - prev.PWBs,
		PFences: s.PFences - prev.PFences,
		PSyncs:  s.PSyncs - prev.PSyncs,
	}
}

// Fences returns ordering plus durability fences — the paper's combined
// "pfence" column (both map to sfence on x86).
func (s NVMSnapshot) Fences() uint64 { return s.PFences + s.PSyncs }

// Add returns the element-wise sum — used to aggregate per-pool snapshots
// into the global view of a sharded stack.
func (s NVMSnapshot) Add(o NVMSnapshot) NVMSnapshot {
	return NVMSnapshot{
		Stores:  s.Stores + o.Stores,
		PWBs:    s.PWBs + o.PWBs,
		PFences: s.PFences + o.PFences,
		PSyncs:  s.PSyncs + o.PSyncs,
	}
}

// ---- Block heap (internal/heap) ----

// HeapStats counts allocator activity: object allocations and frees,
// pool-allocator (small-object) traffic of §4.4, and where blocks come
// from (bump pointer vs recycled free queue).
type HeapStats struct {
	ObjAllocs   Counter // block-chain objects allocated
	ObjFrees    Counter // block-chain objects freed
	SmallAllocs Counter // pooled small-object slots allocated (§4.4 hits)
	SmallFrees  Counter // pooled slots freed
	Carves      Counter // pool chunks carved from fresh blocks
	BumpAllocs  Counter // blocks taken from the bump pointer
	ReuseAllocs Counter // blocks recycled from the volatile free queue

	TransientReuse Counter // raw blocks recycled via per-worker transient pools
}

// HeapSnapshot combines the counters with point-in-time gauges supplied by
// the heap (free-list depth, bump high-water, arena capacity).
type HeapSnapshot struct {
	ObjAllocs   uint64 `json:"obj_allocs"`
	ObjFrees    uint64 `json:"obj_frees"`
	SmallAllocs uint64 `json:"small_allocs"`
	SmallFrees  uint64 `json:"small_frees"`
	Carves      uint64 `json:"pool_chunk_carves"`
	BumpAllocs  uint64 `json:"bump_allocs"`
	ReuseAllocs uint64 `json:"reuse_allocs"`

	TransientReuse uint64 `json:"transient_reuse"`

	// Gauges (not deltaed by Sub).
	Bump        uint64 `json:"bump_high_water"`
	FreeBlocks  uint64 `json:"free_list_depth"`
	TotalBlocks uint64 `json:"total_blocks"`
}

// Snapshot captures the counters plus the supplied allocator gauges.
func (s *HeapStats) Snapshot(bump, freeBlocks, totalBlocks uint64) HeapSnapshot {
	return HeapSnapshot{
		ObjAllocs:   s.ObjAllocs.Load(),
		ObjFrees:    s.ObjFrees.Load(),
		SmallAllocs: s.SmallAllocs.Load(),
		SmallFrees:  s.SmallFrees.Load(),
		Carves:      s.Carves.Load(),
		BumpAllocs:  s.BumpAllocs.Load(),
		ReuseAllocs: s.ReuseAllocs.Load(),

		TransientReuse: s.TransientReuse.Load(),

		Bump:        bump,
		FreeBlocks:  freeBlocks,
		TotalBlocks: totalBlocks,
	}
}

// Sub returns the delta since prev; gauges keep their current values.
func (s HeapSnapshot) Sub(prev HeapSnapshot) HeapSnapshot {
	out := s
	out.ObjAllocs -= prev.ObjAllocs
	out.ObjFrees -= prev.ObjFrees
	out.SmallAllocs -= prev.SmallAllocs
	out.SmallFrees -= prev.SmallFrees
	out.Carves -= prev.Carves
	out.BumpAllocs -= prev.BumpAllocs
	out.ReuseAllocs -= prev.ReuseAllocs
	out.TransientReuse -= prev.TransientReuse
	return out
}

// Add returns the element-wise sum; gauges sum too (per-pool bump
// high-waters and free-list depths add up to set-wide capacity figures).
func (s HeapSnapshot) Add(o HeapSnapshot) HeapSnapshot {
	return HeapSnapshot{
		ObjAllocs:   s.ObjAllocs + o.ObjAllocs,
		ObjFrees:    s.ObjFrees + o.ObjFrees,
		SmallAllocs: s.SmallAllocs + o.SmallAllocs,
		SmallFrees:  s.SmallFrees + o.SmallFrees,
		Carves:      s.Carves + o.Carves,
		BumpAllocs:  s.BumpAllocs + o.BumpAllocs,
		ReuseAllocs: s.ReuseAllocs + o.ReuseAllocs,

		TransientReuse: s.TransientReuse + o.TransientReuse,

		Bump:        s.Bump + o.Bump,
		FreeBlocks:  s.FreeBlocks + o.FreeBlocks,
		TotalBlocks: s.TotalBlocks + o.TotalBlocks,
	}
}

// ---- Failure-atomic blocks (internal/fa) ----

// FAStats counts the redo-log protocol of §4.2.
type FAStats struct {
	Begun      Counter // failure-atomic blocks opened
	Committed  Counter // outermost commits completed
	Aborted    Counter // blocks abandoned
	LogEntries Counter // redo-log entries appended
	Replays    Counter // committed logs replayed at recovery

	TxReuse      Counter // Begin served by a warm cached Tx (slot affinity hit)
	FlushedLines Counter // cache lines actually written back at commit
	SavedLines   Counter // lines the flush set coalesced away (dedup hits)

	Epochs       Counter // async group-commit epochs drained
	EpochTxs     Counter // commits made durable by an epoch drain
	AsyncCommits Counter // async commits enqueued (tickets issued)

	DeltaOps     Counter // delta ops accepted by the async ledger (tickets issued)
	DeltasFolded Counter // delta ops folded into an already-pending entry
	DeltaEntries Counter // ledger entries materialized (one log write + flush each)
}

// FASnapshot combines the counters with slot-occupancy gauges.
type FASnapshot struct {
	Begun      uint64 `json:"begun"`
	Committed  uint64 `json:"committed"`
	Aborted    uint64 `json:"aborted"`
	LogEntries uint64 `json:"log_entries"`
	Replays    uint64 `json:"recovery_replays"`

	TxReuse      uint64 `json:"tx_slot_reuse"`
	FlushedLines uint64 `json:"flushed_lines"`
	SavedLines   uint64 `json:"coalesced_lines_saved"`

	Epochs       uint64 `json:"group_epochs"`
	EpochTxs     uint64 `json:"group_epoch_txs"`
	AsyncCommits uint64 `json:"async_commits"`
	// CombinedFences counts fence requests satisfied by a barrier another
	// committer issued (sync-mode combining) plus the barriers an epoch
	// drain amortized away vs the per-Tx protocol. Filled by the manager.
	CombinedFences uint64 `json:"combined_fences"`

	DeltaOps     uint64 `json:"delta_ops"`
	DeltasFolded uint64 `json:"deltas_folded"`
	DeltaEntries uint64 `json:"delta_entries"`
	// DeltaFlushesSaved is the redo-log writes (and their line flushes)
	// that folding avoided: ops minus materialized entries minus the
	// still-pending backlog. Filled by the manager.
	DeltaFlushesSaved uint64 `json:"delta_flushes_saved"`

	// Gauges.
	SlotsTotal uint64 `json:"log_slots_total"`
	SlotsInUse uint64 `json:"log_slots_in_use"`
	// WatermarkLag is async commits acknowledged but not yet durable
	// (tickets issued minus the durability watermark) at snapshot time.
	WatermarkLag uint64 `json:"watermark_lag"`
}

// Snapshot captures the counters plus the supplied occupancy gauges.
func (s *FAStats) Snapshot(slotsTotal, slotsInUse uint64) FASnapshot {
	return FASnapshot{
		Begun:      s.Begun.Load(),
		Committed:  s.Committed.Load(),
		Aborted:    s.Aborted.Load(),
		LogEntries: s.LogEntries.Load(),
		Replays:    s.Replays.Load(),

		TxReuse:      s.TxReuse.Load(),
		FlushedLines: s.FlushedLines.Load(),
		SavedLines:   s.SavedLines.Load(),

		Epochs:       s.Epochs.Load(),
		EpochTxs:     s.EpochTxs.Load(),
		AsyncCommits: s.AsyncCommits.Load(),

		DeltaOps:     s.DeltaOps.Load(),
		DeltasFolded: s.DeltasFolded.Load(),
		DeltaEntries: s.DeltaEntries.Load(),

		SlotsTotal: slotsTotal,
		SlotsInUse: slotsInUse,
	}
}

// Sub returns the delta since prev; gauges keep their current values.
func (s FASnapshot) Sub(prev FASnapshot) FASnapshot {
	out := s
	out.Begun -= prev.Begun
	out.Committed -= prev.Committed
	out.Aborted -= prev.Aborted
	out.LogEntries -= prev.LogEntries
	out.Replays -= prev.Replays
	out.TxReuse -= prev.TxReuse
	out.FlushedLines -= prev.FlushedLines
	out.SavedLines -= prev.SavedLines
	out.Epochs -= prev.Epochs
	out.EpochTxs -= prev.EpochTxs
	out.AsyncCommits -= prev.AsyncCommits
	out.CombinedFences -= prev.CombinedFences
	out.DeltaOps -= prev.DeltaOps
	out.DeltasFolded -= prev.DeltasFolded
	out.DeltaEntries -= prev.DeltaEntries
	out.DeltaFlushesSaved -= prev.DeltaFlushesSaved
	return out
}

// Add returns the element-wise sum; gauges sum too (slot capacity and
// occupancy across the per-pool redo-log managers).
func (s FASnapshot) Add(o FASnapshot) FASnapshot {
	return FASnapshot{
		Begun:      s.Begun + o.Begun,
		Committed:  s.Committed + o.Committed,
		Aborted:    s.Aborted + o.Aborted,
		LogEntries: s.LogEntries + o.LogEntries,
		Replays:    s.Replays + o.Replays,

		TxReuse:      s.TxReuse + o.TxReuse,
		FlushedLines: s.FlushedLines + o.FlushedLines,
		SavedLines:   s.SavedLines + o.SavedLines,

		Epochs:         s.Epochs + o.Epochs,
		EpochTxs:       s.EpochTxs + o.EpochTxs,
		AsyncCommits:   s.AsyncCommits + o.AsyncCommits,
		CombinedFences: s.CombinedFences + o.CombinedFences,

		DeltaOps:          s.DeltaOps + o.DeltaOps,
		DeltasFolded:      s.DeltasFolded + o.DeltasFolded,
		DeltaEntries:      s.DeltaEntries + o.DeltaEntries,
		DeltaFlushesSaved: s.DeltaFlushesSaved + o.DeltaFlushesSaved,

		SlotsTotal:   s.SlotsTotal + o.SlotsTotal,
		SlotsInUse:   s.SlotsInUse + o.SlotsInUse,
		WatermarkLag: s.WatermarkLag + o.WatermarkLag,
	}
}

// ---- Multi-pool sharding (internal/shard) ----

// ShardStats counts shard-set activity: record migration during online
// pool addition (DESIGN.md §17) and off-home routing events.
type ShardStats struct {
	MigratedRecords  Counter // records moved to their new home pool
	MigratedBytes    Counter // payload bytes carried by those moves
	FallbackInserts  Counter // inserts diverted off a full home pool
	ProbeMisses      Counter // reads that had to probe beyond the home pool
	PoolAdds         Counter // pools added online
	MigrationResumes Counter // interrupted migrations resumed at open
	PacerWaits       Counter // compactor throttle sleeps (obs-driven pacing)
}

// PoolSnapshot is one pool's slice of the stack: its NVM primitive
// counters, allocator state, redo-log manager, and derived occupancy.
type PoolSnapshot struct {
	Index int          `json:"index"`
	NVM   NVMSnapshot  `json:"nvm"`
	Heap  HeapSnapshot `json:"heap"`
	FA    FASnapshot   `json:"fa"`
	// OccupancyPct is allocated blocks (bump high-water minus free-list
	// depth) over total blocks, in percent.
	OccupancyPct float64 `json:"occupancy_pct"`
}

// ShardSnapshot combines the counters with topology gauges and the
// per-pool breakdown.
type ShardSnapshot struct {
	MigratedRecords  uint64 `json:"migrated_records"`
	MigratedBytes    uint64 `json:"migrated_bytes"`
	FallbackInserts  uint64 `json:"fallback_inserts"`
	ProbeMisses      uint64 `json:"probe_misses"`
	PoolAdds         uint64 `json:"pool_adds"`
	MigrationResumes uint64 `json:"migration_resumes"`
	PacerWaits       uint64 `json:"pacer_waits"`

	// Gauges.
	Pools     int    `json:"pools"`
	Epoch     uint64 `json:"epoch"`
	Migrating bool   `json:"migrating"`

	PerPool []PoolSnapshot `json:"per_pool,omitempty"`
}

// Snapshot captures the counters; the caller fills topology gauges and
// the per-pool breakdown.
func (s *ShardStats) Snapshot() ShardSnapshot {
	return ShardSnapshot{
		MigratedRecords:  s.MigratedRecords.Load(),
		MigratedBytes:    s.MigratedBytes.Load(),
		FallbackInserts:  s.FallbackInserts.Load(),
		ProbeMisses:      s.ProbeMisses.Load(),
		PoolAdds:         s.PoolAdds.Load(),
		MigrationResumes: s.MigrationResumes.Load(),
		PacerWaits:       s.PacerWaits.Load(),
	}
}

// Sub returns the delta since prev; topology gauges and the per-pool
// breakdown keep their current values (per-pool entries delta by index
// when both sides carry the same pool count).
func (s ShardSnapshot) Sub(prev ShardSnapshot) ShardSnapshot {
	out := s
	out.MigratedRecords -= prev.MigratedRecords
	out.MigratedBytes -= prev.MigratedBytes
	out.FallbackInserts -= prev.FallbackInserts
	out.ProbeMisses -= prev.ProbeMisses
	out.PoolAdds -= prev.PoolAdds
	out.MigrationResumes -= prev.MigrationResumes
	out.PacerWaits -= prev.PacerWaits
	if len(s.PerPool) == len(prev.PerPool) {
		out.PerPool = make([]PoolSnapshot, len(s.PerPool))
		for i := range s.PerPool {
			p := s.PerPool[i]
			p.NVM = p.NVM.Sub(prev.PerPool[i].NVM)
			p.Heap = p.Heap.Sub(prev.PerPool[i].Heap)
			p.FA = p.FA.Sub(prev.PerPool[i].FA)
			out.PerPool[i] = p
		}
	}
	return out
}

// ---- Data grid (internal/store) ----

// Grid operation names, in display order.
var GridOps = []string{"insert", "read", "update", "rmw", "delete", "scan"}

// ReadStats counts the zero-copy read path (DESIGN.md §14): how often a
// read streamed NVMM views directly, how often it fell back to the locked
// deep-copy path, how many generation races the seqlock validation caught,
// and how contended the mirror shard locks are.
type ReadStats struct {
	ZeroCopyHits   Counter // reads served as views with a clean generation check
	CopyFallbacks  Counter // zero-copy attempts diverted to the locked path
	SeqlockRetries Counter // generation races detected after the consume callback
	ShardLockWaits Counter // contended mirror-shard lock acquisitions

	// Lock-free J-PDT path (DESIGN.md §16).
	LockFreeReads  Counter // lock-free lookups (pin + chain walk, no locks)
	LockFreeWrites Counter // lock-free inserts/updates/deletes
	CASRetries     Counter // failed CAS attempts retried (contention measure)
	LFPersists     Counter // pwb/pfence primitives the lock-free ops issued
}

// GridStats holds the per-operation latency histograms of the grid front
// door plus the record-cache counters (lock-free: the hit/miss counters
// used to take a mutex on every read).
type GridStats struct {
	CacheHits   Counter
	CacheMisses Counter
	ReadPath    ReadStats

	Insert Histogram
	Read   Histogram
	Update Histogram
	RMW    Histogram
	Delete Histogram
	Scan   Histogram
}

// Op returns the histogram for the named operation (nil if unknown).
func (s *GridStats) Op(name string) *Histogram {
	switch name {
	case "insert":
		return &s.Insert
	case "read":
		return &s.Read
	case "update":
		return &s.Update
	case "rmw":
		return &s.RMW
	case "delete":
		return &s.Delete
	case "scan":
		return &s.Scan
	}
	return nil
}

// GridSnapshot is an immutable copy of GridStats.
type GridSnapshot struct {
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`

	ZeroCopyHits   uint64 `json:"zero_copy_hits"`
	CopyFallbacks  uint64 `json:"copy_fallbacks"`
	SeqlockRetries uint64 `json:"seqlock_retries"`
	ShardLockWaits uint64 `json:"mirror_shard_lock_waits"`

	LockFreeReads  uint64 `json:"lockfree_reads"`
	LockFreeWrites uint64 `json:"lockfree_writes"`
	CASRetries     uint64 `json:"cas_retries"`
	LFPersists     uint64 `json:"lf_persists"`
	// LFPersistPerOp is LFPersists over the lock-free op count — the
	// structure-level persist-at-destination cost (excludes value flushes).
	LFPersistPerOp float64 `json:"lf_persist_per_op"`

	PerOp map[string]HistogramSnapshot `json:"per_op"`
}

// Snapshot captures the counters and every per-op histogram.
func (s *GridStats) Snapshot() GridSnapshot {
	out := GridSnapshot{
		CacheHits:   s.CacheHits.Load(),
		CacheMisses: s.CacheMisses.Load(),

		ZeroCopyHits:   s.ReadPath.ZeroCopyHits.Load(),
		CopyFallbacks:  s.ReadPath.CopyFallbacks.Load(),
		SeqlockRetries: s.ReadPath.SeqlockRetries.Load(),
		ShardLockWaits: s.ReadPath.ShardLockWaits.Load(),

		LockFreeReads:  s.ReadPath.LockFreeReads.Load(),
		LockFreeWrites: s.ReadPath.LockFreeWrites.Load(),
		CASRetries:     s.ReadPath.CASRetries.Load(),
		LFPersists:     s.ReadPath.LFPersists.Load(),

		PerOp: make(map[string]HistogramSnapshot, len(GridOps)),
	}
	out.finalizeLF()
	for _, op := range GridOps {
		if h := s.Op(op); h.Count() > 0 {
			out.PerOp[op] = h.Snapshot()
		}
	}
	return out
}

// finalizeLF recomputes the derived lock-free persist rate.
func (s *GridSnapshot) finalizeLF() {
	s.LFPersistPerOp = 0
	if ops := s.LockFreeReads + s.LockFreeWrites; ops > 0 {
		s.LFPersistPerOp = float64(s.LFPersists) / float64(ops)
	}
}

// Ops returns the total operations across all histograms.
func (s GridSnapshot) Ops() uint64 {
	var n uint64
	for _, h := range s.PerOp {
		n += h.Count
	}
	return n
}

// Sub returns the delta since prev; gauge-less, so everything subtracts.
func (s GridSnapshot) Sub(prev GridSnapshot) GridSnapshot {
	out := GridSnapshot{
		CacheHits:   s.CacheHits - prev.CacheHits,
		CacheMisses: s.CacheMisses - prev.CacheMisses,

		ZeroCopyHits:   s.ZeroCopyHits - prev.ZeroCopyHits,
		CopyFallbacks:  s.CopyFallbacks - prev.CopyFallbacks,
		SeqlockRetries: s.SeqlockRetries - prev.SeqlockRetries,
		ShardLockWaits: s.ShardLockWaits - prev.ShardLockWaits,

		LockFreeReads:  s.LockFreeReads - prev.LockFreeReads,
		LockFreeWrites: s.LockFreeWrites - prev.LockFreeWrites,
		CASRetries:     s.CASRetries - prev.CASRetries,
		LFPersists:     s.LFPersists - prev.LFPersists,

		PerOp: make(map[string]HistogramSnapshot, len(s.PerOp)),
	}
	out.finalizeLF()
	for op, h := range s.PerOp {
		d := h.Sub(prev.PerOp[op])
		if d.Count == 0 {
			// Min/max are not interval-subtractable; a zero-count delta
			// would leak the cumulative extremes, so drop the op entirely.
			continue
		}
		out.PerOp[op] = d
	}
	return out
}

// ---- Recovery pipeline (restart path: §4.2 replay, §4.1.3 GC, §4.3.2
// mirror rebuild) ----

// RecoveryStats times and counts the phases of the recovery pipeline.
// Counters are cumulative over the process lifetime (an in-process reopen
// adds on top); Workers is a gauge recording the worker count of the most
// recent recovery.
type RecoveryStats struct {
	ReplayNs  Counter // redo-log replay wall time (§4.2)
	MarkNs    Counter // graph traversal or header scan wall time
	SweepNs   Counter // allocator-state rebuild wall time
	RebuildNs Counter // J-PDT mirror rebuild wall time (OnResurrect)

	ReplayedTx      Counter // committed log slots replayed
	MarkedBlocks    Counter // arena blocks found live
	SweptBlocks     Counter // dead blocks returned to the free queue
	ScrubbedHeaders Counter // stale headers cleared above the new bump
	LiveObjects     Counter // objects visited by the traversal/scan
	NullifiedRefs   Counter // dangling references cleared (§2.4)
	RebuildEntries  Counter // map bindings re-indexed into volatile mirrors

	Workers Gauge
}

// RecoverySnapshot is an immutable copy of RecoveryStats.
type RecoverySnapshot struct {
	ReplayNs  uint64 `json:"replay_ns"`
	MarkNs    uint64 `json:"mark_ns"`
	SweepNs   uint64 `json:"sweep_ns"`
	RebuildNs uint64 `json:"rebuild_ns"`

	ReplayedTx      uint64 `json:"replayed_tx"`
	MarkedBlocks    uint64 `json:"marked_blocks"`
	SweptBlocks     uint64 `json:"swept_blocks"`
	ScrubbedHeaders uint64 `json:"scrubbed_headers"`
	LiveObjects     uint64 `json:"live_objects"`
	NullifiedRefs   uint64 `json:"nullified_refs"`
	RebuildEntries  uint64 `json:"rebuild_entries"`

	// Gauge (not deltaed by Sub).
	Workers uint64 `json:"workers"`
}

// Snapshot captures the current counter values.
func (s *RecoveryStats) Snapshot() RecoverySnapshot {
	return RecoverySnapshot{
		ReplayNs:  s.ReplayNs.Load(),
		MarkNs:    s.MarkNs.Load(),
		SweepNs:   s.SweepNs.Load(),
		RebuildNs: s.RebuildNs.Load(),

		ReplayedTx:      s.ReplayedTx.Load(),
		MarkedBlocks:    s.MarkedBlocks.Load(),
		SweptBlocks:     s.SweptBlocks.Load(),
		ScrubbedHeaders: s.ScrubbedHeaders.Load(),
		LiveObjects:     s.LiveObjects.Load(),
		NullifiedRefs:   s.NullifiedRefs.Load(),
		RebuildEntries:  s.RebuildEntries.Load(),

		Workers: s.Workers.Load(),
	}
}

// TotalNs returns the summed wall time of all recovery phases.
func (s RecoverySnapshot) TotalNs() uint64 {
	return s.ReplayNs + s.MarkNs + s.SweepNs + s.RebuildNs
}

// Sub returns the delta since prev; the Workers gauge keeps its current
// value.
func (s RecoverySnapshot) Sub(prev RecoverySnapshot) RecoverySnapshot {
	out := s
	out.ReplayNs -= prev.ReplayNs
	out.MarkNs -= prev.MarkNs
	out.SweepNs -= prev.SweepNs
	out.RebuildNs -= prev.RebuildNs
	out.ReplayedTx -= prev.ReplayedTx
	out.MarkedBlocks -= prev.MarkedBlocks
	out.SweptBlocks -= prev.SweptBlocks
	out.ScrubbedHeaders -= prev.ScrubbedHeaders
	out.LiveObjects -= prev.LiveObjects
	out.NullifiedRefs -= prev.NullifiedRefs
	out.RebuildEntries -= prev.RebuildEntries
	return out
}

// Add returns the element-wise sum — aggregation across the pools of a
// sharded heap, which recover concurrently. The Workers gauge takes the
// maximum (it is a per-pool budget, not additive work).
func (s RecoverySnapshot) Add(o RecoverySnapshot) RecoverySnapshot {
	out := s
	out.ReplayNs += o.ReplayNs
	out.MarkNs += o.MarkNs
	out.SweepNs += o.SweepNs
	out.RebuildNs += o.RebuildNs
	out.ReplayedTx += o.ReplayedTx
	out.MarkedBlocks += o.MarkedBlocks
	out.SweptBlocks += o.SweptBlocks
	out.ScrubbedHeaders += o.ScrubbedHeaders
	out.LiveObjects += o.LiveObjects
	out.NullifiedRefs += o.NullifiedRefs
	out.RebuildEntries += o.RebuildEntries
	if o.Workers > out.Workers {
		out.Workers = o.Workers
	}
	return out
}

// ---- The whole stack ----

// StackSnapshot assembles one coherent view across every layer, plus the
// derived Table-3-style per-operation primitive rates.
type StackSnapshot struct {
	NVM      *NVMSnapshot      `json:"nvm,omitempty"`
	Heap     *HeapSnapshot     `json:"heap,omitempty"`
	FA       *FASnapshot       `json:"fa,omitempty"`
	Grid     *GridSnapshot     `json:"grid,omitempty"`
	Recovery *RecoverySnapshot `json:"recovery,omitempty"`
	Shard    *ShardSnapshot    `json:"shard,omitempty"`

	// Derived: persistence primitives per grid operation — the columns
	// the paper's Table 3 reports per data-structure operation.
	Ops         uint64  `json:"ops"`
	PWBPerOp    float64 `json:"pwb_per_op"`
	PFencePerOp float64 `json:"pfence_per_op"`
	StoresPerOp float64 `json:"stores_per_op"`
}

// Finalize recomputes the derived per-op columns from the layer
// snapshots. Call it after assembling or deltaing a StackSnapshot.
func (s *StackSnapshot) Finalize() {
	s.Ops = 0
	s.PWBPerOp, s.PFencePerOp, s.StoresPerOp = 0, 0, 0
	if s.Grid != nil {
		s.Ops = s.Grid.Ops()
	}
	if s.NVM != nil && s.Ops > 0 {
		s.PWBPerOp = float64(s.NVM.PWBs) / float64(s.Ops)
		s.PFencePerOp = float64(s.NVM.Fences()) / float64(s.Ops)
		s.StoresPerOp = float64(s.NVM.Stores) / float64(s.Ops)
	}
}

// Sub returns the interval delta since prev, with derived columns
// recomputed over the interval.
func (s StackSnapshot) Sub(prev StackSnapshot) StackSnapshot {
	var out StackSnapshot
	if s.NVM != nil {
		d := *s.NVM
		if prev.NVM != nil {
			d = d.Sub(*prev.NVM)
		}
		out.NVM = &d
	}
	if s.Heap != nil {
		d := *s.Heap
		if prev.Heap != nil {
			d = d.Sub(*prev.Heap)
		}
		out.Heap = &d
	}
	if s.FA != nil {
		d := *s.FA
		if prev.FA != nil {
			d = d.Sub(*prev.FA)
		}
		out.FA = &d
	}
	if s.Grid != nil {
		d := s.Grid.Sub(GridSnapshot{})
		if prev.Grid != nil {
			d = s.Grid.Sub(*prev.Grid)
		}
		out.Grid = &d
	}
	if s.Recovery != nil {
		d := *s.Recovery
		if prev.Recovery != nil {
			d = d.Sub(*prev.Recovery)
		}
		out.Recovery = &d
	}
	if s.Shard != nil {
		d := *s.Shard
		if prev.Shard != nil {
			d = d.Sub(*prev.Shard)
		}
		out.Shard = &d
	}
	out.Finalize()
	return out
}

// Report pretty-prints the snapshot: per-op latency distribution first
// (the figures), then the per-op primitive rates (Table 3), then raw
// layer counters.
func (s StackSnapshot) Report(w io.Writer) {
	if s.Grid != nil && len(s.Grid.PerOp) > 0 {
		fmt.Fprintf(w, "%-10s%12s%12s%12s%12s%12s%12s\n",
			"op", "count", "mean", "p50", "p95", "p99", "max")
		ops := make([]string, 0, len(s.Grid.PerOp))
		for op := range s.Grid.PerOp {
			ops = append(ops, op)
		}
		sort.Strings(ops)
		for _, op := range ops {
			h := s.Grid.PerOp[op]
			fmt.Fprintf(w, "%-10s%12d%12s%12s%12s%12s%12s\n", op, h.Count,
				ns(h.Mean()), ns(h.Percentile(0.50)), ns(h.Percentile(0.95)),
				ns(h.Percentile(0.99)), ns(h.Max))
		}
		fmt.Fprintf(w, "cache: %d hits, %d misses\n", s.Grid.CacheHits, s.Grid.CacheMisses)
		if g := s.Grid; g.ZeroCopyHits+g.CopyFallbacks+g.SeqlockRetries+g.ShardLockWaits > 0 {
			fmt.Fprintf(w, "read path: %d zero-copy, %d copy fallbacks, %d seqlock retries, %d shard-lock waits\n",
				g.ZeroCopyHits, g.CopyFallbacks, g.SeqlockRetries, g.ShardLockWaits)
		}
		if g := s.Grid; g.LockFreeReads+g.LockFreeWrites > 0 {
			fmt.Fprintf(w, "lockfree: %d reads, %d writes, %d cas retries, %d persists (%.2f/op)\n",
				g.LockFreeReads, g.LockFreeWrites, g.CASRetries, g.LFPersists, g.LFPersistPerOp)
		}
	}
	if s.NVM != nil {
		if s.Ops > 0 {
			fmt.Fprintf(w, "persistence per op: %.2f pwb, %.2f pfence, %.1f stores (%d ops)\n",
				s.PWBPerOp, s.PFencePerOp, s.StoresPerOp, s.Ops)
		}
		fmt.Fprintf(w, "nvm: %d stores, %d pwb, %d pfence, %d psync\n",
			s.NVM.Stores, s.NVM.PWBs, s.NVM.PFences, s.NVM.PSyncs)
	}
	if s.Heap != nil {
		fmt.Fprintf(w, "heap: %d/%d obj alloc/free, %d/%d small alloc/free, %d carves, %d transient reuse; bump %d, free %d of %d blocks\n",
			s.Heap.ObjAllocs, s.Heap.ObjFrees, s.Heap.SmallAllocs, s.Heap.SmallFrees,
			s.Heap.Carves, s.Heap.TransientReuse, s.Heap.Bump, s.Heap.FreeBlocks, s.Heap.TotalBlocks)
	}
	if s.FA != nil {
		fmt.Fprintf(w, "fa: %d begun, %d committed, %d aborted, %d log entries, %d replays; %d/%d slots in use\n",
			s.FA.Begun, s.FA.Committed, s.FA.Aborted, s.FA.LogEntries, s.FA.Replays,
			s.FA.SlotsInUse, s.FA.SlotsTotal)
		if s.FA.FlushedLines+s.FA.SavedLines > 0 {
			fmt.Fprintf(w, "fa commit pipeline: %d warm-tx reuse, %d lines flushed, %d coalesced away (%.0f%% saved)\n",
				s.FA.TxReuse, s.FA.FlushedLines, s.FA.SavedLines,
				100*float64(s.FA.SavedLines)/float64(s.FA.FlushedLines+s.FA.SavedLines))
		}
		if s.FA.EpochTxs+s.FA.AsyncCommits+s.FA.CombinedFences > 0 {
			avg := float64(0)
			if s.FA.Epochs > 0 {
				avg = float64(s.FA.EpochTxs) / float64(s.FA.Epochs)
			}
			fmt.Fprintf(w, "fa group commit: %d epochs (avg %.1f tx), %d async commits, %d combined fences, watermark lag %d\n",
				s.FA.Epochs, avg, s.FA.AsyncCommits, s.FA.CombinedFences, s.FA.WatermarkLag)
		}
		if s.FA.DeltaOps > 0 {
			ratio := float64(s.FA.DeltaOps)
			if s.FA.DeltaEntries > 0 {
				ratio = float64(s.FA.DeltaOps) / float64(s.FA.DeltaEntries)
			}
			fmt.Fprintf(w, "fa delta ledger: %d ops, %d folded, %d entries materialized (%.1fx fold), %d flushes saved\n",
				s.FA.DeltaOps, s.FA.DeltasFolded, s.FA.DeltaEntries, ratio, s.FA.DeltaFlushesSaved)
		}
	}
	if sh := s.Shard; sh != nil {
		fmt.Fprintf(w, "shard: %d pools (epoch %d", sh.Pools, sh.Epoch)
		if sh.Migrating {
			fmt.Fprint(w, ", migrating")
		}
		fmt.Fprintf(w, "); %d records / %d bytes migrated, %d fallback inserts, %d probe misses, %d pool adds, %d resumes, %d pacer waits\n",
			sh.MigratedRecords, sh.MigratedBytes, sh.FallbackInserts,
			sh.ProbeMisses, sh.PoolAdds, sh.MigrationResumes, sh.PacerWaits)
		for _, p := range sh.PerPool {
			fmt.Fprintf(w, "  pool %d: %5.1f%% full; bump %d, free %d of %d blocks; %d/%d obj alloc/free, %d transient reuse; %d pwb, %d fence\n",
				p.Index, p.OccupancyPct, p.Heap.Bump, p.Heap.FreeBlocks, p.Heap.TotalBlocks,
				p.Heap.ObjAllocs, p.Heap.ObjFrees, p.Heap.TransientReuse,
				p.NVM.PWBs, p.NVM.Fences())
		}
	}
	if r := s.Recovery; r != nil && r.TotalNs() > 0 {
		fmt.Fprintf(w, "recovery (%d workers): %s replay, %s mark, %s sweep, %s rebuild; %d tx, %d live obj, %d marked, %d swept, %d nullified, %d rebuilt\n",
			r.Workers, ns(r.ReplayNs), ns(r.MarkNs), ns(r.SweepNs), ns(r.RebuildNs),
			r.ReplayedTx, r.LiveObjects, r.MarkedBlocks, r.SweptBlocks, r.NullifiedRefs, r.RebuildEntries)
	}
}

func ns(v uint64) string { return time.Duration(v).Round(10 * time.Nanosecond).String() }
