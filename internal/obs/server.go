package obs

// ---- Wire server (internal/wire) ----

// ServerStats counts the network front door: connection lifecycle,
// pipeline-window batching, and byte traffic. BatchSize feeds the
// batching→epoch story of DESIGN.md §18 — its mean is the number of
// requests each durability fence amortizes over.
type ServerStats struct {
	ConnsAccepted Counter // connections accepted
	ConnsClosed   Counter // connections closed (any reason)
	ConnErrors    Counter // connections dropped on protocol or I/O error

	Requests    Counter   // requests decoded
	Batches     Counter   // pipeline windows executed
	BatchSize   Histogram // requests per window
	WriteFences Counter   // per-window durability waits (async commit mode)
	Drains      Counter   // graceful-drain conn teardowns

	BytesIn  Counter
	BytesOut Counter
}

// ServerSnapshot is an immutable copy of ServerStats.
type ServerSnapshot struct {
	ConnsAccepted uint64 `json:"conns_accepted"`
	ConnsClosed   uint64 `json:"conns_closed"`
	ConnErrors    uint64 `json:"conn_errors"`

	Requests    uint64            `json:"requests"`
	Batches     uint64            `json:"batches"`
	BatchSize   HistogramSnapshot `json:"batch_size"`
	WriteFences uint64            `json:"write_fences"`
	Drains      uint64            `json:"drains"`

	BytesIn  uint64 `json:"bytes_in"`
	BytesOut uint64 `json:"bytes_out"`
}

// Snapshot captures the current values.
func (s *ServerStats) Snapshot() ServerSnapshot {
	return ServerSnapshot{
		ConnsAccepted: s.ConnsAccepted.Load(),
		ConnsClosed:   s.ConnsClosed.Load(),
		ConnErrors:    s.ConnErrors.Load(),

		Requests:    s.Requests.Load(),
		Batches:     s.Batches.Load(),
		BatchSize:   s.BatchSize.Snapshot(),
		WriteFences: s.WriteFences.Load(),
		Drains:      s.Drains.Load(),

		BytesIn:  s.BytesIn.Load(),
		BytesOut: s.BytesOut.Load(),
	}
}

// Sub returns the delta since prev.
func (s ServerSnapshot) Sub(prev ServerSnapshot) ServerSnapshot {
	out := s
	out.ConnsAccepted -= prev.ConnsAccepted
	out.ConnsClosed -= prev.ConnsClosed
	out.ConnErrors -= prev.ConnErrors
	out.Requests -= prev.Requests
	out.Batches -= prev.Batches
	out.BatchSize = s.BatchSize.Sub(prev.BatchSize)
	out.WriteFences -= prev.WriteFences
	out.Drains -= prev.Drains
	out.BytesIn -= prev.BytesIn
	out.BytesOut -= prev.BytesOut
	return out
}
