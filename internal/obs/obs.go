// Package obs is the stack-wide observability layer: low-overhead atomic
// counters and fixed-bucket log-scale latency histograms, shared by every
// layer of the reproduction (nvm, heap, fa, store, bench).
//
// The paper's evaluation is, at its core, an exercise in counting: Table 3
// reports pwb/pfence rates, Figures 7-9 report per-operation latency
// distributions, and §5.3 attributes every slowdown to a hardware-level
// cost. This package makes those costs first-class so that any experiment
// (and any future optimization PR) can read them from one place instead of
// keeping bespoke counters.
//
// Design constraints, in order:
//
//  1. Zero allocation on the hot path. Counter.Add and Histogram.Observe
//     are a handful of atomic instructions; no locks, no maps, no
//     interface boxing.
//  2. Snapshot/delta semantics. Readers take immutable Snapshots; two
//     snapshots subtract to the interval in between, which is how the
//     bench layer derives per-operation pwb/pfence columns.
//  3. No dependencies. obs imports only the standard library, so every
//     internal package can depend on it without cycles.
package obs

import (
	"encoding/json"
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a last-value-wins atomic, for point-in-time values (worker
// counts, configured limits) that Sub must not delta away.
type Gauge struct{ v atomic.Uint64 }

// Store replaces the value.
func (g *Gauge) Store(v uint64) { g.v.Store(v) }

// Load returns the current value.
func (g *Gauge) Load() uint64 { return g.v.Load() }

// Histogram bucket geometry: values 0..15 get exact buckets; above that,
// each power of two splits into 16 linear sub-buckets (HDR-style, ~6%
// relative error), so bucketing is two shifts and a mask — no math.Log on
// the hot path.
const (
	histSubBits = 4
	histSub     = 1 << histSubBits // 16 sub-buckets per octave
	// 0..15 identity region + one 16-slot band per remaining exponent.
	histBuckets = histSub + (64-histSubBits)*histSub
)

func bucketIdx(v uint64) int {
	if v < histSub {
		return int(v)
	}
	e := bits.Len64(v) - 1 // MSB position, >= histSubBits
	sub := (v >> uint(e-histSubBits)) & (histSub - 1)
	return (e-histSubBits+1)*histSub + int(sub)
}

// bucketLow returns the smallest value mapping to bucket i (the value
// reported for percentiles, matching the convention of ycsb.Histogram).
func bucketLow(i int) uint64 {
	if i < histSub {
		return uint64(i)
	}
	e := i/histSub - 1 + histSubBits
	sub := uint64(i % histSub)
	return 1<<uint(e) | sub<<uint(e-histSubBits)
}

// Histogram is a concurrency-safe log-scale latency histogram. The zero
// value is ready to use. Observe is wait-free (atomic adds plus two CAS
// loops for the extrema) and allocation-free.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	min     atomic.Uint64 // stored as value+1 so zero means "unset"
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	ns := uint64(d.Nanoseconds())
	h.ObserveNs(ns)
}

// ObserveNs records one sample expressed in nanoseconds.
func (h *Histogram) ObserveNs(ns uint64) {
	h.buckets[bucketIdx(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := h.min.Load()
		if (cur != 0 && ns+1 >= cur) || h.min.CompareAndSwap(cur, ns+1) {
			break
		}
	}
}

// Count returns the number of samples observed so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot captures a consistent-enough view of the histogram (individual
// bucket loads race with writers, which for monotonic counters only skews
// a snapshot by in-flight samples).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	if m := h.min.Load(); m != 0 {
		s.Min = m - 1
	}
	s.buckets = make([]uint64, histBuckets)
	for i := range h.buckets {
		s.buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is an immutable copy of a Histogram. It serializes to
// a compact JSON summary (count, mean, percentiles) rather than raw
// buckets.
type HistogramSnapshot struct {
	Count uint64
	Sum   uint64 // ns
	Min   uint64 // ns
	Max   uint64 // ns

	buckets []uint64
}

// Sub returns the delta histogram for the interval between prev and h.
// Count, Sum and buckets subtract; Min and Max cannot be deltaed and keep
// h's lifetime values.
func (h HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{
		Count: h.Count - prev.Count,
		Sum:   h.Sum - prev.Sum,
		Min:   h.Min,
		Max:   h.Max,
	}
	if h.buckets != nil {
		out.buckets = make([]uint64, len(h.buckets))
		copy(out.buckets, h.buckets)
		for i := range prev.buckets {
			if i < len(out.buckets) {
				out.buckets[i] -= prev.buckets[i]
			}
		}
	}
	return out
}

// Mean returns the average sample in nanoseconds.
func (h HistogramSnapshot) Mean() uint64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / h.Count
}

// Percentile returns the sample value at quantile p in [0,1], in
// nanoseconds.
func (h HistogramSnapshot) Percentile(p float64) uint64 {
	if h.Count == 0 || h.buckets == nil {
		return 0
	}
	target := uint64(p * float64(h.Count))
	if target >= h.Count {
		target = h.Count - 1
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen > target {
			return bucketLow(i)
		}
	}
	return h.Max
}

// histogramJSON is the wire form of a snapshot.
type histogramJSON struct {
	Count  uint64 `json:"count"`
	MeanNs uint64 `json:"mean_ns"`
	P50Ns  uint64 `json:"p50_ns"`
	P95Ns  uint64 `json:"p95_ns"`
	P99Ns  uint64 `json:"p99_ns"`
	MinNs  uint64 `json:"min_ns"`
	MaxNs  uint64 `json:"max_ns"`
}

// MarshalJSON emits the summary form: count, mean and tail percentiles.
func (h HistogramSnapshot) MarshalJSON() ([]byte, error) {
	return json.Marshal(histogramJSON{
		Count:  h.Count,
		MeanNs: h.Mean(),
		P50Ns:  h.Percentile(0.50),
		P95Ns:  h.Percentile(0.95),
		P99Ns:  h.Percentile(0.99),
		MinNs:  h.Min,
		MaxNs:  h.Max,
	})
}

// UnmarshalJSON restores the summary fields (bucket detail is not part of
// the wire form; Percentile on a restored snapshot returns 0).
func (h *HistogramSnapshot) UnmarshalJSON(b []byte) error {
	var j histogramJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	*h = HistogramSnapshot{Count: j.Count, Sum: j.MeanNs * j.Count, Min: j.MinNs, Max: j.MaxNs}
	return nil
}
