package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Registry is an expvar-style collection of named snapshot providers. A
// provider is any func returning a JSON-serializable value; providers are
// invoked on demand when a snapshot is requested, so registering one costs
// nothing at runtime.
//
// Publishing under an existing name replaces the previous provider: a
// benchmark harness that builds one environment per experiment keeps the
// live one visible without unbounded growth.
type Registry struct {
	mu        sync.RWMutex
	providers map[string]func() any
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{providers: make(map[string]func() any)}
}

// Default is the process-wide registry served by Serve; the bench
// environment publishes its stack snapshot here.
var Default = NewRegistry()

// Publish registers (or replaces) a named snapshot provider.
func (r *Registry) Publish(name string, fn func() any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.providers[name] = fn
}

// Unpublish removes a named provider.
func (r *Registry) Unpublish(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.providers, name)
}

// Snapshot invokes every provider and returns the combined view.
func (r *Registry) Snapshot() map[string]any {
	r.mu.RLock()
	fns := make(map[string]func() any, len(r.providers))
	for name, fn := range r.providers {
		fns[name] = fn
	}
	r.mu.RUnlock()
	out := make(map[string]any, len(fns))
	for name, fn := range fns {
		out[name] = fn()
	}
	return out
}

// ServeHTTP renders the registry as pretty-printed JSON.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(r.Snapshot())
}

// Handler returns an http.Handler exposing the default registry at
// /metrics (and /) plus the net/http/pprof endpoints at /debug/pprof/.
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", Default)
	mux.Handle("/metrics", Default)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the metrics listener on addr in a background goroutine
// (the -metrics-addr flag of cmd/ycsb and cmd/tpcb). Errors after startup
// are reported through errFn (which may be nil).
func Serve(addr string, errFn func(error)) {
	go func() {
		if err := http.ListenAndServe(addr, Handler()); err != nil && errFn != nil {
			errFn(err)
		}
	}()
}
