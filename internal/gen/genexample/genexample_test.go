package genexample

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/fa"
	"repro/internal/heap"
	"repro/internal/nvm"
	"repro/internal/pdt"
)

// These tests exercise the committed generator output end to end: the
// generated proxies must behave like hand-written ones.

func openExample(t testing.TB, pool *nvm.Pool) (*core.Heap, *fa.Manager) {
	t.Helper()
	mgr := fa.NewManager()
	classes := append(pdt.Classes(), ItemPClass(), ShelfPClass())
	h, err := core.Open(pool, core.Config{
		HeapOptions: heap.Options{LogSlots: 4, LogSlotSize: 1 << 14},
		Classes:     classes,
		LogHandler:  mgr,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h, mgr
}

func TestGeneratedAccessors(t *testing.T) {
	pool := nvm.New(1<<21, nvm.Options{})
	h, _ := openExample(t, pool)
	item, err := NewItemP(h)
	if err != nil {
		t.Fatal(err)
	}
	item.SetQuantity(-42)
	item.SetPrice(19.99)
	item.SetActive(true)
	item.SetFlags(0xbeef)
	item.SetCode([]byte("0123456789abcdef"))
	if item.Quantity() != -42 || item.Price() != 19.99 || !item.Active() || item.Flags() != 0xbeef {
		t.Fatalf("accessors: %d %v %v %#x", item.Quantity(), item.Price(), item.Active(), item.Flags())
	}
	if !bytes.Equal(item.Code(), []byte("0123456789abcdef")) {
		t.Fatalf("code = %q", item.Code())
	}
	item.PWBQuantity()
	item.PWBPrice()
	item.PWBActive()
	item.PWBFlags()
	item.PWBCode()
	item.PWB()
	item.Validate()

	// Ref field + atomic publication.
	name, err := pdt.NewString(h, "widget")
	if err != nil {
		t.Fatal(err)
	}
	item.AtomicSetName(name)
	if item.Name() != name.Ref() {
		t.Fatal("AtomicSetName did not store the ref")
	}
	if !name.Valid() {
		t.Fatal("AtomicSetName did not validate the target")
	}
	// Replace frees the old string.
	oldRef := name.Ref()
	name2, _ := pdt.NewString(h, "gadget")
	item.ReplaceName(name2)
	if h.Mem().Valid(oldRef) {
		t.Fatal("ReplaceName leaked the old string")
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("SetCode with wrong length must panic")
			}
		}()
		item.SetCode([]byte("short"))
	}()
}

func TestGeneratedPersistsAcrossReopen(t *testing.T) {
	pool := nvm.New(1<<21, nvm.Options{})
	h, _ := openExample(t, pool)
	item, _ := NewItemP(h)
	item.SetQuantity(7)
	item.SetPrice(1.5)
	name, _ := pdt.NewString(h, "persisted")
	item.SetName(name.Ref())
	name.Validate()
	item.PWB()
	if err := h.Root().Put("item", item); err != nil {
		t.Fatal(err)
	}

	h2, _ := openExample(t, pool)
	po, err := h2.Root().Get("item")
	if err != nil {
		t.Fatal(err)
	}
	got := po.(*ItemP)
	if got.Quantity() != 7 || got.Price() != 1.5 {
		t.Fatalf("fields lost: %d %v", got.Quantity(), got.Price())
	}
	npo, err := h2.Resurrect(got.Name())
	if err != nil {
		t.Fatal(err)
	}
	if npo.(*pdt.PString).Value() != "persisted" {
		t.Fatal("ref target lost")
	}
}

func TestGeneratedTxAccessors(t *testing.T) {
	pool := nvm.New(1<<21, nvm.Options{})
	h, mgr := openExample(t, pool)
	item, _ := NewItemP(h)
	item.SetQuantity(10)
	item.PWB()
	item.Validate()
	if err := h.Root().Put("item", item); err != nil {
		t.Fatal(err)
	}

	err := mgr.Run(func(tx *fa.Tx) error {
		q, err := item.QuantityTx(tx)
		if err != nil {
			return err
		}
		if err := item.SetQuantityTx(tx, q+5); err != nil {
			return err
		}
		if err := item.SetActiveTx(tx, true); err != nil {
			return err
		}
		if err := item.SetPriceTx(tx, 9.5); err != nil {
			return err
		}
		if err := item.SetFlagsTx(tx, 3); err != nil {
			return err
		}
		return item.SetCodeTx(tx, []byte("fedcba9876543210"))
	})
	if err != nil {
		t.Fatal(err)
	}
	if item.Quantity() != 15 || !item.Active() || item.Price() != 9.5 || item.Flags() != 3 {
		t.Fatal("tx writes lost")
	}
	if !bytes.Equal(item.Code(), []byte("fedcba9876543210")) {
		t.Fatal("tx byte-array write lost")
	}

	// A shelf allocated and linked inside a block.
	err = mgr.Run(func(tx *fa.Tx) error {
		shelf, err := NewShelfPTx(tx)
		if err != nil {
			return err
		}
		if err := shelf.SetRowTx(tx, 3); err != nil {
			return err
		}
		if err := shelf.SetColTx(tx, 4); err != nil {
			return err
		}
		if err := shelf.SetFirstTx(tx, item.Ref()); err != nil {
			return err
		}
		return tx.Heap().Root().WPut("shelf", shelf)
	})
	if err != nil {
		t.Fatal(err)
	}
	h.PSync()
	po, err := h.Root().Get("shelf")
	if err != nil {
		t.Fatal(err)
	}
	shelf := po.(*ShelfP)
	if shelf.Row() != 3 || shelf.Col() != 4 || shelf.First() != item.Ref() {
		t.Fatal("shelf fields lost")
	}
}
