// Package genexample is the fixture for the source generator: types.go is
// the input, types_jnvm.go is committed generator output (the test suite
// regenerates it and fails on drift).
package genexample

import "repro/internal/core"

//jnvm:persistent
type Item struct {
	Quantity int64
	Price    float64
	Active   bool
	Flags    uint16
	Code     [16]byte
	Name     core.Ref `jnvm:"ref"`
	hits     int      // volatile: unexported and untagged
}

//jnvm:persistent
type Shelf struct {
	Row   int32
	Col   int32
	First core.Ref `jnvm:"ref"`
	Cache []string `jnvm:"transient"`
}
