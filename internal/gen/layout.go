// Package gen plays the role of the paper's code generator (§2.5, §3): it
// turns an annotated type into the persistent layout, accessors and class
// metadata that the ASM-based tool emits in Java.
//
// Two flavors are provided:
//
//   - a runtime binder (this file): reflect over a tagged Go struct,
//     compute field offsets, and move data between struct values and a
//     persistent object; and
//   - a source generator (srcgen.go, fronted by cmd/jnvmgen): parse a Go
//     file, find structs marked //jnvm:persistent, and emit typed proxy
//     code — getters, setters, per-field flush methods, transactional
//     accessors and the core.Class descriptor.
package gen

import (
	"fmt"
	"math"
	"reflect"

	"repro/internal/core"
)

// Kind classifies a persistent field.
type Kind int

// Field kinds.
const (
	KindBool Kind = iota
	KindInt8
	KindInt16
	KindInt32
	KindInt64
	KindUint8
	KindUint16
	KindUint32
	KindUint64
	KindFloat64
	KindRef     // a persistent reference (tag jnvm:"ref")
	KindByteArr // [N]byte, stored inline
)

func (k Kind) size() uint64 {
	switch k {
	case KindBool, KindInt8, KindUint8:
		return 1
	case KindInt16, KindUint16:
		return 2
	case KindInt32, KindUint32:
		return 4
	default:
		return 8
	}
}

// FieldInfo describes one persistent field of a layout.
type FieldInfo struct {
	Name   string
	Kind   Kind
	Offset uint64
	Size   uint64 // payload size (byte arrays only; primitives use Kind)
	index  int    // struct field index
}

// Layout is the computed persistent layout of a struct type: the paper's
// generated field table.
type Layout struct {
	Type    reflect.Type
	Fields  []FieldInfo
	Size    uint64
	refOffs []uint64
	byName  map[string]int
}

// For computes the layout of the sample struct (a value or pointer).
// Exported fields become persistent in declaration order,
// aligned to their size; fields tagged `jnvm:"transient"` stay volatile;
// fields tagged `jnvm:"ref"` must be uint64-compatible and are treated as
// persistent references (walked by the recovery GC).
func For(sample any) (*Layout, error) {
	t := reflect.TypeOf(sample)
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	if t.Kind() != reflect.Struct {
		return nil, fmt.Errorf("gen: %s is not a struct", t)
	}
	l := &Layout{Type: t, byName: make(map[string]int)}
	off := uint64(0)
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		tag := f.Tag.Get("jnvm")
		if tag == "transient" {
			continue
		}
		if !f.IsExported() {
			if tag == "" {
				continue // unexported, untagged: volatile by default
			}
			return nil, fmt.Errorf("gen: field %s.%s is tagged but unexported", t, f.Name)
		}
		fi := FieldInfo{Name: f.Name, index: i}
		switch {
		case tag == "ref":
			if f.Type.Kind() != reflect.Uint64 {
				return nil, fmt.Errorf("gen: ref field %s.%s must be uint64/core.Ref", t, f.Name)
			}
			fi.Kind = KindRef
		case f.Type.Kind() == reflect.Bool:
			fi.Kind = KindBool
		case f.Type.Kind() == reflect.Int8:
			fi.Kind = KindInt8
		case f.Type.Kind() == reflect.Int16:
			fi.Kind = KindInt16
		case f.Type.Kind() == reflect.Int32:
			fi.Kind = KindInt32
		case f.Type.Kind() == reflect.Int64 || f.Type.Kind() == reflect.Int:
			fi.Kind = KindInt64
		case f.Type.Kind() == reflect.Uint8:
			fi.Kind = KindUint8
		case f.Type.Kind() == reflect.Uint16:
			fi.Kind = KindUint16
		case f.Type.Kind() == reflect.Uint32:
			fi.Kind = KindUint32
		case f.Type.Kind() == reflect.Uint64 || f.Type.Kind() == reflect.Uint:
			fi.Kind = KindUint64
		case f.Type.Kind() == reflect.Float64:
			fi.Kind = KindFloat64
		case f.Type.Kind() == reflect.Array && f.Type.Elem().Kind() == reflect.Uint8:
			fi.Kind = KindByteArr
			fi.Size = uint64(f.Type.Len())
		default:
			return nil, fmt.Errorf("gen: field %s.%s has unsupported persistent type %s "+
				"(use a J-PDT type behind a jnvm:\"ref\" field, or mark it jnvm:\"transient\")",
				t, f.Name, f.Type)
		}
		align := fi.Kind.size()
		if fi.Kind == KindByteArr {
			align = 1
			fi.Size = uint64(f.Type.Len())
		} else {
			fi.Size = fi.Kind.size()
		}
		off = (off + align - 1) &^ (align - 1)
		fi.Offset = off
		off += fi.Size
		if fi.Kind == KindRef {
			l.refOffs = append(l.refOffs, fi.Offset)
		}
		l.byName[fi.Name] = len(l.Fields)
		l.Fields = append(l.Fields, fi)
	}
	l.Size = off
	if l.Size == 0 {
		return nil, fmt.Errorf("gen: %s has no persistent fields", t)
	}
	return l, nil
}

// Offset returns the persistent offset of a field.
func (l *Layout) Offset(name string) (uint64, bool) {
	i, ok := l.byName[name]
	if !ok {
		return 0, false
	}
	return l.Fields[i].Offset, true
}

// RefOffsets returns the reference-field offsets (for core.Class.Refs).
func (l *Layout) RefOffsets() []uint64 { return l.refOffs }

// Class builds a core.Class for this layout. The factory wraps the proxy
// core; pass nil for an untyped proxy.
func (l *Layout) Class(name string, factory func(*core.Object) core.PObject) *core.Class {
	if factory == nil {
		factory = func(o *core.Object) core.PObject { return o }
	}
	refs := l.refOffs
	c := &core.Class{Name: name, Factory: factory}
	if len(refs) > 0 {
		c.Refs = func(*core.Object) []uint64 { return refs }
	}
	return c
}

// Store copies the persistent fields of src (a struct or pointer) into the
// object. It does not flush or validate; callers follow the constructor
// discipline of Figure 4.
func (l *Layout) Store(o *core.Object, src any) error {
	v := reflect.ValueOf(src)
	for v.Kind() == reflect.Pointer {
		v = v.Elem()
	}
	if v.Type() != l.Type {
		return fmt.Errorf("gen: Store of %s into layout of %s", v.Type(), l.Type)
	}
	for _, fi := range l.Fields {
		fv := v.Field(fi.index)
		switch fi.Kind {
		case KindBool:
			b := byte(0)
			if fv.Bool() {
				b = 1
			}
			o.WriteUint8(fi.Offset, b)
		case KindInt8, KindUint8:
			o.WriteUint8(fi.Offset, byte(intBits(fv)))
		case KindInt16, KindUint16:
			o.WriteUint16(fi.Offset, uint16(intBits(fv)))
		case KindInt32, KindUint32:
			o.WriteUint32(fi.Offset, uint32(intBits(fv)))
		case KindInt64, KindUint64, KindFloat64, KindRef:
			o.WriteUint64(fi.Offset, intBits(fv))
		case KindByteArr:
			buf := make([]byte, fi.Size)
			reflect.Copy(reflect.ValueOf(buf), fv)
			o.WriteBytes(fi.Offset, buf)
		}
	}
	return nil
}

// Load copies the persistent fields of the object into dst (a struct
// pointer), leaving transient fields untouched.
func (l *Layout) Load(o *core.Object, dst any) error {
	v := reflect.ValueOf(dst)
	if v.Kind() != reflect.Pointer || v.Elem().Type() != l.Type {
		return fmt.Errorf("gen: Load needs *%s, got %T", l.Type, dst)
	}
	v = v.Elem()
	for _, fi := range l.Fields {
		fv := v.Field(fi.index)
		switch fi.Kind {
		case KindBool:
			fv.SetBool(o.ReadUint8(fi.Offset) != 0)
		case KindInt8:
			fv.SetInt(int64(int8(o.ReadUint8(fi.Offset))))
		case KindUint8:
			fv.SetUint(uint64(o.ReadUint8(fi.Offset)))
		case KindInt16:
			fv.SetInt(int64(int16(o.ReadUint16(fi.Offset))))
		case KindUint16:
			fv.SetUint(uint64(o.ReadUint16(fi.Offset)))
		case KindInt32:
			fv.SetInt(int64(int32(o.ReadUint32(fi.Offset))))
		case KindUint32:
			fv.SetUint(uint64(o.ReadUint32(fi.Offset)))
		case KindInt64:
			fv.SetInt(int64(o.ReadUint64(fi.Offset)))
		case KindUint64, KindRef:
			fv.SetUint(o.ReadUint64(fi.Offset))
		case KindFloat64:
			fv.SetFloat(math.Float64frombits(o.ReadUint64(fi.Offset)))
		case KindByteArr:
			reflect.Copy(fv, reflect.ValueOf(o.ReadBytes(fi.Offset, fi.Size)))
		}
	}
	return nil
}

func intBits(v reflect.Value) uint64 {
	switch v.Kind() {
	case reflect.Bool:
		if v.Bool() {
			return 1
		}
		return 0
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return uint64(v.Int())
	case reflect.Float64:
		return math.Float64bits(v.Float())
	default:
		return v.Uint()
	}
}
