package gen

import "testing"

// FuzzGenerateSource hardens the code generator against arbitrary input
// files: it may reject them, but must never panic, and whatever it emits
// must be gofmt-valid (GenerateSource formats internally and errors
// otherwise).
func FuzzGenerateSource(f *testing.F) {
	f.Add("package p\n//jnvm:persistent\ntype T struct{ X int64 }\n")
	f.Add("package p\ntype T struct{ X int64 }\n")
	f.Add("package p\n//jnvm:persistent\ntype T struct{ R uint64 `jnvm:\"ref\"` }\n")
	f.Add("package p\n//jnvm:persistent\ntype T struct{ B [8]byte; S string `jnvm:\"transient\"` }\n")
	f.Add("not go at all")
	f.Add("package p\n//jnvm:persistent\ntype T int\n")
	f.Fuzz(func(t *testing.T, src string) {
		out, err := GenerateSource("fuzz.go", []byte(src), SrcOptions{})
		if err != nil {
			return
		}
		if out == nil {
			return // no marked structs
		}
		if len(out) == 0 {
			t.Fatal("empty output accepted")
		}
	})
}
