package gen

import (
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/nvm"
)

type demo struct {
	A   int64
	B   int32
	C   bool
	D   float64
	E   uint16
	F   [12]byte
	Ref core.Ref `jnvm:"ref"`
	T   string   `jnvm:"transient"`
	h   int      // unexported: volatile
}

func TestLayoutOffsetsAndSize(t *testing.T) {
	l, err := For(&demo{})
	if err != nil {
		t.Fatal(err)
	}
	// A:0(8) B:8(4) C:12(1) D:16(8) E:24(2) F:26(12) Ref:40(8) => size 48
	want := map[string]uint64{"A": 0, "B": 8, "C": 12, "D": 16, "E": 24, "F": 26, "Ref": 40}
	for name, off := range want {
		got, ok := l.Offset(name)
		if !ok || got != off {
			t.Fatalf("offset(%s) = %d,%v want %d", name, got, ok, off)
		}
	}
	if _, ok := l.Offset("T"); ok {
		t.Fatal("transient field got an offset")
	}
	if _, ok := l.Offset("h"); ok {
		t.Fatal("unexported field got an offset")
	}
	if l.Size != 48 {
		t.Fatalf("size = %d", l.Size)
	}
	if len(l.RefOffsets()) != 1 || l.RefOffsets()[0] != 40 {
		t.Fatalf("ref offsets = %v", l.RefOffsets())
	}
}

func TestLayoutRejectsBadTypes(t *testing.T) {
	type badString struct{ S string }
	if _, err := For(badString{}); err == nil {
		t.Fatal("string field accepted")
	}
	type badSlice struct{ S []byte }
	if _, err := For(badSlice{}); err == nil {
		t.Fatal("slice field accepted")
	}
	type badRef struct {
		R int32 `jnvm:"ref"`
	}
	if _, err := For(badRef{}); err == nil {
		t.Fatal("non-uint64 ref accepted")
	}
	type empty struct {
		S string `jnvm:"transient"`
	}
	if _, err := For(empty{}); err == nil {
		t.Fatal("empty layout accepted")
	}
	if _, err := For(42); err == nil {
		t.Fatal("non-struct accepted")
	}
}

func TestLayoutStoreLoadRoundTrip(t *testing.T) {
	pool := nvm.New(1<<20, nvm.Options{})
	l, err := For(&demo{})
	if err != nil {
		t.Fatal(err)
	}
	cls := l.Class("gen.demo", nil)
	h, err := core.Open(pool, core.Config{
		HeapOptions: heap.Options{LogSlots: 2, LogSlotSize: 4096},
		Classes:     []*core.Class{cls},
	})
	if err != nil {
		t.Fatal(err)
	}
	po, err := h.Alloc(cls, l.Size)
	if err != nil {
		t.Fatal(err)
	}
	src := demo{A: -7, B: 123456, C: true, D: 2.75, E: 65000, Ref: 0xdead}
	copy(src.F[:], "hello-layout")
	if err := l.Store(po.Core(), &src); err != nil {
		t.Fatal(err)
	}
	var dst demo
	dst.T = "keepme"
	if err := l.Load(po.Core(), &dst); err != nil {
		t.Fatal(err)
	}
	if dst.A != src.A || dst.B != src.B || dst.C != src.C || dst.D != src.D ||
		dst.E != src.E || dst.F != src.F || dst.Ref != src.Ref {
		t.Fatalf("round trip mismatch: %+v vs %+v", dst, src)
	}
	if dst.T != "keepme" {
		t.Fatal("Load touched a transient field")
	}
	// Type confusion is rejected.
	type other struct{ X int64 }
	if err := l.Store(po.Core(), other{}); err == nil {
		t.Fatal("Store of wrong type accepted")
	}
	if err := l.Load(po.Core(), &other{}); err == nil {
		t.Fatal("Load into wrong type accepted")
	}
}

func TestSrcgenMatchesCommittedOutput(t *testing.T) {
	src, err := os.ReadFile("genexample/types.go")
	if err != nil {
		t.Fatal(err)
	}
	got, err := GenerateSource("internal/gen/genexample/types.go", src, SrcOptions{Module: "repro"})
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("genexample/types_jnvm.go")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("generator output drifted from the committed types_jnvm.go; " +
			"re-run: go run ./cmd/jnvmgen internal/gen/genexample/types.go")
	}
}

func TestSrcgenAgreesWithRuntimeBinder(t *testing.T) {
	// The two halves of the generator must produce identical layouts.
	type mirror struct {
		Quantity int64
		Price    float64
		Active   bool
		Flags    uint16
		Code     [16]byte
		Name     core.Ref `jnvm:"ref"`
	}
	l, err := For(mirror{})
	if err != nil {
		t.Fatal(err)
	}
	src, _ := os.ReadFile("genexample/types.go")
	out, err := GenerateSource("types.go", src, SrcOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check: the emitted size constant matches the binder.
	wantSize := "const ItemPSize = 48"
	if l.Size != 48 {
		t.Fatalf("binder size = %d", l.Size)
	}
	if !contains(string(out), wantSize) {
		t.Fatalf("generated output missing %q", wantSize)
	}
	for _, want := range []string{
		"ItemPOffQuantity = 0", "ItemPOffPrice    = 8", "ItemPOffActive   = 16",
		"ItemPOffFlags    = 18", "ItemPOffCode     = 20", "ItemPOffName     = 40",
	} {
		if !contains(string(out), want) {
			t.Fatalf("generated output missing %q", want)
		}
	}
}

func TestSrcgenErrors(t *testing.T) {
	cases := map[string]string{
		"string field": `package p
//jnvm:persistent
type T struct{ S string }`,
		"marked non-struct": `package p
//jnvm:persistent
type T int`,
		"no persistent fields": `package p
//jnvm:persistent
type T struct{ s string }`,
		"slice field": `package p
//jnvm:persistent
type T struct{ B []byte }`,
	}
	for name, src := range cases {
		if _, err := GenerateSource("t.go", []byte(src), SrcOptions{}); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
	// A file without markers yields no output and no error.
	out, err := GenerateSource("t.go", []byte("package p\ntype T struct{ X int64 }"), SrcOptions{})
	if err != nil || out != nil {
		t.Fatalf("unmarked file: %v %v", out, err)
	}
}

func contains(haystack, needle string) bool {
	return len(haystack) >= len(needle) && (func() bool {
		for i := 0; i+len(needle) <= len(haystack); i++ {
			if haystack[i:i+len(needle)] == needle {
				return true
			}
		}
		return false
	})()
}
