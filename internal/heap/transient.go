package heap

// TransientPool recycles invalid raw blocks across the transactions of one
// worker. The failure-atomic machinery consumes one raw block per write-set
// entry (the in-flight copy) and frees it again at commit; routing those
// blocks through the shared free queue costs two shard critical sections
// per block per transaction. A TransientPool keeps up to max recently
// freed blocks aside and hands them back without touching the queue.
//
// Invariant: every pooled block has a zero header (id 0, invalid, no next)
// — the state AllocRaw establishes and the commit protocol preserves, so
// recovery treats a pooled block exactly like a free one. A TransientPool
// is not safe for concurrent use; each transaction context owns one.
type TransientPool struct {
	h    *Heap
	refs []Ref
	max  int
}

// NewTransientPool creates a pool caching at most max blocks.
func (h *Heap) NewTransientPool(max int) *TransientPool {
	if max < 0 {
		max = 0
	}
	return &TransientPool{h: h, refs: make([]Ref, 0, max), max: max}
}

// Get returns an invalid raw block, recycling a pooled one when available.
// reused reports whether the block skipped the shared allocator.
func (p *TransientPool) Get() (r Ref, reused bool, err error) {
	if n := len(p.refs); n > 0 {
		r = p.refs[n-1]
		p.refs = p.refs[:n-1]
		p.h.stats.TransientReuse.Inc()
		return r, true, nil
	}
	r, err = p.h.AllocRaw()
	return r, false, err
}

// Put returns a block to the pool, or to the shared free queue if the pool
// is full. The caller must have restored the zero header.
func (p *TransientPool) Put(r Ref) {
	if len(p.refs) < p.max {
		p.refs = append(p.refs, r)
		return
	}
	p.h.FreeRaw(r)
}

// Drain flushes every pooled block back to the shared free queue in one
// batched pushAll. Use it when retiring the owning worker so the blocks
// become visible to other allocators.
func (p *TransientPool) Drain() {
	if len(p.refs) == 0 {
		return
	}
	idxs := make([]uint64, len(p.refs))
	for i, r := range p.refs {
		idxs[i] = p.h.BlockIndex(r)
	}
	p.h.free.pushAll(idxs)
	p.refs = p.refs[:0]
}

// Len returns the number of blocks currently pooled.
func (p *TransientPool) Len() int { return len(p.refs) }
