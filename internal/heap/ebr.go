package heap

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Epoch-based reclamation for the lock-free read path (DESIGN.md §14).
//
// The zero-copy read path dereferences refs it loaded without holding any
// lock, so a concurrent Delete must not recycle the referenced blocks and
// slots while a reader may still be inside them. With EBR enabled, frees
// become two-phase: FreeObject retires the ref with the current epoch, and
// the actual free (header invalidation, block/slot recycling) runs only
// once every reader slot pinned at retire time has since unpinned.
//
// The safety argument (all accesses below are Go atomics, hence SC):
// a reader pins a slot *before* loading any ref; a writer nullifies the
// published ref *before* retiring it. If a reader's ref load returned the
// old ref, that load preceded the nullify in the SC order, so the pin
// preceded the reclaimer's later slot scan — the scan sees the pin, and
// the strict `epoch < minActive` reclaim condition keeps the entry (the
// retire epoch is never below an already-pinned reader's epoch, because
// epochs are monotonic and the retire happens after the reader's epoch
// load). If instead the scan saw the slot free, the reader pinned after
// the scan and its ref load can only observe the nullified word.
//
// Crash safety: a retired-but-unreclaimed object is valid-but-unreachable
// NVMM. That is exactly the state recovery's sweep reclaims (§4.1.3), so
// a crash between retire and reclaim leaks nothing. The one exception is
// the SkipGraphGC ("J-PFA-nogc") recovery mode, which skips the sweep and
// would leak (not corrupt) such objects until the next full recovery.
//
// EBR is opt-in (EnableEBR); with it off, FreeObject frees eagerly as
// before, so heaps without lock-free readers keep their immediate-reuse
// behavior and test expectations.

const (
	// ebrSlots bounds concurrent pinned readers. PinReader returns -1 when
	// every slot is busy; callers then fall back to their locked path, so
	// the bound only sheds zero-copy traffic, never blocks it.
	ebrSlots = 64
	// ebrBatch is how many retired objects accumulate before a reclaim
	// pass runs.
	ebrBatch = 32
	// ebrHighWater is the backlog beyond which retiring writers yield the
	// processor after a failed reclaim. A reader descheduled while pinned
	// blocks every later retire's grace period for its whole scheduling
	// quantum; on a saturated host the backlog would otherwise grow by
	// thousands of entries per quantum, starving the allocator free lists
	// (every update then carves fresh pool chunks instead of reusing
	// slots). One Gosched hands the pinned reader the CPU it needs to
	// unpin, bounding the backlog at a few quanta of churn.
	ebrHighWater = 1024
)

type ebrRetired struct {
	ref   Ref
	epoch uint64
	// fn, when non-nil, runs instead of reclaiming ref once the grace
	// period passes. Lock-free structures use it to defer reuse of
	// non-object memory (e.g. node cells inside a chunk) past any reader
	// that may still be traversing it.
	fn func()
}

type ebrState struct {
	enabled atomic.Bool
	// epoch is even and advances by 2; a pinned slot holds epoch|1, so 0
	// always means "free".
	epoch atomic.Uint64
	slots [ebrSlots]struct {
		v atomic.Uint64
		_ [56]byte // one slot per cache line
	}

	mu      sync.Mutex
	retired []ebrRetired
}

// EnableEBR switches the heap to deferred (epoch-based) reclamation.
// Called once by components that install lock-free readers; there is no
// way back because eager frees would race pins already handed out.
func (h *Heap) EnableEBR() { h.ebr.enabled.Store(true) }

// EBREnabled reports whether deferred reclamation is active.
func (h *Heap) EBREnabled() bool { return h.ebr.enabled.Load() }

// PinReader claims a reader slot at the current epoch and returns its
// index, or -1 if all slots are busy. The hint spreads unrelated readers
// across slots (pass a key hash). Callers must UnpinReader the returned
// slot after their last access to loaded refs, and must pin *before*
// loading any ref they will dereference.
func (h *Heap) PinReader(hint uint32) int {
	e := &h.ebr
	for i := uint32(0); i < ebrSlots; i++ {
		s := &e.slots[(hint+i)%ebrSlots]
		if s.v.Load() != 0 {
			continue
		}
		if s.v.CompareAndSwap(0, e.epoch.Load()|1) {
			return int((hint + i) % ebrSlots)
		}
	}
	return -1
}

// UnpinReader releases a slot returned by PinReader.
func (h *Heap) UnpinReader(slot int) {
	h.ebr.slots[slot].v.Store(0)
}

// retire queues r for reclamation after the current readers' grace period.
func (h *Heap) retire(r Ref) {
	e := &h.ebr
	e.mu.Lock()
	e.retired = append(e.retired, ebrRetired{ref: r, epoch: e.epoch.Load()})
	n := len(e.retired)
	e.mu.Unlock()
	if n >= ebrBatch {
		h.tryReclaim()
		h.backpressure(n)
	}
}

// backpressure yields after a reclaim attempt that left a deep backlog:
// the grace period is then being held open by a pinned reader that needs
// the processor to finish its read section and unpin (see ebrHighWater).
func (h *Heap) backpressure(n int) {
	if n >= ebrHighWater {
		runtime.Gosched()
	}
}

// Defer runs fn after the current readers' grace period — the callback
// flavor of retire, for memory that is not a heap object (lock-free node
// cells carved from a chunk, DESIGN.md §16). With EBR off it runs fn
// immediately, preserving the eager-free invariant.
func (h *Heap) Defer(fn func()) {
	if !h.ebr.enabled.Load() {
		fn()
		return
	}
	e := &h.ebr
	e.mu.Lock()
	e.retired = append(e.retired, ebrRetired{epoch: e.epoch.Load(), fn: fn})
	n := len(e.retired)
	e.mu.Unlock()
	if n >= ebrBatch {
		h.tryReclaim()
		h.backpressure(n)
	}
}

// tryReclaim advances the epoch and frees every retired object whose
// grace period has passed.
func (h *Heap) tryReclaim() {
	e := &h.ebr
	e.mu.Lock()
	defer e.mu.Unlock()
	e.epoch.Add(2)
	minActive := e.epoch.Load()
	for i := range e.slots {
		if v := e.slots[i].v.Load(); v != 0 {
			if pinned := v - 1; pinned < minActive {
				minActive = pinned
			}
		}
	}
	// Retire epochs are monotonic (each append loads the live epoch under
	// the same mutex that serializes epoch advances), so the reclaimable
	// entries form a prefix: stop at the first blocked entry instead of
	// re-walking the whole backlog, which kept this pass O(backlog) per
	// batch — quadratic while a descheduled pinned reader held the grace
	// period open.
	n := 0
	for n < len(e.retired) && e.retired[n].epoch < minActive {
		n++
	}
	if n == 0 {
		return
	}
	// One fence per reclaim batch: every unlink published before the
	// retire is queued ahead of the header invalidations the reclaims are
	// about to flush, so a crash can never persist an invalidation before
	// the store that unlinked the object (§4.1.5 ordering, amortized over
	// the batch).
	h.pool.PFence()
	for _, t := range e.retired[:n] {
		if t.fn != nil {
			t.fn()
		} else {
			h.reclaim(t.ref)
		}
	}
	rest := copy(e.retired, e.retired[n:])
	clear(e.retired[rest:])
	e.retired = e.retired[:rest]
}

// reclaim performs the real free of a retired object (the pre-EBR
// FreeObject body).
func (h *Heap) reclaim(r Ref) {
	if !h.IsBlockRef(r) {
		h.small.free(r)
		return
	}
	blocks := h.Blocks(r)
	h.SetValid(r, false)
	for _, b := range blocks {
		h.free.push(h.BlockIndex(b))
	}
	h.stats.ObjFrees.Inc()
}

// ReclaimBarrier drains the retired list, waiting for in-flight readers
// to unpin. Tests and shutdown paths use it to restore the eager-free
// invariant before asserting on allocator state.
func (h *Heap) ReclaimBarrier() {
	e := &h.ebr
	if !e.enabled.Load() {
		return
	}
	for {
		h.tryReclaim()
		e.mu.Lock()
		n := len(e.retired)
		e.mu.Unlock()
		if n == 0 {
			return
		}
		runtime.Gosched()
	}
}
