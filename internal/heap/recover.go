package heap

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// MarkSet accumulates the reachability information of the recovery
// procedure (§4.1.3): one bit per arena block, plus per-slot bits for pool
// chunks. The object layer (package core) drives the graph traversal and
// calls MarkObject; Sweep then rebuilds the volatile allocator state.
//
// The set is safe for concurrent marking: the block bitmap is CAS-or'd one
// word at a time and the slot masks live in sharded maps, so the parallel
// recovery traversal can drive it from many workers. First-marker-wins —
// MarkObject reports true to exactly one caller per object — which is what
// lets the traversal claim each object for a single worker.
type MarkSet struct {
	h      *Heap
	blocks []atomic.Uint64
	slots  [markSlotShards]markSlotShard
	marked atomic.Uint64
	maxIdx atomic.Uint64 // highest marked index (valid when marked > 0)
}

const markSlotShards = 64

type markSlotShard struct {
	mu   sync.Mutex
	m    map[uint64]uint64 // block index -> bitmask of live slots
	_pad [40]byte          // keep shards on distinct cache lines
}

// NewMarkSet creates an empty mark set sized for the heap's arena.
func (h *Heap) NewMarkSet() *MarkSet {
	m := &MarkSet{
		h:      h,
		blocks: make([]atomic.Uint64, (h.nBlocks+63)/64),
	}
	for i := range m.slots {
		m.slots[i].m = make(map[uint64]uint64)
	}
	return m
}

func (m *MarkSet) markBlock(idx uint64) bool {
	w, bit := idx/64, uint64(1)<<(idx%64)
	for {
		old := m.blocks[w].Load()
		if old&bit != 0 {
			return false
		}
		if m.blocks[w].CompareAndSwap(old, old|bit) {
			break
		}
	}
	m.marked.Add(1)
	for {
		cur := m.maxIdx.Load()
		if idx <= cur || m.maxIdx.CompareAndSwap(cur, idx) {
			break
		}
	}
	return true
}

// BlockMarked reports whether the arena block idx was marked live.
func (m *MarkSet) BlockMarked(idx uint64) bool {
	return m.blocks[idx/64].Load()&(1<<(idx%64)) != 0
}

// Marked returns the number of live blocks found so far.
func (m *MarkSet) Marked() uint64 { return m.marked.Load() }

func (m *MarkSet) slotShard(idx uint64) *markSlotShard {
	return &m.slots[idx%markSlotShards]
}

// SlotMask returns the live-slot bitmask recorded for the pool chunk at
// block idx (zero if no slot was marked).
func (m *MarkSet) SlotMask(idx uint64) uint64 {
	s := m.slotShard(idx)
	s.mu.Lock()
	v := s.m[idx]
	s.mu.Unlock()
	return v
}

// MarkObject marks the object at r live. For block objects every block of
// the chain is marked; for pooled objects the containing chunk and the slot
// bit are. It reports whether the object was newly marked, letting the
// traversal avoid revisiting shared subgraphs.
func (m *MarkSet) MarkObject(r Ref) bool {
	if r == 0 {
		return false
	}
	if m.h.IsBlockRef(r) {
		first := m.markBlock(m.h.BlockIndex(r))
		if !first {
			return false
		}
		for _, b := range m.h.Blocks(r)[1:] {
			m.markBlock(m.h.BlockIndex(b))
		}
		return true
	}
	block := m.h.ContainingBlock(r)
	idx := m.h.BlockIndex(block)
	hdr := m.h.Header(block)
	id, _, sc := UnpackHeader(hdr)
	if id != PoolChunkClass || int(sc) >= len(SlotSizes) {
		panic(fmt.Sprintf("heap: interior ref %#x into non-chunk block (header %#x)", r, hdr))
	}
	slot := (r - block - HeaderSize) / uint64(SlotSizes[sc])
	bit := uint64(1) << slot
	s := m.slotShard(idx)
	s.mu.Lock()
	if s.m[idx]&bit != 0 {
		s.mu.Unlock()
		return false
	}
	s.m[idx] |= bit
	s.mu.Unlock()
	m.markBlock(idx)
	return true
}

// SweepStats reports what a sweep did, for the recovery phase counters.
type SweepStats struct {
	DeadBlocks      uint64 // unmarked blocks returned to the free queue
	LiveChunks      uint64 // pool chunks whose slot lists were rebuilt
	ScrubbedHeaders uint64 // stale headers cleared above the new bump
}

// Sweep finishes recovery on a single goroutine: every unmarked block below
// the bump pointer is zeroed (clearing stale valid bits, per §4.1.3) and
// pushed to the volatile free queue; live pool chunks have their dead slots
// reclaimed and the volatile slot lists rebuilt; the bump pointer shrinks
// to just above the highest live block. A single fence closes the
// procedure, exactly as the paper prescribes.
func (h *Heap) Sweep(m *MarkSet) { h.SweepParallel(m, 1) }

const (
	// sweepSegBlocks is the work-grabbing granule of the parallel sweep:
	// 8192 blocks = 2 MiB of arena per claim.
	sweepSegBlocks = 8192
	// Below this arena size the goroutine fan-out costs more than it
	// saves; fall back to the serial sweep.
	minParallelSweepBlocks = 4 * sweepSegBlocks
)

// SweepParallel is Sweep with the per-block work divided among workers.
// Block dispositions are independent (each block's fate depends only on
// its own mark bit and header), so the arena is carved into fixed segments
// claimed from an atomic cursor; every worker batches its dead indices and
// freed slots locally and merges them into the sharded free queue and the
// pool slot lists. The persistent effects — which headers and slots are
// zeroed, the new bump, the single closing fence — are identical to the
// serial sweep's; only volatile queue order may differ.
func (h *Heap) SweepParallel(m *MarkSet, workers int) SweepStats {
	h.small.reset()
	// Recovery owns the heap exclusively until Open returns, so dropping
	// the free list in place is safe.
	for i := range h.free.shards {
		h.free.shards[i].idxs = nil
	}
	// The persistent bump mirror is advisory only (its stores are
	// unfenced), so recovery must never trust it: a crash can lose the
	// mirror while live blocks sit above the stale value, and honoring it
	// would let the allocator overwrite them. The new bump comes from the
	// mark set alone.
	maxLive := uint64(0)
	if m.Marked() > 0 {
		maxLive = m.maxIdx.Load() + 1
	}
	var st SweepStats
	if workers <= 1 || h.nBlocks < minParallelSweepBlocks {
		st = h.sweepSerial(m, maxLive)
	} else {
		st = h.sweepConcurrent(m, maxLive, workers)
	}
	h.bump.Store(maxLive)
	h.bumpMu.Lock()
	h.bumpMirror = maxLive
	h.pool.WriteUint64(sbBump, maxLive)
	h.bumpMu.Unlock()
	h.pool.PWB(sbBump)
	h.pool.PFence()
	return st
}

// sweepSerial is the paper's single-threaded procedure, kept verbatim as
// the oracle the parallel path is tested against.
func (h *Heap) sweepSerial(m *MarkSet, maxLive uint64) SweepStats {
	var st SweepStats
	// Pass 1: below the new bump, dead blocks join the free queue; live
	// pool chunks get their dead slots reclaimed.
	for idx := uint64(0); idx < maxLive; idx++ {
		r := h.BlockRef(idx)
		if !m.BlockMarked(idx) {
			if h.Header(r) != 0 {
				h.WriteHeader(r, 0)
				h.pool.PWB(r)
			}
			h.free.push(idx)
			st.DeadBlocks++
			continue
		}
		id, _, sc := UnpackHeader(h.Header(r))
		if id == PoolChunkClass {
			h.sweepChunk(r, int(sc), m.SlotMask(idx), &h.small.classes[sc].free)
			st.LiveChunks++
		}
	}
	// Pass 2: above the new bump everything is virgin again; scrub stale
	// headers (whatever a torn bump mirror claims) so neither a later
	// header-scan recovery nor a bump allocation can misread them. Virgin
	// blocks read zero, so this costs one load per untouched block.
	for idx := maxLive; idx < h.nBlocks; idx++ {
		r := h.BlockRef(idx)
		if h.Header(r) != 0 {
			h.WriteHeader(r, 0)
			h.pool.PWB(r)
			st.ScrubbedHeaders++
		}
	}
	return st
}

func (h *Heap) sweepConcurrent(m *MarkSet, maxLive uint64, workers int) SweepStats {
	nSegs := (h.nBlocks + sweepSegBlocks - 1) / sweepSegBlocks
	if uint64(workers) > nSegs {
		workers = int(nSegs)
	}
	var next atomic.Uint64
	var dead, chunks, scrubbed atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var freeIdxs []uint64
			var slotFrees [len(SlotSizes)][]Ref
			for {
				seg := next.Add(1) - 1
				if seg >= nSegs {
					break
				}
				lo := seg * sweepSegBlocks
				hi := lo + sweepSegBlocks
				if hi > h.nBlocks {
					hi = h.nBlocks
				}
				d, c, s := h.sweepRange(m, lo, hi, maxLive, &freeIdxs, &slotFrees)
				dead.Add(d)
				chunks.Add(c)
				scrubbed.Add(s)
				// Drain large batches early so locals stay cache-sized.
				if len(freeIdxs) >= 1<<16 {
					h.free.pushAll(freeIdxs)
					freeIdxs = freeIdxs[:0]
				}
			}
			h.free.pushAll(freeIdxs)
			for sc := range slotFrees {
				if len(slotFrees[sc]) == 0 {
					continue
				}
				c := &h.small.classes[sc]
				c.mu.Lock()
				c.free = append(c.free, slotFrees[sc]...)
				c.mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return SweepStats{
		DeadBlocks:      dead.Load(),
		LiveChunks:      chunks.Load(),
		ScrubbedHeaders: scrubbed.Load(),
	}
}

// sweepRange applies the two sweep passes to the block range [lo, hi):
// indices below maxLive follow pass-1 rules (reclaim dead, rebuild chunk
// slots), the rest pass-2 (scrub stale headers). Dead block indices and
// freed slots accumulate in the caller's local batches.
func (h *Heap) sweepRange(m *MarkSet, lo, hi, maxLive uint64, freeIdxs *[]uint64, slotFrees *[len(SlotSizes)][]Ref) (dead, chunks, scrubbed uint64) {
	for idx := lo; idx < hi; idx++ {
		r := h.BlockRef(idx)
		if idx >= maxLive {
			if h.Header(r) != 0 {
				h.WriteHeader(r, 0)
				h.pool.PWB(r)
				scrubbed++
			}
			continue
		}
		if !m.BlockMarked(idx) {
			if h.Header(r) != 0 {
				h.WriteHeader(r, 0)
				h.pool.PWB(r)
			}
			*freeIdxs = append(*freeIdxs, idx)
			dead++
			continue
		}
		id, _, sc := UnpackHeader(h.Header(r))
		if id == PoolChunkClass {
			h.sweepChunk(r, int(sc), m.SlotMask(idx), &slotFrees[sc])
			chunks++
		}
	}
	return dead, chunks, scrubbed
}

// sweepChunk reclaims the dead slots of a live pool chunk: zero (and
// flush) any stale mini-header, and append the slot to dest — the volatile
// slot list under the serial sweep, a worker-local batch under the
// parallel one.
func (h *Heap) sweepChunk(block Ref, sc int, liveMask uint64, dest *[]Ref) {
	size := uint64(SlotSizes[sc])
	n := Payload / size
	for s := uint64(0); s < n; s++ {
		r := block + HeaderSize + s*size
		if liveMask&(1<<s) != 0 {
			continue
		}
		if h.pool.ReadUint64(r) != 0 {
			h.pool.WriteUint64(r, 0)
			h.pool.PWB(r)
		}
		*dest = append(*dest, r)
	}
}

// FreeIndices returns a copy of the free queue's current contents. Order
// is unspecified (the queue is sharded); callers compare as a set. Debug
// and test use only.
func (h *Heap) FreeIndices() []uint64 {
	var out []uint64
	for i := range h.free.shards {
		s := &h.free.shards[i]
		s.mu.Lock()
		out = append(out, s.idxs...)
		s.mu.Unlock()
	}
	return out
}

// PoolFreeSlots returns copies of the per-size-class free slot lists of
// the small-object pool allocator. Debug and test use only.
func (h *Heap) PoolFreeSlots() [][]Ref {
	out := make([][]Ref, len(SlotSizes))
	for sc := range h.small.classes {
		c := &h.small.classes[sc]
		c.mu.Lock()
		out[sc] = append([]Ref(nil), c.free...)
		c.mu.Unlock()
	}
	return out
}
