package heap

import "fmt"

// MarkSet accumulates the reachability information of the recovery
// procedure (§4.1.3): one bit per arena block, plus per-slot bits for pool
// chunks. The object layer (package core) drives the graph traversal and
// calls MarkObject; Sweep then rebuilds the volatile allocator state.
type MarkSet struct {
	h      *Heap
	blocks []uint64
	slots  map[uint64]uint64 // block index -> bitmask of live slots
	marked uint64
	maxIdx uint64 // highest marked index (valid when marked > 0)
}

// NewMarkSet creates an empty mark set sized for the heap's arena.
func (h *Heap) NewMarkSet() *MarkSet {
	return &MarkSet{
		h:      h,
		blocks: make([]uint64, (h.nBlocks+63)/64),
		slots:  make(map[uint64]uint64),
	}
}

func (m *MarkSet) markBlock(idx uint64) bool {
	w, b := idx/64, idx%64
	if m.blocks[w]&(1<<b) != 0 {
		return false
	}
	m.blocks[w] |= 1 << b
	m.marked++
	if idx > m.maxIdx {
		m.maxIdx = idx
	}
	return true
}

// BlockMarked reports whether the arena block idx was marked live.
func (m *MarkSet) BlockMarked(idx uint64) bool {
	return m.blocks[idx/64]&(1<<(idx%64)) != 0
}

// Marked returns the number of live blocks found so far.
func (m *MarkSet) Marked() uint64 { return m.marked }

// MarkObject marks the object at r live. For block objects every block of
// the chain is marked; for pooled objects the containing chunk and the slot
// bit are. It reports whether the object was newly marked, letting the
// traversal avoid revisiting shared subgraphs.
func (m *MarkSet) MarkObject(r Ref) bool {
	if r == 0 {
		return false
	}
	if m.h.IsBlockRef(r) {
		first := m.markBlock(m.h.BlockIndex(r))
		if !first {
			return false
		}
		for _, b := range m.h.Blocks(r)[1:] {
			m.markBlock(m.h.BlockIndex(b))
		}
		return true
	}
	block := m.h.ContainingBlock(r)
	idx := m.h.BlockIndex(block)
	hdr := m.h.Header(block)
	id, _, sc := UnpackHeader(hdr)
	if id != PoolChunkClass || int(sc) >= len(SlotSizes) {
		panic(fmt.Sprintf("heap: interior ref %#x into non-chunk block (header %#x)", r, hdr))
	}
	slot := (r - block - HeaderSize) / uint64(SlotSizes[sc])
	bit := uint64(1) << slot
	if m.slots[idx]&bit != 0 {
		return false
	}
	m.slots[idx] |= bit
	m.markBlock(idx)
	return true
}

// Sweep finishes recovery: every unmarked block below the bump pointer is
// zeroed (clearing stale valid bits, per §4.1.3) and pushed to the volatile
// free queue; live pool chunks have their dead slots reclaimed and the
// volatile slot lists rebuilt; the bump pointer shrinks to just above the
// highest live block. A single fence closes the procedure, exactly as the
// paper prescribes.
func (h *Heap) Sweep(m *MarkSet) {
	h.small.reset()
	// Recovery runs single-threaded before the application resumes, so
	// rebuilding the free list in place is safe.
	for i := range h.free.shards {
		h.free.shards[i].idxs = nil
	}
	// The persistent bump mirror is advisory only (its stores are
	// unfenced), so recovery must never trust it: a crash can lose the
	// mirror while live blocks sit above the stale value, and honoring it
	// would let the allocator overwrite them. The new bump comes from the
	// mark set alone.
	maxLive := uint64(0)
	if m.marked > 0 {
		maxLive = m.maxIdx + 1
	}
	// Pass 1: below the new bump, dead blocks join the free queue; live
	// pool chunks get their dead slots reclaimed.
	for idx := uint64(0); idx < maxLive; idx++ {
		r := h.BlockRef(idx)
		if !m.BlockMarked(idx) {
			if h.Header(r) != 0 {
				h.WriteHeader(r, 0)
				h.pool.PWB(r)
			}
			h.free.push(idx)
			continue
		}
		id, _, sc := UnpackHeader(h.Header(r))
		if id == PoolChunkClass {
			h.sweepChunk(r, idx, int(sc), m.slots[idx])
		}
	}
	// Pass 2: above the new bump everything is virgin again; scrub stale
	// headers (whatever a torn bump mirror claims) so neither a later
	// header-scan recovery nor a bump allocation can misread them. Virgin
	// blocks read zero, so this costs one load per untouched block.
	for idx := maxLive; idx < h.nBlocks; idx++ {
		r := h.BlockRef(idx)
		if h.Header(r) != 0 {
			h.WriteHeader(r, 0)
			h.pool.PWB(r)
		}
	}
	h.bump.Store(maxLive)
	h.bumpMu.Lock()
	h.bumpMirror = maxLive
	h.pool.WriteUint64(sbBump, maxLive)
	h.bumpMu.Unlock()
	h.pool.PWB(sbBump)
	h.pool.PFence()
}

func (h *Heap) sweepChunk(block Ref, idx uint64, sc int, liveMask uint64) {
	size := uint64(SlotSizes[sc])
	n := Payload / size
	c := &h.small.classes[sc]
	for s := uint64(0); s < n; s++ {
		r := block + HeaderSize + s*size
		if liveMask&(1<<s) != 0 {
			continue
		}
		if h.pool.ReadUint64(r) != 0 {
			h.pool.WriteUint64(r, 0)
			h.pool.PWB(r)
		}
		c.free = append(c.free, r)
	}
}
