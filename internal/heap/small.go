package heap

import (
	"fmt"
	"sync"
)

// Small-immutable-object pool allocators (§4.4).
//
// Because the failure-atomic algorithm works at block, not object,
// granularity, only *immutable* objects may share a block: two transactions
// can then never produce diverging in-flight replicas of the same block.
//
// A pool chunk is one ordinary heap block whose header carries the reserved
// poolChunkClass id, the valid bit set, and — since a chunk has no next
// block — the size-class index in the next field. The payload is divided
// into fixed-size slots. Each slot starts with an 8-byte mini-header:
//
//	classID (15) | valid (1) | sizeClass (8) | payload length (32)
//
// A Ref to a pooled object is the interior pool offset of its slot header,
// so the generic Valid/SetValid/ClassOf operations dispatch on alignment.

// PoolChunkClass is the reserved class id marking pool-chunk blocks.
const PoolChunkClass = 0x7fff

const (
	slotLenMask    = (1 << 32) - 1
	slotClassShift = 49
	slotValidBit   = 1 << 48
	slotSCShift    = 40
)

func packSlot(classID uint16, valid bool, sizeClass int, length uint32) uint64 {
	h := uint64(classID)<<slotClassShift | uint64(sizeClass)<<slotSCShift | uint64(length)
	if valid {
		h |= slotValidBit
	}
	return h
}

func slotClass(h uint64) uint16 { return uint16(h >> slotClassShift) }
func slotValid(h uint64) bool   { return h&slotValidBit != 0 }
func slotLen(h uint64) uint32   { return uint32(h & slotLenMask) }

func setSlotValid(h uint64, v bool) uint64 {
	if v {
		return h | slotValidBit
	}
	return h &^ uint64(slotValidBit)
}

// SlotSizes are the pool size classes (slot size including the 8-byte
// mini-header). Objects above the largest class fall back to whole-block
// allocation.
var SlotSizes = [...]int{24, 40, 56, 88, 124}

// SlotPayloadMax is the largest payload the pool allocators accept.
const SlotPayloadMax = 124 - 8

func sizeClassFor(payload uint64) (int, bool) {
	need := int(payload) + 8
	for i, s := range SlotSizes {
		if s >= need {
			return i, true
		}
	}
	return 0, false
}

type smallAllocator struct {
	h       *Heap
	classes [len(SlotSizes)]struct {
		mu   sync.Mutex
		free []Ref
	}
}

func (s *smallAllocator) init(h *Heap) { s.h = h }

// carve initializes a fresh chunk for size class sc and returns its slot
// refs. The chunk header is flushed but not fenced: the first fence that
// publishes any object in the chunk also persists the header (§3.2.3
// batching argument).
func (s *smallAllocator) carve(sc int) ([]Ref, error) {
	idx, err := s.h.allocBlock()
	if err != nil {
		return nil, err
	}
	block := s.h.BlockRef(idx)
	s.h.WriteHeader(block, PackHeader(PoolChunkClass, true, uint64(sc)))
	s.h.pool.Zero(block+HeaderSize, Payload)
	s.h.pool.PWB(block)
	size := uint64(SlotSizes[sc])
	n := Payload / size
	slots := make([]Ref, 0, n)
	for i := uint64(0); i < n; i++ {
		slots = append(slots, block+HeaderSize+i*size)
	}
	s.h.stats.Carves.Inc()
	return slots, nil
}

// alloc reserves one slot able to hold payload bytes and stamps its
// mini-header (invalid). Returns the slot Ref.
func (s *smallAllocator) alloc(classID uint16, payload uint64) (Ref, error) {
	sc, ok := sizeClassFor(payload)
	if !ok {
		return 0, fmt.Errorf("heap: payload %d exceeds pool slot max %d", payload, SlotPayloadMax)
	}
	c := &s.classes[sc]
	c.mu.Lock()
	if len(c.free) == 0 {
		slots, err := s.carve(sc)
		if err != nil {
			c.mu.Unlock()
			return 0, err
		}
		c.free = slots
	}
	r := c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	c.mu.Unlock()
	s.h.pool.WriteUint64(r, packSlot(classID, false, sc, uint32(payload)))
	s.h.pool.Zero(r+8, uint64(SlotSizes[sc]-8))
	s.h.stats.SmallAllocs.Inc()
	return r, nil
}

func (s *smallAllocator) free(r Ref) {
	hdr := s.h.pool.ReadUint64(r)
	sc := int(hdr>>slotSCShift) & 0xff
	if sc >= len(SlotSizes) {
		panic(fmt.Sprintf("heap: corrupt slot header %#x at %#x", hdr, r))
	}
	s.h.pool.WriteUint64(r, 0)
	s.h.pool.PWB(r)
	c := &s.classes[sc]
	c.mu.Lock()
	c.free = append(c.free, r)
	c.mu.Unlock()
	s.h.stats.SmallFrees.Inc()
}

// reset drops all volatile slot lists (used before recovery rebuilds them).
func (s *smallAllocator) reset() {
	for i := range s.classes {
		s.classes[i].mu.Lock()
		s.classes[i].free = nil
		s.classes[i].mu.Unlock()
	}
}

// AllocSmall allocates a pooled slot for an immutable object of classID
// with the given payload size. The slot is invalid until SetValid; its
// payload starts at Ref+8.
func (h *Heap) AllocSmall(classID uint16, payload uint64) (Ref, error) {
	return h.small.alloc(classID, payload)
}

// SlotPayloadLen returns the payload length recorded in a pooled slot's
// mini-header.
func (h *Heap) SlotPayloadLen(r Ref) uint64 {
	return uint64(slotLen(h.pool.ReadUint64(r)))
}

// FitsSmall reports whether a payload of the given size is eligible for
// pool allocation.
func FitsSmall(payload uint64) bool {
	_, ok := sizeClassFor(payload)
	return ok
}
