package heap

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/nvm"
)

func newHeap(t testing.TB, size int) *Heap {
	t.Helper()
	h, err := Format(nvm.New(size, nvm.Options{}), Options{LogSlots: 2, LogSlotSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHeaderPacking(t *testing.T) {
	cases := []struct {
		id    uint16
		valid bool
		next  uint64
	}{
		{0, false, 0},
		{1, true, 0},
		{0x7ffe, true, nextMask},
		{42, false, 123456},
	}
	for _, c := range cases {
		id, v, n := UnpackHeader(PackHeader(c.id, c.valid, c.next))
		if id != c.id || v != c.valid || n != c.next {
			t.Fatalf("pack/unpack(%v) = %d %v %d", c, id, v, n)
		}
	}
}

func TestQuickHeaderRoundTrip(t *testing.T) {
	f := func(id uint16, valid bool, next uint64) bool {
		id &= 0x7fff
		next &= nextMask
		i2, v2, n2 := UnpackHeader(PackHeader(id, valid, next))
		return i2 == id && v2 == valid && n2 == next
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFormatOpenRoundTrip(t *testing.T) {
	pool := nvm.New(1<<23, nvm.Options{})
	h, err := Format(pool, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if h.NBlocks() == 0 {
		t.Fatal("no arena blocks")
	}
	h2, err := Open(pool)
	if err != nil {
		t.Fatal(err)
	}
	if h2.NBlocks() != h.NBlocks() {
		t.Fatalf("reopen geometry mismatch: %d vs %d", h2.NBlocks(), h.NBlocks())
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	if _, err := Open(nvm.New(1<<16, nvm.Options{})); err == nil {
		t.Fatal("opened an unformatted pool")
	}
	if _, err := Open(nvm.New(16, nvm.Options{})); err == nil {
		t.Fatal("opened a tiny pool")
	}
}

func TestFormatTooSmall(t *testing.T) {
	if _, err := Format(nvm.New(8192, nvm.Options{}), Options{}); err == nil {
		t.Fatal("formatted a pool smaller than its metadata")
	}
}

func TestAllocObjectChainsBlocks(t *testing.T) {
	h := newHeap(t, 1<<20)
	master, blocks, err := h.AllocObject(7, 3*Payload+1)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 4 {
		t.Fatalf("want 4 blocks, got %d", len(blocks))
	}
	if got := h.Blocks(master); len(got) != 4 {
		t.Fatalf("chain walk found %d blocks", len(got))
	}
	id, valid, _ := UnpackHeader(h.Header(master))
	if id != 7 || valid {
		t.Fatalf("master header: id=%d valid=%v", id, valid)
	}
	for _, b := range blocks[1:] {
		id, valid, _ := UnpackHeader(h.Header(b))
		if id != 0 || valid {
			t.Fatalf("slave header: id=%d valid=%v", id, valid)
		}
	}
}

func TestAllocZeroesPayload(t *testing.T) {
	h := newHeap(t, 1<<20)
	master, blocks, err := h.AllocObject(1, Payload)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty it, free it, realloc: payload must come back zeroed.
	h.Pool().WriteBytes(master+HeaderSize, []byte("junk"))
	h.FreeObject(master)
	m2, _, err := h.AllocObject(2, Payload)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range h.Blocks(m2) {
		for _, x := range h.Pool().ReadBytes(b+HeaderSize, Payload) {
			if x != 0 {
				t.Fatal("realloc saw stale payload")
			}
		}
	}
	_ = blocks
}

func TestValidateInvalidate(t *testing.T) {
	h := newHeap(t, 1<<20)
	master, _, err := h.AllocObject(3, 16)
	if err != nil {
		t.Fatal(err)
	}
	if h.Valid(master) {
		t.Fatal("fresh object must be invalid")
	}
	h.SetValid(master, true)
	if !h.Valid(master) {
		t.Fatal("SetValid(true) did not stick")
	}
	if h.ClassOf(master) != 3 {
		t.Fatalf("class lost: %d", h.ClassOf(master))
	}
	h.SetValid(master, false)
	if h.Valid(master) {
		t.Fatal("SetValid(false) did not stick")
	}
	if h.Valid(0) {
		t.Fatal("null ref must be invalid")
	}
}

func TestFreeObjectRecyclesBlocks(t *testing.T) {
	h := newHeap(t, 1<<20)
	master, blocks, err := h.AllocObject(1, 2*Payload)
	if err != nil {
		t.Fatal(err)
	}
	before := h.FreeBlocks()
	h.FreeObject(master)
	if got := h.FreeBlocks(); got != before+len(blocks) {
		t.Fatalf("free queue grew by %d, want %d", got-before, len(blocks))
	}
	if h.Valid(master) {
		t.Fatal("freed master still valid")
	}
}

func TestOutOfMemory(t *testing.T) {
	h := newHeap(t, 1<<17)
	var masters []Ref
	for {
		m, _, err := h.AllocObject(1, Payload)
		if err != nil {
			if !errors.Is(err, ErrOutOfMemory) {
				t.Fatalf("wrong error: %v", err)
			}
			break
		}
		masters = append(masters, m)
	}
	if len(masters) == 0 {
		t.Fatal("no allocations before OOM")
	}
	// Freeing makes room again.
	h.FreeObject(masters[0])
	if _, _, err := h.AllocObject(1, Payload); err != nil {
		t.Fatalf("alloc after free: %v", err)
	}
}

func TestMultiBlockAllocRollbackOnOOM(t *testing.T) {
	h := newHeap(t, 1<<17)
	// Exhaust all but one block.
	for {
		if _, _, err := h.AllocObject(1, Payload); err != nil {
			break
		}
	}
	h.FreeObject(h.BlockRef(0)) // free exactly one block (index 0 was a master)
	free := h.FreeBlocks()
	if _, _, err := h.AllocObject(1, 5*Payload); err == nil {
		t.Fatal("5-block alloc should fail")
	}
	if h.FreeBlocks() != free {
		t.Fatalf("failed alloc leaked blocks: %d -> %d", free, h.FreeBlocks())
	}
}

func TestClassTablePersists(t *testing.T) {
	pool := nvm.New(1<<23, nvm.Options{})
	h, err := Format(pool, Options{})
	if err != nil {
		t.Fatal(err)
	}
	idA, err := h.RegisterClass("demo.A")
	if err != nil {
		t.Fatal(err)
	}
	idB, err := h.RegisterClass("demo.B")
	if err != nil {
		t.Fatal(err)
	}
	if idA == idB {
		t.Fatal("distinct classes share an id")
	}
	if again, _ := h.RegisterClass("demo.A"); again != idA {
		t.Fatal("re-registration changed the id")
	}

	h2, err := Open(pool)
	if err != nil {
		t.Fatal(err)
	}
	if id, ok := h2.ClassID("demo.A"); !ok || id != idA {
		t.Fatalf("class demo.A lost across reopen: %d %v", id, ok)
	}
	if name, ok := h2.ClassName(idB); !ok || name != "demo.B" {
		t.Fatalf("class name lookup: %q %v", name, ok)
	}
	if _, ok := h2.ClassName(999); ok {
		t.Fatal("resolved an unregistered id")
	}
}

func TestClassTableRejectsBadNames(t *testing.T) {
	h := newHeap(t, 1<<20)
	if _, err := h.RegisterClass(""); err == nil {
		t.Fatal("empty name accepted")
	}
	long := make([]byte, classNameMax+1)
	for i := range long {
		long[i] = 'x'
	}
	if _, err := h.RegisterClass(string(long)); err == nil {
		t.Fatal("oversized name accepted")
	}
}

func TestRootRefRoundTrip(t *testing.T) {
	h := newHeap(t, 1<<20)
	if h.RootRef() != 0 {
		t.Fatal("fresh heap has a root")
	}
	master, _, _ := h.AllocObject(1, 8)
	h.SetRootRef(master)
	if h.RootRef() != master {
		t.Fatal("root ref lost")
	}
}

func TestSmallAllocPacksSlots(t *testing.T) {
	h := newHeap(t, 1<<20)
	bumpedBefore, _, _ := h.Stats()
	var refs []Ref
	for i := 0; i < 10; i++ {
		r, err := h.AllocSmall(5, 16)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, r)
	}
	bumpedAfter, _, _ := h.Stats()
	if bumpedAfter-bumpedBefore > 2 {
		t.Fatalf("10 x 16B objects consumed %d blocks; pooling broken", bumpedAfter-bumpedBefore)
	}
	seen := map[Ref]bool{}
	for _, r := range refs {
		if seen[r] {
			t.Fatal("duplicate slot handed out")
		}
		seen[r] = true
		if h.IsBlockRef(r) {
			t.Fatal("pooled ref is block aligned")
		}
		if h.ClassOf(r) != 5 {
			t.Fatalf("slot class = %d", h.ClassOf(r))
		}
		if h.Valid(r) {
			t.Fatal("fresh slot valid")
		}
		h.SetValid(r, true)
		if !h.Valid(r) {
			t.Fatal("slot validate failed")
		}
		if h.SlotPayloadLen(r) != 16 {
			t.Fatalf("slot len = %d", h.SlotPayloadLen(r))
		}
	}
}

func TestSmallAllocFreeReuse(t *testing.T) {
	h := newHeap(t, 1<<20)
	r, err := h.AllocSmall(5, 32)
	if err != nil {
		t.Fatal(err)
	}
	h.SetValid(r, true)
	h.FreeObject(r)
	if h.Valid(r) {
		t.Fatal("freed slot still valid")
	}
	r2, err := h.AllocSmall(6, 32)
	if err != nil {
		t.Fatal(err)
	}
	if r2 != r {
		t.Fatalf("slot not reused: %#x vs %#x", r2, r)
	}
}

func TestSmallAllocTooBigFallsOut(t *testing.T) {
	if FitsSmall(SlotPayloadMax) != true {
		t.Fatal("max payload should fit")
	}
	if FitsSmall(SlotPayloadMax + 1) {
		t.Fatal("oversized payload should not fit")
	}
	h := newHeap(t, 1<<20)
	if _, err := h.AllocSmall(1, SlotPayloadMax+1); err == nil {
		t.Fatal("oversized small alloc accepted")
	}
}

func TestMarkAndSweepReclaimsUnreachable(t *testing.T) {
	h := newHeap(t, 1<<20)
	live, _, _ := h.AllocObject(1, 2*Payload)
	h.SetValid(live, true)
	dead, _, _ := h.AllocObject(1, Payload)
	h.SetValid(dead, true)

	m := h.NewMarkSet()
	if !m.MarkObject(live) {
		t.Fatal("first mark should report new")
	}
	if m.MarkObject(live) {
		t.Fatal("second mark should report seen")
	}
	h.Sweep(m)

	if h.Header(dead) != 0 {
		t.Fatal("dead master header not cleared")
	}
	if !h.Valid(live) {
		t.Fatal("sweep damaged live object")
	}
	// All dead blocks are allocatable again.
	if _, _, err := h.AllocObject(1, Payload); err != nil {
		t.Fatal(err)
	}
}

func TestSweepShrinksBump(t *testing.T) {
	h := newHeap(t, 1<<20)
	live, _, _ := h.AllocObject(1, 8)
	h.SetValid(live, true)
	for i := 0; i < 50; i++ {
		h.AllocObject(1, 8)
	}
	m := h.NewMarkSet()
	m.MarkObject(live)
	h.Sweep(m)
	if b := h.Bump(); b != h.BlockIndex(live)+1 {
		t.Fatalf("bump = %d, want %d", b, h.BlockIndex(live)+1)
	}
}

func TestSweepReclaimsDeadSlots(t *testing.T) {
	h := newHeap(t, 1<<20)
	liveSlot, _ := h.AllocSmall(5, 16)
	h.SetValid(liveSlot, true)
	deadSlot, _ := h.AllocSmall(5, 16)
	h.SetValid(deadSlot, true)

	m := h.NewMarkSet()
	if !m.MarkObject(liveSlot) {
		t.Fatal("slot mark should be new")
	}
	if m.MarkObject(liveSlot) {
		t.Fatal("slot re-mark should be seen")
	}
	h.Sweep(m)

	if h.Valid(deadSlot) {
		t.Fatal("dead slot survived sweep")
	}
	if !h.Valid(liveSlot) {
		t.Fatal("live slot damaged by sweep")
	}
	// Dead slot must be reusable.
	r, err := h.AllocSmall(9, 16)
	if err != nil {
		t.Fatal(err)
	}
	if h.ContainingBlock(r) != h.ContainingBlock(liveSlot) {
		t.Fatal("sweep did not rebuild the slot free list for the live chunk")
	}
}

func TestSweepFreesEmptyChunks(t *testing.T) {
	h := newHeap(t, 1<<20)
	s, _ := h.AllocSmall(5, 16)
	chunk := h.ContainingBlock(s)
	m := h.NewMarkSet() // nothing live
	h.Sweep(m)
	if h.Header(chunk) != 0 {
		t.Fatal("empty chunk header not cleared")
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	h := newHeap(t, 1<<22)
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var mine []Ref
			for i := 0; i < 200; i++ {
				m, _, err := h.AllocObject(1, Payload*2)
				if err != nil {
					errCh <- err
					return
				}
				mine = append(mine, m)
				if i%3 == 0 {
					h.FreeObject(mine[0])
					mine = mine[1:]
				}
			}
			for _, m := range mine {
				h.FreeObject(m)
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	bumped, free, _ := h.Stats()
	if uint64(free) != bumped {
		t.Fatalf("leak: bumped %d blocks but only %d free", bumped, free)
	}
}

// Property: however objects are allocated and freed, no block is ever
// handed to two live objects.
func TestQuickNoDoubleAllocation(t *testing.T) {
	f := func(sizes []uint16, frees []uint8) bool {
		h := newHeap(t, 1<<20)
		owned := map[uint64]int{} // block index -> owner object seq
		var masters []Ref
		seq := 0
		for i, s := range sizes {
			if len(masters) > 0 && i < len(frees) && frees[i]%3 == 0 {
				victim := int(frees[i]) % len(masters)
				m := masters[victim]
				if m != 0 {
					for _, b := range h.Blocks(m) {
						delete(owned, h.BlockIndex(b))
					}
					h.FreeObject(m)
					masters[victim] = 0
				}
			}
			m, blocks, err := h.AllocObject(1, uint64(s%2048)+1)
			if err != nil {
				return true // OOM is acceptable
			}
			seq++
			for _, b := range blocks {
				idx := h.BlockIndex(b)
				if _, taken := owned[idx]; taken {
					return false
				}
				owned[idx] = seq
			}
			masters = append(masters, m)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBlocksFor(t *testing.T) {
	cases := map[uint64]int{0: 1, 1: 1, Payload: 1, Payload + 1: 2, 10 * Payload: 10}
	for size, want := range cases {
		if got := BlocksFor(size); got != want {
			t.Fatalf("BlocksFor(%d) = %d, want %d", size, got, want)
		}
	}
}

func TestInternalFragmentationAccounting(t *testing.T) {
	// §5.3.5: with 10 fields of 100 B, headers + internal fragmentation
	// cost ~21.2% per record; with 10 KB fields it drops to ~9.4%. Model a
	// YCSB record as one contiguous chained object holding the 10 field
	// values (this is how store.Record lays them out) and check the
	// overhead ballpark: (raw blocks - user bytes) / raw blocks.
	frag := func(fieldSize uint64) float64 {
		user := 10 * fieldSize
		raw := uint64(BlocksFor(user)) * BlockSize
		return float64(raw-user) / float64(raw)
	}
	small := frag(100)
	large := frag(10 * 1024)
	if small < 0.15 || small > 0.30 {
		t.Fatalf("100B-field fragmentation %.3f outside the paper's ~21%% band", small)
	}
	if large > small {
		t.Fatalf("fragmentation should shrink with field size: %.3f -> %.3f", small, large)
	}
	if large > 0.15 {
		t.Fatalf("10KB-field fragmentation %.3f too high", large)
	}
	fmt.Printf("fragmentation: 100B fields %.1f%%, 10KB fields %.1f%%\n", small*100, large*100)
}
