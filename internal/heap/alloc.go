package heap

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// freeList is the volatile free queue of §4.1.2. It is sharded to scale
// with the number of threads: pushes round-robin across shards, pops try
// the local shard then steal.
type freeList struct {
	shards [freeShards]struct {
		mu   sync.Mutex
		idxs []uint64
		_pad [40]byte // keep shards on distinct cache lines
	}
	rr atomic.Uint64
}

const freeShards = 16

func (f *freeList) init() {}

func (f *freeList) push(idx uint64) {
	s := &f.shards[f.rr.Add(1)%freeShards]
	s.mu.Lock()
	s.idxs = append(s.idxs, idx)
	s.mu.Unlock()
}

// pushAll returns a batch of block indices to the queue. Elements are
// striped round-robin across shards like push, but the shard lock is taken
// once per shard rather than once per element.
func (f *freeList) pushAll(idxs []uint64) {
	if len(idxs) == 0 {
		return
	}
	base := f.rr.Add(uint64(len(idxs)))
	for s := 0; s < freeShards && s < len(idxs); s++ {
		shard := &f.shards[(base+uint64(s))%freeShards]
		shard.mu.Lock()
		for i := s; i < len(idxs); i += freeShards {
			shard.idxs = append(shard.idxs, idxs[i])
		}
		shard.mu.Unlock()
	}
}

func (f *freeList) pop() (uint64, bool) {
	start := f.rr.Add(1)
	for i := uint64(0); i < freeShards; i++ {
		s := &f.shards[(start+i)%freeShards]
		s.mu.Lock()
		if n := len(s.idxs); n > 0 {
			idx := s.idxs[n-1]
			s.idxs = s.idxs[:n-1]
			s.mu.Unlock()
			return idx, true
		}
		s.mu.Unlock()
	}
	return 0, false
}

func (f *freeList) len() int {
	n := 0
	for i := range f.shards {
		f.shards[i].mu.Lock()
		n += len(f.shards[i].idxs)
		f.shards[i].mu.Unlock()
	}
	return n
}

// FreeBlocks returns the number of blocks currently in the volatile free
// queue (not counting never-allocated arena space).
func (h *Heap) FreeBlocks() int { return h.free.len() }

// ErrOutOfMemory is returned (wrapped) when the arena is exhausted.
var ErrOutOfMemory = fmt.Errorf("heap: out of NVMM")

// allocBlock grabs one free block index, preferring the free queue and
// falling back to the bump pointer. Per §4.1.2 this touches only volatile
// memory except for the persistent bump mirror, which needs no flush: the
// recovery procedure recomputes it from reachability.
func (h *Heap) allocBlock() (uint64, error) {
	if idx, ok := h.free.pop(); ok {
		h.stats.ReuseAllocs.Inc()
		return idx, nil
	}
	for {
		cur := h.bump.Load()
		if cur >= h.nBlocks {
			return 0, fmt.Errorf("%w: arena of %d blocks exhausted", ErrOutOfMemory, h.nBlocks)
		}
		if h.bump.CompareAndSwap(cur, cur+1) {
			// The persistent mirror is advisory (recovery recomputes the
			// bump from reachability), but the store itself must be
			// synchronized and monotonic: CAS winners can reach this
			// line out of order.
			h.bumpMu.Lock()
			if cur+1 > h.bumpMirror {
				h.bumpMirror = cur + 1
				h.pool.WriteUint64(sbBump, cur+1)
			}
			h.bumpMu.Unlock()
			h.stats.BumpAllocs.Inc()
			return cur, nil
		}
	}
}

// BlocksFor returns how many blocks an object of size data bytes occupies.
func BlocksFor(size uint64) int {
	if size == 0 {
		return 1
	}
	return int((size + Payload - 1) / Payload)
}

// AllocObject allocates the persistent data structure of an object: a
// chain of blocks able to hold size payload bytes, with the master block
// carrying classID in the *invalid* state (§4.1.4 — no fence is needed
// because an invalid master is dead at recovery). Payloads are zeroed so a
// later Validate publishes deterministic field values. Returns the master
// Ref and the full block list.
func (h *Heap) AllocObject(classID uint16, size uint64) (Ref, []Ref, error) {
	if classID == 0 {
		return 0, nil, fmt.Errorf("heap: class id 0 is reserved")
	}
	n := BlocksFor(size)
	idxs := make([]uint64, n)
	for i := range idxs {
		idx, err := h.allocBlock()
		if err != nil {
			// Return what we took; nothing persistent changed yet.
			h.free.pushAll(idxs[:i])
			return 0, nil, err
		}
		idxs[i] = idx
	}
	refs := make([]Ref, n)
	for i, idx := range idxs {
		refs[i] = h.BlockRef(idx)
	}
	for i := n - 1; i >= 0; i-- {
		next := uint64(0)
		if i+1 < n {
			next = idxs[i+1] + 1
		}
		id := uint16(0)
		if i == 0 {
			id = classID
		}
		h.WriteHeader(refs[i], PackHeader(id, false, next))
		h.pool.Zero(refs[i]+HeaderSize, Payload)
	}
	h.stats.ObjAllocs.Inc()
	return refs[0], refs, nil
}

// AllocRaw allocates a single raw block (used for in-flight copies by the
// failure-atomic machinery). Its header is zeroed: id 0, invalid — a slave
// or free block in the Table 2 taxonomy, so recovery reclaims it unless a
// committed log owns it.
func (h *Heap) AllocRaw() (Ref, error) {
	idx, err := h.allocBlock()
	if err != nil {
		return 0, err
	}
	r := h.BlockRef(idx)
	h.WriteHeader(r, 0)
	return r, nil
}

// FreeRaw returns a raw block to the volatile free queue.
func (h *Heap) FreeRaw(r Ref) {
	h.free.push(h.BlockIndex(r))
}

// FreeObject atomically deletes the object at master Ref r: the master is
// invalidated (flushed, not fenced — §4.1.5 lets the caller batch one
// fence over a whole graph of frees) and all blocks go back to the
// volatile free queue. Pooled slots are routed to the slot allocator.
// With EBR enabled the free is deferred past the readers' grace period
// (see ebr.go); until then the object stays valid-but-unreachable, which
// recovery reclaims after a crash.
func (h *Heap) FreeObject(r Ref) {
	if r == 0 {
		return
	}
	if h.ebr.enabled.Load() {
		h.retire(r)
		return
	}
	h.reclaim(r)
}

// Stats reports occupancy: blocks handed out from the arena top, blocks in
// the free queue, and total arena blocks.
func (h *Heap) Stats() (bumped, free, total uint64) {
	return h.bump.Load(), uint64(h.free.len()), h.nBlocks
}
