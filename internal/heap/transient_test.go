package heap

import (
	"testing"

	"repro/internal/nvm"
)

func TestTransientPoolRecycles(t *testing.T) {
	h, err := Format(nvm.New(1<<21, nvm.Options{}), Options{})
	if err != nil {
		t.Fatal(err)
	}
	tp := h.NewTransientPool(2)

	r1, reused, err := tp.Get()
	if err != nil {
		t.Fatal(err)
	}
	if reused {
		t.Fatal("first Get cannot reuse")
	}
	tp.Put(r1)
	r2, reused, err := tp.Get()
	if err != nil {
		t.Fatal(err)
	}
	if !reused || r2 != r1 {
		t.Fatalf("Get after Put returned %#x (reused=%v), want pooled %#x", r2, reused, r1)
	}
	if h.Obs().TransientReuse.Load() != 1 {
		t.Fatalf("TransientReuse = %d, want 1", h.Obs().TransientReuse.Load())
	}

	// Puts beyond capacity overflow to the shared free queue.
	r3, _, _ := tp.Get()
	r4, _, _ := tp.Get()
	tp.Put(r2)
	tp.Put(r3)
	tp.Put(r4)
	if tp.Len() != 2 {
		t.Fatalf("pool holds %d blocks, want capacity 2", tp.Len())
	}
	if h.FreeBlocks() != 1 {
		t.Fatalf("free queue holds %d blocks, want the 1 overflow", h.FreeBlocks())
	}

	tp.Drain()
	if tp.Len() != 0 || h.FreeBlocks() != 3 {
		t.Fatalf("after Drain: pool %d, free %d; want 0 and 3", tp.Len(), h.FreeBlocks())
	}
}

// TestPushAllSharding drains a batch larger than the shard count through
// pushAll and checks nothing is lost and everything pops back out.
func TestPushAllSharding(t *testing.T) {
	h, err := Format(nvm.New(1<<21, nvm.Options{}), Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 3*freeShards + 5
	tp := h.NewTransientPool(n)
	want := make(map[Ref]bool, n)
	for i := 0; i < n; i++ {
		r, _, err := tp.Get()
		if err != nil {
			t.Fatal(err)
		}
		want[r] = true
	}
	for r := range want {
		tp.Put(r)
	}
	tp.Drain()
	if got := h.FreeBlocks(); got != n {
		t.Fatalf("free queue holds %d blocks after batched pushAll, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		r, err := h.AllocRaw()
		if err != nil {
			t.Fatal(err)
		}
		if !want[r] {
			t.Fatalf("popped unexpected block %#x", r)
		}
		delete(want, r)
	}
	if len(want) != 0 {
		t.Fatalf("%d pushed blocks never popped back", len(want))
	}
}
