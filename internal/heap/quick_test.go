package heap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/nvm"
)

// Property tests over randomized object graphs and slot churn.

// TestQuickMarkSweepAccounting builds a random forest of objects, marks a
// random live subset (with all their blocks), sweeps, and checks the
// fundamental invariant: bump == free + live blocks, and every live
// object's data survives intact.
func TestQuickMarkSweepAccounting(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h, err := Format(nvm.New(1<<21, nvm.Options{}), Options{LogSlots: 2, LogSlotSize: 4096})
		if err != nil {
			t.Fatal(err)
		}
		type obj struct {
			ref  Ref
			size uint64
			tag  byte
		}
		var objs []obj
		n := 20 + rng.Intn(60)
		for i := 0; i < n; i++ {
			size := uint64(1 + rng.Intn(1000))
			ref, _, err := h.AllocObject(uint16(1+rng.Intn(100)), size)
			if err != nil {
				return true // OOM acceptable
			}
			tag := byte(rng.Intn(255) + 1)
			h.Pool().WriteUint8(ref+HeaderSize, tag)
			h.SetValid(ref, true)
			objs = append(objs, obj{ref, size, tag})
		}
		m := h.NewMarkSet()
		var live []obj
		for _, o := range objs {
			if rng.Intn(2) == 0 {
				m.MarkObject(o.ref)
				live = append(live, o)
			}
		}
		h.Sweep(m)
		bumped, free, _ := h.Stats()
		liveBlocks := uint64(0)
		for _, o := range live {
			liveBlocks += uint64(len(h.Blocks(o.ref)))
			if h.Pool().ReadUint8(o.ref+HeaderSize) != o.tag {
				return false // live data damaged
			}
			if !h.Valid(o.ref) {
				return false
			}
		}
		return bumped == free+liveBlocks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSlotChurn hammers the pool allocator with random alloc/free
// cycles across size classes: no slot is ever handed to two live objects
// and freed slots always come back.
func TestQuickSlotChurn(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h, err := Format(nvm.New(1<<20, nvm.Options{}), Options{LogSlots: 2, LogSlotSize: 4096})
		if err != nil {
			t.Fatal(err)
		}
		liveSet := map[Ref]bool{}
		var liveList []Ref
		for i := 0; i < 400; i++ {
			if len(liveList) > 0 && rng.Intn(3) == 0 {
				idx := rng.Intn(len(liveList))
				r := liveList[idx]
				h.FreeObject(r)
				delete(liveSet, r)
				liveList[idx] = liveList[len(liveList)-1]
				liveList = liveList[:len(liveList)-1]
				continue
			}
			payload := uint64(1 + rng.Intn(SlotPayloadMax))
			r, err := h.AllocSmall(uint16(1+rng.Intn(50)), payload)
			if err != nil {
				return true
			}
			if liveSet[r] {
				return false // double allocation of a live slot
			}
			liveSet[r] = true
			liveList = append(liveList, r)
			h.SetValid(r, true)
		}
		// Every live slot still valid and class-readable.
		for r := range liveSet {
			if !h.Valid(r) || h.ClassOf(r) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentSmallAlloc(t *testing.T) {
	h, err := Format(nvm.New(1<<22, nvm.Options{}), Options{LogSlots: 2, LogSlotSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	results := make([][]Ref, workers)
	done := make(chan int, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			var mine []Ref
			for i := 0; i < 500; i++ {
				r, err := h.AllocSmall(3, 32)
				if err != nil {
					break
				}
				mine = append(mine, r)
				if i%4 == 0 {
					h.FreeObject(mine[0])
					mine = mine[1:]
				}
			}
			results[w] = mine
			done <- w
		}(w)
	}
	for i := 0; i < workers; i++ {
		<-done
	}
	seen := map[Ref]bool{}
	for _, mine := range results {
		for _, r := range mine {
			if seen[r] {
				t.Fatalf("slot %#x owned by two workers", r)
			}
			seen[r] = true
		}
	}
}
