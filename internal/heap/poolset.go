package heap

import "fmt"

// Multi-pool sharding (DESIGN.md §17). A Ref is a pool-local offset, so a
// sharded heap is a set of fully independent pools: each one carries its
// own allocator (bump pointer, free queue, small-object pools), its own
// transient pools and its own EBR domain. Nothing here crosses pools —
// routing a key to its home pool is pure arithmetic on the key hash, and
// the object layers above (core, fa, store) stack per pool.

// KeyHash hashes a record key for pool routing (FNV-1a 64, inlined like
// the grid's stripe hash so routing stays allocation-free). It is
// deliberately a different function from the grid's 32-bit stripe hash:
// pool residency and lock striping must not correlate, or one pool's keys
// would collide onto a subset of the grid's stripes.
func KeyHash(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

// JumpHash is Lamping-Veach jump consistent hashing: it maps hash to a
// bucket in [0, n) such that growing n to n+1 only moves keys into the
// new bucket (monotone growth), which is exactly the property the online
// pool-addition migration relies on — no key ever moves between two
// pre-existing pools.
func JumpHash(hash uint64, n int) int {
	if n <= 1 {
		return 0
	}
	var b, j int64 = -1, 0
	for j < int64(n) {
		b = j
		hash = hash*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((hash>>33)+1)))
	}
	return int(b)
}

// PoolSet is an ordered collection of per-shard heaps. It owns no
// persistent state of its own — the membership epoch table lives above it
// (package shard keeps it in pool 0, mutated under J-PFA transactions) —
// but it validates that the pools handed to it were formatted as the set
// positions they claim, and centralizes the routing arithmetic.
type PoolSet struct {
	heaps []*Heap
}

// NewPoolSet assembles a set from heaps in pool-index order. Each heap's
// superblock must either record the matching (index, count≥index) or be a
// legacy 0/0 image in position 0 — the byte-compatibility contract: any
// pre-sharding heap is a valid 1-pool set.
func NewPoolSet(heaps []*Heap) (*PoolSet, error) {
	if len(heaps) == 0 {
		return nil, fmt.Errorf("heap: empty pool set")
	}
	for i, h := range heaps {
		idx, cnt := h.PoolIndex(), h.PoolCount()
		if idx == 0 && cnt == 0 {
			if i != 0 {
				return nil, fmt.Errorf("heap: standalone (unindexed) pool passed as set position %d", i)
			}
			continue
		}
		if idx != i {
			return nil, fmt.Errorf("heap: pool formatted as index %d passed as set position %d", idx, i)
		}
		if cnt < idx+1 {
			return nil, fmt.Errorf("heap: pool %d records impossible set size %d", idx, cnt)
		}
	}
	return &PoolSet{heaps: heaps}, nil
}

// Len returns the number of pools in the set.
func (ps *PoolSet) Len() int { return len(ps.heaps) }

// At returns the heap of pool i.
func (ps *PoolSet) At(i int) *Heap { return ps.heaps[i] }

// Home routes a key hash to its pool under an n-pool epoch (n ≤ Len; the
// caller picks n from the epoch table, which may lag Len mid-migration).
func (ps *PoolSet) Home(hash uint64, n int) int {
	if n > len(ps.heaps) {
		panic(fmt.Sprintf("heap: routing over %d pools but set holds %d", n, len(ps.heaps)))
	}
	return JumpHash(hash, n)
}

// Append grows the set by one opened heap (online pool addition). The
// heap must have been formatted as the next index.
func (ps *PoolSet) Append(h *Heap) error {
	if idx := h.PoolIndex(); idx != len(ps.heaps) {
		return fmt.Errorf("heap: pool formatted as index %d appended as position %d", idx, len(ps.heaps))
	}
	ps.heaps = append(ps.heaps, h)
	return nil
}

// Stats aggregates the per-pool allocator gauges in pool order.
func (ps *PoolSet) Stats() (bumped, free, total uint64) {
	for _, h := range ps.heaps {
		b, f, t := h.Stats()
		bumped += b
		free += f
		total += t
	}
	return
}
