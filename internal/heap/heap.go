// Package heap implements the persistent block heap of J-NVM (§4.1).
//
// The pool is split into fixed-size 256 B blocks, like the blocks of a file
// system, which eliminates external fragmentation by design: any object can
// always be allocated as a linked list of blocks. Each block starts with a
// one-word header encoding the states of Table 2 of the paper:
//
//	id (15 bits) | valid (1 bit) | next (48 bits)
//
//	id != 0, any valid  -> master block of an object of class id
//	id == 0, valid == 0 -> slave block, or free
//
// Allocation uses a bump pointer plus a volatile free queue; neither needs
// fences because a freshly allocated master block is always invalid, and
// the recovery procedure rebuilds the free queue from reachability (§4.1.3).
//
// Small immutable objects are packed several to a block by pool allocators
// (§4.4); see small.go.
package heap

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/nvm"
	"repro/internal/obs"
)

// Ref is a persistent reference: the pool offset of an object's master
// block (block-aligned) or of a pooled slot (interior offset). The zero Ref
// is the persistent null. Storing offsets rather than addresses keeps the
// heap relocatable (§4.4).
type Ref = uint64

const (
	// BlockSize is the size of a heap block. 256 B matches the internal
	// write granularity of Optane DIMMs, which §5.3.5 measures to be the
	// best-performing choice.
	BlockSize = 256
	// HeaderSize is the size of the per-block header word.
	HeaderSize = 8
	// Payload is the usable bytes per block.
	Payload = BlockSize - HeaderSize

	magic   = 0x31304d564e4a4f47 // "GOJNVM01", little-endian
	version = 1

	superblockSize = 4096

	// Class-table geometry: fixed region of classCap 64-byte entries.
	classCap       = 1024
	classEntrySize = 64
	classNameMax   = classEntrySize - 2

	// Superblock field offsets.
	sbMagic       = 0
	sbVersion     = 8
	sbPoolSize    = 16
	sbBlockSize   = 24
	sbBump        = 32 // persistent mirror of the bump pointer (block index)
	sbClassOff    = 40
	sbArenaOff    = 48
	sbNBlocks     = 56
	sbRootRef     = 64
	sbLogOff      = 72
	sbLogSlots    = 80
	sbLogSlotSize = 88
	// Pool-topology fields (multi-pool sharding, DESIGN.md §17). Both are
	// zero on heaps formatted before sharding existed, which decodes as
	// "pool 0 of a 1-pool set" — old images stay openable byte-for-byte.
	sbPoolIndex = 96
	sbPoolCount = 104
)

// Header-word packing.
const (
	nextMask   = (1 << 48) - 1
	validBit   = 1 << 48
	classShift = 49
)

// PackHeader builds a block-header word. nextIdx is the arena index of the
// next block plus one (0 means "no next block").
func PackHeader(classID uint16, valid bool, nextIdx uint64) uint64 {
	if classID >= 1<<15 {
		panic("heap: class id overflows 15 bits")
	}
	if nextIdx > nextMask {
		panic("heap: next index overflows 48 bits")
	}
	h := uint64(classID)<<classShift | nextIdx
	if valid {
		h |= validBit
	}
	return h
}

// UnpackHeader splits a block-header word.
func UnpackHeader(h uint64) (classID uint16, valid bool, nextIdx uint64) {
	return uint16(h >> classShift), h&validBit != 0, h & nextMask
}

// Options configures Format.
type Options struct {
	// LogSlots is the number of persistent redo-log slots reserved for
	// failure-atomic blocks (one per concurrent transaction).
	LogSlots int
	// LogSlotSize is the byte size of each redo-log slot.
	LogSlotSize int
	// PoolIndex/PoolCount record the pool's position in a multi-pool set
	// (DESIGN.md §17). Leave both zero for a standalone heap; a PoolSet
	// treats 0/0 as "pool 0 of 1" so pre-sharding images keep opening.
	PoolIndex int
	PoolCount int
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.LogSlots == 0 {
		out.LogSlots = 64
	}
	if out.LogSlotSize == 0 {
		out.LogSlotSize = 1 << 14
	}
	return out
}

// Heap is a persistent block heap over an nvm.Pool.
type Heap struct {
	pool *nvm.Pool

	classOff    uint64
	arenaOff    uint64
	nBlocks     uint64
	logOff      uint64
	logSlots    int
	logSlotSize int

	bump atomic.Uint64 // next never-allocated block index
	free freeList

	bumpMu     sync.Mutex // serializes the persistent bump-mirror store
	bumpMirror uint64     // highest value written to the mirror

	classMu     sync.RWMutex
	classByName map[string]uint16
	classNames  []string // index id-1

	small smallAllocator

	ebr ebrState // deferred reclamation for lock-free readers (ebr.go)

	stats obs.HeapStats // allocator counters (object, small-pool, block source)
}

// Format initializes a pool as an empty heap and returns it opened. Any
// previous content is destroyed.
func Format(pool *nvm.Pool, opts Options) (*Heap, error) {
	opts = opts.withDefaults()
	classOff := uint64(superblockSize)
	logOff := classOff + classCap*classEntrySize
	arenaOff := (logOff + uint64(opts.LogSlots*opts.LogSlotSize) + BlockSize - 1) &^ (BlockSize - 1)
	if arenaOff+BlockSize > pool.Size() {
		return nil, fmt.Errorf("heap: pool of %d bytes too small (need > %d)", pool.Size(), arenaOff)
	}
	nBlocks := (pool.Size() - arenaOff) / BlockSize

	pool.Zero(0, arenaOff) // superblock, class table, log area
	pool.WriteUint64(sbVersion, version)
	pool.WriteUint64(sbPoolSize, pool.Size())
	pool.WriteUint64(sbBlockSize, BlockSize)
	pool.WriteUint64(sbBump, 0)
	pool.WriteUint64(sbClassOff, classOff)
	pool.WriteUint64(sbArenaOff, arenaOff)
	pool.WriteUint64(sbNBlocks, nBlocks)
	pool.WriteUint64(sbRootRef, 0)
	pool.WriteUint64(sbLogOff, logOff)
	pool.WriteUint64(sbLogSlots, uint64(opts.LogSlots))
	pool.WriteUint64(sbLogSlotSize, uint64(opts.LogSlotSize))
	pool.WriteUint64(sbPoolIndex, uint64(opts.PoolIndex))
	pool.WriteUint64(sbPoolCount, uint64(opts.PoolCount))
	// The magic goes in last: a torn format attempt stays unopenable.
	pool.PWBRange(0, superblockSize)
	pool.PFence()
	pool.WriteUint64(sbMagic, magic)
	pool.PWB(sbMagic)
	pool.PSync()
	return Open(pool)
}

// Open attaches to an already formatted pool. It does not run recovery;
// that is the job of the object layer (package core), which owns the
// reachability graph.
func Open(pool *nvm.Pool) (*Heap, error) {
	if pool.Size() < superblockSize || pool.ReadUint64(sbMagic) != magic {
		return nil, fmt.Errorf("heap: pool is not a formatted J-NVM heap")
	}
	if v := pool.ReadUint64(sbVersion); v != version {
		return nil, fmt.Errorf("heap: version %d not supported (want %d)", v, version)
	}
	if got := pool.ReadUint64(sbPoolSize); got != pool.Size() {
		return nil, fmt.Errorf("heap: pool size %d does not match formatted size %d", pool.Size(), got)
	}
	h := &Heap{
		pool:        pool,
		classOff:    pool.ReadUint64(sbClassOff),
		arenaOff:    pool.ReadUint64(sbArenaOff),
		nBlocks:     pool.ReadUint64(sbNBlocks),
		logOff:      pool.ReadUint64(sbLogOff),
		logSlots:    int(pool.ReadUint64(sbLogSlots)),
		logSlotSize: int(pool.ReadUint64(sbLogSlotSize)),
		classByName: make(map[string]uint16),
	}
	h.bump.Store(pool.ReadUint64(sbBump))
	h.bumpMirror = pool.ReadUint64(sbBump)
	h.free.init()
	h.small.init(h)
	h.loadClassTable()
	return h, nil
}

// Pool returns the underlying NVMM pool.
func (h *Heap) Pool() *nvm.Pool { return h.pool }

// PoolIndex returns the pool's recorded position in its multi-pool set
// (0 for standalone heaps and for images formatted before sharding).
func (h *Heap) PoolIndex() int { return int(h.pool.ReadUint64(sbPoolIndex)) }

// PoolCount returns the set size recorded at format time (0 decodes as a
// standalone single-pool heap).
func (h *Heap) PoolCount() int { return int(h.pool.ReadUint64(sbPoolCount)) }

// NBlocks returns the arena capacity in blocks.
func (h *Heap) NBlocks() uint64 { return h.nBlocks }

// Bump returns the current bump pointer (blocks ever allocated from the
// arena top).
func (h *Heap) Bump() uint64 { return h.bump.Load() }

// LogArea returns the offset, slot count and slot size of the persistent
// redo-log region reserved for failure-atomic blocks.
func (h *Heap) LogArea() (off uint64, slots, slotSize int) {
	return h.logOff, h.logSlots, h.logSlotSize
}

// Obs exposes the heap's allocator counters to the observability layer.
func (h *Heap) Obs() *obs.HeapStats { return &h.stats }

// ObsSnapshot captures the allocator counters together with the
// point-in-time gauges (bump high-water, free-queue depth, capacity).
func (h *Heap) ObsSnapshot() obs.HeapSnapshot {
	return h.stats.Snapshot(h.bump.Load(), uint64(h.free.len()), h.nBlocks)
}

// RootRef returns the persistent root-map reference recorded in the
// superblock (0 if none was ever published).
func (h *Heap) RootRef() Ref { return h.pool.ReadUint64(sbRootRef) }

// SetRootRef durably publishes the root-map reference. This happens once
// per heap lifetime, so it pays a full flush+fence.
func (h *Heap) SetRootRef(r Ref) {
	h.pool.WriteUint64(sbRootRef, r)
	h.pool.PWB(sbRootRef)
	h.pool.PSync()
}

// ---- Geometry helpers ----

// BlockIndex converts a block-aligned Ref to its arena index.
func (h *Heap) BlockIndex(r Ref) uint64 {
	if r < h.arenaOff || (r-h.arenaOff)%BlockSize != 0 {
		panic(fmt.Sprintf("heap: ref %#x is not a block ref", r))
	}
	return (r - h.arenaOff) / BlockSize
}

// BlockRef converts an arena index to a block-aligned Ref.
func (h *Heap) BlockRef(idx uint64) Ref {
	if idx >= h.nBlocks {
		panic(fmt.Sprintf("heap: block index %d out of arena (%d blocks)", idx, h.nBlocks))
	}
	return h.arenaOff + idx*BlockSize
}

// IsBlockRef reports whether r points at a block header (as opposed to a
// pooled-slot interior offset).
func (h *Heap) IsBlockRef(r Ref) bool {
	return r >= h.arenaOff && (r-h.arenaOff)%BlockSize == 0
}

// ContainingBlock returns the Ref of the block containing the (possibly
// interior) offset r.
func (h *Heap) ContainingBlock(r Ref) Ref {
	if r < h.arenaOff {
		panic(fmt.Sprintf("heap: offset %#x below arena", r))
	}
	return r - (r-h.arenaOff)%BlockSize
}

// Header reads the header word of the block at r.
func (h *Heap) Header(r Ref) uint64 { return h.pool.ReadUint64(r) }

// WriteHeader stores the header word of the block at r. It does not flush;
// callers decide when the state change must become durable.
func (h *Heap) WriteHeader(r Ref, hdr uint64) { h.pool.WriteUint64(r, hdr) }

// ClassOf returns the class id in the master-block header at r. For pooled
// slots it reads the slot mini-header instead.
func (h *Heap) ClassOf(r Ref) uint16 {
	if h.IsBlockRef(r) {
		id, _, _ := UnpackHeader(h.Header(r))
		return id
	}
	return slotClass(h.pool.ReadUint64(r))
}

// Valid reports the valid bit of the object at r (master block or pooled
// slot).
func (h *Heap) Valid(r Ref) bool {
	if r == 0 {
		return false
	}
	if h.IsBlockRef(r) {
		_, v, _ := UnpackHeader(h.Header(r))
		return v
	}
	return slotValid(h.pool.ReadUint64(r))
}

// SetValid flips the valid bit of the object at r and flushes the header
// line. No fence is issued: batching the fence across several validations
// is exactly the low-level optimization of §3.2.3.
func (h *Heap) SetValid(r Ref, v bool) {
	if h.IsBlockRef(r) {
		id, _, next := UnpackHeader(h.Header(r))
		h.WriteHeader(r, PackHeader(id, v, next))
	} else {
		hdr := h.pool.ReadUint64(r)
		h.pool.WriteUint64(r, setSlotValid(hdr, v))
	}
	h.pool.PWB(r)
}

// SetValidDeferred flips the valid bit like SetValid but does not flush:
// born-valid constructors (DESIGN.md §16) set the bit before their single
// whole-extent flush, folding the header write-back into the payload's.
func (h *Heap) SetValidDeferred(r Ref, v bool) {
	if h.IsBlockRef(r) {
		id, _, next := UnpackHeader(h.Header(r))
		h.WriteHeader(r, PackHeader(id, v, next))
		return
	}
	hdr := h.pool.ReadUint64(r)
	h.pool.WriteUint64(r, setSlotValid(hdr, v))
}

// Blocks walks the next-chain starting at master block r and returns the
// refs of all blocks of the object, master first.
func (h *Heap) Blocks(r Ref) []Ref {
	var out []Ref
	cur := r
	for {
		out = append(out, cur)
		_, _, next := UnpackHeader(h.Header(cur))
		if next == 0 {
			return out
		}
		cur = h.BlockRef(next - 1)
	}
}

// ---- Class table ----

func (h *Heap) classEntryOff(id uint16) uint64 {
	return h.classOff + uint64(id-1)*classEntrySize
}

func (h *Heap) loadClassTable() {
	for i := uint16(1); i <= classCap; i++ {
		off := h.classEntryOff(i)
		n := h.pool.ReadUint16(off)
		if n == 0 {
			break
		}
		name := string(h.pool.ReadBytes(off+2, uint64(n)))
		h.classByName[name] = i
		h.classNames = append(h.classNames, name)
	}
}

// RegisterClass assigns (or retrieves) the stable persistent id of a class
// name. Ids are stored in a persistent table so that resurrection works
// across restarts (§3.1). Registration is rare, so it pays a full fence.
func (h *Heap) RegisterClass(name string) (uint16, error) {
	if name == "" || len(name) > classNameMax {
		return 0, fmt.Errorf("heap: invalid class name %q (1-%d bytes)", name, classNameMax)
	}
	h.classMu.Lock()
	defer h.classMu.Unlock()
	if id, ok := h.classByName[name]; ok {
		return id, nil
	}
	if len(h.classNames) >= classCap {
		return 0, fmt.Errorf("heap: class table full (%d classes)", classCap)
	}
	id := uint16(len(h.classNames) + 1)
	off := h.classEntryOff(id)
	h.pool.WriteBytes(off+2, []byte(name))
	h.pool.PWBRange(off+2, uint64(len(name)))
	h.pool.PFence()
	// Length last: a torn registration leaves the entry unused.
	h.pool.WriteUint16(off, uint16(len(name)))
	h.pool.PWB(off)
	h.pool.PSync()
	h.classByName[name] = id
	h.classNames = append(h.classNames, name)
	return id, nil
}

// ClassName resolves a persistent class id to its registered name.
func (h *Heap) ClassName(id uint16) (string, bool) {
	h.classMu.RLock()
	defer h.classMu.RUnlock()
	if id == 0 || int(id) > len(h.classNames) {
		return "", false
	}
	return h.classNames[id-1], true
}

// ClassID looks up a registered class by name.
func (h *Heap) ClassID(name string) (uint16, bool) {
	h.classMu.RLock()
	defer h.classMu.RUnlock()
	id, ok := h.classByName[name]
	return id, ok
}
