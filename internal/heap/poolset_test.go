package heap

import (
	"fmt"
	"testing"

	"repro/internal/nvm"
)

func TestJumpHashRange(t *testing.T) {
	for n := 1; n <= 9; n++ {
		for k := uint64(0); k < 2000; k++ {
			h := KeyHash(fmt.Sprintf("user%d", k))
			b := JumpHash(h, n)
			if b < 0 || b >= n {
				t.Fatalf("JumpHash(%d, %d) = %d out of range", h, n, b)
			}
		}
	}
}

func TestJumpHashMonotoneGrowth(t *testing.T) {
	// Growing n -> n+1 may only move keys INTO the new bucket. No key may
	// move between two pre-existing buckets — that is the property online
	// pool addition relies on.
	for n := 1; n < 8; n++ {
		moved, total := 0, 0
		for k := uint64(0); k < 4000; k++ {
			h := KeyHash(fmt.Sprintf("rec-%d", k))
			before, after := JumpHash(h, n), JumpHash(h, n+1)
			if before != after {
				if after != n {
					t.Fatalf("key %d moved %d -> %d growing %d -> %d pools (not the new pool)",
						k, before, after, n, n+1)
				}
				moved++
			}
			total++
		}
		// Expected move fraction is 1/(n+1); allow generous slack.
		frac := float64(moved) / float64(total)
		want := 1.0 / float64(n+1)
		if frac < want/2 || frac > want*2 {
			t.Fatalf("growth %d->%d moved %.3f of keys, want ~%.3f", n, n+1, frac, want)
		}
	}
}

func TestJumpHashBalance(t *testing.T) {
	const n, keys = 4, 8000
	var counts [n]int
	for k := 0; k < keys; k++ {
		counts[JumpHash(KeyHash(fmt.Sprintf("user%08d", k)), n)]++
	}
	for i, c := range counts {
		if c < keys/n/2 || c > keys/n*2 {
			t.Fatalf("pool %d got %d of %d keys (counts %v)", i, c, keys, counts)
		}
	}
}

func testHeapWithIndex(t *testing.T, idx, cnt int) *Heap {
	t.Helper()
	pool := nvm.New(1<<20, nvm.Options{})
	h, err := Format(pool, Options{
		LogSlots: 4, LogSlotSize: 1 << 12,
		PoolIndex: idx, PoolCount: cnt,
	})
	if err != nil {
		t.Fatalf("format: %v", err)
	}
	return h
}

func TestPoolIndexPersisted(t *testing.T) {
	pool := nvm.New(1<<20, nvm.Options{})
	h, err := Format(pool, Options{LogSlots: 4, LogSlotSize: 1 << 12, PoolIndex: 3, PoolCount: 8})
	if err != nil {
		t.Fatalf("format: %v", err)
	}
	if h.PoolIndex() != 3 || h.PoolCount() != 8 {
		t.Fatalf("fresh heap reports %d/%d, want 3/8", h.PoolIndex(), h.PoolCount())
	}
	re, err := Open(pool)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if re.PoolIndex() != 3 || re.PoolCount() != 8 {
		t.Fatalf("reopened heap reports %d/%d, want 3/8", re.PoolIndex(), re.PoolCount())
	}
}

func TestLegacyHeapIsPoolZero(t *testing.T) {
	// A heap formatted without pool options must decode as pool 0 of a
	// standalone set — the byte-compat contract for pre-sharding images.
	pool := nvm.New(1<<20, nvm.Options{})
	h, err := Format(pool, Options{LogSlots: 4, LogSlotSize: 1 << 12})
	if err != nil {
		t.Fatalf("format: %v", err)
	}
	if h.PoolIndex() != 0 || h.PoolCount() != 0 {
		t.Fatalf("legacy heap reports %d/%d, want 0/0", h.PoolIndex(), h.PoolCount())
	}
	if _, err := NewPoolSet([]*Heap{h}); err != nil {
		t.Fatalf("legacy heap rejected as 1-pool set: %v", err)
	}
}

func TestNewPoolSetValidation(t *testing.T) {
	if _, err := NewPoolSet(nil); err == nil {
		t.Fatal("empty set accepted")
	}
	// Mismatched index must be rejected.
	wrong := testHeapWithIndex(t, 2, 4)
	if _, err := NewPoolSet([]*Heap{wrong}); err == nil {
		t.Fatal("pool with index 2 accepted at position 0")
	}
	// Proper 3-pool set.
	var hs []*Heap
	for i := 0; i < 3; i++ {
		hs = append(hs, testHeapWithIndex(t, i, 3))
	}
	ps, err := NewPoolSet(hs)
	if err != nil {
		t.Fatalf("valid set rejected: %v", err)
	}
	if ps.Len() != 3 {
		t.Fatalf("Len = %d, want 3", ps.Len())
	}
	// Append requires the next index.
	bad := testHeapWithIndex(t, 5, 6)
	if err := ps.Append(bad); err == nil {
		t.Fatal("append of index-5 pool to 3-pool set accepted")
	}
	next := testHeapWithIndex(t, 3, 4)
	if err := ps.Append(next); err != nil {
		t.Fatalf("append of index-3 pool rejected: %v", err)
	}
	if ps.Len() != 4 || ps.At(3) != next {
		t.Fatal("appended pool not reachable")
	}
}

func TestPoolSetHome(t *testing.T) {
	var hs []*Heap
	for i := 0; i < 4; i++ {
		hs = append(hs, testHeapWithIndex(t, i, 4))
	}
	ps, err := NewPoolSet(hs)
	if err != nil {
		t.Fatalf("set: %v", err)
	}
	for k := 0; k < 200; k++ {
		h := KeyHash(fmt.Sprintf("user%d", k))
		// Routing under a lagging epoch (n < Len) must be permitted: the
		// epoch table trails the physical set during migration.
		for n := 1; n <= 4; n++ {
			if got, want := ps.Home(h, n), JumpHash(h, n); got != want {
				t.Fatalf("Home(%d, %d) = %d, want %d", h, n, got, want)
			}
		}
	}
}
