package heap

import "fmt"

// Fsck verifies the structural invariants of the persistent heap, the way
// a file-system checker verifies a disk. It is read-only and reports every
// violation through report. The returned count is the number of issues.
//
// Checked invariants:
//
//   - every block header is well-formed: the class id is registered (or 0,
//     or the pool-chunk id), and the next index is in bounds;
//   - object chains are acyclic, stay in bounds, and never include another
//     master block;
//   - no block belongs to two chains;
//   - pool chunks carry a known size class, and every valid slot has a
//     registered class and a payload length that fits its slot.
func (h *Heap) Fsck(report func(msg string)) int {
	issues := 0
	complain := func(format string, args ...any) {
		issues++
		if report != nil {
			report(fmt.Sprintf(format, args...))
		}
	}

	owner := make(map[uint64]uint64) // block index -> owning master index
	for idx := uint64(0); idx < h.nBlocks; idx++ {
		r := h.BlockRef(idx)
		hdr := h.Header(r)
		if hdr == 0 {
			continue
		}
		id, valid, next := UnpackHeader(hdr)
		if next > h.nBlocks {
			complain("block %d: next index %d out of arena (%d blocks)", idx, next, h.nBlocks)
			continue
		}
		switch {
		case id == PoolChunkClass:
			h.fsckChunk(idx, r, valid, next, complain)
		case id != 0:
			if _, ok := h.ClassName(id); !ok {
				complain("block %d: master of unregistered class id %d", idx, id)
			}
			h.fsckChain(idx, owner, complain)
		default:
			// id 0: slave or free; ownership is checked from its master.
		}
	}
	return issues
}

func (h *Heap) fsckChain(master uint64, owner map[uint64]uint64, complain func(string, ...any)) {
	seen := map[uint64]bool{}
	cur := master
	for {
		if seen[cur] {
			complain("object at block %d: cyclic chain through block %d", master, cur)
			return
		}
		seen[cur] = true
		if prev, taken := owner[cur]; taken {
			complain("block %d claimed by masters %d and %d", cur, prev, master)
			return
		}
		owner[cur] = master
		id, _, next := UnpackHeader(h.Header(h.BlockRef(cur)))
		if cur != master && id != 0 {
			complain("object at block %d: chain includes non-slave block %d (class %d)", master, cur, id)
			return
		}
		if next == 0 {
			return
		}
		if next-1 >= h.nBlocks {
			complain("object at block %d: next %d out of arena", master, next-1)
			return
		}
		cur = next - 1
	}
}

func (h *Heap) fsckChunk(idx uint64, r Ref, valid bool, sc uint64, complain func(string, ...any)) {
	if !valid {
		complain("pool chunk at block %d is invalid (chunks are created valid)", idx)
	}
	if int(sc) >= len(SlotSizes) {
		complain("pool chunk at block %d: unknown size class %d", idx, sc)
		return
	}
	size := uint64(SlotSizes[sc])
	for s := uint64(0); s+size <= Payload; s += size {
		slot := r + HeaderSize + s
		hdr := h.pool.ReadUint64(slot)
		if hdr == 0 {
			continue
		}
		if !slotValid(hdr) {
			continue // allocated-but-unvalidated slot: legal transient state
		}
		id := slotClass(hdr)
		if _, ok := h.ClassName(id); !ok {
			complain("chunk %d slot +%d: unregistered class id %d", idx, s, id)
		}
		if uint64(slotLen(hdr)) > size-8 {
			complain("chunk %d slot +%d: payload length %d exceeds slot payload %d",
				idx, s, slotLen(hdr), size-8)
		}
	}
}
