package pdt

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fa"
	"repro/internal/heap"
	"repro/internal/nvm"
)

func openPDT(t testing.TB, size int, tracked bool) (*core.Heap, *fa.Manager, *nvm.Pool) {
	t.Helper()
	pool := nvm.New(size, nvm.Options{Tracked: tracked})
	return reopenPDT(t, pool)
}

func reopenPDT(t testing.TB, pool *nvm.Pool) (*core.Heap, *fa.Manager, *nvm.Pool) {
	t.Helper()
	mgr := fa.NewManager()
	h, err := core.Open(pool, core.Config{
		HeapOptions: heap.Options{LogSlots: 4, LogSlotSize: 1 << 14},
		Classes:     Classes(),
		LogHandler:  mgr,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h, mgr, pool
}

func TestPStringSmallAndLarge(t *testing.T) {
	h, _, _ := openPDT(t, 1<<21, false)
	small, err := NewString(h, "hello, NVMM!")
	if err != nil {
		t.Fatal(err)
	}
	if small.Value() != "hello, NVMM!" || small.Len() != 12 {
		t.Fatalf("small string: %q/%d", small.Value(), small.Len())
	}
	if h.Mem().IsBlockRef(small.Ref()) {
		t.Fatal("small string not pool-allocated")
	}
	if !small.Equals("hello, NVMM!") || small.Equals("hello") || small.Equals("hello, nvmm?") {
		t.Fatal("Equals broken")
	}
	if fmt.Sprint(small) != "hello, NVMM!" {
		t.Fatal("Stringer broken")
	}

	big, err := NewString(h, strings.Repeat("x", 1000))
	if err != nil {
		t.Fatal(err)
	}
	if !h.Mem().IsBlockRef(big.Ref()) {
		t.Fatal("large string should be block-allocated")
	}
	if big.Len() != 1000 || big.Value() != strings.Repeat("x", 1000) {
		t.Fatal("large string content")
	}
}

func TestPStringSurvivesReopen(t *testing.T) {
	h, _, pool := openPDT(t, 1<<21, false)
	s, _ := NewString(h, "durable")
	if err := h.Root().Put("s", s); err != nil {
		t.Fatal(err)
	}
	h2, _, _ := reopenPDT(t, pool)
	po, err := h2.Root().Get("s")
	if err != nil {
		t.Fatal(err)
	}
	if po.(*PString).Value() != "durable" {
		t.Fatal("string content lost")
	}
}

func TestPBytesRoundTrip(t *testing.T) {
	h, _, _ := openPDT(t, 1<<21, false)
	data := []byte{0, 1, 2, 255, 254, 7}
	b, err := NewBytes(h, data)
	if err != nil {
		t.Fatal(err)
	}
	got := b.Value()
	if len(got) != len(data) {
		t.Fatalf("len %d", len(got))
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d: %d vs %d", i, got[i], data[i])
		}
	}
	big, _ := NewBytes(h, make([]byte, 5000))
	if big.Len() != 5000 {
		t.Fatal("large bytes")
	}
}

func TestPLongArray(t *testing.T) {
	h, _, pool := openPDT(t, 1<<21, false)
	a, err := NewLongArray(h, 100)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 100 {
		t.Fatalf("Len = %d", a.Len())
	}
	for i := 0; i < 100; i++ {
		a.Set(i, int64(i*i)-50)
		a.FlushElem(i)
	}
	a.Flush()
	if err := h.Root().Put("arr", a); err != nil {
		t.Fatal(err)
	}
	h2, _, _ := reopenPDT(t, pool)
	po, _ := h2.Root().Get("arr")
	a2 := po.(*PLongArray)
	for i := 0; i < 100; i++ {
		if a2.Get(i) != int64(i*i)-50 {
			t.Fatalf("elem %d = %d", i, a2.Get(i))
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("OOB access must panic")
			}
		}()
		a2.Get(100)
	}()
}

func TestPExtArrayAppendGrowReopen(t *testing.T) {
	h, _, pool := openPDT(t, 1<<22, false)
	e, err := NewExtArray(h)
	if err != nil {
		t.Fatal(err)
	}
	e.Validate()
	if err := h.Root().Put("ext", e); err != nil {
		t.Fatal(err)
	}
	const n = 50 // several growths past the initial capacity of 8
	for i := 0; i < n; i++ {
		s, err := NewString(h, fmt.Sprintf("elem-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	if e.Len() != n || e.Cap() < n {
		t.Fatalf("len %d cap %d", e.Len(), e.Cap())
	}
	// Replace one element; the old one must be freed.
	old := e.Get(7)
	repl, _ := NewString(h, "replacement")
	e.Set(7, repl)
	if h.Mem().Valid(old) {
		t.Fatal("Set did not free the old element")
	}
	h.PSync()

	h2, _, _ := reopenPDT(t, pool)
	po, _ := h2.Root().Get("ext")
	e2 := po.(*PExtArray)
	if e2.Len() != n {
		t.Fatalf("reopen len %d", e2.Len())
	}
	for i := 0; i < n; i++ {
		vpo, err := e2.GetObject(i)
		if err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("elem-%d", i)
		if i == 7 {
			want = "replacement"
		}
		if got := vpo.(*PString).Value(); got != want {
			t.Fatalf("elem %d = %q, want %q", i, got, want)
		}
	}
}
