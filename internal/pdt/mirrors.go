package pdt

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/container"
	"repro/internal/obs"
)

// Volatile mirrors with reader striping (DESIGN.md §14).
//
// The mirror is the key -> slot-index lookup table of §4.3.2. It used to
// hide behind the Map's single RWMutex, which serialized every Get on the
// lock's cache line. The locking now lives here, in two layers:
//
//   - Mirror integrity: the hash mirror shards its Go map 64 ways by key
//     hash, so concurrent Gets on different keys touch different locks.
//     The ordered mirrors (tree, skip list) share one structure, so they
//     use a big-reader lock: readers take one of 16 striped read locks
//     (picked by key hash, so readers don't bounce a shared line), and
//     writers take all 16 in order.
//
//   - Binding stability: by protocol, a holder of rlock(key) can also read
//     the persistent binding (array slot, pair words) without racing
//     Delete or array growth, because Delete runs under lock(key) and
//     growth under lockAll. This gives the old Get-vs-Delete exclusion
//     without any map-global lock.
//
// The table ops (get/put/del/forEach/ascend) are NOT internally
// synchronized: callers hold the matching lock (get under rlock, put/del
// under lock, iteration under rlockAll), or are single-threaded
// (resurrection rebuild). len is an atomic counter and needs no lock.
type mirror interface {
	get(key string) (int, bool)
	put(key string, idx int)
	del(key string) bool
	len() int
	forEach(fn func(key string, idx int) bool)
	ascend(from string, fn func(key string, idx int) bool)
	ordered() bool

	rlock(key string)
	runlock(key string)
	lock(key string)
	unlock(key string)
	rlockAll()
	runlockAll()
	lockAll()
	unlockAll()

	// setWaits installs the contended-acquisition counter (obs wiring).
	setWaits(c *obs.Counter)
}

func newMirror(kind MirrorKind) mirror {
	switch kind {
	case MirrorTree:
		return &orderedMirror{inner: &treeCore{t: container.NewRBTree[int]()}}
	case MirrorSkip:
		return &orderedMirror{inner: &skipCore{s: container.NewSkipList[int](0x5eed)}}
	default:
		h := &hashMirror{}
		for i := range h.shards {
			h.shards[i].m = make(map[string]int)
		}
		return h
	}
}

// keyHash is FNV-1a, the same cheap hash the store's lock striping uses.
func keyHash(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h
}

// ---- hash mirror: per-shard Go maps ----

const hashShards = 64

type hashMirror struct {
	shards [hashShards]struct {
		mu sync.RWMutex
		m  map[string]int
		_  [32]byte // keep shard locks on distinct cache lines
	}
	count atomic.Int64
	waits *obs.Counter
}

func (h *hashMirror) shard(key string) *sync.RWMutex {
	return &h.shards[keyHash(key)%hashShards].mu
}

func (h *hashMirror) table(key string) map[string]int {
	return h.shards[keyHash(key)%hashShards].m
}

func (h *hashMirror) get(k string) (int, bool) { v, ok := h.table(k)[k]; return v, ok }

func (h *hashMirror) put(k string, v int) {
	t := h.table(k)
	if _, ok := t[k]; !ok {
		h.count.Add(1)
	}
	t[k] = v
}

func (h *hashMirror) del(k string) bool {
	t := h.table(k)
	if _, ok := t[k]; !ok {
		return false
	}
	delete(t, k)
	h.count.Add(-1)
	return true
}

func (h *hashMirror) len() int      { return int(h.count.Load()) }
func (h *hashMirror) ordered() bool { return false }

func (h *hashMirror) forEach(fn func(string, int) bool) {
	for i := range h.shards {
		for k, v := range h.shards[i].m {
			if !fn(k, v) {
				return
			}
		}
	}
}

func (h *hashMirror) ascend(from string, fn func(string, int) bool) {
	keys := make([]string, 0, h.len())
	h.forEach(func(k string, _ int) bool {
		if k >= from {
			keys = append(keys, k)
		}
		return true
	})
	sort.Strings(keys)
	for _, k := range keys {
		if v, ok := h.get(k); ok {
			if !fn(k, v) {
				return
			}
		}
	}
}

func (h *hashMirror) rlock(key string) {
	mu := h.shard(key)
	if !mu.TryRLock() {
		if h.waits != nil {
			h.waits.Inc()
		}
		mu.RLock()
	}
}
func (h *hashMirror) runlock(key string) { h.shard(key).RUnlock() }
func (h *hashMirror) lock(key string)    { h.shard(key).Lock() }
func (h *hashMirror) unlock(key string)  { h.shard(key).Unlock() }

func (h *hashMirror) rlockAll() {
	for i := range h.shards {
		h.shards[i].mu.RLock()
	}
}
func (h *hashMirror) runlockAll() {
	for i := len(h.shards) - 1; i >= 0; i-- {
		h.shards[i].mu.RUnlock()
	}
}
func (h *hashMirror) lockAll() {
	for i := range h.shards {
		h.shards[i].mu.Lock()
	}
}
func (h *hashMirror) unlockAll() {
	for i := len(h.shards) - 1; i >= 0; i-- {
		h.shards[i].mu.Unlock()
	}
}

func (h *hashMirror) setWaits(c *obs.Counter) { h.waits = c }

// ---- ordered mirrors: shared structure behind a big-reader lock ----

// orderedCore is the unsynchronized ordered lookup structure.
type orderedCore interface {
	get(k string) (int, bool)
	put(k string, v int)
	del(k string) bool
	ascend(from string, fn func(string, int) bool)
}

const orderedStripes = 16

// orderedMirror wraps a tree or skip list. Readers take one striped read
// lock (by key hash); writers take all stripes in index order, so any
// single read lock excludes every writer.
type orderedMirror struct {
	stripes [orderedStripes]struct {
		mu sync.RWMutex
		_  [40]byte
	}
	inner orderedCore
	count atomic.Int64
	waits *obs.Counter
}

func (o *orderedMirror) get(k string) (int, bool) { return o.inner.get(k) }

func (o *orderedMirror) put(k string, v int) {
	if _, ok := o.inner.get(k); !ok {
		o.count.Add(1)
	}
	o.inner.put(k, v)
}

func (o *orderedMirror) del(k string) bool {
	if o.inner.del(k) {
		o.count.Add(-1)
		return true
	}
	return false
}

func (o *orderedMirror) len() int      { return int(o.count.Load()) }
func (o *orderedMirror) ordered() bool { return true }

func (o *orderedMirror) forEach(fn func(string, int) bool) { o.inner.ascend("", fn) }
func (o *orderedMirror) ascend(from string, fn func(string, int) bool) {
	o.inner.ascend(from, fn)
}

func (o *orderedMirror) rlock(key string) {
	mu := &o.stripes[keyHash(key)%orderedStripes].mu
	if !mu.TryRLock() {
		if o.waits != nil {
			o.waits.Inc()
		}
		mu.RLock()
	}
}
func (o *orderedMirror) runlock(key string) {
	o.stripes[keyHash(key)%orderedStripes].mu.RUnlock()
}

// Writers must exclude every reader: any reader may traverse the whole
// shared structure, so per-key write locks degenerate to "all stripes".
func (o *orderedMirror) lock(string)   { o.lockAll() }
func (o *orderedMirror) unlock(string) { o.unlockAll() }

// One read stripe suffices to exclude writers (they take all stripes).
func (o *orderedMirror) rlockAll()   { o.stripes[0].mu.RLock() }
func (o *orderedMirror) runlockAll() { o.stripes[0].mu.RUnlock() }

func (o *orderedMirror) lockAll() {
	for i := range o.stripes {
		o.stripes[i].mu.Lock()
	}
}
func (o *orderedMirror) unlockAll() {
	for i := len(o.stripes) - 1; i >= 0; i-- {
		o.stripes[i].mu.Unlock()
	}
}

func (o *orderedMirror) setWaits(c *obs.Counter) { o.waits = c }

type treeCore struct{ t *container.RBTree[int] }

func (t *treeCore) get(k string) (int, bool) { return t.t.Get(k) }
func (t *treeCore) put(k string, v int)      { t.t.Put(k, v) }
func (t *treeCore) del(k string) bool        { return t.t.Delete(k) }
func (t *treeCore) ascend(from string, fn func(string, int) bool) {
	t.t.Ascend(from, fn)
}

type skipCore struct{ s *container.SkipList[int] }

func (s *skipCore) get(k string) (int, bool) { return s.s.Get(k) }
func (s *skipCore) put(k string, v int)      { s.s.Put(k, v) }
func (s *skipCore) del(k string) bool        { return s.s.Delete(k) }
func (s *skipCore) ascend(from string, fn func(string, int) bool) {
	s.s.Ascend(from, fn)
}
