package pdt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fa"
)

// PLongArray is a fixed-size persistent array of int64 (§4.3.1).
//
// Layout: length (8) | values (8 each).
type PLongArray struct{ *core.Object }

// NewLongArray allocates an invalid, zeroed array of n elements.
func NewLongArray(h *core.Heap, n int) (*PLongArray, error) {
	po, err := h.Alloc(mustClass(h, ClassLongArr), 8+uint64(n)*8)
	if err != nil {
		return nil, err
	}
	a := po.(*PLongArray)
	a.WriteUint64(0, uint64(n))
	a.PWB()
	return a, nil
}

// Len returns the element count.
func (a *PLongArray) Len() int { return int(a.ReadUint64(0)) }

func (a *PLongArray) slot(i int) uint64 {
	if i < 0 || i >= a.Len() {
		panic(fmt.Sprintf("pdt: index %d out of array bounds %d", i, a.Len()))
	}
	return 8 + uint64(i)*8
}

// Get loads element i.
func (a *PLongArray) Get(i int) int64 { return a.ReadInt64(a.slot(i)) }

// Set stores element i (unflushed; see FlushElem / Flush).
func (a *PLongArray) Set(i int, v int64) { a.WriteInt64(a.slot(i), v) }

// GetTx loads element i through a failure-atomic transaction, observing
// any uncommitted write the same transaction already made.
func (a *PLongArray) GetTx(tx *fa.Tx, i int) (int64, error) {
	return tx.ReadInt64(a.Object, a.slot(i))
}

// SetTx stores element i through a failure-atomic transaction: the write
// lands in the redo log and reaches the array only at commit, so a group
// of elements updated in one transaction flips together or not at all.
// The pool epoch table (DESIGN.md §17) relies on this to change the shard
// topology atomically.
func (a *PLongArray) SetTx(tx *fa.Tx, i int, v int64) error {
	return tx.WriteInt64(a.Object, a.slot(i), v)
}

// FlushElem flushes the cache line holding element i (the per-element
// flush method of §4.3.1).
func (a *PLongArray) FlushElem(i int) { a.PWBField(a.slot(i), 8) }

// Flush flushes the whole array.
func (a *PLongArray) Flush() { a.PWB() }

// PRefArray is a fixed-size persistent array of object references, the
// building block of the map recipe (§4.3.2). Its capacity is derived from
// the allocation size; every slot is a root for the recovery traversal.
//
// Layout: refs only (capacity = size/8).
type PRefArray struct{ *core.Object }

// NewRefArray allocates an invalid, zeroed (all-null) array of n slots.
func NewRefArray(h *core.Heap, n int) (*PRefArray, error) {
	po, err := h.Alloc(mustClass(h, ClassRefArr), uint64(n)*8)
	if err != nil {
		return nil, err
	}
	a := po.(*PRefArray)
	a.PWB()
	return a, nil
}

// Cap returns the slot capacity.
func (a *PRefArray) Cap() int { return int(a.Size() / 8) }

func (a *PRefArray) slot(i int) uint64 {
	if i < 0 || i >= a.Cap() {
		panic(fmt.Sprintf("pdt: slot %d out of array capacity %d", i, a.Cap()))
	}
	return uint64(i) * 8
}

// GetRef loads slot i.
func (a *PRefArray) GetRef(i int) core.Ref { return a.ReadRef(a.slot(i)) }

// SetRef stores slot i and flushes it. The write is a single word, so the
// structure stays consistent whatever the crash point (§4.3.2).
func (a *PRefArray) SetRef(i int, r core.Ref) {
	off := a.slot(i)
	a.WriteRef(off, r)
	a.PWBField(off, 8)
}

// GetRefAtomic loads slot i with an atomic load when the slot word is
// 8-aligned in the pool (always, for block-backed arrays). The lock-free
// read path uses it to observe slots concurrently published or nullified
// by SetRefAtomic without tearing.
func (a *PRefArray) GetRefAtomic(i int) core.Ref { return a.ReadRefAtomic(a.slot(i)) }

// SetRefAtomic stores slot i with an atomic store and flushes it.
func (a *PRefArray) SetRefAtomic(i int, r core.Ref) {
	off := a.slot(i)
	a.WriteRefAtomic(off, r)
	a.PWBField(off, 8)
}

// PublishRef atomically publishes object po in slot i with the §4.1.6
// discipline: validate, fence, then the slot write.
func (a *PRefArray) PublishRef(i int, po core.PObject) {
	a.slot(i) // bounds check first
	a.AtomicUpdateRef(uint64(i)*8, po)
}

// PExtArray is the extensible array of §4.3.1, the analogue of ArrayList:
// a small header object pointing to a PRefArray that is atomically
// replaced by a doubled copy when full (§4.1.6 update methods).
//
// Header layout: arrRef (8) | count (8).
//
// One crash window is deliberately tolerated: a failure between the slot
// write and the count bump leaves an out-of-range slot holding a live
// reference. The next Append overwrites the slot, unreaching the orphan,
// and the following recovery reclaims it — a bounded, self-healing leak
// rather than a fence on every append.
type PExtArray struct {
	*core.Object
	arr *PRefArray // cached proxy for the current backing array
}

const (
	extArrRef = 0
	extCount  = 8

	extInitialCap = 8
)

// NewExtArray allocates an invalid, empty extensible array.
func NewExtArray(h *core.Heap) (*PExtArray, error) {
	arr, err := NewRefArray(h, extInitialCap)
	if err != nil {
		return nil, err
	}
	po, err := h.Alloc(mustClass(h, ClassExtArr), 16)
	if err != nil {
		return nil, err
	}
	e := po.(*PExtArray)
	e.WriteRef(extArrRef, arr.Ref())
	e.WriteUint64(extCount, 0)
	e.PWB()
	arr.Validate()
	e.arr = arr
	return e, nil
}

// OnResurrect rebinds the cached backing-array proxy.
func (e *PExtArray) OnResurrect() {
	ref := e.ReadRef(extArrRef)
	e.arr = &PRefArray{Object: e.Heap().Inspect(ref)}
}

// Len returns the number of appended elements.
func (e *PExtArray) Len() int { return int(e.ReadUint64(extCount)) }

// Cap returns the current backing capacity.
func (e *PExtArray) Cap() int { return e.arr.Cap() }

// Get loads element i.
func (e *PExtArray) Get(i int) core.Ref {
	if i < 0 || i >= e.Len() {
		panic(fmt.Sprintf("pdt: index %d out of ext-array length %d", i, e.Len()))
	}
	return e.arr.GetRef(i)
}

// GetObject resurrects element i.
func (e *PExtArray) GetObject(i int) (core.PObject, error) {
	return e.Heap().Resurrect(e.Get(i))
}

// Append publishes po at the end of the array: the element is validated
// and fenced before becoming reachable, then the count advances.
func (e *PExtArray) Append(po core.PObject) error {
	n := e.Len()
	if n == e.arr.Cap() {
		if err := e.grow(); err != nil {
			return err
		}
	}
	e.arr.PublishRef(n, po)
	e.WriteUint64(extCount, uint64(n)+1)
	e.PWBField(extCount, 8)
	return nil
}

// Set replaces element i, atomically freeing the previous element (§4.1.6
// second helper).
func (e *PExtArray) Set(i int, po core.PObject) {
	if i < 0 || i >= e.Len() {
		panic(fmt.Sprintf("pdt: index %d out of ext-array length %d", i, e.Len()))
	}
	e.arr.AtomicReplaceRef(uint64(i)*8, po)
}

func (e *PExtArray) grow() error {
	h := e.Heap()
	bigger, err := NewRefArray(h, e.arr.Cap()*2)
	if err != nil {
		return err
	}
	for i := 0; i < e.arr.Cap(); i++ {
		bigger.WriteRef(uint64(i)*8, e.arr.GetRef(i))
	}
	bigger.PWB()
	// Atomic swing frees the old backing array (§4.1.6).
	e.AtomicReplaceRef(extArrRef, bigger)
	e.arr = bigger
	return nil
}
