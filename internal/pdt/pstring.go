// Package pdt is J-PDT, the stand-alone library of persistent data types
// built on the low-level interface (§4.3): strings, byte arrays, fixed and
// extensible arrays, and maps/sets that pair a persistent reference array
// with a volatile mirror. None of these types rely on failure-atomic
// blocks internally, yet all remain consistent across crashes; they are
// what makes the J-PDT backend up to 65% faster than J-PFA in Figure 7.
package pdt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fa"
	"repro/internal/heap"
)

// Persistent class names. Register Classes() with core.Open before using
// any type of this package.
const (
	ClassString  = "pdt.string"
	ClassBytes   = "pdt.bytes"
	ClassLongArr = "pdt.longarray"
	ClassRefArr  = "pdt.refarray"
	ClassExtArr  = "pdt.extarray"
	ClassPair    = "pdt.pair"
	ClassMap     = "pdt.map"
)

func mustClass(h *core.Heap, name string) *core.Class {
	c, ok := h.Class(name)
	if !ok {
		panic(fmt.Sprintf("pdt: class %s not registered; pass pdt.Classes() to core.Open", name))
	}
	return c
}

// PString is the drop-in persistent replacement for string (the PString of
// Figure 3). It is immutable: small instances are packed into pool-
// allocated slots (§4.4), large ones use a chained block object.
//
// Layout: length (4) | bytes.
type PString struct{ *core.Object }

// NewString allocates an invalid PString holding s. The constructor
// flushes the content; the caller validates (and fences) when publishing,
// or relies on a container such as Map to do so.
func NewString(h *core.Heap, s string) (*PString, error) {
	size := 4 + uint64(len(s))
	var po core.PObject
	var err error
	if heap.FitsSmall(size) {
		po, err = h.AllocSmall(mustClass(h, ClassString), size)
	} else {
		po, err = h.Alloc(mustClass(h, ClassString), size)
	}
	if err != nil {
		return nil, err
	}
	ps := po.(*PString)
	ps.WriteUint32(0, uint32(len(s)))
	ps.WriteBytes(4, []byte(s))
	ps.PWB()
	return ps, nil
}

// NewStringTx allocates a PString inside a failure-atomic block; it
// becomes valid if and only if the block commits.
func NewStringTx(tx *fa.Tx, s string) (*PString, error) {
	h := tx.Manager().Heap()
	size := 4 + uint64(len(s))
	var po core.PObject
	var err error
	if heap.FitsSmall(size) {
		po, err = tx.AllocSmall(mustClass(h, ClassString), size)
	} else {
		po, err = tx.Alloc(mustClass(h, ClassString), size)
	}
	if err != nil {
		return nil, err
	}
	ps := po.(*PString)
	// Direct writes: the object is invalid until commit.
	ps.WriteUint32(0, uint32(len(s)))
	ps.WriteBytes(4, []byte(s))
	return ps, nil
}

// NewStringValid allocates a PString holding s that is born valid: the
// content is written, the valid bit set unflushed, and one whole-extent
// flush covers both (DESIGN.md §16). The object is NOT fenced — callers
// publish it behind their own ordering point (the lock-free insert fence),
// exactly as with NewString+Validate but one pwb cheaper.
func NewStringValid(h *core.Heap, s string) (*PString, error) {
	size := 4 + uint64(len(s))
	var po core.PObject
	var err error
	if heap.FitsSmall(size) {
		po, err = h.AllocSmall(mustClass(h, ClassString), size)
	} else {
		po, err = h.Alloc(mustClass(h, ClassString), size)
	}
	if err != nil {
		return nil, err
	}
	ps := po.(*PString)
	ps.WriteUint32(0, uint32(len(s)))
	ps.WriteBytes(4, []byte(s))
	ps.ValidateDeferred()
	ps.PWB()
	return ps, nil
}

// Len returns the string length in bytes.
func (s *PString) Len() int { return int(s.ReadUint32(0)) }

// Value reads the string content out of NVMM.
func (s *PString) Value() string { return string(s.ReadBytes(4, uint64(s.Len()))) }

// Equals compares against a volatile string without allocating.
func (s *PString) Equals(v string) bool {
	if s.Len() != len(v) {
		return false
	}
	return s.Value() == v
}

// String implements fmt.Stringer.
func (s *PString) String() string { return s.Value() }

// PBytes is an immutable persistent byte array with the same layout and
// pooling behavior as PString.
type PBytes struct{ *core.Object }

// NewBytes allocates an invalid PBytes holding b (see NewString for the
// publication discipline).
func NewBytes(h *core.Heap, b []byte) (*PBytes, error) {
	size := 4 + uint64(len(b))
	var po core.PObject
	var err error
	if heap.FitsSmall(size) {
		po, err = h.AllocSmall(mustClass(h, ClassBytes), size)
	} else {
		po, err = h.Alloc(mustClass(h, ClassBytes), size)
	}
	if err != nil {
		return nil, err
	}
	pb := po.(*PBytes)
	pb.WriteUint32(0, uint32(len(b)))
	pb.WriteBytes(4, b)
	pb.PWB()
	return pb, nil
}

// NewBytesTx allocates a PBytes inside a failure-atomic block.
func NewBytesTx(tx *fa.Tx, b []byte) (*PBytes, error) {
	h := tx.Manager().Heap()
	size := 4 + uint64(len(b))
	var po core.PObject
	var err error
	if heap.FitsSmall(size) {
		po, err = tx.AllocSmall(mustClass(h, ClassBytes), size)
	} else {
		po, err = tx.Alloc(mustClass(h, ClassBytes), size)
	}
	if err != nil {
		return nil, err
	}
	pb := po.(*PBytes)
	pb.WriteUint32(0, uint32(len(b)))
	pb.WriteBytes(4, b)
	return pb, nil
}

// NewBytesBlockTx is NewBytesTx forced onto a block object even when the
// payload would fit a pooled slot. Pooled slots are immutable, so a
// value that will be updated in place — the store's counter fields,
// folded by the async delta ledger — must live in a block the redo
// machinery can write to.
func NewBytesBlockTx(tx *fa.Tx, b []byte) (*PBytes, error) {
	h := tx.Manager().Heap()
	po, err := tx.Alloc(mustClass(h, ClassBytes), 4+uint64(len(b)))
	if err != nil {
		return nil, err
	}
	pb := po.(*PBytes)
	pb.WriteUint32(0, uint32(len(b)))
	pb.WriteBytes(4, b)
	return pb, nil
}

// NewBytesValid allocates a born-valid PBytes (see NewStringValid).
func NewBytesValid(h *core.Heap, b []byte) (*PBytes, error) {
	size := 4 + uint64(len(b))
	var po core.PObject
	var err error
	if heap.FitsSmall(size) {
		po, err = h.AllocSmall(mustClass(h, ClassBytes), size)
	} else {
		po, err = h.Alloc(mustClass(h, ClassBytes), size)
	}
	if err != nil {
		return nil, err
	}
	pb := po.(*PBytes)
	pb.WriteUint32(0, uint32(len(b)))
	pb.WriteBytes(4, b)
	pb.ValidateDeferred()
	pb.PWB()
	return pb, nil
}

// Len returns the payload length.
func (b *PBytes) Len() int { return int(b.ReadUint32(0)) }

// Value copies the payload out of NVMM.
func (b *PBytes) Value() []byte { return b.ReadBytes(4, uint64(b.Len())) }

// readStringAt decodes a PString/PBytes-layout object at ref without
// building a typed proxy (hot path of map mirror rebuilds and lookups).
// Pooled slots and single-block objects are read straight from the pool.
func readStringAt(h *core.Heap, ref core.Ref) string {
	return string(ReadBlob(h, ref))
}

// ReadBlobView is ReadBlob without the copy: for pooled slots and
// single-block objects (every YCSB-sized field) it returns a window
// straight into NVMM — the paper's "direct access with read instructions".
// The view is read-only and must not outlive the referenced object.
func ReadBlobView(h *core.Heap, ref core.Ref) []byte {
	mem := h.Mem()
	pool := h.Pool()
	if !mem.IsBlockRef(ref) {
		n := uint64(pool.ReadUint32(ref + 8))
		return pool.View(ref+8+4, n)
	}
	if _, _, next := heap.UnpackHeader(mem.Header(ref)); next == 0 {
		data := ref + heap.HeaderSize
		n := uint64(pool.ReadUint32(data))
		return pool.View(data+4, n)
	}
	o := h.Inspect(ref)
	n := uint64(o.ReadUint32(0))
	return o.ReadBytes(4, n)
}

// BlobView is ReadBlobView for callers that cannot tolerate the chained-
// object copy: it returns ok=false (instead of allocating) when the blob
// spans blocks, and it bounds-checks the stored length against the
// containing slot or block so a racing reader never builds an
// out-of-range view. Callers run under an EBR reader pin, which keeps the
// referenced object's memory stable.
func BlobView(h *core.Heap, ref core.Ref) ([]byte, bool) {
	mem := h.Mem()
	pool := h.Pool()
	if !mem.IsBlockRef(ref) { // pooled slot: contiguous after mini-header
		n := uint64(pool.ReadUint32(ref + 8))
		if n+4 > heap.SlotPayloadMax {
			return nil, false
		}
		return pool.View(ref+8+4, n), true
	}
	if _, _, next := heap.UnpackHeader(mem.Header(ref)); next != 0 {
		return nil, false
	}
	data := ref + heap.HeaderSize
	n := uint64(pool.ReadUint32(data))
	if n+4 > heap.Payload {
		return nil, false
	}
	return pool.View(data+4, n), true
}

// BlobEquals compares the blob at ref against a volatile string without
// allocating: pooled slots and single-block objects compare straight
// against the NVMM view; only chained objects fall back to a copy. Hot
// path of the store's record field lookup.
func BlobEquals(h *core.Heap, ref core.Ref, v string) bool {
	mem := h.Mem()
	pool := h.Pool()
	if !mem.IsBlockRef(ref) {
		n := uint64(pool.ReadUint32(ref + 8))
		return n == uint64(len(v)) && string(pool.View(ref+8+4, n)) == v
	}
	if _, _, next := heap.UnpackHeader(mem.Header(ref)); next == 0 {
		data := ref + heap.HeaderSize
		n := uint64(pool.ReadUint32(data))
		return n == uint64(len(v)) && string(pool.View(data+4, n)) == v
	}
	return string(ReadBlob(h, ref)) == v
}

// ReadBlob decodes the [len u32 | bytes] layout shared by PString and
// PBytes directly from NVMM, without allocating a proxy. This is the
// zero-conversion read path that §5.2 credits for the YCSB gap.
func ReadBlob(h *core.Heap, ref core.Ref) []byte {
	mem := h.Mem()
	pool := h.Pool()
	if !mem.IsBlockRef(ref) { // pooled slot: contiguous after mini-header
		n := uint64(pool.ReadUint32(ref + 8))
		return pool.ReadBytes(ref+8+4, n)
	}
	if _, _, next := heap.UnpackHeader(mem.Header(ref)); next == 0 {
		data := ref + heap.HeaderSize
		n := uint64(pool.ReadUint32(data))
		return pool.ReadBytes(data+4, n)
	}
	o := h.Inspect(ref)
	n := uint64(o.ReadUint32(0))
	return o.ReadBytes(4, n)
}
