package pdt

import "repro/internal/core"

// Classes returns fresh class descriptors for every J-PDT type. Pass the
// result to core.Config.Classes (class descriptors carry a per-heap id, so
// each heap needs its own instances).
func Classes() []*core.Class {
	return []*core.Class{
		{
			Name:    ClassString,
			Factory: func(o *core.Object) core.PObject { return &PString{Object: o} },
		},
		{
			Name:    ClassBytes,
			Factory: func(o *core.Object) core.PObject { return &PBytes{Object: o} },
		},
		{
			Name:    ClassLongArr,
			Factory: func(o *core.Object) core.PObject { return &PLongArray{Object: o} },
		},
		{
			Name:    ClassRefArr,
			Factory: func(o *core.Object) core.PObject { return &PRefArray{Object: o} },
			Refs: func(o *core.Object) []uint64 {
				offs := make([]uint64, o.Size()/8)
				for i := range offs {
					offs[i] = uint64(i) * 8
				}
				return offs
			},
		},
		{
			Name:    ClassExtArr,
			Factory: func(o *core.Object) core.PObject { return &PExtArray{Object: o} },
			Refs:    func(o *core.Object) []uint64 { return []uint64{extArrRef} },
		},
		{
			Name:    ClassPair,
			Factory: func(o *core.Object) core.PObject { return o },
			Refs:    func(o *core.Object) []uint64 { return []uint64{pairKey, pairVal} },
		},
		{
			Name:    ClassMap,
			Factory: func(o *core.Object) core.PObject { return &Map{Object: o} },
			Refs:    func(o *core.Object) []uint64 { return []uint64{mapArrRef} },
		},
		{
			Name:    ClassLFMap,
			Factory: func(o *core.Object) core.PObject { return &LFMap{Object: o} },
			Refs:    func(o *core.Object) []uint64 { return []uint64{lfBucketsRef, lfDirRef} },
		},
		{
			Name: ClassLFSet,
			Factory: func(o *core.Object) core.PObject {
				return &LFSet{LFMap: LFMap{Object: o, isSet: true}}
			},
			Refs: func(o *core.Object) []uint64 {
				return []uint64{lfBucketsRef, lfDirRef, lfMarkerRef}
			},
		},
		{
			// Bucket-head words hold interior cell offsets, not object
			// refs, and the chains are volatile content: no Refs.
			Name:    ClassLFBuckets,
			Factory: func(o *core.Object) core.PObject { return o },
		},
		{
			Name:    ClassLFChunk,
			Factory: func(o *core.Object) core.PObject { return o },
			Refs:    lfChunkRefs,
		},
	}
}
