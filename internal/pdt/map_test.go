package pdt

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fa"
	"repro/internal/nvm"
)

var allKinds = []MirrorKind{MirrorHash, MirrorTree, MirrorSkip}

func kindName(k MirrorKind) string {
	return map[MirrorKind]string{MirrorHash: "hash", MirrorTree: "tree", MirrorSkip: "skip"}[k]
}

func newTestMap(t testing.TB, h *core.Heap, kind MirrorKind, name string) *Map {
	t.Helper()
	m, err := NewMap(h, kind)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Root().Put(name, m); err != nil {
		t.Fatal(err)
	}
	return m
}

func putStr(t testing.TB, h *core.Heap, m *Map, key, val string) {
	t.Helper()
	v, err := NewBytes(h, []byte(val))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Put(key, v); err != nil {
		t.Fatal(err)
	}
}

func getStr(t testing.TB, m *Map, key string) (string, bool) {
	t.Helper()
	po, err := m.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if po == nil {
		return "", false
	}
	return string(po.(*PBytes).Value()), true
}

func TestMapBasicOps(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kindName(kind), func(t *testing.T) {
			h, _, _ := openPDT(t, 1<<22, false)
			m := newTestMap(t, h, kind, "m")
			if m.Len() != 0 || m.Contains("a") {
				t.Fatal("fresh map not empty")
			}
			putStr(t, h, m, "a", "1")
			putStr(t, h, m, "b", "2")
			putStr(t, h, m, "c", "3")
			if m.Len() != 3 {
				t.Fatalf("Len = %d", m.Len())
			}
			if v, ok := getStr(t, m, "b"); !ok || v != "2" {
				t.Fatalf("Get(b) = %q %v", v, ok)
			}
			if _, ok := getStr(t, m, "zz"); ok {
				t.Fatal("phantom key")
			}
			// Update replaces and frees the old value.
			oldRef := m.GetRef("b")
			putStr(t, h, m, "b", "22")
			if v, _ := getStr(t, m, "b"); v != "22" {
				t.Fatal("update lost")
			}
			if h.Mem().Valid(oldRef) {
				t.Fatal("old value not freed on update")
			}
			if !m.Delete("a") || m.Delete("a") {
				t.Fatal("delete semantics")
			}
			if m.Len() != 2 || m.Contains("a") {
				t.Fatal("delete did not remove")
			}
			keys := m.Keys()
			if len(keys) != 2 || keys[0] != "b" || keys[1] != "c" {
				t.Fatalf("Keys = %v", keys)
			}
		})
	}
}

func TestMapGrowth(t *testing.T) {
	h, _, _ := openPDT(t, 1<<22, false)
	m := newTestMap(t, h, MirrorHash, "m")
	const n = 200 // way past the 16-slot initial array
	for i := 0; i < n; i++ {
		putStr(t, h, m, fmt.Sprintf("k%04d", i), fmt.Sprintf("v%d", i))
	}
	if m.Len() != n {
		t.Fatalf("Len = %d", m.Len())
	}
	for i := 0; i < n; i++ {
		if v, ok := getStr(t, m, fmt.Sprintf("k%04d", i)); !ok || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%04d = %q %v", i, v, ok)
		}
	}
}

func TestMapReopenRebuildsMirror(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kindName(kind), func(t *testing.T) {
			h, _, pool := openPDT(t, 1<<22, false)
			m := newTestMap(t, h, kind, "m")
			for i := 0; i < 60; i++ {
				putStr(t, h, m, fmt.Sprintf("k%02d", i), fmt.Sprintf("v%d", i))
			}
			m.Delete("k07")
			h.PSync()

			h2, _, _ := reopenPDT(t, pool)
			po, err := h2.Root().Get("m")
			if err != nil {
				t.Fatal(err)
			}
			m2 := po.(*Map)
			if m2.Kind() != kind {
				t.Fatalf("kind lost: %d", m2.Kind())
			}
			if m2.Len() != 59 {
				t.Fatalf("Len after reopen = %d", m2.Len())
			}
			if m2.Contains("k07") {
				t.Fatal("deleted key resurrected")
			}
			if v, ok := getStr(t, m2, "k42"); !ok || v != "v42" {
				t.Fatalf("k42 = %q %v", v, ok)
			}
			// Free slots must be reusable after reopen.
			putStr(t, h2, m2, "fresh", "f")
			if v, _ := getStr(t, m2, "fresh"); v != "f" {
				t.Fatal("insert after reopen")
			}
		})
	}
}

func TestMapAscendOrdered(t *testing.T) {
	for _, kind := range []MirrorKind{MirrorTree, MirrorSkip} {
		t.Run(kindName(kind), func(t *testing.T) {
			h, _, _ := openPDT(t, 1<<22, false)
			m := newTestMap(t, h, kind, "m")
			for i := 0; i < 50; i++ {
				putStr(t, h, m, fmt.Sprintf("%03d", i), "v")
			}
			var got []string
			err := m.Ascend("020", func(k string, _ core.PObject) bool {
				got = append(got, k)
				return len(got) < 5
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 5 || got[0] != "020" || got[4] != "024" {
				t.Fatalf("Ascend: %v", got)
			}
		})
	}
}

func TestMapAscendHashRejected(t *testing.T) {
	h, _, _ := openPDT(t, 1<<22, false)
	m := newTestMap(t, h, MirrorHash, "m")
	if err := m.Ascend("", func(string, core.PObject) bool { return true }); err == nil {
		t.Fatal("hash mirror should reject Ascend")
	}
}

func TestMapForEach(t *testing.T) {
	h, _, _ := openPDT(t, 1<<22, false)
	m := newTestMap(t, h, MirrorHash, "m")
	want := map[string]string{}
	for i := 0; i < 20; i++ {
		k, v := fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)
		putStr(t, h, m, k, v)
		want[k] = v
	}
	got := map[string]string{}
	err := m.ForEach(func(k string, v core.PObject) bool {
		got[k] = string(v.(*PBytes).Value())
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d", len(got))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("%s = %q", k, got[k])
		}
	}
}

func TestMapCacheModesAvoidResurrection(t *testing.T) {
	h, _, pool := openPDT(t, 1<<22, false)
	m := newTestMap(t, h, MirrorHash, "m")
	for i := 0; i < 32; i++ {
		putStr(t, h, m, fmt.Sprintf("k%d", i), "v")
	}
	h.PSync()

	// Base: every Get resurrects.
	h2, _, _ := reopenPDT(t, pool)
	po, _ := h2.Root().Get("m")
	base := po.(*Map)
	before := h2.Resurrections()
	for r := 0; r < 3; r++ {
		for i := 0; i < 32; i++ {
			base.Get(fmt.Sprintf("k%d", i))
		}
	}
	baseCost := h2.Resurrections() - before
	if baseCost < 96 {
		t.Fatalf("base mode resurrected only %d times", baseCost)
	}

	// Cached: one resurrection per key.
	if err := base.SetCacheMode(CacheOnDemand); err != nil {
		t.Fatal(err)
	}
	before = h2.Resurrections()
	for r := 0; r < 3; r++ {
		for i := 0; i < 32; i++ {
			base.Get(fmt.Sprintf("k%d", i))
		}
	}
	cachedCost := h2.Resurrections() - before
	if cachedCost != 32 {
		t.Fatalf("cached mode resurrected %d times, want 32", cachedCost)
	}

	// Eager: zero on the read path.
	if err := base.SetCacheMode(CacheEager); err != nil {
		t.Fatal(err)
	}
	before = h2.Resurrections()
	for i := 0; i < 32; i++ {
		base.Get(fmt.Sprintf("k%d", i))
	}
	if got := h2.Resurrections() - before; got != 0 {
		t.Fatalf("eager mode resurrected %d times on reads", got)
	}
}

func TestMapPutTxDeleteTx(t *testing.T) {
	h, mgr, _ := openPDT(t, 1<<22, false)
	m := newTestMap(t, h, MirrorHash, "m")
	err := mgr.Run(func(tx *fa.Tx) error {
		v, err := NewBytesTx(tx, []byte("txval"))
		if err != nil {
			return err
		}
		return m.PutTx(tx, "k", v)
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := getStr(t, m, "k"); !ok || v != "txval" {
		t.Fatalf("after commit: %q %v", v, ok)
	}
	// Transactional update frees the old value at commit.
	oldRef := m.GetRef("k")
	err = mgr.Run(func(tx *fa.Tx) error {
		v, err := NewBytesTx(tx, []byte("txval2"))
		if err != nil {
			return err
		}
		return m.PutTx(tx, "k", v)
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.Mem().Valid(oldRef) {
		t.Fatal("old value survived transactional update")
	}
	if v, _ := getStr(t, m, "k"); v != "txval2" {
		t.Fatal("tx update lost")
	}
	// Transactional delete.
	err = mgr.Run(func(tx *fa.Tx) error {
		ok, err := m.DeleteTx(tx, "k")
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("key vanished")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Contains("k") {
		t.Fatal("tx delete did not remove")
	}
}

func TestMapCrashDuringPutIsConsistent(t *testing.T) {
	// A strict crash taken at an arbitrary moment between Puts must leave
	// the map resurrectable with every binding intact or cleanly absent.
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h, _, pool := openPDT(t, 1<<22, true)
		m := newTestMap(t, h, MirrorHash, "m")
		fenced := map[string]string{}
		n := 5 + rng.Intn(15)
		for i := 0; i < n; i++ {
			k, v := fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)
			putStr(t, h, m, k, v)
			if rng.Intn(2) == 0 {
				h.PSync()
				fenced[k] = v
			}
			if rng.Intn(4) == 0 {
				victim := fmt.Sprintf("k%d", rng.Intn(i+1))
				m.Delete(victim)
				h.PSync()
				delete(fenced, victim)
			}
		}
		policy := []nvm.CrashPolicy{nvm.CrashStrict, nvm.CrashRandom}[rng.Intn(2)]
		img := pool.CrashImage(policy, rng)
		h2, _, _ := reopenPDT(t, img)
		po, err := h2.Root().Get("m")
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		m2 := po.(*Map)
		// Every fenced binding must be present with the right content
		// (deletes were fenced too, so fenced reflects durable truth).
		for k, v := range fenced {
			got, ok := getStr(t, m2, k)
			if !ok {
				t.Fatalf("seed %d (%v): fenced binding %s lost", seed, policy, k)
			}
			if got != v {
				t.Fatalf("seed %d: binding %s corrupt: %q vs %q", seed, k, got, v)
			}
		}
		// Every surviving binding must be fully readable (no torn pairs).
		m2.ForEach(func(k string, vpo core.PObject) bool {
			_ = vpo.(*PBytes).Value()
			return true
		})
	}
}

func TestMapTxCrashAtomicity(t *testing.T) {
	// An uncommitted transactional put disappears wholesale.
	h, mgr, pool := openPDT(t, 1<<22, true)
	m := newTestMap(t, h, MirrorHash, "m")
	putStr(t, h, m, "stable", "1")
	h.PSync()

	tx, err := mgr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewBytesTx(tx, []byte("doomed"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.PutTx(tx, "doomed", v); err != nil {
		t.Fatal(err)
	}
	// Crash without commit.
	img := pool.CrashImage(nvm.CrashStrict, rand.New(rand.NewSource(5)))
	h2, _, _ := reopenPDT(t, img)
	po, _ := h2.Root().Get("m")
	m2 := po.(*Map)
	if m2.Contains("doomed") {
		t.Fatal("uncommitted tx binding survived")
	}
	if v, ok := getStr(t, m2, "stable"); !ok || v != "1" {
		t.Fatal("stable binding damaged")
	}
}

func TestSetBasics(t *testing.T) {
	h, _, pool := openPDT(t, 1<<22, false)
	s, err := NewSet(h, MirrorTree)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Root().Put("set", s); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"beta", "alpha", "gamma", "alpha"} {
		if err := s.Add(k); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 3 || !s.Contains("alpha") || s.Contains("delta") {
		t.Fatalf("set state: len=%d", s.Len())
	}
	members := s.Members()
	if len(members) != 3 || members[0] != "alpha" || members[2] != "gamma" {
		t.Fatalf("Members = %v", members)
	}
	if !s.Delete("beta") || s.Delete("beta") {
		t.Fatal("delete semantics")
	}
	h.PSync()

	h2, _, _ := reopenPDT(t, pool)
	po, _ := h2.Root().Get("set")
	s2 := AsSet(po.(*Map))
	if s2.Len() != 2 || !s2.Contains("gamma") || s2.Contains("beta") {
		t.Fatal("set state lost across reopen")
	}
	count := 0
	s2.ForEach(func(string) bool { count++; return true })
	if count != 2 {
		t.Fatalf("ForEach visited %d", count)
	}
}

func TestSetAddTx(t *testing.T) {
	h, mgr, _ := openPDT(t, 1<<22, false)
	s, _ := NewSet(h, MirrorHash)
	h.Root().Put("set", s)
	if err := mgr.Run(func(tx *fa.Tx) error { return AsSet(s.Map()).AddTx(tx, "x") }); err != nil {
		t.Fatal(err)
	}
	if !s.Contains("x") {
		t.Fatal("AddTx lost")
	}
}

// Property: the persistent map agrees with a volatile oracle across a
// random workload with periodic clean reopens.
func TestMapOracleWithReopens(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kindName(kind), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(kind) * 977))
			h, _, pool := openPDT(t, 1<<23, false)
			m := newTestMap(t, h, kind, "m")
			oracle := map[string]string{}
			for i := 0; i < 400; i++ {
				k := fmt.Sprintf("k%02d", rng.Intn(60))
				switch rng.Intn(4) {
				case 0, 1: // put
					v := fmt.Sprintf("v%d", i)
					putStr(t, h, m, k, v)
					oracle[k] = v
				case 2: // delete
					want := false
					if _, ok := oracle[k]; ok {
						want = true
					}
					if got := m.Delete(k); got != want {
						t.Fatalf("op %d: Delete(%s)=%v want %v", i, k, got, want)
					}
					delete(oracle, k)
				case 3: // reopen
					h.PSync()
					h, _, pool = reopenPDT(t, pool)
					po, err := h.Root().Get("m")
					if err != nil {
						t.Fatal(err)
					}
					m = po.(*Map)
				}
				if m.Len() != len(oracle) {
					t.Fatalf("op %d: Len %d vs oracle %d", i, m.Len(), len(oracle))
				}
			}
			for k, v := range oracle {
				if got, ok := getStr(t, m, k); !ok || got != v {
					t.Fatalf("final: %s = %q,%v want %q", k, got, ok, v)
				}
			}
		})
	}
}

func TestMapCacheHotBounded(t *testing.T) {
	h, _, pool := openPDT(t, 1<<22, false)
	m := newTestMap(t, h, MirrorHash, "m")
	for i := 0; i < 64; i++ {
		putStr(t, h, m, fmt.Sprintf("k%02d", i), "v")
	}
	h.PSync()

	h2, _, _ := reopenPDT(t, pool)
	po, _ := h2.Root().Get("m")
	m2 := po.(*Map)
	m2.SetCacheHot(8)
	// First sweep resurrects everything.
	for i := 0; i < 64; i++ {
		if _, err := m2.Get(fmt.Sprintf("k%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	cold := h2.Resurrections()
	// Re-reading only the 8 hottest keys is resurrection-free...
	for r := 0; r < 5; r++ {
		for i := 56; i < 64; i++ {
			if _, err := m2.Get(fmt.Sprintf("k%02d", i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := h2.Resurrections() - cold; got != 0 {
		t.Fatalf("hot keys resurrected %d times", got)
	}
	// ...while cold keys still resurrect (the cache is bounded).
	before := h2.Resurrections()
	for i := 0; i < 8; i++ {
		m2.Get(fmt.Sprintf("k%02d", i))
	}
	if got := h2.Resurrections() - before; got == 0 {
		t.Fatal("bounded cache behaved as unbounded")
	}
	// Rejecting the wrong configuration path.
	if err := m2.SetCacheMode(CacheHot); err == nil {
		t.Fatal("SetCacheMode(CacheHot) should be rejected")
	}
	// Updates keep the bounded cache coherent.
	putStr(t, h2, m2, "k63", "fresh")
	if v, _ := getStr(t, m2, "k63"); v != "fresh" {
		t.Fatalf("stale hot-cache read: %q", v)
	}
	// Deletes drop the cached proxy.
	m2.Delete("k63")
	if m2.Contains("k63") {
		t.Fatal("delete ignored")
	}
}

// Regression: with async group commit the slot writes of queued epochs live
// in redo logs targeting the *old* array's blocks. A growth that copied the
// array with direct reads missed them, and after the arrp swing the drain
// applied them to the orphaned old array — the bindings were lost forever.
// takeSlotLocked now settles each slot through the transaction while
// copying.
func TestMapAsyncGrowthKeepsQueuedBindings(t *testing.T) {
	h, mgr, _ := openPDT(t, 1<<23, false)
	m := newTestMap(t, h, MirrorHash, "m")
	if err := mgr.SetGroupCommit(fa.GroupOptions{Mode: fa.CommitAsync}); err != nil {
		t.Fatal(err)
	}
	const n = 100 // crosses two array growths (cap 32 -> 64 -> 128)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%03d", i)
		err := mgr.Run(func(tx *fa.Tx) error {
			v, err := NewBytesTx(tx, []byte("v"+key))
			if err != nil {
				return err
			}
			return m.PutTx(tx, key, v)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	mgr.DrainDurable()
	if m.Len() != n {
		t.Fatalf("Len = %d, want %d", m.Len(), n)
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%03d", i)
		if v, ok := getStr(t, m, key); !ok || v != "v"+key {
			t.Fatalf("binding %q lost across growth: %q %v", key, v, ok)
		}
	}
}

// TestMapTxStructuralChurnConcurrent hammers PutTx/DeleteTx from several
// goroutines over distinct keys whose array slots share cache lines. A
// per-Tx commit applies its redo lines after the body released wmu; before
// the gateWait/gateArm ordering, the next writer could snapshot the array
// mid-apply and commit the pre-apply line back, silently reverting the
// predecessor's slot swing (resurrected deletes / lost inserts).
func TestMapTxStructuralChurnConcurrent(t *testing.T) {
	h, mgr, _ := openPDT(t, 1<<23, false)
	m := newTestMap(t, h, MirrorHash, "m")
	const workers, rounds = 4, 60
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				key := fmt.Sprintf("w%d-%d", w, i)
				err := mgr.Run(func(tx *fa.Tx) error {
					v, err := NewBytesTx(tx, []byte("v"+key))
					if err != nil {
						return err
					}
					return m.PutTx(tx, key, v)
				})
				if err != nil {
					t.Errorf("put %s: %v", key, err)
					return
				}
				if i == 0 {
					continue
				}
				prev := fmt.Sprintf("w%d-%d", w, i-1)
				err = mgr.Run(func(tx *fa.Tx) error {
					ok, err := m.DeleteTx(tx, prev)
					if err == nil && !ok {
						return fmt.Errorf("delete %s: binding lost", prev)
					}
					return err
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if m.Len() != workers {
		t.Fatalf("Len = %d after churn, want %d", m.Len(), workers)
	}
	for w := 0; w < workers; w++ {
		key := fmt.Sprintf("w%d-%d", w, rounds-1)
		if v, ok := getStr(t, m, key); !ok || v != "v"+key {
			t.Fatalf("survivor %q: %q %v", key, v, ok)
		}
		if _, ok := getStr(t, m, fmt.Sprintf("w%d-%d", w, rounds-2)); ok {
			t.Fatalf("deleted binding w%d-%d resurrected", w, rounds-2)
		}
	}
}
