package pdt

import (
	"strings"

	"repro/internal/core"
	"repro/internal/fa"
)

// Set is the persistent set of §4.3: "a persistent map that associates
// each key with itself" — each pair's value reference equals its key
// reference, so a set entry costs one string and one pair.
type Set struct{ m *Map }

// NewSet creates an empty persistent set over the given mirror kind.
func NewSet(h *core.Heap, kind MirrorKind) (*Set, error) {
	m, err := NewMap(h, kind)
	if err != nil {
		return nil, err
	}
	return &Set{m: m}, nil
}

// AsSet views a resurrected persistent map as a set.
func AsSet(m *Map) *Set { return &Set{m: m} }

// Core exposes the underlying persistent object (for root-map publication).
func (s *Set) Core() *core.Object { return s.m.Core() }

// Map exposes the underlying map (diagnostics, Ascend).
func (s *Set) Map() *Map { return s.m }

// Len returns the number of members.
func (s *Set) Len() int { return s.m.Len() }

// Contains reports membership.
func (s *Set) Contains(key string) bool { return s.m.Contains(key) }

// Add inserts key; it is a no-op if already present.
func (s *Set) Add(key string) error {
	m := s.m
	h := m.Heap()
	m.wmu.Lock()
	defer m.wmu.Unlock()
	if _, ok := m.mir.get(key); ok {
		return nil
	}
	idx, err := m.takeSlotLocked(nil)
	if err != nil {
		return err
	}
	ks, err := NewString(h, key)
	if err != nil {
		m.slots = append(m.slots, idx)
		return err
	}
	pairPO, err := h.Alloc(mustClass(h, ClassPair), pairLen)
	if err != nil {
		h.Free(ks)
		m.slots = append(m.slots, idx)
		return err
	}
	pair := pairPO.Core()
	pair.WriteRef(pairKey, ks.Ref())
	pair.WriteRef(pairVal, ks.Ref()) // key bound to itself
	pair.PWB()
	ks.Validate()
	pair.Validate()
	h.PFence()
	key = strings.Clone(key)
	m.mir.lock(key)
	m.arrp.Load().SetRefAtomic(idx, pair.Ref())
	m.mir.put(key, idx)
	m.mir.unlock(key)
	return nil
}

// AddTx inserts key inside a failure-atomic block.
func (s *Set) AddTx(tx *fa.Tx, key string) error {
	m := s.m
	h := m.Heap()
	m.wmu.Lock()
	defer m.wmu.Unlock()
	if _, ok := m.mir.get(key); ok {
		return nil
	}
	idx, err := m.takeSlotLocked(tx)
	if err != nil {
		return err
	}
	ks, err := NewStringTx(tx, key)
	if err != nil {
		m.slots = append(m.slots, idx)
		return err
	}
	pairPO, err := tx.Alloc(mustClass(h, ClassPair), pairLen)
	if err != nil {
		m.slots = append(m.slots, idx)
		return err
	}
	pair := pairPO.Core()
	pair.WriteRef(pairKey, ks.Ref())
	pair.WriteRef(pairVal, ks.Ref())
	if err := tx.WriteRef(m.arrp.Load().Object, uint64(idx)*8, pair.Ref()); err != nil {
		return err
	}
	key = strings.Clone(key)
	m.mir.lock(key)
	m.mir.put(key, idx)
	m.mir.unlock(key)
	tx.OnAbort(func() {
		m.wmu.Lock()
		m.mir.lock(key)
		m.mir.del(key)
		m.mir.unlock(key)
		m.slots = append(m.slots, idx)
		m.wmu.Unlock()
	})
	return nil
}

// Delete removes key, freeing its storage; it reports prior membership.
func (s *Set) Delete(key string) bool { return s.m.Delete(key) }

// Members returns the member keys (sorted for ordered mirrors).
func (s *Set) Members() []string { return s.m.Keys() }

// ForEach iterates members until fn returns false.
func (s *Set) ForEach(fn func(key string) bool) {
	s.m.mir.rlockAll()
	defer s.m.mir.runlockAll()
	s.m.mir.forEach(func(k string, _ int) bool { return fn(k) })
}
