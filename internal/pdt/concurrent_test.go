package pdt

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestMapConcurrentReadersWriters is the sharded-mirror regression test
// (DESIGN.md §14): with per-shard read locks, concurrent Gets must never
// serialize against each other nor race writers. Readers hammer a stable
// key set (whose values are never replaced, so dereferencing is safe
// without EBR pins) and probe churning keys by ref only, while one
// writer delete/re-inserts churn keys and another forces repeated array
// growth — the lockAll path — under live readers. Run under -race this
// covers every mirror lock transition.
func TestMapConcurrentReadersWriters(t *testing.T) {
	kinds := []struct {
		name string
		kind MirrorKind
	}{{"hash", MirrorHash}, {"tree", MirrorTree}, {"skip", MirrorSkip}}
	for _, k := range kinds {
		kind := k.kind
		t.Run(k.name, func(t *testing.T) {
			t.Parallel()
			h, _, _ := openPDT(t, 1<<24, false)
			m, err := NewMap(h, kind)
			if err != nil {
				t.Fatal(err)
			}
			if err := h.Root().Put("conc.map", m); err != nil {
				t.Fatal(err)
			}
			const stable = 32
			want := make(map[string]string, stable)
			for i := 0; i < stable; i++ {
				key := fmt.Sprintf("stable%02d", i)
				val := fmt.Sprintf("sv-%02d", i)
				ps, err := NewString(h, val)
				if err != nil {
					t.Fatal(err)
				}
				if err := m.Put(key, ps); err != nil {
					t.Fatal(err)
				}
				want[key] = val
			}

			var stop atomic.Bool
			var wg sync.WaitGroup

			// Churner: delete/re-insert a small churn set so readers see
			// bindings appear and vanish (GetRef 0 or valid, never torn).
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer stop.Store(true)
				for round := 0; round < 150; round++ {
					for i := 0; i < 4; i++ {
						key := fmt.Sprintf("churn%d", i)
						ps, err := NewString(h, fmt.Sprintf("cv-%d-%d", round, i))
						if err != nil {
							t.Errorf("churn alloc: %v", err)
							return
						}
						if err := m.Put(key, ps); err != nil {
							t.Errorf("churn put: %v", err)
							return
						}
					}
					for i := 0; i < 4; i++ {
						m.Delete(fmt.Sprintf("churn%d", i))
					}
				}
			}()

			// Grower: inserts a fresh key per iteration, forcing the
			// backing array through several growth cycles (mirror lockAll)
			// while readers are live.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; !stop.Load(); i++ {
					ps, err := NewString(h, "g")
					if err != nil {
						t.Errorf("grow alloc: %v", err)
						return
					}
					if err := m.Put(fmt.Sprintf("grow%05d", i), ps); err != nil {
						t.Errorf("grow put: %v", err)
						return
					}
				}
			}()

			for r := 0; r < 4; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(r)))
					for it := 0; it < 3000 || !stop.Load(); it++ {
						key := fmt.Sprintf("stable%02d", rng.Intn(stable))
						po, err := m.Get(key)
						if err != nil {
							t.Errorf("get %s: %v", key, err)
							return
						}
						ps, ok := po.(*PString)
						if !ok {
							t.Errorf("get %s: %T", key, po)
							return
						}
						if got := ps.Value(); got != want[key] {
							t.Errorf("get %s: %q, want %q", key, got, want[key])
							return
						}
						// Churn keys are only probed by ref: binding either
						// absent or present, never an error.
						m.GetRef(fmt.Sprintf("churn%d", rng.Intn(4)))
						if it%64 == 0 {
							if n := m.Len(); n < stable {
								t.Errorf("len %d < %d stable keys", n, stable)
								return
							}
						}
					}
				}(r)
			}
			wg.Wait()

			for key, val := range want {
				po, err := m.Get(key)
				if err != nil {
					t.Fatalf("final get %s: %v", key, err)
				}
				if got := po.(*PString).Value(); got != val {
					t.Fatalf("final get %s: %q, want %q", key, got, val)
				}
			}
		})
	}
}

// TestSetConcurrentAddContains drives the Set wrapper through the same
// mirror machinery: concurrent Contains against Add/Delete churn and
// growth must stay consistent for members that are never removed.
func TestSetConcurrentAddContains(t *testing.T) {
	h, _, _ := openPDT(t, 1<<23, false)
	s, err := NewSet(h, MirrorTree)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Root().Put("conc.set", s.Map()); err != nil {
		t.Fatal(err)
	}
	const stable = 24
	for i := 0; i < stable; i++ {
		if err := s.Add(fmt.Sprintf("member%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for round := 0; round < 200; round++ {
			key := fmt.Sprintf("flick%d", round%3)
			if err := s.Add(key); err != nil {
				t.Errorf("add: %v", err)
				return
			}
			s.Delete(key)
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for it := 0; it < 2000 || !stop.Load(); it++ {
				key := fmt.Sprintf("member%02d", rng.Intn(stable))
				if !s.Contains(key) {
					t.Errorf("lost member %s", key)
					return
				}
				s.Contains(fmt.Sprintf("flick%d", rng.Intn(3)))
			}
		}(r)
	}
	wg.Wait()
	if n := s.Len(); n < stable {
		t.Fatalf("set len %d < %d", n, stable)
	}
}
