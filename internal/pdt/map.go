package pdt

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/fa"
	"repro/internal/obs"
)

// MirrorKind selects the volatile logic of a persistent map (§4.3.2: "for
// a hash table, we use a Java HashMap, and for a persistent binary tree, a
// Java TreeMap"). The kind is persisted in the map header so resurrection
// rebuilds the right mirror.
type MirrorKind uint64

const (
	// MirrorHash mirrors with a Go map (unordered, O(1)).
	MirrorHash MirrorKind = 1
	// MirrorTree mirrors with a red-black tree (ordered).
	MirrorTree MirrorKind = 2
	// MirrorSkip mirrors with a skip list (ordered).
	MirrorSkip MirrorKind = 3
)

// CacheMode selects the proxy-caching variant (§4.3.2 "base, cached and
// eager maps and sets").
type CacheMode int

const (
	// CacheNone is the base implementation: a fresh value proxy per Get.
	CacheNone CacheMode = iota
	// CacheOnDemand keeps every resurrected value proxy (cached variant).
	CacheOnDemand
	// CacheEager populates the proxy cache during resurrection.
	CacheEager
	// CacheHot keeps only the hottest proxies in a bounded LRU — the
	// extension §4.3.2 sketches ("it would be possible to extend this
	// code to include only the hottest proxies"). Configure the bound
	// with SetCacheHot.
	CacheHot
)

// proxyCache abstracts the volatile proxy store of the cached variants.
type proxyCache interface {
	get(key string) (core.PObject, bool)
	put(key string, po core.PObject)
	del(key string)
}

// unboundedCache is the paper's default: "the cache contains all proxies".
type unboundedCache struct{ m sync.Map }

func (c *unboundedCache) get(k string) (core.PObject, bool) {
	v, ok := c.m.Load(k)
	if !ok {
		return nil, false
	}
	return v.(core.PObject), true
}
func (c *unboundedCache) put(k string, po core.PObject) { c.m.Store(k, po) }
func (c *unboundedCache) del(k string)                  { c.m.Delete(k) }

// hotCache bounds the proxy set with an LRU.
type hotCache struct {
	mu  sync.Mutex
	lru *container.LRU[core.PObject]
}

func (c *hotCache) get(k string) (core.PObject, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Get(k)
}
func (c *hotCache) put(k string, po core.PObject) {
	c.mu.Lock()
	c.lru.Put(k, po)
	c.mu.Unlock()
}
func (c *hotCache) del(k string) {
	c.mu.Lock()
	c.lru.Remove(k)
	c.mu.Unlock()
}

// Map is the persistent map of §4.3.2. The durable state is a PRefArray
// whose slots reference key/value pair objects; adding or removing a
// binding is a single reference write in NVMM, so the structure is always
// crash-consistent without failure-atomic blocks. All lookup logic lives
// in the volatile mirror, rebuilt at resurrection.
//
// Header layout: arrRef (8) | kind (8).
//
// Concurrency (DESIGN.md §14): readers never take a map-global lock.
// A lookup holds only its key's mirror shard in read mode (which, by the
// mirror's locking protocol, also keeps the binding's array slot and pair
// stable), and loads the ref words atomically. Structural writers — Put
// of a new key, Delete, Remove, array growth, the transactional paths —
// serialize on wmu and additionally take the key's shard write lock for
// the window that retires or publishes a binding. A per-Tx transactional
// writer's commit apply outlives its wmu window, so the transactional
// paths additionally gate on the predecessor's apply (gateWait/gateArm).
// Put over an existing
// binding mutates only that pair's value word and runs concurrently with
// everything else; same-key exclusion between such updates and readers is
// the caller's (e.g. the grid's lock striping, as with Infinispan in
// §5.3.2).
type Map struct {
	*core.Object

	wmu   sync.Mutex                // serializes structural writers
	arrp  atomic.Pointer[PRefArray] // current backing array, atomically swapped by growth
	kind  MirrorKind
	mir   mirror
	gate  chan struct{} // closed when the last per-Tx structural commit's apply landed (guarded by wmu)
	slots []int         // free slot indices (guarded by wmu)
	mode  CacheMode
	cache proxyCache // nil in base mode
}

const (
	mapArrRef = 0
	mapKind   = 8

	mapInitialSlots = 16

	pairKey = 0
	pairVal = 8
	pairLen = 16
)

// pairValOff is the pool offset of a pair's value-reference word. Pairs
// are 16-byte payloads behind an 8-byte header in both representations
// (block header or pooled-slot mini-header), so the payload always starts
// at pref+8. The word is 8-aligned (pairs live in the 24-byte slot class
// or a block), so atomic access is always available.
func pairValOff(pref core.Ref) uint64 { return pref + 8 + pairVal }

// NewMap creates an empty persistent map with the given mirror kind. The
// map object is validated; the caller publishes it (root map, field
// write).
func NewMap(h *core.Heap, kind MirrorKind) (*Map, error) {
	arr, err := NewRefArray(h, mapInitialSlots)
	if err != nil {
		return nil, err
	}
	po, err := h.Alloc(mustClass(h, ClassMap), 16)
	if err != nil {
		return nil, err
	}
	m := po.(*Map)
	m.WriteRef(mapArrRef, arr.Ref())
	m.WriteUint64(mapKind, uint64(kind))
	m.PWB()
	arr.Validate()
	m.Validate()
	m.arrp.Store(arr)
	m.kind = kind
	m.mir = newMirror(kind)
	for i := arr.Cap() - 1; i >= 0; i-- {
		m.slots = append(m.slots, i)
	}
	return m, nil
}

// SetReadObs wires the read-path counters (mirror shard-lock waits) into
// the given stats block. Call before serving traffic.
func (m *Map) SetReadObs(rs *obs.ReadStats) {
	if rs != nil {
		m.mir.setWaits(&rs.ShardLockWaits)
	}
}

// rebuildParallelMin is the array capacity below which OnResurrect stays
// serial: spawning the worker fleet costs more than scanning a few
// thousand slots.
const rebuildParallelMin = 4096

// OnResurrect rebuilds the volatile mirror and the free-slot list by
// scanning the persistent array (§4.3.2 resurrection). Bindings whose key
// or value reference was nullified by the recovery GC are retired here.
//
// Large arrays are scanned by the heap's recovery worker fleet
// (core.RecoverOptions): workers read their segments — slot refs, pair
// refs, key bytes — and the mirror inserts, free-slot appends and
// retirement writes happen in a serial merge in segment order, since the
// mirror table ops are unsynchronized. The merged mirror, free-slot order
// and persistent state are identical to the serial scan's.
func (m *Map) OnResurrect() {
	h := m.Heap()
	arr := &PRefArray{Object: h.Inspect(m.ReadRef(mapArrRef))}
	m.arrp.Store(arr)
	m.kind = MirrorKind(m.ReadUint64(mapKind))
	m.mir = newMirror(m.kind)
	m.slots = m.slots[:0]
	start := time.Now()
	n := arr.Cap()
	cleaned := false
	if workers := h.RecoverParallelism(); workers > 1 && n >= rebuildParallelMin {
		cleaned = m.rebuildParallel(h, arr, n, workers)
	} else {
		cleaned = m.rebuildSerial(h, arr, n)
	}
	if cleaned {
		h.PFence()
	}
	ro := h.RecoveryObs()
	ro.RebuildNs.Add(uint64(time.Since(start)))
	ro.RebuildEntries.Add(uint64(m.mir.len()))
}

func (m *Map) rebuildSerial(h *core.Heap, arr *PRefArray, n int) (cleaned bool) {
	for i := 0; i < n; i++ {
		pref := arr.GetRef(i)
		if pref == 0 {
			m.slots = append(m.slots, i)
			continue
		}
		pair := h.Inspect(pref)
		kref := pair.ReadRef(pairKey)
		vref := pair.ReadRef(pairVal)
		if kref == 0 || vref == 0 {
			// A crash raced the publication: the recovery traversal
			// nullified half the binding. Retire the slot entirely.
			arr.SetRef(i, 0)
			if kref != 0 {
				h.Mem().FreeObject(kref)
			}
			h.Mem().FreeObject(pref)
			m.slots = append(m.slots, i)
			cleaned = true
			continue
		}
		m.mir.put(readStringAt(h, kref), i)
	}
	return cleaned
}

func (m *Map) rebuildParallel(h *core.Heap, arr *PRefArray, n, workers int) (cleaned bool) {
	type binding struct {
		idx int
		key string
	}
	type segment struct {
		entries []binding
		slots   []int // free-slot contribution, in scan order
		retire  []int // slots whose binding lost its key or value ref
	}
	// Oversplit so a skewed segment cannot straggle the whole rebuild.
	nseg := workers * 4
	if nseg > n {
		nseg = n
	}
	per := (n + nseg - 1) / nseg
	results := make([]segment, nseg)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s := int(next.Add(1) - 1)
				if s >= nseg {
					return
				}
				seg := &results[s]
				lo := s * per
				hi := lo + per
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					pref := arr.GetRef(i)
					if pref == 0 {
						seg.slots = append(seg.slots, i)
						continue
					}
					pair := h.Inspect(pref)
					kref := pair.ReadRef(pairKey)
					vref := pair.ReadRef(pairVal)
					if kref == 0 || vref == 0 {
						seg.slots = append(seg.slots, i)
						seg.retire = append(seg.retire, i)
						continue
					}
					seg.entries = append(seg.entries, binding{i, readStringAt(h, kref)})
				}
			}
		}()
	}
	wg.Wait()
	for s := range results {
		seg := &results[s]
		for _, i := range seg.retire {
			pref := arr.GetRef(i)
			pair := h.Inspect(pref)
			kref := pair.ReadRef(pairKey)
			arr.SetRef(i, 0)
			if kref != 0 {
				h.Mem().FreeObject(kref)
			}
			h.Mem().FreeObject(pref)
			cleaned = true
		}
		m.slots = append(m.slots, seg.slots...)
		for _, b := range seg.entries {
			m.mir.put(b.key, b.idx)
		}
	}
	return cleaned
}

// SetCacheMode switches the proxy-caching variant. CacheEager resurrects
// every value immediately (§4.3.2: "the eager implementation populates the
// cache during resurrection").
func (m *Map) SetCacheMode(mode CacheMode) error {
	if mode == CacheHot {
		return fmt.Errorf("pdt: use SetCacheHot for the bounded variant")
	}
	m.wmu.Lock()
	m.mode = mode
	if mode == CacheNone {
		m.cache = nil
	} else {
		m.cache = &unboundedCache{}
	}
	m.wmu.Unlock()
	if mode != CacheEager {
		return nil
	}
	var err error
	m.mir.rlockAll()
	defer m.mir.runlockAll()
	h := m.Heap()
	arr := m.arrp.Load()
	m.mir.forEach(func(key string, idx int) bool {
		pair := h.Inspect(arr.GetRef(idx))
		po, e := h.Resurrect(pair.ReadRef(pairVal))
		if e != nil {
			err = e
			return false
		}
		m.cache.put(key, po)
		return true
	})
	return err
}

// SetCacheHot switches to the bounded hottest-proxies variant with the
// given capacity.
func (m *Map) SetCacheHot(capacity int) {
	m.wmu.Lock()
	m.mode = CacheHot
	m.cache = &hotCache{lru: container.NewLRU[core.PObject](capacity, nil)}
	m.wmu.Unlock()
}

// Kind returns the persisted mirror kind.
func (m *Map) Kind() MirrorKind { return MirrorKind(m.ReadUint64(mapKind)) }

// Len returns the number of bindings.
func (m *Map) Len() int { return m.mir.len() }

// Contains reports whether key is bound.
func (m *Map) Contains(key string) bool {
	m.mir.rlock(key)
	_, ok := m.mir.get(key)
	m.mir.runlock(key)
	return ok
}

// GetRef returns the value reference bound to key (0 if unbound), without
// building a proxy. Allocation-free: the mirror lookup runs under the
// key's shard read lock (which also pins the binding against Delete and
// growth) and the pair's value word is loaded atomically straight from
// the pool.
func (m *Map) GetRef(key string) core.Ref {
	m.mir.rlock(key)
	defer m.mir.runlock(key)
	idx, ok := m.mir.get(key)
	if !ok {
		return 0
	}
	pref := m.arrp.Load().GetRefAtomic(idx)
	if pref == 0 {
		return 0
	}
	return m.Heap().Pool().ReadUint64Atomic(pairValOff(pref))
}

// Get resurrects the value bound to key (nil if unbound). In the cached
// and eager variants the proxy comes from the cache when possible,
// avoiding the resurrection cost §4.3.2 describes.
func (m *Map) Get(key string) (core.PObject, error) {
	if c := m.cache; c != nil {
		if po, ok := c.get(key); ok {
			return po, nil
		}
	}
	m.mir.rlock(key)
	defer m.mir.runlock(key)
	idx, ok := m.mir.get(key)
	if !ok {
		return nil, nil
	}
	pref := m.arrp.Load().GetRefAtomic(idx)
	if pref == 0 {
		return nil, nil
	}
	ref := m.Heap().Pool().ReadUint64Atomic(pairValOff(pref))
	if ref == 0 {
		return nil, nil
	}
	po, err := m.Heap().Resurrect(ref)
	if err != nil {
		return nil, err
	}
	// The cache insert must stay under the shard read lock: Delete holds
	// the exclusive shard lock before its mirror removal and runs its
	// cache.del after, so a racing delete is ordered after this put. A
	// put after runlock could overtake the del and park a proxy to freed
	// NVMM in the bounded LRU.
	if c := m.cache; c != nil {
		c.put(strings.Clone(key), po)
	}
	return po, nil
}

// Put binds key to the persistent object val. A new binding allocates a
// key string and a pair, publishes everything under a single fence, and
// writes one reference slot; an existing binding atomically replaces (and
// frees) the previous value (§4.1.6). The map owns keys and pairs; values
// passed in become owned by the map. The key may be transient (reused by
// the caller): the map clones it before retaining it.
func (m *Map) Put(key string, val core.PObject) error {
	h := m.Heap()
	// Fast path: updating an existing binding mutates only that pair, so
	// only the key's shard read lock is held and concurrent updates to
	// other keys proceed in parallel (same-key exclusion is the caller's,
	// e.g. the grid's lock striping, as with Infinispan in §5.3.2).
	m.mir.rlock(key)
	if idx, ok := m.mir.get(key); ok {
		if pref := m.arrp.Load().GetRefAtomic(idx); pref != 0 {
			pair := h.Inspect(pref)
			pair.AtomicReplaceRef(pairVal, val)
			// Cache under the shard lock (see Get): a put after runlock
			// could overtake a racing Delete's cache.del and reinsert a
			// stale proxy.
			if c := m.cache; c != nil {
				c.put(strings.Clone(key), val)
			}
			m.mir.runlock(key)
			return nil
		}
	}
	m.mir.runlock(key)
	m.wmu.Lock()
	defer m.wmu.Unlock()
	// Re-check: another goroutine may have inserted the key meanwhile.
	// Under wmu no writer can race this unsynchronized mirror read.
	if idx, ok := m.mir.get(key); ok {
		pair := h.Inspect(m.arrp.Load().GetRefAtomic(idx))
		pair.AtomicReplaceRef(pairVal, val)
		if m.cache != nil {
			m.cache.put(strings.Clone(key), val)
		}
		return nil
	}
	idx, err := m.takeSlotLocked(nil)
	if err != nil {
		return err
	}
	ks, err := NewString(h, key)
	if err != nil {
		m.slots = append(m.slots, idx)
		return err
	}
	pairPO, err := h.Alloc(mustClass(h, ClassPair), pairLen)
	if err != nil {
		h.Free(ks)
		m.slots = append(m.slots, idx)
		return err
	}
	pair := pairPO.Core()
	pair.WriteRef(pairKey, ks.Ref())
	pair.WriteRef(pairVal, val.Core().Ref())
	pair.PWB()
	ks.Validate()
	val.Core().Validate()
	pair.Validate()
	h.PFence()
	key = strings.Clone(key)
	m.mir.lock(key)
	m.arrp.Load().SetRefAtomic(idx, pair.Ref())
	m.mir.put(key, idx)
	m.mir.unlock(key)
	if m.cache != nil {
		m.cache.put(key, val)
	}
	return nil
}

// Delete unbinds key and frees the pair, the key string and the value.
// It reports whether the key was bound.
func (m *Map) Delete(key string) bool {
	h := m.Heap()
	m.wmu.Lock()
	defer m.wmu.Unlock()
	m.mir.lock(key)
	idx, ok := m.mir.get(key)
	if !ok {
		m.mir.unlock(key)
		return false
	}
	arr := m.arrp.Load()
	pref := arr.GetRef(idx)
	pair := h.Inspect(pref)
	kref := pair.ReadRef(pairKey)
	vref := pair.ReadRef(pairVal)
	// One reference write unbinds; the fence orders it before the frees'
	// invalidations (§4.1.5: a single fence covers a graph of frees).
	// The store is atomic so an unlocked (pinned) reader sees the old
	// pair ref or null, never a torn word.
	arr.SetRefAtomic(idx, 0)
	h.PFence()
	h.Mem().FreeObject(pref)
	h.Mem().FreeObject(kref)
	if vref != 0 && vref != kref { // sets bind keys to themselves
		h.Mem().FreeObject(vref)
	}
	m.mir.del(key)
	// Cache eviction stays inside the exclusive shard section so a
	// concurrent Get cannot reinsert the dying proxy after this del.
	if m.cache != nil {
		m.cache.del(key)
	}
	m.mir.unlock(key)
	m.slots = append(m.slots, idx)
	return true
}

// Remove unbinds key like Delete but hands the value back to the caller
// instead of freeing it.
func (m *Map) Remove(key string) (core.PObject, error) {
	h := m.Heap()
	m.wmu.Lock()
	defer m.wmu.Unlock()
	m.mir.lock(key)
	idx, ok := m.mir.get(key)
	if !ok {
		m.mir.unlock(key)
		return nil, nil
	}
	arr := m.arrp.Load()
	pref := arr.GetRef(idx)
	pair := h.Inspect(pref)
	kref := pair.ReadRef(pairKey)
	vref := pair.ReadRef(pairVal)
	arr.SetRefAtomic(idx, 0)
	h.PFence()
	h.Mem().FreeObject(pref)
	if kref != vref {
		h.Mem().FreeObject(kref)
	}
	m.mir.del(key)
	if m.cache != nil {
		m.cache.del(key) // under the shard lock, as in Delete
	}
	m.mir.unlock(key)
	m.slots = append(m.slots, idx)
	return h.Resurrect(vref)
}

// Keys returns all keys; sorted for ordered mirrors, unspecified order
// otherwise.
func (m *Map) Keys() []string {
	m.mir.rlockAll()
	out := make([]string, 0, m.mir.len())
	m.mir.forEach(func(k string, _ int) bool {
		out = append(out, k)
		return true
	})
	m.mir.runlockAll()
	if !m.mir.ordered() {
		sort.Strings(out)
	}
	return out
}

// ForEach calls fn for each binding until it returns false. The value
// proxy is resurrected per call (base-variant cost model).
func (m *Map) ForEach(fn func(key string, val core.PObject) bool) error {
	type kv struct {
		key string
		idx int
	}
	m.mir.rlockAll()
	snapshot := make([]kv, 0, m.mir.len())
	m.mir.forEach(func(k string, idx int) bool {
		snapshot = append(snapshot, kv{k, idx})
		return true
	})
	m.mir.runlockAll()
	h := m.Heap()
	for _, e := range snapshot {
		// Re-read the binding under its shard lock: it may have been
		// deleted (vref 0) or replaced since the snapshot.
		m.mir.rlock(e.key)
		vref := core.Ref(0)
		if pref := m.arrp.Load().GetRefAtomic(e.idx); pref != 0 {
			vref = h.Pool().ReadUint64Atomic(pairValOff(pref))
		}
		m.mir.runlock(e.key)
		if vref == 0 {
			continue
		}
		po, err := h.Resurrect(vref)
		if err != nil {
			return err
		}
		if !fn(e.key, po) {
			return nil
		}
	}
	return nil
}

// Ascend iterates bindings with key >= from in key order; it requires an
// ordered mirror (tree or skip list).
func (m *Map) Ascend(from string, fn func(key string, val core.PObject) bool) error {
	if !m.mir.ordered() {
		return fmt.Errorf("pdt: Ascend requires an ordered mirror (kind %d is hash)", m.kind)
	}
	type kv struct {
		key string
		idx int
	}
	m.mir.rlockAll()
	var snapshot []kv
	m.mir.ascend(from, func(k string, idx int) bool {
		snapshot = append(snapshot, kv{k, idx})
		return true
	})
	m.mir.runlockAll()
	h := m.Heap()
	for _, e := range snapshot {
		m.mir.rlock(e.key)
		vref := core.Ref(0)
		if pref := m.arrp.Load().GetRefAtomic(e.idx); pref != 0 {
			vref = h.Pool().ReadUint64Atomic(pairValOff(pref))
		}
		m.mir.runlock(e.key)
		if vref == 0 {
			continue
		}
		po, err := h.Resurrect(vref)
		if err != nil {
			return err
		}
		if !fn(e.key, po) {
			return nil
		}
	}
	return nil
}

// takeSlotLocked pops a free slot, growing the persistent array when none
// remain (atomic swing, §4.1.6). Callers hold wmu. Growth takes every
// mirror shard lock for the swap window so no reader holds the old array
// while it is freed; with EBR active the old array's blocks additionally
// wait out the readers' grace period.
// tx, when non-nil, makes the growth copy read the old array through the
// transaction: with async group commit a queued epoch may still hold a
// slot's write in its redo log, and a direct copy would take the stale
// word and orphan the binding once the swing retargets readers to the new
// array. The transactional read settles the queued epoch first (the fa
// waitClear guard) — reads are not logged, so the copy stays cheap.
func (m *Map) takeSlotLocked(tx *fa.Tx) (int, error) {
	if n := len(m.slots); n > 0 {
		idx := m.slots[n-1]
		m.slots = m.slots[:n-1]
		return idx, nil
	}
	h := m.Heap()
	arr := m.arrp.Load()
	oldCap := arr.Cap()
	bigger, err := NewRefArray(h, oldCap*2)
	if err != nil {
		return 0, err
	}
	for i := 0; i < oldCap; i++ {
		ref := arr.GetRef(i)
		if tx != nil {
			if ref, err = tx.ReadRef(arr.Object, uint64(i)*8); err != nil {
				return 0, err
			}
		}
		bigger.WriteRef(uint64(i)*8, ref)
	}
	bigger.PWB()
	m.mir.lockAll()
	m.AtomicReplaceRef(mapArrRef, bigger)
	m.arrp.Store(bigger)
	m.mir.unlockAll()
	for i := bigger.Cap() - 1; i > oldCap; i-- {
		m.slots = append(m.slots, i)
	}
	return oldCap, nil
}

// ---- Transactional operations (the J-PFA backend path) ----

// gateWait orders this structural transaction's shared-block access after
// the previous structural transaction's commit apply. wmu serializes the
// bodies, but a per-Tx commit applies its redo entries after the body
// returned and wmu was released; without the wait the next writer could
// snapshot the backing array mid-apply and commit the pre-apply image
// back over it — a lost update of the predecessor's slot swing (and a
// plain-read race against the apply's atomic line stores). Called with
// wmu held, before the first tx read or write of a shared map block.
func (m *Map) gateWait() {
	if ch := m.gate; ch != nil {
		<-ch
	}
}

// gateArm registers tx as the structural predecessor the next writer must
// wait out. The channel closes once the apply has landed (Defer) or the
// block aborted (OnAbort) — exactly one of the two fires. Async commits
// do not arm: their Defer only runs at epoch drain, and the transactional
// read path already waits out pending epoch applies per block (waitClear),
// so gating on them would stall every writer until the next drain. Called
// with wmu held, after every OnAbort of the op, so the LIFO rollback
// order runs the gate release before any rollback that re-takes wmu.
func (m *Map) gateArm(tx *fa.Tx) {
	if tx.AsyncCommit() {
		return
	}
	ch := make(chan struct{})
	done := func() { close(ch) }
	tx.Defer(done)
	tx.OnAbort(done)
	m.gate = ch
}

// PutTx binds key to val inside a failure-atomic block. val must have been
// allocated in the same block (it is validated by the commit). The caller
// must serialize access to the map across the whole block, as the store's
// lock striping does.
func (m *Map) PutTx(tx *fa.Tx, key string, val core.PObject) error {
	h := m.Heap()
	m.wmu.Lock()
	defer m.wmu.Unlock()
	m.gateWait()
	if idx, ok := m.mir.get(key); ok {
		// Transactional slot read: a queued async epoch may still hold
		// the insert that created this binding.
		arr := m.arrp.Load()
		pref, err := tx.ReadRef(arr.Object, uint64(idx)*8)
		if err != nil {
			return err
		}
		pair := h.Inspect(pref)
		oldRef, err := tx.ReadRef(pair, pairVal)
		if err != nil {
			return err
		}
		if err := tx.WriteRef(pair, pairVal, val.Core().Ref()); err != nil {
			return err
		}
		if oldRef != 0 {
			old, err := h.Resurrect(oldRef)
			if err != nil {
				return err
			}
			if err := tx.Free(old); err != nil {
				return err
			}
		}
		if m.cache != nil {
			key := strings.Clone(key)
			tx.Defer(func() { m.cache.put(key, val) })
		}
		m.gateArm(tx)
		return nil
	}
	idx, err := m.takeSlotLocked(tx)
	if err != nil {
		return err
	}
	ks, err := NewStringTx(tx, key)
	if err != nil {
		return err
	}
	pairPO, err := tx.Alloc(mustClass(h, ClassPair), pairLen)
	if err != nil {
		return err
	}
	pair := pairPO.Core()
	// Direct writes: the pair is invalid until commit.
	pair.WriteRef(pairKey, ks.Ref())
	pair.WriteRef(pairVal, val.Core().Ref())
	if err := tx.WriteRef(m.arrp.Load().Object, uint64(idx)*8, pair.Ref()); err != nil {
		return err
	}
	key = strings.Clone(key)
	m.mir.lock(key)
	m.mir.put(key, idx)
	m.mir.unlock(key)
	tx.OnAbort(func() {
		m.wmu.Lock()
		m.mir.lock(key)
		m.mir.del(key)
		m.mir.unlock(key)
		m.slots = append(m.slots, idx)
		m.wmu.Unlock()
	})
	if m.cache != nil {
		tx.Defer(func() { m.cache.put(key, val) })
	}
	m.gateArm(tx)
	return nil
}

// DeleteTx unbinds key inside a failure-atomic block, freeing pair, key
// and value at commit.
func (m *Map) DeleteTx(tx *fa.Tx, key string) (bool, error) {
	h := m.Heap()
	m.wmu.Lock()
	defer m.wmu.Unlock()
	m.gateWait()
	idx, ok := m.mir.get(key)
	if !ok {
		return false, nil
	}
	arr := m.arrp.Load()
	// Transactional slot read: a queued async epoch may still hold the
	// insert that created this binding.
	pref, err := tx.ReadRef(arr.Object, uint64(idx)*8)
	if err != nil {
		return false, err
	}
	pair := h.Inspect(pref)
	kref := pair.ReadRef(pairKey)
	vref, err := tx.ReadRef(pair, pairVal)
	if err != nil {
		return false, err
	}
	if err := tx.WriteRef(arr.Object, uint64(idx)*8, 0); err != nil {
		return false, err
	}
	frees := []core.Ref{pref, kref}
	if vref != 0 && vref != kref { // sets bind keys to themselves
		frees = append(frees, vref)
	}
	for _, ref := range frees {
		po, err := h.Resurrect(ref)
		if err != nil {
			return false, err
		}
		if err := tx.Free(po); err != nil {
			return false, err
		}
	}
	key = strings.Clone(key)
	m.mir.lock(key)
	m.mir.del(key)
	m.mir.unlock(key)
	m.slots = append(m.slots, idx)
	tx.OnAbort(func() {
		m.wmu.Lock()
		m.mir.lock(key)
		m.mir.put(key, idx)
		m.mir.unlock(key)
		for i, s := range m.slots {
			if s == idx {
				m.slots = append(m.slots[:i], m.slots[i+1:]...)
				break
			}
		}
		m.wmu.Unlock()
	})
	tx.Defer(func() {
		if m.cache != nil {
			m.cache.del(key)
		}
	})
	m.gateArm(tx)
	return true, nil
}
