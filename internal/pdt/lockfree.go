package pdt

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/obs"
)

// Lock-free durable hash map and set (DESIGN.md §16).
//
// The locked Map of §4.3.2 serializes structural writers on a mutex and
// keeps the key lookup in a volatile mirror. LFMap replaces both with the
// recipe of Zuriel et al. (Efficient Lock-Free Durable Sets) specialized
// to J-NVM's heap: CAS-linked bucket chains whose nodes ("cells") live in
// NVMM, per-cell validity brackets instead of redo logging, and
// persist-at-destination writes — an insert flushes exactly one cache
// line (its cell) and issues exactly one fence. Links are volatile
// content (NVTraverse's observation): recovery ignores every next
// pointer and rebuilds the chains from the validity brackets alone.
//
// Cell layout (64 bytes, cache-line aligned, raw pool offsets):
//
//	+0   vstart   1 = live (atomic; the insert's publication word)
//	+8   vref     value reference (atomic CAS target; 0 = vanished)
//	+16  klen     u32 key length; 0xFFFFFFFF = out-of-line key
//	+20  key      inline key bytes (≤ 36), or kref at +24 when out of line
//	+56  word7    next-cell offset | vend validity bit (bit 0)
//
// Validity bracket: a cell is recovery-accepted iff vstart == 1 AND the
// vend bit is set. The two bracket words sit at opposite ends of the
// line and the crash model (nvm.CrashLine) only tears lines into a
// contiguous head or tail at 8-byte boundaries, so over a durably zeroed
// cell no torn image can fabricate both brackets: any partial persist of
// an insert is detectably incomplete. Free cells are durably zeroed
// before reuse (deferRecycle + the next insert's fence), which is what
// makes the argument compositional across reuse.
//
// Ordering protocol (the one pwb + one fence of the paper's Table 3):
//
//	insert: write words 1..7 (vref, key, vend) → PFence (orders the
//	        born-valid key/value flushes AND drains any pending
//	        recycle-zero of this cell) → store vstart=1 → one PWB of the
//	        cell line → CAS the bucket head (volatile link).
//	update: PFence (orders the new value's flush) → CAS vref → one PWB.
//	delete: CAS vstart 1→0 (claim) → CAS vref →0 (value ownership) →
//	        one PWB → unlink → frees ride the EBR batch fence.
//
// Readers never lock, never copy, and never fall back: they pin an EBR
// slot, walk the chain with atomic loads, and hand out the value ref
// under the pin. Deleted cells keep their next pointer until the grace
// period expires, so a reader standing on an unlinked cell still reaches
// the rest of its chain.
const (
	ClassLFMap     = "pdt.lfmap"
	ClassLFSet     = "pdt.lfset"
	ClassLFBuckets = "pdt.lfbuckets"
	ClassLFChunk   = "pdt.lfchunk"
)

// Header layout (object data offsets).
const (
	lfBucketsRef = 0  // ClassLFBuckets object: nb words of cell offsets
	lfDirRef     = 8  // ClassRefArr directory of ClassLFChunk objects
	lfNBOff      = 16 // bucket count (power of two)
	lfMarkerRef  = 24 // sets only: the shared membership marker object

	lfMapHeaderLen = 24
	lfSetHeaderLen = 32

	lfDirInitial = 16
	lfDefaultNB  = 1024
)

// Cell geometry (offsets relative to the cell's pool base).
const (
	lfCellSize   = 64
	lfCellVStart = 0
	lfCellVRef   = 8
	lfCellKLen   = 16
	lfCellKey    = 20
	lfCellKRef   = 24
	lfCellWord7  = 56

	lfInlineKeyMax = lfCellWord7 - lfCellKey // 36 inline key bytes
	lfKLenIndirect = 0xFFFFFFFF
	lfVEndBit      = uint64(1)
)

// lfCellBases are the chunk-data offsets of the three cells carved from
// one 256 B block: the block is 256-aligned, so pool offsets block+64,
// +128, +192 are line-aligned, i.e. data offsets 56, 120, 184.
var lfCellBases = [3]uint64{56, 120, 184}

// lfChunkRefs reports the recovery references of a chunk: for every
// bracket-complete cell, the value reference and (for out-of-line keys)
// the key reference. Bracket-incomplete cells report nothing — their
// referents are unreachable and the sweep reclaims them; the map's
// normalization pass (OnResurrect) then must NOT free them again.
func lfChunkRefs(o *core.Object) []uint64 {
	var offs []uint64
	for _, base := range lfCellBases {
		if o.ReadUint64(base+lfCellVStart) != 1 {
			continue
		}
		if o.ReadUint64(base+lfCellWord7)&lfVEndBit == 0 {
			continue
		}
		offs = append(offs, base+lfCellVRef)
		if o.ReadUint32(base+lfCellKLen) == lfKLenIndirect {
			offs = append(offs, base+lfCellKRef)
		}
	}
	return offs
}

// lfFreeNode is a volatile Treiber-stack node tracking one free cell.
// Nodes are ordinary Go heap objects, so the stack is ABA-safe under GC.
type lfFreeNode struct {
	cell uint64
	next *lfFreeNode
}

// LFMap is the lock-free durable hash map. Same ownership contract as
// Map: the map owns keys and cells; values passed to Put become owned.
type LFMap struct {
	*core.Object

	buckets *core.Object // ClassLFBuckets: nb bucket-head words
	nb      uint64       // bucket count (power of two)
	dir     *PRefArray   // chunk directory (recovery reachability)
	marker  core.Ref     // set marker (0 for maps)
	isSet   bool

	count  atomic.Int64
	free   atomic.Pointer[lfFreeNode]
	growMu sync.Mutex // serializes chunk carving and dir growth
	nchunk int        // occupied dir slots (guarded by growMu)

	rs atomic.Pointer[obs.ReadStats]
}

// LFSet is the lock-free durable set: LFMap binding every member key to
// one shared marker object, so a member costs one cell (plus a key blob
// for long keys) and membership updates are idempotent CAS no-ops.
type LFSet struct{ LFMap }

// NewLFMap creates an empty lock-free map with the given bucket count
// (rounded up to a power of two; ≤ 0 selects the default). The map is
// validated and fenced; the caller publishes it (root map, field write).
func NewLFMap(h *core.Heap, buckets int) (*LFMap, error) {
	po, err := newLF(h, ClassLFMap, lfMapHeaderLen, buckets)
	if err != nil {
		return nil, err
	}
	return po.(*LFMap), nil
}

// NewLFSet creates an empty lock-free set (see NewLFMap).
func NewLFSet(h *core.Heap, buckets int) (*LFSet, error) {
	po, err := newLF(h, ClassLFSet, lfSetHeaderLen, buckets)
	if err != nil {
		return nil, err
	}
	return po.(*LFSet), nil
}

func lfBucketCount(buckets int) uint64 {
	if buckets <= 0 {
		buckets = lfDefaultNB
	}
	nb := uint64(16)
	for nb < uint64(buckets) {
		nb <<= 1
	}
	return nb
}

func newLF(h *core.Heap, class string, headerLen uint64, buckets int) (core.PObject, error) {
	nb := lfBucketCount(buckets)
	bpo, err := h.Alloc(mustClass(h, ClassLFBuckets), nb*8)
	if err != nil {
		return nil, err
	}
	dir, err := NewRefArray(h, lfDirInitial)
	if err != nil {
		return nil, err
	}
	po, err := h.Alloc(mustClass(h, class), headerLen)
	if err != nil {
		return nil, err
	}
	m := po.(interface{ lf() *LFMap }).lf()
	var marker core.Ref
	if class == ClassLFSet {
		mk, err := NewBytesValid(h, nil)
		if err != nil {
			return nil, err
		}
		marker = mk.Ref()
		m.WriteRef(lfMarkerRef, marker)
	}
	m.WriteRef(lfBucketsRef, bpo.Core().Ref())
	m.WriteRef(lfDirRef, dir.Ref())
	m.WriteUint64(lfNBOff, nb)
	m.PWB()
	bpo.Core().Validate()
	dir.Validate()
	m.Validate()
	h.PFence()
	m.initRuntime(h, bpo.Core(), dir, nb, marker)
	h.Mem().EnableEBR()
	return po, nil
}

// lf lets the shared constructor reach the embedded state through either
// concrete type.
func (m *LFMap) lf() *LFMap { return m }

func (m *LFMap) initRuntime(h *core.Heap, buckets *core.Object, dir *PRefArray, nb uint64, marker core.Ref) {
	m.buckets = buckets
	m.nb = nb
	m.dir = dir
	m.marker = marker
	m.count.Store(0)
	m.free.Store(nil)
	m.nchunk = 0
}

// SetReadObs wires the lock-free counters (reads, writes, CAS retries,
// persists) into the given stats block. Call before serving traffic.
func (m *LFMap) SetReadObs(rs *obs.ReadStats) { m.rs.Store(rs) }

func (m *LFMap) obsRead() {
	if rs := m.rs.Load(); rs != nil {
		rs.LockFreeReads.Inc()
	}
}

func (m *LFMap) obsWrite() {
	if rs := m.rs.Load(); rs != nil {
		rs.LockFreeWrites.Inc()
	}
}

func (m *LFMap) obsRetry() {
	if rs := m.rs.Load(); rs != nil {
		rs.CASRetries.Inc()
	}
}

func (m *LFMap) obsPersist(n uint64) {
	if rs := m.rs.Load(); rs != nil {
		rs.LFPersists.Add(n)
	}
}

// Len returns the number of bindings.
func (m *LFMap) Len() int { return int(m.count.Load()) }

// IsSet reports whether this instance carries set semantics.
func (m *LFMap) IsSet() bool { return m.isSet }

// pin claims an EBR reader slot, spinning until one frees up: the
// lock-free path never falls back to a locked or copying alternative.
func (m *LFMap) pin(mem *heap.Heap, hint uint32) int {
	slot := mem.PinReader(hint)
	for slot < 0 {
		runtime.Gosched()
		slot = mem.PinReader(hint)
	}
	return slot
}

func (m *LFMap) bucketOf(hash uint32) uint64 { return uint64(hash) & (m.nb - 1) }

func (m *LFMap) bucketHead(b uint64) uint64 { return m.buckets.ReadRefAtomic(b * 8) }

func (m *LFMap) casBucketHead(b, old, new uint64) bool {
	return m.buckets.CompareAndSwapRef(b*8, old, new)
}

// cellKeyEquals compares the key stored in cell c against key without
// allocating. Middle words of a reachable cell are immutable, so plain
// reads are safe under the publication CAS's happens-before edge.
func (m *LFMap) cellKeyEquals(c uint64, key string) bool {
	p := m.Heap().Pool()
	kl := p.ReadUint32(c + lfCellKLen)
	if kl == lfKLenIndirect {
		return BlobEquals(m.Heap(), p.ReadUint64(c+lfCellKRef), key)
	}
	if uint64(kl) != uint64(len(key)) {
		return false
	}
	return string(p.View(c+lfCellKey, uint64(kl))) == key
}

// findFrom walks the chain starting at cell c for a live cell holding
// key. Traversal loads vstart and word7 atomically (they are mutated by
// concurrent claims and unlinks); dead cells are skipped but still
// traversed through — delete never truncates a chain.
func (m *LFMap) findFrom(c uint64, key string) uint64 {
	p := m.Heap().Pool()
	for c != 0 {
		if p.ReadUint64Atomic(c+lfCellVStart) == 1 && m.cellKeyEquals(c, key) {
			return c
		}
		c = p.ReadUint64Atomic(c+lfCellWord7) &^ lfVEndBit
	}
	return 0
}

// ---- allocation: chunk carving and the free-cell stack ----

func (m *LFMap) pushFree(c uint64) {
	n := &lfFreeNode{cell: c}
	for {
		old := m.free.Load()
		n.next = old
		if m.free.CompareAndSwap(old, n) {
			return
		}
	}
}

func (m *LFMap) popFree() uint64 {
	for {
		old := m.free.Load()
		if old == nil {
			return 0
		}
		if m.free.CompareAndSwap(old, old.next) {
			return old.cell
		}
	}
}

// takeCell pops a free cell, carving a fresh chunk when the stack is
// empty. Carving publishes the chunk in the directory and fences before
// any of its cells can be used, so a cell with a durable vstart=1 always
// sits in a durably reachable chunk.
func (m *LFMap) takeCell() (uint64, error) {
	if c := m.popFree(); c != 0 {
		return c, nil
	}
	m.growMu.Lock()
	defer m.growMu.Unlock()
	if c := m.popFree(); c != 0 {
		return c, nil
	}
	h := m.Heap()
	po, err := h.Alloc(mustClass(h, ClassLFChunk), heap.Payload)
	if err != nil {
		return 0, err
	}
	co := po.(*core.Object)
	co.ValidateDeferred()
	co.PWB()
	if m.nchunk == m.dir.Cap() {
		if err := m.growDir(h); err != nil {
			return 0, err
		}
	}
	m.dir.SetRef(m.nchunk, co.Ref())
	h.PFence()
	m.nchunk++
	ref := co.Ref()
	m.pushFree(ref + 192)
	m.pushFree(ref + 128)
	return ref + 64, nil
}

func (m *LFMap) growDir(h *core.Heap) error {
	bigger, err := NewRefArray(h, m.dir.Cap()*2)
	if err != nil {
		return err
	}
	for i := 0; i < m.dir.Cap(); i++ {
		bigger.WriteRef(uint64(i)*8, m.dir.GetRef(i))
	}
	bigger.PWB()
	// Atomic swing frees the old directory (§4.1.6); no reader ever
	// holds the directory, so the EBR grace period is a formality.
	m.AtomicReplaceRef(lfDirRef, bigger)
	m.dir = bigger
	return nil
}

// deferRecycle zeroes and reuses a claimed cell once every reader that
// could still be traversing it has unpinned. The durable zero (one pwb,
// drained by the next insert's fence) restores the bracket argument's
// base state before the cell can carry a new binding.
func (m *LFMap) deferRecycle(c uint64) {
	p := m.Heap().Pool()
	m.Heap().Mem().Defer(func() {
		for i := uint64(0); i < lfCellSize; i += 8 {
			p.WriteUint64(c+i, 0)
		}
		p.PWBRange(c, lfCellSize)
		m.pushFree(c)
	})
}

// recycleUnpublished recycles a cell that lost an insert race before it
// was ever linked: no reader can hold it, so no grace period is needed.
func (m *LFMap) recycleUnpublished(c uint64) {
	p := m.Heap().Pool()
	p.WriteUint64Atomic(c+lfCellVStart, 0)
	for i := uint64(8); i < lfCellSize; i += 8 {
		p.WriteUint64(c+i, 0)
	}
	p.PWBRange(c, lfCellSize)
	m.obsPersist(1)
	m.pushFree(c)
}

// ---- write path ----

const (
	lfSwapped = iota
	lfVanished
)

// casValue swings cell c's value reference to vref, freeing the
// displaced value. CAS-displacement is the ownership rule: whoever swaps
// a value OUT frees it, so racing updaters and deleters never double
// free. needFence orders the new value's flush before it becomes
// reachable; callers that already fenced (the insert path) skip it.
func (m *LFMap) casValue(c uint64, vref core.Ref, needFence bool) int {
	h := m.Heap()
	p := h.Pool()
	if needFence {
		p.PFence()
		m.obsPersist(1)
	}
	for {
		old := p.ReadUint64Atomic(c + lfCellVRef)
		if old == 0 {
			return lfVanished // a deleter claimed the cell
		}
		if old == vref {
			return lfSwapped // idempotent (set re-add, same-object put)
		}
		if p.CompareAndSwapUint64(c+lfCellVRef, old, vref) {
			p.PWBRange(c, lfCellSize)
			m.obsPersist(1)
			if old != m.marker {
				h.Mem().FreeObject(old)
			}
			return lfSwapped
		}
		m.obsRetry()
	}
}

// insert binds key to vref. valFence is true when vref's content was
// flushed but not yet fenced (fresh value objects); the marker of a set
// is durable since construction and skips it on the update path.
func (m *LFMap) insert(key string, vref core.Ref, valFence bool) error {
	h := m.Heap()
	p := h.Pool()
	mem := h.Mem()
	hash := keyHash(key)
	b := m.bucketOf(hash)
	slot := m.pin(mem, hash)
	defer mem.UnpinReader(slot)
	m.obsWrite()
	for {
		// Update path: the newest binding for a key is always the first
		// live match from the head (inserts prepend).
		if c := m.findFrom(m.bucketHead(b), key); c != 0 {
			swapped := m.casValue(c, vref, valFence) == lfSwapped
			valFence = false // the fence, if any, is issued exactly once
			if swapped {
				return nil
			}
			m.obsRetry()
			continue // vanished under us; retry as a fresh insert
		}
		cell, kref, err := m.prepareCell(key, vref)
		if err != nil {
			return err
		}
		valFence = false // fence A covered the value flush
		linked := false
		for {
			head := m.bucketHead(b)
			if dup := m.findFrom(head, key); dup != 0 {
				// Lost the insert race: withdraw our cell, then update
				// the winner. Recovery tolerates a crash image holding
				// both cells (first-seen dedup + shared-vref guard).
				m.recycleUnpublished(cell)
				if kref != 0 {
					mem.FreeObject(kref)
				}
				break
			}
			p.WriteUint64Atomic(cell+lfCellWord7, head|lfVEndBit)
			if m.casBucketHead(b, head, cell) {
				linked = true
				break
			}
			m.obsRetry()
		}
		if linked {
			m.count.Add(1)
			return nil
		}
	}
}

// prepareCell writes a cell's payload, fences (fence A: orders the
// born-valid key/value flushes and any pending recycle-zero of this
// cell), stores vstart and issues the insert's single pwb. The returned
// cell is bracket-complete in cache but not yet linked.
func (m *LFMap) prepareCell(key string, vref core.Ref) (cell uint64, kref core.Ref, err error) {
	h := m.Heap()
	p := h.Pool()
	cell, err = m.takeCell()
	if err != nil {
		return 0, 0, err
	}
	if len(key) <= lfInlineKeyMax {
		p.WriteUint32(cell+lfCellKLen, uint32(len(key)))
		p.WriteBytes(cell+lfCellKey, []byte(key))
	} else {
		ks, kerr := NewStringValid(h, key)
		if kerr != nil {
			m.pushFree(cell)
			return 0, 0, kerr
		}
		kref = ks.Ref()
		p.WriteUint32(cell+lfCellKLen, lfKLenIndirect)
		p.WriteUint64(cell+lfCellKRef, kref)
	}
	p.WriteUint64(cell+lfCellVRef, vref)
	p.WriteUint64(cell+lfCellWord7, lfVEndBit)
	p.PFence() // fence A
	p.WriteUint64Atomic(cell+lfCellVStart, 1)
	p.PWBRange(cell, lfCellSize)
	m.obsPersist(2)
	return cell, kref, nil
}

// Put binds key to the persistent object val; val becomes owned by the
// map. One pwb + one fence on the structure in the common case, plus the
// value's own (born-valid) flush.
func (m *LFMap) Put(key string, val core.PObject) error {
	vo := val.Core()
	if !vo.Valid() {
		vo.Validate()
	}
	return m.insert(key, vo.Ref(), true)
}

// PutRef binds key to an already-durable value reference (the store
// backend's path for born-valid records: content flushed, fence pending).
func (m *LFMap) PutRef(key string, vref core.Ref) error {
	return m.insert(key, vref, true)
}

// remove unbinds key; freeVal selects Delete (free the value) vs Remove
// (hand it back). Returns the claimed value reference.
func (m *LFMap) remove(key string, freeVal bool) (core.Ref, bool) {
	h := m.Heap()
	p := h.Pool()
	mem := h.Mem()
	hash := keyHash(key)
	b := m.bucketOf(hash)
	slot := m.pin(mem, hash)
	defer mem.UnpinReader(slot)
	m.obsWrite()
	for {
		c := m.findFrom(m.bucketHead(b), key)
		if c == 0 {
			return 0, false
		}
		if !p.CompareAndSwapUint64(c+lfCellVStart, 1, 0) {
			m.obsRetry()
			continue // another deleter claimed it; look again
		}
		// Claim the value by swapping it out (ownership rule): a racing
		// updater that loses sees vref==0 and retries as an insert.
		var vref uint64
		for {
			v := p.ReadUint64Atomic(c + lfCellVRef)
			if p.CompareAndSwapUint64(c+lfCellVRef, v, 0) {
				vref = v
				break
			}
			m.obsRetry()
		}
		var kref uint64
		if p.ReadUint32(c+lfCellKLen) == lfKLenIndirect {
			kref = p.ReadUint64(c + lfCellKRef)
		}
		// One pwb persists the withdrawal; durability rides the next
		// fence anywhere (the EBR batch fence at the latest, which
		// orders it before the frees' invalidations).
		p.PWBRange(c, lfCellSize)
		m.obsPersist(1)
		m.unlink(b, c)
		if kref != 0 {
			mem.FreeObject(kref)
		}
		if freeVal && vref != 0 && vref != m.marker {
			mem.FreeObject(vref)
		}
		m.deferRecycle(c)
		m.count.Add(-1)
		return vref, true
	}
}

// unlink splices cell c out of bucket b, re-traversing until c is
// unreachable: a predecessor spliced concurrently can resurrect c's
// reachability, so one successful CAS is not enough.
func (m *LFMap) unlink(b, c uint64) {
	p := m.Heap().Pool()
	for {
		prev := uint64(0)
		cur := m.bucketHead(b)
		for cur != 0 && cur != c {
			prev = cur
			cur = p.ReadUint64Atomic(cur+lfCellWord7) &^ lfVEndBit
		}
		if cur == 0 {
			return // unreachable
		}
		nxt := p.ReadUint64Atomic(c+lfCellWord7) &^ lfVEndBit
		if prev == 0 {
			if !m.casBucketHead(b, c, nxt) {
				m.obsRetry()
			}
			continue
		}
		w := p.ReadUint64Atomic(prev + lfCellWord7)
		if w&^lfVEndBit != c {
			continue // chain moved; re-traverse
		}
		if !p.CompareAndSwapUint64(prev+lfCellWord7, w, nxt|(w&lfVEndBit)) {
			m.obsRetry()
		}
	}
}

// Delete unbinds key, freeing the value (and the key blob); reports
// whether the key was bound.
func (m *LFMap) Delete(key string) bool {
	_, ok := m.remove(key, true)
	return ok
}

// Remove unbinds key like Delete but hands the value back to the caller.
func (m *LFMap) Remove(key string) (core.PObject, error) {
	vref, ok := m.remove(key, false)
	if !ok || vref == 0 || vref == m.marker {
		return nil, nil
	}
	return m.Heap().Resurrect(vref)
}

// ---- read path ----

// WithValue looks up key and, when bound, invokes fn with the value
// reference while the EBR pin is held — the zero-copy window in which
// the referenced object cannot be recycled. fn may be nil (membership
// test). Never locks, never copies, never falls back.
func (m *LFMap) WithValue(key string, fn func(vref core.Ref)) bool {
	h := m.Heap()
	p := h.Pool()
	mem := h.Mem()
	hash := keyHash(key)
	slot := m.pin(mem, hash)
	defer mem.UnpinReader(slot)
	m.obsRead()
	c := m.findFrom(m.bucketHead(m.bucketOf(hash)), key)
	if c == 0 {
		return false
	}
	vref := p.ReadUint64Atomic(c + lfCellVRef)
	if vref == 0 {
		return false
	}
	if fn != nil {
		fn(vref)
	}
	return true
}

// Contains reports whether key is bound.
func (m *LFMap) Contains(key string) bool { return m.WithValue(key, nil) }

// GetRef returns the value reference bound to key (0 if unbound). The
// reference is only guaranteed stable for callers that serialize against
// deleters externally; concurrent readers should use WithValue.
func (m *LFMap) GetRef(key string) core.Ref {
	var out core.Ref
	m.WithValue(key, func(vref core.Ref) { out = vref })
	return out
}

// Get resurrects the value bound to key (nil if unbound). The proxy is
// built under the reader pin.
func (m *LFMap) Get(key string) (core.PObject, error) {
	var po core.PObject
	var err error
	found := m.WithValue(key, func(vref core.Ref) {
		if vref != m.marker {
			po, err = m.Heap().Resurrect(vref)
		}
	})
	if !found {
		return nil, nil
	}
	return po, err
}

// ForEach calls fn for every binding until it returns false. The
// iteration pins per bucket, so it observes a sequence of per-bucket
// snapshots, the usual weak semantics of lock-free iteration.
func (m *LFMap) ForEach(fn func(key string, vref core.Ref) bool) {
	h := m.Heap()
	p := h.Pool()
	mem := h.Mem()
	for b := uint64(0); b < m.nb; b++ {
		slot := m.pin(mem, uint32(b))
		c := m.bucketHead(b)
		cont := true
		for c != 0 && cont {
			if p.ReadUint64Atomic(c+lfCellVStart) == 1 {
				vref := p.ReadUint64Atomic(c + lfCellVRef)
				if vref != 0 {
					cont = fn(m.cellKey(c), vref)
				}
			}
			c = p.ReadUint64Atomic(c+lfCellWord7) &^ lfVEndBit
		}
		mem.UnpinReader(slot)
		if !cont {
			return
		}
	}
}

// cellKey decodes (copies) the key stored in cell c.
func (m *LFMap) cellKey(c uint64) string {
	p := m.Heap().Pool()
	kl := p.ReadUint32(c + lfCellKLen)
	if kl == lfKLenIndirect {
		return readStringAt(m.Heap(), p.ReadUint64(c+lfCellKRef))
	}
	return string(p.View(c+lfCellKey, uint64(kl)))
}

// Keys returns all bound keys, sorted (for test determinism).
func (m *LFMap) Keys() []string {
	out := make([]string, 0, m.Len())
	m.ForEach(func(k string, _ core.Ref) bool {
		out = append(out, k)
		return true
	})
	sort.Strings(out)
	return out
}

// ---- set facade ----

// Add inserts key; idempotent.
func (s *LFSet) Add(key string) error { return s.insert(key, s.marker, false) }

// Members returns the member keys, sorted.
func (s *LFSet) Members() []string { return s.Keys() }

// ---- recovery: validity-bit normalization and mirror-free rebuild ----

// lfJudged is the verdict on one cell, produced read-only so the
// parallel rebuild can fan judging out and merge deterministically.
type lfJudged struct {
	cell     uint64
	key      string
	vref     core.Ref
	kref     core.Ref
	complete bool // both validity brackets durable
	accept   bool // complete + value + decodable key (pre-dedup)
	nonzero  bool // needs a durable re-zero before reuse
}

func (m *LFMap) judgeCell(c uint64) lfJudged {
	p := m.Heap().Pool()
	j := lfJudged{cell: c}
	for i := uint64(0); i < lfCellSize; i += 8 {
		if p.ReadUint64(c+i) != 0 {
			j.nonzero = true
			break
		}
	}
	vstart := p.ReadUint64(c + lfCellVStart)
	vend := p.ReadUint64(c+lfCellWord7) & lfVEndBit
	j.complete = vstart == 1 && vend != 0
	if !j.complete {
		return j
	}
	j.vref = p.ReadUint64(c + lfCellVRef)
	kl := p.ReadUint32(c + lfCellKLen)
	switch {
	case kl == lfKLenIndirect:
		j.kref = p.ReadUint64(c + lfCellKRef)
		if j.kref != 0 {
			j.key = readStringAt(m.Heap(), j.kref)
		}
	case uint64(kl) <= lfInlineKeyMax:
		j.key = string(p.ReadBytes(c+lfCellKey, uint64(kl)))
	default:
		return j // torn beyond the bracket model; treat as garbage
	}
	j.accept = j.vref != 0 && (kl != lfKLenIndirect || j.kref != 0)
	return j
}

// OnResurrect reconstructs the volatile state from the validity bits
// (§4.1.3 adapted to SOFT's recipe): every bracket-complete cell with a
// surviving value and key is relinked; everything else is normalized —
// validity bits cleared, payload durably re-zeroed, cell returned to the
// free stack. First-seen-wins dedup resolves the (legal) crash image of
// an insert race, with a shared-vref guard so the loser's value is not
// freed when the winner holds the same reference.
func (m *LFMap) OnResurrect() {
	h := m.Heap()
	if m.isSet {
		m.marker = m.ReadRef(lfMarkerRef)
		if m.marker == 0 {
			// The marker was nullified (it can only happen on images
			// predating its durability point, where the set is empty).
			if mk, err := NewBytesValid(h, nil); err == nil {
				m.marker = mk.Ref()
				m.WriteRef(lfMarkerRef, m.marker)
				m.PWBField(lfMarkerRef, 8)
				h.PFence()
			}
		}
	}
	m.buckets = h.Inspect(m.ReadRef(lfBucketsRef))
	m.nb = m.ReadUint64(lfNBOff)
	m.dir = &PRefArray{Object: h.Inspect(m.ReadRef(lfDirRef))}
	m.count.Store(0)
	m.free.Store(nil)
	// Bucket words are volatile content: reset before relinking.
	for b := uint64(0); b < m.nb; b++ {
		m.buckets.WriteRef(b*8, 0)
	}
	var chunks []core.Ref
	for i := 0; i < m.dir.Cap(); i++ {
		if ref := m.dir.GetRef(i); ref != 0 {
			chunks = append(chunks, ref)
		}
	}
	m.nchunk = len(chunks)

	start := time.Now()
	judged := make([]lfJudged, len(chunks)*len(lfCellBases))
	workers := h.RecoverParallelism()
	if workers > 1 && len(chunks) >= lfRebuildParallelMin {
		m.judgeParallel(chunks, judged, workers)
	} else {
		for ci, ref := range chunks {
			for k := range lfCellBases {
				judged[ci*len(lfCellBases)+k] = m.judgeCell(ref + uint64(64*(k+1)))
			}
		}
	}
	cleaned := m.mergeJudged(h, judged)
	if cleaned {
		h.PFence()
	}
	ro := h.RecoveryObs()
	ro.RebuildNs.Add(uint64(time.Since(start)))
	ro.RebuildEntries.Add(uint64(m.count.Load()))
	h.Mem().EnableEBR()
}

// lfRebuildParallelMin is the chunk count below which judging stays
// serial (mirrors the locked Map's rebuildParallelMin economics).
const lfRebuildParallelMin = 1024

// judgeParallel fans the read-only cell judging across workers; the
// fixed index mapping makes the merge identical to the serial scan.
func (m *LFMap) judgeParallel(chunks []core.Ref, judged []lfJudged, workers int) {
	var next atomic.Int64
	var wg sync.WaitGroup
	per := 64 // chunks per grab
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(per))) - per
				if lo >= len(chunks) {
					return
				}
				hi := lo + per
				if hi > len(chunks) {
					hi = len(chunks)
				}
				for ci := lo; ci < hi; ci++ {
					ref := chunks[ci]
					for k := range lfCellBases {
						judged[ci*len(lfCellBases)+k] = m.judgeCell(ref + uint64(64*(k+1)))
					}
				}
			}
		}()
	}
	wg.Wait()
}

// mergeJudged applies the verdicts in scan order: accepted cells are
// relinked (volatile), rejected bracket-complete cells free their
// surviving referents (bracket-incomplete ones must not — the sweep
// already reclaimed anything they referenced), and every non-accepted
// cell is normalized to durable zero and pushed onto the free stack.
func (m *LFMap) mergeJudged(h *core.Heap, judged []lfJudged) (cleaned bool) {
	p := h.Pool()
	mem := h.Mem()
	seen := make(map[string]core.Ref)
	for i := range judged {
		j := &judged[i]
		accept := j.accept
		if accept {
			if win, dup := seen[j.key]; dup {
				// Insert-race image: keep the first-seen binding.
				if j.vref != 0 && j.vref != win && j.vref != m.marker {
					mem.FreeObject(j.vref)
				}
				if j.kref != 0 {
					mem.FreeObject(j.kref)
				}
				accept = false
			}
		} else if j.complete {
			if j.vref != 0 && j.vref != m.marker {
				mem.FreeObject(j.vref)
			}
			if j.kref != 0 {
				mem.FreeObject(j.kref)
			}
		}
		if accept {
			seen[j.key] = j.vref
			b := m.bucketOf(keyHash(j.key))
			head := m.buckets.ReadRef(b * 8)
			// Keep the durable vend bit; next pointers are volatile.
			p.WriteUint64(j.cell+lfCellWord7, head|lfVEndBit)
			m.buckets.WriteRef(b*8, j.cell)
			m.count.Add(1)
			continue
		}
		if j.nonzero {
			for off := uint64(0); off < lfCellSize; off += 8 {
				p.WriteUint64(j.cell+off, 0)
			}
			p.PWBRange(j.cell, lfCellSize)
			cleaned = true
		}
		m.pushFree(j.cell)
	}
	return cleaned
}

// FsckOrphans reports cells that are bracket-complete but unreachable
// from any bucket — a diagnostic invariant check for tests: after any
// quiescent point the set of bracket-complete cells must exactly match
// the live bindings.
func (m *LFMap) FsckOrphans() error {
	p := m.Heap().Pool()
	reach := make(map[uint64]bool)
	for b := uint64(0); b < m.nb; b++ {
		for c := m.bucketHead(b); c != 0; c = p.ReadUint64Atomic(c+lfCellWord7) &^ lfVEndBit {
			reach[c] = true
		}
	}
	for i := 0; i < m.dir.Cap(); i++ {
		ref := m.dir.GetRef(i)
		if ref == 0 {
			continue
		}
		for k := range lfCellBases {
			c := ref + uint64(64*(k+1))
			live := p.ReadUint64Atomic(c+lfCellVStart) == 1 &&
				p.ReadUint64Atomic(c+lfCellWord7)&lfVEndBit != 0
			if live && !reach[c] {
				return fmt.Errorf("pdt: bracket-complete cell %#x unreachable", c)
			}
		}
	}
	return nil
}
