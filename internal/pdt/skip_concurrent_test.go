package pdt

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
)

// TestMirrorSkipAscendUnderConcurrentInserts drives Ascend over a
// MirrorSkip map while multiple writers keep inserting: every snapshot
// must be sorted, duplicate-free, and contain every key that was already
// present before the iteration started (keys inserted concurrently may
// or may not appear — the usual snapshot-at-start semantics).
func TestMirrorSkipAscendUnderConcurrentInserts(t *testing.T) {
	h, _, _ := openPDT(t, 1<<24, false)
	m := newTestMap(t, h, MirrorSkip, "m")
	const base = 64
	for i := 0; i < base; i++ {
		putStr(t, h, m, fmt.Sprintf("base-%03d", i), "v")
	}

	const writers = 3 // > 1 writer: growth + skip-list rebalancing race the scan
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				putStr(t, h, m, fmt.Sprintf("w%d-%05d", w, i), "x")
				if i%4 == 0 {
					m.Delete(fmt.Sprintf("w%d-%05d", w, i))
				}
			}
		}(w)
	}

	for round := 0; round < 30; round++ {
		var got []string
		err := m.Ascend("", func(k string, _ core.PObject) bool {
			got = append(got, k)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if !sort.StringsAreSorted(got) {
			t.Fatalf("round %d: Ascend out of order: %v", round, got)
		}
		seen := make(map[string]bool, len(got))
		baseSeen := 0
		for _, k := range got {
			if seen[k] {
				t.Fatalf("round %d: duplicate key %q in Ascend", round, k)
			}
			seen[k] = true
			if len(k) == 8 && k[:5] == "base-" {
				baseSeen++
			}
		}
		if baseSeen != base {
			t.Fatalf("round %d: Ascend saw %d/%d stable base keys", round, baseSeen, base)
		}
	}
	close(stop)
	wg.Wait()

	// Post-quiesce: a bounded range scan from the middle stays exact.
	var tail []string
	if err := m.Ascend("base-032", func(k string, _ core.PObject) bool {
		if len(k) == 8 && k[:5] == "base-" {
			tail = append(tail, k)
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(tail) != base-32 || tail[0] != "base-032" {
		t.Fatalf("range scan from base-032: %d keys, first %q", len(tail), tail[0])
	}
}
