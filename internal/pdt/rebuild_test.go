package pdt

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/fa"
	"repro/internal/heap"
	"repro/internal/nvm"
)

func reopenPDTWith(t testing.TB, pool *nvm.Pool, parallelism int) *core.Heap {
	t.Helper()
	h, err := core.Open(pool, core.Config{
		HeapOptions: heap.Options{LogSlots: 4, LogSlotSize: 1 << 14},
		Classes:     Classes(),
		LogHandler:  fa.NewManager(),
		Recover:     core.RecoverOptions{Parallelism: parallelism},
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestParallelMirrorRebuildEquivalence checks the concurrent OnResurrect
// against the serial scan on a map big enough (array cap past
// rebuildParallelMin) to take the parallel path: the rebuilt mirror and
// the free-slot list — including its order — must be identical for every
// mirror kind.
func TestParallelMirrorRebuildEquivalence(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kindName(kind), func(t *testing.T) {
			h, _, pool := openPDT(t, 1<<24, false)
			m := newTestMap(t, h, kind, "m")
			const n = 6000
			for i := 0; i < n; i++ {
				putStr(t, h, m, fmt.Sprintf("k%05d", i), fmt.Sprintf("v%d", i))
			}
			// Punch holes so the free-slot list is non-trivial.
			for i := 0; i < n; i += 7 {
				if !m.Delete(fmt.Sprintf("k%05d", i)) {
					t.Fatalf("delete k%05d failed", i)
				}
			}
			h.PSync()
			snapshot := pool.ReadBytes(0, pool.Size())

			resurrect := func(parallelism int) *Map {
				p := nvm.New(len(snapshot), nvm.Options{})
				p.WriteBytes(0, snapshot)
				h2 := reopenPDTWith(t, p, parallelism)
				po, err := h2.Root().Get("m")
				if err != nil {
					t.Fatal(err)
				}
				return po.(*Map)
			}
			serial := resurrect(1)
			parallel := resurrect(8)
			if serial.arrp.Load().Cap() < rebuildParallelMin {
				t.Fatalf("array cap %d below parallel threshold %d: test exercises nothing",
					serial.arrp.Load().Cap(), rebuildParallelMin)
			}
			if sl, pl := serial.Len(), parallel.Len(); sl != pl {
				t.Fatalf("Len: serial %d, parallel %d", sl, pl)
			}
			sm := map[string]int{}
			serial.mir.forEach(func(k string, idx int) bool { sm[k] = idx; return true })
			parallel.mir.forEach(func(k string, idx int) bool {
				if want, ok := sm[k]; !ok || want != idx {
					t.Fatalf("mirror binding %q: serial idx %d (present %v), parallel idx %d", k, want, ok, idx)
				}
				delete(sm, k)
				return true
			})
			if len(sm) != 0 {
				t.Fatalf("parallel mirror missing %d bindings", len(sm))
			}
			if len(serial.slots) != len(parallel.slots) {
				t.Fatalf("free slots: serial %d, parallel %d", len(serial.slots), len(parallel.slots))
			}
			for i := range serial.slots {
				if serial.slots[i] != parallel.slots[i] {
					t.Fatalf("free-slot order differs at %d: serial %d, parallel %d",
						i, serial.slots[i], parallel.slots[i])
				}
			}
		})
	}
}
