package pdt

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/nvm"
	"repro/internal/obs"
)

func newTestLFMap(t testing.TB, h *core.Heap, name string, buckets int) *LFMap {
	t.Helper()
	m, err := NewLFMap(h, buckets)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Root().Put(name, m); err != nil {
		t.Fatal(err)
	}
	return m
}

func lfPutStr(t testing.TB, h *core.Heap, m *LFMap, key, val string) {
	t.Helper()
	v, err := NewBytesValid(h, []byte(val))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Put(key, v); err != nil {
		t.Fatal(err)
	}
}

func lfGetStr(t testing.TB, m *LFMap, key string) (string, bool) {
	t.Helper()
	po, err := m.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if po == nil {
		return "", false
	}
	return string(po.(*PBytes).Value()), true
}

func TestLFMapBasicOps(t *testing.T) {
	h, _, _ := openPDT(t, 1<<22, false)
	m := newTestLFMap(t, h, "m", 64)
	if m.Len() != 0 || m.Contains("a") {
		t.Fatal("fresh map not empty")
	}
	lfPutStr(t, h, m, "a", "1")
	lfPutStr(t, h, m, "b", "2")
	lfPutStr(t, h, m, "c", "3")
	if m.Len() != 3 {
		t.Fatalf("Len = %d", m.Len())
	}
	if v, ok := lfGetStr(t, m, "b"); !ok || v != "2" {
		t.Fatalf("Get(b) = %q %v", v, ok)
	}
	if _, ok := lfGetStr(t, m, "zz"); ok {
		t.Fatal("phantom key")
	}
	// Update replaces and frees the old value (after the grace period).
	oldRef := m.GetRef("b")
	lfPutStr(t, h, m, "b", "22")
	if v, _ := lfGetStr(t, m, "b"); v != "22" {
		t.Fatal("update lost")
	}
	h.Mem().ReclaimBarrier()
	if h.Mem().Valid(oldRef) {
		t.Fatal("old value not freed on update")
	}
	if !m.Delete("a") || m.Delete("a") {
		t.Fatal("delete semantics")
	}
	if m.Len() != 2 || m.Contains("a") {
		t.Fatal("delete did not remove")
	}
	keys := m.Keys()
	if len(keys) != 2 || keys[0] != "b" || keys[1] != "c" {
		t.Fatalf("Keys = %v", keys)
	}
	if err := m.FsckOrphans(); err != nil {
		t.Fatal(err)
	}
}

func TestLFMapLongKeys(t *testing.T) {
	h, _, _ := openPDT(t, 1<<22, false)
	m := newTestLFMap(t, h, "m", 64)
	long := strings.Repeat("K", lfInlineKeyMax+1) // forces the out-of-line path
	edge := strings.Repeat("E", lfInlineKeyMax)   // largest inline key
	lfPutStr(t, h, m, long, "big")
	lfPutStr(t, h, m, edge, "edge")
	if v, ok := lfGetStr(t, m, long); !ok || v != "big" {
		t.Fatalf("long key: %q %v", v, ok)
	}
	if v, ok := lfGetStr(t, m, edge); !ok || v != "edge" {
		t.Fatalf("edge key: %q %v", v, ok)
	}
	if m.Contains(strings.Repeat("K", lfInlineKeyMax+2)) {
		t.Fatal("long-key prefix confusion")
	}
	lfPutStr(t, h, m, long, "big2") // update through the indirect key
	if v, _ := lfGetStr(t, m, long); v != "big2" {
		t.Fatal("long-key update lost")
	}
	if !m.Delete(long) || m.Contains(long) {
		t.Fatal("long-key delete")
	}
	keys := m.Keys()
	if len(keys) != 1 || keys[0] != edge {
		t.Fatalf("Keys = %v", keys)
	}
}

func TestLFMapRemove(t *testing.T) {
	h, _, _ := openPDT(t, 1<<22, false)
	m := newTestLFMap(t, h, "m", 64)
	lfPutStr(t, h, m, "a", "payload")
	po, err := m.Remove("a")
	if err != nil {
		t.Fatal(err)
	}
	if po == nil || string(po.(*PBytes).Value()) != "payload" {
		t.Fatal("Remove did not hand the value back")
	}
	h.Mem().ReclaimBarrier()
	if !h.Mem().Valid(po.Core().Ref()) {
		t.Fatal("Remove freed the value")
	}
	if po2, _ := m.Remove("a"); po2 != nil {
		t.Fatal("double remove returned a value")
	}
}

func TestLFSetBasics(t *testing.T) {
	h, _, _ := openPDT(t, 1<<22, false)
	s, err := NewLFSet(h, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Root().Put("s", s); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"x", "y", "z", "y"} { // re-add is idempotent
		if err := s.Add(k); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 3 || !s.Contains("y") || s.Contains("w") {
		t.Fatalf("set state: len %d", s.Len())
	}
	if got := s.Members(); len(got) != 3 || got[0] != "x" || got[1] != "y" || got[2] != "z" {
		t.Fatalf("Members = %v", got)
	}
	if !s.Delete("y") || s.Delete("y") || s.Contains("y") {
		t.Fatal("set delete")
	}
	// The shared marker must survive member deletion.
	h.Mem().ReclaimBarrier()
	if !h.Mem().Valid(s.marker) {
		t.Fatal("marker freed with member")
	}
	if err := s.Add("y"); err != nil || !s.Contains("y") {
		t.Fatal("re-add after delete")
	}
}

// TestLFMapCellRecycling churns one key through insert/delete far more
// times than a chunk holds cells: recycled cells must be reused, keeping
// the chunk directory bounded.
func TestLFMapCellRecycling(t *testing.T) {
	h, _, _ := openPDT(t, 1<<22, false)
	m := newTestLFMap(t, h, "m", 64)
	for i := 0; i < 300; i++ {
		lfPutStr(t, h, m, "k", fmt.Sprintf("v%d", i))
		if !m.Delete("k") {
			t.Fatalf("delete %d failed", i)
		}
	}
	h.Mem().ReclaimBarrier()
	m.growMu.Lock()
	nchunk := m.nchunk
	m.growMu.Unlock()
	// 300 cycles with eager reuse should stay far below 300/3 chunks; the
	// only growth comes from cells parked in the EBR retired list.
	if nchunk > 20 {
		t.Fatalf("chunk directory grew to %d chunks: cells not recycled", nchunk)
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d", m.Len())
	}
	if err := m.FsckOrphans(); err != nil {
		t.Fatal(err)
	}
}

// TestLFMapPersistBudget pins the paper's headline property: an insert,
// an update, and a delete each issue exactly one pwb + at most one fence
// on the structure (persist-at-destination), and the uncontended paths
// never retry a CAS.
func TestLFMapPersistBudget(t *testing.T) {
	h, _, _ := openPDT(t, 1<<22, false)
	m := newTestLFMap(t, h, "m", 64)
	rs := &obs.ReadStats{}
	m.SetReadObs(rs)

	lfPutStr(t, h, m, "k", "v0")
	if got := rs.LFPersists.Load(); got != 2 { // fence A + the cell pwb
		t.Fatalf("insert issued %d persist primitives, want 2", got)
	}
	lfPutStr(t, h, m, "k", "v1")
	if got := rs.LFPersists.Load(); got != 4 { // + fence + cell pwb
		t.Fatalf("update total %d persist primitives, want 4", got)
	}
	if !m.Delete("k") {
		t.Fatal("delete failed")
	}
	if got := rs.LFPersists.Load(); got != 5 { // + one pwb, fence deferred
		t.Fatalf("delete total %d persist primitives, want 5", got)
	}
	if got := rs.CASRetries.Load(); got != 0 {
		t.Fatalf("uncontended ops retried %d CASes", got)
	}
	if r, w := rs.LockFreeReads.Load(), rs.LockFreeWrites.Load(); r != 0 || w != 3 {
		t.Fatalf("op counts: %d reads, %d writes", r, w)
	}
	m.Contains("k")
	if got := rs.LockFreeReads.Load(); got != 1 {
		t.Fatalf("reads = %d", got)
	}
}

// applyOps drives the same randomized op sequence against the locked Map
// (the correctness oracle) and the LFMap, returning the model contents.
func applyOps(t *testing.T, h *core.Heap, oracle *Map, lf *LFMap, seed int64, n int) map[string]string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	model := make(map[string]string)
	key := func() string {
		k := fmt.Sprintf("key-%03d", rng.Intn(160))
		if rng.Intn(8) == 0 { // sprinkle out-of-line keys
			k += strings.Repeat("~", lfInlineKeyMax)
		}
		return k
	}
	for i := 0; i < n; i++ {
		k := key()
		switch rng.Intn(3) {
		case 0, 1:
			v := fmt.Sprintf("val-%d", i)
			putStr(t, h, oracle, k, v)
			lfPutStr(t, h, lf, k, v)
			model[k] = v
		case 2:
			_, want := model[k]
			if got := oracle.Delete(k); got != want {
				t.Fatalf("oracle Delete(%q) = %v, want %v", k, got, want)
			}
			if got := lf.Delete(k); got != want {
				t.Fatalf("lf Delete(%q) = %v, want %v", k, got, want)
			}
			delete(model, k)
		}
	}
	return model
}

func checkAgainstModel(t *testing.T, label string, m interface {
	Len() int
	Keys() []string
}, get func(string) (string, bool), model map[string]string) {
	t.Helper()
	if m.Len() != len(model) {
		t.Fatalf("%s: Len = %d, model %d", label, m.Len(), len(model))
	}
	if got := m.Keys(); len(got) != len(model) {
		t.Fatalf("%s: Keys = %d entries, model %d", label, len(got), len(model))
	}
	for k, want := range model {
		if v, ok := get(k); !ok || v != want {
			t.Fatalf("%s: %q = %q %v, want %q", label, k, v, ok, want)
		}
	}
}

// TestLFMapOracleEquivalence replays one op sequence into the locked Map
// and the LFMap and requires identical logical contents — before a crash,
// and after recovery on both the serial and the parallel rebuild path.
func TestLFMapOracleEquivalence(t *testing.T) {
	h, _, pool := openPDT(t, 1<<23, false)
	oracle := newTestMap(t, h, MirrorHash, "oracle")
	lf := newTestLFMap(t, h, "lf", 256)
	model := applyOps(t, h, oracle, lf, 42, 1200)

	checkAgainstModel(t, "oracle", oracle,
		func(k string) (string, bool) { return getStr(t, oracle, k) }, model)
	checkAgainstModel(t, "lf", lf,
		func(k string) (string, bool) { return lfGetStr(t, lf, k) }, model)
	if err := lf.FsckOrphans(); err != nil {
		t.Fatal(err)
	}

	h.Mem().ReclaimBarrier()
	h.PSync()
	snapshot := pool.ReadBytes(0, pool.Size())
	for _, parallelism := range []int{1, 8} {
		p := nvm.New(len(snapshot), nvm.Options{})
		p.WriteBytes(0, snapshot)
		h2 := reopenPDTWith(t, p, parallelism)
		po, err := h2.Root().Get("lf")
		if err != nil {
			t.Fatal(err)
		}
		lf2 := po.(*LFMap)
		checkAgainstModel(t, fmt.Sprintf("lf/recovered/p%d", parallelism), lf2,
			func(k string) (string, bool) { return lfGetStr(t, lf2, k) }, model)
		if err := lf2.FsckOrphans(); err != nil {
			t.Fatal(err)
		}
		po, err = h2.Root().Get("oracle")
		if err != nil {
			t.Fatal(err)
		}
		o2 := po.(*Map)
		checkAgainstModel(t, fmt.Sprintf("oracle/recovered/p%d", parallelism), o2,
			func(k string) (string, bool) { return getStr(t, o2, k) }, model)
	}
}

// TestLFMapSerialParallelRecoveryAgree builds a map big enough to cross
// lfRebuildParallelMin and requires the serial and parallel judging paths
// to produce byte-identical volatile state: same bindings, same free-cell
// stack order.
func TestLFMapSerialParallelRecoveryAgree(t *testing.T) {
	h, _, pool := openPDT(t, 1<<25, false)
	lf := newTestLFMap(t, h, "lf", 4096)
	n := 3 * (lfRebuildParallelMin + 40) // > lfRebuildParallelMin chunks
	for i := 0; i < n; i++ {
		lfPutStr(t, h, lf, fmt.Sprintf("k%06d", i), fmt.Sprintf("v%d", i))
	}
	for i := 0; i < n; i += 5 { // punch holes: free stack is non-trivial
		if !lf.Delete(fmt.Sprintf("k%06d", i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	h.Mem().ReclaimBarrier()
	h.PSync()
	snapshot := pool.ReadBytes(0, pool.Size())

	resurrect := func(parallelism int) *LFMap {
		p := nvm.New(len(snapshot), nvm.Options{})
		p.WriteBytes(0, snapshot)
		h2 := reopenPDTWith(t, p, parallelism)
		po, err := h2.Root().Get("lf")
		if err != nil {
			t.Fatal(err)
		}
		return po.(*LFMap)
	}
	serial := resurrect(1)
	parallel := resurrect(8)
	serial.growMu.Lock()
	nchunk := serial.nchunk
	serial.growMu.Unlock()
	if nchunk < lfRebuildParallelMin {
		t.Fatalf("only %d chunks, below parallel threshold %d: test exercises nothing",
			nchunk, lfRebuildParallelMin)
	}
	if sl, pl := serial.Len(), parallel.Len(); sl != pl {
		t.Fatalf("Len: serial %d, parallel %d", sl, pl)
	}
	// Same bucket chains, cell by cell (merge order is scan order).
	for b := uint64(0); b < serial.nb; b++ {
		sc := serial.bucketHead(b)
		pc := parallel.bucketHead(b)
		for sc != 0 || pc != 0 {
			if sc != pc {
				t.Fatalf("bucket %d chains diverge: serial %#x, parallel %#x", b, sc, pc)
			}
			sc = serial.Heap().Pool().ReadUint64(sc+lfCellWord7) &^ lfVEndBit
			pc = parallel.Heap().Pool().ReadUint64(pc+lfCellWord7) &^ lfVEndBit
		}
	}
	// Same free-cell stack, in order.
	for {
		sf, pf := serial.popFree(), parallel.popFree()
		if sf != pf {
			t.Fatalf("free stacks diverge: serial %#x, parallel %#x", sf, pf)
		}
		if sf == 0 {
			break
		}
	}
}

// TestLFMapConcurrent hammers the map from multiple writers and readers
// under -race: disjoint per-writer key ranges give a deterministic final
// state, a shared contended range exercises the CAS paths, and the fsck
// invariant must hold at the quiescent point.
func TestLFMapConcurrent(t *testing.T) {
	h, _, _ := openPDT(t, 1<<24, false)
	m := newTestLFMap(t, h, "m", 256)
	const (
		writers = 4
		perKey  = 40
		rounds  = 60
		shared  = 8
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for r := 0; r < rounds; r++ {
				// Own range: deterministic churn, last round leaves
				// even keys present.
				for i := 0; i < perKey; i++ {
					k := fmt.Sprintf("w%d-k%02d", w, i)
					v, err := NewBytesValid(h, []byte(fmt.Sprintf("r%d", r)))
					if err != nil {
						t.Error(err)
						return
					}
					if err := m.Put(k, v); err != nil {
						t.Error(err)
						return
					}
					if r == rounds-1 && i%2 == 1 {
						m.Delete(k)
					} else if r < rounds-1 && rng.Intn(3) == 0 {
						m.Delete(k)
					}
				}
				// Shared range: all writers contend.
				k := fmt.Sprintf("shared-%d", rng.Intn(shared))
				if rng.Intn(2) == 0 {
					v, err := NewBytesValid(h, []byte(fmt.Sprintf("w%d", w)))
					if err != nil {
						t.Error(err)
						return
					}
					if err := m.Put(k, v); err != nil {
						t.Error(err)
						return
					}
				} else {
					m.Delete(k)
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch rng.Intn(3) {
				case 0:
					k := fmt.Sprintf("w%d-k%02d", rng.Intn(writers), rng.Intn(perKey))
					m.WithValue(k, func(vref core.Ref) {
						if len(ReadBlob(h, vref)) == 0 {
							t.Error("empty value under pin")
						}
					})
				case 1:
					m.Contains(fmt.Sprintf("shared-%d", rng.Intn(shared)))
				case 2:
					m.ForEach(func(_ string, vref core.Ref) bool { return vref != 0 })
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	h.Mem().ReclaimBarrier()

	for w := 0; w < writers; w++ {
		for i := 0; i < perKey; i++ {
			k := fmt.Sprintf("w%d-k%02d", w, i)
			want := i%2 == 0
			if got := m.Contains(k); got != want {
				t.Fatalf("%s present=%v, want %v", k, got, want)
			}
			if want {
				if v, _ := lfGetStr(t, m, k); v != fmt.Sprintf("r%d", rounds-1) {
					t.Fatalf("%s = %q", k, v)
				}
			}
		}
	}
	// Shared keys: any surviving value must name a writer.
	for s := 0; s < shared; s++ {
		if v, ok := lfGetStr(t, m, fmt.Sprintf("shared-%d", s)); ok {
			if len(v) != 2 || v[0] != 'w' {
				t.Fatalf("shared-%d = %q", s, v)
			}
		}
	}
	if err := m.FsckOrphans(); err != nil {
		t.Fatal(err)
	}
	if got, want := m.Len(), len(m.Keys()); got != want {
		t.Fatalf("Len %d != live keys %d", got, want)
	}
}

// TestLFMapConcurrentThenRecover runs the concurrent churn, then reopens
// the pool and requires the recovered contents to match the quiesced
// pre-crash state exactly.
func TestLFMapConcurrentThenRecover(t *testing.T) {
	h, _, pool := openPDT(t, 1<<24, false)
	m := newTestLFMap(t, h, "m", 256)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < 30; r++ {
				for i := 0; i < 20; i++ {
					k := fmt.Sprintf("w%d-k%02d", w, i)
					v, err := NewBytesValid(h, []byte(fmt.Sprintf("w%d-r%d", w, r)))
					if err != nil {
						t.Error(err)
						return
					}
					if err := m.Put(k, v); err != nil {
						t.Error(err)
						return
					}
					if i%3 == 0 {
						m.Delete(k)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	h.Mem().ReclaimBarrier()
	want := make(map[string]string)
	m.ForEach(func(k string, vref core.Ref) bool {
		want[k] = string(ReadBlob(h, vref))
		return true
	})
	h.PSync()
	snapshot := pool.ReadBytes(0, pool.Size())
	p := nvm.New(len(snapshot), nvm.Options{})
	p.WriteBytes(0, snapshot)
	h2 := reopenPDTWith(t, p, 4)
	po, err := h2.Root().Get("m")
	if err != nil {
		t.Fatal(err)
	}
	m2 := po.(*LFMap)
	checkAgainstModel(t, "recovered", m2,
		func(k string) (string, bool) { return lfGetStr(t, m2, k) }, want)
	if err := m2.FsckOrphans(); err != nil {
		t.Fatal(err)
	}
}

// TestLFSetRecovery checks that a set survives reopen with its marker
// intact and members rebound to it.
func TestLFSetRecovery(t *testing.T) {
	h, _, pool := openPDT(t, 1<<22, false)
	s, err := NewLFSet(h, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Root().Put("s", s); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := s.Add(fmt.Sprintf("m%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i += 3 {
		s.Delete(fmt.Sprintf("m%02d", i))
	}
	want := s.Members()
	h.Mem().ReclaimBarrier()
	h.PSync()
	snapshot := pool.ReadBytes(0, pool.Size())
	p := nvm.New(len(snapshot), nvm.Options{})
	p.WriteBytes(0, snapshot)
	h2 := reopenPDTWith(t, p, 1)
	po, err := h2.Root().Get("s")
	if err != nil {
		t.Fatal(err)
	}
	s2 := po.(*LFSet)
	if s2.marker == 0 || !h2.Mem().Valid(s2.marker) {
		t.Fatal("marker did not survive")
	}
	got := s2.Members()
	if len(got) != len(want) {
		t.Fatalf("members: %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("member %d: %q, want %q", i, got[i], want[i])
		}
	}
	if err := s2.Add("new"); err != nil || !s2.Contains("new") {
		t.Fatal("post-recovery add")
	}
}
