package pdt

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fa"
)

// Additional J-PDT coverage: large tx strings, Remove semantics, set
// aborts, array edge cases, and blob view aliasing rules.

func TestNewStringTxLargeUsesBlocks(t *testing.T) {
	h, mgr, _ := openPDT(t, 1<<22, false)
	var ref core.Ref
	err := mgr.Run(func(tx *fa.Tx) error {
		s, err := NewStringTx(tx, strings.Repeat("y", 2000))
		if err != nil {
			return err
		}
		ref = s.Ref()
		if !h.Mem().IsBlockRef(ref) {
			t.Error("large tx string should be block allocated")
		}
		return h.Root().WPut("big", s)
	})
	if err != nil {
		t.Fatal(err)
	}
	po, err := h.Resurrect(ref)
	if err != nil {
		t.Fatal(err)
	}
	if po.(*PString).Len() != 2000 {
		t.Fatal("large tx string content lost")
	}
}

func TestMapRemoveHandsValueBack(t *testing.T) {
	h, _, _ := openPDT(t, 1<<22, false)
	m := newTestMap(t, h, MirrorHash, "m")
	putStr(t, h, m, "k", "keepme")
	po, err := m.Remove("k")
	if err != nil {
		t.Fatal(err)
	}
	if po == nil || string(po.(*PBytes).Value()) != "keepme" {
		t.Fatal("Remove did not hand the value back")
	}
	if !po.Core().Valid() {
		t.Fatal("Remove freed the value")
	}
	if m.Contains("k") {
		t.Fatal("Remove left the binding")
	}
	// Missing key.
	po, err = m.Remove("missing")
	if err != nil || po != nil {
		t.Fatalf("Remove(missing) = %v %v", po, err)
	}
}

func TestSetAddTxAbortRollsBackMirror(t *testing.T) {
	h, mgr, _ := openPDT(t, 1<<22, false)
	s, err := NewSet(h, MirrorHash)
	if err != nil {
		t.Fatal(err)
	}
	h.Root().Put("set", s)
	boom := fmt.Errorf("boom")
	err = mgr.Run(func(tx *fa.Tx) error {
		if err := s.AddTx(tx, "ghost"); err != nil {
			return err
		}
		return boom
	})
	if err != boom {
		t.Fatal(err)
	}
	if s.Contains("ghost") {
		t.Fatal("aborted AddTx left the mirror entry")
	}
	// The slot must be reusable.
	if err := s.Add("real"); err != nil {
		t.Fatal(err)
	}
	if !s.Contains("real") || s.Len() != 1 {
		t.Fatal("set state after abort")
	}
}

func TestPExtArrayBoundsPanics(t *testing.T) {
	h, _, _ := openPDT(t, 1<<21, false)
	e, err := NewExtArray(h)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []func(){
		func() { e.Get(0) },
		func() { e.Get(-1) },
		func() { s, _ := NewString(h, "x"); e.Set(0, s) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestReadBlobVariants(t *testing.T) {
	h, _, _ := openPDT(t, 1<<22, false)
	// Pooled (small), single-block (medium), chained (large).
	for _, n := range []int{10, 200, 2000} {
		content := strings.Repeat("z", n)
		s, err := NewString(h, content)
		if err != nil {
			t.Fatal(err)
		}
		if got := string(ReadBlob(h, s.Ref())); got != content {
			t.Fatalf("ReadBlob(%d) lost content", n)
		}
		if got := string(ReadBlobView(h, s.Ref())); got != content {
			t.Fatalf("ReadBlobView(%d) lost content", n)
		}
	}
	// Views alias NVMM for contiguous layouts: a write through the object
	// shows up in a previously-taken view (documented aliasing).
	b, _ := NewBytes(h, []byte("aaaa"))
	view := ReadBlobView(h, b.Ref())
	b.WriteUint8(4, 'Z') // first payload byte
	if view[0] != 'Z' {
		t.Fatal("view did not alias NVMM")
	}
}

func TestMapEagerModeSurvivesChurn(t *testing.T) {
	h, _, pool := openPDT(t, 1<<22, false)
	m := newTestMap(t, h, MirrorTree, "m")
	for i := 0; i < 20; i++ {
		putStr(t, h, m, fmt.Sprintf("k%02d", i), "v")
	}
	h.PSync()
	h2, _, _ := reopenPDT(t, pool)
	po, _ := h2.Root().Get("m")
	m2 := po.(*Map)
	if err := m2.SetCacheMode(CacheEager); err != nil {
		t.Fatal(err)
	}
	// Churn through the eager cache: updates, deletes, reinserts.
	putStr(t, h2, m2, "k05", "updated")
	if v, _ := getStr(t, m2, "k05"); v != "updated" {
		t.Fatal("eager cache served a stale value after update")
	}
	m2.Delete("k06")
	if v, ok := getStr(t, m2, "k06"); ok {
		t.Fatalf("deleted key served from eager cache: %q", v)
	}
	putStr(t, h2, m2, "k06", "back")
	if v, _ := getStr(t, m2, "k06"); v != "back" {
		t.Fatal("reinsert after delete")
	}
}

func TestLongArrayNegativeAndFlushPaths(t *testing.T) {
	h, _, _ := openPDT(t, 1<<21, false)
	a, err := NewLongArray(h, 4)
	if err != nil {
		t.Fatal(err)
	}
	a.Set(0, -1)
	a.Set(3, 1<<62)
	a.FlushElem(0)
	a.Flush()
	if a.Get(0) != -1 || a.Get(3) != 1<<62 {
		t.Fatal("extreme values lost")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("negative index must panic")
			}
		}()
		a.Get(-1)
	}()
}

func TestRefArrayPublish(t *testing.T) {
	h, _, _ := openPDT(t, 1<<21, false)
	arr, err := NewRefArray(h, 4)
	if err != nil {
		t.Fatal(err)
	}
	arr.Validate()
	s, _ := NewString(h, "target")
	arr.PublishRef(2, s)
	if !s.Valid() {
		t.Fatal("PublishRef did not validate")
	}
	if arr.GetRef(2) != s.Ref() {
		t.Fatal("PublishRef did not write the slot")
	}
	// Capacity is the rounded-up block payload (31 slots for one block);
	// only indexes beyond it panic.
	if arr.Cap() < 4 {
		t.Fatalf("Cap = %d", arr.Cap())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("OOB publish must panic")
			}
		}()
		arr.PublishRef(arr.Cap(), s)
	}()
}
