package pdt

import (
	"fmt"
	"sync"
	"testing"
)

// TestMapHotCacheDeleteRace pins the stale-reinsert race on the bounded
// proxy cache: Get used to insert into the cache after dropping the
// key's shard lock, so a concurrent Delete could run its mirror removal
// AND its cache eviction inside that window — the late put then parked a
// proxy to freed NVMM in the LRU, and every later Get served the deleted
// value. With the put held under the shard read lock, a cache hit after
// Delete returns is impossible.
func TestMapHotCacheDeleteRace(t *testing.T) {
	h, _, _ := openPDT(t, 1<<23, false)
	m := newTestMap(t, h, MirrorHash, "m")
	m.SetCacheHot(64)
	const iters = 300
	for i := 0; i < iters; i++ {
		key := fmt.Sprintf("k%03d", i%7)
		putStr(t, h, m, key, "v")
		start := make(chan struct{})
		done := make(chan struct{})
		go func() {
			close(start)
			for j := 0; j < 50; j++ {
				if _, err := m.Get(key); err != nil {
					t.Error(err)
					return
				}
			}
			close(done)
		}()
		<-start
		m.Delete(key)
		<-done
		// The mirror says the key is gone; the cache must agree.
		if po, err := m.Get(key); err != nil {
			t.Fatal(err)
		} else if po != nil {
			t.Fatalf("iter %d: Get(%q) served a deleted value from the hot cache", i, key)
		}
	}
}

// TestMapHotCacheConcurrentChurn is the -race companion: writers churn
// disjoint key ranges while readers hammer Get/Contains through the
// bounded cache, checking the lock order (shard lock → cache mutex)
// introduced by the fix is consistent and data-race free.
func TestMapHotCacheConcurrentChurn(t *testing.T) {
	h, _, _ := openPDT(t, 1<<24, false)
	m := newTestMap(t, h, MirrorHash, "m")
	m.SetCacheHot(32) // smaller than the live key set: eviction is exercised
	const (
		writers = 4
		perKey  = 24
		rounds  = 40
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i := 0; i < perKey; i++ {
					key := fmt.Sprintf("w%d-k%02d", w, i)
					v, err := NewBytes(h, []byte(fmt.Sprintf("r%d", r)))
					if err != nil {
						t.Error(err)
						return
					}
					if err := m.Put(key, v); err != nil {
						t.Error(err)
						return
					}
					if i%3 == 0 {
						m.Delete(key)
					}
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("w%d-k%02d", (g+i)%writers, i%perKey)
				if _, err := m.Get(key); err != nil {
					t.Error(err)
					return
				}
				m.Contains(key)
				i++
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	for w := 0; w < writers; w++ {
		for i := 0; i < perKey; i++ {
			key := fmt.Sprintf("w%d-k%02d", w, i)
			want := i%3 != 0
			if got := m.Contains(key); got != want {
				t.Fatalf("%s present=%v, want %v", key, got, want)
			}
			if want {
				if v, ok := getStr(t, m, key); !ok || v != fmt.Sprintf("r%d", rounds-1) {
					t.Fatalf("%s = %q %v", key, v, ok)
				}
			}
		}
	}
}
