package wire

import (
	"bufio"
	"bytes"
	"testing"

	"repro/internal/store"
)

func fieldsFixture() []store.Field {
	return []store.Field{
		{Name: "field0", Value: []byte("abcdefghij")},
		{Name: "field1", Value: []byte{}},
		{Name: "field2", Value: bytes.Repeat([]byte{0x5a}, 300)},
	}
}

// FuzzDecodeRequest hammers the request decoder with arbitrary frame
// bodies. The invariant is total: any input either decodes into a
// request that re-encodes to an equivalent frame, or fails cleanly —
// never a panic, never an unbounded allocation (the limits cap every
// length read before it is used).
func FuzzDecodeRequest(f *testing.F) {
	seed := [][]byte{
		AppendRequest(nil, &Request{Op: OpPing})[headerLen:],
		AppendRequest(nil, &Request{Op: OpStats})[headerLen:],
		AppendRequest(nil, &Request{Op: OpRead, Key: "user000000000042"})[headerLen:],
		AppendRequest(nil, &Request{Op: OpDelete, Key: "k"})[headerLen:],
		AppendRequest(nil, &Request{Op: OpInsert, Key: "k", Fields: fieldsFixture()})[headerLen:],
		AppendRequest(nil, &Request{Op: OpUpdate, Key: "k", Fields: fieldsFixture()})[headerLen:],
		AppendRequest(nil, &Request{Op: OpRMW, Key: "k", Fields: fieldsFixture()})[headerLen:],
		{},
		{0},
		{byte(OpRead), 0xff, 0xff, 0xff, 0xff, 0x7f},
	}
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		var req Request
		if err := DecodeRequest(body, &req); err != nil {
			return
		}
		// A decoded request must survive re-encode + decode unchanged.
		frame := AppendRequest(nil, &req)
		rebody, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame)), nil)
		if err != nil {
			t.Fatalf("re-encoded frame unreadable: %v", err)
		}
		var again Request
		if err := DecodeRequest(rebody, &again); err != nil {
			t.Fatalf("re-encoded frame undecodable: %v", err)
		}
		if again.Op != req.Op || again.Key != req.Key || len(again.Fields) != len(req.Fields) {
			t.Fatalf("re-decode mismatch: %+v vs %+v", req, again)
		}
	})
}

// FuzzDecodeResponse is the same totality check for the response side.
func FuzzDecodeResponse(f *testing.F) {
	seed := [][]byte{
		AppendResponse(nil, &Response{Op: OpPing, Status: StatusOK})[headerLen:],
		AppendResponse(nil, &Response{Op: OpRead, Status: StatusOK, Fields: fieldsFixture()})[headerLen:],
		AppendResponse(nil, &Response{Op: OpRead, Status: StatusNotFound})[headerLen:],
		AppendResponse(nil, &Response{Op: OpInsert, Status: StatusErr, Msg: "pool exhausted"})[headerLen:],
		AppendResponse(nil, &Response{Op: OpStats, Status: StatusOK, Blob: []byte(`{"ops":1}`)})[headerLen:],
		{},
		{byte(OpRead)},
		{byte(OpRead), 3},
	}
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		var resp Response
		if err := DecodeResponse(body, &resp); err != nil {
			return
		}
		frame := AppendResponse(nil, &resp)
		rebody, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame)), nil)
		if err != nil {
			t.Fatalf("re-encoded frame unreadable: %v", err)
		}
		var again Response
		if err := DecodeResponse(rebody, &again); err != nil {
			t.Fatalf("re-encoded frame undecodable: %v", err)
		}
		if again.Op != resp.Op || again.Status != resp.Status || again.Msg != resp.Msg {
			t.Fatalf("re-decode mismatch: %+v vs %+v", resp, again)
		}
	})
}
