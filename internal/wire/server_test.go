package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
	"repro/internal/store"
)

// startTestServer spins up a wire server over a real grid on a loopback
// listener and returns its address plus a shutdown func.
func startTestServer(t *testing.T, cfg ServerConfig) (string, *Server, func()) {
	t.Helper()
	if cfg.Grid == nil {
		env, err := bench.NewEnv(bench.GridConfig{
			Backend: bench.JPFA,
			Records: 4096,
			Commit:  "async",
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { env.Close() })
		cfg.Grid = env.Grid
		cfg.AwaitDurable = env.AwaitDurable
	}
	srv := NewServer(cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	stop := func() {
		if !srv.Shutdown(10 * time.Second) {
			t.Error("server did not drain in 10s")
		}
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}
	return l.Addr().String(), srv, stop
}

// TestServerPipelinedConcurrentConnections is the tentpole race test:
// several connections pipeline mixed batches at once (inserts and
// deletes hit the structural lock, reads and updates the stripe locks),
// each connection checking its responses arrive in request order. Run
// under -race this pins down the ApplyBatch locking story.
func TestServerPipelinedConcurrentConnections(t *testing.T) {
	addr, srv, stop := startTestServer(t, ServerConfig{MaxBatch: 8})
	defer stop()

	const conns = 6
	const rounds = 40
	const window = 12 // deeper than MaxBatch: forces multi-window folds
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			var resp Response
			for r := 0; r < rounds; r++ {
				reqs := make([]Request, window)
				for i := range reqs {
					key := fmt.Sprintf("c%d-r%d-%d", c, r, i)
					switch i % 4 {
					case 0:
						reqs[i] = Request{Op: OpInsert, Key: key, Fields: []store.Field{
							{Name: "f", Value: []byte(key)},
						}}
					case 1:
						reqs[i] = Request{Op: OpRead, Key: fmt.Sprintf("c%d-r%d-%d", c, r, i-1)}
					case 2:
						reqs[i] = Request{Op: OpUpdate, Key: fmt.Sprintf("c%d-r%d-%d", c, r, i-2), Fields: []store.Field{
							{Name: "f", Value: []byte("updated")},
						}}
					default:
						reqs[i] = Request{Op: OpDelete, Key: fmt.Sprintf("c%d-r%d-%d", c, r, i-3)}
					}
					if err := cl.Send(&reqs[i]); err != nil {
						errs <- err
						return
					}
				}
				if err := cl.Flush(); err != nil {
					errs <- err
					return
				}
				for i := range reqs {
					if err := cl.Recv(&resp); err != nil {
						errs <- fmt.Errorf("conn %d round %d recv %d: %w", c, r, i, err)
						return
					}
					if resp.Op != reqs[i].Op {
						errs <- fmt.Errorf("conn %d round %d: response %d is %v, want %v (out of order?)",
							c, r, i, resp.Op, reqs[i].Op)
						return
					}
					if resp.Status == StatusErr {
						errs <- fmt.Errorf("conn %d round %d op %v: %s", c, r, resp.Op, resp.Msg)
						return
					}
					// The read of the just-inserted key must see it: the
					// window executes in request order.
					if i%4 == 1 && resp.Status != StatusOK {
						errs <- fmt.Errorf("conn %d round %d: read-after-insert miss", c, r)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	snap := srv.Stats().Snapshot()
	if snap.Requests != conns*rounds*window {
		t.Fatalf("requests counted %d, want %d", snap.Requests, conns*rounds*window)
	}
	if snap.Batches < uint64(conns*rounds) {
		t.Fatalf("batches %d below one per round per conn", snap.Batches)
	}
}

// TestServerAddDeltaOverWire drives the leaderboard fast path end to
// end: pipelined OpAddDelta frames fold in one window/epoch, a wire read
// sees the exact folded sum, and the Stats blob carries the delta and
// group-commit counters the scenario runner diffs.
func TestServerAddDeltaOverWire(t *testing.T) {
	env, err := bench.NewEnv(bench.GridConfig{
		Backend: bench.JPFA,
		Records: 4096,
		Commit:  "async",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { env.Close() })
	addr, _, stop := startTestServer(t, ServerConfig{
		Grid:         env.Grid,
		AwaitDurable: env.AwaitDurable,
		StatsJSON: func() []byte {
			b, err := json.Marshal(struct {
				Stack *obs.StackSnapshot `json:"stack"`
			}{env.Snapshot()})
			if err != nil {
				return []byte("{}")
			}
			return b
		},
	})
	defer stop()

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Insert("lb", []store.Field{{Name: "score", Value: make([]byte, 8)}}); err != nil {
		t.Fatal(err)
	}

	// One deep pipeline window of increments on the same hot key.
	const window = 64
	for i := 0; i < window; i++ {
		if err := cl.Send(&Request{Op: OpAddDelta, Key: "lb", Field: "score", Delta: 3}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	var resp Response
	for i := 0; i < window; i++ {
		if err := cl.Recv(&resp); err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if resp.Op != OpAddDelta || resp.Status != StatusOK {
			t.Fatalf("recv %d: op %v status %d (%s)", i, resp.Op, resp.Status, resp.Msg)
		}
	}
	if err := cl.AddDelta("lb", "score", 8); err != nil {
		t.Fatal(err)
	}
	if err := cl.AddDelta("nope", "score", 1); err != store.ErrNotFound {
		t.Fatalf("missing key: %v, want ErrNotFound", err)
	}

	fields, found, err := cl.Read("lb")
	if err != nil || !found {
		t.Fatalf("read: found=%v err=%v", found, err)
	}
	var got int64 = -1
	for _, f := range fields {
		if f.Name == "score" && len(f.Value) == 8 {
			got = int64(binary.LittleEndian.Uint64(f.Value))
		}
	}
	if want := int64(window*3 + 8); got != want {
		t.Fatalf("score over wire = %d, want %d", got, want)
	}

	blob, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Stack struct {
			FA struct {
				DeltaOps     uint64 `json:"delta_ops"`
				DeltasFolded uint64 `json:"deltas_folded"`
				Epochs       uint64 `json:"group_epochs"`
				AsyncCommits uint64 `json:"async_commits"`
			} `json:"fa"`
		} `json:"stack"`
	}
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatalf("stats blob: %v\n%s", err, blob)
	}
	fa := doc.Stack.FA
	if fa.DeltaOps == 0 || fa.DeltasFolded == 0 {
		t.Fatalf("stats blob missing delta counters: %+v", fa)
	}
	if fa.Epochs == 0 || fa.AsyncCommits == 0 {
		t.Fatalf("stats blob missing group counters: %+v", fa)
	}
}

// A malformed frame drops exactly that connection; the listener and
// other connections keep serving.
func TestServerDropsMalformedConn(t *testing.T) {
	addr, _, stop := startTestServer(t, ServerConfig{})
	defer stop()

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	// Valid header, unknown op byte.
	if _, err := raw.Write([]byte{0, 0, 0, 1, 0xee}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := raw.Read(buf); err == nil {
		t.Fatal("connection survived a malformed frame")
	}

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		t.Fatalf("healthy connection broken by another conn's bad frame: %v", err)
	}
}

// Shutdown drains: a window in flight when SIGTERM-equivalent hits is
// answered and flushed before the connection closes.
func TestServerDrainAnswersInFlightWindow(t *testing.T) {
	addr, srv, _ := startTestServer(t, ServerConfig{
		// Slow the batch down so Shutdown lands mid-window.
		InjectDelay: 20 * time.Millisecond,
	})

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	const n = 10
	for i := 0; i < n; i++ {
		if err := cl.Send(&Request{Op: OpInsert, Key: fmt.Sprintf("drain-%d", i), Fields: []store.Field{
			{Name: "f", Value: []byte("v")},
		}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}

	var drained atomic.Bool
	go func() {
		time.Sleep(50 * time.Millisecond) // let the window start executing
		drained.Store(srv.Shutdown(10 * time.Second))
	}()

	var resp Response
	for i := 0; i < n; i++ {
		if err := cl.Recv(&resp); err != nil {
			t.Fatalf("response %d lost to drain: %v", i, err)
		}
		if resp.Status != StatusOK {
			t.Fatalf("response %d: status %d", i, resp.Status)
		}
	}
	// After the window flushed, the connection must close (drain), not
	// accept more work.
	deadline := time.Now().Add(5 * time.Second)
	for !drained.Load() {
		if time.Now().After(deadline) {
			t.Fatal("shutdown did not finish")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// The connection cap holds: with MaxConns=2, a third connection is not
// served until a slot frees.
func TestServerConnBackpressure(t *testing.T) {
	addr, _, stop := startTestServer(t, ServerConfig{MaxConns: 2})
	defer stop()

	c1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c2.Ping(); err != nil {
		t.Fatal(err)
	}

	// Third conn connects (kernel backlog) but gets no service while both
	// slots are held.
	c3, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if err := c3.Send(&Request{Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	if err := c3.Flush(); err != nil {
		t.Fatal(err)
	}
	c3.conn.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
	var resp Response
	if err := c3.Recv(&resp); err == nil {
		t.Fatal("third connection served beyond MaxConns=2")
	} else if !strings.Contains(err.Error(), "timeout") {
		t.Fatalf("want read timeout, got %v", err)
	}

	// Free a slot; the queued connection must now be served.
	c2.Close()
	c3.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if err := c3.Recv(&resp); err != nil {
		t.Fatalf("queued connection not served after slot freed: %v", err)
	}
	if resp.Op != OpPing || resp.Status != StatusOK {
		t.Fatalf("unexpected response %+v", resp)
	}
}
