package wire

import (
	"bufio"
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/store"
)

func randFields(rng *rand.Rand, n int) []store.Field {
	fs := make([]store.Field, n)
	for i := range fs {
		name := make([]byte, 1+rng.Intn(16))
		for j := range name {
			name[j] = byte('a' + rng.Intn(26))
		}
		val := make([]byte, rng.Intn(200))
		rng.Read(val)
		fs[i] = store.Field{Name: string(name), Value: val}
	}
	return fs
}

// normalize maps the encodings that are identical on the wire onto one
// canonical form (nil vs empty slices).
func normalize(fs []store.Field) []store.Field {
	if len(fs) == 0 {
		return nil
	}
	out := make([]store.Field, len(fs))
	for i, f := range fs {
		out[i] = f
		if len(f.Value) == 0 {
			out[i].Value = []byte{}
		}
	}
	return out
}

func TestRequestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ops := []Op{OpPing, OpInsert, OpRead, OpUpdate, OpDelete, OpRMW, OpStats, OpAddDelta}
	for iter := 0; iter < 2000; iter++ {
		in := Request{Op: ops[rng.Intn(len(ops))]}
		switch in.Op {
		case OpPing, OpStats:
		default:
			key := make([]byte, rng.Intn(40))
			rng.Read(key)
			in.Key = string(key)
		}
		switch in.Op {
		case OpInsert, OpUpdate, OpRMW:
			in.Fields = randFields(rng, rng.Intn(5))
		case OpAddDelta:
			name := make([]byte, 1+rng.Intn(16))
			rng.Read(name)
			in.Field = string(name)
			in.Delta = rng.Int63() - rng.Int63() // exercise negative varints
		}

		frame := AppendRequest(nil, &in)
		body, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame)), nil)
		if err != nil {
			t.Fatalf("iter %d: ReadFrame: %v", iter, err)
		}
		var out Request
		if err := DecodeRequest(body, &out); err != nil {
			t.Fatalf("iter %d: DecodeRequest(%v): %v", iter, in.Op, err)
		}
		in.Fields, out.Fields = normalize(in.Fields), normalize(out.Fields)
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("iter %d: round trip mismatch:\n in  %+v\n out %+v", iter, in, out)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ops := []Op{OpPing, OpInsert, OpRead, OpUpdate, OpDelete, OpRMW, OpStats, OpAddDelta}
	for iter := 0; iter < 2000; iter++ {
		in := Response{Op: ops[rng.Intn(len(ops))], Status: Status(rng.Intn(3))}
		switch {
		case in.Status == StatusErr:
			in.Msg = "some error detail"
		case in.Status == StatusOK && in.Op == OpRead:
			in.Fields = randFields(rng, rng.Intn(5))
		case in.Status == StatusOK && in.Op == OpStats:
			in.Blob = []byte(`{"x":1}`)
		}

		frame := AppendResponse(nil, &in)
		body, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame)), nil)
		if err != nil {
			t.Fatalf("iter %d: ReadFrame: %v", iter, err)
		}
		var out Response
		if err := DecodeResponse(body, &out); err != nil {
			t.Fatalf("iter %d: DecodeResponse(%v/%d): %v", iter, in.Op, in.Status, err)
		}
		in.Fields, out.Fields = normalize(in.Fields), normalize(out.Fields)
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("iter %d: round trip mismatch:\n in  %+v\n out %+v", iter, in, out)
		}
	}
}

// Pipelined frames decode back-to-back from one stream, and the decoded
// values do not alias the (reused) frame buffer.
func TestPipelinedFramesNoAliasing(t *testing.T) {
	var stream []byte
	want := make([]Request, 20)
	rng := rand.New(rand.NewSource(3))
	for i := range want {
		want[i] = Request{Op: OpInsert, Key: string(rune('a' + i)), Fields: randFields(rng, 3)}
		stream = AppendRequest(stream, &want[i])
	}
	br := bufio.NewReader(bytes.NewReader(stream))
	var buf []byte
	got := make([]Request, len(want))
	for i := range got {
		frame, err := ReadFrame(br, buf[:0])
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		buf = frame[:0] // reuse, like the server loop
		if err := DecodeRequest(frame, &got[i]); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	for i := range want {
		if !reflect.DeepEqual(normalize(want[i].Fields), normalize(got[i].Fields)) || want[i].Key != got[i].Key {
			t.Fatalf("frame %d corrupted by buffer reuse:\n want %+v\n got  %+v", i, want[i], got[i])
		}
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty":              {},
		"zero op":            {0},
		"unknown op":         {byte(opMax)},
		"truncated key":      {byte(OpRead), 10, 'a', 'b'},
		"trailing garbage":   append(AppendRequest(nil, &Request{Op: OpPing})[headerLen:], 0xff),
		"huge field count":   {byte(OpInsert), 1, 'k', 0xff, 0xff, 0xff, 0xff, 0x7f},
		"key over limit":     append([]byte{byte(OpRead), 0x81, 0x80, 0x40}, make([]byte, 10)...), // length 1<<20+1
		"fields cut short":   {byte(OpUpdate), 1, 'k', 2, 1, 'f'},
		"value len overflow": {byte(OpUpdate), 1, 'k', 1, 1, 'f', 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
		"delta missing":      {byte(OpAddDelta), 1, 'k', 1, 'f'},
		"delta truncated":    {byte(OpAddDelta), 1, 'k', 1, 'f', 0xff},
	}
	for name, frame := range cases {
		var req Request
		if err := DecodeRequest(frame, &req); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: got %v, want ErrMalformed", name, err)
		}
	}
}

func TestReadFrameRejectsBadLength(t *testing.T) {
	for _, tc := range []struct {
		name  string
		frame []byte
	}{
		{"zero length", []byte{0, 0, 0, 0}},
		{"over MaxFrame", []byte{0xff, 0xff, 0xff, 0xff}},
	} {
		_, err := ReadFrame(bufio.NewReader(bytes.NewReader(tc.frame)), nil)
		if !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: got %v, want ErrMalformed", tc.name, err)
		}
	}
}

func TestBufferedFrame(t *testing.T) {
	frame := AppendRequest(nil, &Request{Op: OpRead, Key: "k"})
	two := append(append([]byte(nil), frame...), frame...)

	br := bufio.NewReader(bytes.NewReader(two))
	br.Peek(len(two)) // force both into the buffer
	if !BufferedFrame(br) {
		t.Fatal("complete frame in buffer not detected")
	}
	if _, err := ReadFrame(br, nil); err != nil {
		t.Fatal(err)
	}
	if !BufferedFrame(br) {
		t.Fatal("second complete frame not detected")
	}
	if _, err := ReadFrame(br, nil); err != nil {
		t.Fatal(err)
	}
	if BufferedFrame(br) {
		t.Fatal("empty buffer reported a frame")
	}

	// A partial frame must not count as available...
	br = bufio.NewReader(bytes.NewReader(frame[:len(frame)-1]))
	br.Peek(len(frame) - 1)
	if BufferedFrame(br) {
		t.Fatal("partial frame reported as available")
	}
	// ...but a malformed length must, so the read path surfaces the error.
	bad := []byte{0xff, 0xff, 0xff, 0xff, 0, 0}
	br = bufio.NewReader(bytes.NewReader(bad))
	br.Peek(len(bad))
	if !BufferedFrame(br) {
		t.Fatal("malformed length not reported as available")
	}
}
