package wire

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"repro/internal/store"
)

// Client is one connection speaking the wire protocol. It is not safe
// for concurrent use; the load generator runs one Client per goroutine.
// Pipelining is explicit: Send buffers request frames, Flush pushes them
// out, Recv reads responses in request order.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	sbuf []byte // Send scratch
	rbuf []byte // Recv frame scratch
}

// Dial connects to a wire server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		// Pipelining batches frames explicitly; Nagle would only add
		// delay on the final partial segment of a window.
		tc.SetNoDelay(true)
	}
	return &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 64<<10),
		bw:   bufio.NewWriterSize(conn, 64<<10),
	}, nil
}

// DialTimeout is Dial with a connect timeout.
func DialTimeout(addr string, d time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 64<<10),
		bw:   bufio.NewWriterSize(conn, 64<<10),
	}, nil
}

// Close tears the connection down.
func (c *Client) Close() error { return c.conn.Close() }

// Send buffers one request frame.
func (c *Client) Send(req *Request) error {
	c.sbuf = AppendRequest(c.sbuf[:0], req)
	_, err := c.bw.Write(c.sbuf)
	return err
}

// Flush pushes buffered frames to the server.
func (c *Client) Flush() error { return c.bw.Flush() }

// Recv reads the next response in request order into resp.
func (c *Client) Recv(resp *Response) error {
	frame, err := ReadFrame(c.br, c.rbuf[:0])
	if err != nil {
		return err
	}
	c.rbuf = frame[:0]
	return DecodeResponse(frame, resp)
}

// do is the synchronous one-request helper behind the convenience calls.
func (c *Client) do(req *Request, resp *Response) error {
	if err := c.Send(req); err != nil {
		return err
	}
	if err := c.Flush(); err != nil {
		return err
	}
	return c.Recv(resp)
}

// Ping round-trips an OpPing.
func (c *Client) Ping() error {
	var resp Response
	if err := c.do(&Request{Op: OpPing}, &resp); err != nil {
		return err
	}
	if resp.Status != StatusOK {
		return fmt.Errorf("wire: ping status %d", resp.Status)
	}
	return nil
}

// Insert stores a record synchronously.
func (c *Client) Insert(key string, fields []store.Field) error {
	var resp Response
	if err := c.do(&Request{Op: OpInsert, Key: key, Fields: fields}, &resp); err != nil {
		return err
	}
	return statusErr(&resp)
}

// Read fetches a record synchronously; found is false on StatusNotFound.
func (c *Client) Read(key string) (fields []store.Field, found bool, err error) {
	var resp Response
	if err := c.do(&Request{Op: OpRead, Key: key}, &resp); err != nil {
		return nil, false, err
	}
	switch resp.Status {
	case StatusOK:
		return resp.Fields, true, nil
	case StatusNotFound:
		return nil, false, nil
	}
	return nil, false, fmt.Errorf("wire: read: %s", resp.Msg)
}

// AddDelta folds a signed delta into an 8-byte counter field
// synchronously. Under the server's async pipeline the acknowledgement
// still implies durability — the window fences before responding.
func (c *Client) AddDelta(key, field string, delta int64) error {
	var resp Response
	if err := c.do(&Request{Op: OpAddDelta, Key: key, Field: field, Delta: delta}, &resp); err != nil {
		return err
	}
	return statusErr(&resp)
}

// Stats fetches the server's stats JSON.
func (c *Client) Stats() ([]byte, error) {
	var resp Response
	if err := c.do(&Request{Op: OpStats}, &resp); err != nil {
		return nil, err
	}
	if resp.Status != StatusOK {
		return nil, fmt.Errorf("wire: stats status %d: %s", resp.Status, resp.Msg)
	}
	return resp.Blob, nil
}

func statusErr(resp *Response) error {
	switch resp.Status {
	case StatusOK:
		return nil
	case StatusNotFound:
		return store.ErrNotFound
	}
	return fmt.Errorf("wire: %s: %s", resp.Op, resp.Msg)
}
