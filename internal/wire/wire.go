// Package wire is the grid's network protocol: a length-prefixed binary
// framing with RESP-style pipelining (DESIGN.md §18). Clients write any
// number of request frames without waiting; the server folds each
// pipeline window it finds buffered into one grid batch — and, under the
// async commit pipeline, into one group-commit epoch — then answers with
// one response frame per request, in order.
//
// Frame layout (all integers big-endian, strings uvarint-length-prefixed):
//
//	| u32 length | u8 op | payload (length-1 bytes) |
//
// The length covers the op byte and payload. Requests and responses share
// the framing; a response echoes the request op and prefixes its payload
// with a status byte. Field lists are a uvarint count followed by
// (name, value) string pairs.
//
// The codec enforces hard limits (frame, key, value and field-count
// caps) so a malformed or hostile frame fails fast with ErrMalformed
// instead of ballooning allocations — the fuzz suite pins that down.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/store"
)

// Protocol limits. A frame that exceeds them is malformed by definition;
// the server drops the connection rather than trust the length prefix.
const (
	MaxFrame     = 16 << 20 // whole frame payload cap (op byte included)
	MaxKeyLen    = 64 << 10
	MaxFieldName = 64 << 10
	MaxValueLen  = 4 << 20
	MaxFields    = 1024

	headerLen = 4 // u32 length prefix
)

// Op enumerates the request kinds.
type Op uint8

// The wire operations. OpPing and OpStats bypass the grid; the rest map
// one-to-one onto store.Grid operations.
const (
	OpPing Op = iota + 1
	OpInsert
	OpRead
	OpUpdate
	OpDelete
	OpRMW
	OpStats
	OpAddDelta // appended after OpStats so committed corpora keep their op bytes
	opMax
)

// String names the op.
func (o Op) String() string {
	switch o {
	case OpPing:
		return "ping"
	case OpInsert:
		return "insert"
	case OpRead:
		return "read"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	case OpRMW:
		return "rmw"
	case OpStats:
		return "stats"
	case OpAddDelta:
		return "adddelta"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Status is the leading byte of every response payload.
type Status uint8

// Response statuses.
const (
	StatusOK       Status = 0
	StatusNotFound Status = 1
	StatusErr      Status = 2
)

// ErrMalformed reports a frame that violates the protocol (bad lengths,
// truncated payload, unknown op, limit overflow). The server closes the
// connection on it: framing state past a malformed frame is unknowable.
var ErrMalformed = errors.New("wire: malformed frame")

// Request is one decoded client request.
type Request struct {
	Op     Op
	Key    string
	Fields []store.Field
	// Field and Delta carry the OpAddDelta counter increment.
	Field string
	Delta int64
}

// Response is one decoded server response.
type Response struct {
	Op     Op
	Status Status
	// Fields carries a read result (StatusOK reads only).
	Fields []store.Field
	// Blob carries the OpStats JSON payload.
	Blob []byte
	// Msg carries the StatusErr message.
	Msg string
}

// ---- primitive encoding ----

func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBytes(dst, b []byte) []byte {
	dst = appendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// decoder walks a frame payload with bounds checks; every read error
// collapses into ErrMalformed.
type decoder struct {
	buf []byte
	off int
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, ErrMalformed
	}
	d.off += n
	return v, nil
}

func (d *decoder) varint() (int64, error) {
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		return 0, ErrMalformed
	}
	d.off += n
	return v, nil
}

func (d *decoder) bytes(limit int) ([]byte, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(limit) || n > uint64(len(d.buf)-d.off) {
		return nil, ErrMalformed
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b, nil
}

func (d *decoder) str(limit int) (string, error) {
	b, err := d.bytes(limit)
	return string(b), err
}

func (d *decoder) fields() ([]store.Field, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > MaxFields {
		return nil, ErrMalformed
	}
	fs := make([]store.Field, 0, n)
	for i := uint64(0); i < n; i++ {
		name, err := d.str(MaxFieldName)
		if err != nil {
			return nil, err
		}
		val, err := d.bytes(MaxValueLen)
		if err != nil {
			return nil, err
		}
		// Copy the value out of the frame buffer: the buffer is reused
		// for the next frame while batch results may still be alive.
		fs = append(fs, store.Field{Name: name, Value: append([]byte(nil), val...)})
	}
	return fs, nil
}

func (d *decoder) done() error {
	if d.off != len(d.buf) {
		return ErrMalformed // trailing garbage
	}
	return nil
}

func appendFields(dst []byte, fs []store.Field) []byte {
	dst = appendUvarint(dst, uint64(len(fs)))
	for _, f := range fs {
		dst = appendString(dst, f.Name)
		dst = appendBytes(dst, f.Value)
	}
	return dst
}

// ---- request codec ----

// AppendRequest appends the full frame (length prefix included) for req.
func AppendRequest(dst []byte, req *Request) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length backpatched below
	dst = append(dst, byte(req.Op))
	switch req.Op {
	case OpPing, OpStats:
	default:
		dst = appendString(dst, req.Key)
	}
	switch req.Op {
	case OpInsert, OpUpdate, OpRMW:
		dst = appendFields(dst, req.Fields)
	case OpAddDelta:
		dst = appendString(dst, req.Field)
		dst = binary.AppendVarint(dst, req.Delta)
	}
	binary.BigEndian.PutUint32(dst[start:], uint32(len(dst)-start-headerLen))
	return dst
}

// DecodeRequest parses a frame body (op byte plus payload) into req.
// Field values are copied out of the frame buffer; names and keys are
// freshly allocated strings.
func DecodeRequest(frame []byte, req *Request) error {
	*req = Request{}
	if len(frame) < 1 {
		return ErrMalformed
	}
	op := Op(frame[0])
	if op == 0 || op >= opMax {
		return fmt.Errorf("%w: unknown op %d", ErrMalformed, frame[0])
	}
	req.Op = op
	d := decoder{buf: frame, off: 1}
	switch op {
	case OpPing, OpStats:
		return d.done()
	}
	key, err := d.str(MaxKeyLen)
	if err != nil {
		return err
	}
	req.Key = key
	switch op {
	case OpInsert, OpUpdate, OpRMW:
		fs, err := d.fields()
		if err != nil {
			return err
		}
		req.Fields = fs
	case OpAddDelta:
		field, err := d.str(MaxFieldName)
		if err != nil {
			return err
		}
		req.Field = field
		delta, err := d.varint()
		if err != nil {
			return err
		}
		req.Delta = delta
	}
	return d.done()
}

// ---- response codec ----

// AppendResponse appends the full frame (length prefix included) for resp.
func AppendResponse(dst []byte, resp *Response) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = append(dst, byte(resp.Op), byte(resp.Status))
	switch {
	case resp.Status == StatusErr:
		dst = appendString(dst, resp.Msg)
	case resp.Status == StatusOK && resp.Op == OpRead:
		dst = appendFields(dst, resp.Fields)
	case resp.Status == StatusOK && resp.Op == OpStats:
		dst = appendBytes(dst, resp.Blob)
	}
	binary.BigEndian.PutUint32(dst[start:], uint32(len(dst)-start-headerLen))
	return dst
}

// DecodeResponse parses a frame body (op byte plus payload) into resp.
func DecodeResponse(frame []byte, resp *Response) error {
	*resp = Response{}
	if len(frame) < 2 {
		return ErrMalformed
	}
	op := Op(frame[0])
	if op == 0 || op >= opMax {
		return fmt.Errorf("%w: unknown op %d", ErrMalformed, frame[0])
	}
	st := Status(frame[1])
	if st > StatusErr {
		return fmt.Errorf("%w: unknown status %d", ErrMalformed, frame[1])
	}
	resp.Op, resp.Status = op, st
	d := decoder{buf: frame, off: 2}
	switch {
	case st == StatusErr:
		msg, err := d.str(MaxFieldName)
		if err != nil {
			return err
		}
		resp.Msg = msg
	case st == StatusOK && op == OpRead:
		fs, err := d.fields()
		if err != nil {
			return err
		}
		resp.Fields = fs
	case st == StatusOK && op == OpStats:
		b, err := d.bytes(MaxFrame)
		if err != nil {
			return err
		}
		resp.Blob = append([]byte(nil), b...)
	}
	return d.done()
}

// ---- frame I/O ----

// ReadFrame reads one frame body (op byte plus payload) from br, reusing
// buf when it is large enough. The returned slice is only valid until the
// next ReadFrame on the same buf.
func ReadFrame(br *bufio.Reader, buf []byte) ([]byte, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame {
		return nil, fmt.Errorf("%w: frame length %d", ErrMalformed, n)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// BufferedFrame reports whether a complete frame is already sitting in
// br's buffer — the batching test: the server keeps extending a pipeline
// window only while the next frame needs no network wait, so a slow
// client can never stall a batch that is ready to execute.
func BufferedFrame(br *bufio.Reader) bool {
	if br.Buffered() < headerLen {
		return false
	}
	hdr, err := br.Peek(headerLen)
	if err != nil {
		return false
	}
	n := binary.BigEndian.Uint32(hdr)
	if n == 0 || n > MaxFrame {
		// Malformed length: report it as available so the reader path
		// consumes it and surfaces ErrMalformed instead of spinning.
		return true
	}
	return br.Buffered() >= headerLen+int(n)
}
