package wire

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// ServerConfig wires a Server to a grid and its durability pipeline.
type ServerConfig struct {
	Grid *store.Grid

	// AwaitDurable, when non-nil, is called once per pipeline window that
	// contained at least one write, after the whole window executed and
	// before any of its responses are flushed. Under the async commit
	// pipeline this is the batching→epoch fold of DESIGN.md §18: the
	// window's commits ride one epoch drain, so an acknowledged write is
	// always durable. Nil means writes are durable when the grid returns
	// (per-Tx and group modes, and the structurally-persistent backends).
	AwaitDurable func()

	// StatsJSON provides the OpStats payload (a JSON document; the server
	// never looks inside it).
	StatsJSON func() []byte

	// MaxConns caps concurrent connections; the accept loop stops pulling
	// from the listen backlog when the cap is reached (kernel-side
	// backpressure). 0 means 256.
	MaxConns int

	// MaxBatch caps the requests folded into one pipeline window. 0
	// means 128. The cap is the server-side backpressure bound: a client
	// that pipelines deeper than this still gets every response, but in
	// multiple windows.
	MaxBatch int

	// InjectDelay adds a per-request processing delay — the
	// degraded-latency scenario's knob, simulating a slow medium under
	// the same wire path.
	InjectDelay time.Duration
}

// Server serves the grid over the wire protocol. Create with NewServer,
// run with Serve, stop with Shutdown.
type Server struct {
	cfg   ServerConfig
	stats obs.ServerStats

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	draining bool

	drainCh chan struct{}
	sem     chan struct{}
	wg      sync.WaitGroup
}

// NewServer builds a server around the config.
func NewServer(cfg ServerConfig) *Server {
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = 256
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 128
	}
	if cfg.StatsJSON == nil {
		cfg.StatsJSON = func() []byte { return []byte("{}") }
	}
	return &Server{
		cfg:     cfg,
		conns:   make(map[net.Conn]struct{}),
		drainCh: make(chan struct{}),
		sem:     make(chan struct{}, cfg.MaxConns),
	}
}

// Stats exposes the live server counters.
func (s *Server) Stats() *obs.ServerStats { return &s.stats }

// Serve accepts connections on l until Shutdown (returns nil) or a
// non-drain accept error (returned).
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	for {
		// Connection-limit backpressure: hold an accept slot before
		// pulling the next connection off the backlog.
		select {
		case s.sem <- struct{}{}:
		case <-s.drainCh:
			return nil
		}
		conn, err := l.Accept()
		if err != nil {
			<-s.sem
			select {
			case <-s.drainCh:
				return nil
			default:
				return err
			}
		}
		s.stats.ConnsAccepted.Inc()
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			<-s.sem
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// Shutdown drains the server: stop accepting, let every in-flight
// pipeline window finish and flush, then close the connections. Blocks
// until all handlers exit or the timeout passes; returns true on a clean
// drain.
func (s *Server) Shutdown(timeout time.Duration) bool {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.drainCh)
		if s.listener != nil {
			s.listener.Close()
		}
		// Unpark handlers blocked between windows; handlers mid-window
		// are unaffected (deadlines only gate reads) and flush first.
		now := time.Now()
		for c := range s.conns {
			c.SetReadDeadline(now)
		}
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return true
	case <-time.After(timeout):
		return false
	}
}

func (s *Server) isDraining() bool {
	select {
	case <-s.drainCh:
		return true
	default:
		return false
	}
}

// handle runs one connection: read a pipeline window, execute it as one
// grid batch, fence once, respond in order, repeat.
func (s *Server) handle(conn net.Conn) {
	defer func() {
		s.stats.ConnsClosed.Inc()
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
		<-s.sem
	}()

	maxBatch := s.cfg.MaxBatch
	br := bufio.NewReaderSize(conn, 64<<10)
	frameBuf := make([]byte, 0, 4<<10)
	reqs := make([]Request, 0, maxBatch)
	ops := make([]store.BatchOp, 0, maxBatch)
	opIdx := make([]int, 0, maxBatch) // request index -> ops index, -1 for ping/stats
	results := make([]store.BatchResult, maxBatch)
	out := make([]byte, 0, 32<<10)

	for {
		reqs, ops, opIdx = reqs[:0], ops[:0], opIdx[:0]

		// Block for the window's first frame, then extend the window with
		// whatever complete frames are already buffered — never waiting on
		// the network for a deeper batch.
		for len(reqs) < maxBatch {
			if len(reqs) > 0 && !BufferedFrame(br) {
				break
			}
			frame, err := ReadFrame(br, frameBuf[:0])
			if err != nil {
				if len(reqs) > 0 {
					break // execute what we have; the error resurfaces next read
				}
				if !errors.Is(err, io.EOF) && !s.isDraining() {
					s.stats.ConnErrors.Inc()
				} else if s.isDraining() {
					s.stats.Drains.Inc()
				}
				return
			}
			frameBuf = frame[:0]
			s.stats.BytesIn.Add(uint64(headerLen + len(frame)))
			reqs = reqs[:len(reqs)+1]
			if err := DecodeRequest(frame, &reqs[len(reqs)-1]); err != nil {
				// Framing state past a malformed frame is unknowable;
				// drop the connection.
				s.stats.ConnErrors.Inc()
				return
			}
		}

		s.stats.Batches.Inc()
		s.stats.Requests.Add(uint64(len(reqs)))
		s.stats.BatchSize.ObserveNs(uint64(len(reqs)))
		if s.cfg.InjectDelay > 0 {
			time.Sleep(s.cfg.InjectDelay * time.Duration(len(reqs)))
		}

		// Map the window onto one grid batch, preserving request order.
		wrote := false
		for i := range reqs {
			req := &reqs[i]
			var kind store.BatchOpKind
			switch req.Op {
			case OpPing, OpStats:
				opIdx = append(opIdx, -1)
				continue
			case OpInsert:
				kind, wrote = store.BatchInsert, true
			case OpRead:
				kind = store.BatchRead
			case OpUpdate:
				kind, wrote = store.BatchUpdate, true
			case OpDelete:
				kind, wrote = store.BatchDelete, true
			case OpRMW:
				kind, wrote = store.BatchRMW, true
			case OpAddDelta:
				kind, wrote = store.BatchAddDelta, true
			}
			opIdx = append(opIdx, len(ops))
			ops = append(ops, store.BatchOp{Kind: kind, Key: req.Key, Fields: req.Fields,
				Field: req.Field, Delta: req.Delta})
		}
		if len(ops) > 0 {
			s.cfg.Grid.ApplyBatch(ops, results[:len(ops)])
		}
		if wrote && s.cfg.AwaitDurable != nil {
			// One durability wait for the whole window: every write above
			// is acknowledged below only once the epoch covering it
			// drained.
			s.cfg.AwaitDurable()
			s.stats.WriteFences.Inc()
		}

		out = out[:0]
		for i := range reqs {
			resp := Response{Op: reqs[i].Op, Status: StatusOK}
			if j := opIdx[i]; j >= 0 {
				r := &results[j]
				switch {
				case r.Err == nil:
					resp.Fields = r.Fields
				case errors.Is(r.Err, store.ErrNotFound):
					resp.Status = StatusNotFound
				default:
					resp.Status = StatusErr
					resp.Msg = r.Err.Error()
				}
			} else if reqs[i].Op == OpStats {
				resp.Blob = s.cfg.StatsJSON()
			}
			out = AppendResponse(out, &resp)
		}
		if _, err := conn.Write(out); err != nil {
			s.stats.ConnErrors.Inc()
			return
		}
		s.stats.BytesOut.Add(uint64(len(out)))

		if s.isDraining() {
			// Graceful drain: the in-flight window is answered, durable,
			// and flushed; now close.
			s.stats.Drains.Inc()
			return
		}
	}
}
