package fa

import (
	"runtime"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentSlotFreelistStress hammers the lock-free slot freelist and
// the warm-Tx cache: 16 goroutines compete for 4 log slots, retrying when
// the slots are exhausted. Run it under -race to check the Treiber stack
// and the CAS-based cache cells. Each worker owns its account, so the only
// shared state is the manager's.
func TestConcurrentSlotFreelistStress(t *testing.T) {
	h, mgr, _, cls := openFA(t, false) // 4 log slots
	const workers = 16
	const txPerWorker = 150

	accs := make([]*account, workers)
	for i := range accs {
		accs[i] = newAccount(t, h, cls, 0, 0, "acc")
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(acc *account) {
			defer wg.Done()
			for i := 0; i < txPerWorker; i++ {
				for {
					err := mgr.Run(func(tx *Tx) error {
						v, err := tx.ReadUint64(acc.Core(), accA)
						if err != nil {
							return err
						}
						return tx.WriteUint64(acc.Core(), accA, v+1)
					})
					if err == nil {
						break
					}
					if !strings.Contains(err.Error(), "no free log slot") {
						t.Error(err)
						return
					}
					runtime.Gosched()
				}
			}
		}(accs[w])
	}
	wg.Wait()

	for i, acc := range accs {
		if got := acc.ReadUint64(accA); got != txPerWorker {
			t.Fatalf("worker %d: %d commits took effect, want %d", i, got, txPerWorker)
		}
	}
	snap := mgr.ObsSnapshot()
	if snap.SlotsInUse != 0 {
		t.Fatalf("%d slots still marked in use after all blocks ended", snap.SlotsInUse)
	}
	if snap.SlotsTotal != 4 {
		t.Fatalf("slots total gauge = %d, want 4", snap.SlotsTotal)
	}
	if snap.TxReuse == 0 {
		t.Fatal("no Begin was served from the warm-Tx cache")
	}
}
