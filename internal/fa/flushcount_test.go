package fa

import "testing"

// TestCommitFlushAccounting pins the persistence cost of the canonical
// single-line commit, as counted by the obs layer. It is the regression
// guard for flush coalescing: before the coalesced pipeline this block
// cost 11 pwb (full 4-line in-flight flush + full-payload apply); with
// dirty-line masks and the flush set it costs exactly 5. A future change
// that re-widens any stage fails this test.
func TestCommitFlushAccounting(t *testing.T) {
	h, mgr, pool, cls := openFA(t, false)
	acc := newAccount(t, h, cls, 100, 0, "acc")

	// Warm the transaction cache so the measured pass is the steady state.
	if err := mgr.Run(func(tx *Tx) error {
		return tx.WriteUint64(acc.Core(), accA, 1)
	}); err != nil {
		t.Fatal(err)
	}

	before := pool.Obs().Snapshot()
	err := mgr.Run(func(tx *Tx) error {
		// One field written five times plus a neighbour in the same cache
		// line: six stores, one dirty line.
		for i := uint64(0); i < 5; i++ {
			if err := tx.WriteUint64(acc.Core(), accA, 10+i); err != nil {
				return err
			}
		}
		return tx.WriteUint64(acc.Core(), accB, 7)
	})
	if err != nil {
		t.Fatal(err)
	}
	d := pool.Obs().Snapshot().Sub(before)

	// Stage 1: in-flight dirty line + log line (count and the single entry
	// share one), pfence. Stage 2: commit mark, pfence. Stage 3: applied
	// line, pfence. Stage 4: retire, psync.
	if d.PWBs != 5 || d.PFences != 3 || d.PSyncs != 1 {
		t.Fatalf("canonical commit cost regressed: %d pwb, %d pfence, %d psync (want 5 pwb, 3 pfence, 1 psync)",
			d.PWBs, d.PFences, d.PSyncs)
	}
	if saved := mgr.Obs().SavedLines.Load(); saved == 0 {
		t.Fatal("flush set saved no lines despite repeated same-line stores")
	}
	if mgr.Obs().TxReuse.Load() == 0 {
		t.Fatal("second Run did not reuse the warm transaction")
	}
	if a, b := acc.ReadUint64(accA), acc.ReadUint64(accB); a != 14 || b != 7 {
		t.Fatalf("committed values %d/%d, want 14/7", a, b)
	}
}
