package fa

// commitPrefix executes the first `stage` steps of the commit protocol and
// then stops dead, simulating a crash inside Commit. It calls the same
// stage helpers Commit does, so the staging cannot drift from the real
// protocol:
//
//	0 — nothing (log entries written, unflushed)
//	1 — log + in-flight images flushed and fenced
//	2 — + durable commit mark
//	3 — + apply ran, but nothing of it was flushed and the log still
//	     reads committed (replay must redo it)
func (tx *Tx) commitPrefix(stage int) {
	if stage >= 1 {
		tx.commitStage1()
	}
	if stage >= 2 {
		tx.commitStage2()
	}
	if stage >= 3 {
		tx.commitStage3(false)
	}
	// The crash happens here: no cleanup, no release.
}
