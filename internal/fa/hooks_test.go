package fa

import "repro/internal/heap"

// commitPrefix executes the first `stage` steps of the commit protocol and
// then stops dead, simulating a crash inside Commit:
//
//	0 — nothing (log entries written, unflushed)
//	1 — log + in-flight images flushed and fenced
//	2 — + durable commit mark
//	3 — + apply ran, but nothing of it was flushed and the log still
//	     reads committed (replay must redo it)
func (tx *Tx) commitPrefix(stage int) {
	pool := tx.m.h.Pool()
	mem := tx.m.h.Mem()
	if stage >= 1 {
		for _, inf := range tx.inflight {
			pool.PWBRange(inf+heap.HeaderSize, heap.Payload)
		}
		pool.WriteUint64(tx.base+slotCount, tx.count)
		pool.PWBRange(tx.base+slotCount, 8+tx.count*entrySize)
		pool.PFence()
	}
	if stage >= 2 {
		pool.WriteUint64(tx.base+slotStatus, statusCommitted)
		pool.PWB(tx.base + slotStatus)
		pool.PFence()
	}
	if stage >= 3 {
		for e := uint64(0); e < tx.count; e++ {
			eoff := tx.base + slotEntries + e*entrySize
			kind := pool.ReadUint64(eoff)
			a := pool.ReadUint64(eoff + 8)
			b := pool.ReadUint64(eoff + 16)
			switch kind {
			case kindWrite:
				pool.CopyWithin(a+heap.HeaderSize, b+heap.HeaderSize, heap.Payload)
			case kindAlloc:
				mem.SetValid(a, true)
			case kindFree:
				mem.SetValid(a, false)
			}
		}
	}
	// The crash happens here: no cleanup, no release.
}
