package fa

// commitPrefix executes the first `stage` steps of the commit protocol and
// then stops dead, simulating a crash inside Commit. It calls the same
// stage helpers Commit does, so the staging cannot drift from the real
// protocol:
//
//	0 — nothing (log entries written, unflushed)
//	1 — log + in-flight images flushed and fenced
//	2 — + durable commit mark
//	3 — + apply ran, but nothing of it was flushed and the log still
//	     reads committed (replay must redo it)
//	4 — + apply flushed and fenced, retire written back but NOT psynced:
//	     the crash window between the retire write-back and its
//	     durability point (the satellite-1 ordering audit)
func (tx *Tx) commitPrefix(stage int) {
	if stage >= 1 {
		tx.commitStage1()
	}
	if stage >= 2 {
		tx.commitStage2()
	}
	if stage == 3 {
		tx.commitStage3(false)
	}
	if stage >= 4 {
		tx.commitStage3(true)
		tx.commitRetireBody()
	}
	// The crash happens here: no cleanup, no release.
}

// drainEpochPrefix pulls the async queue and delta ledger and executes
// the first `stage` fence windows of the epoch pipeline (group.go
// drainEpoch), then stops dead, simulating a crash inside a drain. It
// composes the same stage helpers drainEpoch does — materializeLocked,
// epochStage1, the per-Tx stage bodies — so the staging cannot drift
// from the real protocol:
//
//	1 — stage 1 complete (detached materializations included) + F0
//	2 — + every commit mark written back + F1, the epoch commit point
func (m *Manager) drainEpochPrefix(stage int) {
	g := m.group.Load()
	g.mu.Lock()
	batch := g.queue
	dtxs, _ := g.materializeLocked()
	g.queue = nil
	g.mu.Unlock()
	all := append(dtxs, batch...)
	pool := m.state.Load().h.Pool()
	if stage >= 1 {
		epochStage1(all)
		pool.PFence() // F0
	}
	if stage >= 2 {
		for _, tx := range all {
			tx.commitStage2Body()
		}
		pool.PFence() // F1
	}
	// The crash happens here: no apply, no retire, no release.
}
