package fa

// commitPrefix executes the first `stage` steps of the commit protocol and
// then stops dead, simulating a crash inside Commit. It calls the same
// stage helpers Commit does, so the staging cannot drift from the real
// protocol:
//
//	0 — nothing (log entries written, unflushed)
//	1 — log + in-flight images flushed and fenced
//	2 — + durable commit mark
//	3 — + apply ran, but nothing of it was flushed and the log still
//	     reads committed (replay must redo it)
//	4 — + apply flushed and fenced, retire written back but NOT psynced:
//	     the crash window between the retire write-back and its
//	     durability point (the satellite-1 ordering audit)
func (tx *Tx) commitPrefix(stage int) {
	if stage >= 1 {
		tx.commitStage1()
	}
	if stage >= 2 {
		tx.commitStage2()
	}
	if stage == 3 {
		tx.commitStage3(false)
	}
	if stage >= 4 {
		tx.commitStage3(true)
		tx.commitRetireBody()
	}
	// The crash happens here: no cleanup, no release.
}
