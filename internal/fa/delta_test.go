package fa

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/nvm"
)

// blockOf returns the block ref backing the account's first balance and
// the block-local offset of that word (header included), the coordinate
// space AddDelta speaks.
func blockOf(acc *account) (core.Ref, uint64) {
	return acc.BlockRefs()[0], heap.HeaderSize + accA
}

func TestDeltaUnsupportedOutsideAsync(t *testing.T) {
	h, mgr, _, cls := openFA(t, false)
	acc := newAccount(t, h, cls, 100, 0, "acc")
	blk, off := blockOf(acc)
	if _, err := mgr.AddDelta(blk, off, 5); err != ErrDeltaUnsupported {
		t.Fatalf("per-Tx AddDelta err = %v, want ErrDeltaUnsupported", err)
	}
	if err := mgr.SetGroupCommit(GroupOptions{Mode: CommitGroup}); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.AddDelta(blk, off, 5); err != ErrDeltaUnsupported {
		t.Fatalf("group AddDelta err = %v, want ErrDeltaUnsupported", err)
	}
}

// TestDeltaFoldsToOneEntry is the tentpole contract: N increments to one
// hot word cost one redo-log entry in the drained epoch, and the drained
// value is the net sum.
func TestDeltaFoldsToOneEntry(t *testing.T) {
	h, mgr, _, cls := openFA(t, false)
	if err := mgr.SetGroupCommit(GroupOptions{Mode: CommitAsync, ManualDrain: true}); err != nil {
		t.Fatal(err)
	}
	acc := newAccount(t, h, cls, 100, 0, "acc")
	blk, off := blockOf(acc)

	entriesBefore := mgr.stats.LogEntries.Load()
	var last uint64
	const n = 50
	for i := 0; i < n; i++ {
		ticket, err := mgr.AddDelta(blk, off, 2)
		if err != nil {
			t.Fatal(err)
		}
		if ticket == 0 || ticket <= last {
			t.Fatalf("ticket %d after %d: not monotonically issued", ticket, last)
		}
		last = ticket
	}
	if mgr.DurableWatermark() != 0 {
		t.Fatal("watermark advanced before any drain")
	}
	if v := acc.ReadUint64(accA); v != 100 {
		t.Fatalf("raw read = %d before drain, want stale 100", v)
	}
	mgr.AwaitDurable(last)
	if v := acc.ReadUint64(accA); v != 100+2*n {
		t.Fatalf("drained value = %d, want %d", v, 100+2*n)
	}
	if w := mgr.DurableWatermark(); w < last {
		t.Fatalf("watermark %d below last delta ticket %d", w, last)
	}
	if got := mgr.stats.LogEntries.Load() - entriesBefore; got != 1 {
		t.Fatalf("epoch cost %d log entries, want 1 (net-delta fold)", got)
	}
	snap := mgr.ObsSnapshot()
	if snap.DeltaOps != n || snap.DeltasFolded != n-1 || snap.DeltaEntries != 1 {
		t.Fatalf("delta counters = ops %d / folded %d / entries %d, want %d/%d/1",
			snap.DeltaOps, snap.DeltasFolded, snap.DeltaEntries, n, n-1)
	}
	if snap.DeltaFlushesSaved != n-1 {
		t.Fatalf("flushes saved = %d, want %d", snap.DeltaFlushesSaved, n-1)
	}
}

// TestDeltaSignedFold pins that sub deltas fold as two's-complement adds.
func TestDeltaSignedFold(t *testing.T) {
	h, mgr, _, cls := openFA(t, false)
	if err := mgr.SetGroupCommit(GroupOptions{Mode: CommitAsync, ManualDrain: true}); err != nil {
		t.Fatal(err)
	}
	acc := newAccount(t, h, cls, 100, 0, "acc")
	blk, off := blockOf(acc)
	for _, d := range []int64{7, -20, 3} {
		if _, err := mgr.AddDelta(blk, off, d); err != nil {
			t.Fatal(err)
		}
	}
	mgr.DrainDurable()
	if v := acc.ReadUint64(accA); v != 90 {
		t.Fatalf("folded value = %d, want 90", v)
	}
}

// TestDeltaDrainOnMiss: a transactional read of a block with a pending
// delta must settle it first (reads-see-acknowledged-writes), the same
// waitClear discipline queued commits get.
func TestDeltaDrainOnMiss(t *testing.T) {
	h, mgr, _, cls := openFA(t, false)
	if err := mgr.SetGroupCommit(GroupOptions{Mode: CommitAsync, ManualDrain: true}); err != nil {
		t.Fatal(err)
	}
	acc := newAccount(t, h, cls, 100, 0, "acc")
	blk, off := blockOf(acc)
	ticket, err := mgr.AddDelta(blk, off, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !mgr.DeltaPending(blk) {
		t.Fatal("DeltaPending = false with a ledger entry on the block")
	}
	var seen uint64
	if err := mgr.Run(func(tx *Tx) error {
		v, err := tx.ReadUint64(acc.Core(), accA)
		seen = v
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if seen != 111 {
		t.Fatalf("transactional read = %d, want 111 (pending delta must settle)", seen)
	}
	if mgr.DurableWatermark() < ticket {
		t.Fatal("settling drain did not advance the watermark past the delta ticket")
	}
	if mgr.DeltaPending(blk) {
		t.Fatal("DeltaPending = true after settle")
	}
}

// TestDeltaAfterQueuedWrite: a delta on a block held by a queued commit
// must drain the queue first — folding against the pre-apply original
// would be clobbered by the epoch apply.
func TestDeltaAfterQueuedWrite(t *testing.T) {
	h, mgr, _, cls := openFA(t, false)
	if err := mgr.SetGroupCommit(GroupOptions{Mode: CommitAsync, ManualDrain: true}); err != nil {
		t.Fatal(err)
	}
	acc := newAccount(t, h, cls, 100, 0, "acc")
	blk, off := blockOf(acc)

	tx, err := mgr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.WriteUint64(acc.Core(), accA, 500); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.CommitTicket(); err != nil {
		t.Fatal(err)
	}
	ticket, err := mgr.AddDelta(blk, off, 1)
	if err != nil {
		t.Fatal(err)
	}
	mgr.AwaitDurable(ticket)
	if v := acc.ReadUint64(accA); v != 501 {
		t.Fatalf("value = %d, want 501 (queued write applied before fold)", v)
	}
}

// TestDeltaThenFreeSettles: freeing an object whose block carries a
// pending delta must settle the delta first, or the materialization
// would scribble on a recycled block in a later epoch.
func TestDeltaThenFreeSettles(t *testing.T) {
	h, mgr, _, cls := openFA(t, false)
	if err := mgr.SetGroupCommit(GroupOptions{Mode: CommitAsync, ManualDrain: true}); err != nil {
		t.Fatal(err)
	}
	acc := newAccount(t, h, cls, 100, 0, "acc")
	// Unrooted on purpose: the free below must leave no dangling ref.
	vpo, err := h.Alloc(cls, accLen)
	if err != nil {
		t.Fatal(err)
	}
	victim := vpo.(*account)
	victim.WriteUint64(accA, 5)
	victim.PWB()
	victim.Validate()
	vblk, voff := blockOf(victim)
	if _, err := mgr.AddDelta(vblk, voff, 3); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Run(func(tx *Tx) error { return tx.Free(victim) }); err != nil {
		t.Fatal(err)
	}
	mgr.DrainDurable()
	// The heap must stay usable with the victim gone.
	blk, off := blockOf(acc)
	if _, err := mgr.AddDelta(blk, off, 1); err != nil {
		t.Fatal(err)
	}
	mgr.DrainDurable()
	if v := acc.ReadUint64(accA); v != 101 {
		t.Fatalf("acc = %d, want 101", v)
	}
	if n := h.Fsck(func(string) {}); n != 0 {
		t.Fatalf("fsck reported %d errors after free-with-pending-delta", n)
	}
}

// TestDeltaAbortAfterEnqueue: an abort between an enqueued commit and a
// pending delta must perturb neither — the aborted block's writes vanish,
// the queued commit and the fold both land.
func TestDeltaAbortAfterEnqueue(t *testing.T) {
	h, mgr, _, cls := openFA(t, false)
	if err := mgr.SetGroupCommit(GroupOptions{Mode: CommitAsync, ManualDrain: true}); err != nil {
		t.Fatal(err)
	}
	a := newAccount(t, h, cls, 100, 0, "a")
	b := newAccount(t, h, cls, 200, 0, "b")
	c := newAccount(t, h, cls, 300, 0, "c")

	tx1, err := mgr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx1.WriteUint64(a.Core(), accA, 150); err != nil {
		t.Fatal(err)
	}
	if _, err := tx1.CommitTicket(); err != nil {
		t.Fatal(err)
	}
	blk, off := blockOf(b)
	ticket, err := mgr.AddDelta(blk, off, 10)
	if err != nil {
		t.Fatal(err)
	}
	tx2, err := mgr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.WriteUint64(c.Core(), accA, 999); err != nil {
		t.Fatal(err)
	}
	tx2.Abort()

	mgr.AwaitDurable(ticket)
	if v := a.ReadUint64(accA); v != 150 {
		t.Fatalf("a = %d, want 150 (queued commit survived the abort)", v)
	}
	if v := b.ReadUint64(accA); v != 210 {
		t.Fatalf("b = %d, want 210 (fold survived the abort)", v)
	}
	if v := c.ReadUint64(accA); v != 300 {
		t.Fatalf("c = %d, want 300 (aborted write leaked)", v)
	}
}

// TestDeltaAwaitRacesFold hammers AddDelta from several goroutines while
// others race AwaitDurable/DrainDurable against the folds; the final sum
// must be exact and every ticket awaited must be durable when the await
// returns. Run under -race in CI.
func TestDeltaAwaitRacesFold(t *testing.T) {
	h, mgr, _, cls := openFA(t, false)
	if err := mgr.SetGroupCommit(GroupOptions{Mode: CommitAsync}); err != nil {
		t.Fatal(err)
	}
	accs := []*account{
		newAccount(t, h, cls, 0, 0, "h0"),
		newAccount(t, h, cls, 0, 0, "h1"),
	}
	const workers = 4
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				blk, off := blockOf(accs[(w+i)%len(accs)])
				ticket, err := mgr.AddDelta(blk, off, 1)
				if err != nil {
					t.Error(err)
					return
				}
				if i%16 == 0 {
					mgr.AwaitDurable(ticket)
					if mgr.DurableWatermark() < ticket {
						t.Errorf("AwaitDurable(%d) returned below the watermark", ticket)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	mgr.DrainDurable()
	total := accs[0].ReadUint64(accA) + accs[1].ReadUint64(accA)
	if total != workers*perWorker {
		t.Fatalf("sum = %d, want %d", total, workers*perWorker)
	}
}

// TestDeltaMixedWithCommitsConcurrent interleaves transactional writes
// and deltas on overlapping blocks across goroutines: the conflict rules
// (AddDelta drains queued holders, waitClear drains pending deltas) must
// keep every epoch's write sets disjoint and the final state exact.
func TestDeltaMixedWithCommitsConcurrent(t *testing.T) {
	h, mgr, _, cls := openFA(t, false)
	if err := mgr.SetGroupCommit(GroupOptions{Mode: CommitAsync, BatchTarget: 4}); err != nil {
		t.Fatal(err)
	}
	acc := newAccount(t, h, cls, 0, 0, "acc")
	blk, off := blockOf(acc)
	const workers = 4
	const perWorker = 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if (w+i)%3 == 0 {
					// Transactional increment of the same word.
					err := mgr.Run(func(tx *Tx) error {
						v, err := tx.ReadUint64(acc.Core(), accA)
						if err != nil {
							return err
						}
						return tx.WriteUint64(acc.Core(), accA, v+1)
					})
					if err != nil {
						t.Error(err)
						return
					}
				} else if _, err := mgr.AddDelta(blk, off, 1); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	mgr.DrainDurable()
	if v := acc.ReadUint64(accA); v != workers*perWorker {
		t.Fatalf("sum = %d, want %d", v, workers*perWorker)
	}
}

// TestDeltaRecoverDiscardsLedger: a crash with pending (never-drained)
// deltas recovers to the pre-delta state — the ledger is volatile and its
// tickets were never durable — and the reopened manager starts clean.
func TestDeltaRecoverDiscardsLedger(t *testing.T) {
	pool := nvm.New(1<<21, nvm.Options{Tracked: true})
	h, mgr, _, cls := reopenFA(t, pool)
	if err := mgr.SetGroupCommit(GroupOptions{Mode: CommitAsync, ManualDrain: true}); err != nil {
		t.Fatal(err)
	}
	acc := newAccount(t, h, cls, 100, 0, "acc")
	blk, off := blockOf(acc)
	if _, err := mgr.AddDelta(blk, off, 40); err != nil {
		t.Fatal(err)
	}
	img := pool.CrashImage(nvm.CrashAll, nil)
	h2, mgr2, _, _ := reopenFA(t, img)
	po, err := h2.Root().Get("acc")
	if err != nil {
		t.Fatal(err)
	}
	if v := po.(*account).ReadUint64(accA); v != 100 {
		t.Fatalf("recovered value = %d, want pre-delta 100", v)
	}
	if snap := mgr2.ObsSnapshot(); snap.WatermarkLag != 0 {
		t.Fatalf("watermark lag %d after recovery, want 0", snap.WatermarkLag)
	}
}

// TestDeltaCrashAfterEpochCommitPointReplays is the dropped-fold
// regression: a detached materialization must complete stage 1 (durable
// entry count, patched masks, flushed images) before the epoch's commit
// marks, so a crash just past F1 — the epoch commit point — replays the
// fold together with its same-epoch sibling commit. Before the fix the
// sibling recovered while the fold's slot replayed zero entries,
// breaking the all-or-nothing epoch property.
func TestDeltaCrashAfterEpochCommitPointReplays(t *testing.T) {
	pool := nvm.New(1<<21, nvm.Options{Tracked: true})
	h, mgr, _, cls := reopenFA(t, pool)
	if err := mgr.SetGroupCommit(GroupOptions{Mode: CommitAsync, ManualDrain: true}); err != nil {
		t.Fatal(err)
	}
	a := newAccount(t, h, cls, 100, 0, "a")
	b := newAccount(t, h, cls, 200, 0, "b")

	tx, err := mgr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.WriteUint64(a.Core(), accA, 150); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.CommitTicket(); err != nil {
		t.Fatal(err)
	}
	blk, off := blockOf(b)
	if _, err := mgr.AddDelta(blk, off, 10); err != nil {
		t.Fatal(err)
	}
	mgr.drainEpochPrefix(2) // crash just past F1

	img := pool.CrashImage(nvm.CrashStrict, rand.New(rand.NewSource(1)))
	h2, _, _, _ := reopenFA(t, img)
	for name, want := range map[string]uint64{"a": 150, "b": 210} {
		po, err := h2.Root().Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if v := po.(*account).ReadUint64(accA); v != want {
			t.Fatalf("%s = %d after post-F1 crash, want %d (epoch replays all-or-nothing)", name, v, want)
		}
	}
}

// auditProbe runs the committed-slot audit on the crash image before
// delegating replay — the same wiring the crashmc griddelta check uses.
type auditProbe struct {
	mgr *Manager
	err error
}

func (p *auditProbe) RecoverLogs(h *core.Heap, opts core.RecoverOptions) error {
	p.err = AuditCommittedSlots(h)
	return p.mgr.RecoverLogs(h, opts)
}

// TestDeltaAuditCatchesMissingStage1 pins that AuditCommittedSlots
// detects the dropped-fold signature: a commit mark over a slot whose
// durable entry count is still zero (stage 2 outran stage 1).
func TestDeltaAuditCatchesMissingStage1(t *testing.T) {
	pool := nvm.New(1<<21, nvm.Options{Tracked: true})
	h, mgr, _, cls := reopenFA(t, pool)
	acc := newAccount(t, h, cls, 100, 0, "acc")
	tx, err := mgr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.WriteUint64(acc.Core(), accA, 1); err != nil {
		t.Fatal(err)
	}
	tx.commitStage2Body() // commit mark with stage 1 deliberately skipped
	h.Pool().PFence()

	img := pool.CrashImage(nvm.CrashStrict, rand.New(rand.NewSource(1)))
	probe := &auditProbe{mgr: NewManager()}
	if _, err := core.Open(img, core.Config{
		HeapOptions: heap.Options{LogSlots: 4, LogSlotSize: 1 << 14},
		Classes:     []*core.Class{accountClass()},
		LogHandler:  probe,
	}); err != nil {
		t.Fatal(err)
	}
	if probe.err == nil {
		t.Fatal("audit accepted a committed slot with a durable entry count of zero")
	}
}

// TestDeltaFreeWithAllSlotsHeld is the self-livelock regression: a Tx
// freeing a block with a pending delta while the application holds every
// general log slot — its own included — must still make progress,
// because materialization falls back to the group's reserved slot.
// Before the reservation this spun forever in waitClear (test timeout).
func TestDeltaFreeWithAllSlotsHeld(t *testing.T) {
	pool := nvm.New(1<<22, nvm.Options{})
	cls := accountClass()
	mgr := NewManager()
	h, err := core.Open(pool, core.Config{
		HeapOptions: heap.Options{LogSlots: 2, LogSlotSize: 1 << 12},
		Classes:     []*core.Class{cls},
		LogHandler:  mgr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.SetGroupCommit(GroupOptions{Mode: CommitAsync, ManualDrain: true}); err != nil {
		t.Fatal(err)
	}
	// Unrooted on purpose, as in TestDeltaThenFreeSettles.
	vpo, err := h.Alloc(cls, accLen)
	if err != nil {
		t.Fatal(err)
	}
	victim := vpo.(*account)
	victim.WriteUint64(accA, 5)
	victim.PWB()
	victim.Validate()
	vblk, voff := blockOf(victim)
	if _, err := mgr.AddDelta(vblk, voff, 3); err != nil {
		t.Fatal(err)
	}
	// One reserved slot + one general slot: the Run below takes the last
	// general slot, then Free must drain the victim's delta with no free
	// slot anywhere but the reserved one.
	if err := mgr.Run(func(tx *Tx) error { return tx.Free(victim) }); err != nil {
		t.Fatal(err)
	}
	mgr.DrainDurable()
	if n := h.Fsck(func(string) {}); n != 0 {
		t.Fatalf("fsck reported %d errors after free-with-all-slots-held", n)
	}
}

// TestDeltaReservedSlotModeSwitch pins that switching commit modes
// returns the reserved materialization slot to the pool — repeated
// switches must not leak slots, and async mode must keep exactly one
// withheld.
func TestDeltaReservedSlotModeSwitch(t *testing.T) {
	h, mgr, _, cls := openFA(t, false) // LogSlots: 4
	for i := 0; i < 8; i++ {
		if err := mgr.SetGroupCommit(GroupOptions{Mode: CommitAsync, ManualDrain: true}); err != nil {
			t.Fatal(err)
		}
		if err := mgr.SetGroupCommit(GroupOptions{Mode: CommitPerTx}); err != nil {
			t.Fatal(err)
		}
	}
	// All four slots usable again in per-Tx mode.
	txs := make([]*Tx, 0, 4)
	for i := 0; i < 4; i++ {
		tx, err := mgr.Begin()
		if err != nil {
			t.Fatalf("Begin %d after mode switches: %v (leaked reserved slot?)", i, err)
		}
		txs = append(txs, tx)
	}
	for _, tx := range txs {
		tx.Abort()
	}
	// Async mode withholds exactly one: three concurrent blocks fit, the
	// fourth fails, and a delta still drains through the reserved slot.
	if err := mgr.SetGroupCommit(GroupOptions{Mode: CommitAsync, ManualDrain: true}); err != nil {
		t.Fatal(err)
	}
	acc := newAccount(t, h, cls, 0, 0, "acc")
	for i := 0; i < 3; i++ {
		tx, err := mgr.Begin()
		if err != nil {
			t.Fatalf("Begin %d in async mode: %v", i, err)
		}
		txs[i] = tx
	}
	if tx, err := mgr.Begin(); err == nil {
		t.Fatal("fourth Begin succeeded; the reserved slot leaked into the pool")
		_ = tx
	}
	blk, off := blockOf(acc)
	ticket, err := mgr.AddDelta(blk, off, 7)
	if err != nil {
		t.Fatal(err)
	}
	mgr.AwaitDurable(ticket)
	if v := acc.ReadUint64(accA); v != 7 {
		t.Fatalf("folded value = %d, want 7", v)
	}
	for i := 0; i < 3; i++ {
		txs[i].Abort()
	}
}

// TestDeltaLedgerCapDrains: filling the ledger past its cap with
// distinct keys forces a drain instead of unbounded growth.
func TestDeltaLedgerCapDrains(t *testing.T) {
	pool := nvm.New(1<<24, nvm.Options{})
	cls := accountClass()
	mgr := NewManager()
	h, err := core.Open(pool, core.Config{
		HeapOptions: heap.Options{LogSlots: 8, LogSlotSize: 1 << 14},
		Classes:     []*core.Class{cls},
		LogHandler:  mgr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.SetGroupCommit(GroupOptions{Mode: CommitAsync, ManualDrain: true}); err != nil {
		t.Fatal(err)
	}
	accs := make([]*account, deltaLedgerMax+10)
	for i := range accs {
		po, err := h.Alloc(cls, accLen)
		if err != nil {
			t.Fatal(err)
		}
		accs[i] = po.(*account)
		accs[i].WriteUint64(accA, 0)
		accs[i].PWB()
	}
	for i, acc := range accs {
		blk, off := blockOf(acc)
		if _, err := mgr.AddDelta(blk, off, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := mgr.stats.Epochs.Load(); got == 0 {
		t.Fatal("ledger cap never forced a drain")
	}
	mgr.DrainDurable()
	for i, acc := range accs {
		if v := acc.ReadUint64(accA); v != uint64(i) {
			t.Fatalf("acc %d = %d, want %d", i, v, i)
		}
	}
}
