package fa_test

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/fa"
	"repro/internal/heap"
	"repro/internal/nvm"
	"repro/internal/pdt"
)

// Mirrors the account fixture of the in-package tests.
const (
	accRef = 16
	accLen = 24
)

func accountClass() *core.Class {
	return &core.Class{
		Name:    "fa.account",
		Factory: func(o *core.Object) core.PObject { return o },
		Refs:    func(o *core.Object) []uint64 { return []uint64{accRef} },
	}
}

// Coverage for the transactional accessor surface: object helpers, small
// fields, block-spanning ranges, and the immutable-pool guard.

func openWithPDT(t testing.TB) (*core.Heap, *fa.Manager) {
	t.Helper()
	mgr := fa.NewManager()
	h, err := core.Open(nvm.New(1<<22, nvm.Options{}), core.Config{
		HeapOptions: heap.Options{LogSlots: 4, LogSlotSize: 1 << 15},
		Classes:     append(pdt.Classes(), accountClass()),
		LogHandler:  mgr,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h, mgr
}

func TestTxObjectHelpers(t *testing.T) {
	h, mgr := openWithPDT(t)
	cls, _ := h.Class("fa.account")
	parent, _ := h.Alloc(cls, accLen)
	parent.Core().PWB()
	parent.Core().Validate()
	h.Root().Put("p", parent)

	err := mgr.Run(func(tx *fa.Tx) error {
		child, err := tx.Alloc(cls, accLen)
		if err != nil {
			return err
		}
		if err := tx.WriteObject(parent.Core(), accRef, child); err != nil {
			return err
		}
		// Read back through the tx: must return the same proxy.
		got, err := tx.ReadObject(parent.Core(), accRef)
		if err != nil {
			return err
		}
		if got.Core().Ref() != child.Core().Ref() {
			t.Error("ReadObject returned a different object")
		}
		// Clearing with nil.
		if err := tx.WriteObject(parent.Core(), accRef, nil); err != nil {
			return err
		}
		got, err = tx.ReadObject(parent.Core(), accRef)
		if err != nil || got != nil {
			t.Errorf("nil clear: %v %v", got, err)
		}
		return tx.WriteObject(parent.Core(), accRef, child)
	})
	if err != nil {
		t.Fatal(err)
	}
	if parent.Core().ReadRef(accRef) == 0 {
		t.Fatal("committed object link lost")
	}
}

func TestTxSmallFieldAccessors(t *testing.T) {
	h, mgr := openWithPDT(t)
	cls, _ := h.Class("fa.account")
	po, _ := h.Alloc(cls, accLen)
	o := po.Core()
	o.PWB()
	o.Validate()
	h.Root().Put("o", po)

	err := mgr.Run(func(tx *fa.Tx) error {
		if err := tx.WriteUint8(o, 0, 0xab); err != nil {
			return err
		}
		if err := tx.WriteUint16(o, 2, 0xbeef); err != nil {
			return err
		}
		if err := tx.WriteUint32(o, 4, 0xdeadbeef); err != nil {
			return err
		}
		v8, _ := tx.ReadUint8(o, 0)
		v16, _ := tx.ReadUint16(o, 2)
		v32, _ := tx.ReadUint32(o, 4)
		if v8 != 0xab || v16 != 0xbeef || v32 != 0xdeadbeef {
			t.Errorf("tx small reads: %#x %#x %#x", v8, v16, v32)
		}
		// The in-place data is untouched until commit.
		if o.ReadUint8(0) != 0 {
			t.Error("redo leaked before commit")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.ReadUint8(0) != 0xab || o.ReadUint16(2) != 0xbeef || o.ReadUint32(4) != 0xdeadbeef {
		t.Fatal("committed small writes lost")
	}
}

func TestTxSpanningWrites(t *testing.T) {
	h, mgr := openWithPDT(t)
	cls := &core.Class{Name: "fa.big", Factory: func(o *core.Object) core.PObject { return o }}
	// Register late via a fresh heap open is overkill; use an account-class
	// sized multiple-block object through pdt instead.
	_ = cls
	arr, err := pdt.NewLongArray(h, 200) // ~1.6KB: spans several blocks
	if err != nil {
		t.Fatal(err)
	}
	arr.PWB()
	arr.Validate()
	h.Root().Put("arr", arr)

	blob := bytes.Repeat([]byte{0x5a}, 700) // spans 3 blocks
	err = mgr.Run(func(tx *fa.Tx) error {
		if err := tx.WriteBytes(arr.Core(), 8, blob); err != nil {
			return err
		}
		got, err := tx.ReadBytes(arr.Core(), 8, uint64(len(blob)))
		if err != nil {
			return err
		}
		if !bytes.Equal(got, blob) {
			t.Error("tx spanning read-your-writes failed")
		}
		// Spanning uint64 read/write across a block boundary, placed
		// beyond the blob so the two writes do not overlap.
		spanOff := uint64(3*heap.Payload - 3)
		if err := tx.WriteUint64(arr.Core(), spanOff, 0x1122334455667788); err != nil {
			return err
		}
		v, err := tx.ReadUint64(arr.Core(), spanOff)
		if err != nil {
			return err
		}
		if v != 0x1122334455667788 {
			t.Errorf("spanning u64 = %#x", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(arr.Core().ReadBytes(8, uint64(len(blob))), blob) {
		t.Fatal("committed spanning write lost")
	}
}

func TestTxRejectsPooledImmutableWrite(t *testing.T) {
	h, mgr := openWithPDT(t)
	s, err := pdt.NewString(h, "immutable")
	if err != nil {
		t.Fatal(err)
	}
	s.Validate()
	h.PSync()
	err = mgr.Run(func(tx *fa.Tx) error {
		return tx.WriteUint32(s.Core(), 0, 99)
	})
	if err == nil {
		t.Fatal("write to a valid pooled object inside a block was accepted")
	}
	// But reading it transactionally is fine.
	err = mgr.Run(func(tx *fa.Tx) error {
		v, err := tx.ReadUint32(s.Core(), 0)
		if err != nil {
			return err
		}
		if v != uint32(len("immutable")) {
			t.Errorf("len = %d", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestManagerRequiresAttachment(t *testing.T) {
	mgr := fa.NewManager()
	if _, err := mgr.Begin(); err == nil {
		t.Fatal("unattached manager handed out a tx")
	}
}

func TestFinishedTxPanics(t *testing.T) {
	_, mgr := openWithPDT(t)
	tx, err := mgr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("use of finished tx should panic")
		}
	}()
	tx.Nest()
}
