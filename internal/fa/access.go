package fa

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/heap"
)

// Transactional field accessors. Inside a failure-atomic block the
// generated accessors of Figure 4 behave differently (§3.2): writes to
// valid objects are redirected to in-flight block copies, and reads see
// the in-flight image when one exists. Go has no per-thread counter to
// dispatch on, so the redirected accessors live on the Tx (see DESIGN.md
// §4); they mirror core.Object's accessor set.

// locate maps (object, off) to a pool offset, redirecting through the
// in-flight copy of the containing block. forWrite creates the copy.
func (tx *Tx) locate(o *core.Object, off uint64, n uint64, forWrite bool) (uint64, error) {
	tx.active()
	if off+n > o.Size() {
		panic(fmt.Sprintf("fa: access [%d,+%d) beyond object size %d", off, n, o.Size()))
	}
	blocks := o.BlockRefs()
	if blocks == nil {
		// Pooled slots hold immutable objects (§4.4); only direct writes
		// to a not-yet-valid slot are legal.
		if forWrite && !tx.direct(o) {
			return 0, fmt.Errorf("fa: cannot update immutable pooled object %#x inside a failure-atomic block", o.Ref())
		}
		return o.Ref() + 8 + off, nil
	}
	b := off / heap.Payload
	within := off % heap.Payload
	if within+n > heap.Payload {
		return 0, errSpan // caller falls back to the byte loop
	}
	orig := blocks[b]
	if tx.direct(o) {
		return orig + heap.HeaderSize + within, nil
	}
	if forWrite {
		i, err := tx.inflightFor(orig)
		if err != nil {
			return 0, err
		}
		w := &tx.writes[i]
		w.mask |= lineMask(heap.HeaderSize+within, n)
		p := w.inf + heap.HeaderSize + within
		// Mark the store's lines for the commit write-back; the flush set
		// dedupes repeated stores to the same line (and counts the saves).
		tx.flush.AddRange(p, n)
		return p, nil
	}
	if i, ok := tx.inflight[orig]; ok {
		return tx.writes[i].inf + heap.HeaderSize + within, nil
	}
	if tx.grp != nil {
		// Async mode: a queued epoch may still hold this block's new image;
		// reading the original now could observe (and act on) pre-apply
		// state — e.g. free an old value ref the drain also frees.
		tx.grp.waitClear(orig)
	}
	return orig + heap.HeaderSize + within, nil
}

var errSpan = fmt.Errorf("fa: access spans blocks")

// ReadUint64 loads an 8-byte field through the block's redo view.
func (tx *Tx) ReadUint64(o *core.Object, off uint64) (uint64, error) {
	p, err := tx.locate(o, off, 8, false)
	if err == errSpan {
		var buf [8]byte
		if err := tx.readSpan(o, off, buf[:]); err != nil {
			return 0, err
		}
		v := uint64(0)
		for i := 7; i >= 0; i-- {
			v = v<<8 | uint64(buf[i])
		}
		return v, nil
	}
	if err != nil {
		return 0, err
	}
	return tx.h.Pool().ReadUint64(p), nil
}

// WriteUint64 stores an 8-byte field through the redo log.
func (tx *Tx) WriteUint64(o *core.Object, off, v uint64) error {
	p, err := tx.locate(o, off, 8, true)
	if err == errSpan {
		var buf [8]byte
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		return tx.writeSpan(o, off, buf[:])
	}
	if err != nil {
		return err
	}
	tx.h.Pool().WriteUint64(p, v)
	return nil
}

// ReadInt64 loads a signed 8-byte field.
func (tx *Tx) ReadInt64(o *core.Object, off uint64) (int64, error) {
	v, err := tx.ReadUint64(o, off)
	return int64(v), err
}

// WriteInt64 stores a signed 8-byte field.
func (tx *Tx) WriteInt64(o *core.Object, off uint64, v int64) error {
	return tx.WriteUint64(o, off, uint64(v))
}

// ReadUint32 loads a 4-byte field.
func (tx *Tx) ReadUint32(o *core.Object, off uint64) (uint32, error) {
	p, err := tx.locate(o, off, 4, false)
	if err == errSpan {
		var buf [4]byte
		if err := tx.readSpan(o, off, buf[:]); err != nil {
			return 0, err
		}
		return uint32(buf[0]) | uint32(buf[1])<<8 | uint32(buf[2])<<16 | uint32(buf[3])<<24, nil
	}
	if err != nil {
		return 0, err
	}
	return tx.h.Pool().ReadUint32(p), nil
}

// WriteUint32 stores a 4-byte field.
func (tx *Tx) WriteUint32(o *core.Object, off uint64, v uint32) error {
	p, err := tx.locate(o, off, 4, true)
	if err == errSpan {
		var buf [4]byte
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		return tx.writeSpan(o, off, buf[:])
	}
	if err != nil {
		return err
	}
	tx.h.Pool().WriteUint32(p, v)
	return nil
}

func (tx *Tx) readSpan(o *core.Object, off uint64, dst []byte) error {
	for len(dst) > 0 {
		within := heap.Payload - off%heap.Payload
		n := uint64(len(dst))
		if n > within {
			n = within
		}
		p, err := tx.locate(o, off, n, false)
		if err != nil {
			return err
		}
		tx.h.Pool().ReadInto(p, dst[:n])
		dst = dst[n:]
		off += n
	}
	return nil
}

func (tx *Tx) writeSpan(o *core.Object, off uint64, src []byte) error {
	for len(src) > 0 {
		within := heap.Payload - off%heap.Payload
		n := uint64(len(src))
		if n > within {
			n = within
		}
		p, err := tx.locate(o, off, n, true)
		if err != nil {
			return err
		}
		tx.h.Pool().WriteBytes(p, src[:n])
		src = src[n:]
		off += n
	}
	return nil
}

// ReadBytes copies n bytes through the redo view.
func (tx *Tx) ReadBytes(o *core.Object, off, n uint64) ([]byte, error) {
	out := make([]byte, n)
	if err := tx.readSpan(o, off, out); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteBytes stores src through the redo log.
func (tx *Tx) WriteBytes(o *core.Object, off uint64, src []byte) error {
	return tx.writeSpan(o, off, src)
}

// ReadRef loads a reference field through the redo view.
func (tx *Tx) ReadRef(o *core.Object, off uint64) (core.Ref, error) {
	return tx.ReadUint64(o, off)
}

// WriteRef stores a reference field through the redo log.
func (tx *Tx) WriteRef(o *core.Object, off uint64, r core.Ref) error {
	return tx.WriteUint64(o, off, r)
}

// WriteObject stores a reference to po (nil clears the field).
func (tx *Tx) WriteObject(o *core.Object, off uint64, po core.PObject) error {
	if po == nil {
		return tx.WriteRef(o, off, 0)
	}
	return tx.WriteRef(o, off, po.Core().Ref())
}

// ReadObject dereferences the reference field at off through the redo
// view, resurrecting a proxy for the target.
func (tx *Tx) ReadObject(o *core.Object, off uint64) (core.PObject, error) {
	r, err := tx.ReadRef(o, off)
	if err != nil || r == 0 {
		return nil, err
	}
	if po, ok := tx.proxies[r]; ok {
		return po, nil
	}
	return tx.h.Resurrect(r)
}

// ReadUint16 loads a 2-byte field through the redo view.
func (tx *Tx) ReadUint16(o *core.Object, off uint64) (uint16, error) {
	var buf [2]byte
	if err := tx.readSpan(o, off, buf[:]); err != nil {
		return 0, err
	}
	return uint16(buf[0]) | uint16(buf[1])<<8, nil
}

// WriteUint16 stores a 2-byte field through the redo log.
func (tx *Tx) WriteUint16(o *core.Object, off uint64, v uint16) error {
	return tx.writeSpan(o, off, []byte{byte(v), byte(v >> 8)})
}

// ReadUint8 loads a 1-byte field through the redo view.
func (tx *Tx) ReadUint8(o *core.Object, off uint64) (byte, error) {
	var buf [1]byte
	if err := tx.readSpan(o, off, buf[:]); err != nil {
		return 0, err
	}
	return buf[0], nil
}

// WriteUint8 stores a 1-byte field through the redo log.
func (tx *Tx) WriteUint8(o *core.Object, off uint64, v byte) error {
	return tx.writeSpan(o, off, []byte{v})
}
