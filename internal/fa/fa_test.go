package fa

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/nvm"
)

// account is the test class: two 8-byte balances, one ref.
type account struct{ *core.Object }

const (
	accA   = 0
	accB   = 8
	accRef = 16
	accLen = 24
)

func accountClass() *core.Class {
	return &core.Class{
		Name:    "fa.account",
		Factory: func(o *core.Object) core.PObject { return &account{Object: o} },
		Refs:    func(o *core.Object) []uint64 { return []uint64{accRef} },
	}
}

func openFA(t testing.TB, tracked bool) (*core.Heap, *Manager, *nvm.Pool, *core.Class) {
	t.Helper()
	pool := nvm.New(1<<21, nvm.Options{Tracked: tracked})
	return reopenFA(t, pool)
}

func reopenFA(t testing.TB, pool *nvm.Pool) (*core.Heap, *Manager, *nvm.Pool, *core.Class) {
	t.Helper()
	cls := accountClass()
	mgr := NewManager()
	h, err := core.Open(pool, core.Config{
		HeapOptions: heap.Options{LogSlots: 4, LogSlotSize: 1 << 14},
		Classes:     []*core.Class{cls},
		LogHandler:  mgr,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h, mgr, pool, cls
}

func newAccount(t testing.TB, h *core.Heap, cls *core.Class, a, b uint64, name string) *account {
	t.Helper()
	po, err := h.Alloc(cls, accLen)
	if err != nil {
		t.Fatal(err)
	}
	acc := po.(*account)
	acc.WriteUint64(accA, a)
	acc.WriteUint64(accB, b)
	acc.PWB()
	if err := h.Root().Put(name, acc); err != nil {
		t.Fatal(err)
	}
	return acc
}

func TestRunCommitsWrites(t *testing.T) {
	h, mgr, _, cls := openFA(t, false)
	acc := newAccount(t, h, cls, 100, 0, "acc")
	err := mgr.Run(func(tx *Tx) error {
		if err := tx.WriteUint64(acc.Core(), accA, 60); err != nil {
			return err
		}
		if err := tx.WriteUint64(acc.Core(), accB, 40); err != nil {
			return err
		}
		// Read-your-writes inside the block.
		if v, _ := tx.ReadUint64(acc.Core(), accA); v != 60 {
			t.Errorf("tx read = %d, want 60", v)
		}
		// The original is untouched until commit.
		if acc.ReadUint64(accA) != 100 {
			t.Error("in-place data changed before commit")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc.ReadUint64(accA) != 60 || acc.ReadUint64(accB) != 40 {
		t.Fatalf("committed values %d/%d", acc.ReadUint64(accA), acc.ReadUint64(accB))
	}
}

func TestErrorAborts(t *testing.T) {
	h, mgr, _, cls := openFA(t, false)
	acc := newAccount(t, h, cls, 100, 0, "acc")
	sentinel := fmt.Errorf("boom")
	if err := mgr.Run(func(tx *Tx) error {
		if err := tx.WriteUint64(acc.Core(), accA, 1); err != nil {
			return err
		}
		return sentinel
	}); err != sentinel {
		t.Fatalf("err = %v", err)
	}
	if acc.ReadUint64(accA) != 100 {
		t.Fatal("aborted write leaked")
	}
	// The log slot and in-flight blocks must be recycled: the next
	// block's in-flight copy comes from the transaction's transient pool.
	if err := mgr.Run(func(tx *Tx) error {
		return tx.WriteUint64(acc.Core(), accA, 100)
	}); err != nil {
		t.Fatal(err)
	}
	if h.Mem().Obs().TransientReuse.Load() == 0 {
		t.Fatal("in-flight block not recycled after abort")
	}
}

func TestPanicAbortsAndPropagates(t *testing.T) {
	h, mgr, _, cls := openFA(t, false)
	acc := newAccount(t, h, cls, 100, 0, "acc")
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic swallowed")
			}
		}()
		mgr.Run(func(tx *Tx) error {
			tx.WriteUint64(acc.Core(), accA, 1)
			panic("kaboom")
		})
	}()
	if acc.ReadUint64(accA) != 100 {
		t.Fatal("write from panicked block leaked")
	}
	_ = h
}

func TestAllocInsideBlock(t *testing.T) {
	h, mgr, _, cls := openFA(t, false)
	parent := newAccount(t, h, cls, 1, 2, "parent")
	var childRef core.Ref
	err := mgr.Run(func(tx *Tx) error {
		po, err := tx.Alloc(cls, accLen)
		if err != nil {
			return err
		}
		childRef = po.Core().Ref()
		if err := tx.WriteUint64(po.Core(), accA, 777); err != nil {
			return err
		}
		return tx.WriteRef(parent.Core(), accRef, childRef)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !h.Mem().Valid(childRef) {
		t.Fatal("allocation not validated at commit")
	}
	if parent.ReadRef(accRef) != childRef {
		t.Fatal("link not committed")
	}
}

func TestAllocAbortReclaims(t *testing.T) {
	h, mgr, _, cls := openFA(t, false)
	bumpedBefore, freeBefore, _ := h.Mem().Stats()
	mgr.Run(func(tx *Tx) error {
		if _, err := tx.Alloc(cls, accLen); err != nil {
			return err
		}
		return fmt.Errorf("abort")
	})
	bumpedAfter, freeAfter, _ := h.Mem().Stats()
	if bumpedAfter-bumpedBefore != freeAfter-freeBefore {
		t.Fatalf("aborted alloc leaked blocks: bump +%d, free +%d",
			bumpedAfter-bumpedBefore, freeAfter-freeBefore)
	}
}

func TestFreeInsideBlock(t *testing.T) {
	h, mgr, _, cls := openFA(t, false)
	parent := newAccount(t, h, cls, 1, 2, "parent")
	child := newAccount(t, h, cls, 3, 4, "child")
	h.Root().Remove("child")
	parent.Core().AtomicUpdateRef(accRef, child)
	childRef := child.Core().Ref()

	err := mgr.Run(func(tx *Tx) error {
		if err := tx.WriteRef(parent.Core(), accRef, 0); err != nil {
			return err
		}
		return tx.Free(child)
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.Mem().Valid(childRef) {
		t.Fatal("freed object still valid")
	}
	if parent.ReadRef(accRef) != 0 {
		t.Fatal("unlink not committed")
	}
	// Freed proxy is neutralized.
	if child.Core().Ref() != 0 {
		t.Fatal("freed proxy still holds its ref")
	}
}

func TestNesting(t *testing.T) {
	h, mgr, _, cls := openFA(t, false)
	acc := newAccount(t, h, cls, 10, 0, "acc")
	tx, err := mgr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	tx.WriteUint64(acc.Core(), accA, 11)
	tx.Nest()
	tx.WriteUint64(acc.Core(), accB, 22)
	if err := tx.Commit(); err != nil { // inner: must not apply yet
		t.Fatal(err)
	}
	if acc.ReadUint64(accB) == 22 {
		t.Fatal("inner commit applied early")
	}
	if err := tx.Commit(); err != nil { // outer
		t.Fatal(err)
	}
	if acc.ReadUint64(accA) != 11 || acc.ReadUint64(accB) != 22 {
		t.Fatal("outer commit incomplete")
	}
}

func TestLogFull(t *testing.T) {
	pool := nvm.New(1<<22, nvm.Options{})
	cls := accountClass()
	mgr := NewManager()
	h, err := core.Open(pool, core.Config{
		HeapOptions: heap.Options{LogSlots: 1, LogSlotSize: 128}, // ~4 entries
		Classes:     []*core.Class{cls},
		LogHandler:  mgr,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = mgr.Run(func(tx *Tx) error {
		for i := 0; i < 100; i++ {
			if _, err := tx.Alloc(cls, accLen); err != nil {
				return err
			}
		}
		return nil
	})
	if err == nil {
		t.Fatal("oversized block accepted")
	}
	_ = h
}

func TestSlotExhaustion(t *testing.T) {
	_, mgr, _, _ := openFA(t, false)
	var txs []*Tx
	for {
		tx, err := mgr.Begin()
		if err != nil {
			break
		}
		txs = append(txs, tx)
	}
	if len(txs) != 4 {
		t.Fatalf("expected 4 slots, got %d", len(txs))
	}
	txs[0].Abort()
	tx, err := mgr.Begin()
	if err != nil {
		t.Fatalf("slot not recycled: %v", err)
	}
	tx.Abort()
	for _, tx := range txs[1:] {
		tx.Abort()
	}
}

// transfer moves amount from balance A to balance B across two accounts.
func transfer(tx *Tx, from, to *account, amount uint64) error {
	fa, err := tx.ReadUint64(from.Core(), accA)
	if err != nil {
		return err
	}
	ta, err := tx.ReadUint64(to.Core(), accA)
	if err != nil {
		return err
	}
	if err := tx.WriteUint64(from.Core(), accA, fa-amount); err != nil {
		return err
	}
	return tx.WriteUint64(to.Core(), accA, ta+amount)
}

func TestCrashBeforeCommitMarkDropsBlock(t *testing.T) {
	h, mgr, pool, cls := openFA(t, true)
	from := newAccount(t, h, cls, 100, 0, "from")
	to := newAccount(t, h, cls, 50, 0, "to")
	tx, err := mgr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := transfer(tx, from, to, 30); err != nil {
		t.Fatal(err)
	}
	tx.commitPrefix(1) // log flushed + fence, but no commit mark

	img := pool.CrashImage(nvm.CrashStrict, rand.New(rand.NewSource(1)))
	h2, _, _, _ := reopenFA(t, img)
	assertBalances(t, h2, 100, 50)
}

func TestCrashAfterCommitMarkReplays(t *testing.T) {
	h, mgr, pool, cls := openFA(t, true)
	from := newAccount(t, h, cls, 100, 0, "from")
	to := newAccount(t, h, cls, 50, 0, "to")
	tx, err := mgr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := transfer(tx, from, to, 30); err != nil {
		t.Fatal(err)
	}
	tx.commitPrefix(2) // durable commit mark, apply never ran

	img := pool.CrashImage(nvm.CrashStrict, rand.New(rand.NewSource(1)))
	h2, _, _, _ := reopenFA(t, img)
	assertBalances(t, h2, 70, 80)
}

func TestCrashMidApplyReplays(t *testing.T) {
	h, mgr, pool, cls := openFA(t, true)
	from := newAccount(t, h, cls, 100, 0, "from")
	to := newAccount(t, h, cls, 50, 0, "to")
	tx, err := mgr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := transfer(tx, from, to, 30); err != nil {
		t.Fatal(err)
	}
	tx.commitPrefix(3) // applied but unflushed, log still committed

	// Even under a strict crash the committed log replays the writes.
	img := pool.CrashImage(nvm.CrashStrict, rand.New(rand.NewSource(1)))
	h2, _, _, _ := reopenFA(t, img)
	assertBalances(t, h2, 70, 80)
}

func assertBalances(t *testing.T, h *core.Heap, wantFrom, wantTo uint64) {
	t.Helper()
	fromPO, err := h.Root().Get("from")
	if err != nil || fromPO == nil {
		t.Fatalf("from lost: %v", err)
	}
	toPO, err := h.Root().Get("to")
	if err != nil || toPO == nil {
		t.Fatalf("to lost: %v", err)
	}
	gf := fromPO.Core().ReadUint64(accA)
	gt := toPO.Core().ReadUint64(accA)
	if gf != wantFrom || gt != wantTo {
		t.Fatalf("balances %d/%d, want %d/%d", gf, gt, wantFrom, wantTo)
	}
}

// Property: money is conserved across randomized transfers crashed at
// arbitrary protocol stages under arbitrary crash policies.
func TestCrashAtomicityRandomized(t *testing.T) {
	const initial = 1000
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h, mgr, pool, cls := openFA(t, true)
		a := newAccount(t, h, cls, initial, 0, "from")
		b := newAccount(t, h, cls, initial, 0, "to")

		// Random committed transfers first.
		n := rng.Intn(5)
		for i := 0; i < n; i++ {
			amount := uint64(rng.Intn(100))
			if err := mgr.Run(func(tx *Tx) error { return transfer(tx, a, b, amount) }); err != nil {
				t.Fatal(err)
			}
		}
		// One in-flight transfer crashed at a random stage.
		tx, err := mgr.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := transfer(tx, a, b, uint64(rng.Intn(100))); err != nil {
			t.Fatal(err)
		}
		tx.commitPrefix(rng.Intn(5)) // 0..4

		policy := []nvm.CrashPolicy{nvm.CrashStrict, nvm.CrashAll, nvm.CrashRandom}[rng.Intn(3)]
		img := pool.CrashImage(policy, rng)
		h2, _, _, _ := reopenFA(t, img)
		fromPO, err := h2.Root().Get("from")
		if err != nil || fromPO == nil {
			t.Fatalf("seed %d: from lost: %v", seed, err)
		}
		toPO, err := h2.Root().Get("to")
		if err != nil || toPO == nil {
			t.Fatalf("seed %d: to lost: %v", seed, err)
		}
		sum := fromPO.Core().ReadUint64(accA) + toPO.Core().ReadUint64(accA)
		if sum != 2*initial {
			t.Fatalf("seed %d: money not conserved: %d (policy %v)", seed, sum, policy)
		}
	}
}

func TestRecoveredSlotReusable(t *testing.T) {
	h, mgr, pool, cls := openFA(t, true)
	acc := newAccount(t, h, cls, 5, 0, "acc")
	tx, _ := mgr.Begin()
	tx.WriteUint64(acc.Core(), accA, 6)
	tx.commitPrefix(2)

	img := pool.CrashImage(nvm.CrashStrict, rand.New(rand.NewSource(9)))
	h2, mgr2, _, _ := reopenFA(t, img)
	// All slots must be idle again and usable.
	for i := 0; i < 8; i++ {
		if err := mgr2.Run(func(tx *Tx) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	_ = h2
}

func TestConcurrentTransfersConserveMoney(t *testing.T) {
	// 8 workers hammer disjoint account pairs through failure-atomic
	// blocks; the sum is invariant and no block/log state corrupts.
	pool := nvm.New(1<<22, nvm.Options{})
	cls := accountClass()
	mgr := NewManager()
	h, err := core.Open(pool, core.Config{
		HeapOptions: heap.Options{LogSlots: 8, LogSlotSize: 1 << 14},
		Classes:     []*core.Class{cls},
		LogHandler:  mgr,
	})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	accounts := make([]*account, 2*workers)
	for i := range accounts {
		po, err := h.Alloc(cls, accLen)
		if err != nil {
			t.Fatal(err)
		}
		acc := po.(*account)
		acc.WriteUint64(accA, 1000)
		acc.PWB()
		acc.Validate()
		if err := h.Root().Put(fmt.Sprintf("acc%d", i), acc); err != nil {
			t.Fatal(err)
		}
		accounts[i] = acc
	}
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			a, b := accounts[2*w], accounts[2*w+1]
			for i := 0; i < 200; i++ {
				if err := mgr.Run(func(tx *Tx) error { return transfer(tx, a, b, 3) }); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	var sum uint64
	for _, acc := range accounts {
		sum += acc.ReadUint64(accA)
	}
	if sum != uint64(len(accounts))*1000 {
		t.Fatalf("sum = %d", sum)
	}
	// And the heap survives a full recovery afterwards.
	h2, _, _, _ := reopenFA(t, pool)
	if h2.Root().Len() != len(accounts) {
		t.Fatalf("roots after recovery: %d", h2.Root().Len())
	}
}

func TestOnAbortHooks(t *testing.T) {
	_, mgr, _, _ := openFA(t, false)
	var events []string
	// Commit: Defer runs, OnAbort does not.
	err := mgr.Run(func(tx *Tx) error {
		tx.Defer(func() { events = append(events, "defer") })
		tx.OnAbort(func() { events = append(events, "abort") })
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Abort: only OnAbort runs, in reverse order.
	mgr.Run(func(tx *Tx) error {
		tx.Defer(func() { events = append(events, "defer2") })
		tx.OnAbort(func() { events = append(events, "abort1") })
		tx.OnAbort(func() { events = append(events, "abort2") })
		return fmt.Errorf("fail")
	})
	want := []string{"defer", "abort2", "abort1"}
	if len(events) != len(want) {
		t.Fatalf("events = %v", events)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events = %v, want %v", events, want)
		}
	}
}

func TestFreeThenCrashKeepsConsistency(t *testing.T) {
	// A committed block that freed an object keeps it freed across a
	// strict crash; an uncommitted one keeps it alive.
	h, mgr, pool, cls := openFA(t, true)
	keep := newAccount(t, h, cls, 1, 0, "keep")
	kill := newAccount(t, h, cls, 2, 0, "kill")
	_ = keep
	if err := mgr.Run(func(tx *Tx) error { return tx.Free(kill) }); err != nil {
		t.Fatal(err)
	}
	// Note: "kill" is still bound in the root map; recovery must nullify
	// the binding since the object is gone.
	img := pool.CrashImage(nvm.CrashStrict, rand.New(rand.NewSource(2)))
	h2, _, _, _ := reopenFA(t, img)
	if po, _ := h2.Root().Get("kill"); po != nil {
		t.Fatal("freed object still reachable after crash")
	}
	if po, _ := h2.Root().Get("keep"); po == nil {
		t.Fatal("live object lost")
	}
}
