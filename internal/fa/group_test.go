package fa

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/nvm"
)

// runDeterministicWorkload drives a fixed mixed workload — transfers,
// allocations, frees — through the manager, single-goroutine, so two runs
// under different commit modes perform the same logical operations.
func runDeterministicWorkload(t *testing.T, h *core.Heap, mgr *Manager, cls *core.Class) {
	t.Helper()
	a := newAccount(t, h, cls, 1000, 0, "from")
	b := newAccount(t, h, cls, 1000, 0, "to")
	rng := rand.New(rand.NewSource(42))
	var extras []*account
	for i := 0; i < 60; i++ {
		switch rng.Intn(4) {
		case 0, 1:
			amount := uint64(rng.Intn(50))
			if err := mgr.Run(func(tx *Tx) error { return transfer(tx, a, b, amount) }); err != nil {
				t.Fatal(err)
			}
		case 2:
			err := mgr.Run(func(tx *Tx) error {
				po, err := tx.Alloc(cls, accLen)
				if err != nil {
					return err
				}
				extras = append(extras, po.(*account))
				return tx.WriteUint64(po.Core(), accA, uint64(i))
			})
			if err != nil {
				t.Fatal(err)
			}
		case 3:
			if len(extras) == 0 {
				continue
			}
			victim := extras[len(extras)-1]
			extras = extras[:len(extras)-1]
			if err := mgr.Run(func(tx *Tx) error { return tx.Free(victim) }); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestGroupCommitSyncBitIdentical is the satellite-4 equivalence oracle:
// the same single-goroutine workload, run per-Tx and under sync group
// commit, must leave bit-identical pool images (the group path performs
// the same stores in the same order, only the barriers are shared) and
// identical allocator state after recovery.
func TestGroupCommitSyncBitIdentical(t *testing.T) {
	run := func(mode CommitMode) (*nvm.Pool, *core.Heap) {
		pool := nvm.New(1<<21, nvm.Options{})
		cls := accountClass()
		mgr := NewManager()
		h, err := core.Open(pool, core.Config{
			HeapOptions: heap.Options{LogSlots: 4, LogSlotSize: 1 << 14},
			Classes:     []*core.Class{cls},
			LogHandler:  mgr,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := mgr.SetGroupCommit(GroupOptions{Mode: mode}); err != nil {
			t.Fatal(err)
		}
		runDeterministicWorkload(t, h, mgr, cls)
		return pool, h
	}

	perTx, hPer := run(CommitPerTx)
	grouped, hGrp := run(CommitGroup)

	if pb, gb := perTx.View(0, perTx.Size()), grouped.View(0, grouped.Size()); string(pb) != string(gb) {
		for i := range pb {
			if pb[i] != gb[i] {
				t.Fatalf("pool images diverge at offset %#x: per-tx %#x, group %#x", i, pb[i], gb[i])
			}
		}
	}
	pb1, pf1, _ := hPer.Mem().Stats()
	gb1, gf1, _ := hGrp.Mem().Stats()
	if pb1 != gb1 || pf1 != gf1 {
		t.Fatalf("allocator state diverges: per-tx (bump %d, free %d), group (bump %d, free %d)", pb1, pf1, gb1, gf1)
	}

	// Both recover to identical states too.
	h2p, _, _, _ := reopenFA(t, perTx)
	h2g, _, _, _ := reopenFA(t, grouped)
	if string(perTx.View(0, perTx.Size())) != string(grouped.View(0, grouped.Size())) {
		t.Fatal("recovered pool images diverge")
	}
	if h2p.Root().Len() != h2g.Root().Len() {
		t.Fatalf("recovered roots: per-tx %d, group %d", h2p.Root().Len(), h2g.Root().Len())
	}
}

// TestGroupCommitAsyncEquivalent checks the async pipeline against the
// per-Tx oracle at the semantic level (async reorders stage interleaving
// across the batch, so raw log-area bytes may differ): same committed
// values, same allocator occupancy, clean recovery.
func TestGroupCommitAsyncEquivalent(t *testing.T) {
	run := func(mode CommitMode) (*nvm.Pool, *core.Heap, *Manager) {
		pool := nvm.New(1<<21, nvm.Options{})
		cls := accountClass()
		mgr := NewManager()
		h, err := core.Open(pool, core.Config{
			HeapOptions: heap.Options{LogSlots: 4, LogSlotSize: 1 << 14},
			Classes:     []*core.Class{cls},
			LogHandler:  mgr,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := mgr.SetGroupCommit(GroupOptions{Mode: mode}); err != nil {
			t.Fatal(err)
		}
		runDeterministicWorkload(t, h, mgr, cls)
		if mode == CommitAsync {
			mgr.DrainDurable()
		}
		return pool, h, mgr
	}

	perTx, _, _ := run(CommitPerTx)
	asyncPool, _, amgr := run(CommitAsync)

	if w, i := amgr.DurableWatermark(), amgr.IssuedTickets(); w != i {
		t.Fatalf("watermark %d behind issued %d after DrainDurable", w, i)
	}

	h2p, _, _, _ := reopenFA(t, perTx)
	h2a, _, _, _ := reopenFA(t, asyncPool)
	for _, name := range []string{"from", "to"} {
		pp, err := h2p.Root().Get(name)
		if err != nil || pp == nil {
			t.Fatalf("per-tx %q lost: %v", name, err)
		}
		ap, err := h2a.Root().Get(name)
		if err != nil || ap == nil {
			t.Fatalf("async %q lost: %v", name, err)
		}
		if pv, av := pp.Core().ReadUint64(accA), ap.Core().ReadUint64(accA); pv != av {
			t.Fatalf("%q: per-tx %d, async %d", name, pv, av)
		}
	}
	pBump, pFree, _ := h2p.Mem().Stats()
	aBump, aFree, _ := h2a.Mem().Stats()
	if pBump-pFree != aBump-aFree {
		t.Fatalf("live blocks diverge: per-tx %d, async %d", pBump-pFree, aBump-aFree)
	}
}

// TestGroupCommitConcurrent stress-tests sync group commit: 8 workers on
// disjoint account pairs, run under -race in CI. Money is conserved and
// fences are actually combined. The pool simulates PMEM-like fence
// latency so barriers overlap the way they do on hardware — with
// zero-cost fences the combining window is empty and nothing would
// overlap.
func TestGroupCommitConcurrent(t *testing.T) {
	pool := nvm.New(1<<22, nvm.Options{FenceLatency: 500})
	cls := accountClass()
	mgr := NewManager()
	h, err := core.Open(pool, core.Config{
		HeapOptions: heap.Options{LogSlots: 16, LogSlotSize: 1 << 14},
		Classes:     []*core.Class{cls},
		LogHandler:  mgr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.SetGroupCommit(GroupOptions{Mode: CommitGroup}); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	accounts := make([]*account, 2*workers)
	for i := range accounts {
		po, err := h.Alloc(cls, accLen)
		if err != nil {
			t.Fatal(err)
		}
		acc := po.(*account)
		acc.WriteUint64(accA, 1000)
		acc.PWB()
		acc.Validate()
		if err := h.Root().Put(fmt.Sprintf("acc%d", i), acc); err != nil {
			t.Fatal(err)
		}
		accounts[i] = acc
	}
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			a, b := accounts[2*w], accounts[2*w+1]
			for i := 0; i < 200; i++ {
				if err := mgr.Run(func(tx *Tx) error { return transfer(tx, a, b, 3) }); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	var sum uint64
	for _, acc := range accounts {
		sum += acc.ReadUint64(accA)
	}
	if sum != uint64(len(accounts))*1000 {
		t.Fatalf("sum = %d", sum)
	}
	snap := mgr.ObsSnapshot()
	if snap.CombinedFences == 0 {
		t.Fatal("no fences were combined across 1600 concurrent commits")
	}
	h2, _, _, _ := reopenFA(t, pool)
	if h2.Root().Len() != len(accounts) {
		t.Fatalf("roots after recovery: %d", h2.Root().Len())
	}
}

// TestGroupCommitAsyncConcurrent stress-tests the async pipeline with
// automatic batch-pressure drains and per-worker AwaitDurable calls; run
// under -race in CI.
func TestGroupCommitAsyncConcurrent(t *testing.T) {
	pool := nvm.New(1<<22, nvm.Options{})
	cls := accountClass()
	mgr := NewManager()
	h, err := core.Open(pool, core.Config{
		HeapOptions: heap.Options{LogSlots: 16, LogSlotSize: 1 << 14},
		Classes:     []*core.Class{cls},
		LogHandler:  mgr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.SetGroupCommit(GroupOptions{Mode: CommitAsync, BatchTarget: 4}); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	accounts := make([]*account, 2*workers)
	for i := range accounts {
		po, err := h.Alloc(cls, accLen)
		if err != nil {
			t.Fatal(err)
		}
		acc := po.(*account)
		acc.WriteUint64(accA, 1000)
		acc.PWB()
		acc.Validate()
		if err := h.Root().Put(fmt.Sprintf("acc%d", i), acc); err != nil {
			t.Fatal(err)
		}
		accounts[i] = acc
	}
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			a, b := accounts[2*w], accounts[2*w+1]
			for i := 0; i < 200; i++ {
				tx, err := mgr.Begin()
				if err != nil {
					errCh <- err
					return
				}
				if err := transfer(tx, a, b, 3); err != nil {
					tx.Abort()
					errCh <- err
					return
				}
				ticket, err := tx.CommitTicket()
				if err != nil {
					errCh <- err
					return
				}
				if i%17 == 0 {
					mgr.AwaitDurable(ticket)
					if mgr.DurableWatermark() < ticket {
						errCh <- fmt.Errorf("worker %d: watermark below awaited ticket %d", w, ticket)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	mgr.DrainDurable()
	var sum uint64
	for _, acc := range accounts {
		sum += acc.ReadUint64(accA)
	}
	if sum != uint64(len(accounts))*1000 {
		t.Fatalf("sum = %d", sum)
	}
	snap := mgr.ObsSnapshot()
	if snap.Epochs == 0 || snap.EpochTxs < snap.Epochs {
		t.Fatalf("epoch accounting: %d epochs, %d txs", snap.Epochs, snap.EpochTxs)
	}
	if snap.AsyncCommits != workers*200 {
		t.Fatalf("async commits = %d, want %d", snap.AsyncCommits, workers*200)
	}
	h2, _, _, _ := reopenFA(t, pool)
	if h2.Root().Len() != len(accounts) {
		t.Fatalf("roots after recovery: %d", h2.Root().Len())
	}
}

// TestGroupCommitAsyncConflictDrains pins the waitClear guard: a block
// touching (even just reading) data held by a queued async commit drains
// the epoch first, so it observes the queued update instead of forking
// history from the stale original.
func TestGroupCommitAsyncConflictDrains(t *testing.T) {
	h, mgr, _, cls := openFA(t, false)
	if err := mgr.SetGroupCommit(GroupOptions{Mode: CommitAsync, ManualDrain: true}); err != nil {
		t.Fatal(err)
	}
	acc := newAccount(t, h, cls, 100, 0, "acc")

	tx1, err := mgr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx1.WriteUint64(acc.Core(), accA, 150); err != nil {
		t.Fatal(err)
	}
	ticket, err := tx1.CommitTicket()
	if err != nil {
		t.Fatal(err)
	}
	if ticket == 0 {
		t.Fatal("async commit returned no ticket")
	}
	if mgr.DurableWatermark() != 0 {
		t.Fatal("watermark advanced before any drain")
	}
	// Non-transactional readers see the pre-epoch state (bounded
	// staleness, documented); a transactional reader must not.
	if v := acc.ReadUint64(accA); v != 100 {
		t.Fatalf("direct read = %d, want stale 100 before drain", v)
	}
	var seen uint64
	if err := mgr.Run(func(tx *Tx) error {
		v, err := tx.ReadUint64(acc.Core(), accA)
		seen = v
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if seen != 150 {
		t.Fatalf("transactional read = %d, want 150 (conflict must drain the queue)", seen)
	}
	if mgr.DurableWatermark() < ticket {
		t.Fatal("conflict drain did not advance the watermark")
	}
}

// TestCrashBetweenRetireAndPSync is the satellite-1 regression: a crash in
// the window after the retire write-back but before its psync. Whatever
// subset of the retire lands, recovery must end with the committed values
// and a reusable slot — PWBRange(base, slotEntries) must cover both header
// words or a stale count could pair with a stale committed mark.
func TestCrashBetweenRetireAndPSync(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h, mgr, pool, cls := openFA(t, true)
		from := newAccount(t, h, cls, 100, 0, "from")
		to := newAccount(t, h, cls, 50, 0, "to")
		tx, err := mgr.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := transfer(tx, from, to, 30); err != nil {
			t.Fatal(err)
		}
		tx.commitPrefix(4) // retire written back, psync never issued

		policy := []nvm.CrashPolicy{nvm.CrashStrict, nvm.CrashAll, nvm.CrashRandom}[rng.Intn(3)]
		img := pool.CrashImage(policy, rng)
		h2, mgr2, _, _ := reopenFA(t, img)
		assertBalances(t, h2, 70, 80)
		// Every slot usable again regardless of which retire lines landed.
		for i := 0; i < 8; i++ {
			if err := mgr2.Run(func(tx *Tx) error { return nil }); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestAbortThenReuseCrash is the satellite-2 regression: an aborted
// generation leaves its entries physically in the slot (the count reset is
// volatile); a fresh generation then reuses the slot and crashes right
// after its durable commit mark. Replay must be bounded by the new
// generation's durably-fenced count and never resurrect the aborted
// entries.
func TestAbortThenReuseCrash(t *testing.T) {
	h, mgr, pool, cls := openFA(t, true)
	poison := newAccount(t, h, cls, 100, 0, "poison")
	clean := newAccount(t, h, cls, 200, 0, "clean")

	// Aborted generation: three write entries against "poison".
	tx1, err := mgr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 3; i++ {
		if err := tx1.WriteUint64(poison.Core(), accA, 900+i); err != nil {
			t.Fatal(err)
		}
		if err := tx1.WriteUint64(poison.Core(), accB, i); err != nil {
			t.Fatal(err)
		}
	}
	slot1 := tx1.slot
	tx1.Abort()

	// Reuse the same slot (warm cache hands the parked Tx straight back)
	// and crash right after the durable commit mark: the worst case, since
	// everything the aborted generation wrote is also still durable.
	tx2, err := mgr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if tx2.slot != slot1 {
		t.Fatalf("slot not reused (got %d, want %d); test premise broken", tx2.slot, slot1)
	}
	if err := tx2.WriteUint64(clean.Core(), accA, 201); err != nil {
		t.Fatal(err)
	}
	tx2.commitPrefix(2)

	img := pool.CrashImage(nvm.CrashAll, rand.New(rand.NewSource(3)))
	h2, _, _, _ := reopenFA(t, img)
	p2, err := h2.Root().Get("poison")
	if err != nil || p2 == nil {
		t.Fatalf("poison lost: %v", err)
	}
	if v := p2.Core().ReadUint64(accA); v != 100 {
		t.Fatalf("aborted generation replayed: poison = %d, want 100", v)
	}
	c2, err := h2.Root().Get("clean")
	if err != nil || c2 == nil {
		t.Fatalf("clean lost: %v", err)
	}
	if v := c2.Core().ReadUint64(accA); v != 201 {
		t.Fatalf("committed generation dropped: clean = %d, want 201", v)
	}
}

// TestGroupCommitSoloCost pins that a cohort of one pays exactly the
// per-Tx barrier cost — combining must never add fences.
func TestGroupCommitSoloCost(t *testing.T) {
	h, mgr, pool, cls := openFA(t, false)
	if err := mgr.SetGroupCommit(GroupOptions{Mode: CommitGroup}); err != nil {
		t.Fatal(err)
	}
	acc := newAccount(t, h, cls, 100, 0, "acc")
	if err := mgr.Run(func(tx *Tx) error {
		return tx.WriteUint64(acc.Core(), accA, 1)
	}); err != nil {
		t.Fatal(err)
	}
	before := pool.Obs().Snapshot()
	if err := mgr.Run(func(tx *Tx) error {
		return tx.WriteUint64(acc.Core(), accA, 2)
	}); err != nil {
		t.Fatal(err)
	}
	d := pool.Obs().Snapshot().Sub(before)
	if d.PWBs != 5 || d.PFences != 3 || d.PSyncs != 1 {
		t.Fatalf("solo group commit cost: %d pwb, %d pfence, %d psync (want 5, 3, 1)",
			d.PWBs, d.PFences, d.PSyncs)
	}
}

// TestSetGroupCommitGuards pins the mode-switch preconditions.
func TestSetGroupCommitGuards(t *testing.T) {
	_, mgr, _, _ := openFA(t, false)
	tx, err := mgr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.SetGroupCommit(GroupOptions{Mode: CommitGroup}); err == nil {
		t.Fatal("mode switch allowed with a block in flight")
	}
	tx.Abort()
	if err := mgr.SetGroupCommit(GroupOptions{Mode: CommitGroup}); err != nil {
		t.Fatal(err)
	}
	if mgr.CommitMode() != CommitGroup {
		t.Fatal("mode not applied")
	}
	if err := mgr.SetGroupCommit(GroupOptions{Mode: CommitPerTx}); err != nil {
		t.Fatal(err)
	}
	if mgr.CommitMode() != CommitPerTx {
		t.Fatal("mode not reset")
	}
}
