// Package fa implements J-PFA, the failure-atomic blocks of J-NVM (§4.2).
//
// The algorithm is the paper's adaptation of Romulus to the block heap:
// during a block (here: a transaction, Go's idiom for the per-thread FA
// nesting counter of §3.2), every modification goes to a per-transaction
// persistent redo log. Writes to *valid* objects are redirected to
// in-flight copies of the touched blocks, leaving the original data
// intact; writes to objects allocated inside the block go straight to the
// (invalid, hence crash-dead) object. Commit flushes log and in-flight
// blocks, fences, durably marks the log committed, fences again, and then
// applies the log — copying in-flight payloads over the originals,
// validating allocations and executing deletions — without further
// ordering. A crash replays a committed log (the apply phase is
// idempotent) and discards an uncommitted one, whose side effects are all
// invalid or unreachable and therefore reclaimed by the recovery GC.
//
// The commit pipeline is built for multicore scalability:
//
//   - Slot affinity. Log slots live on a lock-free freelist, and a
//     released Tx parks — slot, maps and flush set still warm — in a
//     lock-free cache, so a worker's next Begin reuses its previous
//     transaction without touching shared state.
//   - Flush coalescing. Stores mark dirty cache lines in a per-Tx
//     nvm.FlushSet; commit writes each line back once, merging adjacent
//     lines into single PWBRange calls. A field written five times
//     flushes once.
//   - Dirty-line masks. Each write entry records which lines of the
//     in-flight copy were touched (in the high bits of the kind word), so
//     apply and replay copy and flush only those lines instead of the
//     full 248-byte payload. A zero mask means "all lines" — the format
//     older logs decode to.
//   - In-flight block reuse. Each Tx recycles its in-flight blocks
//     through a heap.TransientPool instead of a free-queue round trip per
//     write-set block per transaction.
package fa

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/nvm"
	"repro/internal/obs"
)

// Log-slot layout (within the heap's reserved log area):
//
//	0:  status (8)  — 0 idle, 1 committed
//	8:  count  (8)  — number of entries
//	16: entries, 24 bytes each: kind (8) | a (8) | b (8)
//
// For kindWrite entries the kind word also carries the dirty-line mask in
// bits 8..11: bit i set means line i of the block was modified and must be
// copied to the original. Mask 0 means every line (the pre-mask format).
const (
	slotStatus  = 0
	slotCount   = 8
	slotEntries = 16
	entrySize   = 24

	statusIdle      = 0
	statusCommitted = 1

	kindWrite = 1 // a = original block ref, b = in-flight block ref
	kindAlloc = 2 // a = new object ref
	kindFree  = 3 // a = freed object ref

	kindMask  = 0xff
	maskShift = 8

	linesPerBlock = heap.BlockSize / nvm.LineSize
	lineMaskAll   = 1<<linesPerBlock - 1

	// transientCap bounds the in-flight blocks a Tx keeps warm; overflow
	// spills to the shared free queue.
	transientCap = 32
)

// The commit retire step writes back the slot header with one
// PWBRange(base, slotEntries); both header words must fit in that range.
// These constants fail to compile if the layout ever moves them out.
const (
	_ = uint64(slotEntries - (slotStatus + 8))
	_ = uint64(slotEntries - (slotCount + 8))
)

// lineMask returns the dirty-line bits for a store of n>0 bytes at
// block-local offset off (header included in the coordinate space).
func lineMask(off, n uint64) uint8 {
	first := off / nvm.LineSize
	last := (off + n - 1) / nvm.LineSize
	return uint8(lineMaskAll>>(linesPerBlock-1-last+first)) << first
}

// managerState is the immutable heap binding, swapped atomically by
// RecoverLogs so hot-path readers never take a lock.
type managerState struct {
	h     *core.Heap
	off   uint64
	size  int
	total int
}

// slotStack is a lock-free Treiber stack of log-slot indices. The head
// word packs a modification tag in the high 32 bits with idx+1 in the low
// 32 (0 = empty); the tag changes on every successful push or pop, which
// defeats the ABA case where a slot is popped, recycled and pushed back
// between a competitor's read and CAS.
type slotStack struct {
	head atomic.Uint64
	next []atomic.Uint32 // next[idx] holds the successor's idx+1
}

func (s *slotStack) init(n int) {
	s.next = make([]atomic.Uint32, n)
	for i := 0; i < n-1; i++ {
		s.next[i].Store(uint32(i + 2))
	}
	var head uint64
	if n > 0 {
		head = 1
	}
	s.head.Store(head)
}

func (s *slotStack) pop() (int, bool) {
	for {
		h := s.head.Load()
		top := uint32(h)
		if top == 0 {
			return 0, false
		}
		next := s.next[top-1].Load()
		if s.head.CompareAndSwap(h, (h>>32+1)<<32|uint64(next)) {
			return int(top - 1), true
		}
	}
}

func (s *slotStack) push(idx int) {
	for {
		h := s.head.Load()
		s.next[idx].Store(uint32(h))
		if s.head.CompareAndSwap(h, (h>>32+1)<<32|uint64(idx+1)) {
			return
		}
	}
}

// txCache parks released transactions — slot attached, maps allocated,
// flush set and transient blocks warm — for the next Begin. Cells are
// claimed and filled by CAS, so a scrape or a racing worker never blocks.
// Capacity equals the slot count: a parked Tx owns its slot, so there is
// always a free cell for a releasing Tx (a transient CAS storm can still
// fail a put, in which case the Tx is dismantled and its slot returned to
// the freelist — correct, just cold).
type txCache struct {
	cells []atomic.Pointer[Tx]
}

func (c *txCache) reset(n int) { c.cells = make([]atomic.Pointer[Tx], n) }

func (c *txCache) get() *Tx {
	for i := range c.cells {
		cell := &c.cells[i]
		if tx := cell.Load(); tx != nil && cell.CompareAndSwap(tx, nil) {
			return tx
		}
	}
	return nil
}

func (c *txCache) put(tx *Tx) bool {
	for i := range c.cells {
		cell := &c.cells[i]
		if cell.Load() == nil && cell.CompareAndSwap(nil, tx) {
			return true
		}
	}
	return false
}

// Manager owns the persistent log slots. It implements core.LogHandler so
// that passing it in core.Config replays logs before the recovery GC.
// Begin, End and metrics scrapes share no locks: slots come from a
// lock-free freelist, warm transactions from a lock-free cache, and the
// occupancy gauges from atomics.
type Manager struct {
	state atomic.Pointer[managerState]
	slots slotStack
	cache txCache
	inUse atomic.Int64
	stats obs.FAStats
	// group holds the opt-in group-commit coordination state (group.go);
	// nil selects the default per-Tx protocol.
	group atomic.Pointer[groupState]
}

// Obs returns the manager's live counters.
func (m *Manager) Obs() *obs.FAStats { return &m.stats }

// ObsSnapshot captures the counters plus slot-occupancy gauges. It reads
// only atomics, so metrics scrapes never contend with Begin.
func (m *Manager) ObsSnapshot() obs.FASnapshot {
	var total uint64
	if st := m.state.Load(); st != nil {
		total = uint64(st.total)
	}
	snap := m.stats.Snapshot(total, uint64(m.inUse.Load()))
	m.groupSnapshot(&snap)
	return snap
}

// NewManager creates an unattached manager. Pass it as the LogHandler of
// core.Config; it attaches to the heap during Open.
func NewManager() *Manager { return &Manager{} }

// RecoverLogs implements core.LogHandler: it binds the manager to the heap
// and replays or discards every log slot (§4.2 recovery, which runs before
// the recovery procedure of §4.1.3).
//
// Slots replay in parallel on the recovery worker fleet: committed logs
// have disjoint write sets — the application holds its locks across
// Commit, and a block is only ever in one in-flight transaction — so
// replay order across slots is irrelevant and each slot touches distinct
// blocks. One PSync closes the phase, as in the serial path.
func (m *Manager) RecoverLogs(h *core.Heap, opts core.RecoverOptions) error {
	off, slots, slotSize := h.Mem().LogArea()
	// Layout guards for the commit protocol: the retire write-back
	// covers [base, base+slotEntries), and the durable-commit-point PWB
	// assumes status and count share the slot's first cache line, which
	// holds only if every slot base is line-aligned.
	if slotSize < slotEntries+entrySize {
		return fmt.Errorf("fa: log slot size %d cannot hold a header and one entry", slotSize)
	}
	if off%nvm.LineSize != 0 || uint64(slotSize)%nvm.LineSize != 0 {
		return fmt.Errorf("fa: log area (off %#x, slot size %d) not cache-line aligned", off, slotSize)
	}
	// Discard any async commits queued on a previous attachment: their
	// volatile Tx state is dead, and their durable effects are exactly
	// what the slot replay below decides.
	if g := m.group.Load(); g != nil && g.mode == CommitAsync {
		g.mu.Lock()
		g.queue = nil
		clear(g.pending)
		clear(g.ledger)
		g.order = nil
		clear(g.deltaBlocks)
		g.backlog.Store(0)
		g.durable = g.issued
		g.draining = false
		// The reserved materialization Tx is bound to the previous
		// attachment; drop it — slots.init below reclaims its slot and
		// the re-reservation at the end of this function replaces it.
		g.deltaTx.Store(nil)
		g.mu.Unlock()
	}
	pool := h.Pool()
	var replayed atomic.Uint64
	replaySlot := func(i int) {
		base := off + uint64(i*slotSize)
		if pool.ReadUint64(base+slotStatus) == statusCommitted {
			applyEntries(pool, h.Mem(), base, pool.ReadUint64(base+slotCount), nil)
			pool.WriteUint64(base+slotStatus, statusIdle)
			pool.PWB(base + slotStatus)
			replayed.Add(1)
		}
	}
	workers := opts.Workers()
	if workers > slots {
		workers = slots
	}
	if workers <= 1 {
		for i := 0; i < slots; i++ {
			replaySlot(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1) - 1)
					if i >= slots {
						return
					}
					replaySlot(i)
				}
			}()
		}
		wg.Wait()
	}
	if n := replayed.Load(); n > 0 {
		pool.PSync()
		m.stats.Replays.Add(n)
		h.RecoveryObs().ReplayedTx.Add(n)
	}
	m.state.Store(&managerState{h: h, off: off, size: slotSize, total: slots})
	m.slots.init(slots)
	m.cache.reset(slots)
	m.inUse.Store(0)
	if g := m.group.Load(); g != nil && g.mode == CommitAsync {
		m.reserveDeltaTx(g)
	}
	return nil
}

// AuditCommittedSlots scans the heap's log area and reports an error for
// any slot durably marked committed while its entry count is zero. A
// workload that never commits empty blocks can run this before replay as
// a crash-image audit: a committed zero-count slot is the signature of a
// commit mark that outran its stage-1 log persist (e.g. a delta
// materialization skipping commitStage1Body), whose replay would
// silently drop the transaction. Two caveats: call it before RecoverLogs
// runs (replay retires every committed slot), and only on tear-free
// crash images — a sub-line tear of the retire write-back can
// legitimately persist the zeroed count under the stale committed status
// of a transaction whose apply is already durable (crashmc's Run.Audit
// gates on exactly this).
func AuditCommittedSlots(h *core.Heap) error {
	off, slots, slotSize := h.Mem().LogArea()
	pool := h.Pool()
	for i := 0; i < slots; i++ {
		base := off + uint64(i*slotSize)
		if pool.ReadUint64(base+slotStatus) == statusCommitted &&
			pool.ReadUint64(base+slotCount) == 0 {
			return fmt.Errorf("fa: log slot %d durably committed with zero entries (stage-1 persist missing)", i)
		}
	}
	return nil
}

// applyEntries applies a log slot's entries — the shared body of the
// commit apply phase, the crash-staging test hook and recovery replay
// (idempotent: a crash mid-replay just replays again on the next open).
// With a FlushSet the dirty lines are accumulated for a coalesced
// write-back by the caller; with fs == nil each copy flushes immediately.
func applyEntries(pool *nvm.Pool, mem *heap.Heap, base, count uint64, fs *nvm.FlushSet) {
	for e := uint64(0); e < count; e++ {
		eoff := base + slotEntries + e*entrySize
		word := pool.ReadUint64(eoff)
		a := pool.ReadUint64(eoff + 8)
		b := pool.ReadUint64(eoff + 16)
		switch word & kindMask {
		case kindWrite:
			copyDirtyLines(pool, a, b, uint8(word>>maskShift)&lineMaskAll, fs)
		case kindAlloc:
			mem.SetValid(a, true)
		case kindFree:
			mem.SetValid(a, false)
		}
	}
}

// copyDirtyLines copies the masked lines of the in-flight block inf over
// the original block orig, skipping the header word: line 0's copy starts
// at HeaderSize so the original's identity is never overwritten. A zero
// mask copies the whole payload. The copies store word-atomically because
// the destination block is live: lock-free probes (Object.ReadRefAtomic)
// may be reading its ref words while the apply publishes them.
func copyDirtyLines(pool *nvm.Pool, orig, inf uint64, mask uint8, fs *nvm.FlushSet) {
	if mask == 0 {
		pool.CopyWithinAtomic(orig+heap.HeaderSize, inf+heap.HeaderSize, heap.Payload)
		if fs != nil {
			fs.AddRange(orig+heap.HeaderSize, heap.Payload)
		} else {
			pool.PWBRange(orig+heap.HeaderSize, heap.Payload)
		}
		return
	}
	for l := uint64(0); l < linesPerBlock; l++ {
		if mask&(1<<l) == 0 {
			continue
		}
		off, n := l*nvm.LineSize, uint64(nvm.LineSize)
		if l == 0 {
			off, n = heap.HeaderSize, nvm.LineSize-heap.HeaderSize
		}
		pool.CopyWithinAtomic(orig+off, inf+off, n)
		if fs != nil {
			fs.Add(orig + l*nvm.LineSize)
		} else {
			pool.PWBRange(orig+l*nvm.LineSize, nvm.LineSize)
		}
	}
}

// Heap returns the attached heap (nil before recovery ran).
func (m *Manager) Heap() *core.Heap {
	if st := m.state.Load(); st != nil {
		return st.h
	}
	return nil
}

// ErrLogFull is returned when a failure-atomic block outgrows its log slot.
var ErrLogFull = fmt.Errorf("fa: failure-atomic block exceeds log capacity")

// inflightWrite tracks one write-set block: the original, its in-flight
// copy, the log entry carrying the pair, and the dirty-line mask patched
// into that entry at commit.
type inflightWrite struct {
	orig  core.Ref
	inf   core.Ref
	entry uint64
	mask  uint8
}

// Tx is one failure-atomic block. It is not safe for concurrent use; the
// application serializes access to shared objects exactly as it would in
// the paper's Infinispan integration (lock striping). Released
// transactions are recycled through the manager's cache, carrying their
// log slot, maps, flush set and transient blocks to the next Begin.
type Tx struct {
	m          *Manager
	h          *core.Heap
	slot       int
	base       uint64
	maxEntries uint64
	count      uint64
	depth      int

	writes   []inflightWrite
	inflight map[core.Ref]int // original block -> index into writes
	allocs   map[core.Ref]bool
	freed    []core.Ref // proxies to neutralize at commit
	proxies  map[core.Ref]core.PObject
	deferred []func() // volatile follow-ups, run only after a commit
	onAbort  []func() // volatile rollbacks, run only on abort

	flush  *nvm.FlushSet
	blocks *heap.TransientPool

	// grp is the group-commit state sampled at Begin (nil = per-Tx);
	// ticket is the epoch ticket of an enqueued async commit.
	grp    *groupState
	ticket uint64

	// reserved marks the group's dedicated delta-materialization
	// transaction (delta.go): release parks it back on its group instead
	// of the shared cache, so its slot never rejoins the general pool.
	reserved *groupState
}

// Defer registers a volatile follow-up (mirror updates, cache fills) that
// runs only if the block commits; an abort drops it. This replaces the
// paper's pattern of updating volatile state after faEnd.
func (tx *Tx) Defer(fn func()) { tx.active(); tx.deferred = append(tx.deferred, fn) }

// OnAbort registers a volatile rollback that runs only if the block
// aborts, letting libraries keep volatile mirrors coherent with the
// persistent state they shadow.
func (tx *Tx) OnAbort(fn func()) { tx.active(); tx.onAbort = append(tx.onAbort, fn) }

// Begin opens a failure-atomic block (faStart of Figure 3). Blocks nest:
// inner Begin/Commit pairs on the same Tx only move the nesting counter,
// as with the paper's per-thread counter. The fast path reuses a warm
// cached transaction; the slow path takes a slot from the freelist.
// Neither blocks on a lock.
func (m *Manager) Begin() (*Tx, error) {
	st := m.state.Load()
	if st == nil {
		return nil, fmt.Errorf("fa: manager not attached to a heap (pass it as core.Config.LogHandler)")
	}
	g := m.group.Load()
	if tx := m.cache.get(); tx != nil {
		tx.depth = 1
		tx.grp = g
		m.inUse.Add(1)
		m.stats.Begun.Inc()
		m.stats.TxReuse.Inc()
		return tx, nil
	}
	slot, ok := m.slots.pop()
	if !ok {
		// A racing release may have parked its Tx after our cache scan.
		if tx := m.cache.get(); tx != nil {
			tx.depth = 1
			tx.grp = g
			m.inUse.Add(1)
			m.stats.Begun.Inc()
			m.stats.TxReuse.Inc()
			return tx, nil
		}
		return nil, fmt.Errorf("fa: no free log slot (%d concurrent failure-atomic blocks)", st.total)
	}
	m.inUse.Add(1)
	m.stats.Begun.Inc()
	return &Tx{
		m:          m,
		h:          st.h,
		slot:       slot,
		base:       st.off + uint64(slot*st.size),
		maxEntries: uint64((st.size - slotEntries) / entrySize),
		depth:      1,
		inflight:   make(map[core.Ref]int),
		allocs:     make(map[core.Ref]bool),
		proxies:    make(map[core.Ref]core.PObject),
		flush:      nvm.NewFlushSet(),
		blocks:     st.h.Mem().NewTransientPool(transientCap),
		grp:        g,
	}, nil
}

// Run executes fn inside a failure-atomic block: fn either takes full
// effect or none, across both errors, panics and crashes. This is the
// high-level interface of §2.5 (fa="non-private"), expressed as Go's
// transaction-function idiom.
func (m *Manager) Run(fn func(*Tx) error) error {
	tx, err := m.Begin()
	if err != nil {
		return err
	}
	defer func() {
		if r := recover(); r != nil {
			tx.Abort()
			panic(r)
		}
	}()
	if err := fn(tx); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// release resets the Tx for reuse and parks it in the manager's cache,
// slot still attached. If the cache rejects it (transient CAS storm) the
// Tx is dismantled instead: transient blocks drain to the shared free
// queue and the slot returns to the freelist.
func (tx *Tx) release() {
	tx.depth = 0
	tx.count = 0
	tx.writes = tx.writes[:0]
	clear(tx.inflight)
	clear(tx.allocs)
	tx.freed = tx.freed[:0]
	clear(tx.proxies)
	// deferred/onAbort are handed to the caller and run after release;
	// truncating in place would let a recycled Tx scribble over a slice
	// still being iterated, so drop the backing arrays.
	tx.deferred = nil
	tx.onAbort = nil
	tx.flush.Reset()
	tx.grp = nil
	tx.ticket = 0
	m := tx.m
	m.inUse.Add(-1)
	if g := tx.reserved; g != nil {
		g.deltaTx.Store(tx)
		return
	}
	if !m.cache.put(tx) {
		tx.blocks.Drain()
		m.slots.push(tx.slot)
	}
}

func (tx *Tx) active() {
	if tx.depth <= 0 {
		panic("fa: use of a finished failure-atomic block")
	}
}

// Nest increments the nesting level (an inner faStart).
func (tx *Tx) Nest() { tx.active(); tx.depth++ }

// appendEntry writes one log entry to NVMM (flushed lazily at commit).
func (tx *Tx) appendEntry(kind uint64, a, b core.Ref) error {
	if tx.count >= tx.maxEntries {
		return ErrLogFull
	}
	pool := tx.h.Pool()
	eoff := tx.base + slotEntries + tx.count*entrySize
	pool.WriteUint64(eoff, kind)
	pool.WriteUint64(eoff+8, a)
	pool.WriteUint64(eoff+16, b)
	tx.count++
	tx.m.stats.LogEntries.Inc()
	return nil
}

// Alloc allocates a new persistent object inside the block. The object is
// invalid until commit, so all writes to it go direct (§4.2): if the block
// aborts or the system crashes, recovery reclaims it. Its blocks join the
// flush set whole — headers carry the chain, payloads the zeroing that
// makes Validate deterministic — and are written back with the rest of
// the write set at commit.
func (tx *Tx) Alloc(c *core.Class, size uint64) (core.PObject, error) {
	tx.active()
	po, err := tx.h.Alloc(c, size)
	if err != nil {
		return nil, err
	}
	ref := po.Core().Ref()
	if err := tx.appendEntry(kindAlloc, ref, 0); err != nil {
		tx.h.Free(po)
		return nil, err
	}
	for _, b := range po.Core().BlockRefs() {
		tx.flush.AddRange(b, heap.BlockSize)
	}
	tx.allocs[ref] = true
	tx.proxies[ref] = po
	return po, nil
}

// AllocSmall allocates a pooled small immutable object inside the block.
func (tx *Tx) AllocSmall(c *core.Class, payload uint64) (core.PObject, error) {
	tx.active()
	po, err := tx.h.AllocSmall(c, payload)
	if err != nil {
		return nil, err
	}
	ref := po.Core().Ref()
	if err := tx.appendEntry(kindAlloc, ref, 0); err != nil {
		tx.h.Free(po)
		return nil, err
	}
	tx.flush.AddRange(ref, 8+payload) // slot mini-header + payload
	tx.allocs[ref] = true
	tx.proxies[ref] = po
	return po, nil
}

// Free deletes a persistent object at commit (a deletion recorded in the
// log). The proxy stays usable until the block ends.
func (tx *Tx) Free(po core.PObject) error {
	tx.active()
	ref := po.Core().Ref()
	if ref == 0 {
		return nil
	}
	if tx.grp != nil {
		// Async mode: a pending delta on one of the freed blocks would
		// materialize into the same epoch as (or a later epoch than) this
		// free and scribble on a recycled block. Settle each block first.
		for _, b := range po.Core().BlockRefs() {
			tx.grp.waitClear(b)
		}
	}
	if err := tx.appendEntry(kindFree, ref, 0); err != nil {
		return err
	}
	tx.freed = append(tx.freed, ref)
	tx.proxies[ref] = po
	return nil
}

// direct reports whether writes to the object bypass the redo log: true
// for objects that are still invalid (freshly allocated, §4.2).
func (tx *Tx) direct(o *core.Object) bool {
	return tx.allocs[o.Ref()] || !o.Valid()
}

// inflightFor returns the write-set index for the block orig, creating the
// in-flight copy — recycled from the Tx's transient pool when possible —
// on first touch.
func (tx *Tx) inflightFor(orig core.Ref) (int, error) {
	if i, ok := tx.inflight[orig]; ok {
		return i, nil
	}
	if tx.grp != nil {
		// Async mode: the block may still be queued for apply by an
		// earlier epoch; snapshotting it before that apply would fork
		// history. Drain first.
		tx.grp.waitClear(orig)
	}
	inf, _, err := tx.blocks.Get()
	if err != nil {
		return 0, err
	}
	tx.h.Pool().CopyWithin(inf+heap.HeaderSize, orig+heap.HeaderSize, heap.Payload)
	if err := tx.appendEntry(kindWrite, orig, inf); err != nil {
		tx.blocks.Put(inf)
		return 0, err
	}
	i := len(tx.writes)
	tx.writes = append(tx.writes, inflightWrite{orig: orig, inf: inf, entry: tx.count - 1})
	tx.inflight[orig] = i
	return i, nil
}

// ---- Commit pipeline stages ----
//
// The stages are split out so the crash-staging test hook executes exactly
// the code Commit does (see hooks_test.go), and so the group-commit
// coordinator (group.go) can interleave stage bodies across transactions
// with shared barriers between them. Each stage has a Body half — the
// stores and PWBs — and a per-Tx wrapper that appends the fence the
// solo protocol needs at that point.

// commitStage1 persists the log and the write set and fences. Dirty-line
// masks are patched into the write entries first — replay must know which
// in-flight lines are meaningful — then every line marked during the
// block (in-flight lines per store, allocated blocks, the log itself) is
// written back once through the flush set. No fence was needed before
// this point because the original data is untouched (§4.2).
func (tx *Tx) commitStage1() {
	tx.commitStage1Body()
	tx.h.Pool().PFence()
}

func (tx *Tx) commitStage1Body() {
	pool := tx.h.Pool()
	for i := range tx.writes {
		w := &tx.writes[i]
		pool.WriteUint64(tx.base+slotEntries+w.entry*entrySize, kindWrite|uint64(w.mask)<<maskShift)
	}
	pool.WriteUint64(tx.base+slotCount, tx.count)
	tx.flush.AddRange(tx.base+slotCount, 8+tx.count*entrySize)
	tx.noteFlush(tx.flush.Flush(pool))
}

// commitStage2 is the durable commit point.
func (tx *Tx) commitStage2() {
	tx.commitStage2Body()
	tx.h.Pool().PFence()
}

func (tx *Tx) commitStage2Body() {
	pool := tx.h.Pool()
	pool.WriteUint64(tx.base+slotStatus, statusCommitted)
	pool.PWB(tx.base + slotStatus)
}

// commitStage3 applies the log — masked line copies over the originals,
// validations, deletions — with no internal ordering: a crash here replays
// the committed log. When durable, the copied lines are written back
// coalesced and fenced; the crash hook passes durable=false to model a
// crash before any of the apply reached NVMM.
func (tx *Tx) commitStage3(durable bool) {
	if !durable {
		applyEntries(tx.h.Pool(), tx.h.Mem(), tx.base, tx.count, tx.flush)
		tx.flush.Reset()
		return
	}
	tx.commitStage3Body()
	tx.h.Pool().PFence()
}

func (tx *Tx) commitStage3Body() {
	pool := tx.h.Pool()
	applyEntries(pool, tx.h.Mem(), tx.base, tx.count, tx.flush)
	tx.noteFlush(tx.flush.Flush(pool))
}

// commitRetireBody retires the log before the slot can be reused;
// otherwise a crash could replay a stale committed log polluted with
// fresh entries. The write-back covers the whole header — status and
// count — which the compile-time guards above pin inside
// [base, base+slotEntries).
func (tx *Tx) commitRetireBody() {
	pool := tx.h.Pool()
	pool.WriteUint64(tx.base+slotStatus, statusIdle)
	pool.WriteUint64(tx.base+slotCount, 0)
	pool.PWBRange(tx.base, slotEntries)
}

// commitCleanup is the volatile tail of a committed block: recycle
// in-flight blocks into the transient pool, push freed objects' blocks to
// the free queue, neutralize freed proxies, release the Tx and run the
// deferred follow-ups. Callers run it only after the retire is durable.
func (tx *Tx) commitCleanup() {
	mem := tx.h.Mem()
	for i := range tx.writes {
		tx.blocks.Put(tx.writes[i].inf)
	}
	for _, ref := range tx.freed {
		// Exactly one free per object: through the proxy when we hold it
		// (which also neutralizes it), directly otherwise.
		if po, ok := tx.proxies[ref]; ok && po.Core().Ref() == ref {
			tx.h.Free(po)
		} else {
			mem.FreeObject(ref)
		}
	}
	deferred := tx.deferred
	tx.m.stats.Committed.Inc()
	tx.release()
	for _, fn := range deferred {
		fn()
	}
}

func (tx *Tx) noteFlush(flushed, saved uint64) {
	tx.m.stats.FlushedLines.Add(flushed)
	tx.m.stats.SavedLines.Add(saved)
}

// commitPerTx is the solo redo protocol of §4.2 — the correctness oracle
// the group modes are checked against:
//
//  1. persist the log and the write set (one coalesced write-back), fence;
//  2. durable commit point (mark committed), fence;
//  3. apply, flushed and fenced;
//  4. retire the log, psync;
//  5. volatile cleanup.
func (tx *Tx) commitPerTx() {
	tx.commitStage1()
	tx.commitStage2()
	tx.commitStage3(true)
	tx.commitRetireBody()
	tx.h.Pool().PSync()
	tx.commitCleanup()
}

// Commit ends the block (faEnd). Outermost commit runs the commit
// protocol selected by the manager's group-commit mode; when it returns,
// the block is durable (sync and group modes) or ordered behind the
// durability watermark (async mode — use CommitTicket to await it).
func (tx *Tx) Commit() error {
	_, err := tx.CommitTicket()
	return err
}

// CommitTicket is Commit exposing the async epoch ticket: in
// CommitAsync mode the outermost commit returns immediately with a
// non-zero ticket to pass to Manager.AwaitDurable. In the other modes
// (and for nested commits) the ticket is 0 and durability follows
// Commit's usual rule.
func (tx *Tx) CommitTicket() (uint64, error) {
	tx.active()
	tx.depth--
	if tx.depth > 0 {
		return 0, nil
	}
	if g := tx.grp; g != nil {
		switch g.mode {
		case CommitGroup:
			tx.commitGrouped(g)
			return 0, nil
		case CommitAsync:
			return g.enqueue(tx), nil
		}
	}
	tx.commitPerTx()
	return 0, nil
}

// Abort abandons the block: nothing it did becomes visible. In-flight
// copies and allocations are recycled; originals were never touched.
//
// The count reset is volatile on purpose: it cannot leak stale entries
// into a later generation of this slot. Replay is bounded by the durable
// count, and every committing generation rewrites count and fences it
// (stage 1) before its committed mark can possibly persist (stage 2), so
// a replayed count always describes that generation's own entries. The
// abort→reuse→crash regression in hooks_test.go pins this.
func (tx *Tx) Abort() {
	if tx.depth <= 0 {
		return
	}
	pool := tx.h.Pool()
	pool.WriteUint64(tx.base+slotCount, 0)
	for i := range tx.writes {
		tx.blocks.Put(tx.writes[i].inf)
	}
	for ref, po := range tx.proxies {
		if tx.allocs[ref] {
			tx.h.Free(po)
		}
	}
	rollbacks := tx.onAbort
	tx.m.stats.Aborted.Inc()
	tx.release()
	for i := len(rollbacks) - 1; i >= 0; i-- {
		rollbacks[i]()
	}
}

// Manager returns the owning manager (used by libraries layered on fa).
func (tx *Tx) Manager() *Manager { return tx.m }

// AsyncCommit reports whether this block commits through an epoch queue:
// Commit acknowledges at enqueue and the apply runs at a later drain. In
// that mode Defer callbacks fire at drain time, so libraries must not
// gate their own critical sections on them (the transactional read path
// already waits out pending epoch applies per block instead).
func (tx *Tx) AsyncCommit() bool { return tx.grp != nil }

// Heap returns the heap this block operates on.
func (tx *Tx) Heap() *core.Heap { return tx.h }
