// Package fa implements J-PFA, the failure-atomic blocks of J-NVM (§4.2).
//
// The algorithm is the paper's adaptation of Romulus to the block heap:
// during a block (here: a transaction, Go's idiom for the per-thread FA
// nesting counter of §3.2), every modification goes to a per-transaction
// persistent redo log. Writes to *valid* objects are redirected to
// in-flight copies of the touched blocks, leaving the original data
// intact; writes to objects allocated inside the block go straight to the
// (invalid, hence crash-dead) object. Commit flushes log and in-flight
// blocks, fences, durably marks the log committed, fences again, and then
// applies the log — copying in-flight payloads over the originals,
// validating allocations and executing deletions — without further
// ordering. A crash replays a committed log (the apply phase is
// idempotent) and discards an uncommitted one, whose side effects are all
// invalid or unreachable and therefore reclaimed by the recovery GC.
package fa

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/obs"
)

// Log-slot layout (within the heap's reserved log area):
//
//	0:  status (8)  — 0 idle, 1 committed
//	8:  count  (8)  — number of entries
//	16: entries, 24 bytes each: kind (8) | a (8) | b (8)
const (
	slotStatus  = 0
	slotCount   = 8
	slotEntries = 16
	entrySize   = 24

	statusIdle      = 0
	statusCommitted = 1

	kindWrite = 1 // a = original block ref, b = in-flight block ref
	kindAlloc = 2 // a = new object ref
	kindFree  = 3 // a = freed object ref
)

// Manager owns the persistent log slots. It implements core.LogHandler so
// that passing it in core.Config replays logs before the recovery GC.
type Manager struct {
	mu    sync.Mutex
	h     *core.Heap
	off   uint64
	size  int
	idle  []int
	total int
	stats obs.FAStats
}

// Obs returns the manager's live counters.
func (m *Manager) Obs() *obs.FAStats { return &m.stats }

// ObsSnapshot captures the counters plus slot-occupancy gauges.
func (m *Manager) ObsSnapshot() obs.FASnapshot {
	m.mu.Lock()
	total, inUse := uint64(m.total), uint64(m.total-len(m.idle))
	m.mu.Unlock()
	return m.stats.Snapshot(total, inUse)
}

// NewManager creates an unattached manager. Pass it as the LogHandler of
// core.Config; it attaches to the heap during Open.
func NewManager() *Manager { return &Manager{} }

// RecoverLogs implements core.LogHandler: it binds the manager to the heap
// and replays or discards every log slot (§4.2 recovery, which runs before
// the recovery procedure of §4.1.3).
func (m *Manager) RecoverLogs(h *core.Heap) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.h = h
	off, slots, slotSize := h.Mem().LogArea()
	m.off = off
	m.size = slotSize
	m.total = slots
	m.idle = m.idle[:0]
	pool := h.Pool()
	replayed := false
	for i := 0; i < slots; i++ {
		base := off + uint64(i*slotSize)
		if pool.ReadUint64(base+slotStatus) == statusCommitted {
			m.replay(base)
			pool.WriteUint64(base+slotStatus, statusIdle)
			pool.PWB(base + slotStatus)
			m.stats.Replays.Inc()
			replayed = true
		}
		m.idle = append(m.idle, i)
	}
	if replayed {
		pool.PSync()
	}
	return nil
}

// replay applies a committed log (idempotently: a crash mid-replay just
// replays again on the next open).
func (m *Manager) replay(base uint64) {
	pool := m.h.Pool()
	mem := m.h.Mem()
	count := pool.ReadUint64(base + slotCount)
	for e := uint64(0); e < count; e++ {
		eoff := base + slotEntries + e*entrySize
		kind := pool.ReadUint64(eoff)
		a := pool.ReadUint64(eoff + 8)
		b := pool.ReadUint64(eoff + 16)
		switch kind {
		case kindWrite:
			pool.CopyWithin(a+heap.HeaderSize, b+heap.HeaderSize, heap.Payload)
			pool.PWBRange(a+heap.HeaderSize, heap.Payload)
		case kindAlloc:
			mem.SetValid(a, true)
		case kindFree:
			mem.SetValid(a, false)
		}
	}
}

// Heap returns the attached heap (nil before recovery ran).
func (m *Manager) Heap() *core.Heap { return m.h }

// ErrLogFull is returned when a failure-atomic block outgrows its log slot.
var ErrLogFull = fmt.Errorf("fa: failure-atomic block exceeds log capacity")

// maxEntries is the per-transaction entry capacity.
func (m *Manager) maxEntries() uint64 { return uint64((m.size - slotEntries) / entrySize) }

// Tx is one failure-atomic block. It is not safe for concurrent use; the
// application serializes access to shared objects exactly as it would in
// the paper's Infinispan integration (lock striping).
type Tx struct {
	m     *Manager
	slot  int
	base  uint64
	count uint64
	depth int

	inflight map[core.Ref]core.Ref // original block -> in-flight copy
	allocs   map[core.Ref]bool     // objects allocated in this block
	freed    []core.Ref            // proxies to neutralize at commit
	proxies  map[core.Ref]core.PObject
	deferred []func() // volatile follow-ups, run only after a commit
	onAbort  []func() // volatile rollbacks, run only on abort
}

// Defer registers a volatile follow-up (mirror updates, cache fills) that
// runs only if the block commits; an abort drops it. This replaces the
// paper's pattern of updating volatile state after faEnd.
func (tx *Tx) Defer(fn func()) { tx.active(); tx.deferred = append(tx.deferred, fn) }

// OnAbort registers a volatile rollback that runs only if the block
// aborts, letting libraries keep volatile mirrors coherent with the
// persistent state they shadow.
func (tx *Tx) OnAbort(fn func()) { tx.active(); tx.onAbort = append(tx.onAbort, fn) }

// Begin opens a failure-atomic block (faStart of Figure 3). Blocks nest:
// inner Begin/Commit pairs on the same Tx only move the nesting counter,
// as with the paper's per-thread counter.
func (m *Manager) Begin() (*Tx, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.h == nil {
		return nil, fmt.Errorf("fa: manager not attached to a heap (pass it as core.Config.LogHandler)")
	}
	if len(m.idle) == 0 {
		return nil, fmt.Errorf("fa: no free log slot (%d concurrent failure-atomic blocks)", m.total)
	}
	slot := m.idle[len(m.idle)-1]
	m.idle = m.idle[:len(m.idle)-1]
	m.stats.Begun.Inc()
	return &Tx{
		m:        m,
		slot:     slot,
		base:     m.off + uint64(slot*m.size),
		depth:    1,
		inflight: make(map[core.Ref]core.Ref),
		allocs:   make(map[core.Ref]bool),
		proxies:  make(map[core.Ref]core.PObject),
	}, nil
}

// Run executes fn inside a failure-atomic block: fn either takes full
// effect or none, across both errors, panics and crashes. This is the
// high-level interface of §2.5 (fa="non-private"), expressed as Go's
// transaction-function idiom.
func (m *Manager) Run(fn func(*Tx) error) error {
	tx, err := m.Begin()
	if err != nil {
		return err
	}
	defer func() {
		if r := recover(); r != nil {
			tx.Abort()
			panic(r)
		}
	}()
	if err := fn(tx); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

func (tx *Tx) release() {
	tx.m.mu.Lock()
	tx.m.idle = append(tx.m.idle, tx.slot)
	tx.m.mu.Unlock()
	tx.inflight = nil
	tx.allocs = nil
	tx.freed = nil
	tx.proxies = nil
	tx.deferred = nil
	tx.onAbort = nil
	tx.depth = 0
}

func (tx *Tx) active() {
	if tx.depth <= 0 {
		panic("fa: use of a finished failure-atomic block")
	}
}

// Nest increments the nesting level (an inner faStart).
func (tx *Tx) Nest() { tx.active(); tx.depth++ }

// appendEntry writes one log entry to NVMM (flushed lazily at commit).
func (tx *Tx) appendEntry(kind uint64, a, b core.Ref) error {
	if tx.count >= tx.m.maxEntries() {
		return ErrLogFull
	}
	pool := tx.m.h.Pool()
	eoff := tx.base + slotEntries + tx.count*entrySize
	pool.WriteUint64(eoff, kind)
	pool.WriteUint64(eoff+8, a)
	pool.WriteUint64(eoff+16, b)
	tx.count++
	tx.m.stats.LogEntries.Inc()
	return nil
}

// Alloc allocates a new persistent object inside the block. The object is
// invalid until commit, so all writes to it go direct (§4.2): if the block
// aborts or the system crashes, recovery reclaims it.
func (tx *Tx) Alloc(c *core.Class, size uint64) (core.PObject, error) {
	tx.active()
	po, err := tx.m.h.Alloc(c, size)
	if err != nil {
		return nil, err
	}
	ref := po.Core().Ref()
	if err := tx.appendEntry(kindAlloc, ref, 0); err != nil {
		tx.m.h.Free(po)
		return nil, err
	}
	tx.allocs[ref] = true
	tx.proxies[ref] = po
	return po, nil
}

// AllocSmall allocates a pooled small immutable object inside the block.
func (tx *Tx) AllocSmall(c *core.Class, payload uint64) (core.PObject, error) {
	tx.active()
	po, err := tx.m.h.AllocSmall(c, payload)
	if err != nil {
		return nil, err
	}
	ref := po.Core().Ref()
	if err := tx.appendEntry(kindAlloc, ref, 0); err != nil {
		tx.m.h.Free(po)
		return nil, err
	}
	tx.allocs[ref] = true
	tx.proxies[ref] = po
	return po, nil
}

// Free deletes a persistent object at commit (a deletion recorded in the
// log). The proxy stays usable until the block ends.
func (tx *Tx) Free(po core.PObject) error {
	tx.active()
	ref := po.Core().Ref()
	if ref == 0 {
		return nil
	}
	if err := tx.appendEntry(kindFree, ref, 0); err != nil {
		return err
	}
	tx.freed = append(tx.freed, ref)
	tx.proxies[ref] = po
	return nil
}

// direct reports whether writes to the object bypass the redo log: true
// for objects that are still invalid (freshly allocated, §4.2).
func (tx *Tx) direct(o *core.Object) bool {
	return tx.allocs[o.Ref()] || !o.Valid()
}

// inflightFor returns the pool offset of the writable image of the block
// origin, creating the in-flight copy on first touch.
func (tx *Tx) inflightFor(orig core.Ref) (core.Ref, error) {
	if inf, ok := tx.inflight[orig]; ok {
		return inf, nil
	}
	mem := tx.m.h.Mem()
	inf, err := mem.AllocRaw()
	if err != nil {
		return 0, err
	}
	pool := tx.m.h.Pool()
	pool.CopyWithin(inf+heap.HeaderSize, orig+heap.HeaderSize, heap.Payload)
	if err := tx.appendEntry(kindWrite, orig, inf); err != nil {
		mem.FreeRaw(inf)
		return 0, err
	}
	tx.inflight[orig] = inf
	return inf, nil
}

// Commit ends the block (faEnd). Outermost commit runs the redo protocol.
func (tx *Tx) Commit() error {
	tx.active()
	tx.depth--
	if tx.depth > 0 {
		return nil
	}
	pool := tx.m.h.Pool()
	mem := tx.m.h.Mem()

	// 1. Persist the log and the in-flight images; no fence was needed
	//    so far because the original data is untouched (§4.2). Objects
	//    allocated in this block were written in place (they are invalid
	//    until the alloc entries apply), so their content flushes here too.
	for _, inf := range tx.inflight {
		pool.PWBRange(inf+heap.HeaderSize, heap.Payload)
	}
	for ref := range tx.allocs {
		if po, ok := tx.proxies[ref]; ok {
			po.Core().PWB()
		}
	}
	pool.WriteUint64(tx.base+slotCount, tx.count)
	pool.PWBRange(tx.base+slotCount, 8+tx.count*entrySize)
	pool.PFence()

	// 2. Durable commit point.
	pool.WriteUint64(tx.base+slotStatus, statusCommitted)
	pool.PWB(tx.base + slotStatus)
	pool.PFence()

	// 3. Apply, without ordering: a crash replays the committed log.
	for e := uint64(0); e < tx.count; e++ {
		eoff := tx.base + slotEntries + e*entrySize
		kind := pool.ReadUint64(eoff)
		a := pool.ReadUint64(eoff + 8)
		b := pool.ReadUint64(eoff + 16)
		switch kind {
		case kindWrite:
			pool.CopyWithin(a+heap.HeaderSize, b+heap.HeaderSize, heap.Payload)
			pool.PWBRange(a+heap.HeaderSize, heap.Payload)
		case kindAlloc:
			mem.SetValid(a, true)
		case kindFree:
			mem.SetValid(a, false)
		}
	}
	pool.PFence()

	// 4. Retire the log before the slot can be reused; otherwise a crash
	//    could replay a stale committed log polluted with fresh entries.
	pool.WriteUint64(tx.base+slotStatus, statusIdle)
	pool.WriteUint64(tx.base+slotCount, 0)
	pool.PWBRange(tx.base, 16)
	pool.PSync()

	// 5. Volatile cleanup: recycle in-flight blocks, push freed objects'
	//    blocks to the free queue, neutralize freed proxies.
	for _, inf := range tx.inflight {
		mem.FreeRaw(inf)
	}
	for _, ref := range tx.freed {
		// Exactly one free per object: through the proxy when we hold it
		// (which also neutralizes it), directly otherwise.
		if po, ok := tx.proxies[ref]; ok && po.Core().Ref() == ref {
			tx.m.h.Free(po)
		} else {
			mem.FreeObject(ref)
		}
	}
	deferred := tx.deferred
	tx.m.stats.Committed.Inc()
	tx.release()
	for _, fn := range deferred {
		fn()
	}
	return nil
}

// Abort abandons the block: nothing it did becomes visible. In-flight
// copies and allocations are recycled; originals were never touched.
func (tx *Tx) Abort() {
	if tx.depth <= 0 {
		return
	}
	pool := tx.m.h.Pool()
	mem := tx.m.h.Mem()
	pool.WriteUint64(tx.base+slotCount, 0)
	for _, inf := range tx.inflight {
		mem.FreeRaw(inf)
	}
	for ref, po := range tx.proxies {
		if tx.allocs[ref] {
			tx.m.h.Free(po)
		}
	}
	rollbacks := tx.onAbort
	tx.m.stats.Aborted.Inc()
	tx.release()
	for i := len(rollbacks) - 1; i >= 0; i-- {
		rollbacks[i]()
	}
}

// Manager returns the owning manager (used by libraries layered on fa).
func (tx *Tx) Manager() *Manager { return tx.m }

// Heap returns the heap this block operates on.
func (tx *Tx) Heap() *core.Heap { return tx.m.h }
